//===----------------------------------------------------------------------===//
///
/// \file
/// The §7 case study in miniature: synthesize the F10 routing schemes on
/// an AB FatTree, verify the k-resilience ladder, and quantify delivery
/// and latency under unbounded failures — the analyses behind Figs 11/12.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "routing/Routing.h"

#include <cstdio>

using namespace mcnk;
using namespace mcnk::routing;

namespace {

const char *schemeName(Scheme S) {
  switch (S) {
  case Scheme::F100:
    return "F10_0  ";
  case Scheme::F103:
    return "F10_3  ";
  case Scheme::F1035:
    return "F10_3,5";
  }
  return "?";
}

} // namespace

int main() {
  std::printf("=== F10 on an AB FatTree (p = 4, dest = switch 1) ===\n\n");
  topology::FatTreeLayout Layout;
  topology::makeAbFatTree(4, Layout);
  std::printf("topology: %u switches (%u edge, %u agg, %u core)\n\n",
              Layout.numSwitches(), Layout.numEdges(), Layout.numAggs(),
              Layout.numCores());

  // --- Resilience ladder (Fig 11b): equivalence with teleport under at
  // most k failures per hop.
  std::printf("k-resilience (equivalence with teleport, exact):\n");
  std::printf("  k      F10_0   F10_3   F10_3,5\n");
  for (unsigned K = 0; K <= 4; ++K) {
    std::printf("  %u      ", K);
    for (Scheme S : {Scheme::F100, Scheme::F103, Scheme::F1035}) {
      ast::Context Ctx;
      ModelOptions O;
      O.RoutingScheme = S;
      O.Failures = K == 0 ? FailureModel::none()
                          : FailureModel::bounded(Rational(1, 100), K);
      NetworkModel M = buildFatTreeModel(Layout, O, Ctx);
      analysis::Verifier V;
      bool Teleports =
          V.equivalent(V.compile(M.Program), V.compile(M.Teleport));
      std::printf("%-8s", Teleports ? "ok" : "FAIL");
    }
    std::printf("\n");
  }

  // --- Delivery probability under unbounded failures (Fig 12a flavor).
  std::printf("\ndelivery probability, unbounded failures (inter-pod "
              "ingress):\n");
  std::printf("  pr       F10_0      F10_3      F10_3,5\n");
  for (int Denom : {128, 32, 8, 4}) {
    std::printf("  1/%-5d ", Denom);
    for (Scheme S : {Scheme::F100, Scheme::F103, Scheme::F1035}) {
      ast::Context Ctx;
      ModelOptions O;
      O.RoutingScheme = S;
      O.Failures = FailureModel::iid(Rational(1, Denom));
      NetworkModel M = buildFatTreeModel(Layout, O, Ctx);
      analysis::Verifier V(markov::SolverKind::Direct);
      fdd::FddRef Model = V.compile(M.Program);
      // Ingress 2 lives in pod 1 and crosses the core layer.
      Rational D = V.deliveryProbability(Model, M.ingressPacket(2, Ctx));
      std::printf("%.6f   ", D.toDouble());
    }
    std::printf("\n");
  }

  // --- Expected path length conditioned on delivery (Fig 12c flavor).
  std::printf("\nE[hop count | delivered] at pr = 1/4 (all ingresses):\n");
  for (Scheme S : {Scheme::F100, Scheme::F103, Scheme::F1035}) {
    ast::Context Ctx;
    ModelOptions O;
    O.RoutingScheme = S;
    O.Failures = FailureModel::iid(Rational(1, 4));
    O.CountHops = true;
    O.HopCap = 16;
    NetworkModel M = buildFatTreeModel(Layout, O, Ctx);
    analysis::Verifier V(markov::SolverKind::Direct);
    fdd::FddRef Model = V.compile(M.Program);
    std::vector<Packet> Ingresses;
    for (std::size_t I = 0; I < M.Ingresses.size(); ++I)
      Ingresses.push_back(M.ingressPacket(I, Ctx));
    analysis::HopStats Stats = V.hopStats(Model, Ingresses, M.HopField);
    std::printf("  %s  delivered %.4f, E[hops|delivered] %.3f\n",
                schemeName(S), Stats.Delivered.toDouble(),
                Stats.expectedGivenDelivered());
  }
  return 0;
}
