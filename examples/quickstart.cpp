//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: the paper's §2 running example, end to end. Parses
/// ProbNetKAT programs from the textual syntax, compiles them to FDDs,
/// and answers the §2 questions: does the forwarding scheme implement the
/// teleport spec, how resilient is it, and what are the delivery
/// probabilities under the failure models f0/f1/f2?
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "ast/Printer.h"
#include "parser/Parser.h"
#include "routing/Routing.h"

#include <cstdio>

using namespace mcnk;

int main() {
  std::printf("=== McNetKAT quickstart: the §2 running example ===\n\n");

  // --- Part 1: programs written in the surface syntax -------------------
  ast::Context Ctx;
  const char *PolicySource = "if sw=1 then pt:=2 else "
                             "if sw=2 then pt:=2 else drop";
  parser::ParseResult Parsed = parser::parseProgram(PolicySource, Ctx);
  if (!Parsed.ok()) {
    std::printf("parse error: %s\n", Parsed.Diagnostics[0].render().c_str());
    return 1;
  }
  std::printf("forwarding policy p:\n  %s\n\n",
              ast::print(Parsed.Program, Ctx.fields()).c_str());

  // --- Part 2: the full models (policy + topology + failures) -----------
  // buildTriangleExample constructs M̂(p, t̂, f) for the naive and the
  // resilient scheme under f0 (no failures), f1 (at most one failure),
  // and f2 (independent failures at 20%).
  routing::TriangleExample Ex = routing::buildTriangleExample(Ctx);
  analysis::Verifier V; // Exact rational engine.

  fdd::FddRef Teleport = V.compile(Ex.Teleport);
  fdd::FddRef NaiveF0 = V.compile(Ex.NaiveF0);
  fdd::FddRef NaiveF1 = V.compile(Ex.NaiveF1);
  fdd::FddRef NaiveF2 = V.compile(Ex.NaiveF2);
  fdd::FddRef ResilF0 = V.compile(Ex.ResilientF0);
  fdd::FddRef ResilF1 = V.compile(Ex.ResilientF1);
  fdd::FddRef ResilF2 = V.compile(Ex.ResilientF2);

  auto YesNo = [](bool B) { return B ? "yes" : "no"; };
  std::printf("program equivalence (decided exactly, Corollary B.4):\n");
  std::printf("  M(p,t,f0)  == teleport?  %s\n",
              YesNo(V.equivalent(NaiveF0, Teleport)));
  std::printf("  M(p^,t,f0) == teleport?  %s\n",
              YesNo(V.equivalent(ResilF0, Teleport)));
  std::printf("  M(p^,t,f1) == teleport?  %s   (p^ is 1-resilient)\n",
              YesNo(V.equivalent(ResilF1, Teleport)));
  std::printf("  M(p,t,f1)  == teleport?  %s   (p is not)\n\n",
              YesNo(V.equivalent(NaiveF1, Teleport)));

  std::printf("refinement under f2 (drop < p < p^ < teleport):\n");
  std::printf("  M(p,t,f2) < M(p^,t,f2)?  %s\n",
              YesNo(V.strictlyRefines(NaiveF2, ResilF2)));
  std::printf("  M(p^,t,f2) < teleport?   %s\n\n",
              YesNo(V.strictlyRefines(ResilF2, Teleport)));

  Packet In = Ex.ingressPacket(Ctx);
  Rational DNaive = V.deliveryProbability(NaiveF2, In);
  Rational DResil = V.deliveryProbability(ResilF2, In);
  std::printf("delivery probability under f2 (paper: 80%% vs 96%%):\n");
  std::printf("  naive p:      %s = %.2f%%\n", DNaive.toString().c_str(),
              100.0 * DNaive.toDouble());
  std::printf("  resilient p^: %s = %.2f%%\n", DResil.toString().c_str(),
              100.0 * DResil.toDouble());
  return 0;
}
