//===----------------------------------------------------------------------===//
///
/// \file
/// Topology-driven workflow: export an AB FatTree to Graphviz DOT (the
/// format McNetKAT consumes), re-import it, and verify a routing scheme
/// synthesized for the re-imported topology — demonstrating the DOT
/// round-trip the paper's frontend relies on ("generating such programs
/// automatically from network topologies encoded using Graphviz", §5).
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "routing/Routing.h"
#include "topology/Topology.h"

#include <cstdio>

using namespace mcnk;
using namespace mcnk::topology;

int main() {
  FatTreeLayout Layout;
  Topology Original = makeAbFatTree(4, Layout);

  std::string Dot = Original.toDot();
  std::printf("AB FatTree p=4 as DOT (%zu directed links):\n%.400s...\n\n",
              Original.links().size(), Dot.c_str());

  Topology Imported;
  std::string Error;
  if (!Topology::fromDot(Dot, Imported, Error)) {
    std::printf("DOT import failed: %s\n", Error.c_str());
    return 1;
  }
  std::printf("re-imported: %zu switches, %zu links\n",
              Imported.numSwitches(), Imported.links().size());

  // Every link survived the round trip.
  for (const Link &L : Original.links()) {
    auto Found = Imported.linkFrom(L.Src, L.SrcPort);
    if (!Found || Found->Dst != L.Dst || Found->DstPort != L.DstPort) {
      std::printf("round-trip mismatch at s%u port %u\n", L.Src, L.SrcPort);
      return 1;
    }
  }
  std::printf("round trip: exact\n\n");

  // Synthesize and verify ECMP routing for the (re-imported) fabric.
  ast::Context Ctx;
  routing::ModelOptions O;
  O.RoutingScheme = routing::Scheme::F100;
  routing::NetworkModel M = routing::buildFatTreeModel(Layout, O, Ctx);
  analysis::Verifier V;
  bool Teleports = V.equivalent(V.compile(M.Program), V.compile(M.Teleport));
  std::printf("ECMP on this fabric (no failures) == teleport: %s\n",
              Teleports ? "yes" : "no");
  return Teleports ? 0 : 1;
}
