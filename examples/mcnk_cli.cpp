//===----------------------------------------------------------------------===//
///
/// \file
/// mcnk: a command-line verifier for `.pnk` programs.
///
///   mcnk check  <file.pnk>                 parse + guardedness check
///   mcnk lint   [--fix] [--json] <file.pnk> static analysis (S15 + S17)
///   mcnk dump   <file.pnk>                 compile and dump the FDD
///   mcnk run    <file.pnk> f=v[,g=w...]    output distribution for input
///   mcnk equiv  <a.pnk> <b.pnk>            exact program equivalence
///   mcnk prism  <file.pnk> f=v[,g=w...]    emit a PRISM model
///   mcnk fuzz   [--seed N] [--iters N]     cross-engine differential fuzz
///
/// `lint` runs the S15 abstract-interpretation analyzer (ast/Analyze.h)
/// and the S17 field-dependency checks (ast/Deps.h: dead-field,
/// write-only-field, query-irrelevant-assignment) plus the parser's
/// advisory warnings and prints one
/// `file:line:col: warning[check-name]: message` line per finding to
/// stdout, sorted by source position. With --json the same findings are
/// emitted instead as one JSON array of {file, line, col, check, message}
/// objects (the serve daemon's serializer renders them, so the `lint`
/// verb there and this flag agree byte-for-byte). Exit 0 when the
/// program is clean, 1 when there are findings, 2 on usage or parse
/// errors — identical in both output modes. With --fix the verified
/// simplifier rewrites the program and the result is written back to the
/// file (to stdout for "-"), exiting 0 unless the write fails. With
/// --registry the checks run over every scenario-registry program (via
/// its printed form, labelled registry:<name>) instead of a file — the
/// corpus `ci.sh lint` diffs against its checked-in baseline.
///
/// `fuzz` drives the src/gen/ differential oracle: N seeded random
/// guarded programs plus the whole scenario registry, every engine
/// cross-checked. The reproducing seed is flushed to stdout *before* the
/// run starts and repeated on stderr next to any disagreement, so even an
/// engine abort deep inside a worker cannot lose it. Exit codes are
/// distinct per failure class: 0 all engines agree, 3 disagreement found,
/// 2 usage/setup error (1 is the generic error code of the other
/// subcommands; an engine crash aborts with SIGABRT).
///
/// The global option -j[N] compiles `case` constructs on the verifier's
/// persistent worker pool (N workers; bare -j means hardware concurrency).
/// The global option --cache enables the cross-compile memoization cache
/// (ARCHITECTURE S12) on every verifier the command builds and prints the
/// hit/miss statistics on exit. The global option --blocked switches
/// while-loop solves to block-structured SCC/DAG elimination with
/// reverse-Cuthill–McKee ordering (ARCHITECTURE S13) — combined with -j,
/// independent blocks solve concurrently on the same worker pool — and
/// prints the per-solve block statistics. The global option --modular
/// switches loop solves to the multi-prime modular exact engine
/// (ARCHITECTURE S14): elimination runs over word-size prime fields and
/// the exact rationals are recovered by CRT + verified rational
/// reconstruction; the answers are identical to the default engine, and
/// the per-solve prime statistics are printed. --modular composes with
/// --blocked and -j (blocks and primes fan out on one pool). The global
/// option --simplify runs the verified S15 simplifier over every program
/// before compiling it (semantics-preserving: the diagrams are
/// reference-identical, a contract the oracle enforces). The global
/// option --slice runs S17 query-directed cone-of-influence slicing
/// before compiling: `dump` slices for the delivery observation (only
/// the drop mass is observed, so assignments invisible to delivery
/// queries are removed and the diagram shrinks — a slice statistics line
/// reports by how much), while `run` and `equiv` slice for the
/// all-fields observation (their answers expose whole output packets, so
/// slicing is a verified no-op there). Programs read from "-" come from
/// stdin.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "ast/Analyze.h"
#include "ast/Deps.h"
#include "ast/Printer.h"
#include "ast/Simplify.h"
#include "ast/Traversal.h"
#include "fdd/Export.h"
#include "gen/Oracle.h"
#include "parser/Parser.h"
#include "prism/Translate.h"
#include "serve/Lint.h"

#include <algorithm>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>

using namespace mcnk;

namespace {

bool readSource(const std::string &Path, std::string &Out) {
  if (Path == "-") {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Out = Buffer.str();
    return true;
  }
  std::ifstream File(Path);
  if (!File)
    return false;
  Out.assign(std::istreambuf_iterator<char>(File),
             std::istreambuf_iterator<char>());
  return true;
}

const ast::Node *parseFile(const std::string &Path, ast::Context &Ctx) {
  std::string Source;
  if (!readSource(Path, Source)) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    return nullptr;
  }
  parser::ParseResult Result = parser::parseProgram(Source, Ctx);
  if (!Result.ok()) {
    for (const parser::Diagnostic &D : Result.Diagnostics)
      std::fprintf(stderr, "%s:%s\n", Path.c_str(), D.render().c_str());
    return nullptr;
  }
  return Result.Program;
}

/// Parses "f=v,g=w" into a packet over Ctx's fields (unknown fields are
/// interned; unset fields default to 0).
bool parseInputPacket(const std::string &Spec, ast::Context &Ctx,
                      Packet &Out) {
  std::vector<std::pair<FieldId, FieldValue>> Assignments;
  std::size_t Pos = 0;
  while (Pos < Spec.size()) {
    std::size_t Eq = Spec.find('=', Pos);
    if (Eq == std::string::npos)
      return false;
    std::size_t End = Spec.find(',', Eq);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Field = Spec.substr(Pos, Eq - Pos);
    std::string Value = Spec.substr(Eq + 1, End - Eq - 1);
    if (Field.empty() || Value.empty())
      return false;
    unsigned long long V = 0;
    for (char C : Value) {
      if (C < '0' || C > '9')
        return false;
      V = V * 10 + static_cast<unsigned>(C - '0');
    }
    Assignments.emplace_back(Ctx.field(Field),
                             static_cast<FieldValue>(V));
    Pos = End + (End < Spec.size() ? 1 : 0);
  }
  Out = Packet(Ctx.fields().numFields());
  for (const auto &[F, V] : Assignments)
    Out.set(F, V);
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: mcnk [-j[N]] [--cache] [--blocked] [--modular] "
               "[--simplify] [--slice] check|dump <file.pnk>\n"
               "       mcnk lint [--fix] [--json] <file.pnk>\n"
               "       mcnk lint [--json] --registry\n"
               "       mcnk [-j[N]] [--cache] [--blocked] [--modular] "
               "[--simplify] [--slice] run|prism <file.pnk> f=v[,g=w...]\n"
               "       mcnk [-j[N]] [--cache] [--blocked] [--modular] "
               "[--simplify] [--slice] equiv <a.pnk> <b.pnk>\n"
               "       mcnk [--cache] fuzz [--seed N] [--iters N] "
               "[--no-scenarios]\n"
               "  -j[N]     compile `case` on N worker threads (default: "
               "hardware concurrency)\n"
               "  --cache   enable the cross-compile memoization cache and "
               "print its stats\n"
               "  --blocked solve loops block-by-block (SCC/DAG "
               "elimination, RCM ordering;\n"
               "            with -j, independent blocks solve in parallel) "
               "and print block stats\n"
               "  --modular solve loops with the multi-prime modular exact "
               "engine (mod-p\n"
               "            elimination + CRT/rational reconstruction; "
               "same exact answers)\n"
               "            and print prime stats; composes with --blocked "
               "and -j\n"
               "  --simplify run the verified S15 simplifier over every\n"
               "            program before compiling (same diagrams,\n"
               "            enforced by the oracle)\n"
               "  --slice   run S17 cone-of-influence slicing before\n"
               "            compiling: dump slices for the delivery\n"
               "            observation (and prints slice stats), run and\n"
               "            equiv for the all-fields observation (their\n"
               "            answers expose whole packets)\n"
               "  lint      run the S15 static analyzer and the S17\n"
               "            dependency checks; one file:line:col:\n"
               "            warning[check]: line per finding (--json: a\n"
               "            JSON array of findings instead), exit 0 clean\n"
               "            / 1 findings / 2 errors; --fix rewrites the\n"
               "            file with the verified simplifier's output\n"
               "  fuzz      run the cross-engine differential oracle on N\n"
               "            random programs (default 25) plus the scenario\n"
               "            registry; exit 3 on any disagreement (2 on\n"
               "            usage errors), printing the reproducing seed\n");
  return 2;
}

/// Applies the --blocked solver structure to a verifier: SCC/DAG block
/// elimination with RCM ordering, block tasks sharing the compile pool
/// when -j is also given.
void applyBlockedStructure(analysis::Verifier &V, bool Parallel,
                           unsigned Threads) {
  markov::SolverStructure S;
  S.Blocked = true;
  S.Ordering = linalg::OrderingKind::ReverseCuthillMcKee;
  if (Parallel)
    S.Pool = &V.compilePool(Threads);
  V.setSolverStructure(S);
}

/// Prints the last loop's block statistics (the --blocked report). Silent
/// when the program solved no loop.
void printBlockStats(const fdd::LoopSolveStats &LS) {
  if (LS.NumStates == 0)
    return;
  std::printf("solver: %zu states in %zu block(s), largest %zu; "
              "%zu elimination ops, %zu fill-in\n",
              LS.NumSolved, LS.NumBlocks, LS.MaxBlockSize,
              LS.EliminationOps, LS.FillIn);
}

/// Prints the last loop's modular-solver statistics (the --modular
/// report). Silent when the program solved no loop.
void printModularStats(const fdd::LoopSolveStats &LS) {
  if (LS.NumStates == 0)
    return;
  std::printf("modular: %zu prime(s), %zu retried, %zu reconstruction "
              "bits, %zu fallback(s)\n",
              LS.NumPrimes, LS.RetriedPrimes, LS.ReconstructionBits,
              LS.ModularFallbacks);
}

/// Prints one line of cache statistics (the --cache report).
void printCacheStats(const fdd::CompileCache &Cache) {
  fdd::CompileCache::Stats S = Cache.stats();
  std::printf("cache: %llu hits, %llu misses, %llu insertions, "
              "%llu evictions; %zu entries holding %zu portable nodes\n",
              static_cast<unsigned long long>(S.Hits),
              static_cast<unsigned long long>(S.Misses),
              static_cast<unsigned long long>(S.Insertions),
              static_cast<unsigned long long>(S.Evictions), S.Entries,
              S.StoredNodes);
}

/// `mcnk lint [--fix] [--json]`: the S15 static analyzer plus the S17
/// dependency checks, through the pipeline the serve daemon's `lint` verb
/// shares (serve/Lint.h), so the two agree byte-for-byte. --json emits
/// the findings as one JSON array instead of text lines (exit codes are
/// identical either way); --fix rewrites the file with the verified
/// simplifier's output.
int runLint(const std::vector<std::string> &Args) {
  bool Fix = false;
  bool AsJson = false;
  bool Registry = false;
  std::string Path;
  for (std::size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "--fix") {
      Fix = true;
    } else if (Args[I] == "--json") {
      AsJson = true;
    } else if (Args[I] == "--registry") {
      Registry = true;
    } else if (Path.empty()) {
      Path = Args[I];
    } else {
      std::fprintf(stderr, "error: unknown lint argument '%s'\n",
                   Args[I].c_str());
      return usage();
    }
  }
  if (Registry) {
    // Lint every registry scenario instead of a file: each program goes
    // through the printer and back through the parser (so findings carry
    // real spans — the same path a program takes into the serve daemon),
    // labelled registry:<scenario>. CI diffs this output against a
    // checked-in baseline to catch new diagnostics on the models.
    if (Fix || !Path.empty())
      return usage();
    bool AnyFindings = false;
    for (const gen::ScenarioSpec &Spec : gen::buildRegistry({})) {
      ast::Context BuildCtx;
      gen::Scenario S = Spec.Build(BuildCtx);
      std::string Printed = ast::print(S.Program, BuildCtx.fields());
      ast::Context Ctx;
      parser::ParseResult Result = parser::parseProgram(Printed, Ctx);
      if (!Result.ok()) {
        std::fprintf(stderr, "error: registry scenario %s does not "
                             "re-parse from its printed form\n",
                     S.Name.c_str());
        return 2;
      }
      std::vector<serve::LintEntry> Entries =
          serve::lintProgram(Ctx, Result.Program, Result.Warnings);
      std::string Label = "registry:" + S.Name;
      if (AsJson) {
        std::printf("%s\n", serve::lintJson(Label, Entries).dump().c_str());
      } else {
        for (const serve::LintEntry &E : Entries)
          std::printf("%s\n", serve::renderLintEntry(Label, E).c_str());
      }
      AnyFindings |= !Entries.empty();
    }
    return AnyFindings ? 1 : 0;
  }
  if (Path.empty())
    return usage();
  std::string Source;
  if (!readSource(Path, Source)) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    return 2;
  }
  ast::Context Ctx;
  parser::ParseResult Result = parser::parseProgram(Source, Ctx);
  if (!Result.ok()) {
    for (const parser::Diagnostic &D : Result.Diagnostics)
      std::fprintf(stderr, "%s:%s\n", Path.c_str(), D.render().c_str());
    return 2;
  }

  std::vector<serve::LintEntry> Entries =
      serve::lintProgram(Ctx, Result.Program, Result.Warnings);
  if (AsJson) {
    std::printf("%s\n", serve::lintJson(Path, Entries).dump().c_str());
  } else {
    for (const serve::LintEntry &E : Entries)
      std::printf("%s\n", serve::renderLintEntry(Path, E).c_str());
  }

  if (Fix) {
    ast::SimplifyStats Stats;
    const ast::Node *Simplified =
        ast::simplify(Ctx, Result.Program, {}, &Stats);
    std::string Printed = ast::print(Simplified, Ctx.fields()) + "\n";
    if (Path == "-") {
      std::printf("%s", Printed.c_str());
    } else if (Printed == Source) {
      // No-op fix: leave the file alone entirely. Opening it with trunc
      // would rewrite identical bytes but still bump the mtime, which
      // makes build systems and editors watching the file re-trigger on
      // every lint run.
      std::fprintf(stderr, "unchanged: %s (already simplified)\n",
                   Path.c_str());
      return 0;
    } else {
      std::ofstream File(Path, std::ios::trunc);
      if (!File || !(File << Printed)) {
        std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
        return 2;
      }
    }
    std::fprintf(stderr, "fixed: %s (%zu -> %zu nodes, %u round%s)\n",
                 Path.c_str(), Stats.NodesBefore, Stats.NodesAfter,
                 Stats.Rounds, Stats.Rounds == 1 ? "" : "s");
    return 0;
  }
  return Entries.empty() ? 0 : 1;
}

/// `mcnk fuzz`: the CLI face of the src/gen differential oracle. The
/// global -j[N] option carries through as the worker count for the
/// serial-vs-parallel compile checks; --cache shares one compile cache
/// across every case and reports its statistics.
int runFuzz(const std::vector<std::string> &Args, bool Parallel,
            unsigned Threads, bool UseCache) {
  uint64_t Seed = 0xC1A0ULL;
  unsigned Iters = 25;
  bool Scenarios = true;
  for (std::size_t I = 1; I < Args.size(); ++I) {
    // A silently-misparsed flag would turn the oracle into a green
    // no-op, so values are validated strictly: decimal or 0x hex, no
    // sign (strtoull would wrap "-1" to ULLONG_MAX), no overflow.
    auto TakeValue = [&](unsigned long long &Out) {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", Args[I].c_str());
        return false;
      }
      const std::string &Text = Args[++I];
      char *End = nullptr;
      errno = 0;
      Out = std::strtoull(Text.c_str(), &End, 0);
      bool StartsWithDigit = !Text.empty() && Text[0] >= '0' &&
                             Text[0] <= '9';
      if (!StartsWithDigit || errno == ERANGE ||
          End != Text.c_str() + Text.size()) {
        std::fprintf(stderr, "error: malformed number '%s' for %s\n",
                     Text.c_str(), Args[I - 1].c_str());
        return false;
      }
      return true;
    };
    unsigned long long Value = 0;
    if (Args[I] == "--seed") {
      if (!TakeValue(Value))
        return usage();
      Seed = Value;
    } else if (Args[I] == "--iters") {
      if (!TakeValue(Value))
        return usage();
      if (Value > 0xffffffffULL) {
        // A silent 32-bit truncation could zero the iteration count and
        // fake a green run.
        std::fprintf(stderr, "error: --iters %llu is out of range\n",
                     Value);
        return usage();
      }
      Iters = static_cast<unsigned>(Value);
    } else if (Args[I] == "--no-scenarios") {
      Scenarios = false;
    } else {
      std::fprintf(stderr, "error: unknown fuzz option '%s'\n",
                   Args[I].c_str());
      return usage();
    }
  }

  std::printf("fuzz: seed 0x%llx, %u random programs%s\n",
              static_cast<unsigned long long>(Seed), Iters,
              Scenarios ? " + scenario registry" : "");
  // The banner above is the reproduction recipe; push it past stdio
  // buffering *now* so an engine abort later in the run (even inside a
  // worker thread) cannot lose it.
  std::fflush(stdout);
  gen::FuzzOptions Fuzz;
  Fuzz.Iterations = Iters;
  gen::OracleOptions Oracle;
  if (Parallel)
    Oracle.ParallelThreads = Threads; // 0 = hardware concurrency.
  fdd::CompileCache SharedCache;
  if (UseCache)
    Oracle.Cache = &SharedCache;
  gen::OracleReport Report = gen::fuzzPrograms(Seed, Fuzz, Oracle);
  if (Scenarios)
    Report.merge(gen::runRegistry(gen::RegistryOptions(), Oracle));

  for (const std::string &D : Report.Disagreements)
    std::fprintf(stderr, "DISAGREEMENT: %s\n", D.c_str());
  std::printf("fuzz: %s\n", Report.summary().c_str());
  if (UseCache)
    printCacheStats(SharedCache);
  if (!Report.ok()) {
    // Repeat the seed on *both* streams next to the verdict: stderr so it
    // sits beside the DISAGREEMENT lines in logs that split the streams,
    // stdout for pipelines that only capture one.
    std::printf("fuzz: FAILED — reproduce with --seed 0x%llx\n",
                static_cast<unsigned long long>(Seed));
    std::fflush(stdout);
    std::fprintf(stderr, "fuzz: FAILED — reproduce with --seed 0x%llx\n",
                 static_cast<unsigned long long>(Seed));
    return 3; // Distinct from usage/setup errors (2) and generic (1).
  }
  std::printf("fuzz: all engines agree\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // Strip the global -j, --cache, and --blocked options wherever they
  // appear; -j accepts -j, -jN, and the make-style separate form `-j N`.
  bool Parallel = false;
  bool UseCache = false;
  bool Blocked = false;
  bool Modular = false;
  bool Simplify = false;
  bool Slice = false;
  unsigned Threads = 0;
  std::vector<std::string> Args;
  auto AllDigits = [](const std::string &S) {
    if (S.empty())
      return false;
    for (char C : S)
      if (C < '0' || C > '9')
        return false;
    return true;
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--cache") {
      UseCache = true;
      continue;
    }
    if (Arg == "--blocked") {
      Blocked = true;
      continue;
    }
    if (Arg == "--modular") {
      Modular = true;
      continue;
    }
    if (Arg == "--simplify") {
      Simplify = true;
      continue;
    }
    if (Arg == "--slice") {
      Slice = true;
      continue;
    }
    if (Arg.rfind("-j", 0) == 0) {
      Parallel = true;
      std::string Width = Arg.substr(2);
      if (Width.empty() && I + 1 < Argc && AllDigits(Argv[I + 1]))
        Width = Argv[++I];
      if (!Width.empty()) {
        // Digits only, and a sane cap — strtoul overflow must not turn
        // into a request for four billion threads.
        if (!AllDigits(Width) || Width.size() > 4 ||
            std::strtoul(Width.c_str(), nullptr, 10) > 1024) {
          std::fprintf(stderr, "error: bad worker count in '%s'\n",
                       Arg.c_str());
          return usage();
        }
        Threads = static_cast<unsigned>(
            std::strtoul(Width.c_str(), nullptr, 10));
      }
      continue;
    }
    Args.push_back(std::move(Arg));
  }
  if (Args.empty())
    return usage();
  std::string Command = Args[0];
  if (Command == "fuzz")
    return runFuzz(Args, Parallel, Threads, UseCache);
  if (Command == "lint")
    return runLint(Args);
  if (Args.size() < 2)
    return usage();
  ast::Context Ctx;

  const ast::Node *Program = parseFile(Args[1], Ctx);
  if (!Program)
    return 1;

  if (Command == "check") {
    std::printf("parse: ok (%zu nodes, depth %zu)\n",
                ast::countNodes(Program), ast::depth(Program));
    std::printf("guarded fragment: %s\n",
                ast::isGuarded(Program) ? "yes" : "no");
    return 0;
  }

  if (!ast::isGuarded(Program)) {
    std::fprintf(stderr,
                 "error: program is outside the guarded fragment "
                 "(star or program-level union)\n");
    return 1;
  }

  if (Command == "dump") {
    analysis::Verifier V(Modular ? markov::SolverKind::ModularExact
                                 : markov::SolverKind::Exact);
    if (UseCache)
      V.enableCompileCache();
    if (Blocked)
      applyBlockedStructure(V, Parallel, Threads);
    if (Simplify)
      V.setSimplify(&Ctx);
    if (Slice)
      // `dump` has no query attached, so slice for the most aggressive
      // still-meaningful observation: delivery (drop mass only).
      V.setSlice(&Ctx, ast::ObservationSet::delivery());
    fdd::FddRef Ref = V.compile(Program, Parallel, Threads);
    std::printf("%s", fdd::dumpFdd(V.manager(), Ref, Ctx.fields()).c_str());
    std::printf("// %zu nodes in the diagram\n",
                V.manager().diagramSize(Ref));
    if (Slice) {
      const ast::SliceStats &S = V.lastSliceStats();
      std::printf("slice: %zu assignment(s) removed, %zu -> %zu AST "
                  "nodes, %zu/%zu fields relevant\n",
                  S.AssignmentsRemoved, S.NodesBefore, S.NodesAfter,
                  S.FieldsRelevant, S.FieldsBefore);
    }
    if (Blocked)
      printBlockStats(V.manager().lastLoopStats());
    if (Modular)
      printModularStats(V.manager().lastLoopStats());
    if (UseCache)
      printCacheStats(*V.compileCache());
    return 0;
  }

  if (Command == "equiv") {
    if (Args.size() < 3)
      return usage();
    const ast::Node *Other = parseFile(Args[2], Ctx);
    if (!Other || !ast::isGuarded(Other))
      return 1;
    // One verifier — and thus one persistent compile pool and compile
    // cache — serves both compiles, so shared sub-programs of the two
    // inputs are compiled once.
    analysis::Verifier V(Modular ? markov::SolverKind::ModularExact
                                 : markov::SolverKind::Exact);
    if (UseCache)
      V.enableCompileCache();
    if (Blocked)
      applyBlockedStructure(V, Parallel, Threads);
    if (Simplify)
      V.setSimplify(&Ctx);
    if (Slice)
      // Equivalence observes whole output packets; slicing for the
      // all-fields observation is a verified no-op rewrite.
      V.setSlice(&Ctx, ast::ObservationSet::all());
    bool Equal = V.equivalent(V.compile(Program, Parallel, Threads),
                              V.compile(Other, Parallel, Threads));
    std::printf("%s\n", Equal ? "equivalent" : "NOT equivalent");
    if (UseCache)
      printCacheStats(*V.compileCache());
    return Equal ? 0 : 1;
  }

  if (Command == "run" || Command == "prism") {
    if (Args.size() < 3)
      return usage();
    Packet In;
    if (!parseInputPacket(Args[2], Ctx, In)) {
      std::fprintf(stderr, "error: malformed input packet spec\n");
      return 1;
    }
    if (Command == "prism") {
      prism::Translation T = prism::translate(Ctx, Program, In);
      std::printf("%s", T.Source.c_str());
      std::printf("// delivered: %s, dropped: %s\n", T.DoneGuard.c_str(),
                  T.DropGuard.c_str());
      return 0;
    }
    analysis::Verifier V(Modular ? markov::SolverKind::ModularExact
                                 : markov::SolverKind::Exact);
    if (UseCache)
      V.enableCompileCache();
    if (Blocked)
      applyBlockedStructure(V, Parallel, Threads);
    if (Simplify)
      V.setSimplify(&Ctx);
    if (Slice)
      // `run` prints whole output packets; all fields are observed.
      V.setSlice(&Ctx, ast::ObservationSet::all());
    fdd::FddRef Ref = V.compile(Program, Parallel, Threads);
    auto Out = V.manager().outputDistribution(Ref, In);
    for (const auto &[Pkt, W] : Out.Outputs) {
      std::printf("{");
      for (std::size_t F = 0; F < Pkt.numFields(); ++F)
        std::printf("%s%s=%u", F ? ", " : "",
                    Ctx.fields().name(static_cast<FieldId>(F)).c_str(),
                    Pkt.get(static_cast<FieldId>(F)));
      std::printf("} @ %s\n", W.toString().c_str());
    }
    if (!Out.Dropped.isZero())
      std::printf("drop @ %s\n", Out.Dropped.toString().c_str());
    if (Blocked)
      printBlockStats(V.manager().lastLoopStats());
    if (Modular)
      printModularStats(V.manager().lastLoopStats());
    if (UseCache)
      printCacheStats(*V.compileCache());
    return 0;
  }
  return usage();
}
