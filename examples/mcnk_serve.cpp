//===----------------------------------------------------------------------===//
///
/// \file
/// mcnk_serve: the long-lived verification daemon (ARCHITECTURE S16).
///
///   mcnk_serve --stdio [options]           serve one session over
///                                          stdin/stdout
///   mcnk_serve --port N [options]          serve line-JSON over TCP on
///                                          127.0.0.1:N (0 = ephemeral;
///                                          the bound port is printed)
///
/// Options:
///   --store PATH        persistent FDD store: compiled diagrams are
///                       loaded at startup and appended on every compile
///                       miss, so a restarted daemon answers warm
///   --cache-capacity N  compile-cache entries (default 4096)
///   -j[N]               worker threads for parallel `case` compilation
///                       (default: hardware concurrency; -j1 = serial)
///
/// The protocol is one JSON request per line, one JSON response per line
/// (see src/serve/Server.h for the schema). Exact probabilities travel as
/// rational strings.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

using namespace mcnk;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mcnk_serve --stdio [--store PATH] [--cache-capacity N] "
      "[-j[N]]\n"
      "       mcnk_serve --port N [--store PATH] [--cache-capacity N] "
      "[-j[N]]\n"
      "  --stdio            serve one session over stdin/stdout\n"
      "  --port N           serve TCP on 127.0.0.1:N (0 picks a free "
      "port)\n"
      "  --store PATH       persistent on-disk FDD store\n"
      "  --cache-capacity N compile-cache capacity in entries\n"
      "  -j[N]              parallel-case worker threads (-j1 = serial)\n");
  return 2;
}

bool parseUnsigned(const char *Text, unsigned long &Out,
                   unsigned long Max) {
  char *End = nullptr;
  errno = 0;
  Out = std::strtoul(Text, &End, 10);
  return *Text != '\0' && *End == '\0' && errno == 0 && Out <= Max;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Stdio = false;
  bool Tcp = false;
  unsigned long Port = 0;
  serve::Service::Options Opts;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--stdio") {
      Stdio = true;
    } else if (Arg == "--port") {
      if (I + 1 >= Argc || !parseUnsigned(Argv[++I], Port, 65535)) {
        std::fprintf(stderr, "error: --port needs a number in [0, 65535]\n");
        return usage();
      }
      Tcp = true;
    } else if (Arg == "--store") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --store needs a path\n");
        return usage();
      }
      Opts.StorePath = Argv[++I];
    } else if (Arg == "--cache-capacity") {
      unsigned long Cap = 0;
      if (I + 1 >= Argc || !parseUnsigned(Argv[++I], Cap, 1ul << 24) ||
          Cap == 0) {
        std::fprintf(stderr, "error: bad --cache-capacity\n");
        return usage();
      }
      Opts.CacheCapacity = Cap;
    } else if (Arg.rfind("-j", 0) == 0) {
      std::string Width = Arg.substr(2);
      unsigned long N = 0;
      if (Width.empty()) {
        Opts.Threads = 0; // Hardware concurrency.
      } else if (parseUnsigned(Width.c_str(), N, 1024)) {
        Opts.Threads = static_cast<unsigned>(N);
      } else {
        std::fprintf(stderr, "error: bad worker count in '%s'\n",
                     Arg.c_str());
        return usage();
      }
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }
  if (Stdio == Tcp) // Exactly one front end.
    return usage();

  std::string Error;
  std::unique_ptr<serve::Service> Svc = serve::Service::create(Opts, &Error);
  if (!Svc) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (!Opts.StorePath.empty())
    std::fprintf(stderr, "store: %s (%zu entr%s warmed)\n",
                 Opts.StorePath.c_str(), Svc->warmedEntries(),
                 Svc->warmedEntries() == 1 ? "y" : "ies");

  if (Stdio) {
    std::size_t Served = serve::runStdio(*Svc, std::cin, std::cout);
    std::fprintf(stderr, "served %zu request%s\n", Served,
                 Served == 1 ? "" : "s");
    return 0;
  }

  // TCP until shutdown: a client's shutdown verb closes its connection;
  // SIGINT/SIGTERM end the daemon (the default handlers are fine — the
  // store is append-only and torn tails are recovered at next open).
  serve::TcpServer Server(*Svc);
  if (!Server.start(static_cast<uint16_t>(Port), &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  // The one line a launcher needs to connect; stdout, flushed immediately.
  std::printf("listening on 127.0.0.1:%u\n", Server.port());
  std::fflush(stdout);
  // Park the main thread: wait for a signal. pause() returns on any
  // handled signal; default SIGINT/SIGTERM dispositions terminate the
  // process before pause() even returns, which is exactly the lifecycle
  // a daemon under a supervisor wants.
  for (;;)
    ::pause();
}
