//===----------------------------------------------------------------------===//
///
/// \file
/// The Fig 9/10 chain-of-diamonds reliability question answered by all
/// three engines in this repository: the native FDD backend, the PRISM
/// pipeline (syntactic translation + prismlite model checking), and the
/// Bayonet-style exhaustive-inference baseline. All three agree exactly;
/// their costs diverge wildly — which is the point of Fig 10.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "baseline/Exhaustive.h"
#include "prism/Checker.h"
#include "prism/Translate.h"
#include "routing/Routing.h"
#include "support/Timer.h"

#include <cstdio>

using namespace mcnk;

int main() {
  const unsigned K = 4; // Diamonds; 4K switches.
  const Rational PFail(1, 1000);

  ast::Context Ctx;
  topology::ChainLayout Layout;
  topology::makeChain(K, Layout);
  routing::NetworkModel M = routing::buildChainModel(Layout, PFail, Ctx);
  Packet In = M.ingressPacket(0, Ctx);

  std::printf("chain topology: %u diamonds, %u switches, pfail = %s\n\n", K,
              Layout.numSwitches(), PFail.toString().c_str());

  // Closed form for reference: (1 - pfail/2)^K.
  Rational Expected(1);
  for (unsigned I = 0; I < K; ++I)
    Expected *= Rational(1) - PFail / Rational(2);
  std::printf("closed form:      %s\n", Expected.toString().c_str());

  // --- Native backend (PNK).
  WallTimer T1;
  analysis::Verifier V;
  fdd::FddRef Model = V.compile(M.Program);
  Rational Native = V.deliveryProbability(Model, In);
  std::printf("native FDD:       %s   (%.3f s)\n", Native.toString().c_str(),
              T1.elapsed());

  // --- PRISM pipeline (PPNK -> prismlite).
  WallTimer T2;
  prism::Translation Tr = prism::translate(Ctx, M.Program, In);
  prism::Model PM;
  prism::GuardExpr Goal;
  std::string Error;
  if (!prism::parseModel(Tr.Source, PM, Error) ||
      !prism::parseGuard(Tr.DoneGuard, PM, Goal, Error)) {
    std::printf("prism pipeline error: %s\n", Error.c_str());
    return 1;
  }
  prism::CheckResult CR;
  if (!prism::checkReachability(PM, Goal, markov::SolverKind::Exact, CR,
                                Error)) {
    std::printf("prismlite error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("PPNK/prismlite:   %s   (%.3f s, %zu states)\n",
              CR.Probability.toString().c_str(), T2.elapsed(), CR.NumStates);

  // --- Bayonet-style exhaustive inference.
  WallTimer T3;
  baseline::InferenceOptions BO;
  BO.LoopBound = 6 * K + 4;
  baseline::InferenceResult BR = baseline::infer(M.Program, In, BO);
  std::printf("exhaustive:       %s   (%.3f s, %zu paths)\n",
              BR.deliveredMass().toString().c_str(), T3.elapsed(),
              BR.NumPaths);

  bool Agree = Native == Expected && CR.Probability == Expected &&
               BR.deliveredMass() == Expected;
  std::printf("\nall engines agree with the closed form: %s\n",
              Agree ? "yes" : "NO");

  std::printf("\n--- generated PRISM model (excerpt) ---\n");
  std::printf("%.600s...\n", Tr.Source.c_str());
  return Agree ? 0 : 1;
}
