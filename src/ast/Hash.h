//===----------------------------------------------------------------------===//
///
/// \file
/// Salt-stable structural fingerprints over ProbNetKAT terms — the keys of
/// the cross-compile memoization cache (docs/ARCHITECTURE.md S12). A
/// fingerprint is a 128-bit hash of the term's structure (kinds, fields,
/// values, probabilities) computed with fixed constants only: no std::hash,
/// no pointers, no per-process salt, so the same program text fingerprints
/// identically across processes and platforms and cached FDDs could be
/// shared between them.
///
/// The hash is commutativity-aware exactly where the compiled FDD is
/// invariant under the swap, so semantically interchangeable spellings land
/// on the same cache entry:
///  - `t & u` == `u & t` (predicate disjunction),
///  - `t ; u` == `u ; t` when both operands are predicates (conjunction),
///  - `p ⊕_r q` == `q ⊕_{1-r} p` (choice reversal).
/// Everything else is order-sensitive. Fingerprints depend on numeric
/// FieldIds, not field names — which is exactly what determines the FDD.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_AST_HASH_H
#define MCNK_AST_HASH_H

#include "ast/Node.h"
#include "support/Hashing.h"

#include <cstdint>
#include <unordered_map>

namespace mcnk {
namespace ast {

/// 128-bit structural fingerprint. Two independently mixed 64-bit lanes
/// make accidental collisions (which would hand a wrong cached FDD to a
/// caller) astronomically unlikely rather than merely rare.
struct ProgramHash {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool operator==(const ProgramHash &R) const {
    return Lo == R.Lo && Hi == R.Hi;
  }
  bool operator!=(const ProgramHash &R) const { return !(*this == R); }
};

struct ProgramHashHasher {
  std::size_t operator()(const ProgramHash &H) const {
    return static_cast<std::size_t>(H.Lo ^ (H.Hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Fingerprint plus a size heuristic, memoized per term.
struct NodeFingerprint {
  ProgramHash Hash;
  /// Tree-size heuristic (shared subterms counted once per pointer during
  /// the walk, re-added per occurrence, saturating) — used only to gate
  /// which sub-programs are worth a cache round-trip.
  uint32_t Size = 0;
};

/// Memo table mapping arena nodes to their fingerprints. Valid for the
/// lifetime of the owning ast::Context; safe to share read-only across
/// threads once populated.
using FingerprintMemo = std::unordered_map<const Node *, NodeFingerprint>;

/// Fingerprints \p Root and every subterm reachable from it into \p Memo
/// (existing entries are reused, so incremental calls over a growing term
/// are cheap). Iterative — survives arbitrarily deep terms. Returns the
/// root's fingerprint.
const NodeFingerprint &fingerprintTree(const Node *Root,
                                       FingerprintMemo &Memo);

/// One-shot convenience: the structural fingerprint of \p Root.
ProgramHash programHash(const Node *Root);

} // namespace ast
} // namespace mcnk

#endif // MCNK_AST_HASH_H
