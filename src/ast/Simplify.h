//===----------------------------------------------------------------------===//
///
/// \file
/// Verified AST simplification (ARCHITECTURE S15): a semantics-preserving
/// rewrite driven by the S15 abstract interpretation (ast/Analyze.h).
/// Constant-folds tests against the inferred per-field domains, prunes
/// unreachable case arms / if branches / while loops, folds trivial
/// choices, removes dead and redundant assignments, and lets the Context
/// smart constructors collapse skip/drop units in rebuilt seq/union
/// chains.
///
/// The contract — enforced continuously by Oracle::crossCheckProgram's
/// CheckSimplify step on every conformance scenario and fuzz case — is:
///   1. compile(simplify(p)) and compile(p) are reference-equal FDDs
///      (the analysis starts from the full input space and FDD
///      compilation is canonical, so any pointwise-equal rewrite yields
///      the identical diagram), and
///   2. simplify is idempotent: simplify(simplify(p)) == simplify(p).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_AST_SIMPLIFY_H
#define MCNK_AST_SIMPLIFY_H

#include "ast/Analyze.h"

namespace mcnk {
namespace ast {

struct SimplifyOptions {
  AnalyzeOptions Analyze;
  /// Safety valve on the rewrite-until-fixpoint loop. Each changing round
  /// strictly reduces a (tree-size, foldable-leaves) measure, so real
  /// programs converge in a handful of rounds.
  unsigned MaxRounds = 16;
};

struct SimplifyStats {
  unsigned Rounds = 0;
  std::size_t NodesBefore = 0;
  std::size_t NodesAfter = 0;
};

/// Rewrites \p Program to an equivalent, usually smaller program. New
/// nodes are built in \p Ctx; when nothing simplifies, the original
/// pointer is returned unchanged (so cache fingerprints are stable).
const Node *simplify(Context &Ctx, const Node *Program,
                     const SimplifyOptions &Opts = {},
                     SimplifyStats *Stats = nullptr);

} // namespace ast
} // namespace mcnk

#endif // MCNK_AST_SIMPLIFY_H
