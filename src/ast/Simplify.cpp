//===----------------------------------------------------------------------===//
///
/// \file
/// The S15 rewrite engine: one DomainAnalysis per round, then a bottom-up
/// explicit-stack transform that consults the per-node facts. Rounds
/// repeat until the transform returns its input pointer unchanged, which
/// makes simplify idempotent by construction.
///
/// Soundness leans on two pillars. The analysis starts from ⊤, so every
/// "unreachable"/"always true" fact holds for every concrete input packet
/// and each local rewrite is pointwise semantics-preserving; and FDD
/// compilation composes canonically, so a subterm rewritten to anything
/// extensionally equal on its reachable inputs leaves the whole program's
/// diagram reference-identical (the property CheckSimplify asserts).
///
//===----------------------------------------------------------------------===//

#include "ast/Simplify.h"

#include "ast/Traversal.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <cstdint>
#include <map>

using namespace mcnk;
using namespace mcnk::ast;

namespace {

/// In-order flattening of a maximal `;` chain into non-Seq elements;
/// bails past \p Cap elements (heavily shared chains unfold large).
bool flattenSeq(const Node *N, std::vector<const Node *> &Out,
                std::size_t Cap) {
  std::vector<const Node *> Stack{N};
  while (!Stack.empty()) {
    const Node *C = Stack.back();
    Stack.pop_back();
    if (const auto *S = dyn_cast<SeqNode>(C)) {
      Stack.push_back(S->rhs());
      Stack.push_back(S->lhs());
      continue;
    }
    if (Out.size() >= Cap)
      return false;
    Out.push_back(C);
  }
  return true;
}

enum class Shape : uint8_t {
  Not,
  SeqChain,
  Union,
  Choice,
  Star,
  Ite,
  While,
  Case,
  Only, ///< single surviving child replaces the node
};

struct TFrame {
  const Node *N;
  Shape Kind;
  std::size_t Idx = 0;
  std::vector<const Node *> Kids;
  std::vector<const Node *> Out;
  // Case plan:
  std::vector<std::size_t> ArmIdx; ///< kept arm indices, in order
  bool CutAtTotal = false; ///< last kept arm's guard is total → new default
  bool KeepDefault = true; ///< else arm reachable (transform it)
};

class Transformer {
public:
  Transformer(Context &C, const DomainAnalysis &DA) : Ctx(C), A(DA) {}

  const Node *run(const Node *Root) {
    enter(Root);
    while (!Stack.empty()) {
      TFrame &F = Stack.back();
      if (F.Out.size() < F.Idx)
        F.Out.push_back(Ret); // Collect the child that just returned.
      if (F.Idx < F.Kids.size()) {
        const Node *Kid = F.Kids[F.Idx++];
        enter(Kid); // May push; F must not be touched afterwards.
        continue;
      }
      Ret = combine(F);
      Stack.pop_back();
    }
    return Ret;
  }

private:
  /// Either computes the node's result directly into Ret (leaves and
  /// fact-pruned constructs) or pushes a frame whose Kids still need
  /// transforming.
  void enter(const Node *N) {
    switch (N->kind()) {
    case NodeKind::Drop:
    case NodeKind::Skip:
      Ret = N;
      return;
    case NodeKind::Test: {
      switch (A.testTruth(cast<TestNode>(N))) {
      case DomainAnalysis::Truth::True:
        Ret = Ctx.skip(); // Also sound under ¬: ¬skip = drop = ¬t here.
        return;
      case DomainAnalysis::Truth::False:
        Ret = Ctx.drop();
        return;
      case DomainAnalysis::Truth::Unknown:
        Ret = N;
        return;
      }
      MCNK_UNREACHABLE("bad truth");
    }
    case NodeKind::Assign:
      // assignRedundant is diagnostic-only: when the fact `f=v` comes from
      // a dominating *test* the assignment still changes the compiled
      // diagram (the leaf records the modification `f:=v`; dropping it
      // leaves `id`), so rewriting here would break FDD reference
      // equality even though the programs are pointwise equal.  The
      // reference-safe subset — `f:=v` pinned by a dominating
      // *assignment* in the same chain — is handled in combineSeq.
      Ret = N;
      return;
    case NodeKind::Not:
      push(N, Shape::Not, {cast<NotNode>(N)->operand()});
      return;
    case NodeKind::Seq: {
      std::vector<const Node *> Elems;
      if (!flattenSeq(N, Elems, std::size_t(1) << 20)) {
        Ret = N; // Chain too large to rebuild; leave untouched.
        return;
      }
      push(N, Shape::SeqChain, std::move(Elems));
      return;
    }
    case NodeKind::Union:
      push(N, Shape::Union,
           {cast<UnionNode>(N)->lhs(), cast<UnionNode>(N)->rhs()});
      return;
    case NodeKind::Choice:
      push(N, Shape::Choice,
           {cast<ChoiceNode>(N)->lhs(), cast<ChoiceNode>(N)->rhs()});
      return;
    case NodeKind::Star:
      push(N, Shape::Star, {cast<StarNode>(N)->body()});
      return;
    case NodeKind::IfThenElse: {
      const auto *I = cast<IfThenElseNode>(N);
      if (!A.reached(N)) {
        Ret = N; // Dead in every context; the parent prunes it.
        return;
      }
      bool ThenR = A.branchReachable(I, true);
      bool ElseR = A.branchReachable(I, false);
      if (ThenR && !ElseR) {
        push(N, Shape::Only, {I->thenBranch()});
        return;
      }
      if (!ThenR && ElseR) {
        push(N, Shape::Only, {I->elseBranch()});
        return;
      }
      push(N, Shape::Ite, {I->cond(), I->thenBranch(), I->elseBranch()});
      return;
    }
    case NodeKind::While: {
      const auto *W = cast<WhileNode>(N);
      if (!A.reached(N)) {
        Ret = N;
        return;
      }
      if (!A.loopEntered(W)) {
        Ret = Ctx.skip(); // Guard statically false: zero iterations.
        return;
      }
      if (!A.loopExits(W)) {
        // Guard never turns false: no packet is ever delivered, and the
        // sub-probability semantics assigns the divergent mass 0 — the
        // loop is extensionally drop.
        Ret = Ctx.drop();
        return;
      }
      push(N, Shape::While, {W->cond(), W->body()});
      return;
    }
    case NodeKind::Case: {
      const auto *C = cast<CaseNode>(N);
      if (!A.reached(N)) {
        Ret = N;
        return;
      }
      TFrame F;
      F.N = N;
      F.Kind = Shape::Case;
      const auto &Br = C->branches();
      for (std::size_t I = 0; I < Br.size(); ++I) {
        if (!A.armReachable(C, I))
          continue; // Guard never fires here: prune the arm.
        F.ArmIdx.push_back(I);
        if (A.guardTotal(C, I)) {
          // This guard matches every remaining packet: its body becomes
          // the new default, later arms (and the else) are dead.
          F.CutAtTotal = true;
          break;
        }
      }
      F.KeepDefault = !F.CutAtTotal && A.armReachable(C, Br.size());
      for (std::size_t I : F.ArmIdx) {
        F.Kids.push_back(Br[I].first);
        F.Kids.push_back(Br[I].second);
      }
      if (F.KeepDefault)
        F.Kids.push_back(C->defaultBranch());
      Stack.push_back(std::move(F));
      return;
    }
    }
    MCNK_UNREACHABLE("unhandled node kind");
  }

  void push(const Node *N, Shape Kind, std::vector<const Node *> Kids) {
    TFrame F;
    F.N = N;
    F.Kind = Kind;
    F.Kids = std::move(Kids);
    Stack.push_back(std::move(F));
  }

  const Node *combine(TFrame &F) {
    switch (F.Kind) {
    case Shape::Only:
      return F.Out[0];
    case Shape::Not: {
      const Node *Op = F.Out[0];
      return Op == F.Kids[0] ? F.N : Ctx.negate(Op);
    }
    case Shape::SeqChain:
      return combineSeq(F);
    case Shape::Union: {
      if (F.Out[0] == F.Kids[0] && F.Out[1] == F.Kids[1])
        return F.N;
      return Ctx.unite(F.Out[0], F.Out[1]);
    }
    case Shape::Choice: {
      const auto *C = cast<ChoiceNode>(F.N);
      if (structurallyEqual(F.Out[0], F.Out[1]))
        return F.Out[0]; // p ⊕_r p = p.
      if (F.Out[0] == F.Kids[0] && F.Out[1] == F.Kids[1])
        return F.N;
      return Ctx.choice(C->probability(), F.Out[0], F.Out[1]);
    }
    case Shape::Star:
      return F.Out[0] == F.Kids[0] ? F.N : Ctx.star(F.Out[0]);
    case Shape::Ite: {
      if (F.Out[0] == F.Kids[0] && F.Out[1] == F.Kids[1] &&
          F.Out[2] == F.Kids[2])
        return F.N;
      return Ctx.ite(F.Out[0], F.Out[1], F.Out[2]);
    }
    case Shape::While: {
      if (F.Out[0] == F.Kids[0] && F.Out[1] == F.Kids[1])
        return F.N;
      return Ctx.whileLoop(F.Out[0], F.Out[1]);
    }
    case Shape::Case:
      return combineCase(F);
    }
    MCNK_UNREACHABLE("unhandled shape");
  }

  const Node *combineSeq(TFrame &F) {
    // Re-flatten: transformed elements may themselves be chains (e.g. an
    // if collapsed to its then-branch).
    std::vector<const Node *> Flat;
    bool Changed = false;
    for (std::size_t I = 0; I < F.Out.size(); ++I) {
      Changed |= F.Out[I] != F.Kids[I];
      if (isa<SeqNode>(F.Out[I]) &&
          flattenSeq(F.Out[I], Flat, std::size_t(1) << 20))
        continue;
      Flat.push_back(F.Out[I]);
    }
    // Drop assignments immediately overwritten by a later assignment to
    // the same field (skips in between were already collapsed away by
    // the fold below on the previous round; be conservative otherwise).
    std::vector<char> Keep(Flat.size(), 1);
    std::ptrdiff_t Next = -1;
    for (std::ptrdiff_t I = static_cast<std::ptrdiff_t>(Flat.size()) - 1;
         I >= 0; --I) {
      const auto *Cur = dyn_cast<AssignNode>(Flat[I]);
      const AssignNode *Succ =
          Next >= 0 ? dyn_cast<AssignNode>(Flat[Next]) : nullptr;
      if (Cur && Succ && Cur->field() == Succ->field()) {
        Keep[I] = 0;
        Changed = true;
        continue; // Next stays: the surviving overwrite.
      }
      Next = I;
    }
    // Drop re-assignments pinned by a dominating assignment: once every
    // path through the prefix writes `f:=v`, a later `f:=v` composes to
    // the identity on the diagram's leaf actions, so removing it keeps
    // the compiled FDD reference-equal (unlike test-pinned facts, which
    // guarantee the value without recording the modification).  Only
    // predicates are transparent; any other element may write the field,
    // so it conservatively clears all pins.
    std::map<FieldId, FieldValue> Pinned;
    for (std::size_t I = 0; I < Flat.size(); ++I) {
      if (!Keep[I])
        continue;
      if (const auto *AN = dyn_cast<AssignNode>(Flat[I])) {
        auto It = Pinned.find(AN->field());
        if (It != Pinned.end() && It->second == AN->value()) {
          Keep[I] = 0;
          Changed = true;
        } else {
          Pinned[AN->field()] = AN->value();
        }
      } else if (!Flat[I]->isPredicate()) {
        Pinned.clear();
      }
    }
    if (!Changed)
      return F.N;
    const Node *Result = Ctx.skip();
    for (std::size_t I = 0; I < Flat.size(); ++I)
      if (Keep[I])
        Result = Ctx.seq(Result, Flat[I]);
    return Result;
  }

  const Node *combineCase(TFrame &F) {
    const auto *C = cast<CaseNode>(F.N);
    const auto &Br = C->branches();
    bool Changed = F.CutAtTotal || F.ArmIdx.size() != Br.size() ||
                   (!F.KeepDefault && !F.CutAtTotal &&
                    !isa<DropNode>(C->defaultBranch()));
    for (std::size_t I = 0; I < F.Out.size(); ++I)
      Changed |= F.Out[I] != F.Kids[I];
    if (!Changed)
      return F.N;

    std::vector<CaseNode::Branch> Branches;
    std::size_t NumArms = F.ArmIdx.size();
    const Node *Default = nullptr;
    if (F.CutAtTotal) {
      // The last kept arm's guard is total: its body is the new default.
      for (std::size_t K = 0; K + 1 < NumArms; ++K)
        Branches.push_back({F.Out[2 * K], F.Out[2 * K + 1]});
      Default = F.Out[2 * (NumArms - 1) + 1];
    } else {
      for (std::size_t K = 0; K < NumArms; ++K)
        Branches.push_back({F.Out[2 * K], F.Out[2 * K + 1]});
      Default = F.KeepDefault ? F.Out.back() : Ctx.drop();
    }
    return Ctx.caseOf(std::move(Branches), Default);
  }

  Context &Ctx;
  const DomainAnalysis &A;
  std::vector<TFrame> Stack;
  const Node *Ret = nullptr;
};

} // namespace

const Node *ast::simplify(Context &Ctx, const Node *Program,
                          const SimplifyOptions &Opts,
                          SimplifyStats *Stats) {
  const Node *Cur = Program;
  unsigned Round = 0;
  for (; Round < Opts.MaxRounds; ++Round) {
    DomainAnalysis A(Ctx, Cur, Opts.Analyze);
    const Node *Next = Transformer(Ctx, A).run(Cur);
    if (Next == Cur || structurallyEqual(Next, Cur))
      break;
    Cur = Next;
  }
  if (Stats) {
    Stats->Rounds = Round;
    Stats->NodesBefore = countNodes(Program);
    Stats->NodesAfter = countNodes(Cur);
  }
  return Cur;
}
