//===----------------------------------------------------------------------===//
///
/// \file
/// ProbNetKAT abstract syntax (paper Fig 2). Terms divide into predicates
/// (drop, skip, f=n, &, ;, ¬) and programs (predicates, f:=n, &, ;, ⊕_r,
/// *). The guarded fragment adds first-class conditionals, while loops, and
/// the n-ary disjoint `case` construct (§6) that the parallel backend
/// compiles map-reduce style.
///
/// Nodes are immutable, arena-allocated by Context, and use LLVM-style
/// kind-based RTTI (isa/cast/dyn_cast via classof).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_AST_NODE_H
#define MCNK_AST_NODE_H

#include "packet/Field.h"
#include "support/Casting.h"
#include "support/Rational.h"

#include <utility>
#include <vector>

namespace mcnk {
namespace ast {

/// Discriminator for Node's subclasses.
enum class NodeKind : uint8_t {
  Drop,       ///< false / abort
  Skip,       ///< true / identity
  Test,       ///< f = n
  Assign,     ///< f := n
  Not,        ///< ¬t (predicate only)
  Seq,        ///< p ; q (conjunction on predicates)
  Union,      ///< p & q (disjunction on predicates)
  Choice,     ///< p ⊕_r q
  Star,       ///< p* (full language only; not in the guarded fragment)
  IfThenElse, ///< if t then p else q
  While,      ///< while t do p
  Case,       ///< case t1 -> p1 | ... | else -> q (first-match cascade)
};

/// Base class of all ProbNetKAT terms.
class Node {
public:
  Node(const Node &) = delete;
  Node &operator=(const Node &) = delete;
  virtual ~Node() = default;

  NodeKind kind() const { return Kind; }

  /// True if this term denotes a predicate (filters packets, no
  /// randomness, no modification). Computed structurally at construction.
  bool isPredicate() const { return IsPred; }

protected:
  Node(NodeKind K, bool Pred) : Kind(K), IsPred(Pred) {}

private:
  NodeKind Kind;
  bool IsPred;
};

/// drop — the constant-false predicate; maps every input to ∅.
class DropNode : public Node {
public:
  DropNode() : Node(NodeKind::Drop, /*IsPred=*/true) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Drop; }
};

/// skip — the constant-true predicate; the identity program.
class SkipNode : public Node {
public:
  SkipNode() : Node(NodeKind::Skip, /*IsPred=*/true) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Skip; }
};

/// f = n — passes the packet iff field f holds n.
class TestNode : public Node {
public:
  TestNode(FieldId F, FieldValue V)
      : Node(NodeKind::Test, /*IsPred=*/true), Field(F), Value(V) {}

  FieldId field() const { return Field; }
  FieldValue value() const { return Value; }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Test; }

private:
  FieldId Field;
  FieldValue Value;
};

/// f := n — functional field update.
class AssignNode : public Node {
public:
  AssignNode(FieldId F, FieldValue V)
      : Node(NodeKind::Assign, /*IsPred=*/false), Field(F), Value(V) {}

  FieldId field() const { return Field; }
  FieldValue value() const { return Value; }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Assign; }

private:
  FieldId Field;
  FieldValue Value;
};

/// ¬t — predicate negation.
class NotNode : public Node {
public:
  explicit NotNode(const Node *Op)
      : Node(NodeKind::Not, /*IsPred=*/true), Operand(Op) {}

  const Node *operand() const { return Operand; }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Not; }

private:
  const Node *Operand;
};

/// p ; q — sequential composition; conjunction on predicates.
class SeqNode : public Node {
public:
  SeqNode(const Node *L, const Node *R)
      : Node(NodeKind::Seq, L->isPredicate() && R->isPredicate()), Lhs(L),
        Rhs(R) {}

  const Node *lhs() const { return Lhs; }
  const Node *rhs() const { return Rhs; }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Seq; }

private:
  const Node *Lhs, *Rhs;
};

/// p & q — parallel composition; disjunction on predicates. Outside
/// predicates this is only available to the reference set semantics (the
/// guarded single-packet backends reject it).
class UnionNode : public Node {
public:
  UnionNode(const Node *L, const Node *R)
      : Node(NodeKind::Union, L->isPredicate() && R->isPredicate()), Lhs(L),
        Rhs(R) {}

  const Node *lhs() const { return Lhs; }
  const Node *rhs() const { return Rhs; }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Union; }

private:
  const Node *Lhs, *Rhs;
};

/// p ⊕_r q — executes p with probability r, q with probability 1 - r.
class ChoiceNode : public Node {
public:
  ChoiceNode(Rational Prob, const Node *L, const Node *R)
      : Node(NodeKind::Choice, /*IsPred=*/false),
        Probability(std::move(Prob)), Lhs(L), Rhs(R) {}

  const Rational &probability() const { return Probability; }
  const Node *lhs() const { return Lhs; }
  const Node *rhs() const { return Rhs; }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Choice; }

private:
  Rational Probability;
  const Node *Lhs, *Rhs;
};

/// p* — iteration (full language only).
class StarNode : public Node {
public:
  explicit StarNode(const Node *B)
      : Node(NodeKind::Star, /*IsPred=*/false), Body(B) {}

  const Node *body() const { return Body; }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Star; }

private:
  const Node *Body;
};

/// if t then p else q — guarded branching (≜ t;p & ¬t;q).
class IfThenElseNode : public Node {
public:
  IfThenElseNode(const Node *C, const Node *T, const Node *E)
      : Node(NodeKind::IfThenElse, /*IsPred=*/false), Cond(C), Then(T),
        Else(E) {}

  const Node *cond() const { return Cond; }
  const Node *thenBranch() const { return Then; }
  const Node *elseBranch() const { return Else; }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::IfThenElse;
  }

private:
  const Node *Cond, *Then, *Else;
};

/// while t do p — guarded iteration (≜ (t;p)* ; ¬t).
class WhileNode : public Node {
public:
  WhileNode(const Node *C, const Node *B)
      : Node(NodeKind::While, /*IsPred=*/false), Cond(C), Body(B) {}

  const Node *cond() const { return Cond; }
  const Node *body() const { return Body; }

  static bool classof(const Node *N) { return N->kind() == NodeKind::While; }

private:
  const Node *Cond, *Body;
};

/// case t1 -> p1 | ... | tn -> pn | else -> q — n-ary branching (§6).
/// Semantically a first-match conditional cascade: guards need not be
/// disjoint, and branch i fires only where guards 1..i-1 failed (every
/// backend, including the PRISM translation, implements this). The
/// parallel backend compiles branches concurrently and merges the
/// results.
class CaseNode : public Node {
public:
  using Branch = std::pair<const Node *, const Node *>; // (guard, program)

  CaseNode(std::vector<Branch> Arms, const Node *Dflt)
      : Node(NodeKind::Case, /*IsPred=*/false), Branches(std::move(Arms)),
        Default(Dflt) {}

  const std::vector<Branch> &branches() const { return Branches; }
  const Node *defaultBranch() const { return Default; }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Case; }

private:
  std::vector<Branch> Branches;
  const Node *Default;
};

} // namespace ast
} // namespace mcnk

#endif // MCNK_AST_NODE_H
