//===----------------------------------------------------------------------===//
///
/// \file
/// Structural fingerprinting: an iterative post-order walk over the term
/// DAG computing two independently mixed 64-bit lanes per node from fixed
/// constants only (salt-stable across processes), with the commutative
/// normalizations documented in Hash.h.
///
//===----------------------------------------------------------------------===//

#include "ast/Hash.h"

#include "support/Casting.h"
#include "support/Error.h"

#include <algorithm>
#include <string>
#include <vector>

using namespace mcnk;
using namespace mcnk::ast;

namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mix with fixed constants.
uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// FNV-1a over bytes — the salt-stable scalar hash for probabilities
/// (hashed through their canonical decimal rendering, which is exact for
/// rationals and independent of the internal representation).
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// Two-lane accumulator; both lanes see every folded value but mix it
/// with different constants, giving 128 effectively independent bits.
struct Lanes {
  uint64_t A, B;

  explicit Lanes(uint64_t Tag)
      : A(mix64(Tag ^ 0x5851f42d4c957f2dULL)),
        B(mix64(Tag + 0x14057b7ef767814fULL)) {}

  void fold(uint64_t V) {
    A = mix64(A ^ (V + 0x9e3779b97f4a7c15ULL + (A << 6) + (A >> 2)));
    B = mix64(B + (V ^ 0xd6e8feb86659fd93ULL) + (B << 5) + (B >> 3));
  }
  void fold(const ProgramHash &H) {
    fold(H.Lo);
    fold(H.Hi);
  }
  ProgramHash done() const { return {A, B}; }
};

/// Fixed per-kind tags (never reuse a value; the predicate-commutative
/// variants of Seq get their own tag so `t;u` on predicates cannot collide
/// with `t&u`).
enum : uint64_t {
  TagDrop = 0x11,
  TagSkip = 0x12,
  TagTest = 0x13,
  TagAssign = 0x14,
  TagNot = 0x15,
  TagSeq = 0x16,
  TagSeqPred = 0x17,
  TagUnion = 0x18,
  TagChoice = 0x19,
  TagStar = 0x1a,
  TagIte = 0x1b,
  TagWhile = 0x1c,
  TagCase = 0x1d,
};

/// Orders two (probability-hash, operand-hash) pairs for the symmetric
/// folds; total order, ties broken on every component.
using WeightedChild = std::pair<uint64_t, ProgramHash>;
bool weightedLess(const WeightedChild &X, const WeightedChild &Y) {
  if (X.first != Y.first)
    return X.first < Y.first;
  if (X.second.Lo != Y.second.Lo)
    return X.second.Lo < Y.second.Lo;
  return X.second.Hi < Y.second.Hi;
}

bool hashLess(const ProgramHash &X, const ProgramHash &Y) {
  return X.Lo != Y.Lo ? X.Lo < Y.Lo : X.Hi < Y.Hi;
}

uint32_t saturatingSize(uint64_t Size) {
  return Size > 0xffffffffULL ? 0xffffffffu : static_cast<uint32_t>(Size);
}

/// Children of \p N in evaluation order (empty for atoms).
void appendChildren(const Node *N, std::vector<const Node *> &Out) {
  switch (N->kind()) {
  case NodeKind::Drop:
  case NodeKind::Skip:
  case NodeKind::Test:
  case NodeKind::Assign:
    return;
  case NodeKind::Not:
    Out.push_back(cast<NotNode>(N)->operand());
    return;
  case NodeKind::Seq:
    Out.push_back(cast<SeqNode>(N)->lhs());
    Out.push_back(cast<SeqNode>(N)->rhs());
    return;
  case NodeKind::Union:
    Out.push_back(cast<UnionNode>(N)->lhs());
    Out.push_back(cast<UnionNode>(N)->rhs());
    return;
  case NodeKind::Choice:
    Out.push_back(cast<ChoiceNode>(N)->lhs());
    Out.push_back(cast<ChoiceNode>(N)->rhs());
    return;
  case NodeKind::Star:
    Out.push_back(cast<StarNode>(N)->body());
    return;
  case NodeKind::IfThenElse:
    Out.push_back(cast<IfThenElseNode>(N)->cond());
    Out.push_back(cast<IfThenElseNode>(N)->thenBranch());
    Out.push_back(cast<IfThenElseNode>(N)->elseBranch());
    return;
  case NodeKind::While:
    Out.push_back(cast<WhileNode>(N)->cond());
    Out.push_back(cast<WhileNode>(N)->body());
    return;
  case NodeKind::Case: {
    const auto *C = cast<CaseNode>(N);
    for (const auto &[Guard, Program] : C->branches()) {
      Out.push_back(Guard);
      Out.push_back(Program);
    }
    Out.push_back(C->defaultBranch());
    return;
  }
  }
  MCNK_UNREACHABLE("unhandled node kind");
}

/// Computes one node's fingerprint; every child must already be memoized.
NodeFingerprint computeFingerprint(const Node *N,
                                   const FingerprintMemo &Memo) {
  auto Child = [&](const Node *C) -> const NodeFingerprint & {
    return Memo.at(C);
  };
  uint64_t Size = 1;
  auto FoldSize = [&](const Node *C) { Size += Child(C).Size; };

  switch (N->kind()) {
  case NodeKind::Drop:
    return {Lanes(TagDrop).done(), 1};
  case NodeKind::Skip:
    return {Lanes(TagSkip).done(), 1};
  case NodeKind::Test: {
    const auto *T = cast<TestNode>(N);
    Lanes L(TagTest);
    L.fold(T->field());
    L.fold(T->value());
    return {L.done(), 1};
  }
  case NodeKind::Assign: {
    const auto *T = cast<AssignNode>(N);
    Lanes L(TagAssign);
    L.fold(T->field());
    L.fold(T->value());
    return {L.done(), 1};
  }
  case NodeKind::Not: {
    Lanes L(TagNot);
    const Node *Op = cast<NotNode>(N)->operand();
    L.fold(Child(Op).Hash);
    FoldSize(Op);
    return {L.done(), saturatingSize(Size)};
  }
  case NodeKind::Seq: {
    const auto *S = cast<SeqNode>(N);
    ProgramHash HL = Child(S->lhs()).Hash, HR = Child(S->rhs()).Hash;
    FoldSize(S->lhs());
    FoldSize(S->rhs());
    // Predicate sequencing is conjunction, which commutes on canonical
    // FDDs; fold the operands in hash order so both spellings share one
    // cache entry. Program sequencing stays order-sensitive.
    if (N->isPredicate()) {
      Lanes L(TagSeqPred);
      if (hashLess(HR, HL))
        std::swap(HL, HR);
      L.fold(HL);
      L.fold(HR);
      return {L.done(), saturatingSize(Size)};
    }
    Lanes L(TagSeq);
    L.fold(HL);
    L.fold(HR);
    return {L.done(), saturatingSize(Size)};
  }
  case NodeKind::Union: {
    const auto *U = cast<UnionNode>(N);
    ProgramHash HL = Child(U->lhs()).Hash, HR = Child(U->rhs()).Hash;
    FoldSize(U->lhs());
    FoldSize(U->rhs());
    // Disjunction commutes (and the reference set semantics of the
    // non-predicate union is also symmetric), so always fold symmetric.
    Lanes L(TagUnion);
    if (hashLess(HR, HL))
      std::swap(HL, HR);
    L.fold(HL);
    L.fold(HR);
    return {L.done(), saturatingSize(Size)};
  }
  case NodeKind::Choice: {
    const auto *C = cast<ChoiceNode>(N);
    FoldSize(C->lhs());
    FoldSize(C->rhs());
    // p ⊕_r q == q ⊕_{1-r} p: pair each operand with its own weight and
    // fold the pairs in a canonical order.
    WeightedChild A{fnv1a(C->probability().toString()),
                    Child(C->lhs()).Hash};
    WeightedChild B{fnv1a((Rational(1) - C->probability()).toString()),
                    Child(C->rhs()).Hash};
    if (weightedLess(B, A))
      std::swap(A, B);
    Lanes L(TagChoice);
    L.fold(A.first);
    L.fold(A.second);
    L.fold(B.first);
    L.fold(B.second);
    return {L.done(), saturatingSize(Size)};
  }
  case NodeKind::Star: {
    Lanes L(TagStar);
    const Node *Body = cast<StarNode>(N)->body();
    L.fold(Child(Body).Hash);
    FoldSize(Body);
    return {L.done(), saturatingSize(Size)};
  }
  case NodeKind::IfThenElse: {
    const auto *I = cast<IfThenElseNode>(N);
    Lanes L(TagIte);
    L.fold(Child(I->cond()).Hash);
    L.fold(Child(I->thenBranch()).Hash);
    L.fold(Child(I->elseBranch()).Hash);
    FoldSize(I->cond());
    FoldSize(I->thenBranch());
    FoldSize(I->elseBranch());
    return {L.done(), saturatingSize(Size)};
  }
  case NodeKind::While: {
    const auto *W = cast<WhileNode>(N);
    Lanes L(TagWhile);
    L.fold(Child(W->cond()).Hash);
    L.fold(Child(W->body()).Hash);
    FoldSize(W->cond());
    FoldSize(W->body());
    return {L.done(), saturatingSize(Size)};
  }
  case NodeKind::Case: {
    const auto *C = cast<CaseNode>(N);
    Lanes L(TagCase);
    L.fold(C->branches().size());
    for (const auto &[Guard, Program] : C->branches()) {
      L.fold(Child(Guard).Hash);
      L.fold(Child(Program).Hash);
      FoldSize(Guard);
      FoldSize(Program);
    }
    L.fold(Child(C->defaultBranch()).Hash);
    FoldSize(C->defaultBranch());
    return {L.done(), saturatingSize(Size)};
  }
  }
  MCNK_UNREACHABLE("unhandled node kind");
}

} // namespace

const NodeFingerprint &ast::fingerprintTree(const Node *Root,
                                            FingerprintMemo &Memo) {
  struct WalkFrame {
    const Node *N;
    bool Expanded;
  };
  std::vector<WalkFrame> Stack;
  std::vector<const Node *> Children;
  Stack.push_back({Root, false});
  while (!Stack.empty()) {
    WalkFrame &Top = Stack.back();
    if (Memo.count(Top.N)) {
      Stack.pop_back();
      continue;
    }
    if (!Top.Expanded) {
      Top.Expanded = true;
      Children.clear();
      appendChildren(Top.N, Children);
      // Note: pushing may invalidate Top; nothing below reads it.
      for (const Node *C : Children)
        if (!Memo.count(C))
          Stack.push_back({C, false});
      continue;
    }
    const Node *N = Top.N;
    Stack.pop_back();
    Memo.emplace(N, computeFingerprint(N, Memo));
  }
  return Memo.at(Root);
}

ProgramHash ast::programHash(const Node *Root) {
  FingerprintMemo Memo;
  return fingerprintTree(Root, Memo).Hash;
}
