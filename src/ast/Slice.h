//===----------------------------------------------------------------------===//
///
/// \file
/// Query-directed cone-of-influence slicing (ARCHITECTURE S17). Given a
/// query's ObservationSet, the slicer computes the backward cone over the
/// S17 dependency graph and rewrites the program so FDD compilation never
/// pays for fields the query cannot see: assignments to out-of-cone
/// fields become skip (tests are always kept — a test can filter packets,
/// and in-cone guard structure must survive), then the verified S15
/// simplifier collapses the branches and chains the deletions emptied.
///
/// The soundness bar is weaker than S15's reference equality — the sliced
/// diagram equals the original only after projecting leaf actions onto
/// the cone — which is exactly what the oracle's CheckSlice asserts,
/// together with answer-string equality for every query form.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_AST_SLICE_H
#define MCNK_AST_SLICE_H

#include "ast/Deps.h"

#include <cstddef>
#include <vector>

namespace mcnk {
namespace ast {

struct SliceStats {
  /// Assignments rewritten to skip.
  std::size_t AssignmentsRemoved = 0;
  /// AST node counts before slicing and after slice + simplify.
  std::size_t NodesBefore = 0;
  std::size_t NodesAfter = 0;
  /// Field universe: mentioned fields before, cone fields after.
  std::size_t FieldsBefore = 0;
  std::size_t FieldsRelevant = 0;
};

/// A sliced program plus the projected field universe it is valid over.
struct SliceResult {
  /// The sliced program; the original pointer when nothing was removed.
  const Node *Program = nullptr;
  /// The cone of influence, indexed by FieldId: the projected field
  /// universe FDD compilation of Program branches within. Fields outside
  /// it are neither tested nor assigned by Program.
  std::vector<bool> Relevant;
  SliceStats Stats;
};

/// Slices \p Program for \p Obs. Rewritten nodes are built in \p Ctx
/// (which must own the program's nodes). Deterministic and idempotent:
/// slicing the result again with the same observation set returns it
/// unchanged.
SliceResult slice(Context &Ctx, const Node *Program,
                  const ObservationSet &Obs);

} // namespace ast
} // namespace mcnk

#endif // MCNK_AST_SLICE_H
