//===----------------------------------------------------------------------===//
///
/// \file
/// The S17 dependency pass. Two explicit-stack walks:
///
///  1. A syntactic post-order pass computing per-subtree read/written sets
///     (memoized across hash-consed sharing) and the first test/assignment
///     per field, in source order.
///
///  2. A worklist pass propagating *guard contexts* — the set of fields
///     tested by enclosing if/while/case guards — down the tree. Contexts
///     attached to a node only ever grow (OR-merge across the different
///     paths that reach a shared subtree), so re-processing a node whose
///     context grew reaches a fixpoint; `while` bodies need no extra
///     iteration beyond that because assignments are constant, making the
///     edge relation a function of the static guard structure alone.
///
/// A node can occur both as a guard (if/while condition, case guard) and
/// in program position (a bare filter); the two roles propagate different
/// facts — program-position tests can drop packets, guard tests cannot
/// (the enclosing construct is total) — so contexts are tracked per role.
///
//===----------------------------------------------------------------------===//

#include "ast/Deps.h"

#include "support/Casting.h"
#include "support/Error.h"

#include <algorithm>
#include <deque>
#include <functional>

using namespace mcnk;
using namespace mcnk::ast;

namespace {

/// Dense field bitset used for guard contexts.
using Bits = std::vector<uint64_t>;

std::size_t wordsFor(std::size_t NumFields) { return (NumFields + 63) / 64; }

void setBit(Bits &B, FieldId F) { B[F / 64] |= uint64_t(1) << (F % 64); }

/// OR \p Src into \p Dst; returns true when Dst changed.
bool orInto(Bits &Dst, const Bits &Src) {
  bool Changed = false;
  for (std::size_t I = 0; I < Dst.size(); ++I) {
    uint64_t Merged = Dst[I] | Src[I];
    Changed |= Merged != Dst[I];
    Dst[I] = Merged;
  }
  return Changed;
}

void forEachSetBit(const Bits &B, std::size_t NumFields,
                   const std::function<void(FieldId)> &Fn) {
  for (std::size_t F = 0; F < NumFields; ++F)
    if (B[F / 64] & (uint64_t(1) << (F % 64)))
      Fn(static_cast<FieldId>(F));
}

/// In-order children of \p N (guards and bodies alike).
void forEachChild(const Node *N, const std::function<void(const Node *)> &Fn) {
  switch (N->kind()) {
  case NodeKind::Drop:
  case NodeKind::Skip:
  case NodeKind::Test:
  case NodeKind::Assign:
    return;
  case NodeKind::Not:
    Fn(cast<NotNode>(N)->operand());
    return;
  case NodeKind::Seq:
    Fn(cast<SeqNode>(N)->lhs());
    Fn(cast<SeqNode>(N)->rhs());
    return;
  case NodeKind::Union:
    Fn(cast<UnionNode>(N)->lhs());
    Fn(cast<UnionNode>(N)->rhs());
    return;
  case NodeKind::Choice:
    Fn(cast<ChoiceNode>(N)->lhs());
    Fn(cast<ChoiceNode>(N)->rhs());
    return;
  case NodeKind::Star:
    Fn(cast<StarNode>(N)->body());
    return;
  case NodeKind::IfThenElse: {
    const auto *I = cast<IfThenElseNode>(N);
    Fn(I->cond());
    Fn(I->thenBranch());
    Fn(I->elseBranch());
    return;
  }
  case NodeKind::While: {
    const auto *W = cast<WhileNode>(N);
    Fn(W->cond());
    Fn(W->body());
    return;
  }
  case NodeKind::Case: {
    const auto *C = cast<CaseNode>(N);
    for (const CaseNode::Branch &B : C->branches()) {
      Fn(B.first);
      Fn(B.second);
    }
    Fn(C->defaultBranch());
    return;
  }
  }
  MCNK_UNREACHABLE("unhandled node kind");
}

} // namespace

FieldDeps::FieldDeps(const Context &Ctx, const Node *Program) {
  NumFields = Ctx.fields().numFields();
  Read.assign(NumFields, false);
  Written.assign(NumFields, false);
  DropDep.assign(NumFields, false);
  ForceRelevant.assign(NumFields, false);
  Edges.assign(NumFields, std::vector<bool>(NumFields, false));
  FirstTest.assign(NumFields, nullptr);
  FirstAssign.assign(NumFields, nullptr);
  Empty.assign(NumFields, false);
  computeSubtreeSets(Program);
  run(Ctx, Program);
}

const std::vector<bool> &FieldDeps::readSet(const Node *N) const {
  auto It = ReadSets.find(N);
  return It == ReadSets.end() ? Empty : It->second;
}

const std::vector<bool> &FieldDeps::writtenSet(const Node *N) const {
  auto It = WrittenSets.find(N);
  return It == WrittenSets.end() ? Empty : It->second;
}

void FieldDeps::computeSubtreeSets(const Node *Program) {
  // Post-order with a phase bit; shared subtrees are computed once, and
  // the pre-order (first-visit) side doubles as the syntactic-order scan
  // recording the first test/assignment per field.
  struct Frame {
    const Node *N;
    bool Expanded;
  };
  std::vector<Frame> Stack{{Program, false}};
  while (!Stack.empty()) {
    Frame F = Stack.back();
    Stack.pop_back();
    if (!F.Expanded) {
      if (ReadSets.count(F.N))
        continue; // Shared subtree already (or about to be) computed.
      if (const auto *T = dyn_cast<TestNode>(F.N)) {
        if (T->field() < NumFields) {
          Read[T->field()] = true;
          if (!FirstTest[T->field()])
            FirstTest[T->field()] = F.N;
        }
      } else if (const auto *A = dyn_cast<AssignNode>(F.N)) {
        if (A->field() < NumFields) {
          Written[A->field()] = true;
          if (!FirstAssign[A->field()])
            FirstAssign[A->field()] = F.N;
        }
      }
      Stack.push_back({F.N, true});
      // Push children reversed so the pre-order visits them in syntactic
      // order (first-test anchors point at the earliest occurrence).
      std::vector<const Node *> Kids;
      forEachChild(F.N, [&](const Node *C) { Kids.push_back(C); });
      for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
        if (!ReadSets.count(*It))
          Stack.push_back({*It, false});
      // Reserve the slot so a shared child queued twice is expanded once.
      ReadSets.emplace(F.N, std::vector<bool>());
      continue;
    }
    std::vector<bool> R(NumFields, false), W(NumFields, false);
    if (const auto *T = dyn_cast<TestNode>(F.N)) {
      if (T->field() < NumFields)
        R[T->field()] = true;
    } else if (const auto *A = dyn_cast<AssignNode>(F.N)) {
      if (A->field() < NumFields)
        W[A->field()] = true;
    }
    forEachChild(F.N, [&](const Node *C) {
      auto RIt = ReadSets.find(C);
      if (RIt != ReadSets.end() && !RIt->second.empty())
        for (std::size_t I = 0; I < NumFields; ++I)
          R[I] = R[I] || RIt->second[I];
      auto WIt = WrittenSets.find(C);
      if (WIt != WrittenSets.end())
        for (std::size_t I = 0; I < NumFields; ++I)
          W[I] = W[I] || WIt->second[I];
    });
    // Leaves with no fields keep an all-false set (distinct from the
    // "not yet computed" reservation only by this assignment).
    ReadSets[F.N] = std::move(R);
    WrittenSets[F.N] = std::move(W);
  }
}

void FieldDeps::run(const Context &Ctx, const Node *Program) {
  (void)Ctx;
  const std::size_t Words = wordsFor(NumFields);

  // Guard contexts per role; a node is re-processed whenever its context
  // grows, so facts are OR-merged across every path reaching it.
  std::unordered_map<const Node *, Bits> InProg, InGuard;
  std::deque<std::pair<const Node *, bool>> Work; // (node, guard role)

  auto Propagate = [&](const Node *N, bool Guard, const Bits &C) {
    auto &Map = Guard ? InGuard : InProg;
    auto [It, Inserted] = Map.try_emplace(N, Bits(Words, 0));
    if (orInto(It->second, C) || Inserted)
      Work.emplace_back(N, Guard);
  };

  auto MarkDroppy = [&](const Bits &C) {
    forEachSetBit(C, NumFields, [&](FieldId F) { DropDep[F] = true; });
  };

  auto BitsOf = [&](const std::vector<bool> &Set) {
    Bits B(Words, 0);
    for (std::size_t F = 0; F < NumFields; ++F)
      if (Set[F])
        setBit(B, static_cast<FieldId>(F));
    return B;
  };

  Propagate(Program, /*Guard=*/false, Bits(Words, 0));

  while (!Work.empty()) {
    auto [N, Guard] = Work.front();
    Work.pop_front();
    // Copy: Propagate below may rehash the map.
    Bits C = Guard ? InGuard[N] : InProg[N];

    if (Guard) {
      // Guard role: the enclosing construct routes every packet somewhere,
      // so tests here are not droppy by themselves. Only predicate shapes
      // occur; anything else falls through to the program role below
      // (conservative for malformed inputs).
      switch (N->kind()) {
      case NodeKind::Drop:
      case NodeKind::Skip:
      case NodeKind::Test:
        continue;
      case NodeKind::Not:
        Propagate(cast<NotNode>(N)->operand(), true, C);
        continue;
      case NodeKind::Seq:
        Propagate(cast<SeqNode>(N)->lhs(), true, C);
        Propagate(cast<SeqNode>(N)->rhs(), true, C);
        continue;
      case NodeKind::Union:
        Propagate(cast<UnionNode>(N)->lhs(), true, C);
        Propagate(cast<UnionNode>(N)->rhs(), true, C);
        continue;
      default:
        break; // Non-predicate guard: treat as program position.
      }
    }

    switch (N->kind()) {
    case NodeKind::Skip:
      break;
    case NodeKind::Drop:
      // An explicit drop under a guard makes the guard delivery-relevant.
      MarkDroppy(C);
      break;
    case NodeKind::Test: {
      // A bare filter: the test's outcome (and the guards that decided
      // whether the filter runs) changes the surviving mass.
      const auto *T = cast<TestNode>(N);
      if (T->field() < NumFields)
        DropDep[T->field()] = true;
      MarkDroppy(C);
      break;
    }
    case NodeKind::Assign: {
      const auto *A = cast<AssignNode>(N);
      if (A->field() < NumFields) {
        FieldId G = A->field();
        forEachSetBit(C, NumFields,
                      [&](FieldId F) { Edges[F][G] = true; });
      }
      break;
    }
    case NodeKind::Not:
      Propagate(cast<NotNode>(N)->operand(), false, C);
      break;
    case NodeKind::Seq:
      Propagate(cast<SeqNode>(N)->lhs(), false, C);
      Propagate(cast<SeqNode>(N)->rhs(), false, C);
      break;
    case NodeKind::Union: {
      const auto *U = cast<UnionNode>(N);
      if (!N->isPredicate()) {
        // General program union copies the packet; set-collapse makes
        // deleting any write underneath observable. Pin the whole region.
        const std::vector<bool> &W = writtenSet(N);
        for (std::size_t F = 0; F < NumFields; ++F)
          if (W[F])
            ForceRelevant[F] = true;
        const std::vector<bool> &R = readSet(N);
        for (std::size_t F = 0; F < NumFields; ++F)
          if (R[F])
            DropDep[F] = true;
      }
      Propagate(U->lhs(), false, C);
      Propagate(U->rhs(), false, C);
      break;
    }
    case NodeKind::Choice:
      Propagate(cast<ChoiceNode>(N)->lhs(), false, C);
      Propagate(cast<ChoiceNode>(N)->rhs(), false, C);
      break;
    case NodeKind::Star: {
      const auto *S = cast<StarNode>(N);
      if (!S->body()->isPredicate()) {
        const std::vector<bool> &W = writtenSet(N);
        for (std::size_t F = 0; F < NumFields; ++F)
          if (W[F])
            ForceRelevant[F] = true;
        const std::vector<bool> &R = readSet(N);
        for (std::size_t F = 0; F < NumFields; ++F)
          if (R[F])
            DropDep[F] = true;
      }
      Propagate(S->body(), false, C);
      break;
    }
    case NodeKind::IfThenElse: {
      const auto *I = cast<IfThenElseNode>(N);
      Propagate(I->cond(), true, C);
      Bits Inner = C;
      orInto(Inner, BitsOf(readSet(I->cond())));
      Propagate(I->thenBranch(), false, Inner);
      Propagate(I->elseBranch(), false, Inner);
      break;
    }
    case NodeKind::While: {
      const auto *W = cast<WhileNode>(N);
      Propagate(W->cond(), true, C);
      // Divergence loses mass: the guard's fields (and whatever guards
      // decide if the loop runs at all) are delivery-relevant.
      Bits GuardBits = BitsOf(readSet(W->cond()));
      MarkDroppy(GuardBits);
      MarkDroppy(C);
      Bits Inner = C;
      orInto(Inner, GuardBits);
      Propagate(W->body(), false, Inner);
      break;
    }
    case NodeKind::Case: {
      const auto *CN = cast<CaseNode>(N);
      // First-match: which arm fires depends on every guard up to it, so
      // all arm bodies (and the default) run under the union of all guard
      // fields.
      Bits AllGuards(Words, 0);
      for (const CaseNode::Branch &B : CN->branches()) {
        Propagate(B.first, true, C);
        orInto(AllGuards, BitsOf(readSet(B.first)));
      }
      Bits Inner = C;
      orInto(Inner, AllGuards);
      for (const CaseNode::Branch &B : CN->branches())
        Propagate(B.second, false, Inner);
      Propagate(CN->defaultBranch(), false, Inner);
      break;
    }
    }
  }
}

std::vector<bool>
FieldDeps::coneOfInfluence(const ObservationSet &Obs) const {
  std::vector<bool> Cone(NumFields, false);
  if (Obs.AllFields) {
    Cone.assign(NumFields, true);
    return Cone;
  }
  for (FieldId F : Obs.Fields)
    if (F < NumFields)
      Cone[F] = true;
  for (std::size_t F = 0; F < NumFields; ++F)
    if (DropDep[F] || ForceRelevant[F])
      Cone[F] = true;
  // Backward closure: a test on F controls an assignment to an in-cone
  // field ⇒ F's value is observable through that assignment.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::size_t F = 0; F < NumFields; ++F) {
      if (Cone[F])
        continue;
      for (std::size_t G = 0; G < NumFields; ++G) {
        if (Edges[F][G] && Cone[G]) {
          Cone[F] = true;
          Changed = true;
          break;
        }
      }
    }
  }
  return Cone;
}

std::vector<Finding> ast::analyzeDeps(const Context &Ctx,
                                      const Node *Program) {
  FieldDeps Deps(Ctx, Program);
  std::vector<bool> Cone = Deps.coneOfInfluence(ObservationSet::delivery());
  std::vector<Finding> Findings;
  auto Report = [&](CheckKind Check, const Node *Where, std::string Msg) {
    Findings.push_back({Check, Ctx.loc(Where), Where, std::move(Msg)});
  };

  const std::size_t NumFields = Deps.numFields();
  for (std::size_t I = 0; I < NumFields; ++I) {
    FieldId F = static_cast<FieldId>(I);
    const std::string &Name = Ctx.fields().name(F);
    if (Deps.written(F) && !Deps.read(F))
      Report(CheckKind::WriteOnlyField, Deps.firstAssign(F),
             "field '" + Name +
                 "' is assigned but never tested; its writes cannot "
                 "influence any decision or the delivered mass");
    else if (Deps.read(F) && !Cone[F])
      Report(CheckKind::DeadField, Deps.firstTest(F),
             "field '" + Name +
                 "' is outside the delivery cone of influence; no delivery "
                 "query can observe it");
  }

  // Per-assignment findings for fields that are tested somewhere yet still
  // invisible to delivery queries. Syntactic pre-order walk, shared
  // (hash-consed) assignment nodes reported once.
  std::vector<const Node *> Stack{Program};
  std::unordered_map<const Node *, bool> Seen;
  while (!Stack.empty()) {
    const Node *N = Stack.back();
    Stack.pop_back();
    if (!Seen.emplace(N, true).second)
      continue;
    if (const auto *A = dyn_cast<AssignNode>(N)) {
      FieldId F = A->field();
      if (F < NumFields && Deps.read(F) && !Cone[F])
        Report(CheckKind::QueryIrrelevantAssignment, N,
               "assignment to '" + Ctx.fields().name(F) +
                   "' cannot be observed by any delivery query");
      continue;
    }
    std::vector<const Node *> Kids;
    forEachChild(N, [&](const Node *C) { Kids.push_back(C); });
    for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
      Stack.push_back(*It);
  }

  // Same presentation order as ast::analyze(): located findings first, by
  // position, then by check.
  std::stable_sort(Findings.begin(), Findings.end(),
                   [](const Finding &A, const Finding &B) {
                     if (A.Loc.valid() != B.Loc.valid())
                       return A.Loc.valid();
                     if (A.Loc.Line != B.Loc.Line)
                       return A.Loc.Line < B.Loc.Line;
                     if (A.Loc.Column != B.Loc.Column)
                       return A.Loc.Column < B.Loc.Column;
                     return static_cast<unsigned>(A.Check) <
                            static_cast<unsigned>(B.Check);
                   });
  return Findings;
}
