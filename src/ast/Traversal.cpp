//===----------------------------------------------------------------------===//
///
/// \file
/// AST analyses: structural equality and hashing, node statistics,
/// guarded-fragment checking, and mentioned-value collection.
///
//===----------------------------------------------------------------------===//

#include "ast/Traversal.h"

#include "support/Casting.h"
#include "support/Error.h"
#include "support/Hashing.h"

using namespace mcnk;
using namespace mcnk::ast;

bool ast::structurallyEqual(const Node *A, const Node *B) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case NodeKind::Drop:
  case NodeKind::Skip:
    return true;
  case NodeKind::Test: {
    const auto *TA = cast<TestNode>(A), *TB = cast<TestNode>(B);
    return TA->field() == TB->field() && TA->value() == TB->value();
  }
  case NodeKind::Assign: {
    const auto *TA = cast<AssignNode>(A), *TB = cast<AssignNode>(B);
    return TA->field() == TB->field() && TA->value() == TB->value();
  }
  case NodeKind::Not:
    return structurallyEqual(cast<NotNode>(A)->operand(),
                             cast<NotNode>(B)->operand());
  case NodeKind::Seq: {
    const auto *SA = cast<SeqNode>(A), *SB = cast<SeqNode>(B);
    return structurallyEqual(SA->lhs(), SB->lhs()) &&
           structurallyEqual(SA->rhs(), SB->rhs());
  }
  case NodeKind::Union: {
    const auto *UA = cast<UnionNode>(A), *UB = cast<UnionNode>(B);
    return structurallyEqual(UA->lhs(), UB->lhs()) &&
           structurallyEqual(UA->rhs(), UB->rhs());
  }
  case NodeKind::Choice: {
    const auto *CA = cast<ChoiceNode>(A), *CB = cast<ChoiceNode>(B);
    return CA->probability() == CB->probability() &&
           structurallyEqual(CA->lhs(), CB->lhs()) &&
           structurallyEqual(CA->rhs(), CB->rhs());
  }
  case NodeKind::Star:
    return structurallyEqual(cast<StarNode>(A)->body(),
                             cast<StarNode>(B)->body());
  case NodeKind::IfThenElse: {
    const auto *IA = cast<IfThenElseNode>(A), *IB = cast<IfThenElseNode>(B);
    return structurallyEqual(IA->cond(), IB->cond()) &&
           structurallyEqual(IA->thenBranch(), IB->thenBranch()) &&
           structurallyEqual(IA->elseBranch(), IB->elseBranch());
  }
  case NodeKind::While: {
    const auto *WA = cast<WhileNode>(A), *WB = cast<WhileNode>(B);
    return structurallyEqual(WA->cond(), WB->cond()) &&
           structurallyEqual(WA->body(), WB->body());
  }
  case NodeKind::Case: {
    const auto *CA = cast<CaseNode>(A), *CB = cast<CaseNode>(B);
    if (CA->branches().size() != CB->branches().size())
      return false;
    for (std::size_t I = 0; I < CA->branches().size(); ++I) {
      if (!structurallyEqual(CA->branches()[I].first,
                             CB->branches()[I].first) ||
          !structurallyEqual(CA->branches()[I].second,
                             CB->branches()[I].second))
        return false;
    }
    return structurallyEqual(CA->defaultBranch(), CB->defaultBranch());
  }
  }
  MCNK_UNREACHABLE("unhandled node kind");
}

std::size_t ast::structuralHash(const Node *N) {
  std::size_t Seed = hashCombine(0x1234u, static_cast<unsigned>(N->kind()));
  switch (N->kind()) {
  case NodeKind::Drop:
  case NodeKind::Skip:
    return Seed;
  case NodeKind::Test: {
    const auto *T = cast<TestNode>(N);
    return hashCombine(hashCombine(Seed, T->field()), T->value());
  }
  case NodeKind::Assign: {
    const auto *T = cast<AssignNode>(N);
    return hashCombine(hashCombine(Seed, T->field()), T->value());
  }
  case NodeKind::Not:
    return hashCombine(Seed, structuralHash(cast<NotNode>(N)->operand()));
  case NodeKind::Seq: {
    const auto *S = cast<SeqNode>(N);
    return hashCombine(hashCombine(Seed, structuralHash(S->lhs())),
                       structuralHash(S->rhs()));
  }
  case NodeKind::Union: {
    const auto *U = cast<UnionNode>(N);
    return hashCombine(hashCombine(Seed, structuralHash(U->lhs())),
                       structuralHash(U->rhs()));
  }
  case NodeKind::Choice: {
    const auto *C = cast<ChoiceNode>(N);
    Seed = hashCombine(Seed, C->probability().hash());
    Seed = hashCombine(Seed, structuralHash(C->lhs()));
    return hashCombine(Seed, structuralHash(C->rhs()));
  }
  case NodeKind::Star:
    return hashCombine(Seed, structuralHash(cast<StarNode>(N)->body()));
  case NodeKind::IfThenElse: {
    const auto *I = cast<IfThenElseNode>(N);
    Seed = hashCombine(Seed, structuralHash(I->cond()));
    Seed = hashCombine(Seed, structuralHash(I->thenBranch()));
    return hashCombine(Seed, structuralHash(I->elseBranch()));
  }
  case NodeKind::While: {
    const auto *W = cast<WhileNode>(N);
    return hashCombine(hashCombine(Seed, structuralHash(W->cond())),
                       structuralHash(W->body()));
  }
  case NodeKind::Case: {
    const auto *C = cast<CaseNode>(N);
    for (const auto &[Guard, Program] : C->branches()) {
      Seed = hashCombine(Seed, structuralHash(Guard));
      Seed = hashCombine(Seed, structuralHash(Program));
    }
    return hashCombine(Seed, structuralHash(C->defaultBranch()));
  }
  }
  MCNK_UNREACHABLE("unhandled node kind");
}

namespace {

template <typename Fn> void forEachChild(const Node *N, Fn Visit) {
  switch (N->kind()) {
  case NodeKind::Drop:
  case NodeKind::Skip:
  case NodeKind::Test:
  case NodeKind::Assign:
    return;
  case NodeKind::Not:
    Visit(cast<NotNode>(N)->operand());
    return;
  case NodeKind::Seq:
    Visit(cast<SeqNode>(N)->lhs());
    Visit(cast<SeqNode>(N)->rhs());
    return;
  case NodeKind::Union:
    Visit(cast<UnionNode>(N)->lhs());
    Visit(cast<UnionNode>(N)->rhs());
    return;
  case NodeKind::Choice:
    Visit(cast<ChoiceNode>(N)->lhs());
    Visit(cast<ChoiceNode>(N)->rhs());
    return;
  case NodeKind::Star:
    Visit(cast<StarNode>(N)->body());
    return;
  case NodeKind::IfThenElse:
    Visit(cast<IfThenElseNode>(N)->cond());
    Visit(cast<IfThenElseNode>(N)->thenBranch());
    Visit(cast<IfThenElseNode>(N)->elseBranch());
    return;
  case NodeKind::While:
    Visit(cast<WhileNode>(N)->cond());
    Visit(cast<WhileNode>(N)->body());
    return;
  case NodeKind::Case: {
    const auto *C = cast<CaseNode>(N);
    for (const auto &[Guard, Program] : C->branches()) {
      Visit(Guard);
      Visit(Program);
    }
    Visit(C->defaultBranch());
    return;
  }
  }
  MCNK_UNREACHABLE("unhandled node kind");
}

} // namespace

std::size_t ast::countNodes(const Node *N) {
  std::size_t Count = 1;
  forEachChild(N, [&Count](const Node *C) { Count += countNodes(C); });
  return Count;
}

std::size_t ast::depth(const Node *N) {
  std::size_t MaxChild = 0;
  forEachChild(N, [&MaxChild](const Node *C) {
    MaxChild = std::max(MaxChild, depth(C));
  });
  return MaxChild + 1;
}

bool ast::isGuarded(const Node *N) {
  if (isa<StarNode>(N))
    return false;
  if (isa<UnionNode>(N) && !N->isPredicate())
    return false;
  bool Guarded = true;
  forEachChild(N, [&Guarded](const Node *C) {
    if (!isGuarded(C))
      Guarded = false;
  });
  return Guarded;
}

static void collectValuesInto(const Node *N,
                              std::map<FieldId, std::set<FieldValue>> &Out) {
  if (const auto *T = dyn_cast<TestNode>(N)) {
    Out[T->field()].insert(T->value());
    return;
  }
  if (const auto *A = dyn_cast<AssignNode>(N)) {
    Out[A->field()].insert(A->value());
    return;
  }
  forEachChild(N, [&Out](const Node *C) { collectValuesInto(C, Out); });
}

std::map<FieldId, std::set<FieldValue>> ast::collectValues(const Node *N) {
  std::map<FieldId, std::set<FieldValue>> Result;
  collectValuesInto(N, Result);
  return Result;
}
