//===----------------------------------------------------------------------===//
///
/// \file
/// Static analysis for ProbNetKAT programs (ARCHITECTURE S15): an
/// iterative (explicit-stack) abstract interpretation over the AST with a
/// per-field value-set domain. The analysis starts from ⊤ — every
/// concrete packet — so every fact it derives ("this arm can never
/// fire", "this test is always true here") holds over the whole input
/// space, which is exactly the property the verified simplifier
/// (ast/Simplify.h) needs for FDD reference equality.
///
/// Two consumers:
///  - `mcnk_cli lint`: the diagnostic catalog below, rendered as
///    `file:line:col: warning[check-name]: message` using the source
///    locations the parser records in the Context side table.
///  - `ast::simplify`: the per-node reachability/truth facts exposed by
///    DomainAnalysis drive constant folding and dead-branch pruning.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_AST_ANALYZE_H
#define MCNK_AST_ANALYZE_H

#include "ast/Context.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mcnk {
namespace ast {

/// The lint check catalog. Kept in sync with checkName().
enum class CheckKind : uint8_t {
  UnreachableCaseArm,    ///< guard can never match any input of the case
  ShadowedCaseArm,       ///< guard is covered by earlier arms (first-match)
  OverlappingCaseGuards, ///< two guards admit a common packet
  UnreachableBranch,     ///< if-branch with a statically decided condition
  UnreachableLoopBody,   ///< while guard statically false on entry
  DivergentLoop,         ///< while guard statically true — never absorbs
  DropEquivalent,        ///< subprogram reached but delivers no packets
  DegenerateChoice,      ///< p ⊕_r q with r ∉ (0,1) (raised by the parser)
  DeadAssignment,        ///< assignment immediately overwritten
  RedundantAssignment,   ///< field already known to hold the assigned value
  DeadField,             ///< field read but outside the delivery cone
  WriteOnlyField,        ///< field written but never read anywhere
  QueryIrrelevantAssignment, ///< assigns a field no delivery query can see
};

/// Kebab-case slug used in rendered diagnostics, e.g.
/// "overlapping-case-guards".
const char *checkName(CheckKind Check);

/// One lint diagnostic. \c Loc comes from the parser's side table (or the
/// nearest located ancestor); programmatically built ASTs may have no
/// location at all, in which case render() omits the line:col prefix.
struct Finding {
  CheckKind Check;
  SourceLoc Loc;
  const Node *Where = nullptr;
  std::string Message;

  /// `file:line:col: warning[check-name]: message` (machine-readable; the
  /// format is pinned by ast_analyze_test and the lint_smoke ctest).
  std::string render(const std::string &File) const;
};

struct AnalyzeOptions {
  /// Maximum number of concrete assignments enumerated per guard pair by
  /// the overlap check; pairs over budget are skipped (no false
  /// positives, possible false negatives on huge guards).
  std::size_t OverlapBudget = 4096;
};

/// Runs the abstract interpretation once over \p Program and keeps the
/// per-node facts around for queries. The referenced Context and program
/// must outlive the analysis.
class DomainAnalysis {
public:
  DomainAnalysis(const Context &Ctx, const Node *Program,
                 AnalyzeOptions Opts = {});
  ~DomainAnalysis();
  DomainAnalysis(const DomainAnalysis &) = delete;
  DomainAnalysis &operator=(const DomainAnalysis &) = delete;

  /// All diagnostics, deduplicated and sorted by source position.
  const std::vector<Finding> &findings() const;

  /// Three-valued truth of a test under the join of every abstract state
  /// that reaches it (over all occurrences and both polarities).
  enum class Truth : uint8_t { True, False, Unknown };
  Truth testTruth(const TestNode *T) const;

  /// True if some execution reaches \p N with a non-empty abstract state.
  bool reached(const Node *N) const;
  /// True if the then/else branch of \p N can be entered.
  bool branchReachable(const IfThenElseNode *N, bool Then) const;
  /// True if the loop body of \p N can run at least once.
  bool loopEntered(const WhileNode *N) const;
  /// True if some packet ever leaves the loop (guard eventually false).
  bool loopExits(const WhileNode *N) const;
  /// True if arm \p Arm can fire; Arm == branches().size() queries the
  /// else arm.
  bool armReachable(const CaseNode *N, std::size_t Arm) const;
  /// True if the guard of arm \p Arm matches every packet remaining at
  /// that arm — later arms (incl. else) are then dead.
  bool guardTotal(const CaseNode *N, std::size_t Arm) const;
  /// True if the assignment writes a value the field is already known to
  /// hold everywhere the assignment executes.
  bool assignRedundant(const AssignNode *N) const;
  /// True if \p N is reached but delivers no packets (≡ drop in context).
  bool dropEquivalent(const Node *N) const;

private:
  struct Impl;
  std::unique_ptr<Impl> M;
};

/// One-shot convenience: analyze \p Program and return the diagnostics.
std::vector<Finding> analyze(const Context &Ctx, const Node *Program,
                             const AnalyzeOptions &Opts = {});

} // namespace ast
} // namespace mcnk

#endif // MCNK_AST_ANALYZE_H
