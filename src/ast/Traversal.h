//===----------------------------------------------------------------------===//
///
/// \file
/// AST analyses: structural equality/hashing (for tests and caches), node
/// statistics, guarded-fragment checking (§5's pragmatic restriction), and
/// mentioned-value collection (seed of dynamic domain reduction).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_AST_TRAVERSAL_H
#define MCNK_AST_TRAVERSAL_H

#include "ast/Node.h"

#include <cstddef>
#include <map>
#include <set>

namespace mcnk {
namespace ast {

/// Deep structural equality (ignores sharing).
bool structurallyEqual(const Node *A, const Node *B);

/// Hash consistent with structurallyEqual.
std::size_t structuralHash(const Node *N);

/// Number of nodes in the term viewed as a tree (shared subterms counted
/// once per occurrence).
std::size_t countNodes(const Node *N);

/// Height of the term tree (a leaf has depth 1).
std::size_t depth(const Node *N);

/// True if the program lies in the guarded fragment accepted by the tool
/// backends: no Star anywhere, and Union only between predicates (§5). All
/// conditionals/loops/cases are fine.
bool isGuarded(const Node *N);

/// Per-field sets of values mentioned in tests or assignments. Used to
/// build finite packet domains for the reference semantics and as the seed
/// of the symbolic-packet domains (§5.1 dynamic domain reduction).
std::map<FieldId, std::set<FieldValue>> collectValues(const Node *N);

} // namespace ast
} // namespace mcnk

#endif // MCNK_AST_TRAVERSAL_H
