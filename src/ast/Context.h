//===----------------------------------------------------------------------===//
///
/// \file
/// Context owns the field table and all AST nodes (arena style) and exposes
/// smart constructors that perform light, semantics-preserving
/// normalizations (drop/skip absorption, trivial-probability collapse).
/// Derived forms from the paper — n-ary choice, `var f := n in p`,
/// conditional cascades — desugar here exactly as §2/§3 prescribe.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_AST_CONTEXT_H
#define MCNK_AST_CONTEXT_H

#include "ast/Node.h"
#include "packet/Field.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace mcnk {
namespace ast {

/// 1-based source coordinates for a node, recorded by the parser in a
/// Context side table (nodes themselves stay immutable and location-free).
/// Line 0 means "no recorded location".
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;

  bool valid() const { return Line != 0; }
};

/// Owns nodes and fields; the root object every McNetKAT pipeline starts
/// from. Nodes are deduplicated only for the two constants drop/skip;
/// structural sharing elsewhere comes from reusing subterm pointers.
class Context {
public:
  Context();

  FieldTable &fields() { return Fields; }
  const FieldTable &fields() const { return Fields; }

  /// Shorthand for fields().intern(Name).
  FieldId field(const std::string &Name) { return Fields.intern(Name); }

  // --- Primitive terms -------------------------------------------------
  const Node *drop() const { return DropSingleton; }
  const Node *skip() const { return SkipSingleton; }
  const Node *test(FieldId Field, FieldValue Value);
  const Node *assign(FieldId Field, FieldValue Value);

  // --- Compound terms (light normalization; see implementation) --------
  const Node *negate(const Node *Pred);
  const Node *seq(const Node *Lhs, const Node *Rhs);
  const Node *unite(const Node *Lhs, const Node *Rhs);
  const Node *choice(const Rational &Probability, const Node *Lhs,
                     const Node *Rhs);
  const Node *star(const Node *Body);
  const Node *ite(const Node *Cond, const Node *Then, const Node *Else);
  const Node *whileLoop(const Node *Cond, const Node *Body);
  const Node *caseOf(std::vector<CaseNode::Branch> Branches,
                     const Node *Default);

  // --- Derived forms ----------------------------------------------------
  /// p1 ; p2 ; ... ; pn (skip when empty).
  const Node *seqAll(const std::vector<const Node *> &Programs);
  /// t1 & t2 & ... & tn (drop when empty).
  const Node *uniteAll(const std::vector<const Node *> &Programs);
  /// Uniform n-ary choice p1 ⊕ ... ⊕ pn (§3).
  const Node *choiceUniform(const std::vector<const Node *> &Programs);
  /// Weighted n-ary choice ⊕ { p_i @ w_i }; weights must sum to 1.
  const Node *
  choiceWeighted(const std::vector<std::pair<const Node *, Rational>> &Cases);
  /// var f := n in p  ≜  f := n ; p ; f := 0 (§3).
  const Node *local(FieldId Field, FieldValue Init, const Node *Body);

  // --- Source locations -------------------------------------------------
  /// Records the source location of \p N. First write wins, so a node
  /// shared by normalization (or reused by a builder) keeps the location
  /// of its first occurrence. The drop/skip singletons are not tracked —
  /// they stand for every literal in the program at once.
  void noteLoc(const Node *N, SourceLoc Loc);
  /// The recorded location of \p N, or an invalid (0:0) location.
  SourceLoc loc(const Node *N) const;

  /// Number of nodes allocated (diagnostics).
  std::size_t numAllocatedNodes() const { return Arena.size(); }

private:
  template <typename T, typename... Args> const T *make(Args &&...A) {
    auto Owned = std::make_unique<T>(std::forward<Args>(A)...);
    const T *Raw = Owned.get();
    Arena.push_back(std::move(Owned));
    return Raw;
  }

  FieldTable Fields;
  std::unordered_map<const Node *, SourceLoc> Locs;
  std::vector<std::unique_ptr<Node>> Arena;
  const Node *DropSingleton;
  const Node *SkipSingleton;
};

} // namespace ast
} // namespace mcnk

#endif // MCNK_AST_CONTEXT_H
