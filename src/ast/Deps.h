//===----------------------------------------------------------------------===//
///
/// \file
/// Field-dependency analysis over full ProbNetKAT (ARCHITECTURE S17): an
/// iterative, explicit-stack dataflow pass computing per-subtree read and
/// written field sets plus a field dependency graph. Because assignments
/// are always constant (`f := n` — there is no field-to-field copy in the
/// syntax), every dependency is control-flow: a test on `f` flows into `g`
/// exactly when an assignment to `g` executes under a guard that tested
/// `f`. A distinguished pseudo-sink ⊥ stands for the delivered/dropped
/// probability mass; a test flows into ⊥ when its outcome can change which
/// packets survive (bare predicates in program position, guards over
/// droppy regions, and `while` guards — divergence loses mass).
///
/// Guard contexts are OR-merged across hash-consed shared subtrees and
/// iterated to a fixpoint (contexts only grow and are bounded by the field
/// universe, so the worklist terminates quickly), mirroring the S15
/// analyzer's treatment of sharing. The backward cone of influence of a
/// query's observation set over this graph is what `ast/Slice.h` uses to
/// delete assignments no query answer can see.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_AST_DEPS_H
#define MCNK_AST_DEPS_H

#include "ast/Analyze.h"
#include "ast/Context.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mcnk {
namespace ast {

/// What a query can see of a program's output: the delivered/dropped mass
/// (always observed — every query class reports or normalizes by it) plus
/// a set of output fields (hop-stats observe the counter, field
/// distributions their field, equivalence/refinement the joint mentioned
/// fields of both programs).
struct ObservationSet {
  /// Observe every field (the bar for equivalence against an unknown
  /// counterpart); Fields is ignored when set.
  bool AllFields = false;
  /// Observed output fields (need not be sorted or unique).
  std::vector<FieldId> Fields;

  /// Delivery queries observe only the drop mass.
  static ObservationSet delivery() { return {}; }
  static ObservationSet fields(std::vector<FieldId> Fs) {
    ObservationSet O;
    O.Fields = std::move(Fs);
    return O;
  }
  static ObservationSet all() {
    ObservationSet O;
    O.AllFields = true;
    return O;
  }
};

/// The dependency summary of one program. Field indices run over the
/// owning Context's field table at analysis time; fields interned later
/// are trivially unread/unwritten/irrelevant.
class FieldDeps {
public:
  FieldDeps(const Context &Ctx, const Node *Program);

  std::size_t numFields() const { return NumFields; }

  /// Field is tested somewhere in the program.
  bool read(FieldId F) const { return F < NumFields && Read[F]; }
  /// Field is assigned somewhere in the program.
  bool written(FieldId F) const { return F < NumFields && Written[F]; }
  /// A test on the field can change the delivered mass (edge into ⊥).
  bool dropDep(FieldId F) const { return F < NumFields && DropDep[F]; }
  /// A test on \p F controls an assignment to \p G.
  bool edge(FieldId F, FieldId G) const {
    return F < NumFields && G < NumFields && Edges[F][G];
  }

  /// First (syntactically earliest located) test of / assignment to the
  /// field, for diagnostic anchors; null when none exists.
  const Node *firstTest(FieldId F) const {
    return F < NumFields ? FirstTest[F] : nullptr;
  }
  const Node *firstAssign(FieldId F) const {
    return F < NumFields ? FirstAssign[F] : nullptr;
  }

  /// Per-subtree syntactic read (tested) / written (assigned) field sets,
  /// as dense bool vectors indexed by FieldId. Shared subtrees are
  /// computed once.
  const std::vector<bool> &readSet(const Node *N) const;
  const std::vector<bool> &writtenSet(const Node *N) const;

  /// Backward cone of influence: the least set containing every observed
  /// field, every ⊥-feeding field, and — closed backwards over the
  /// dependency edges — every field whose tests control an assignment to
  /// a field already in the cone. Fields interned after the analysis (or
  /// forced by non-guarded Star/Union regions) are conservatively
  /// included. Indexed by FieldId over numFields().
  std::vector<bool> coneOfInfluence(const ObservationSet &Obs) const;

private:
  std::size_t NumFields = 0;
  std::vector<bool> Read;
  std::vector<bool> Written;
  std::vector<bool> DropDep;
  /// Written fields under a general (non-predicate) Star/Union region:
  /// set-collapse semantics make deleting their writes unsound, so the
  /// cone always includes them.
  std::vector<bool> ForceRelevant;
  std::vector<std::vector<bool>> Edges;
  std::vector<const Node *> FirstTest;
  std::vector<const Node *> FirstAssign;
  std::unordered_map<const Node *, std::vector<bool>> ReadSets;
  std::unordered_map<const Node *, std::vector<bool>> WrittenSets;
  std::vector<bool> Empty;

  void run(const Context &Ctx, const Node *Program);
  void computeSubtreeSets(const Node *Program);
};

/// The S17 dependency lint checks, complementing ast::analyze()'s S15
/// catalog (kept separate so the simplifier's per-round analyze() never
/// pays for them):
///  - write-only-field: the field is assigned but never tested, so its
///    writes cannot steer any program decision (one finding per field,
///    anchored at the first assignment).
///  - dead-field: the field is tested, but under the delivery observation
///    no query can see the outcome — it is outside the delivery cone of
///    influence (one finding per field, anchored at the first test).
///  - query-irrelevant-assignment: the field *is* tested somewhere, yet
///    still outside the delivery cone, so delivery queries cannot observe
///    this assignment (one finding per assignment; disjoint from
///    write-only-field, which already covers never-tested fields).
std::vector<Finding> analyzeDeps(const Context &Ctx, const Node *Program);

} // namespace ast
} // namespace mcnk

#endif // MCNK_AST_DEPS_H
