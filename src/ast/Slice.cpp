//===----------------------------------------------------------------------===//
///
/// \file
/// The S17 slicer: rounds of (dependency analysis -> cone -> rewrite ->
/// verified simplify) until a fixpoint, exactly like the S15 simplifier's
/// round structure — which makes slice idempotent by construction and
/// lets deletions cascade (removing a field's writes can collapse the
/// branches that were that field's only reason to be in the cone, freeing
/// the next round to remove its writes too).
///
/// The rewrite itself is a memoized bottom-up explicit-stack transform:
///  - assignments to out-of-cone fields become skip;
///  - an if/case whose (sliced) branches are all structurally equal
///    collapses to that branch — the construct is total, so this is
///    pointwise sound, and it is what erases the guard cascades whose
///    only job was feeding sliced-out fields (e.g. hop counters).
/// Tests are never removed: a bare test filters packets, and every
/// droppy or cone-feeding guard must survive.
///
//===----------------------------------------------------------------------===//

#include "ast/Slice.h"

#include "ast/Simplify.h"
#include "ast/Traversal.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <functional>
#include <unordered_map>

using namespace mcnk;
using namespace mcnk::ast;

namespace {

/// One bottom-up rewrite pass for a fixed cone. Returns the input pointer
/// when nothing under it changed.
class SliceTransform {
public:
  SliceTransform(Context &C, const std::vector<bool> &Cone)
      : Ctx(C), Relevant(Cone) {}

  std::size_t assignmentsRemoved() const { return Removed; }

  const Node *run(const Node *Root) {
    struct Frame {
      const Node *N;
      bool Expanded;
    };
    std::vector<Frame> Stack{{Root, false}};
    while (!Stack.empty()) {
      Frame F = Stack.back();
      Stack.pop_back();
      if (!F.Expanded) {
        if (Memo.count(F.N))
          continue;
        if (const Node *Leaf = rewriteLeaf(F.N)) {
          Memo.emplace(F.N, Leaf);
          continue;
        }
        Stack.push_back({F.N, true});
        forEachChild(F.N, [&](const Node *C) {
          if (!Memo.count(C))
            Stack.push_back({C, false});
        });
        continue;
      }
      if (!Memo.count(F.N))
        Memo.emplace(F.N, rebuild(F.N));
    }
    return Memo.at(Root);
  }

private:
  /// Non-null for nodes rewritten without visiting children.
  const Node *rewriteLeaf(const Node *N) {
    switch (N->kind()) {
    case NodeKind::Drop:
    case NodeKind::Skip:
    case NodeKind::Test:
      return N;
    case NodeKind::Assign: {
      const auto *A = cast<AssignNode>(N);
      if (A->field() < Relevant.size() && Relevant[A->field()])
        return N;
      ++Removed;
      return Ctx.skip();
    }
    default:
      return nullptr;
    }
  }

  const Node *sliced(const Node *N) const { return Memo.at(N); }

  const Node *rebuild(const Node *N) {
    switch (N->kind()) {
    case NodeKind::Not: {
      const Node *Op = sliced(cast<NotNode>(N)->operand());
      return Op == cast<NotNode>(N)->operand() ? N : Ctx.negate(Op);
    }
    case NodeKind::Seq: {
      const auto *S = cast<SeqNode>(N);
      const Node *L = sliced(S->lhs()), *R = sliced(S->rhs());
      return (L == S->lhs() && R == S->rhs()) ? N : Ctx.seq(L, R);
    }
    case NodeKind::Union: {
      const auto *U = cast<UnionNode>(N);
      const Node *L = sliced(U->lhs()), *R = sliced(U->rhs());
      return (L == U->lhs() && R == U->rhs()) ? N : Ctx.unite(L, R);
    }
    case NodeKind::Choice: {
      const auto *C = cast<ChoiceNode>(N);
      const Node *L = sliced(C->lhs()), *R = sliced(C->rhs());
      return (L == C->lhs() && R == C->rhs())
                 ? N
                 : Ctx.choice(C->probability(), L, R);
    }
    case NodeKind::Star: {
      const auto *S = cast<StarNode>(N);
      const Node *B = sliced(S->body());
      return B == S->body() ? N : Ctx.star(B);
    }
    case NodeKind::IfThenElse: {
      const auto *I = cast<IfThenElseNode>(N);
      const Node *C = sliced(I->cond());
      const Node *T = sliced(I->thenBranch());
      const Node *E = sliced(I->elseBranch());
      // The conditional is total: equal branches make the test moot.
      if (T == E || structurallyEqual(T, E))
        return T;
      return (C == I->cond() && T == I->thenBranch() &&
              E == I->elseBranch())
                 ? N
                 : Ctx.ite(C, T, E);
    }
    case NodeKind::While: {
      const auto *W = cast<WhileNode>(N);
      const Node *C = sliced(W->cond());
      const Node *B = sliced(W->body());
      return (C == W->cond() && B == W->body()) ? N
                                                : Ctx.whileLoop(C, B);
    }
    case NodeKind::Case: {
      const auto *CN = cast<CaseNode>(N);
      const Node *Default = sliced(CN->defaultBranch());
      bool Changed = Default != CN->defaultBranch();
      bool AllEqual = true;
      std::vector<CaseNode::Branch> Branches;
      Branches.reserve(CN->branches().size());
      for (const CaseNode::Branch &B : CN->branches()) {
        const Node *G = sliced(B.first);
        const Node *P = sliced(B.second);
        Changed |= G != B.first || P != B.second;
        AllEqual &= P == Default || structurallyEqual(P, Default);
        Branches.push_back({G, P});
      }
      // First-match over a total construct: when every arm (and the
      // default) does the same thing, the routing is moot.
      if (AllEqual && !Branches.empty())
        return Default;
      return Changed ? Ctx.caseOf(std::move(Branches), Default) : N;
    }
    default:
      MCNK_UNREACHABLE("leaf kinds handled in rewriteLeaf");
    }
  }

  void forEachChild(const Node *N,
                    const std::function<void(const Node *)> &Fn) {
    switch (N->kind()) {
    case NodeKind::Not:
      Fn(cast<NotNode>(N)->operand());
      return;
    case NodeKind::Seq:
      Fn(cast<SeqNode>(N)->lhs());
      Fn(cast<SeqNode>(N)->rhs());
      return;
    case NodeKind::Union:
      Fn(cast<UnionNode>(N)->lhs());
      Fn(cast<UnionNode>(N)->rhs());
      return;
    case NodeKind::Choice:
      Fn(cast<ChoiceNode>(N)->lhs());
      Fn(cast<ChoiceNode>(N)->rhs());
      return;
    case NodeKind::Star:
      Fn(cast<StarNode>(N)->body());
      return;
    case NodeKind::IfThenElse: {
      const auto *I = cast<IfThenElseNode>(N);
      Fn(I->cond());
      Fn(I->thenBranch());
      Fn(I->elseBranch());
      return;
    }
    case NodeKind::While:
      Fn(cast<WhileNode>(N)->cond());
      Fn(cast<WhileNode>(N)->body());
      return;
    case NodeKind::Case: {
      const auto *C = cast<CaseNode>(N);
      for (const CaseNode::Branch &B : C->branches()) {
        Fn(B.first);
        Fn(B.second);
      }
      Fn(C->defaultBranch());
      return;
    }
    default:
      return;
    }
  }

  Context &Ctx;
  const std::vector<bool> &Relevant;
  std::unordered_map<const Node *, const Node *> Memo;
  std::size_t Removed = 0;
};

std::size_t countMentioned(const FieldDeps &D) {
  std::size_t N = 0;
  for (std::size_t F = 0; F < D.numFields(); ++F)
    N += D.read(static_cast<FieldId>(F)) ||
         D.written(static_cast<FieldId>(F));
  return N;
}

} // namespace

SliceResult ast::slice(Context &Ctx, const Node *Program,
                       const ObservationSet &Obs) {
  SliceResult Result;
  Result.Stats.NodesBefore = countNodes(Program);

  const Node *Cur = Program;
  std::vector<bool> Cone;
  // Round cap mirrors SimplifyOptions::MaxRounds; each productive round
  // strictly removes assignments, so real programs converge in a few.
  for (unsigned Round = 0; Round < 8; ++Round) {
    FieldDeps Deps(Ctx, Cur);
    Cone = Deps.coneOfInfluence(Obs);
    if (Round == 0) {
      Result.Stats.FieldsBefore = countMentioned(Deps);
      Result.Relevant = Cone; // Refined below if rounds shrink it.
    }
    SliceTransform T(Ctx, Cone);
    const Node *Next = T.run(Cur);
    Result.Stats.AssignmentsRemoved += T.assignmentsRemoved();
    if (Next == Cur || structurallyEqual(Next, Cur))
      break;
    Cur = simplify(Ctx, Next);
  }

  Result.Program = Cur;
  Result.Relevant = Cone;
  {
    // Mentioned ∩ cone of the *final* program — the projected universe.
    FieldDeps Final(Ctx, Cur);
    std::size_t N = 0;
    for (std::size_t F = 0; F < Final.numFields(); ++F)
      N += (Final.read(static_cast<FieldId>(F)) ||
            Final.written(static_cast<FieldId>(F)));
    Result.Stats.FieldsRelevant = N;
  }
  Result.Stats.NodesAfter = countNodes(Cur);
  return Result;
}
