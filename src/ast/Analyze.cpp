//===----------------------------------------------------------------------===//
///
/// \file
/// The S15 abstract interpreter. The domain is a per-field value set over
/// the values the program mentions (ast::collectValues) plus one wildcard
/// bit per field standing for "some unmentioned value"; the initial state
/// is ⊤ (all bits), i.e. every concrete packet, so derived facts hold over
/// the whole input space. All traversals use explicit stacks — programs
/// with 50k-deep chains must pass, as in the compiler ops.
///
/// Transfer functions run in two polarities. Forward mode computes the
/// over-approximated image of a term; negation mode computes the image of
/// ¬t for predicates using the De Morgan duals (¬(a;b) = ¬a ∨ ¬b joins,
/// ¬(a&b) = ¬a ∧ ¬b chains). while/star bodies iterate to a join fixpoint
/// (the domain is finite, so this terminates) with fact recording off, and
/// one final recording pass runs over the converged loop invariant.
///
//===----------------------------------------------------------------------===//

#include "ast/Analyze.h"

#include "ast/Traversal.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_map>

using namespace mcnk;
using namespace mcnk::ast;

const char *ast::checkName(CheckKind Check) {
  switch (Check) {
  case CheckKind::UnreachableCaseArm:
    return "unreachable-case-arm";
  case CheckKind::ShadowedCaseArm:
    return "shadowed-case-arm";
  case CheckKind::OverlappingCaseGuards:
    return "overlapping-case-guards";
  case CheckKind::UnreachableBranch:
    return "unreachable-branch";
  case CheckKind::UnreachableLoopBody:
    return "unreachable-loop-body";
  case CheckKind::DivergentLoop:
    return "divergent-loop";
  case CheckKind::DropEquivalent:
    return "drop-equivalent";
  case CheckKind::DegenerateChoice:
    return "degenerate-choice";
  case CheckKind::DeadAssignment:
    return "dead-assignment";
  case CheckKind::RedundantAssignment:
    return "redundant-assignment";
  case CheckKind::DeadField:
    return "dead-field";
  case CheckKind::WriteOnlyField:
    return "write-only-field";
  case CheckKind::QueryIrrelevantAssignment:
    return "query-irrelevant-assignment";
  }
  MCNK_UNREACHABLE("unhandled check kind");
}

std::string Finding::render(const std::string &File) const {
  std::string Out = File;
  if (Loc.valid())
    Out += ":" + std::to_string(Loc.Line) + ":" + std::to_string(Loc.Column);
  Out += ": warning[";
  Out += checkName(Check);
  Out += "]: ";
  Out += Message;
  return Out;
}

namespace {

/// Dense value universe. Each mentioned field owns the bit range
/// [begin, end) of the flattened state; bit `begin` is the wildcard
/// ("holds some value the program never mentions"), the rest map the
/// field's mentioned values in sorted order.
class Dom {
public:
  explicit Dom(const Node *Program) {
    for (auto &[F, Vals] : collectValues(Program)) {
      IndexOf.emplace(F, static_cast<unsigned>(FieldOf.size()));
      FieldOf.push_back(F);
      Values.emplace_back(Vals.begin(), Vals.end());
    }
    Base.resize(FieldOf.size() + 1, 0);
    for (std::size_t I = 0; I < FieldOf.size(); ++I)
      Base[I + 1] = Base[I] + 1 + static_cast<unsigned>(Values[I].size());
  }

  unsigned numBits() const { return Base.back(); }
  unsigned numWords() const { return (numBits() + 63) / 64; }
  unsigned fieldIndex(FieldId F) const { return IndexOf.at(F); }
  unsigned beginBit(unsigned FI) const { return Base[FI]; }
  unsigned endBit(unsigned FI) const { return Base[FI + 1]; }
  unsigned valueBit(unsigned FI, FieldValue V) const {
    const auto &Vals = Values[FI];
    auto It = std::lower_bound(Vals.begin(), Vals.end(), V);
    assert(It != Vals.end() && *It == V && "value outside the universe");
    return Base[FI] + 1 + static_cast<unsigned>(It - Vals.begin());
  }

private:
  std::unordered_map<FieldId, unsigned> IndexOf;
  std::vector<FieldId> FieldOf;
  std::vector<std::vector<FieldValue>> Values;
  std::vector<unsigned> Base{0};
};

/// A set of abstract packets: per-field value bits, or ⊥ (no packet).
struct AbsState {
  bool Bottom = true;
  std::vector<uint64_t> W;
};

AbsState bottomState() { return AbsState{}; }

AbsState topState(const Dom &D) {
  AbsState S;
  S.Bottom = false;
  S.W.assign(D.numWords(), ~uint64_t(0));
  if (unsigned Tail = D.numBits() % 64; Tail != 0 && !S.W.empty())
    S.W.back() &= (uint64_t(1) << Tail) - 1;
  return S;
}

bool testBit(const AbsState &S, unsigned B) {
  return (S.W[B / 64] >> (B % 64)) & 1;
}
void setBit(AbsState &S, unsigned B) { S.W[B / 64] |= uint64_t(1) << (B % 64); }
void clearBit(AbsState &S, unsigned B) {
  S.W[B / 64] &= ~(uint64_t(1) << (B % 64));
}

void joinInto(AbsState &A, const AbsState &B) {
  if (B.Bottom)
    return;
  if (A.Bottom) {
    A = B;
    return;
  }
  for (std::size_t I = 0; I < A.W.size(); ++I)
    A.W[I] |= B.W[I];
}

bool equalState(const AbsState &A, const AbsState &B) {
  if (A.Bottom != B.Bottom)
    return false;
  return A.Bottom || A.W == B.W;
}

bool fieldEmpty(const Dom &D, const AbsState &S, unsigned FI) {
  for (unsigned B = D.beginBit(FI); B != D.endBit(FI); ++B)
    if (testBit(S, B))
      return false;
  return true;
}

/// True if field FI holds exactly the one value at bit VB (no wildcard).
bool fieldIsExactly(const Dom &D, const AbsState &S, unsigned FI,
                    unsigned VB) {
  for (unsigned B = D.beginBit(FI); B != D.endBit(FI); ++B)
    if (testBit(S, B) != (B == VB))
      return false;
  return true;
}

/// f = n forward: keep only packets where field FI holds the value at VB.
AbsState refineTest(const Dom &D, AbsState S, unsigned FI, unsigned VB) {
  if (S.Bottom)
    return S;
  if (!testBit(S, VB))
    return bottomState();
  for (unsigned B = D.beginBit(FI); B != D.endBit(FI); ++B)
    if (B != VB)
      clearBit(S, B);
  return S;
}

/// ¬(f = n): remove the value at VB; the wildcard and other values stay.
AbsState refineNotTest(const Dom &D, AbsState S, unsigned FI, unsigned VB) {
  if (S.Bottom)
    return S;
  clearBit(S, VB);
  if (fieldEmpty(D, S, FI))
    return bottomState();
  return S;
}

AbsState applyAssign(const Dom &D, AbsState S, unsigned FI, unsigned VB) {
  if (S.Bottom)
    return S;
  for (unsigned B = D.beginBit(FI); B != D.endBit(FI); ++B)
    clearBit(S, B);
  setBit(S, VB);
  return S;
}

/// In-order flattening of a maximal `;` chain into its non-Seq elements.
/// Bails (returns false) past \p Cap elements — heavily shared seq DAGs
/// can unfold exponentially, and a truncated chain must not be scanned.
bool flattenSeq(const Node *N, std::vector<const Node *> &Out,
                std::size_t Cap) {
  std::vector<const Node *> Stack{N};
  while (!Stack.empty()) {
    const Node *C = Stack.back();
    Stack.pop_back();
    if (const auto *S = dyn_cast<SeqNode>(C)) {
      Stack.push_back(S->rhs());
      Stack.push_back(S->lhs());
      continue;
    }
    if (Out.size() >= Cap)
      return false;
    Out.push_back(C);
  }
  return true;
}

/// Concrete truth of a predicate on a single packet (explicit stack).
/// \p Env must bind every field the predicate mentions.
bool evalPredicate(const Node *Pred,
                   const std::vector<std::pair<FieldId, FieldValue>> &Env) {
  struct EFrame {
    const Node *N;
    bool Neg;
    unsigned Phase = 0;
  };
  std::vector<EFrame> Stack{{Pred, false, 0}};
  bool Ret = false;
  while (!Stack.empty()) {
    EFrame &F = Stack.back();
    switch (F.N->kind()) {
    case NodeKind::Drop:
      Ret = F.Neg;
      Stack.pop_back();
      continue;
    case NodeKind::Skip:
      Ret = !F.Neg;
      Stack.pop_back();
      continue;
    case NodeKind::Test: {
      const auto *T = cast<TestNode>(F.N);
      bool Holds = false;
      for (const auto &[Field, Value] : Env)
        if (Field == T->field()) {
          Holds = Value == T->value();
          break;
        }
      Ret = Holds != F.Neg;
      Stack.pop_back();
      continue;
    }
    case NodeKind::Not: {
      const Node *Op = cast<NotNode>(F.N)->operand();
      bool Neg = !F.Neg;
      Stack.pop_back();
      Stack.push_back({Op, Neg, 0});
      continue;
    }
    case NodeKind::Seq:
    case NodeKind::Union: {
      // Seq is AND of its children, Union is OR; negation mode swaps the
      // connective (De Morgan) with the mode pushed into the children.
      bool IsAnd = (F.N->kind() == NodeKind::Seq) != F.Neg;
      const Node *Lhs = isa<SeqNode>(F.N) ? cast<SeqNode>(F.N)->lhs()
                                          : cast<UnionNode>(F.N)->lhs();
      const Node *Rhs = isa<SeqNode>(F.N) ? cast<SeqNode>(F.N)->rhs()
                                          : cast<UnionNode>(F.N)->rhs();
      if (F.Phase == 0) {
        F.Phase = 1;
        Stack.push_back({Lhs, F.Neg, 0});
        continue;
      }
      if (F.Phase == 1) {
        if (Ret != IsAnd) { // Short-circuit: AND met false / OR met true.
          Stack.pop_back();
          continue;
        }
        F.Phase = 2;
        bool Neg = F.Neg;
        Stack.pop_back();
        Stack.push_back({Rhs, Neg, 0});
        continue;
      }
      MCNK_UNREACHABLE("bad phase");
    }
    default:
      MCNK_UNREACHABLE("non-predicate node in a guard");
    }
  }
  return Ret;
}

} // namespace

//===----------------------------------------------------------------------===//
// DomainAnalysis
//===----------------------------------------------------------------------===//

struct DomainAnalysis::Impl {
  struct IteFact {
    bool ThenReach = false, ElseReach = false;
  };
  struct LoopFact {
    bool Entered = false, Exits = false;
  };
  struct CaseFact {
    explicit CaseFact(std::size_t NumArms)
        : ArmReach(NumArms, 0), Total(NumArms, 1) {}
    std::vector<char> ArmReach;
    std::vector<char> Total; ///< guard matches all remaining packets
    bool ElseReach = false;
  };

  const Context &Ctx;
  const Node *Root;
  AnalyzeOptions Opts;
  Dom D;

  std::unordered_map<const Node *, AbsState> EntryRec;
  std::unordered_map<const Node *, AbsState> ExitRec;
  std::unordered_map<const Node *, IteFact> IteFacts;
  std::unordered_map<const Node *, LoopFact> LoopFacts;
  std::unordered_map<const Node *, CaseFact> CaseFacts;
  std::unordered_map<const Node *, SourceLoc> EffLoc;
  std::vector<const AssignNode *> AssignOrder;
  std::set<std::tuple<const Node *, unsigned, std::uint64_t>> Reported;
  std::vector<Finding> Findings;

  Impl(const Context &C, const Node *Program, AnalyzeOptions O)
      : Ctx(C), Root(Program), Opts(O), D(Program) {
    eval(Root, topState(D), /*Neg=*/false, /*Report=*/true, SourceLoc{});
    dropEquivalencePass();
    overlapPass();
    deadAssignPass();
    redundantAssignPass();
    std::stable_sort(Findings.begin(), Findings.end(),
                     [](const Finding &A, const Finding &B) {
                       if (A.Loc.valid() != B.Loc.valid())
                         return A.Loc.valid(); // Located findings first.
                       if (A.Loc.Line != B.Loc.Line)
                         return A.Loc.Line < B.Loc.Line;
                       if (A.Loc.Column != B.Loc.Column)
                         return A.Loc.Column < B.Loc.Column;
                       if (A.Check != B.Check)
                         return static_cast<unsigned>(A.Check) <
                                static_cast<unsigned>(B.Check);
                       return A.Message < B.Message;
                     });
    // Distinct node pointers can render as the same diagnostic line: the
    // per-node Reported set cannot catch, say, the two dead assignments a
    // `var` block desugars to, both unlocated and both inheriting the
    // block's span. Collapse identical rendered lines here.
    Findings.erase(std::unique(Findings.begin(), Findings.end(),
                               [](const Finding &A, const Finding &B) {
                                 return A.Loc.valid() == B.Loc.valid() &&
                                        A.Loc.Line == B.Loc.Line &&
                                        A.Loc.Column == B.Loc.Column &&
                                        A.Check == B.Check &&
                                        A.Message == B.Message;
                               }),
                   Findings.end());
  }

  /// Best location for a diagnostic anchored at \p N: the node's own
  /// recorded location, else the nearest located ancestor seen while
  /// reaching it.
  SourceLoc locOf(const Node *N) const {
    SourceLoc L = Ctx.loc(N);
    if (L.valid())
      return L;
    auto It = EffLoc.find(N);
    return It == EffLoc.end() ? SourceLoc{} : It->second;
  }

  void report(CheckKind Check, const Node *Where, std::uint64_t Aux,
              std::string Message) {
    if (!Reported.insert({Where, static_cast<unsigned>(Check), Aux}).second)
      return;
    Findings.push_back({Check, locOf(Where), Where, std::move(Message)});
  }

  bool recordEntry(const Node *N, const AbsState &S) {
    auto [It, New] = EntryRec.try_emplace(N, S);
    if (!New)
      joinInto(It->second, S);
    return New;
  }

  void recordExit(const Node *N, const AbsState &S) {
    auto [It, New] = ExitRec.try_emplace(N, S);
    if (!New)
      joinInto(It->second, S);
  }

  // --- Fact queries (shared by the public API and the passes) -----------
  bool reached(const Node *N) const { return EntryRec.count(N) != 0; }

  Truth testTruth(const TestNode *T) const {
    auto It = EntryRec.find(T);
    if (It == EntryRec.end())
      return Truth::Unknown;
    unsigned FI = D.fieldIndex(T->field());
    unsigned VB = D.valueBit(FI, T->value());
    if (!testBit(It->second, VB))
      return Truth::False;
    if (fieldIsExactly(D, It->second, FI, VB))
      return Truth::True;
    return Truth::Unknown;
  }

  bool assignRedundant(const AssignNode *A) const {
    auto It = EntryRec.find(A);
    if (It == EntryRec.end())
      return false;
    unsigned FI = D.fieldIndex(A->field());
    return fieldIsExactly(D, It->second, FI, D.valueBit(FI, A->value()));
  }

  bool dropEquivalent(const Node *N) const {
    auto En = EntryRec.find(N);
    if (En == EntryRec.end())
      return false;
    auto Ex = ExitRec.find(N);
    return Ex != ExitRec.end() && Ex->second.Bottom;
  }

  // --- The abstract machine ---------------------------------------------
  struct Frame {
    const Node *N;
    AbsState In;
    bool Neg;
    bool Report;
    SourceLoc Loc;
    unsigned Phase = 0;
    std::size_t Arm = 0;
    AbsState S0, S1, S2;
  };

  AbsState eval(const Node *Start, AbsState In, bool Neg, bool Report,
                SourceLoc ParentLoc) {
    std::vector<Frame> Stack;
    AbsState Ret;
    auto push = [&](const Node *N, AbsState NodeIn, bool NodeNeg,
                    bool NodeReport, SourceLoc PLoc) {
      Frame F;
      F.N = N;
      F.In = std::move(NodeIn);
      F.Neg = NodeNeg;
      F.Report = NodeReport;
      SourceLoc L = Ctx.loc(N);
      F.Loc = L.valid() ? L : PLoc;
      Stack.push_back(std::move(F));
    };
    auto finish = [&](AbsState V) {
      Frame &F = Stack.back();
      if (F.Report && !F.Neg)
        recordExit(F.N, V);
      Ret = std::move(V);
      Stack.pop_back();
    };

    push(Start, std::move(In), Neg, Report, ParentLoc);
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      if (F.Phase == 0 && F.Report) {
        EffLoc.emplace(F.N, F.Loc);
        if (!F.In.Bottom && recordEntry(F.N, F.In))
          if (const auto *A = dyn_cast<AssignNode>(F.N))
            AssignOrder.push_back(A);
      }
      switch (F.N->kind()) {
      case NodeKind::Drop:
        finish(F.Neg ? std::move(F.In) : bottomState());
        continue;
      case NodeKind::Skip:
        finish(F.Neg ? bottomState() : std::move(F.In));
        continue;
      case NodeKind::Test: {
        const auto *T = cast<TestNode>(F.N);
        unsigned FI = D.fieldIndex(T->field());
        unsigned VB = D.valueBit(FI, T->value());
        finish(F.Neg ? refineNotTest(D, std::move(F.In), FI, VB)
                     : refineTest(D, std::move(F.In), FI, VB));
        continue;
      }
      case NodeKind::Assign: {
        assert(!F.Neg && "assignment inside a predicate");
        const auto *A = cast<AssignNode>(F.N);
        unsigned FI = D.fieldIndex(A->field());
        finish(applyAssign(D, std::move(F.In), FI,
                           D.valueBit(FI, A->value())));
        continue;
      }
      case NodeKind::Not: {
        if (F.Phase == 0) {
          F.Phase = 1;
          push(cast<NotNode>(F.N)->operand(), F.In, !F.Neg, F.Report, F.Loc);
          continue;
        }
        finish(std::move(Ret));
        continue;
      }
      case NodeKind::Seq: {
        const auto *S = cast<SeqNode>(F.N);
        if (!F.Neg) {
          if (F.Phase == 0) {
            F.Phase = 1;
            push(S->lhs(), std::move(F.In), false, F.Report, F.Loc);
            continue;
          }
          if (F.Phase == 1) {
            F.Phase = 2;
            push(S->rhs(), std::move(Ret), false, F.Report, F.Loc);
            continue;
          }
          finish(std::move(Ret));
          continue;
        }
        // ¬(a ; b) = ¬a ∨ ¬b on predicates.
        if (F.Phase == 0) {
          F.Phase = 1;
          push(S->lhs(), F.In, true, F.Report, F.Loc);
          continue;
        }
        if (F.Phase == 1) {
          F.S0 = std::move(Ret);
          F.Phase = 2;
          push(S->rhs(), std::move(F.In), true, F.Report, F.Loc);
          continue;
        }
        joinInto(Ret, F.S0);
        finish(std::move(Ret));
        continue;
      }
      case NodeKind::Union: {
        const auto *U = cast<UnionNode>(F.N);
        if (!F.Neg) {
          if (F.Phase == 0) {
            F.Phase = 1;
            push(U->lhs(), F.In, false, F.Report, F.Loc);
            continue;
          }
          if (F.Phase == 1) {
            F.S0 = std::move(Ret);
            F.Phase = 2;
            push(U->rhs(), std::move(F.In), false, F.Report, F.Loc);
            continue;
          }
          joinInto(Ret, F.S0);
          finish(std::move(Ret));
          continue;
        }
        // ¬(a & b) = ¬a ∧ ¬b on predicates.
        if (F.Phase == 0) {
          F.Phase = 1;
          push(U->lhs(), std::move(F.In), true, F.Report, F.Loc);
          continue;
        }
        if (F.Phase == 1) {
          F.Phase = 2;
          push(U->rhs(), std::move(Ret), true, F.Report, F.Loc);
          continue;
        }
        finish(std::move(Ret));
        continue;
      }
      case NodeKind::Choice: {
        assert(!F.Neg && "choice inside a predicate");
        const auto *C = cast<ChoiceNode>(F.N);
        if (F.Phase == 0) {
          F.Phase = 1;
          push(C->lhs(), F.In, false, F.Report, F.Loc);
          continue;
        }
        if (F.Phase == 1) {
          F.S0 = std::move(Ret);
          F.Phase = 2;
          push(C->rhs(), std::move(F.In), false, F.Report, F.Loc);
          continue;
        }
        joinInto(Ret, F.S0);
        finish(std::move(Ret));
        continue;
      }
      case NodeKind::Star: {
        assert(!F.Neg && "star inside a predicate");
        const auto *S = cast<StarNode>(F.N);
        if (F.Phase == 0) {
          if (F.In.Bottom) {
            finish(std::move(F.In));
            continue;
          }
          F.S0 = F.In;
          F.Phase = 1;
          push(S->body(), F.S0, false, false, F.Loc);
          continue;
        }
        if (F.Phase == 1) {
          AbsState L = F.S0;
          joinInto(L, Ret);
          if (!equalState(L, F.S0)) {
            F.S0 = std::move(L);
            push(S->body(), F.S0, false, false, F.Loc);
            continue;
          }
          if (!F.Report) {
            finish(std::move(F.S0));
            continue;
          }
          F.Phase = 2;
          push(S->body(), F.S0, false, true, F.Loc);
          continue;
        }
        finish(std::move(F.S0));
        continue;
      }
      case NodeKind::IfThenElse: {
        assert(!F.Neg && "if inside a predicate");
        const auto *I = cast<IfThenElseNode>(F.N);
        switch (F.Phase) {
        case 0:
          F.Phase = 1;
          push(I->cond(), F.In, false, F.Report, F.Loc);
          continue;
        case 1:
          F.S0 = std::move(Ret); // then-entry
          F.Phase = 2;
          push(I->cond(), F.In, true, F.Report, F.Loc);
          continue;
        case 2:
          F.S1 = std::move(Ret); // else-entry
          if (F.Report && !F.In.Bottom) {
            IteFact &Fact = IteFacts.try_emplace(F.N).first->second;
            Fact.ThenReach |= !F.S0.Bottom;
            Fact.ElseReach |= !F.S1.Bottom;
            if (F.S0.Bottom)
              report(CheckKind::UnreachableBranch, F.N, 0,
                     "the then-branch is unreachable: the condition is "
                     "statically false");
            if (F.S1.Bottom)
              report(CheckKind::UnreachableBranch, F.N, 1,
                     "the else-branch is unreachable: the condition is "
                     "statically true");
          }
          F.Phase = 3;
          push(I->thenBranch(), F.S0, false, F.Report, F.Loc);
          continue;
        case 3:
          F.S0 = std::move(Ret); // then-exit
          F.Phase = 4;
          push(I->elseBranch(), std::move(F.S1), false, F.Report, F.Loc);
          continue;
        default:
          joinInto(Ret, F.S0);
          finish(std::move(Ret));
          continue;
        }
      }
      case NodeKind::While: {
        assert(!F.Neg && "while inside a predicate");
        const auto *Wh = cast<WhileNode>(F.N);
        switch (F.Phase) {
        case 0: // Fixpoint over the loop invariant L (= F.S0).
          F.S0 = std::move(F.In);
          F.In = F.S0; // Keep a copy for the !In.Bottom report guards.
          F.Phase = 1;
          push(Wh->cond(), F.S0, false, false, F.Loc);
          continue;
        case 1: // Ret = refine(L, cond)
          if (Ret.Bottom) {
            F.Phase = 3;
            continue;
          }
          F.Phase = 2;
          push(Wh->body(), std::move(Ret), false, false, F.Loc);
          continue;
        case 2: { // Ret = body image; widen L.
          AbsState L = F.S0;
          joinInto(L, Ret);
          if (equalState(L, F.S0)) {
            F.Phase = 3;
            continue;
          }
          F.S0 = std::move(L);
          F.Phase = 1;
          push(Wh->cond(), F.S0, false, false, F.Loc);
          continue;
        }
        case 3: // Converged. Recording pass (cond, body), then exit.
          if (!F.Report) {
            F.Phase = 6;
            push(Wh->cond(), F.S0, true, false, F.Loc);
            continue;
          }
          F.Phase = 4;
          push(Wh->cond(), F.S0, false, true, F.Loc);
          continue;
        case 4: // Ret = final body entry.
          F.S1 = std::move(Ret);
          if (!F.In.Bottom) {
            LoopFact &Fact = LoopFacts.try_emplace(F.N).first->second;
            Fact.Entered |= !F.S1.Bottom;
            if (F.S1.Bottom)
              report(CheckKind::UnreachableLoopBody, F.N, 0,
                     "the loop body is unreachable: the guard is "
                     "statically false");
          }
          F.Phase = 5;
          push(Wh->body(), F.S1, false, true, F.Loc);
          continue;
        case 5:
          F.Phase = 6;
          push(Wh->cond(), F.S0, true, F.Report, F.Loc);
          continue;
        default: // Ret = exit = refine(L, ¬cond).
          if (F.Report && !F.In.Bottom) {
            LoopFact &Fact = LoopFacts.try_emplace(F.N).first->second;
            Fact.Exits |= !Ret.Bottom;
            if (Ret.Bottom && !F.S1.Bottom)
              report(CheckKind::DivergentLoop, F.N, 0,
                     "the loop never terminates: its guard stays true on "
                     "every reachable packet (the loop is drop-equivalent)");
          }
          finish(std::move(Ret));
          continue;
        }
      }
      case NodeKind::Case: {
        assert(!F.Neg && "case inside a predicate");
        const auto *C = cast<CaseNode>(F.N);
        const auto &Br = C->branches();
        switch (F.Phase) {
        case 0:
          F.S0 = std::move(F.In); // Remaining (un-matched) packets.
          F.In = F.S0;
          F.S1 = bottomState(); // Joined output.
          F.Arm = 0;
          if (F.Report && !F.In.Bottom)
            CaseFacts.try_emplace(F.N, CaseFact(Br.size()));
          F.Phase = 1;
          push(Br[0].first, F.S0, false, F.Report, F.Loc);
          continue;
        case 1: // Ret = arm entry = refine(Rem, guard).
          F.S2 = std::move(Ret);
          if (F.Report && !F.In.Bottom) {
            CaseFacts.at(F.N).ArmReach[F.Arm] |= !F.S2.Bottom;
            if (F.S2.Bottom) {
              // Distinguish "guard never matches at all" from "guard is
              // covered by earlier arms" by re-refining against the
              // whole case input.
              F.Phase = 2;
              push(Br[F.Arm].first, F.In, false, false, F.Loc);
              continue;
            }
          }
          F.Phase = 3;
          continue;
        case 2: { // Ret = refine(case input, guard).
          std::string ArmNo = std::to_string(F.Arm + 1);
          if (Ret.Bottom)
            report(CheckKind::UnreachableCaseArm, F.N, F.Arm,
                   "case arm " + ArmNo +
                       " is unreachable: its guard can never match");
          else
            report(CheckKind::ShadowedCaseArm, F.N, F.Arm,
                   "case arm " + ArmNo +
                       " is shadowed: earlier arms match every packet its "
                       "guard admits");
          F.Phase = 3;
          continue;
        }
        case 3:
          F.Phase = 4;
          push(Br[F.Arm].second, F.S2, false, F.Report, F.Loc);
          continue;
        case 4: // Ret = arm body image.
          joinInto(F.S1, Ret);
          F.Phase = 5;
          push(Br[F.Arm].first, F.S0, true, F.Report, F.Loc);
          continue;
        case 5: // Ret = Rem minus this guard.
          F.S0 = std::move(Ret);
          if (F.Report && !F.In.Bottom) {
            CaseFact &Fact = CaseFacts.at(F.N);
            Fact.Total[F.Arm] =
                static_cast<char>(Fact.Total[F.Arm] && F.S0.Bottom);
          }
          ++F.Arm;
          if (F.Arm < Br.size()) {
            F.Phase = 1;
            push(Br[F.Arm].first, F.S0, false, F.Report, F.Loc);
            continue;
          }
          if (F.Report && !F.In.Bottom) {
            CaseFacts.at(F.N).ElseReach |= !F.S0.Bottom;
            if (F.S0.Bottom)
              report(CheckKind::ShadowedCaseArm, F.N, Br.size(),
                     "the else arm is unreachable: earlier guards match "
                     "every packet");
          }
          F.Phase = 6;
          push(C->defaultBranch(), F.S0, false, F.Report, F.Loc);
          continue;
        default:
          joinInto(F.S1, Ret);
          finish(std::move(F.S1));
          continue;
        }
      }
      }
      MCNK_UNREACHABLE("unhandled node kind");
    }
    return Ret;
  }

  // --- Post passes --------------------------------------------------------

  /// Reports the outermost reached-but-output-free subprograms. Predicate
  /// positions (guards/conditions) are excluded — deadness there surfaces
  /// as unreachable-arm/branch findings — as are while loops, whose only
  /// drop-equivalent shape is already the divergent-loop finding.
  void dropEquivalencePass() {
    std::vector<std::pair<const Node *, bool>> Stack{{Root, true}};
    std::set<std::pair<const Node *, bool>> Visited;
    while (!Stack.empty()) {
      auto [N, Prog] = Stack.back();
      Stack.pop_back();
      if (!Visited.insert({N, Prog}).second)
        continue;
      if (Prog && !isa<DropNode>(N) && !isa<WhileNode>(N) &&
          dropEquivalent(N)) {
        report(CheckKind::DropEquivalent, N, 0,
               "this subprogram is equivalent to drop: it delivers no "
               "packets");
        continue; // Children would just cascade.
      }
      switch (N->kind()) {
      case NodeKind::Drop:
      case NodeKind::Skip:
      case NodeKind::Test:
      case NodeKind::Assign:
        break;
      case NodeKind::Not:
        Stack.push_back({cast<NotNode>(N)->operand(), false});
        break;
      case NodeKind::Seq:
        Stack.push_back({cast<SeqNode>(N)->lhs(), Prog});
        Stack.push_back({cast<SeqNode>(N)->rhs(), Prog});
        break;
      case NodeKind::Union:
        Stack.push_back({cast<UnionNode>(N)->lhs(), Prog});
        Stack.push_back({cast<UnionNode>(N)->rhs(), Prog});
        break;
      case NodeKind::Choice:
        Stack.push_back({cast<ChoiceNode>(N)->lhs(), Prog});
        Stack.push_back({cast<ChoiceNode>(N)->rhs(), Prog});
        break;
      case NodeKind::Star:
        Stack.push_back({cast<StarNode>(N)->body(), Prog});
        break;
      case NodeKind::IfThenElse: {
        const auto *I = cast<IfThenElseNode>(N);
        Stack.push_back({I->cond(), false});
        Stack.push_back({I->thenBranch(), Prog});
        Stack.push_back({I->elseBranch(), Prog});
        break;
      }
      case NodeKind::While: {
        const auto *W = cast<WhileNode>(N);
        Stack.push_back({W->cond(), false});
        Stack.push_back({W->body(), Prog});
        break;
      }
      case NodeKind::Case: {
        const auto *C = cast<CaseNode>(N);
        for (const auto &[Guard, Body] : C->branches()) {
          Stack.push_back({Guard, false});
          Stack.push_back({Body, Prog});
        }
        Stack.push_back({C->defaultBranch(), Prog});
        break;
      }
      }
    }
  }

  /// Exact pairwise guard-overlap detection by concrete enumeration over
  /// the values either guard mentions plus one unmentioned representative
  /// per field (guards cannot distinguish unmentioned values, so this is
  /// exhaustive). Pairs whose assignment space exceeds the budget are
  /// skipped — the check never reports an unproven overlap.
  void overlapPass() {
    // Collect case nodes in deterministic DFS order.
    std::vector<const CaseNode *> Cases;
    {
      std::vector<const Node *> Stack{Root};
      std::set<const Node *> Visited;
      while (!Stack.empty()) {
        const Node *N = Stack.back();
        Stack.pop_back();
        if (!Visited.insert(N).second)
          continue;
        if (const auto *C = dyn_cast<CaseNode>(N))
          Cases.push_back(C);
        forEachChildRev(N, Stack);
      }
    }
    for (const CaseNode *C : Cases) {
      const auto &Br = C->branches();
      for (std::size_t I = 0; I < Br.size(); ++I)
        for (std::size_t J = I + 1; J < Br.size(); ++J)
          checkOverlap(C, I, J);
    }
  }

  static void forEachChildRev(const Node *N, std::vector<const Node *> &Out) {
    // Push children in reverse so the DFS pops them in syntactic order.
    std::size_t Mark = Out.size();
    switch (N->kind()) {
    case NodeKind::Drop:
    case NodeKind::Skip:
    case NodeKind::Test:
    case NodeKind::Assign:
      break;
    case NodeKind::Not:
      Out.push_back(cast<NotNode>(N)->operand());
      break;
    case NodeKind::Seq:
      Out.push_back(cast<SeqNode>(N)->lhs());
      Out.push_back(cast<SeqNode>(N)->rhs());
      break;
    case NodeKind::Union:
      Out.push_back(cast<UnionNode>(N)->lhs());
      Out.push_back(cast<UnionNode>(N)->rhs());
      break;
    case NodeKind::Choice:
      Out.push_back(cast<ChoiceNode>(N)->lhs());
      Out.push_back(cast<ChoiceNode>(N)->rhs());
      break;
    case NodeKind::Star:
      Out.push_back(cast<StarNode>(N)->body());
      break;
    case NodeKind::IfThenElse:
      Out.push_back(cast<IfThenElseNode>(N)->cond());
      Out.push_back(cast<IfThenElseNode>(N)->thenBranch());
      Out.push_back(cast<IfThenElseNode>(N)->elseBranch());
      break;
    case NodeKind::While:
      Out.push_back(cast<WhileNode>(N)->cond());
      Out.push_back(cast<WhileNode>(N)->body());
      break;
    case NodeKind::Case: {
      const auto *C = cast<CaseNode>(N);
      for (const auto &[Guard, Body] : C->branches()) {
        Out.push_back(Guard);
        Out.push_back(Body);
      }
      Out.push_back(C->defaultBranch());
      break;
    }
    }
    std::reverse(Out.begin() + Mark, Out.end());
  }

  void checkOverlap(const CaseNode *C, std::size_t I, std::size_t J) {
    const Node *GI = C->branches()[I].first;
    const Node *GJ = C->branches()[J].first;
    auto Vals = collectValues(GI);
    for (auto &[F, Vs] : collectValues(GJ))
      Vals[F].insert(Vs.begin(), Vs.end());

    // Candidate axes: mentioned values plus one unmentioned witness.
    std::vector<std::pair<FieldId, std::vector<FieldValue>>> Axes;
    std::size_t Count = 1;
    for (auto &[F, Vs] : Vals) {
      FieldValue Fresh = 0;
      while (Vs.count(Fresh))
        ++Fresh;
      std::vector<FieldValue> Cands(Vs.begin(), Vs.end());
      Cands.push_back(Fresh);
      if (Count > Opts.OverlapBudget / Cands.size())
        return; // Over budget; stay silent rather than guess.
      Count *= Cands.size();
      Axes.emplace_back(F, std::move(Cands));
    }

    std::vector<std::size_t> Odo(Axes.size(), 0);
    std::vector<std::pair<FieldId, FieldValue>> Env(Axes.size());
    for (std::size_t Step = 0; Step < Count; ++Step) {
      for (std::size_t K = 0; K < Axes.size(); ++K)
        Env[K] = {Axes[K].first, Axes[K].second[Odo[K]]};
      if (evalPredicate(GI, Env) && evalPredicate(GJ, Env)) {
        std::string Witness;
        for (const auto &[F, V] : Env) {
          if (!Witness.empty())
            Witness += ", ";
          Witness += Ctx.fields().name(F) + "=" + std::to_string(V);
        }
        report(CheckKind::OverlappingCaseGuards, C,
               (static_cast<std::uint64_t>(I) << 32) | J,
               "case guards of arms " + std::to_string(I + 1) + " and " +
                   std::to_string(J + 1) + " overlap" +
                   (Witness.empty() ? std::string()
                                    : " (e.g. " + Witness + ")") +
                   "; only the first match fires");
        return;
      }
      for (std::size_t K = 0; K < Axes.size(); ++K) {
        if (++Odo[K] < Axes[K].second.size())
          break;
        Odo[K] = 0;
      }
    }
  }

  /// Flags `f := a ; f := b` where the two writes are adjacent in the
  /// flattened `;` chain (nothing can read the first value).
  void deadAssignPass() {
    std::vector<std::pair<const Node *, bool>> Stack{{Root, false}};
    std::set<std::pair<const Node *, bool>> Visited;
    while (!Stack.empty()) {
      auto [N, ParentIsSeq] = Stack.back();
      Stack.pop_back();
      if (!Visited.insert({N, ParentIsSeq}).second)
        continue;
      bool IsSeq = isa<SeqNode>(N);
      if (IsSeq && !ParentIsSeq) {
        std::vector<const Node *> Elems;
        if (flattenSeq(N, Elems, /*Cap=*/std::size_t(1) << 20)) {
          for (std::size_t K = 0; K + 1 < Elems.size(); ++K) {
            const auto *A = dyn_cast<AssignNode>(Elems[K]);
            const auto *B = dyn_cast<AssignNode>(Elems[K + 1]);
            if (A && B && A->field() == B->field())
              report(CheckKind::DeadAssignment, A, 0,
                     "assignment to '" + Ctx.fields().name(A->field()) +
                         "' is immediately overwritten");
          }
        }
      }
      std::vector<const Node *> Kids;
      forEachChildRev(N, Kids);
      for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
        Stack.push_back({*It, IsSeq});
    }
  }

  void redundantAssignPass() {
    for (const AssignNode *A : AssignOrder)
      if (assignRedundant(A))
        report(CheckKind::RedundantAssignment, A, 0,
               "assignment is redundant: '" +
                   Ctx.fields().name(A->field()) + "' already holds " +
                   std::to_string(A->value()) + " here");
  }
};

DomainAnalysis::DomainAnalysis(const Context &Ctx, const Node *Program,
                               AnalyzeOptions Opts)
    : M(std::make_unique<Impl>(Ctx, Program, Opts)) {}

DomainAnalysis::~DomainAnalysis() = default;

const std::vector<Finding> &DomainAnalysis::findings() const {
  return M->Findings;
}

DomainAnalysis::Truth DomainAnalysis::testTruth(const TestNode *T) const {
  return M->testTruth(T);
}

bool DomainAnalysis::reached(const Node *N) const { return M->reached(N); }

bool DomainAnalysis::branchReachable(const IfThenElseNode *N,
                                     bool Then) const {
  auto It = M->IteFacts.find(N);
  if (It == M->IteFacts.end())
    return false;
  return Then ? It->second.ThenReach : It->second.ElseReach;
}

bool DomainAnalysis::loopEntered(const WhileNode *N) const {
  auto It = M->LoopFacts.find(N);
  return It != M->LoopFacts.end() && It->second.Entered;
}

bool DomainAnalysis::loopExits(const WhileNode *N) const {
  auto It = M->LoopFacts.find(N);
  return It != M->LoopFacts.end() && It->second.Exits;
}

bool DomainAnalysis::armReachable(const CaseNode *N, std::size_t Arm) const {
  auto It = M->CaseFacts.find(N);
  if (It == M->CaseFacts.end())
    return false;
  if (Arm == N->branches().size())
    return It->second.ElseReach;
  return It->second.ArmReach[Arm] != 0;
}

bool DomainAnalysis::guardTotal(const CaseNode *N, std::size_t Arm) const {
  auto It = M->CaseFacts.find(N);
  return It != M->CaseFacts.end() && It->second.Total[Arm] != 0;
}

bool DomainAnalysis::assignRedundant(const AssignNode *N) const {
  return M->assignRedundant(N);
}

bool DomainAnalysis::dropEquivalent(const Node *N) const {
  return M->dropEquivalent(N);
}

std::vector<Finding> ast::analyze(const Context &Ctx, const Node *Program,
                                  const AnalyzeOptions &Opts) {
  return DomainAnalysis(Ctx, Program, Opts).findings();
}
