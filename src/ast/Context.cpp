//===----------------------------------------------------------------------===//
///
/// \file
/// Arena allocation and smart constructors for AST nodes, applying the
/// light normalizations (drop/skip absorption, trivial-probability
/// collapse) and the Sec 2/3 desugarings of derived forms.
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"

#include "support/Casting.h"
#include "support/Error.h"

#include <cassert>

using namespace mcnk;
using namespace mcnk::ast;

Context::Context() {
  DropSingleton = make<DropNode>();
  SkipSingleton = make<SkipNode>();
}

void Context::noteLoc(const Node *N, SourceLoc Loc) {
  if (!N || !Loc.valid() || N == DropSingleton || N == SkipSingleton)
    return;
  Locs.emplace(N, Loc); // First write wins.
}

SourceLoc Context::loc(const Node *N) const {
  auto It = Locs.find(N);
  return It == Locs.end() ? SourceLoc{} : It->second;
}

const Node *Context::test(FieldId Field, FieldValue Value) {
  return make<TestNode>(Field, Value);
}

const Node *Context::assign(FieldId Field, FieldValue Value) {
  return make<AssignNode>(Field, Value);
}

const Node *Context::negate(const Node *Pred) {
  assert(Pred->isPredicate() && "negation of a non-predicate");
  if (isa<DropNode>(Pred))
    return skip();
  if (isa<SkipNode>(Pred))
    return drop();
  if (const auto *Inner = dyn_cast<NotNode>(Pred))
    return Inner->operand(); // ¬¬t = t
  return make<NotNode>(Pred);
}

const Node *Context::seq(const Node *Lhs, const Node *Rhs) {
  // p ; drop ≡ drop ; p ≡ drop and skip is the unit of ';'. Both hold in
  // the input-output semantics (Fig 3), so collapsing here is sound.
  if (isa<DropNode>(Lhs) || isa<SkipNode>(Rhs))
    return Lhs;
  if (isa<DropNode>(Rhs) || isa<SkipNode>(Lhs))
    return Rhs;
  return make<SeqNode>(Lhs, Rhs);
}

const Node *Context::unite(const Node *Lhs, const Node *Rhs) {
  // drop is the unit of '&' on programs and predicates alike.
  if (isa<DropNode>(Lhs))
    return Rhs;
  if (isa<DropNode>(Rhs))
    return Lhs;
  // For predicates, skip absorbs (t & true = true). Not true for programs.
  if (Lhs->isPredicate() && Rhs->isPredicate() &&
      (isa<SkipNode>(Lhs) || isa<SkipNode>(Rhs)))
    return skip();
  return make<UnionNode>(Lhs, Rhs);
}

const Node *Context::choice(const Rational &Probability, const Node *Lhs,
                            const Node *Rhs) {
  assert(Probability.isProbability() && "choice probability outside [0,1]");
  if (Probability.isOne() || Lhs == Rhs)
    return Lhs;
  if (Probability.isZero())
    return Rhs;
  return make<ChoiceNode>(Probability, Lhs, Rhs);
}

const Node *Context::star(const Node *Body) {
  // skip* = skip, drop* = skip (zero iterations yield the input).
  if (isa<SkipNode>(Body) || isa<DropNode>(Body))
    return skip();
  return make<StarNode>(Body);
}

const Node *Context::ite(const Node *Cond, const Node *Then,
                         const Node *Else) {
  assert(Cond->isPredicate() && "if-condition must be a predicate");
  if (isa<SkipNode>(Cond))
    return Then;
  if (isa<DropNode>(Cond))
    return Else;
  return make<IfThenElseNode>(Cond, Then, Else);
}

const Node *Context::whileLoop(const Node *Cond, const Node *Body) {
  assert(Cond->isPredicate() && "while-condition must be a predicate");
  if (isa<DropNode>(Cond))
    return skip(); // Zero iterations.
  return make<WhileNode>(Cond, Body);
}

const Node *Context::caseOf(std::vector<CaseNode::Branch> Branches,
                            const Node *Default) {
  for ([[maybe_unused]] const CaseNode::Branch &B : Branches)
    assert(B.first->isPredicate() && "case guard must be a predicate");
  if (Branches.empty())
    return Default;
  return make<CaseNode>(std::move(Branches), Default);
}

const Node *Context::seqAll(const std::vector<const Node *> &Programs) {
  const Node *Result = skip();
  for (const Node *P : Programs)
    Result = seq(Result, P);
  return Result;
}

const Node *Context::uniteAll(const std::vector<const Node *> &Programs) {
  const Node *Result = drop();
  for (const Node *P : Programs)
    Result = unite(Result, P);
  return Result;
}

const Node *
Context::choiceUniform(const std::vector<const Node *> &Programs) {
  assert(!Programs.empty() && "uniform choice over an empty list");
  // p1 ⊕_{1/n} (p2 ⊕_{1/(n-1)} (... pn)) gives each branch mass 1/n.
  const Node *Result = Programs.back();
  for (std::size_t I = Programs.size() - 1; I-- > 0;) {
    int64_t Remaining = static_cast<int64_t>(Programs.size() - I);
    Result = choice(Rational(1, Remaining), Programs[I], Result);
  }
  return Result;
}

const Node *Context::choiceWeighted(
    const std::vector<std::pair<const Node *, Rational>> &Cases) {
  assert(!Cases.empty() && "weighted choice over an empty list");
  Rational Total;
  for (const auto &[Program, Weight] : Cases) {
    assert(Weight.isProbability() && "negative or >1 weight");
    Total += Weight;
  }
  assert(Total.isOne() && "weighted choice must sum to one");

  // Right fold: p1 ⊕_{w1} (rest, renormalized to mass 1 - w1).
  const Node *Result = Cases.back().first;
  Rational Mass = Cases.back().second;
  for (std::size_t I = Cases.size() - 1; I-- > 0;) {
    const auto &[Program, Weight] = Cases[I];
    Mass += Weight;
    if (Mass.isZero())
      continue; // All-zero tail; keep current Result arbitrary.
    Result = choice(Weight / Mass, Program, Result);
  }
  return Result;
}

const Node *Context::local(FieldId Field, FieldValue Init, const Node *Body) {
  // var f := n in p ≜ f := n ; p ; f := 0 — the trailing write erases the
  // local field so it does not leak into the observable output (§3).
  return seq(assign(Field, Init), seq(Body, assign(Field, 0)));
}
