//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty printer producing the concrete `.pnk` surface syntax; output is
/// re-parseable by the parser (round-trip tested).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_AST_PRINTER_H
#define MCNK_AST_PRINTER_H

#include "ast/Node.h"
#include "packet/Field.h"

#include <string>

namespace mcnk {
namespace ast {

/// Renders \p N using field names from \p Fields. Grammar (loosest to
/// tightest): choice `+[r]`, union `&`, sequence `;`, prefix `!` / postfix
/// `*`, atoms (including brace-delimited `case { g -> p | ... }`).
/// if/while print with parenthesized sub-programs, and right-nested
/// `;`/`&` chains parenthesize their right operand, so parse(print(n)) is
/// structurally identical to n — the property the conformance suite
/// checks on 500 random programs.
std::string print(const Node *N, const FieldTable &Fields);

} // namespace ast
} // namespace mcnk

#endif // MCNK_AST_PRINTER_H
