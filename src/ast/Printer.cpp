//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty printer emitting the `.pnk` surface syntax with minimal
/// parenthesization; output round-trips through the parser.
///
//===----------------------------------------------------------------------===//

#include "ast/Printer.h"

#include "support/Casting.h"
#include "support/Error.h"

using namespace mcnk;
using namespace mcnk::ast;

namespace {

/// Binding strength of each operator context; a child prints parentheses
/// when its own level is looser than the context requires.
enum Level : int {
  LevelChoice = 0,
  LevelUnion = 1,
  LevelSeq = 2,
  LevelUnary = 3,
  LevelAtom = 4,
};

Level levelOf(const Node *N) {
  switch (N->kind()) {
  case NodeKind::Choice:
    return LevelChoice;
  case NodeKind::Union:
    return LevelUnion;
  case NodeKind::Seq:
    return LevelSeq;
  case NodeKind::Not:
  case NodeKind::Star:
    return LevelUnary;
  // if/while extend unboundedly to the right (dangling-else); force
  // parentheses anywhere but the top level. case is brace-delimited and
  // needs none.
  case NodeKind::IfThenElse:
  case NodeKind::While:
    return LevelChoice;
  default:
    return LevelAtom;
  }
}

void printInto(const Node *N, const FieldTable &Fields, int MinLevel,
               std::string &Out) {
  bool Parens = levelOf(N) < MinLevel;
  if (Parens)
    Out += "(";
  switch (N->kind()) {
  case NodeKind::Drop:
    Out += "drop";
    break;
  case NodeKind::Skip:
    Out += "skip";
    break;
  case NodeKind::Test: {
    const auto *T = cast<TestNode>(N);
    Out += Fields.name(T->field()) + "=" + std::to_string(T->value());
    break;
  }
  case NodeKind::Assign: {
    const auto *A = cast<AssignNode>(N);
    Out += Fields.name(A->field()) + ":=" + std::to_string(A->value());
    break;
  }
  case NodeKind::Not:
    Out += "!";
    printInto(cast<NotNode>(N)->operand(), Fields, LevelAtom, Out);
    break;
  case NodeKind::Seq: {
    // Right operand one level tighter: the parser is left-associative, so
    // a right-nested chain must parenthesize to round-trip structurally.
    const auto *S = cast<SeqNode>(N);
    printInto(S->lhs(), Fields, LevelSeq, Out);
    Out += " ; ";
    printInto(S->rhs(), Fields, LevelUnary, Out);
    break;
  }
  case NodeKind::Union: {
    const auto *U = cast<UnionNode>(N);
    printInto(U->lhs(), Fields, LevelUnion, Out);
    Out += " & ";
    printInto(U->rhs(), Fields, LevelSeq, Out);
    break;
  }
  case NodeKind::Choice: {
    const auto *C = cast<ChoiceNode>(N);
    // Left operand at one level tighter keeps the operator left-assoc.
    printInto(C->lhs(), Fields, LevelUnion, Out);
    Out += " +[" + C->probability().toString() + "] ";
    printInto(C->rhs(), Fields, LevelUnion, Out);
    break;
  }
  case NodeKind::Star:
    printInto(cast<StarNode>(N)->body(), Fields, LevelAtom, Out);
    Out += "*";
    break;
  case NodeKind::IfThenElse: {
    const auto *I = cast<IfThenElseNode>(N);
    Out += "if ";
    printInto(I->cond(), Fields, LevelUnion, Out);
    Out += " then ";
    printInto(I->thenBranch(), Fields, LevelSeq, Out);
    Out += " else ";
    printInto(I->elseBranch(), Fields, LevelSeq, Out);
    break;
  }
  case NodeKind::While: {
    const auto *W = cast<WhileNode>(N);
    Out += "while ";
    printInto(W->cond(), Fields, LevelUnion, Out);
    Out += " do ";
    printInto(W->body(), Fields, LevelSeq, Out);
    break;
  }
  case NodeKind::Case: {
    // Brace-delimited n-ary branching: guards at top level (they stop at
    // '->'), branch programs at seq level like if/while bodies.
    const auto *C = cast<CaseNode>(N);
    Out += "case { ";
    for (const auto &[Guard, Program] : C->branches()) {
      printInto(Guard, Fields, LevelChoice, Out);
      Out += " -> ";
      printInto(Program, Fields, LevelSeq, Out);
      Out += " | ";
    }
    Out += "else -> ";
    printInto(C->defaultBranch(), Fields, LevelSeq, Out);
    Out += " }";
    break;
  }
  }
  if (Parens)
    Out += ")";
}

} // namespace

std::string ast::print(const Node *N, const FieldTable &Fields) {
  std::string Out;
  printInto(N, Fields, LevelChoice, Out);
  return Out;
}
