//===----------------------------------------------------------------------===//
///
/// \file
/// Differential-oracle implementation. One crossCheckProgram call fans a
/// guarded program out to every engine and funnels the answers back
/// through exact-rational (or toleranced) comparisons; scenario checks
/// layer teleport verdicts, closed forms, hop statistics, and
/// LoopSolveStats sanity on top. Disagreement strings always embed the
/// case label (which embeds the seed), so any red run reproduces.
///
//===----------------------------------------------------------------------===//

#include "gen/Oracle.h"

#include "analysis/Verifier.h"
#include "ast/Deps.h"
#include "ast/Printer.h"
#include "ast/Simplify.h"
#include "ast/Slice.h"
#include "ast/Traversal.h"
#include "baseline/Exhaustive.h"
#include "fdd/CompileCache.h"
#include "fdd/Export.h"
#include "parser/Parser.h"
#include "prism/Checker.h"
#include "prism/Translate.h"
#include "semantics/SetSemantics.h"
#include "serve/Lint.h"
#include "serve/Server.h"
#include "support/Error.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <unordered_map>

using namespace mcnk;
using namespace mcnk::gen;
using ast::Context;
using ast::Node;

void OracleReport::merge(const OracleReport &Other) {
  NumCases += Other.NumCases;
  NumChecks += Other.NumChecks;
  Disagreements.insert(Disagreements.end(), Other.Disagreements.begin(),
                       Other.Disagreements.end());
}

std::string OracleReport::summary() const {
  return std::to_string(NumCases) + " cases, " +
         std::to_string(NumChecks) + " checks, " +
         std::to_string(Disagreements.size()) + " disagreements";
}

namespace {

std::string hexSeed(uint64_t Seed) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "0x%llx",
                static_cast<unsigned long long>(Seed));
  return Buffer;
}

std::string renderPacket(const Context &Ctx, const Packet &P) {
  std::string Out = "{";
  for (std::size_t F = 0; F < P.numFields(); ++F) {
    if (F)
      Out += ", ";
    Out += Ctx.fields().name(static_cast<FieldId>(F)) + "=" +
           std::to_string(P.get(static_cast<FieldId>(F)));
  }
  return Out + "}";
}

/// Bundles the report with the case label so every check is one line.
struct Checker {
  OracleReport &Report;
  const std::string &Label;

  void check(bool Ok, const std::string &Message) {
    ++Report.NumChecks;
    if (!Ok)
      Report.Disagreements.push_back(Label + ": " + Message);
  }
  void fail(const std::string &Message) {
    Report.Disagreements.push_back(Label + ": " + Message);
  }
};

/// Replays \p Ref with every modification to an out-of-cone field
/// stripped from the leaves — the observable part of the diagram under
/// the cone. Out-of-cone *tests* are kept whenever their projected
/// children still differ: a sound slice leaves no such test behind, so a
/// dependency the analysis missed fails the reference-equality check
/// instead of being projected away with it.
fdd::FddRef projectFdd(fdd::FddManager &M, fdd::FddRef Ref,
                       const std::vector<bool> &Relevant,
                       std::unordered_map<fdd::FddRef, fdd::FddRef> &Memo) {
  auto It = Memo.find(Ref);
  if (It != Memo.end())
    return It->second;
  fdd::FddRef Out;
  if (fdd::isLeafRef(Ref)) {
    std::vector<std::pair<fdd::Action, Rational>> Entries;
    for (const auto &[A, W] : M.leafDist(Ref).entries()) {
      fdd::Action Projected = A;
      if (!A.isDrop())
        for (const auto &[F, V] : A.mods())
          if (F < Relevant.size() && !Relevant[F])
            Projected = Projected.dropMod(F);
      Entries.emplace_back(std::move(Projected), W);
    }
    Out = M.leaf(fdd::ActionDist::fromEntries(std::move(Entries)));
  } else {
    const fdd::FddManager::InnerNode &N = M.innerNode(Ref);
    fdd::FddRef Hi = projectFdd(M, N.Hi, Relevant, Memo);
    fdd::FddRef Lo = projectFdd(M, N.Lo, Relevant, Memo);
    Out = M.inner(N.Field, N.Value, Hi, Lo); // Collapses when Hi == Lo.
  }
  Memo.emplace(Ref, Out);
  return Out;
}

/// Pr[F Done] of \p Program on \p In through the prismlite pipeline.
/// Returns false (with a disagreement already recorded) on any pipeline
/// error — a translation the checker rejects is itself a bug.
bool prismDelivery(Context &Ctx, const Node *Program, const Packet &In,
                   markov::SolverKind Solver, Checker &C, Rational &Out) {
  prism::Translation T = prism::translate(Ctx, Program, In);
  prism::Model Model;
  prism::GuardExpr Goal;
  std::string Error;
  if (!prism::parseModel(T.Source, Model, Error)) {
    C.fail("prism translation failed to parse: " + Error);
    return false;
  }
  if (!prism::parseGuard(T.DoneGuard, Model, Goal, Error)) {
    C.fail("prism done-guard failed to parse: " + Error);
    return false;
  }
  prism::CheckResult CR;
  if (!prism::checkReachability(Model, Goal, Solver, CR, Error)) {
    C.fail("prismlite rejected the translated model: " + Error);
    return false;
  }
  Out = CR.Probability;
  return true;
}

} // namespace

OracleReport gen::crossCheckProgram(Context &Ctx, const Node *Program,
                                    const std::vector<Packet> &Inputs,
                                    const OracleOptions &O,
                                    const std::string &Label,
                                    analysis::Verifier *ExactVerifier) {
  OracleReport R;
  R.NumCases = 1;
  Checker C{R, Label};

  // --- Compile under every solver, serial and parallel ------------------
  std::unique_ptr<analysis::Verifier> OwnedExact;
  if (!ExactVerifier) {
    OwnedExact =
        std::make_unique<analysis::Verifier>(markov::SolverKind::Exact);
    ExactVerifier = OwnedExact.get();
  }
  analysis::Verifier &VExact = *ExactVerifier;
  analysis::Verifier VDirect(markov::SolverKind::Direct);
  analysis::Verifier VIter(markov::SolverKind::Iterative);
  fdd::FddRef E = VExact.compile(Program);
  fdd::FddRef D = VDirect.compile(Program);
  fdd::FddRef I = VIter.compile(Program);
  if (O.CheckParallel) {
    C.check(VExact.compile(Program, true, O.ParallelThreads) == E,
            "serial vs parallel compilation differ (exact solver)");
    C.check(VDirect.compile(Program, true, O.ParallelThreads) == D,
            "serial vs parallel compilation differ (direct solver)");
    C.check(VIter.compile(Program, true, O.ParallelThreads) == I,
            "serial vs parallel compilation differ (iterative solver)");
  }

  // --- Per-input delivery / distribution agreement ----------------------
  for (std::size_t Idx = 0; Idx < Inputs.size(); ++Idx) {
    const Packet &In = Inputs[Idx];
    const std::string Where = " on input " + renderPacket(Ctx, In);
    Rational DelExact = VExact.deliveryProbability(E, In);
    double Expected = DelExact.toDouble();

    double DelDirect = VDirect.deliveryProbability(D, In).toDouble();
    C.check(std::fabs(DelDirect - Expected) <= O.Tolerance,
            "direct(float) delivery " + std::to_string(DelDirect) +
                " != exact " + DelExact.toString() + Where);
    double DelIter = VIter.deliveryProbability(I, In).toDouble();
    C.check(std::fabs(DelIter - Expected) <= O.Tolerance,
            "iterative delivery " + std::to_string(DelIter) + " != exact " +
                DelExact.toString() + Where);

    if (O.CheckBaseline) {
      baseline::InferenceOptions BO;
      BO.LoopBound = O.BaselineLoopBound;
      BO.PathBudget = O.BaselinePathBudget;
      baseline::InferenceResult BR = baseline::infer(Program, In, BO);
      if (!BR.BudgetExhausted) {
        if (BR.Residual.isZero()) {
          // Complete enumeration: the whole output distribution must
          // match the native exact backend, point for point.
          auto Out = VExact.manager().outputDistribution(E, In);
          C.check(Out.Outputs == BR.Outputs && Out.Dropped == BR.Dropped,
                  "exhaustive baseline output distribution != native" +
                      Where);
        } else {
          Rational Gap = DelExact - BR.deliveredMass();
          C.check(!Gap.isNegative() && Gap <= BR.Residual,
                  "exhaustive baseline delivery outside the residual "
                  "envelope" +
                      Where);
        }
      }
    }

    if (O.CheckPrism && Idx < O.MaxPrismInputs) {
      Rational PrismExact;
      if (prismDelivery(Ctx, Program, In, markov::SolverKind::Exact, C,
                        PrismExact))
        C.check(PrismExact == DelExact,
                "prismlite exact delivery " + PrismExact.toString() +
                    " != native " + DelExact.toString() + Where);
      Rational PrismIter;
      if (prismDelivery(Ctx, Program, In, markov::SolverKind::Iterative, C,
                        PrismIter))
        C.check(std::fabs(PrismIter.toDouble() - Expected) <= O.Tolerance,
                "prismlite iterative delivery != native" + Where);
    }
  }

  // --- Syntax and portable-FDD round-trips ------------------------------
  if (O.CheckRoundTrips) {
    std::string Printed = ast::print(Program, Ctx.fields());
    parser::ParseResult PR = parser::parseProgram(Printed, Ctx);
    if (!PR.ok()) {
      C.fail("printed program failed to reparse (" +
             PR.Diagnostics.front().render() + "): " + Printed);
    } else {
      C.check(ast::isGuarded(PR.Program),
              "reparsed program left the guarded fragment");
      C.check(ast::structurallyEqual(Program, PR.Program),
              "print -> parse round-trip is not structurally identical: " +
                  Printed);
      C.check(VExact.compile(PR.Program) == E,
              "reparsed program compiles to a different diagram");
    }

    fdd::PortableFdd Portable = fdd::exportFdd(VExact.manager(), E);
    C.check(fdd::importFdd(VExact.manager(), Portable) == E,
            "same-manager export -> import is not the identity");
    fdd::FddManager Fresh(markov::SolverKind::Exact);
    fdd::FddRef Imported = fdd::importFdd(Fresh, Portable);
    fdd::PortableFdd Reexported = fdd::exportFdd(Fresh, Imported);
    C.check(fdd::importFdd(VExact.manager(), Reexported) == E,
            "cross-manager export -> import -> export round-trip lost "
            "reference equality");
  }

  // --- Verified-simplifier cross-checks (ARCHITECTURE S15) --------------
  // The simplifier only applies rewrites the abstract interpretation
  // proves pointwise semantics-preserving over the full input space, and
  // FDD compilation is canonical — so the simplified program must compile
  // to the reference-identical exact diagram, on every conformance
  // scenario and fuzz case the oracle ever sees. Idempotence and the
  // CompileOptions.Simplify hook are held to the same standard.
  if (O.CheckSimplify) {
    const Node *Simplified = ast::simplify(Ctx, Program);
    C.check(VExact.compile(Simplified) == E,
            "simplified program compiles to a different diagram than the "
            "original");
    const Node *Again = ast::simplify(Ctx, Simplified);
    C.check(Again == Simplified ||
                ast::structurallyEqual(Again, Simplified),
            "simplify is not idempotent");
    analysis::Verifier VS(markov::SolverKind::Exact);
    VS.setSimplify(&Ctx);
    fdd::FddRef ViaHook = VS.compile(Program);
    fdd::PortableFdd Ref = fdd::exportFdd(VExact.manager(), E);
    C.check(fdd::importFdd(VS.manager(), Ref) == ViaHook,
            "CompileOptions.Simplify compile is not reference-equal to "
            "the plain exact engine");
  }

  // --- Query-directed slicing cross-checks (ARCHITECTURE S17) -----------
  // Slicing for the delivery observation deletes assignments to fields
  // outside the delivery cone of influence. Its soundness contract is
  // checked in both directions: the sliced diagram must equal the
  // unsliced one projected onto the cone (reference equality, so a missed
  // dependency cannot hide), and every engine configuration must answer
  // delivery queries identically on the sliced program.
  if (O.CheckSlice) {
    ast::SliceResult SR =
        ast::slice(Ctx, Program, ast::ObservationSet::delivery());
    C.check(ast::slice(Ctx, SR.Program, ast::ObservationSet::delivery())
                .Program == SR.Program,
            "slice is not idempotent");

    analysis::Verifier VS(markov::SolverKind::Exact);
    VS.setSlice(&Ctx, ast::ObservationSet::delivery());
    fdd::FddRef SE = VS.compile(Program);
    fdd::PortableFdd Unsliced = fdd::exportFdd(VExact.manager(), E);
    std::unordered_map<fdd::FddRef, fdd::FddRef> Memo;
    C.check(projectFdd(VS.manager(),
                       fdd::importFdd(VS.manager(), Unsliced), SR.Relevant,
                       Memo) == SE,
            "delivery-sliced compile is not reference-equal to the "
            "cone projection of the unsliced diagram");
    for (const Packet &In : Inputs)
      C.check(VS.deliveryProbability(SE, In).toString() ==
                  VExact.deliveryProbability(E, In).toString(),
              "sliced delivery != unsliced delivery on input " +
                  renderPacket(Ctx, In));
    if (O.CheckParallel)
      C.check(VS.compile(Program, true, O.ParallelThreads) == SE,
              "sliced parallel compile differs from the sliced serial "
              "compile");

    // The all-fields observation (what equivalence/refinement queries
    // observe) must make slicing a verified no-op on the diagram.
    analysis::Verifier VA(markov::SolverKind::Exact);
    VA.setSlice(&Ctx, ast::ObservationSet::all());
    C.check(fdd::importFdd(VA.manager(), Unsliced) == VA.compile(Program),
            "all-fields slice changed the compiled diagram");

    fdd::PortableFdd Sliced = fdd::exportFdd(VS.manager(), SE);
    if (O.CheckBlocked) {
      analysis::Verifier VB(markov::SolverKind::Exact);
      markov::SolverStructure SS;
      SS.Blocked = true;
      SS.Ordering = linalg::OrderingKind::ReverseCuthillMcKee;
      VB.setSolverStructure(SS);
      VB.setSlice(&Ctx, ast::ObservationSet::delivery());
      C.check(fdd::importFdd(VB.manager(), Sliced) == VB.compile(Program),
              "sliced blocked compile is not reference-equal to the "
              "sliced monolithic compile");
    }
    if (O.CheckModular) {
      analysis::Verifier VM(markov::SolverKind::ModularExact);
      VM.setSlice(&Ctx, ast::ObservationSet::delivery());
      C.check(fdd::importFdd(VM.manager(), Sliced) == VM.compile(Program),
              "sliced modular compile is not reference-equal to the "
              "sliced Rational exact compile");
    }
    if (O.CheckCompileCache) {
      std::unique_ptr<fdd::CompileCache> Local;
      fdd::CompileCache *Cache = O.Cache;
      if (!Cache) {
        Local = std::make_unique<fdd::CompileCache>();
        Cache = Local.get();
      }
      analysis::Verifier VC(markov::SolverKind::Exact);
      VC.setCompileCache(Cache);
      VC.setSlice(&Ctx, ast::ObservationSet::delivery());
      fdd::FddRef Cold = VC.compile(Program);
      C.check(fdd::importFdd(VC.manager(), Sliced) == Cold,
              "sliced cached cold compile is not reference-equal to the "
              "uncached sliced compile");
      C.check(VC.compile(Program) == Cold,
              "sliced cache-hit recompile differs from the sliced cold "
              "compile");
    }
  }

  // --- Block-structured solver cross-checks (ARCHITECTURE S13) ----------
  // The exact blocked solve computes the unique rational solution of the
  // same system as the monolithic one, so the compiled diagrams must be
  // reference-equal — serial and with block tasks on a worker pool. The
  // Direct(float) blocked solve only agrees up to elimination-order ulps,
  // so it is held to the float tolerance like any other float engine.
  // Shared by the blocked and modular sections: per-block metrics must sum
  // (or, for ReconstructionBits, max) to the run's totals.
  auto CheckStatSums = [&C](const fdd::LoopSolveStats &LS,
                            const std::string &Mode) {
    std::size_t States = 0, QEntries = 0, Ops = 0, Fill = 0, Largest = 0;
    for (const markov::BlockMetrics &B : LS.Blocks) {
      States += B.NumStates;
      QEntries += B.NumQEntries;
      Ops += B.EliminationOps;
      Fill += B.FillIn;
      Largest = std::max(Largest, B.NumStates);
    }
    C.check(LS.Blocks.size() == LS.NumBlocks && States == LS.NumSolved &&
                QEntries == LS.NumSolvedQ && Ops == LS.EliminationOps &&
                Fill == LS.FillIn && Largest == LS.MaxBlockSize,
            "per-block solver stats do not sum to the totals (" + Mode +
                ")");
  };

  if (O.CheckBlocked) {
    fdd::PortableFdd Mono = fdd::exportFdd(VExact.manager(), E);
    for (bool Parallel : {false, true}) {
      if (Parallel && !O.CheckParallel)
        continue;
      analysis::Verifier VB(markov::SolverKind::Exact);
      markov::SolverStructure SS;
      SS.Blocked = true;
      SS.Ordering = linalg::OrderingKind::ReverseCuthillMcKee;
      if (Parallel)
        SS.Pool = &VB.compilePool(O.ParallelThreads);
      VB.setSolverStructure(SS);
      fdd::FddRef B = VB.compile(Program);
      const std::string Mode =
          Parallel ? "exact blocked, parallel" : "exact blocked, serial";
      C.check(fdd::importFdd(VB.manager(), Mono) == B,
              Mode + " compile is not reference-equal to the monolithic "
                     "exact engine");
      CheckStatSums(VB.manager().lastLoopStats(), Mode);
    }

    analysis::Verifier VBD(markov::SolverKind::Direct);
    markov::SolverStructure SS;
    SS.Blocked = true;
    SS.Ordering = linalg::OrderingKind::MinimumDegree;
    VBD.setSolverStructure(SS);
    fdd::FddRef BD = VBD.compile(Program);
    CheckStatSums(VBD.manager().lastLoopStats(), "direct blocked");
    for (const Packet &In : Inputs) {
      double Del = VBD.deliveryProbability(BD, In).toDouble();
      double Expected = VExact.deliveryProbability(E, In).toDouble();
      C.check(std::fabs(Del - Expected) <= O.Tolerance,
              "direct blocked delivery " + std::to_string(Del) +
                  " != exact " + std::to_string(Expected) + " on input " +
                  renderPacket(Ctx, In));
    }
  }

  // --- Modular exact solver cross-checks (ARCHITECTURE S14) -------------
  // The multi-prime engine recovers the same unique rational solution as
  // Rational elimination (every reconstruction is re-verified against
  // fresh primes, with a Rational fallback when the prime budget runs
  // out), so it is held to strict reference equality in EVERY
  // configuration: serial, parallel-case, blocked serial/pooled (block
  // tasks and per-prime tasks composing on one engine), and cache-backed
  // cold and hit paths.
  if (O.CheckModular) {
    fdd::PortableFdd Mono = fdd::exportFdd(VExact.manager(), E);

    analysis::Verifier VM(markov::SolverKind::ModularExact);
    fdd::FddRef M = VM.compile(Program);
    C.check(fdd::importFdd(VM.manager(), Mono) == M,
            "modular serial compile is not reference-equal to the "
            "Rational exact engine");
    if (O.CheckParallel)
      C.check(VM.compile(Program, true, O.ParallelThreads) == M,
              "modular parallel compile differs from the serial modular "
              "compile");

    for (bool Parallel : {false, true}) {
      if (Parallel && !O.CheckParallel)
        continue;
      analysis::Verifier VMB(markov::SolverKind::ModularExact);
      markov::SolverStructure SS;
      SS.Blocked = true;
      SS.Ordering = linalg::OrderingKind::ReverseCuthillMcKee;
      if (Parallel)
        SS.Pool = &VMB.compilePool(O.ParallelThreads);
      VMB.setSolverStructure(SS);
      fdd::FddRef B = VMB.compile(Program);
      const std::string Mode =
          Parallel ? "modular blocked, parallel" : "modular blocked, serial";
      C.check(fdd::importFdd(VMB.manager(), Mono) == B,
              Mode + " compile is not reference-equal to the Rational "
                     "exact engine");
      CheckStatSums(VMB.manager().lastLoopStats(), Mode);
    }

    {
      std::unique_ptr<fdd::CompileCache> Local;
      fdd::CompileCache *Cache = O.Cache;
      if (!Cache) {
        Local = std::make_unique<fdd::CompileCache>();
        Cache = Local.get();
      }
      analysis::Verifier VMC(markov::SolverKind::ModularExact);
      VMC.setCompileCache(Cache);
      fdd::FddRef Cold = VMC.compile(Program);
      C.check(fdd::importFdd(VMC.manager(), Mono) == Cold,
              "modular cached cold compile is not reference-equal to the "
              "Rational exact engine");
      C.check(VMC.compile(Program) == Cold,
              "modular cache-hit recompile differs from the cold cached "
              "compile");
    }
  }

  // --- Compile-cache and GC cross-checks (ARCHITECTURE S12) -------------
  // A cache-backed verifier runs the same program cold, on the hit path,
  // and (when parallel checks are on) through the worker pool; then its
  // manager is garbage-collected down to the one live root. Every stage
  // must stay reference-equal to the uncached exact engine, and the
  // post-GC diagram must answer queries identically.
  if (O.CheckCompileCache) {
    std::unique_ptr<fdd::CompileCache> Local;
    fdd::CompileCache *Cache = O.Cache;
    if (!Cache) {
      Local = std::make_unique<fdd::CompileCache>();
      Cache = Local.get();
    }
    analysis::Verifier VC(markov::SolverKind::Exact);
    VC.setCompileCache(Cache);
    fdd::FddRef Cold = VC.compile(Program);
    C.check(VC.compile(Program) == Cold,
            "cache-hit recompile is not reference-equal to the cold "
            "cached compile");
    if (O.CheckParallel)
      C.check(VC.compile(Program, true, O.ParallelThreads) == Cold,
              "parallel compile with the cache differs from the serial "
              "cached compile");
    fdd::PortableFdd Uncached = fdd::exportFdd(VExact.manager(), E);
    C.check(fdd::importFdd(VC.manager(), Uncached) == Cold,
            "cached compile is not reference-equal to the uncached "
            "engine's diagram");

    std::size_t InnerBefore = VC.manager().numInnerNodes();
    fdd::GcStats GS = VC.manager().gc({&Cold});
    C.check(VC.manager().numInnerNodes() ==
                    GS.LiveInners &&
                GS.LiveInners <= InnerBefore,
            "gc did not compact the inner-node pool consistently");
    C.check(fdd::importFdd(VC.manager(), Uncached) == Cold,
            "gc broke reference identity of the live root");
    for (std::size_t Idx = 0;
         Idx < Inputs.size() && Idx < O.MaxCacheCheckInputs; ++Idx) {
      const Packet &In = Inputs[Idx];
      auto Want = VExact.manager().outputDistribution(E, In);
      auto Got = VC.manager().outputDistribution(Cold, In);
      C.check(Want.Outputs == Got.Outputs && Want.Dropped == Got.Dropped,
              "post-gc output distribution differs from the uncached "
              "engine on input " +
                  renderPacket(Ctx, In));
    }
  }
  return R;
}

namespace {

/// One exchange against an in-process daemon session. Returns false (with
/// a disagreement recorded) unless the response line parses back and
/// carries ok:true — the conformance check treats a served error exactly
/// like a wrong answer.
bool serveAsk(serve::Session &Sess, const serve::Json &Request,
              serve::Json &Response, Checker &C) {
  std::string Line = Sess.handleLine(Request.dump());
  std::string Error;
  if (!serve::parseJson(Line, Response, &Error)) {
    C.fail("serve: response did not parse: " + Error);
    return false;
  }
  const serve::Json *Ok = Response.find("ok");
  if (!Ok || !Ok->isBool() || !Ok->asBool()) {
    const serve::Json *Err = Response.find("error");
    C.fail("serve: request rejected: " +
           (Err && Err->isString() ? Err->asString() : Line));
    return false;
  }
  return true;
}

const std::string *serveString(const serve::Json &Value,
                               const std::string &Key) {
  const serve::Json *V = Value.find(Key);
  return V && V->isString() ? &V->asString() : nullptr;
}

/// The S16 serving-layer conformance check: an in-process Service +
/// Session must answer the scenario's questions about the *printed*
/// program with exactly the inline verifier's rationals. toString()
/// equality is exact equality — rationals are always canonical.
void serveCheckScenario(Context &Ctx, const Scenario &S,
                        analysis::Verifier &V, fdd::FddRef P, Checker &C) {
  serve::Service::Options SO; // Serial, no pool, no store.
  SO.Threads = 1;
  std::string Error;
  std::unique_ptr<serve::Service> Svc = serve::Service::create(SO, &Error);
  if (!Svc) {
    C.fail("serve: service creation failed: " + Error);
    return;
  }
  serve::Session Sess(*Svc);
  const std::string Printed = ast::print(S.Program, Ctx.fields());

  // Ask the daemon which fields the printed program mentions: inputs
  // travel by field NAME and are restricted to those (a field the program
  // never tests or sets cannot influence any answer, and the served side
  // rejects names it has never interned).
  serve::Json ParseReq = serve::Json::object();
  ParseReq.set("verb", serve::Json::string("parse"));
  ParseReq.set("program", serve::Json::string(Printed));
  serve::Json ParseResp;
  if (!serveAsk(Sess, ParseReq, ParseResp, C))
    return;
  std::vector<std::string> Known;
  if (const serve::Json *Fields = ParseResp.find("fields"))
    for (const serve::Json &F : Fields->elements())
      if (F.isString())
        Known.push_back(F.asString());

  serve::Json Inputs = serve::Json::array();
  for (const Packet &In : S.Inputs) {
    serve::Json Obj = serve::Json::object();
    for (const std::string &Name : Known) {
      FieldId Id = Ctx.fields().lookup(Name);
      if (Id != FieldTable::NotFound && Id < In.numFields())
        Obj.set(Name, serve::Json::integer(In.get(Id)));
    }
    Inputs.push(std::move(Obj));
  }

  // Delivery, batched over every scenario input.
  serve::Json DelReq = serve::Json::object();
  DelReq.set("verb", serve::Json::string("query"));
  DelReq.set("program", serve::Json::string(Printed));
  DelReq.set("query", serve::Json::string("delivery"));
  DelReq.set("inputs", Inputs);
  serve::Json DelResp;
  if (serveAsk(Sess, DelReq, DelResp, C)) {
    const serve::Json *Results = DelResp.find("results");
    if (!Results || !Results->isArray() ||
        Results->elements().size() != S.Inputs.size()) {
      C.fail("serve: delivery results missing or wrong length");
    } else {
      for (std::size_t Idx = 0; Idx < S.Inputs.size(); ++Idx) {
        const serve::Json &Got = Results->elements()[Idx];
        Rational Want = V.deliveryProbability(P, S.Inputs[Idx]);
        C.check(Got.isString() && Got.asString() == Want.toString(),
                "served delivery != inline verifier on input " +
                    renderPacket(Ctx, S.Inputs[Idx]));
      }
      const std::string *Avg = serveString(DelResp, "average");
      C.check(Avg && *Avg == V.averageDeliveryProbability(P, S.Inputs)
                                 .toString(),
              "served average delivery != inline verifier");
    }
  }

  // Hop statistics: delivered mass plus the whole histogram, exactly.
  if (S.HopField != FieldTable::NotFound) {
    serve::Json HopReq = serve::Json::object();
    HopReq.set("verb", serve::Json::string("query"));
    HopReq.set("program", serve::Json::string(Printed));
    HopReq.set("query", serve::Json::string("hop-stats"));
    HopReq.set("inputs", Inputs);
    HopReq.set("hopField",
               serve::Json::string(Ctx.fields().name(S.HopField)));
    serve::Json HopResp;
    if (serveAsk(Sess, HopReq, HopResp, C)) {
      analysis::HopStats Want = V.hopStats(P, S.Inputs, S.HopField);
      const std::string *Delivered = serveString(HopResp, "delivered");
      C.check(Delivered && *Delivered == Want.Delivered.toString(),
              "served hop-stats delivered mass != inline verifier");
      const serve::Json *Hist = HopResp.find("histogram");
      bool HistOk = Hist && Hist->isObject() &&
                    Hist->members().size() == Want.Histogram.size();
      if (HistOk)
        for (const auto &[Hops, Mass] : Want.Histogram) {
          const std::string *Got =
              serveString(*Hist, std::to_string(Hops));
          if (!Got || *Got != Mass.toString())
            HistOk = false;
        }
      C.check(HistOk, "served hop histogram != inline verifier");
    }
  }

  // The lint verb must agree entry-for-entry with the shared pipeline
  // behind `mcnk_cli lint --json` (serve/Lint.h) on the printed program.
  {
    serve::Json LintReq = serve::Json::object();
    LintReq.set("verb", serve::Json::string("lint"));
    LintReq.set("program", serve::Json::string(Printed));
    serve::Json LintResp;
    if (serveAsk(Sess, LintReq, LintResp, C)) {
      ast::Context LCtx;
      parser::ParseResult LR = parser::parseProgram(Printed, LCtx);
      std::vector<serve::LintEntry> Want;
      if (LR.ok())
        Want = serve::lintProgram(LCtx, LR.Program, LR.Warnings);
      const serve::Json *Fs = LintResp.find("findings");
      bool Match = LR.ok() && Fs && Fs->isArray() &&
                   Fs->elements().size() == Want.size();
      if (Match)
        for (std::size_t Idx = 0; Idx < Want.size(); ++Idx)
          if (Fs->elements()[Idx].dump() !=
              serve::lintEntryJson("<program>", Want[Idx]).dump())
            Match = false;
      C.check(Match, "served lint findings != shared lint pipeline");
    }
  }

  // Teleport verdicts through the self-contained two-program query path.
  if (S.Teleport) {
    const std::string PrintedSpec = ast::print(S.Teleport, Ctx.fields());
    fdd::FddRef T = V.compile(S.Teleport);
    for (const char *Query : {"equivalent", "refines"}) {
      serve::Json CmpReq = serve::Json::object();
      CmpReq.set("verb", serve::Json::string("query"));
      CmpReq.set("program", serve::Json::string(Printed));
      CmpReq.set("program2", serve::Json::string(PrintedSpec));
      CmpReq.set("query", serve::Json::string(Query));
      serve::Json CmpResp;
      if (!serveAsk(Sess, CmpReq, CmpResp, C))
        continue;
      bool Want = std::string(Query) == "equivalent" ? V.equivalent(P, T)
                                                     : V.refines(P, T);
      const serve::Json *Holds = CmpResp.find("holds");
      C.check(Holds && Holds->isBool() && Holds->asBool() == Want,
              std::string("served ") + Query + " verdict != inline "
                                               "verifier");
    }
  }
}

} // namespace

OracleReport gen::crossCheckScenario(Context &Ctx, const Scenario &S,
                                     const OracleOptions &Options) {
  OracleOptions O = Options;
  O.CheckPrism = O.CheckPrism && S.CheckPrism;
  O.CheckBaseline = O.CheckBaseline && S.CheckBaseline;
  O.BaselineLoopBound = S.BaselineLoopBound;

  // One exact verifier serves both the per-engine cross-checks and the
  // scenario-level queries below (the second compile is a cache hit, and
  // lastLoopStats still describes this model's loop).
  analysis::Verifier V(markov::SolverKind::Exact);
  OracleReport R =
      crossCheckProgram(Ctx, S.Program, S.Inputs, O, S.Name, &V);
  Checker C{R, S.Name};

  fdd::FddRef P = V.compile(S.Program);

  // Closed-form delivery (per input).
  if (S.HasClosedForm)
    for (const Packet &In : S.Inputs) {
      Rational Del = V.deliveryProbability(P, In);
      C.check(Del == S.ClosedFormDelivery,
              "delivery " + Del.toString() + " != closed form " +
                  S.ClosedFormDelivery.toString() + " on input " +
                  renderPacket(Ctx, In));
    }

  // Teleport verdicts: the model always refines its specification, and is
  // equivalent exactly when it delivers with probability one everywhere.
  if (S.Teleport) {
    fdd::FddRef T = V.compile(S.Teleport);
    C.check(V.refines(P, T), "model does not refine its teleport spec");
    bool FullDelivery = true;
    for (const Packet &In : S.Inputs)
      if (!V.deliveryProbability(P, In).isOne())
        FullDelivery = false;
    C.check(V.equivalent(P, T) == FullDelivery,
            std::string("teleport equivalence verdict inconsistent with ") +
                (FullDelivery ? "full" : "lossy") + " delivery");
  }

  // Hop statistics: internal consistency plus an exact cross-check of the
  // whole histogram against the exhaustive baseline.
  if (S.HopField != FieldTable::NotFound) {
    analysis::HopStats HS = V.hopStats(P, S.Inputs, S.HopField);
    Rational Avg = V.averageDeliveryProbability(P, S.Inputs);
    C.check(HS.Delivered == Avg,
            "hop-stats delivered mass != average delivery probability");
    Rational HistTotal;
    unsigned MaxHop = 0;
    for (const auto &[Hop, Mass] : HS.Histogram) {
      HistTotal += Mass;
      MaxHop = std::max(MaxHop, Hop);
    }
    C.check(HistTotal == HS.Delivered,
            "hop histogram mass != delivered mass");
    C.check(HS.cumulative(MaxHop) == HS.Delivered,
            "cumulative(max hop) != delivered mass");

    if (O.CheckBaseline) {
      std::map<unsigned, Rational> Reference;
      bool Complete = true;
      for (const Packet &In : S.Inputs) {
        baseline::InferenceOptions BO;
        BO.LoopBound = O.BaselineLoopBound;
        BO.PathBudget = O.BaselinePathBudget;
        baseline::InferenceResult BR = baseline::infer(S.Program, In, BO);
        if (BR.BudgetExhausted || !BR.Residual.isZero()) {
          Complete = false;
          break;
        }
        for (const auto &[Pkt, W] : BR.Outputs)
          Reference[Pkt.get(S.HopField)] += W;
      }
      if (Complete) {
        Rational Split(1, static_cast<int64_t>(S.Inputs.size()));
        for (auto &[Hop, Mass] : Reference)
          Mass *= Split;
        C.check(Reference == HS.Histogram,
                "hop histogram != exhaustive-baseline histogram");
      }
    }
  }

  // Loop-solver statistics must describe a well-formed absorbing chain.
  if (S.LoopBearing) {
    const fdd::LoopSolveStats &LS = V.manager().lastLoopStats();
    C.check(LS.NumStates > 0 && LS.NumTransient > 0,
            "loop-bearing model solved no loop (stats empty)");
    C.check(LS.NumTransient <= LS.NumStates,
            "more transient classes than symbolic states");
    C.check(LS.NumQEntries <= LS.NumTransient * LS.NumTransient,
            "Q has more entries than a dense matrix");
    bool AnyDelivery = false;
    for (const Packet &In : S.Inputs)
      if (!V.deliveryProbability(P, In).isZero())
        AnyDelivery = true;
    if (AnyDelivery)
      C.check(LS.NumAbsorbing >= 1,
              "delivery is positive but the chain has no absorbing class");
  }

  // Scenario-level slicing agreement (docs/ARCHITECTURE.md S17): the
  // sliced diagrams must answer the scenario's own query classes exactly —
  // average delivery under the delivery observation, and the full hop
  // histogram under the counter-field observation (which must keep the
  // counter's writes while still shedding unrelated state).
  if (O.CheckSlice) {
    analysis::Verifier VS(markov::SolverKind::Exact);
    VS.setSlice(&Ctx, ast::ObservationSet::delivery());
    fdd::FddRef SP = VS.compile(S.Program);
    C.check(VS.averageDeliveryProbability(SP, S.Inputs).toString() ==
                V.averageDeliveryProbability(P, S.Inputs).toString(),
            "sliced average delivery != unsliced average delivery");
    if (S.HopField != FieldTable::NotFound) {
      analysis::Verifier VH(markov::SolverKind::Exact);
      VH.setSlice(&Ctx, ast::ObservationSet::fields({S.HopField}));
      fdd::FddRef HP = VH.compile(S.Program);
      analysis::HopStats Want = V.hopStats(P, S.Inputs, S.HopField);
      analysis::HopStats Got = VH.hopStats(HP, S.Inputs, S.HopField);
      C.check(Got.Delivered == Want.Delivered &&
                  Got.Histogram == Want.Histogram,
              "hop-field-sliced hop statistics != unsliced");
    }
  }

  // Serving-layer conformance (docs/ARCHITECTURE.md S16).
  if (O.CheckServe)
    serveCheckScenario(Ctx, S, V, P, C);

  return R;
}

namespace {

/// Set-semantics verdict comparison on a tiny program pair: the verifier's
/// equivalence/refinement decisions must match pointwise singleton
/// evaluation under the reference semantics (with one fresh value per
/// field beyond the generator's range, exercising the wildcard classes).
void verdictCase(uint64_t Seed, const OracleOptions &O, OracleReport &R) {
  Context Ctx;
  GenOptions Tiny;
  Tiny.NumFields = 2;
  Tiny.NumValues = 2;
  Tiny.MaxDepth = 2;
  Prng Rng(Seed);
  const Node *P = generateProgram(Ctx, Rng, Tiny);
  const Node *Q = generateProgram(Ctx, Rng, Tiny);
  for (unsigned F = 0; F < Tiny.NumFields; ++F)
    Ctx.field("f" + std::to_string(F));

  const std::string Label = "verdict seed=" + hexSeed(Seed);
  Checker C{R, Label};
  ++R.NumCases;

  PacketDomain Domain({Tiny.NumValues + 1, Tiny.NumValues + 1});
  semantics::SetSemantics Sem(Ctx, Domain);
  bool RefEquivalent = true;
  bool RefRefines = true;
  for (std::size_t PIdx = 0; PIdx < Domain.numPackets(); ++PIdx) {
    semantics::PacketSet In = Sem.singleton(Domain.packet(PIdx));
    semantics::SetDist DistP = Sem.eval(P, In);
    semantics::SetDist DistQ = Sem.eval(Q, In);
    if (DistP != DistQ)
      RefEquivalent = false;
    for (const auto &[Set, W] : DistP) {
      if (Set == 0)
        continue; // Drop mass may shrink under refinement.
      auto It = DistQ.find(Set);
      Rational QMass = It == DistQ.end() ? Rational() : It->second;
      if (W > QMass)
        RefRefines = false;
    }
  }

  analysis::Verifier V(markov::SolverKind::Exact);
  fdd::FddRef FP = V.compile(P);
  fdd::FddRef FQ = V.compile(Q);
  C.check(V.equivalent(FP, FQ) == RefEquivalent,
          std::string("equivalence verdict ") +
              (RefEquivalent ? "false" : "true") +
              " contradicts set semantics; p = " +
              ast::print(P, Ctx.fields()) + "; q = " +
              ast::print(Q, Ctx.fields()));
  C.check(V.refines(FP, FQ) == RefRefines,
          std::string("refinement verdict ") +
              (RefRefines ? "false" : "true") +
              " contradicts set semantics; p = " +
              ast::print(P, Ctx.fields()) + "; q = " +
              ast::print(Q, Ctx.fields()));
  (void)O;
}

} // namespace

OracleReport gen::fuzzPrograms(uint64_t Seed, const FuzzOptions &Fuzz,
                               const OracleOptions &Options) {
  OracleReport R;
  // One compile cache spans the whole run (unless the caller supplied a
  // shared one), so later cases exercise genuine cross-case hits.
  OracleOptions O = Options;
  std::unique_ptr<fdd::CompileCache> RunCache;
  if (O.CheckCompileCache && !O.Cache) {
    RunCache = std::make_unique<fdd::CompileCache>();
    O.Cache = RunCache.get();
  }
  Prng Master(Seed);
  for (unsigned I = 0; I < Fuzz.Iterations; ++I) {
    uint64_t CaseSeed = Master.deriveSeed(I);
    Context Ctx;
    Prng Rng(CaseSeed);
    const Node *Program = generateProgram(Ctx, Rng, Fuzz.Gen);
    std::vector<Packet> Inputs =
        enumerateInputs(Ctx, Fuzz.Gen, Fuzz.MaxInputs, Rng);
    std::string Label =
        "program[" + std::to_string(I) + "] seed=" + hexSeed(CaseSeed);
    // An engine that dies mid-case (fatalError in a worker included) must
    // still identify the case; the context rides along into the abort
    // diagnostic.
    setFatalErrorContext("fuzz " + Label + ", master seed " +
                         hexSeed(Seed));
    OracleReport Case = crossCheckProgram(Ctx, Program, Inputs, O, Label);
    if (!Case.ok())
      Case.Disagreements.push_back(Label + ": generated program was: " +
                                   ast::print(Program, Ctx.fields()));
    R.merge(Case);

    if (Fuzz.VerdictEvery && I % Fuzz.VerdictEvery == 0) {
      uint64_t VerdictSeed = Master.deriveSeed(0x10000 + I);
      setFatalErrorContext("fuzz verdict seed=" + hexSeed(VerdictSeed) +
                           ", master seed " + hexSeed(Seed));
      verdictCase(VerdictSeed, O, R);
    }
  }
  setFatalErrorContext("");
  return R;
}

OracleReport gen::runRegistry(const RegistryOptions &Registry,
                              const OracleOptions &Options) {
  OracleReport R;
  OracleOptions O = Options;
  std::unique_ptr<fdd::CompileCache> RunCache;
  if (O.CheckCompileCache && !O.Cache) {
    RunCache = std::make_unique<fdd::CompileCache>();
    O.Cache = RunCache.get();
  }
  for (const ScenarioSpec &Spec : buildRegistry(Registry)) {
    Context Ctx;
    setFatalErrorContext("registry scenario " + Spec.Name);
    Scenario S = Spec.Build(Ctx);
    R.merge(crossCheckScenario(Ctx, S, O));
  }
  setFatalErrorContext("");
  return R;
}
