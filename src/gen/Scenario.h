//===----------------------------------------------------------------------===//
///
/// \file
/// The scenario registry: a single enumeration of topology x routing x
/// failure-model combinations — the paper's chain/triangle/FatTree
/// families plus ring, grid/torus, and seeded random-graph families —
/// each yielding a ready-to-compile guarded program, its query inputs,
/// and (where known) a closed-form expected answer. The same registry
/// drives the conformance test suite, the `mcnk_cli fuzz` subcommand,
/// and the bench/ scenario sweep, so every new family automatically
/// reaches all three (docs/ARCHITECTURE.md S11).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_GEN_SCENARIO_H
#define MCNK_GEN_SCENARIO_H

#include "ast/Context.h"
#include "packet/Packet.h"
#include "support/Rational.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mcnk {
namespace gen {

/// One built scenario: a guarded program over \c Ctx plus everything the
/// oracle needs to query and cross-check it.
struct Scenario {
  std::string Name;
  const ast::Node *Program = nullptr;
  /// Perfect-delivery specification, when one exists (null for
  /// hop-counting models, whose outputs carry path lengths).
  const ast::Node *Teleport = nullptr;
  /// Concrete query packets (the model's ingresses).
  std::vector<Packet> Inputs;
  /// Hop-counter field, or FieldTable::NotFound.
  FieldId HopField = FieldTable::NotFound;
  /// True when the model compiles at least one while loop (drives the
  /// LoopSolveStats checks).
  bool LoopBearing = false;
  /// Exact expected delivery probability per input, when known in closed
  /// form (the chain's (1 - pfail/2)^K).
  bool HasClosedForm = false;
  Rational ClosedFormDelivery;
  /// Engine affordability: scenarios whose PRISM translation or path
  /// enumeration would dominate the suite's runtime opt out; the FDD
  /// engines and round-trips always run.
  bool CheckPrism = true;
  bool CheckBaseline = true;
  /// Unroll bound handed to the exhaustive baseline (must exceed the
  /// longest possible path for residual-free comparison).
  std::size_t BaselineLoopBound = 64;
};

/// A named, lazily-built scenario; building populates the caller's
/// Context so each scenario gets a fresh field table.
struct ScenarioSpec {
  std::string Name;
  std::function<Scenario(ast::Context &)> Build;
};

/// Knobs for the registry enumeration. Defaults are sized for the
/// conformance suite (every engine affordable); the bench sweep scales
/// them up.
struct RegistryOptions {
  bool IncludeTriangle = true;
  unsigned MaxChainK = 3;             ///< Chains K = 1..MaxChainK.
  std::vector<unsigned> RingSizes = {4, 6};
  bool IncludeGrids = true;           ///< 2x2 and 2x3 meshes.
  bool IncludeTorus = true;           ///< 3x3 torus.
  unsigned NumRandomGraphs = 3;       ///< Seeded random-graph scenarios.
  unsigned RandomGraphSize = 6;
  unsigned RandomGraphExtraCables = 2;
  bool IncludeFatTree = true;         ///< p=4 standard + AB FatTree.
  bool IncludeHopCounting = true;     ///< Hop-stat variants (ring/grid).
  uint64_t Seed = 0xC0FFEEULL;        ///< Random-graph family seed.
};

/// Enumerates the full registry under \p Options. Order is deterministic;
/// names are stable identifiers like "chain/K2", "torus/3x3/f1",
/// "random/N6/s1".
std::vector<ScenarioSpec> buildRegistry(const RegistryOptions &Options = {});

} // namespace gen
} // namespace mcnk

#endif // MCNK_GEN_SCENARIO_H
