//===----------------------------------------------------------------------===//
///
/// \file
/// Registry enumeration: each entry pairs a stable name with a builder
/// closure that synthesizes the scenario's model into a caller-supplied
/// Context. Families: the §2 triangle (both policies under f0/f1/f2),
/// chains of diamonds, rings, grids, a torus, seeded random connected
/// graphs, and p=4 (AB) FatTrees — with and without per-hop failures,
/// plus hop-counting variants. Closed forms are attached where the paper
/// (or elementary reasoning) pins the exact delivery probability.
///
//===----------------------------------------------------------------------===//

#include "gen/Scenario.h"

#include "routing/Routing.h"
#include "support/Prng.h"
#include "topology/Topology.h"

#include <utility>

using namespace mcnk;
using namespace mcnk::gen;
using namespace mcnk::routing;
using namespace mcnk::topology;

namespace {

/// Packets for every model ingress.
std::vector<Packet> ingressPackets(const NetworkModel &Model,
                                   const ast::Context &Ctx) {
  std::vector<Packet> Inputs;
  Inputs.reserve(Model.Ingresses.size());
  for (std::size_t I = 0; I < Model.Ingresses.size(); ++I)
    Inputs.push_back(Model.ingressPacket(I, Ctx));
  return Inputs;
}

Scenario fromModel(std::string Name, NetworkModel Model,
                   const ast::Context &Ctx) {
  Scenario S;
  S.Name = std::move(Name);
  S.Program = Model.Program;
  S.Teleport = Model.Teleport;
  S.HopField = Model.HopField;
  S.Inputs = ingressPackets(Model, Ctx);
  S.LoopBearing = true; // Every routing model compiles a while loop.
  return S;
}

void addTriangleScenarios(std::vector<ScenarioSpec> &Registry) {
  struct Variant {
    const char *Name;
    bool Resilient;
    unsigned FailureModel;
    bool HasClosedForm;
    Rational Delivery;
  };
  // Closed forms from §2: p is 0-resilient (3/4 under f1, 4/5 under f2),
  // p̂ is 1-resilient (still 24/25 under the unbounded f2).
  const Variant Variants[] = {
      {"triangle/naive/f0", false, 0, true, Rational(1)},
      {"triangle/naive/f1", false, 1, true, Rational(3, 4)},
      {"triangle/naive/f2", false, 2, true, Rational(4, 5)},
      {"triangle/resilient/f0", true, 0, true, Rational(1)},
      {"triangle/resilient/f1", true, 1, true, Rational(1)},
      {"triangle/resilient/f2", true, 2, true, Rational(24, 25)},
  };
  for (const Variant &V : Variants)
    Registry.push_back({V.Name, [V](ast::Context &Ctx) {
                          TriangleExample Ex = buildTriangleExample(Ctx);
                          const ast::Node *Programs[2][3] = {
                              {Ex.NaiveF0, Ex.NaiveF1, Ex.NaiveF2},
                              {Ex.ResilientF0, Ex.ResilientF1,
                               Ex.ResilientF2}};
                          Scenario S;
                          S.Name = V.Name;
                          S.Program =
                              Programs[V.Resilient][V.FailureModel];
                          S.Teleport = Ex.Teleport;
                          S.Inputs = {Ex.ingressPacket(Ctx)};
                          S.LoopBearing = true;
                          S.HasClosedForm = V.HasClosedForm;
                          S.ClosedFormDelivery = V.Delivery;
                          S.BaselineLoopBound = 16;
                          return S;
                        }});
}

void addChainScenarios(std::vector<ScenarioSpec> &Registry, unsigned MaxK) {
  for (unsigned K = 1; K <= MaxK; ++K) {
    std::string Name = "chain/K" + std::to_string(K);
    Registry.push_back({Name, [Name, K](ast::Context &Ctx) {
                          ChainLayout L;
                          makeChain(K, L);
                          const Rational PFail(1, 10);
                          NetworkModel M = buildChainModel(L, PFail, Ctx);
                          Scenario S = fromModel(Name, M, Ctx);
                          // Exact reliability: (1 - pfail/2)^K.
                          S.HasClosedForm = true;
                          Rational PerDiamond =
                              Rational(1) - PFail / Rational(2);
                          S.ClosedFormDelivery = Rational(1);
                          for (unsigned I = 0; I < K; ++I)
                            S.ClosedFormDelivery *= PerDiamond;
                          S.BaselineLoopBound = 6 * K + 4;
                          return S;
                        }});
  }
}

/// Shared helper for every shortest-path family member.
void addShortestPath(std::vector<ScenarioSpec> &Registry, std::string Name,
                     std::function<Topology()> MakeTopo,
                     const FailureModel &Failures, bool CountHops,
                     std::size_t LoopBound) {
  Registry.push_back(
      {Name, [Name, MakeTopo = std::move(MakeTopo), Failures, CountHops,
              LoopBound](ast::Context &Ctx) {
         Topology T = MakeTopo();
         ModelOptions O;
         O.Failures = Failures;
         O.CountHops = CountHops;
         O.HopCap = 8;
         NetworkModel M = buildShortestPathModel(T, /*Dst=*/1, O, Ctx);
         Scenario S = fromModel(Name, M, Ctx);
         if (!Failures.enabled() && !CountHops) {
           // Failure-free shortest-path routing always delivers.
           S.HasClosedForm = true;
           S.ClosedFormDelivery = Rational(1);
         }
         S.BaselineLoopBound = LoopBound;
         return S;
       }});
}

void addFatTreeScenarios(std::vector<ScenarioSpec> &Registry) {
  struct Variant {
    const char *Name;
    bool AB;
    Scheme RoutingScheme;
    FailureModel Failures;
    bool CheckPrism;
  };
  const Variant Variants[] = {
      {"fattree/p4/F100/f0", false, Scheme::F100, FailureModel::none(),
       true},
      {"fattree/p4/F100/f1", false, Scheme::F100,
       FailureModel::bounded(Rational(1, 100), 1), false},
      {"abfattree/p4/F103/f1", true, Scheme::F103,
       FailureModel::bounded(Rational(1, 100), 1), false},
      {"abfattree/p4/F1035/f1", true, Scheme::F1035,
       FailureModel::bounded(Rational(1, 100), 1), false},
  };
  for (const Variant &V : Variants)
    Registry.push_back({V.Name, [V](ast::Context &Ctx) {
                          FatTreeLayout L;
                          if (V.AB)
                            makeAbFatTree(4, L);
                          else
                            makeFatTree(4, L);
                          ModelOptions O;
                          O.RoutingScheme = V.RoutingScheme;
                          O.Failures = V.Failures;
                          NetworkModel M = buildFatTreeModel(L, O, Ctx);
                          Scenario S = fromModel(V.Name, M, Ctx);
                          if (!V.Failures.enabled()) {
                            S.HasClosedForm = true;
                            S.ClosedFormDelivery = Rational(1);
                          }
                          S.CheckPrism = V.CheckPrism;
                          S.BaselineLoopBound = 16;
                          return S;
                        }});
}

} // namespace

std::vector<ScenarioSpec> gen::buildRegistry(const RegistryOptions &O) {
  std::vector<ScenarioSpec> Registry;

  if (O.IncludeTriangle)
    addTriangleScenarios(Registry);
  addChainScenarios(Registry, O.MaxChainK);

  for (unsigned N : O.RingSizes) {
    std::string Base = "ring/N" + std::to_string(N);
    auto Make = [N] {
      RingLayout L;
      return makeRing(N, L);
    };
    addShortestPath(Registry, Base + "/f0", Make, FailureModel::none(),
                    /*CountHops=*/false, 4 * N);
    addShortestPath(Registry, Base + "/iid20", Make,
                    FailureModel::iid(Rational(1, 20)),
                    /*CountHops=*/false, 4 * N);
  }
  if (O.IncludeHopCounting && !O.RingSizes.empty()) {
    unsigned N = O.RingSizes.front();
    addShortestPath(Registry, "ring/N" + std::to_string(N) + "/hops",
                    [N] {
                      RingLayout L;
                      return makeRing(N, L);
                    },
                    FailureModel::none(), /*CountHops=*/true, 4 * N);
  }

  if (O.IncludeGrids) {
    auto AddGrid = [&](unsigned Rows, unsigned Cols, bool Torus,
                       const std::string &Base) {
      auto Make = [Rows, Cols, Torus] {
        GridLayout L;
        return makeGrid(Rows, Cols, Torus, L);
      };
      std::size_t LoopBound = 4 * static_cast<std::size_t>(Rows) * Cols;
      addShortestPath(Registry, Base + "/f0", Make, FailureModel::none(),
                      /*CountHops=*/false, LoopBound);
      addShortestPath(Registry, Base + "/f1", Make,
                      FailureModel::bounded(Rational(1, 20), 1),
                      /*CountHops=*/false, LoopBound);
    };
    AddGrid(2, 2, false, "grid/2x2");
    AddGrid(2, 3, false, "grid/2x3");
    if (O.IncludeTorus)
      AddGrid(3, 3, true, "torus/3x3");
    if (O.IncludeHopCounting)
      addShortestPath(Registry, "grid/2x3/hops",
                      [] {
                        GridLayout L;
                        return makeGrid(2, 3, false, L);
                      },
                      FailureModel::none(), /*CountHops=*/true, 24);
  }

  for (unsigned G = 1; G <= O.NumRandomGraphs; ++G) {
    std::string Name = "random/N" + std::to_string(O.RandomGraphSize) +
                       "/s" + std::to_string(G);
    unsigned N = O.RandomGraphSize;
    unsigned Extra = O.RandomGraphExtraCables;
    uint64_t Seed = Prng(O.Seed).deriveSeed(G);
    addShortestPath(Registry, Name,
                    [N, Extra, Seed] {
                      return makeRandomConnected(N, Extra, Seed);
                    },
                    FailureModel::iid(Rational(1, 20)),
                    /*CountHops=*/false, 4 * N);
  }

  if (O.IncludeFatTree)
    addFatTreeScenarios(Registry);

  return Registry;
}
