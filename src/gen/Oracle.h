//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-engine differential oracle: compiles a guarded program (or a
/// registry scenario) under every backend the repository implements —
/// native FDD with the Exact / Direct(float) / Iterative solvers, each
/// serial and parallel; the prismlite pipeline (translate + explicit-state
/// check); the exhaustive path-enumeration baseline; and, for tiny
/// programs, the reference set semantics — then cross-checks delivery
/// probabilities, full output distributions, equivalence/refinement
/// verdicts, and hop statistics, plus the Printer -> Parser and
/// exportFdd -> importFdd round-trips. Every disagreement is reported as
/// a human-readable string carrying the case label, so a failure
/// reproduces from the printed seed (docs/ARCHITECTURE.md S11).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_GEN_ORACLE_H
#define MCNK_GEN_ORACLE_H

#include "gen/ProgramGen.h"
#include "gen/Scenario.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mcnk {

namespace analysis {
class Verifier;
} // namespace analysis

namespace fdd {
class CompileCache;
} // namespace fdd

namespace gen {

/// Tolerances and engine toggles for one oracle run.
struct OracleOptions {
  /// Absolute tolerance when a float-solved engine meets an exact one.
  double Tolerance = 1e-6;
  /// Worker count for the parallel-compile equality checks.
  unsigned ParallelThreads = 2;
  /// Baseline unroll bound / path budget for random programs (scenarios
  /// carry their own bound).
  std::size_t BaselineLoopBound = 24;
  std::size_t BaselinePathBudget = 200000;
  /// The PRISM pipeline re-translates per input; cap the inputs it sees.
  std::size_t MaxPrismInputs = 4;
  bool CheckPrism = true;
  bool CheckBaseline = true;
  bool CheckParallel = true;
  bool CheckRoundTrips = true;
  /// Cross-check the cross-compile cache and manager GC (ARCHITECTURE
  /// S12): a cache-backed verifier must produce reference-equal diagrams
  /// cold, on the hit path, and after gc(), with identical output
  /// distributions to the uncached engine.
  bool CheckCompileCache = true;
  /// Optional shared cache for the S12 checks; when null, each driver run
  /// creates one of its own so hits still accumulate across cases.
  fdd::CompileCache *Cache = nullptr;
  /// Inputs per case on which the cached engine's output distributions
  /// are compared point-for-point against the uncached one.
  std::size_t MaxCacheCheckInputs = 4;
  /// Cross-check the block-structured solver (docs/ARCHITECTURE.md S13):
  /// Exact compiles with blocked SCC/DAG elimination — serial and, when
  /// CheckParallel is set, on a worker pool — must be reference-equal to
  /// the monolithic exact engine; Direct(float) blocked with a
  /// fill-reducing ordering must agree within Tolerance; and every
  /// engine's per-block LoopSolveStats must sum to its totals.
  bool CheckBlocked = true;
  /// Cross-check the multi-prime modular exact solver (docs/ARCHITECTURE.md
  /// S14): ModularExact compiles — serial, parallel-case, blocked (serial
  /// and pooled, so block tasks and per-prime tasks share one engine), and
  /// cache-backed cold/hit — must all be reference-equal to the Rational
  /// exact engine's diagram; reconstruction is verified, never trusted.
  bool CheckModular = true;
  /// Cross-check the serving layer (docs/ARCHITECTURE.md S16): an
  /// in-process Service + Session answering the line protocol must agree
  /// with the inline verifier — delivery probabilities and hop statistics
  /// string-equal as exact rationals, teleport equivalence/refinement
  /// verdicts identical. The program travels through the printer and the
  /// JSON framing, so this also pins print -> parse -> compile end to end.
  bool CheckServe = true;
  /// Cross-check the verified simplifier (docs/ARCHITECTURE.md S15):
  /// simplify(p) must compile to a diagram reference-equal to p's under
  /// the exact engine (the simplifier's soundness contract), simplify
  /// must be idempotent, and the CompileOptions.Simplify compile-time
  /// hook must agree with the standalone rewrite.
  bool CheckSimplify = true;
  /// Cross-check query-directed slicing (docs/ARCHITECTURE.md S17): the
  /// delivery-sliced compile must be reference-equal to the unsliced exact
  /// diagram after projecting out-of-cone modifications away (out-of-cone
  /// tests whose projected children still differ are kept, so a missed
  /// dependency fails loudly); per-input delivery probabilities must be
  /// string-equal; the sliced parallel / blocked / modular / cached
  /// engines must reproduce the sliced serial diagram; the all-fields
  /// slice must not change the compiled diagram at all; and slicing must
  /// be idempotent. Scenarios additionally pin the sliced average
  /// delivery and the hop-stats histogram under the counter-field
  /// observation.
  bool CheckSlice = true;
};

/// Accumulated outcome of an oracle run.
struct OracleReport {
  std::size_t NumCases = 0;  ///< Programs / scenarios cross-checked.
  std::size_t NumChecks = 0; ///< Individual comparisons performed.
  std::vector<std::string> Disagreements;

  bool ok() const { return Disagreements.empty(); }
  void merge(const OracleReport &Other);
  std::string summary() const;
};

/// Cross-checks one guarded program on the given concrete inputs under
/// every engine. \p Label prefixes disagreement messages. When
/// \p ExactVerifier is non-null it supplies (and afterwards retains) the
/// exact-solver compilation — crossCheckScenario reuses it for the
/// teleport/closed-form/hop checks instead of paying a second Exact
/// compile, the most expensive engine.
OracleReport crossCheckProgram(ast::Context &Ctx, const ast::Node *Program,
                               const std::vector<Packet> &Inputs,
                               const OracleOptions &Options,
                               const std::string &Label,
                               analysis::Verifier *ExactVerifier = nullptr);

/// Cross-checks one registry scenario: crossCheckProgram on its inputs,
/// plus teleport refinement/equivalence consistency, closed-form delivery,
/// hop-statistics invariants (and their baseline cross-check), and
/// LoopSolveStats sanity on loop-bearing models.
OracleReport crossCheckScenario(ast::Context &Ctx, const Scenario &S,
                                const OracleOptions &Options);

/// Program-fuzzing driver: derives one child seed per iteration from
/// \p Seed, generates a random guarded program, and cross-checks it on
/// its full (capped) input space. Every fourth iteration additionally
/// generates a tiny program pair and compares the verifier's equivalence
/// and refinement verdicts against the reference set semantics.
struct FuzzOptions {
  unsigned Iterations = 100;
  GenOptions Gen;
  std::size_t MaxInputs = 16;
  /// Run the set-semantics verdict comparison every Nth iteration
  /// (0 disables).
  unsigned VerdictEvery = 4;
};
OracleReport fuzzPrograms(uint64_t Seed, const FuzzOptions &Fuzz,
                          const OracleOptions &Options);

/// Runs every scenario in the registry.
OracleReport runRegistry(const RegistryOptions &Registry,
                         const OracleOptions &Options);

} // namespace gen
} // namespace mcnk

#endif // MCNK_GEN_ORACLE_H
