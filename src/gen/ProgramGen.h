//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random guarded-ProbNetKAT program generation over ast::Context:
/// size-bounded terms drawn from weighted production rules covering field
/// tests/sets, drop/skip, sequencing, probabilistic choice, conditionals,
/// while loops, and the n-ary `case` construct — always inside the
/// guarded fragment the backends accept (no Star, Union only between
/// predicates). Deterministic in (seed, options) across platforms: all
/// randomness flows through support/Prng.h.
///
/// This is the program half of the differential-testing subsystem
/// (docs/ARCHITECTURE.md S11); the topology half lives in Scenario.h.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_GEN_PROGRAMGEN_H
#define MCNK_GEN_PROGRAMGEN_H

#include "ast/Context.h"
#include "packet/Packet.h"
#include "support/Prng.h"

#include <vector>

namespace mcnk {
namespace gen {

/// Shape and production-rule weights for generated programs. The defaults
/// produce small, loop- and case-bearing programs whose finite domain
/// (NumFields x NumValues) stays cheap for every oracle engine, including
/// exhaustive path enumeration.
struct GenOptions {
  unsigned NumFields = 3;   ///< Fields f0..f{NumFields-1}.
  FieldValue NumValues = 3; ///< Values range over [0, NumValues).
  unsigned MaxDepth = 4;    ///< Recursion bound for compound rules.
  unsigned MaxCaseBranches = 3;
  unsigned MaxSeqLength = 3;

  // Relative weights of the production rules (compound rules only fire
  // above depth 0; zero disables a rule).
  unsigned WeightAssign = 4;
  unsigned WeightTest = 2;
  unsigned WeightSkip = 1;
  unsigned WeightDrop = 1;
  unsigned WeightSeq = 4;
  unsigned WeightChoice = 4;
  unsigned WeightIte = 3;
  unsigned WeightWhile = 2;
  unsigned WeightCase = 2;

  /// Plant statically-dead material in generated `case` constructs: a
  /// duplicated earlier guard (shadowed arm, and an overlapping pair) or
  /// a contradictory guard g;¬g (unreachable arm). Dead arms never fire
  /// under first-match semantics, so programs stay semantics-preserving —
  /// this exercises the S15 analyzer/simplifier (ast/Analyze.h) on shapes
  /// the plain grammar rarely produces.
  bool PlantDeadArms = false;

  /// Wrap the program in assignments to a `scratch` field no guard ever
  /// tests: written (possibly twice) but never read, so every write is
  /// invisible to any delivery query. Exercises the S17 dependency
  /// analysis (ast/Deps.h) — the write-only-field check must flag it and
  /// query-directed slicing must remove it without changing any answer.
  bool PlantWriteOnlyField = false;
};

/// Generates a random guarded-fragment program; fields are interned into
/// \p Ctx as f0..fN on first use. The result always satisfies
/// ast::isGuarded.
const ast::Node *generateProgram(ast::Context &Ctx, uint64_t Seed,
                                 const GenOptions &Options = {});

/// Same, drawing from an existing stream (for callers generating several
/// related terms from one seed).
const ast::Node *generateProgram(ast::Context &Ctx, Prng &Rng,
                                 const GenOptions &Options = {});

/// Random predicate over the option's fields: tests combined with
/// negation, conjunction (';'), and disjunction ('&').
const ast::Node *generatePredicate(ast::Context &Ctx, Prng &Rng,
                                   const GenOptions &Options,
                                   unsigned Depth);

/// The full concrete input space of the generator's domain: every packet
/// over fields f0..fN with values below NumValues, capped at \p MaxInputs
/// by deterministic uniform subsampling (keeps oracle cost bounded for
/// larger domains).
std::vector<Packet> enumerateInputs(ast::Context &Ctx,
                                    const GenOptions &Options,
                                    std::size_t MaxInputs, Prng &Rng);

} // namespace gen
} // namespace mcnk

#endif // MCNK_GEN_PROGRAMGEN_H
