//===----------------------------------------------------------------------===//
///
/// \file
/// Weighted-grammar random program generation (guarded fragment only).
/// Structure mirrors a probabilistic CFG walk: each call picks a
/// production by weight, compound rules recurse with a decremented depth
/// budget, and depth 0 falls back to the atomic rules. While-loop bodies
/// get a trailing assignment to the guard field so a useful fraction of
/// generated loops terminates with probability one (diverging loops are
/// still legal — their mass drops — just less informative per case).
///
//===----------------------------------------------------------------------===//

#include "gen/ProgramGen.h"

#include "support/Casting.h"

#include <string>

using namespace mcnk;
using namespace mcnk::gen;
using ast::Context;
using ast::Node;

namespace {

FieldId pickField(Context &Ctx, Prng &Rng, const GenOptions &O) {
  unsigned Index = static_cast<unsigned>(Rng.below(O.NumFields));
  return Ctx.field("f" + std::to_string(Index));
}

FieldValue pickValue(Prng &Rng, const GenOptions &O) {
  return static_cast<FieldValue>(Rng.below(O.NumValues));
}

/// A probability strictly inside (0, 1) with a small denominator (keeps
/// exact arithmetic cheap and avoids the trivial-probability collapse in
/// Context::choice).
Rational pickProbability(Prng &Rng) {
  uint64_t Den = Rng.range(2, 8);
  uint64_t Num = Rng.range(1, Den - 1);
  return Rational(static_cast<int64_t>(Num), static_cast<int64_t>(Den));
}

const Node *genProgram(Context &Ctx, Prng &Rng, const GenOptions &O,
                       unsigned Depth);

} // namespace

const Node *gen::generatePredicate(Context &Ctx, Prng &Rng,
                                   const GenOptions &O, unsigned Depth) {
  // Weighted predicate grammar: test-heavy, with occasional negation,
  // conjunction, and disjunction; constants are rare (they collapse the
  // surrounding construct in Context's smart constructors).
  enum { Test, Negate, Conj, Disj, Constant };
  std::vector<unsigned> Weights = {6, 2, 2, 2, 1};
  if (Depth == 0)
    Weights[Negate] = Weights[Conj] = Weights[Disj] = 0;
  switch (Rng.weighted(Weights)) {
  case Test:
    return Ctx.test(pickField(Ctx, Rng, O), pickValue(Rng, O));
  case Negate:
    return Ctx.negate(generatePredicate(Ctx, Rng, O, Depth - 1));
  case Conj:
    return Ctx.seq(generatePredicate(Ctx, Rng, O, Depth - 1),
                   generatePredicate(Ctx, Rng, O, Depth - 1));
  case Disj:
    return Ctx.unite(generatePredicate(Ctx, Rng, O, Depth - 1),
                     generatePredicate(Ctx, Rng, O, Depth - 1));
  default:
    return Rng.chance(1, 2) ? Ctx.skip() : Ctx.drop();
  }
}

namespace {

const Node *genWhile(Context &Ctx, Prng &Rng, const GenOptions &O,
                     unsigned Depth) {
  // Guard: a single test (possibly negated) keeps the loop's symbolic
  // state space within the generator's domain.
  FieldId Field = pickField(Ctx, Rng, O);
  FieldValue Value = pickValue(Rng, O);
  const Node *Guard = Ctx.test(Field, Value);
  bool Negated = Rng.chance(1, 3);
  if (Negated)
    Guard = Ctx.negate(Guard);
  const Node *Body = genProgram(Ctx, Rng, O, Depth - 1);
  // Usually append a guard-field write so the loop tends to terminate:
  // exiting needs the field to differ from (resp. equal) Value.
  if (Rng.chance(3, 4)) {
    FieldValue Exit = Negated ? Value : (Value + 1) % O.NumValues;
    const Node *Write = Ctx.assign(Field, Exit);
    // Sometimes make the write probabilistic — a geometric loop.
    if (Rng.chance(1, 3))
      Write = Ctx.choice(pickProbability(Rng), Write, Ctx.skip());
    Body = Ctx.seq(Body, Write);
  }
  return Ctx.whileLoop(Guard, Body);
}

const Node *genCase(Context &Ctx, Prng &Rng, const GenOptions &O,
                    unsigned Depth) {
  std::size_t NumBranches = Rng.range(1, O.MaxCaseBranches);
  std::vector<ast::CaseNode::Branch> Branches;
  Branches.reserve(NumBranches);
  for (std::size_t I = 0; I < NumBranches; ++I)
    Branches.push_back({generatePredicate(Ctx, Rng, O, 1),
                        genProgram(Ctx, Rng, O, Depth - 1)});
  // Statically-dead arms (never fire under first-match, so semantics are
  // unchanged): a repeated earlier guard — shadowed, and an overlapping
  // pair when the guard is satisfiable — or a contradictory guard g;¬g.
  if (O.PlantDeadArms && Rng.chance(2, 3)) {
    if (Rng.chance(1, 2)) {
      const Node *Earlier =
          Branches[Rng.below(Branches.size())].first;
      Branches.push_back({Earlier, genProgram(Ctx, Rng, O, Depth - 1)});
    } else {
      const Node *G = generatePredicate(Ctx, Rng, O, 1);
      Branches.push_back({Ctx.seq(G, Ctx.negate(G)),
                          genProgram(Ctx, Rng, O, Depth - 1)});
    }
  }
  const Node *Default =
      Rng.chance(1, 2) ? Ctx.drop() : genProgram(Ctx, Rng, O, Depth - 1);
  return Ctx.caseOf(std::move(Branches), Default);
}

const Node *genProgram(Context &Ctx, Prng &Rng, const GenOptions &O,
                       unsigned Depth) {
  enum { Assign, Test, Skip, Drop, Seq, Choice, Ite, While, Case };
  std::vector<unsigned> Weights = {O.WeightAssign, O.WeightTest,
                                   O.WeightSkip,   O.WeightDrop,
                                   O.WeightSeq,    O.WeightChoice,
                                   O.WeightIte,    O.WeightWhile,
                                   O.WeightCase};
  if (Depth == 0)
    Weights[Seq] = Weights[Choice] = Weights[Ite] = Weights[While] =
        Weights[Case] = 0;
  switch (Rng.weighted(Weights)) {
  case Assign:
    return Ctx.assign(pickField(Ctx, Rng, O), pickValue(Rng, O));
  case Test:
    return Ctx.test(pickField(Ctx, Rng, O), pickValue(Rng, O));
  case Skip:
    return Ctx.skip();
  case Drop:
    return Ctx.drop();
  case Seq: {
    std::size_t Length = Rng.range(2, O.MaxSeqLength);
    const Node *Acc = genProgram(Ctx, Rng, O, Depth - 1);
    for (std::size_t I = 1; I < Length; ++I)
      Acc = Ctx.seq(Acc, genProgram(Ctx, Rng, O, Depth - 1));
    return Acc;
  }
  case Choice:
    return Ctx.choice(pickProbability(Rng),
                      genProgram(Ctx, Rng, O, Depth - 1),
                      genProgram(Ctx, Rng, O, Depth - 1));
  case Ite:
    return Ctx.ite(generatePredicate(Ctx, Rng, O, 1),
                   genProgram(Ctx, Rng, O, Depth - 1),
                   genProgram(Ctx, Rng, O, Depth - 1));
  case While:
    return genWhile(Ctx, Rng, O, Depth);
  default:
    return genCase(Ctx, Rng, O, Depth);
  }
}

} // namespace

const Node *gen::generateProgram(Context &Ctx, Prng &Rng,
                                 const GenOptions &Options) {
  const Node *P = genProgram(Ctx, Rng, Options, Options.MaxDepth);
  if (Options.PlantWriteOnlyField) {
    // The grammar only assigns fields it also tests, so plant a field no
    // guard ever reads: a leading write, and half the time a trailing
    // overwrite (making the first one dead as well).
    FieldId W = Ctx.field("scratch");
    P = Ctx.seq(
        Ctx.assign(W, static_cast<FieldValue>(Rng.below(Options.NumValues))),
        P);
    if (Rng.chance(1, 2))
      P = Ctx.seq(P, Ctx.assign(W, static_cast<FieldValue>(
                                       Rng.below(Options.NumValues))));
  }
  return P;
}

const Node *gen::generateProgram(Context &Ctx, uint64_t Seed,
                                 const GenOptions &Options) {
  Prng Rng(Seed);
  return generateProgram(Ctx, Rng, Options);
}

std::vector<Packet> gen::enumerateInputs(Context &Ctx,
                                         const GenOptions &Options,
                                         std::size_t MaxInputs, Prng &Rng) {
  // Intern the full field set so packets cover it even when the program
  // mentioned only a subset.
  for (unsigned F = 0; F < Options.NumFields; ++F)
    Ctx.field("f" + std::to_string(F));
  std::size_t Total = 1;
  for (unsigned F = 0; F < Options.NumFields; ++F)
    Total *= Options.NumValues;

  auto PacketAt = [&](std::size_t Index) {
    Packet P(Ctx.fields().numFields());
    for (unsigned F = 0; F < Options.NumFields; ++F) {
      P.set(Ctx.field("f" + std::to_string(F)),
            static_cast<FieldValue>(Index % Options.NumValues));
      Index /= Options.NumValues;
    }
    return P;
  };

  std::vector<Packet> Inputs;
  if (MaxInputs == 0 || Total <= MaxInputs) {
    Inputs.reserve(Total);
    for (std::size_t I = 0; I < Total; ++I)
      Inputs.push_back(PacketAt(I));
    return Inputs;
  }
  // Deterministic subsample without replacement (Floyd's algorithm needs
  // set bookkeeping; for these tiny totals a shuffle-prefix is simpler).
  std::vector<std::size_t> Indices(Total);
  for (std::size_t I = 0; I < Total; ++I)
    Indices[I] = I;
  for (std::size_t I = 0; I < MaxInputs; ++I) {
    std::size_t J = I + Rng.below(Total - I);
    std::swap(Indices[I], Indices[J]);
    Inputs.push_back(PacketAt(Indices[I]));
  }
  return Inputs;
}
