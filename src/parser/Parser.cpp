//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for `.pnk`, following the precedence ladder
/// documented in Parser.h; errors carry source positions.
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "parser/Lexer.h"
#include "support/BigInt.h"

#include <cstdint>

using namespace mcnk;
using namespace mcnk::parser;
using ast::Context;
using ast::Node;

std::string Diagnostic::render() const {
  return std::to_string(Line) + ":" + std::to_string(Column) + ": " + Message;
}

namespace {

class ParserImpl {
public:
  ParserImpl(const std::string &Source, Context &C)
      : Lex(Source), Ctx(C) {
    Tok = Lex.next();
  }

  ParseResult run() {
    ParseResult Result;
    const Node *Program = parseChoice();
    if (Program && !expect(TokenKind::Eof))
      Program = nullptr;
    Result.Program = Failed ? nullptr : Program;
    Result.Diagnostics = std::move(Diags);
    Result.Warnings = Failed ? std::vector<Diagnostic>{} : std::move(Warns);
    return Result;
  }

private:
  // --- Token plumbing ---------------------------------------------------
  void bump() { Tok = Lex.next(); }

  bool at(TokenKind Kind) const { return Tok.Kind == Kind; }

  bool accept(TokenKind Kind) {
    if (!at(Kind))
      return false;
    bump();
    return true;
  }

  bool expect(TokenKind Kind) {
    if (accept(Kind))
      return true;
    error(std::string("expected ") + tokenKindName(Kind) + ", found " +
          describeCurrent());
    return false;
  }

  std::string describeCurrent() const {
    if (Tok.Kind == TokenKind::Ident || Tok.Kind == TokenKind::Number)
      return std::string(tokenKindName(Tok.Kind)) + " '" + Tok.Text + "'";
    if (Tok.Kind == TokenKind::Error)
      return Tok.Text;
    return tokenKindName(Tok.Kind);
  }

  void error(const std::string &Message) {
    if (Failed)
      return; // Report only the first error; later ones are cascades.
    Failed = true;
    Diags.push_back({Tok.Line, Tok.Column, Message, ""});
  }

  void warn(const Token &At, const char *Check, const std::string &Message) {
    Warns.push_back({At.Line, At.Column, Message, Check});
  }

  /// Records \p At as the source location of \p N (first write wins, so
  /// compound nodes keep their own start while reused operands keep
  /// theirs).
  const Node *located(const Node *N, const Token &At) {
    if (N)
      Ctx.noteLoc(N, {At.Line, At.Column});
    return N;
  }

  // --- Grammar ----------------------------------------------------------
  const Node *parseChoice() {
    Token Start = Tok;
    const Node *Lhs = parseUnion();
    while (!Failed && at(TokenKind::Plus)) {
      Token OpTok = Tok;
      bump();
      if (!expect(TokenKind::LBracket))
        return nullptr;
      Rational Prob;
      if (!parseRational(Prob))
        return nullptr;
      if (!Prob.isProbability()) {
        error("choice probability must lie in [0, 1], got " +
              Prob.toString());
        return nullptr;
      }
      if (!expect(TokenKind::RBracket))
        return nullptr;
      const Node *Rhs = parseUnion();
      if (Failed)
        return nullptr;
      // r = 0 and r = 1 collapse in Ctx.choice and never reach the AST, so
      // the lint diagnostic has to be raised here.
      if (Prob.isZero() || Prob.isOne())
        warn(OpTok, "degenerate-choice",
             "probabilistic choice with probability " + Prob.toString() +
                 " is degenerate: only the " +
                 (Prob.isOne() ? "left" : "right") + " branch can run");
      Lhs = located(Ctx.choice(Prob, Lhs, Rhs), Start);
    }
    return Failed ? nullptr : Lhs;
  }

  const Node *parseUnion() {
    Token Start = Tok;
    const Node *Lhs = parseSeq();
    while (!Failed && accept(TokenKind::Amp)) {
      const Node *Rhs = parseSeq();
      if (Failed)
        return nullptr;
      Lhs = located(Ctx.unite(Lhs, Rhs), Start);
    }
    return Failed ? nullptr : Lhs;
  }

  const Node *parseSeq() {
    Token Start = Tok;
    const Node *Lhs = parseUnary();
    while (!Failed && accept(TokenKind::Semi)) {
      const Node *Rhs = parseUnary();
      if (Failed)
        return nullptr;
      Lhs = located(Ctx.seq(Lhs, Rhs), Start);
    }
    return Failed ? nullptr : Lhs;
  }

  const Node *parseUnary() {
    if (at(TokenKind::Bang)) {
      Token BangTok = Tok;
      bump();
      const Node *Operand = parseUnary();
      if (Failed)
        return nullptr;
      if (!Operand->isPredicate()) {
        Failed = true;
        Diags.push_back({BangTok.Line, BangTok.Column,
                         "negation '!' applies only to predicates", {}});
        return nullptr;
      }
      return located(Ctx.negate(Operand), BangTok);
    }
    return parsePostfix();
  }

  const Node *parsePostfix() {
    Token Start = Tok;
    const Node *Atom = parseAtom();
    while (!Failed && accept(TokenKind::Star))
      Atom = located(Ctx.star(Atom), Start);
    return Failed ? nullptr : Atom;
  }

  const Node *parseAtom() {
    Token Start = Tok;
    switch (Tok.Kind) {
    case TokenKind::KwDrop:
      bump();
      return Ctx.drop();
    case TokenKind::KwSkip:
      bump();
      return Ctx.skip();
    case TokenKind::LParen: {
      bump();
      const Node *Inner = parseChoice();
      if (Failed || !expect(TokenKind::RParen))
        return nullptr;
      return Inner;
    }
    case TokenKind::Ident:
      return located(parseTestOrAssign(), Start);
    case TokenKind::KwIf:
      return located(parseIf(), Start);
    case TokenKind::KwWhile:
      return located(parseWhile(), Start);
    case TokenKind::KwVar:
      return located(parseVar(), Start);
    case TokenKind::KwCase:
      return located(parseCase(), Start);
    default:
      error("expected a program, found " + describeCurrent());
      return nullptr;
    }
  }

  const Node *parseTestOrAssign() {
    std::string Name = Tok.Text;
    if (Name == "dup") {
      error("'dup' is not supported: McNetKAT handles the history-free "
            "fragment of ProbNetKAT (paper Sec. 3)");
      return nullptr;
    }
    bump();
    bool IsAssign = at(TokenKind::ColonEq);
    if (!IsAssign && !at(TokenKind::Equal)) {
      error("expected '=' (test) or ':=' (assignment) after field '" + Name +
            "'");
      return nullptr;
    }
    bump();
    FieldValue Value;
    if (!parseFieldValue(Value))
      return nullptr;
    FieldId Field = Ctx.field(Name);
    return IsAssign ? Ctx.assign(Field, Value) : Ctx.test(Field, Value);
  }

  const Node *parseIf() {
    bump(); // 'if'
    const Node *Cond = parsePredicate("if-condition");
    if (Failed || !expect(TokenKind::KwThen))
      return nullptr;
    const Node *Then = parseSeq();
    if (Failed || !expect(TokenKind::KwElse))
      return nullptr;
    const Node *Else = parseSeq();
    if (Failed)
      return nullptr;
    return Ctx.ite(Cond, Then, Else);
  }

  const Node *parseWhile() {
    bump(); // 'while'
    const Node *Cond = parsePredicate("while-condition");
    if (Failed || !expect(TokenKind::KwDo))
      return nullptr;
    const Node *Body = parseSeq();
    if (Failed)
      return nullptr;
    return Ctx.whileLoop(Cond, Body);
  }

  const Node *parseVar() {
    bump(); // 'var'
    if (!at(TokenKind::Ident)) {
      error("expected field name after 'var'");
      return nullptr;
    }
    std::string Name = Tok.Text;
    bump();
    if (!expect(TokenKind::ColonEq))
      return nullptr;
    FieldValue Init;
    if (!parseFieldValue(Init))
      return nullptr;
    if (!expect(TokenKind::KwIn))
      return nullptr;
    const Node *Body = parseSeq();
    if (Failed)
      return nullptr;
    return Ctx.local(Ctx.field(Name), Init, Body);
  }

  /// 'case' '{' (guard '->' seq '|')* 'else' '->' seq '}' — the n-ary
  /// disjoint branching of §6. The else branch is mandatory and last.
  const Node *parseCase() {
    bump(); // 'case'
    if (!expect(TokenKind::LBrace))
      return nullptr;
    std::vector<ast::CaseNode::Branch> Branches;
    while (!at(TokenKind::KwElse)) {
      const Node *Guard = parsePredicate("case guard");
      if (Failed || !expect(TokenKind::Arrow))
        return nullptr;
      const Node *Program = parseSeq();
      if (Failed || !expect(TokenKind::Pipe))
        return nullptr;
      Branches.push_back({Guard, Program});
    }
    bump(); // 'else'
    if (!expect(TokenKind::Arrow))
      return nullptr;
    const Node *Default = parseSeq();
    if (Failed || !expect(TokenKind::RBrace))
      return nullptr;
    return Ctx.caseOf(std::move(Branches), Default);
  }

  const Node *parsePredicate(const char *What) {
    Token Start = Tok;
    const Node *Pred = parseChoice();
    if (Failed)
      return nullptr;
    if (!Pred->isPredicate()) {
      Failed = true;
      Diags.push_back({Start.Line, Start.Column,
                       std::string(What) + " must be a predicate", {}});
      return nullptr;
    }
    return Pred;
  }

  // --- Literals ----------------------------------------------------------
  bool parseFieldValue(FieldValue &Out) {
    if (!at(TokenKind::Number)) {
      error("expected a natural number, found " + describeCurrent());
      return false;
    }
    unsigned long long Value = 0;
    for (char C : Tok.Text) {
      Value = Value * 10 + static_cast<unsigned>(C - '0');
      if (Value > 0xffffffffULL) {
        error("field value '" + Tok.Text + "' exceeds 32 bits");
        return false;
      }
    }
    Out = static_cast<FieldValue>(Value);
    bump();
    return true;
  }

  /// nat | nat '/' nat | nat '.' digits
  bool parseRational(Rational &Out) {
    if (!at(TokenKind::Number)) {
      error("expected a probability, found " + describeCurrent());
      return false;
    }
    std::string First = Tok.Text;
    bump();
    if (accept(TokenKind::Slash)) {
      if (!at(TokenKind::Number)) {
        error("expected denominator after '/'");
        return false;
      }
      std::string Second = Tok.Text;
      bump();
      BigInt Num, Den;
      if (!BigInt::fromString(First, Num) ||
          !BigInt::fromString(Second, Den) || Den.isZero()) {
        error("malformed rational " + First + "/" + Second);
        return false;
      }
      Out = Rational(std::move(Num), std::move(Den));
      return true;
    }
    if (accept(TokenKind::Dot)) {
      if (!at(TokenKind::Number)) {
        error("expected digits after '.'");
        return false;
      }
      std::string Frac = Tok.Text;
      bump();
      BigInt Num;
      if (!BigInt::fromString(First + Frac, Num)) {
        error("malformed decimal " + First + "." + Frac);
        return false;
      }
      BigInt Den = BigInt::pow(BigInt(10), static_cast<unsigned>(Frac.size()));
      Out = Rational(std::move(Num), std::move(Den));
      return true;
    }
    BigInt Num;
    if (!BigInt::fromString(First, Num)) {
      error("malformed number " + First);
      return false;
    }
    Out = Rational(std::move(Num), BigInt(1));
    return true;
  }

  Lexer Lex;
  Context &Ctx;
  Token Tok;
  bool Failed = false;
  std::vector<Diagnostic> Diags;
  std::vector<Diagnostic> Warns;
};

} // namespace

ParseResult parser::parseProgram(const std::string &Source, Context &Ctx) {
  return ParserImpl(Source, Ctx).run();
}
