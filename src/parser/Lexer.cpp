//===----------------------------------------------------------------------===//
///
/// \file
/// Token scanner for the `.pnk` surface syntax with source positions and
/// line/block comment handling.
///
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include "support/Error.h"

#include <cctype>
#include <unordered_map>

using namespace mcnk;
using namespace mcnk::parser;

const char *parser::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::KwDrop:
    return "'drop'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwCase:
    return "'case'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::ColonEq:
    return "':='";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Arrow:
    return "'->'";
  }
  MCNK_UNREACHABLE("unhandled token kind");
}

char Lexer::peek(std::size_t Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/') && peek() != '\0')
        advance();
      if (peek() != '\0') {
        advance();
        advance();
      }
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, std::string Text, unsigned TokLine,
                       unsigned TokCol) const {
  Token T;
  T.Kind = Kind;
  T.Text = std::move(Text);
  T.Line = TokLine;
  T.Column = TokCol;
  return T;
}

Token Lexer::next() {
  skipTrivia();
  unsigned TokLine = Line, TokCol = Column;
  if (Pos >= Source.size())
    return makeToken(TokenKind::Eof, "", TokLine, TokCol);

  char C = advance();
  switch (C) {
  case '=':
    return makeToken(TokenKind::Equal, "=", TokLine, TokCol);
  case '!':
    return makeToken(TokenKind::Bang, "!", TokLine, TokCol);
  case '&':
    return makeToken(TokenKind::Amp, "&", TokLine, TokCol);
  case ';':
    return makeToken(TokenKind::Semi, ";", TokLine, TokCol);
  case '*':
    return makeToken(TokenKind::Star, "*", TokLine, TokCol);
  case '+':
    return makeToken(TokenKind::Plus, "+", TokLine, TokCol);
  case '/':
    return makeToken(TokenKind::Slash, "/", TokLine, TokCol);
  case '.':
    return makeToken(TokenKind::Dot, ".", TokLine, TokCol);
  case '(':
    return makeToken(TokenKind::LParen, "(", TokLine, TokCol);
  case ')':
    return makeToken(TokenKind::RParen, ")", TokLine, TokCol);
  case '[':
    return makeToken(TokenKind::LBracket, "[", TokLine, TokCol);
  case ']':
    return makeToken(TokenKind::RBracket, "]", TokLine, TokCol);
  case '{':
    return makeToken(TokenKind::LBrace, "{", TokLine, TokCol);
  case '}':
    return makeToken(TokenKind::RBrace, "}", TokLine, TokCol);
  case '|':
    return makeToken(TokenKind::Pipe, "|", TokLine, TokCol);
  case '-':
    if (peek() == '>') {
      advance();
      return makeToken(TokenKind::Arrow, "->", TokLine, TokCol);
    }
    return makeToken(TokenKind::Error, "expected '>' after '-'", TokLine,
                     TokCol);
  case ':':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::ColonEq, ":=", TokLine, TokCol);
    }
    return makeToken(TokenKind::Error, "expected '=' after ':'", TokLine,
                     TokCol);
  default:
    break;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Text(1, C);
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Text.push_back(advance());
    return makeToken(TokenKind::Number, std::move(Text), TokLine, TokCol);
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text.push_back(advance());
    static const std::unordered_map<std::string, TokenKind> Keywords = {
        {"drop", TokenKind::KwDrop},   {"skip", TokenKind::KwSkip},
        {"if", TokenKind::KwIf},       {"then", TokenKind::KwThen},
        {"else", TokenKind::KwElse},   {"while", TokenKind::KwWhile},
        {"do", TokenKind::KwDo},       {"var", TokenKind::KwVar},
        {"in", TokenKind::KwIn},       {"case", TokenKind::KwCase},
    };
    auto It = Keywords.find(Text);
    if (It != Keywords.end())
      return makeToken(It->second, std::move(Text), TokLine, TokCol);
    return makeToken(TokenKind::Ident, std::move(Text), TokLine, TokCol);
  }

  return makeToken(TokenKind::Error,
                   std::string("unexpected character '") + C + "'", TokLine,
                   TokCol);
}
