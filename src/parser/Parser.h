//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the `.pnk` surface syntax.
///
/// Grammar (loosest to tightest binding):
///   program := choice
///   choice  := union ('+[' rational ']' union)*        (left-assoc)
///   union   := seq ('&' seq)*
///   seq     := unary (';' unary)*
///   unary   := '!' unary | postfix
///   postfix := atom '*'*
///   atom    := 'drop' | 'skip' | ident '=' nat | ident ':=' nat
///            | '(' program ')'
///            | 'if' program 'then' seq 'else' seq
///            | 'while' program 'do' seq
///            | 'var' ident ':=' nat 'in' seq
///            | 'case' '{' (program '->' seq '|')* 'else' '->' seq '}'
///   rational := nat | nat '/' nat | nat '.' digits
///
/// if/while conditions and case guards must be predicates (checked with a
/// diagnostic).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_PARSER_PARSER_H
#define MCNK_PARSER_PARSER_H

#include "ast/Context.h"

#include <string>
#include <vector>

namespace mcnk {
namespace parser {

/// A parse-time message with 1-based source coordinates. Hard errors have
/// an empty \c Check; lint-style warnings carry the kebab-case check slug
/// (e.g. "degenerate-choice") so `mcnk_cli lint` can frame them uniformly
/// with the ast/Analyze findings.
struct Diagnostic {
  unsigned Line = 0;
  unsigned Column = 0;
  std::string Message;
  std::string Check;

  std::string render() const;
};

/// Outcome of a parse: a program on success, diagnostics on failure.
/// Warnings are advisory and may accompany a successful parse — today the
/// only producer is the degenerate `⊕_r` check (r = 0 or r = 1), which must
/// fire here because Context::choice collapses those choices on
/// construction and they never exist in the AST.
struct ParseResult {
  const ast::Node *Program = nullptr;
  std::vector<Diagnostic> Diagnostics;
  std::vector<Diagnostic> Warnings;

  bool ok() const { return Program != nullptr; }
};

/// Parses \p Source into AST nodes owned by \p Ctx. Field names are
/// interned into Ctx's field table in order of first occurrence. Node
/// source locations are recorded in Ctx's side table (ast::Context::loc).
ParseResult parseProgram(const std::string &Source, ast::Context &Ctx);

} // namespace parser
} // namespace mcnk

#endif // MCNK_PARSER_PARSER_H
