//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the `.pnk` surface syntax.
///
/// Grammar (loosest to tightest binding):
///   program := choice
///   choice  := union ('+[' rational ']' union)*        (left-assoc)
///   union   := seq ('&' seq)*
///   seq     := unary (';' unary)*
///   unary   := '!' unary | postfix
///   postfix := atom '*'*
///   atom    := 'drop' | 'skip' | ident '=' nat | ident ':=' nat
///            | '(' program ')'
///            | 'if' program 'then' seq 'else' seq
///            | 'while' program 'do' seq
///            | 'var' ident ':=' nat 'in' seq
///            | 'case' '{' (program '->' seq '|')* 'else' '->' seq '}'
///   rational := nat | nat '/' nat | nat '.' digits
///
/// if/while conditions and case guards must be predicates (checked with a
/// diagnostic).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_PARSER_PARSER_H
#define MCNK_PARSER_PARSER_H

#include "ast/Context.h"

#include <string>
#include <vector>

namespace mcnk {
namespace parser {

/// A parse-time error with 1-based source coordinates.
struct Diagnostic {
  unsigned Line = 0;
  unsigned Column = 0;
  std::string Message;

  std::string render() const;
};

/// Outcome of a parse: a program on success, diagnostics on failure.
struct ParseResult {
  const ast::Node *Program = nullptr;
  std::vector<Diagnostic> Diagnostics;

  bool ok() const { return Program != nullptr; }
};

/// Parses \p Source into AST nodes owned by \p Ctx. Field names are
/// interned into Ctx's field table in order of first occurrence.
ParseResult parseProgram(const std::string &Source, ast::Context &Ctx);

} // namespace parser
} // namespace mcnk

#endif // MCNK_PARSER_PARSER_H
