//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the `.pnk` surface syntax. Produces a token stream with
/// source positions for diagnostics; supports `//` line and `/* */` block
/// comments.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_PARSER_LEXER_H
#define MCNK_PARSER_LEXER_H

#include <cstdint>
#include <string>

namespace mcnk {
namespace parser {

enum class TokenKind : uint8_t {
  Eof,
  Error,
  Ident,
  Number,
  KwDrop,
  KwSkip,
  KwIf,
  KwThen,
  KwElse,
  KwWhile,
  KwDo,
  KwVar,
  KwIn,
  KwCase,
  Equal,     // =
  ColonEq,   // :=
  Bang,      // !
  Amp,       // &
  Semi,      // ;
  Star,      // *
  Plus,      // +
  Slash,     // /
  Dot,       // .
  LParen,    // (
  RParen,    // )
  LBracket,  // [
  RBracket,  // ]
  LBrace,    // {
  RBrace,    // }
  Pipe,      // |
  Arrow,     // ->
};

/// Human-readable token-kind name for diagnostics.
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;    // Identifier or number spelling; error message text.
  unsigned Line = 1;   // 1-based.
  unsigned Column = 1; // 1-based.
};

/// Single-pass lexer over an in-memory buffer.
class Lexer {
public:
  explicit Lexer(const std::string &Src) : Source(Src) {}

  /// Scans and returns the next token (Eof forever at end of input).
  Token next();

private:
  char peek(std::size_t Ahead = 0) const;
  char advance();
  void skipTrivia();
  Token makeToken(TokenKind Kind, std::string Text, unsigned Line,
                  unsigned Col) const;

  const std::string &Source;
  std::size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace parser
} // namespace mcnk

#endif // MCNK_PARSER_LEXER_H
