//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesis of ProbNetKAT network models (paper §2, §6, §7): routing
/// schemes (ECMP/F10 variants), per-hop probabilistic failure models f_k,
/// and the model builders M and M̂ that combine policy, topology, and
/// failures into a single guarded program.
///
/// Modeling notes (see docs/ARCHITECTURE.md for the full discussion):
///  - Failure flags are sampled at each hop before the switch program
///    reads them — exactly the paper's M̂(p,t,f) ≜ M((f;p), t), where f
///    executes at every hop. Bounding `MaxFailuresPerHop` reproduces the
///    f_k family (§2's f_1 is bounded(1) with pr = 1/3).
///  - In the FatTree models the flags are re-canonicalized after each hop
///    (they are dead by then: the next hop's f re-samples before any
///    read). This keeps the loop-head state space at (sw, pt[, dtr, hop]),
///    which is what lets the while-solver scale to thousands of switches.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_ROUTING_ROUTING_H
#define MCNK_ROUTING_ROUTING_H

#include "ast/Context.h"
#include "packet/Packet.h"
#include "support/Rational.h"
#include "topology/Topology.h"

#include <limits>
#include <vector>

namespace mcnk {
namespace routing {

/// The §7 routing schemes, in increasing resilience.
enum class Scheme {
  F100,  ///< ECMP on shortest paths; drops on downward failures.
  F103,  ///< + 3-hop rerouting (opposite-type aggs / sibling edges).
  F1035, ///< + 5-hop rerouting with a detour flag.
};

/// Per-hop link failure model (the f_k family of §7).
struct FailureModel {
  Rational LinkFailProb;            ///< pr — zero disables failures.
  unsigned MaxFailuresPerHop = 0;   ///< k; Unbounded for k = ∞.

  static constexpr unsigned Unbounded =
      std::numeric_limits<unsigned>::max();

  static FailureModel none() { return {Rational(), 0}; }
  static FailureModel bounded(Rational Pr, unsigned K) {
    return {std::move(Pr), K};
  }
  static FailureModel iid(Rational Pr) {
    return {std::move(Pr), Unbounded};
  }

  bool enabled() const { return !LinkFailProb.isZero(); }
};

struct ModelOptions {
  Scheme RoutingScheme = Scheme::F100;
  FailureModel Failures = FailureModel::none();
  bool CountHops = false;  ///< Adds a saturating hop counter field.
  unsigned HopCap = 16;    ///< Saturation bucket for the counter.
  /// Re-canonicalize failure flags after every hop (the state-space
  /// reduction described in docs/ARCHITECTURE.md). Semantically neutral; disabling it
  /// exists only for the ablation bench that measures its effect on the
  /// while-loop chain size.
  bool HopLocalFlags = true;
};

/// A synthesized model plus everything needed to query it.
struct NetworkModel {
  const ast::Node *Program = nullptr;  ///< Full model (ingress-filtered).
  const ast::Node *Teleport = nullptr; ///< Matching ideal specification.
  FieldId SwField = 0;
  FieldId PtField = 0;
  FieldId HopField = FieldTable::NotFound; ///< Valid iff CountHops.
  /// Ingress locations (switch, port); one query packet per entry.
  std::vector<std::pair<topology::SwitchId, topology::PortId>> Ingresses;

  /// A concrete input packet for the given ingress (other fields at their
  /// declared initial values).
  Packet ingressPacket(std::size_t Index, const ast::Context &Ctx) const;
};

/// Builds the F10 case-study model on a (AB) FatTree: all traffic destined
/// to edge switch 1 (paper §7), loop exits on sw=1, outputs canonicalized
/// to (sw=1, pt=0) with local fields erased.
NetworkModel buildFatTreeModel(const topology::FatTreeLayout &Layout,
                               const ModelOptions &Options,
                               ast::Context &Ctx);

/// The chain-of-diamonds reliability model (Fig 9/10): packets start at
/// S0; within each diamond the split forwards uniformly up/down; the lower
/// link fails with probability \p PFail; delivery means traversing all K
/// diamonds. Returned Teleport is the perfect-delivery spec.
NetworkModel buildChainModel(const topology::ChainLayout &Layout,
                             const Rational &PFail, ast::Context &Ctx);

/// The §2 running example on the Fig 1 triangle: policies p (naive) and p̂
/// (resilient), failure models f0/f1/f2, teleport spec.
struct TriangleExample {
  const ast::Node *NaiveF0 = nullptr;
  const ast::Node *NaiveF1 = nullptr;
  const ast::Node *NaiveF2 = nullptr;
  const ast::Node *ResilientF0 = nullptr;
  const ast::Node *ResilientF1 = nullptr;
  const ast::Node *ResilientF2 = nullptr;
  const ast::Node *Teleport = nullptr;
  FieldId SwField = 0;
  FieldId PtField = 0;
  /// The single ingress packet (sw=1, pt=1).
  Packet ingressPacket(const ast::Context &Ctx) const;
};
TriangleExample buildTriangleExample(ast::Context &Ctx);

/// Shortest-path ECMP model toward \p Dst on an arbitrary topology (the
/// scenario-registry workhorse: rings, grids, tori, random graphs). At
/// each switch the packet forwards uniformly over the alive out-ports
/// that strictly decrease the BFS distance to \p Dst; per-hop failures
/// (Options.Failures) are sampled on exactly those candidate links right
/// before the choice and re-canonicalized after the hop, so the loop-head
/// state stays (sw, pt[, hop]). Packets ingress at (sw, pt=0) for every
/// switch that can reach \p Dst; delivered packets are canonicalized to
/// (sw=Dst, pt=0). Options.RoutingScheme is ignored (there is only ECMP
/// here); the Teleport spec is provided only when CountHops is off (with
/// hop counting the model's outputs carry path lengths no specification
/// matches).
NetworkModel buildShortestPathModel(const topology::Topology &T,
                                    topology::SwitchId Dst,
                                    const ModelOptions &Options,
                                    ast::Context &Ctx);

// --- Shared synthesis helpers (exposed for tests) -----------------------

/// Distribution over up/down assignments of \p Flags with at most \p K
/// simultaneous failures, each flag failing with probability \p Pr
/// (conditioned on the bound). K = 0 or Pr = 0 yields the all-up program.
const ast::Node *sampleFlags(ast::Context &Ctx,
                             const std::vector<FieldId> &Flags,
                             const Rational &Pr, unsigned K);

/// Uniform choice among the alive members of \p Ports (flag tests nest in
/// order); falls back to \p Fallback when all are down.
const ast::Node *uniformAliveChoice(
    ast::Context &Ctx, const std::vector<topology::PortId> &Ports,
    const std::vector<FieldId> &FlagOf,
    const std::vector<const ast::Node *> &Forward,
    const ast::Node *Fallback);

/// Saturating increment cascade for a hop-counter field.
const ast::Node *hopIncrement(ast::Context &Ctx, FieldId Hop, unsigned Cap);

/// Case program moving packets across topology links:
/// sw=a ; pt=b  ->  sw:=c ; pt:=d, default drop.
const ast::Node *topologyProgram(ast::Context &Ctx,
                                 const topology::Topology &T, FieldId Sw,
                                 FieldId Pt);

} // namespace routing
} // namespace mcnk

#endif // MCNK_ROUTING_ROUTING_H
