//===----------------------------------------------------------------------===//
///
/// \file
/// The chain-of-diamonds reliability model (paper Fig 9, used for the
/// Bayonet comparison of Fig 10): K diamonds in sequence; each split
/// forwards uniformly to an upper (safe) or lower (fallible) branch; the
/// lower link fails with probability pfail. Exact delivery probability is
/// (1 - pfail/2)^K, which the tests cross-check.
///
//===----------------------------------------------------------------------===//

#include "routing/Routing.h"

using namespace mcnk;
using namespace mcnk::routing;
using namespace mcnk::topology;
using ast::Context;
using ast::Node;

NetworkModel routing::buildChainModel(const ChainLayout &Layout,
                                      const Rational &PFail, Context &Ctx) {
  NetworkModel Model;
  FieldId Sw = Ctx.field("sw");
  Model.SwField = Sw;
  Model.PtField = Sw; // The chain model is port-free; alias for queries.

  // Sentinel switch value: delivered to H2.
  const SwitchId Delivered = Layout.numSwitches() + 1;
  FieldId Up = Ctx.field("up");
  Rational UpProb = Rational(1) - PFail;

  std::vector<ast::CaseNode::Branch> Branches;
  auto Go = [&](SwitchId To) { return Ctx.assign(Sw, To); };
  for (unsigned D = 0; D < Layout.K; ++D) {
    // Split: uniform over the two branches.
    Branches.push_back(
        {Ctx.test(Sw, Layout.split(D)),
         Ctx.choice(Rational(1, 2), Go(Layout.upper(D)),
                    Go(Layout.lower(D)))});
    // Upper branch: always delivers to the join.
    Branches.push_back({Ctx.test(Sw, Layout.upper(D)), Go(Layout.join(D))});
    // Lower branch: the link to the join fails with pfail.
    const Node *Sample = Ctx.choice(UpProb, Ctx.assign(Up, 1),
                                    Ctx.assign(Up, 0));
    const Node *Fwd = Ctx.ite(Ctx.test(Up, 1), Go(Layout.join(D)),
                              Ctx.drop());
    Branches.push_back(
        {Ctx.test(Sw, Layout.lower(D)), Ctx.seq(Sample, Fwd)});
    // Join: continue to the next diamond, or deliver.
    SwitchId Next =
        D + 1 < Layout.K ? Layout.split(D + 1) : Delivered;
    Branches.push_back({Ctx.test(Sw, Layout.join(D)), Go(Next)});
  }
  const Node *Step = Ctx.caseOf(std::move(Branches), Ctx.drop());
  // Re-canonicalize the sampled flag so it stays out of the loop state.
  const Node *Body = Ctx.seq(Step, Ctx.assign(Up, 1));

  const Node *Loop =
      Ctx.whileLoop(Ctx.negate(Ctx.test(Sw, Delivered)), Body);
  const Node *InPred = Ctx.test(Sw, Layout.split(0));
  const Node *Core = Ctx.seq(InPred, Loop);
  const Node *Teleport = Ctx.seq(InPred, Ctx.assign(Sw, Delivered));

  Model.Program = Ctx.local(Up, 1, Core);
  Model.Teleport = Ctx.local(Up, 1, Teleport);
  // PtField aliases SwField in this port-free model; the ingress "port"
  // repeats the switch so ingressPacket writes the same value twice.
  Model.Ingresses.push_back({Layout.split(0), Layout.split(0)});
  return Model;
}
