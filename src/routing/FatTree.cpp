//===----------------------------------------------------------------------===//
///
/// \file
/// F10 case-study model synthesis on (AB) FatTrees (paper §7): ECMP
/// routing with optional 3-hop and 5-hop rerouting, per-hop failure
/// sampling on the downward links, hop counting, and the matching
/// teleport specification.
///
//===----------------------------------------------------------------------===//

#include "routing/Routing.h"

#include "support/Error.h"

#include <cassert>
#include <set>

using namespace mcnk;
using namespace mcnk::routing;
using namespace mcnk::topology;
using ast::Context;
using ast::Node;

NetworkModel routing::buildFatTreeModel(const FatTreeLayout &Layout,
                                        const ModelOptions &Options,
                                        Context &Ctx) {
  const unsigned H = Layout.H;
  const unsigned P = Layout.P;
  assert(H >= 1 && "degenerate FatTree");

  // Rebuild the wired topology for the layout.
  FatTreeLayout Check;
  Topology Topo = Layout.AB ? makeAbFatTree(P, Check) : makeFatTree(P, Check);

  NetworkModel Model;
  // Interning order fixes the FDD variable order: location fields first
  // keeps diagrams switch-major and compact.
  FieldId Sw = Ctx.field("sw");
  FieldId Pt = Ctx.field("pt");
  Model.SwField = Sw;
  Model.PtField = Pt;

  // The detour flag and (with failures) the full port-flag set are
  // declared by every scheme — even ones that never read them — so that
  // all schemes erase the same local fields and their outputs stay
  // comparable (the Fig 11c refinement table compares across schemes).
  const bool FlagsDeclared = Options.Failures.enabled();
  const bool WantDetourFlag = Options.RoutingScheme == Scheme::F1035;
  FieldId Dtr = Ctx.field("dtr");
  FieldId Hop =
      Options.CountHops ? Ctx.field("hop") : FieldTable::NotFound;
  Model.HopField = Hop;

  const bool FailOn = Options.Failures.enabled();
  std::vector<FieldId> UpFlag(P + 1, FieldTable::NotFound);
  if (FlagsDeclared)
    for (PortId Port = 1; Port <= P; ++Port)
      UpFlag[Port] = Ctx.field("up" + std::to_string(Port));

  const SwitchId Dest = Layout.edgeId(0, 0); // Switch 1 (paper §7).
  const Rational &Pr = Options.Failures.LinkFailProb;
  const unsigned K = Options.Failures.MaxFailuresPerHop;

  auto Fwd = [&](PortId Port) { return Ctx.assign(Pt, Port); };

  std::set<FieldId> UsedFlags;
  std::vector<ast::CaseNode::Branch> SwitchBranches;

  for (SwitchId S = 1; S <= Layout.numSwitches(); ++S) {
    if (S == Dest)
      continue; // The loop guard exits before the destination routes.
    const Node *Route = nullptr;
    std::vector<FieldId> Fallible;

    if (Layout.isEdge(S)) {
      // ECMP upward: uniform over the alive... upward links never fail in
      // this model (failures live on downward paths, §7), so plain
      // uniform choice. A detour flag, if present, is cleared here.
      std::vector<const Node *> Ups;
      for (unsigned X = 0; X < H; ++X)
        Ups.push_back(Fwd(Layout.edgeUpPort(X)));
      Route = Ctx.choiceUniform(Ups);
      if (WantDetourFlag)
        Route = Ctx.seq(Ctx.assign(Dtr, 0), Route);
    } else if (Layout.isAgg(S)) {
      unsigned Pod = Layout.podOf(S);
      if (Pod == 0) {
        // Destination pod: the down-link to edge 1 is on the failure-prone
        // downward path.
        const Node *Down = Fwd(Layout.aggDownPort(0));
        if (!FailOn) {
          Route = Down;
        } else {
          FieldId Flag = UpFlag[Layout.aggDownPort(0)];
          Fallible.push_back(Flag);
          const Node *Detour = Ctx.drop();
          if (Options.RoutingScheme != Scheme::F100 && H >= 2) {
            // 3-hop rerouting inside the pod: bounce via a sibling edge,
            // which sends the packet back up to a (random) fresh agg.
            std::vector<const Node *> Others;
            for (unsigned J = 1; J < H; ++J)
              Others.push_back(Fwd(Layout.aggDownPort(J)));
            Detour = Ctx.choiceUniform(Others);
          }
          Route = Ctx.ite(Ctx.test(Flag, 1), Down, Detour);
        }
      } else {
        std::vector<const Node *> Ups;
        for (unsigned M = 0; M < H; ++M)
          Ups.push_back(Fwd(Layout.aggUpPort(M)));
        const Node *GoUp = Ctx.choiceUniform(Ups);
        if (WantDetourFlag) {
          // A detoured packet dives to an edge of this pod and resurfaces
          // through a different agg (the middle of the 5-hop path).
          std::vector<const Node *> Downs;
          for (unsigned J = 0; J < H; ++J)
            Downs.push_back(Fwd(Layout.aggDownPort(J)));
          Route =
              Ctx.ite(Ctx.test(Dtr, 1), Ctx.choiceUniform(Downs), GoUp);
        } else {
          Route = GoUp;
        }
      }
    } else {
      // Core switch: the down-link to pod 0 may fail; fall back to 3-hop
      // (opposite-type pods) and then 5-hop (same-type pods, flagged)
      // rerouting per scheme.
      const PortId DownPort = Layout.corePodPort(0);
      const Node *Down = Fwd(DownPort);
      if (!FailOn) {
        Route = Down;
      } else {
        const Node *Fallback = Ctx.drop();
        if (Options.RoutingScheme == Scheme::F1035) {
          std::vector<PortId> Same;
          for (unsigned Pod = 1; Pod < P; ++Pod)
            if (!Layout.isTypeB(Pod))
              Same.push_back(Layout.corePodPort(Pod));
          if (!Same.empty()) {
            std::vector<FieldId> Flags;
            std::vector<const Node *> Forwards;
            for (PortId Port : Same) {
              Flags.push_back(UpFlag[Port]);
              Forwards.push_back(Ctx.seq(Ctx.assign(Dtr, 1), Fwd(Port)));
            }
            Fallback =
                uniformAliveChoice(Ctx, Same, Flags, Forwards, Ctx.drop());
            Fallible.insert(Fallible.end(), Flags.begin(), Flags.end());
          }
        }
        if (Options.RoutingScheme != Scheme::F100) {
          std::vector<PortId> Opposite;
          for (unsigned Pod = 1; Pod < P; ++Pod)
            if (Layout.isTypeB(Pod))
              Opposite.push_back(Layout.corePodPort(Pod));
          if (!Opposite.empty()) {
            std::vector<FieldId> Flags;
            std::vector<const Node *> Forwards;
            for (PortId Port : Opposite) {
              Flags.push_back(UpFlag[Port]);
              Forwards.push_back(Fwd(Port));
            }
            Fallback =
                uniformAliveChoice(Ctx, Opposite, Flags, Forwards, Fallback);
            Fallible.insert(Fallible.end(), Flags.begin(), Flags.end());
          }
        }
        FieldId DownFlag = UpFlag[DownPort];
        Fallible.push_back(DownFlag);
        Route = Ctx.ite(Ctx.test(DownFlag, 1), Down, Fallback);
      }
    }

    // Sample this hop's failure flags before the routing logic reads them
    // (M̂ executes f before p at every hop).
    if (!Fallible.empty()) {
      Route = Ctx.seq(sampleFlags(Ctx, Fallible, Pr, K), Route);
      UsedFlags.insert(Fallible.begin(), Fallible.end());
    }
    SwitchBranches.push_back({Ctx.test(Sw, S), Route});
  }

  const Node *PHop = Ctx.caseOf(std::move(SwitchBranches), Ctx.drop());
  const Node *Topo_ = topologyProgram(Ctx, Topo, Sw, Pt);

  // Body = p ; t [; hop++] ; flag reset. The reset re-canonicalizes the
  // (dead) flags so they stay out of the loop-head state space.
  std::vector<const Node *> BodyParts = {PHop, Topo_};
  if (Options.CountHops)
    BodyParts.push_back(hopIncrement(Ctx, Hop, Options.HopCap));
  if (Options.HopLocalFlags) {
    std::vector<const Node *> Resets;
    for (FieldId Flag : UsedFlags)
      Resets.push_back(Ctx.assign(Flag, 1));
    BodyParts.push_back(Ctx.seqAll(Resets));
  }
  const Node *Body = Ctx.seqAll(BodyParts);

  const Node *Loop =
      Ctx.whileLoop(Ctx.negate(Ctx.test(Sw, Dest)), Body);

  // Ingress: one host-facing port on every edge switch except the
  // destination.
  std::vector<const Node *> InDisjuncts;
  for (unsigned Pod = 0; Pod < P; ++Pod)
    for (unsigned E = 0; E < H; ++E) {
      SwitchId Edge = Layout.edgeId(Pod, E);
      if (Edge == Dest)
        continue;
      Model.Ingresses.push_back({Edge, Layout.edgeHostPort()});
      InDisjuncts.push_back(Ctx.seq(Ctx.test(Sw, Edge),
                                    Ctx.test(Pt, Layout.edgeHostPort())));
    }
  const Node *InPred = Ctx.uniteAll(InDisjuncts);

  // Delivered packets are canonicalized to (sw=Dest, pt=0); the hop field
  // (when present) carries the path length.
  std::vector<const Node *> CoreParts = {InPred};
  if (Options.CountHops)
    CoreParts.push_back(Ctx.assign(Hop, 0));
  CoreParts.push_back(Loop);
  CoreParts.push_back(Ctx.assign(Pt, 0));
  const Node *Core = Ctx.seqAll(CoreParts);

  const Node *Teleport =
      Ctx.seqAll({InPred, Ctx.assign(Sw, Dest), Ctx.assign(Pt, 0)});

  // Local-field wrappers erase the model-only fields from the outputs of
  // both the model and its specification. The whole declared flag set is
  // wrapped (not just the sampled flags) for cross-scheme comparability.
  if (FlagsDeclared) {
    for (PortId Port = 1; Port <= P; ++Port) {
      Core = Ctx.local(UpFlag[Port], 1, Core);
      Teleport = Ctx.local(UpFlag[Port], 1, Teleport);
    }
  }
  Core = Ctx.local(Dtr, 0, Core);
  Teleport = Ctx.local(Dtr, 0, Teleport);

  Model.Program = Core;
  Model.Teleport = Teleport;
  return Model;
}
