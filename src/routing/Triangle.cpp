//===----------------------------------------------------------------------===//
///
/// \file
/// The §2 running example, built exactly as the paper writes it: the Fig 1
/// triangle, naive policy p and resilient policy p̂, link program t̂ with
/// health guards, failure models f0/f1/f2, and the network models
/// M̂(p, t̂, f) ≜ var up2 := 1 in var up3 := 1 in M((f ; p), t̂)
/// with M(q, t) ≜ in ; q ; while ¬out do (t ; q).
///
//===----------------------------------------------------------------------===//

#include "routing/Routing.h"

using namespace mcnk;
using namespace mcnk::routing;
using ast::Context;
using ast::Node;

Packet TriangleExample::ingressPacket(const Context &Ctx) const {
  Packet P(Ctx.fields().numFields());
  P.set(SwField, 1);
  P.set(PtField, 1);
  return P;
}

TriangleExample routing::buildTriangleExample(Context &Ctx) {
  TriangleExample Ex;
  FieldId Sw = Ctx.field("sw");
  FieldId Pt = Ctx.field("pt");
  FieldId Up2 = Ctx.field("up2");
  FieldId Up3 = Ctx.field("up3");
  Ex.SwField = Sw;
  Ex.PtField = Pt;

  // p: forward out of port 2 at switches 1 and 2; switch 3 is unreachable
  // under the naive scheme.
  const Node *P = Ctx.ite(
      Ctx.test(Sw, 1), Ctx.assign(Pt, 2),
      Ctx.ite(Ctx.test(Sw, 2), Ctx.assign(Pt, 2), Ctx.drop()));

  // p̂: switch 1 detours via port 3 when the port-2 link is down; switches
  // 2 and 3 forward toward the destination.
  const Node *PHat = Ctx.ite(
      Ctx.test(Sw, 1),
      Ctx.ite(Ctx.test(Up2, 1), Ctx.assign(Pt, 2), Ctx.assign(Pt, 3)),
      Ctx.ite(Ctx.test(Sw, 2), Ctx.assign(Pt, 2), Ctx.assign(Pt, 2)));

  // t̂: the topology with link-health guards on switch 1's links.
  auto LinkCase = [&](topology::SwitchId A, topology::PortId PA,
                      topology::SwitchId B,
                      topology::PortId PB,
                      FieldId Guard) -> ast::CaseNode::Branch {
    const Node *Cond = Ctx.seq(Ctx.test(Sw, A), Ctx.test(Pt, PA));
    if (Guard != FieldTable::NotFound)
      Cond = Ctx.seq(Cond, Ctx.test(Guard, 1));
    return {Cond, Ctx.seq(Ctx.assign(Sw, B), Ctx.assign(Pt, PB))};
  };
  std::vector<ast::CaseNode::Branch> Links = {
      LinkCase(1, 2, 2, 1, Up2),
      LinkCase(1, 3, 3, 1, Up3),
      LinkCase(3, 2, 2, 3, FieldTable::NotFound),
  };
  const Node *THat = Ctx.caseOf(std::move(Links), Ctx.drop());

  // Failure models (§2, verbatim).
  const Node *F0 = Ctx.seq(Ctx.assign(Up2, 1), Ctx.assign(Up3, 1));
  const Node *F1 = Ctx.choiceWeighted({
      {F0, Rational(1, 2)},
      {Ctx.seq(Ctx.assign(Up2, 0), Ctx.assign(Up3, 1)), Rational(1, 4)},
      {Ctx.seq(Ctx.assign(Up2, 1), Ctx.assign(Up3, 0)), Rational(1, 4)},
  });
  const Node *F2 = Ctx.seq(
      Ctx.choice(Rational(4, 5), Ctx.assign(Up2, 1), Ctx.assign(Up2, 0)),
      Ctx.choice(Rational(4, 5), Ctx.assign(Up3, 1), Ctx.assign(Up3, 0)));

  // in ≜ sw=1 ; pt=1 and out ≜ sw=2 ; pt=2.
  const Node *In = Ctx.seq(Ctx.test(Sw, 1), Ctx.test(Pt, 1));
  const Node *Out = Ctx.seq(Ctx.test(Sw, 2), Ctx.test(Pt, 2));

  // M(q, t) ≜ in ; q ; while ¬out do (t ; q), wrapped in the up-flag
  // declarations.
  auto MHat = [&](const Node *Policy, const Node *Failure) {
    const Node *Q = Ctx.seq(Failure, Policy);
    const Node *Loop =
        Ctx.whileLoop(Ctx.negate(Out), Ctx.seq(THat, Q));
    const Node *Core = Ctx.seqAll({In, Q, Loop});
    return Ctx.local(Up2, 1, Ctx.local(Up3, 1, Core));
  };

  Ex.NaiveF0 = MHat(P, F0);
  Ex.NaiveF1 = MHat(P, F1);
  Ex.NaiveF2 = MHat(P, F2);
  Ex.ResilientF0 = MHat(PHat, F0);
  Ex.ResilientF1 = MHat(PHat, F1);
  Ex.ResilientF2 = MHat(PHat, F2);

  // Teleport: in ; sw := 2 ; pt := 2, with identical local-field erasure.
  const Node *Tele =
      Ctx.seqAll({In, Ctx.assign(Sw, 2), Ctx.assign(Pt, 2)});
  Ex.Teleport = Ctx.local(Up2, 1, Ctx.local(Up3, 1, Tele));
  return Ex;
}
