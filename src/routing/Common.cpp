//===----------------------------------------------------------------------===//
///
/// \file
/// Shared synthesis helpers: per-hop failure samplers (the f_k family),
/// alive-port uniform choice, hop counters, and topology programs.
///
//===----------------------------------------------------------------------===//

#include "routing/Routing.h"

#include "support/Error.h"

#include <cassert>
#include <functional>

using namespace mcnk;
using namespace mcnk::routing;
using ast::Context;
using ast::Node;

Packet NetworkModel::ingressPacket(std::size_t Index,
                                   const Context &Ctx) const {
  assert(Index < Ingresses.size() && "ingress index out of range");
  Packet P(Ctx.fields().numFields());
  P.set(SwField, Ingresses[Index].first);
  P.set(PtField, Ingresses[Index].second);
  return P;
}

const Node *routing::sampleFlags(Context &Ctx,
                                 const std::vector<FieldId> &Flags,
                                 const Rational &Pr, unsigned K) {
  // All-up fast path (no failures possible).
  auto AllUp = [&] {
    std::vector<const Node *> Writes;
    for (FieldId F : Flags)
      Writes.push_back(Ctx.assign(F, 1));
    return Ctx.seqAll(Writes);
  };
  if (Flags.empty() || Pr.isZero() || K == 0)
    return AllUp();

  assert(Flags.size() <= 16 && "flag set too large to enumerate");
  std::size_t N = Flags.size();
  Rational Up = Rational(1) - Pr;

  // Enumerate failure subsets S with |S| <= K; weight pr^|S| (1-pr)^(N-|S|),
  // normalized over the admissible subsets (the conditioning in f_k).
  std::vector<std::pair<const Node *, Rational>> Cases;
  Rational Total;
  for (std::size_t Mask = 0; Mask < (1u << N); ++Mask) {
    unsigned Down = static_cast<unsigned>(__builtin_popcount(Mask));
    if (Down > K)
      continue;
    Rational Weight(1);
    std::vector<const Node *> Writes;
    for (std::size_t I = 0; I < N; ++I) {
      bool Failed = (Mask >> I) & 1;
      Writes.push_back(Ctx.assign(Flags[I], Failed ? 0 : 1));
      Weight *= Failed ? Pr : Up;
    }
    Cases.emplace_back(Ctx.seqAll(Writes), Weight);
    Total += Weight;
  }
  for (auto &[Program, Weight] : Cases) {
    (void)Program;
    Weight /= Total;
  }
  return Ctx.choiceWeighted(Cases);
}

const Node *routing::uniformAliveChoice(
    Context &Ctx, const std::vector<topology::PortId> &Ports,
    const std::vector<FieldId> &FlagOf,
    const std::vector<const Node *> &Forward, const Node *Fallback) {
  assert(Ports.size() == FlagOf.size() && Ports.size() == Forward.size() &&
         "parallel arrays expected");
  // Nested conditionals over the flags; at the base, a uniform choice over
  // the alive subset (or the fallback when everything is down).
  std::function<const Node *(std::size_t, std::vector<std::size_t>)> Rec =
      [&](std::size_t I, std::vector<std::size_t> Alive) -> const Node * {
    if (I == Ports.size()) {
      if (Alive.empty())
        return Fallback;
      std::vector<const Node *> Options;
      for (std::size_t A : Alive)
        Options.push_back(Forward[A]);
      return Ctx.choiceUniform(Options);
    }
    std::vector<std::size_t> WithThis = Alive;
    WithThis.push_back(I);
    return Ctx.ite(Ctx.test(FlagOf[I], 1), Rec(I + 1, std::move(WithThis)),
                   Rec(I + 1, std::move(Alive)));
  };
  return Rec(0, {});
}

const Node *routing::hopIncrement(Context &Ctx, FieldId Hop, unsigned Cap) {
  // hop := min(hop + 1, Cap), written as a test cascade (values saturate
  // into the Cap bucket).
  const Node *Acc = Ctx.assign(Hop, Cap);
  for (unsigned V = Cap; V-- > 0;)
    Acc = Ctx.ite(Ctx.test(Hop, V), Ctx.assign(Hop, V + 1), Acc);
  return Acc;
}

const Node *routing::topologyProgram(Context &Ctx,
                                     const topology::Topology &T, FieldId Sw,
                                     FieldId Pt) {
  std::vector<ast::CaseNode::Branch> Branches;
  Branches.reserve(T.links().size());
  for (const topology::Link &L : T.links()) {
    const Node *Guard = Ctx.seq(Ctx.test(Sw, L.Src), Ctx.test(Pt, L.SrcPort));
    const Node *Move =
        Ctx.seq(Ctx.assign(Sw, L.Dst), Ctx.assign(Pt, L.DstPort));
    Branches.push_back({Guard, Move});
  }
  // Packets at a non-link location are malformed; dropping them makes
  // modeling bugs visible as lost probability mass.
  return Ctx.caseOf(std::move(Branches), Ctx.drop());
}
