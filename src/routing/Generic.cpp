//===----------------------------------------------------------------------===//
///
/// \file
/// Topology-generic shortest-path ECMP model synthesis: BFS distances to
/// the destination, uniform choice over distance-decreasing alive ports,
/// per-hop failure sampling with hop-local flag re-canonicalization (the
/// same state-space discipline as the FatTree models; see
/// docs/ARCHITECTURE.md). This is what turns every scenario-registry
/// topology family (ring, grid, torus, random graph) into a ready-to-
/// compile guarded program.
///
//===----------------------------------------------------------------------===//

#include "routing/Routing.h"

#include "support/Error.h"

#include <cassert>
#include <deque>
#include <map>
#include <set>

using namespace mcnk;
using namespace mcnk::routing;
using namespace mcnk::topology;
using ast::Context;
using ast::Node;

NetworkModel routing::buildShortestPathModel(const Topology &T, SwitchId Dst,
                                             const ModelOptions &Options,
                                             Context &Ctx) {
  const std::size_t N = T.numSwitches();
  if (Dst < 1 || Dst > N)
    fatalError("shortest-path destination outside the topology");

  // Switch-level adjacency (port-resolved) and its mirror, so the BFS
  // below touches each link once instead of rescanning the whole list
  // per dequeued switch.
  std::map<SwitchId, std::vector<Link>> OutLinks;
  std::map<SwitchId, std::vector<SwitchId>> InFrom;
  for (const Link &L : T.links()) {
    OutLinks[L.Src].push_back(L);
    InFrom[L.Dst].push_back(L.Src);
  }

  // BFS from the destination over reversed edges gives hop distances.
  constexpr unsigned Unreachable = ~0u;
  std::vector<unsigned> Dist(N + 1, Unreachable);
  Dist[Dst] = 0;
  std::deque<SwitchId> Queue = {Dst};
  while (!Queue.empty()) {
    SwitchId Cur = Queue.front();
    Queue.pop_front();
    auto It = InFrom.find(Cur);
    if (It == InFrom.end())
      continue;
    for (SwitchId Src : It->second)
      if (Dist[Src] == Unreachable) {
        Dist[Src] = Dist[Cur] + 1;
        Queue.push_back(Src);
      }
  }

  NetworkModel Model;
  // Location fields first: switch-major diagrams stay compact.
  FieldId Sw = Ctx.field("sw");
  FieldId Pt = Ctx.field("pt");
  Model.SwField = Sw;
  Model.PtField = Pt;
  FieldId Hop = Options.CountHops ? Ctx.field("hop") : FieldTable::NotFound;
  Model.HopField = Hop;

  // One failure flag per port index (flags are shared across switches and
  // hop-local, exactly like the FatTree models).
  const bool FailOn = Options.Failures.enabled();
  PortId MaxPort = 0;
  for (const Link &L : T.links())
    MaxPort = std::max(MaxPort, L.SrcPort);
  std::vector<FieldId> UpFlag(MaxPort + 1, FieldTable::NotFound);
  if (FailOn)
    for (PortId Port = 1; Port <= MaxPort; ++Port)
      UpFlag[Port] = Ctx.field("up" + std::to_string(Port));

  const Rational &Pr = Options.Failures.LinkFailProb;
  const unsigned K = Options.Failures.MaxFailuresPerHop;

  std::set<FieldId> UsedFlags;
  std::vector<ast::CaseNode::Branch> SwitchBranches;
  for (SwitchId S = 1; S <= N; ++S) {
    if (S == Dst || Dist[S] == Unreachable)
      continue; // The loop guard exits at Dst; unreachable switches drop.
    // Candidate ports: out-links whose far end is strictly closer.
    std::vector<PortId> Ports;
    std::vector<const Node *> Forwards;
    for (const Link &L : OutLinks[S])
      if (Dist[L.Dst] != Unreachable && Dist[L.Dst] < Dist[S]) {
        Ports.push_back(L.SrcPort);
        Forwards.push_back(Ctx.assign(Pt, L.SrcPort));
      }
    assert(!Ports.empty() && "finite distance implies a descending port");

    const Node *Route;
    if (!FailOn) {
      Route = Ctx.choiceUniform(Forwards);
    } else {
      std::vector<FieldId> Flags;
      for (PortId Port : Ports)
        Flags.push_back(UpFlag[Port]);
      // Sample exactly this hop's candidate flags, then choose uniformly
      // among the alive ones; all-down drops.
      Route = Ctx.seq(sampleFlags(Ctx, Flags, Pr, K),
                      uniformAliveChoice(Ctx, Ports, Flags, Forwards,
                                         Ctx.drop()));
      UsedFlags.insert(Flags.begin(), Flags.end());
    }
    SwitchBranches.push_back({Ctx.test(Sw, S), Route});
  }

  const Node *PHop = Ctx.caseOf(std::move(SwitchBranches), Ctx.drop());
  const Node *Topo = topologyProgram(Ctx, T, Sw, Pt);

  std::vector<const Node *> BodyParts = {PHop, Topo};
  if (Options.CountHops)
    BodyParts.push_back(hopIncrement(Ctx, Hop, Options.HopCap));
  if (Options.HopLocalFlags) {
    std::vector<const Node *> Resets;
    for (FieldId Flag : UsedFlags)
      Resets.push_back(Ctx.assign(Flag, 1));
    BodyParts.push_back(Ctx.seqAll(Resets));
  }
  const Node *Body = Ctx.seqAll(BodyParts);
  const Node *Loop = Ctx.whileLoop(Ctx.negate(Ctx.test(Sw, Dst)), Body);

  // Ingress at (sw, pt=0) for every switch that can reach Dst. Port 0 is
  // never a link port, and the routing overwrites pt before the topology
  // reads it.
  std::vector<const Node *> InDisjuncts;
  for (SwitchId S = 1; S <= N; ++S) {
    if (S == Dst || Dist[S] == Unreachable)
      continue;
    Model.Ingresses.push_back({S, 0});
    InDisjuncts.push_back(Ctx.seq(Ctx.test(Sw, S), Ctx.test(Pt, 0)));
  }
  if (InDisjuncts.empty())
    fatalError("no switch can reach the destination");
  const Node *InPred = Ctx.uniteAll(InDisjuncts);

  std::vector<const Node *> CoreParts = {InPred};
  if (Options.CountHops)
    CoreParts.push_back(Ctx.assign(Hop, 0));
  CoreParts.push_back(Loop);
  CoreParts.push_back(Ctx.assign(Pt, 0));
  const Node *Core = Ctx.seqAll(CoreParts);
  const Node *Teleport =
      Ctx.seqAll({InPred, Ctx.assign(Sw, Dst), Ctx.assign(Pt, 0)});

  // Erase the model-only flag fields from the observable outputs of both
  // the model and its specification.
  if (FailOn)
    for (PortId Port = 1; Port <= MaxPort; ++Port)
      if (UsedFlags.count(UpFlag[Port])) {
        Core = Ctx.local(UpFlag[Port], 1, Core);
        Teleport = Ctx.local(UpFlag[Port], 1, Teleport);
      }

  Model.Program = Core;
  Model.Teleport = Options.CountHops ? nullptr : Teleport;
  return Model;
}
