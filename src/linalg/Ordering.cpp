//===----------------------------------------------------------------------===//
///
/// \file
/// Reverse Cuthill–McKee and greedy minimum-degree orderings over
/// symmetric sparsity patterns (see Ordering.h for the contract).
///
//===----------------------------------------------------------------------===//

#include "linalg/Ordering.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace mcnk;
using namespace mcnk::linalg;

const char *linalg::orderingName(OrderingKind Kind) {
  switch (Kind) {
  case OrderingKind::Natural:
    return "natural";
  case OrderingKind::ReverseCuthillMcKee:
    return "rcm";
  case OrderingKind::MinimumDegree:
    return "amd";
  }
  return "?";
}

AdjacencyList linalg::symmetrizedPattern(const AdjacencyList &Adj) {
  std::size_t N = Adj.size();
  AdjacencyList Sym(N);
  for (std::size_t U = 0; U < N; ++U)
    for (std::size_t V : Adj[U]) {
      assert(V < N && "adjacency index out of range");
      if (V == U)
        continue;
      Sym[U].push_back(V);
      Sym[V].push_back(U);
    }
  for (std::vector<std::size_t> &Neighbors : Sym) {
    std::sort(Neighbors.begin(), Neighbors.end());
    Neighbors.erase(std::unique(Neighbors.begin(), Neighbors.end()),
                    Neighbors.end());
  }
  return Sym;
}

std::vector<std::size_t>
linalg::reverseCuthillMcKee(const AdjacencyList &Adj) {
  std::size_t N = Adj.size();
  std::vector<std::size_t> Order;
  Order.reserve(N);
  std::vector<bool> Visited(N, false);

  // Component seeds in increasing degree (then index) order, so every
  // component starts from a pseudo-peripheral low-degree vertex.
  std::vector<std::size_t> Seeds(N);
  for (std::size_t I = 0; I < N; ++I)
    Seeds[I] = I;
  std::stable_sort(Seeds.begin(), Seeds.end(),
                   [&](std::size_t A, std::size_t B) {
                     return Adj[A].size() < Adj[B].size();
                   });

  std::vector<std::size_t> Neighbors;
  for (std::size_t Seed : Seeds) {
    if (Visited[Seed])
      continue;
    // BFS with neighbor expansion in increasing-degree order.
    std::size_t Head = Order.size();
    Visited[Seed] = true;
    Order.push_back(Seed);
    while (Head < Order.size()) {
      std::size_t U = Order[Head++];
      Neighbors.clear();
      for (std::size_t V : Adj[U])
        if (!Visited[V])
          Neighbors.push_back(V);
      std::stable_sort(Neighbors.begin(), Neighbors.end(),
                       [&](std::size_t A, std::size_t B) {
                         return Adj[A].size() < Adj[B].size();
                       });
      for (std::size_t V : Neighbors) {
        Visited[V] = true;
        Order.push_back(V);
      }
    }
  }
  std::reverse(Order.begin(), Order.end());
  return Order;
}

std::vector<std::size_t>
linalg::minimumDegreeOrdering(const AdjacencyList &Adj) {
  std::size_t N = Adj.size();
  // Evolving elimination graph: set-based neighbor lists support the
  // clique updates; (degree, vertex) keys in an ordered set give O(log n)
  // minimum extraction with deterministic ties.
  std::vector<std::set<std::size_t>> Graph(N);
  for (std::size_t U = 0; U < N; ++U)
    for (std::size_t V : Adj[U])
      if (V != U) {
        Graph[U].insert(V);
        Graph[V].insert(U);
      }

  std::set<std::pair<std::size_t, std::size_t>> Queue; // (degree, vertex)
  for (std::size_t U = 0; U < N; ++U)
    Queue.emplace(Graph[U].size(), U);

  std::vector<std::size_t> Order;
  Order.reserve(N);
  while (!Queue.empty()) {
    auto [Degree, U] = *Queue.begin();
    Queue.erase(Queue.begin());
    assert(Degree == Graph[U].size() && "stale queue entry");
    Order.push_back(U);

    // Eliminate U: its neighbors become a clique, U disappears.
    std::vector<std::size_t> Clique(Graph[U].begin(), Graph[U].end());
    for (std::size_t V : Clique) {
      Queue.erase({Graph[V].size(), V});
      Graph[V].erase(U);
    }
    for (std::size_t I = 0; I < Clique.size(); ++I)
      for (std::size_t J = I + 1; J < Clique.size(); ++J) {
        Graph[Clique[I]].insert(Clique[J]);
        Graph[Clique[J]].insert(Clique[I]);
      }
    for (std::size_t V : Clique)
      Queue.emplace(Graph[V].size(), V);
    Graph[U].clear();
  }
  return Order;
}

std::vector<std::size_t>
linalg::fillReducingOrdering(OrderingKind Kind, const AdjacencyList &Adj) {
  switch (Kind) {
  case OrderingKind::Natural: {
    std::vector<std::size_t> Identity(Adj.size());
    for (std::size_t I = 0; I < Identity.size(); ++I)
      Identity[I] = I;
    return Identity;
  }
  case OrderingKind::ReverseCuthillMcKee:
    return reverseCuthillMcKee(Adj);
  case OrderingKind::MinimumDegree:
    return minimumDegreeOrdering(Adj);
  }
  return {};
}

std::vector<std::size_t>
linalg::inversePermutation(const std::vector<std::size_t> &Perm) {
  std::vector<std::size_t> Inverse(Perm.size());
  for (std::size_t K = 0; K < Perm.size(); ++K) {
    assert(Perm[K] < Perm.size() && "permutation entry out of range");
    Inverse[Perm[K]] = K;
  }
  return Inverse;
}

bool linalg::isPermutation(const std::vector<std::size_t> &Perm) {
  std::vector<bool> Seen(Perm.size(), false);
  for (std::size_t V : Perm) {
    if (V >= Perm.size() || Seen[V])
      return false;
    Seen[V] = true;
  }
  return true;
}
