//===----------------------------------------------------------------------===//
///
/// \file
/// Linear-system solvers: exact dense Gaussian elimination over Rational,
/// dense partial-pivot elimination over double, and the Neumann-series
/// iteration for (I - Q) x = b used by the approximate engines.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_LINALG_SOLVE_H
#define MCNK_LINALG_SOLVE_H

#include "linalg/Dense.h"
#include "linalg/Sparse.h"
#include "support/Rational.h"

#include <cmath>
#include <cstddef>
#include <vector>

namespace mcnk {
namespace linalg {

namespace detail {
inline double pivotWeight(double Value) { return std::fabs(Value); }
/// For exact arithmetic any non-zero pivot is valid; prefer structurally
/// simple ones (small numerator/denominator) to slow coefficient growth.
inline double pivotWeight(const Rational &Value) {
  if (Value.isZero())
    return 0.0;
  double Size = static_cast<double>(Value.numerator().numLimbs() +
                                    Value.denominator().numLimbs());
  return 1.0 / (1.0 + Size);
}

/// DefaultScalarOps extended with the pivot heuristic above — the policy
/// denseSolveInPlace() instantiates the shared kernel with.
template <typename T> struct DefaultSolveOps : DefaultScalarOps<T> {
  static double pivotWeight(const T &V) { return detail::pivotWeight(V); }
};
} // namespace detail

/// Solves A X = B in place under a scalar-operations policy (see
/// detail::DefaultScalarOps): on success B holds X and A is destroyed;
/// returns false if A is singular under the policy's isZero(). The policy
/// instance supplies zero/isZero/subMul/div/pivotWeight, so the same
/// elimination loop serves double, Rational, and the prime-field residues
/// of linalg/ModSolve.h.
template <typename Ops>
bool denseSolveInPlaceOps(const Ops &O,
                          DenseMatrix<typename Ops::Scalar> &A,
                          DenseMatrix<typename Ops::Scalar> &B) {
  using T = typename Ops::Scalar;
  std::size_t N = A.numRows();
  if (N != A.numCols() || B.numRows() != N)
    return false;
  std::size_t NumRhs = B.numCols();
  std::vector<std::size_t> RowOf(N); // RowOf[k] = storage row used at step k
  for (std::size_t I = 0; I < N; ++I)
    RowOf[I] = I;

  for (std::size_t Step = 0; Step < N; ++Step) {
    // Select pivot among remaining rows.
    std::size_t Best = Step;
    double BestWeight = O.pivotWeight(A.at(RowOf[Step], Step));
    for (std::size_t I = Step + 1; I < N; ++I) {
      double Weight = O.pivotWeight(A.at(RowOf[I], Step));
      if (Weight > BestWeight) {
        Best = I;
        BestWeight = Weight;
      }
    }
    if (BestWeight == 0.0)
      return false;
    std::swap(RowOf[Step], RowOf[Best]);
    std::size_t PivRow = RowOf[Step];
    const T Pivot = A.at(PivRow, Step);

    // Axpy-style in-place elimination: for Rational this runs on the
    // fused subMul fast path with no operand temporaries.
    for (std::size_t I = Step + 1; I < N; ++I) {
      std::size_t Row = RowOf[I];
      if (O.isZero(A.at(Row, Step)))
        continue;
      T Factor = O.div(A.at(Row, Step), Pivot);
      A.at(Row, Step) = O.zero();
      for (std::size_t J = Step + 1; J < N; ++J)
        if (!O.isZero(A.at(PivRow, J)))
          O.subMul(A.at(Row, J), Factor, A.at(PivRow, J));
      for (std::size_t J = 0; J < NumRhs; ++J)
        if (!O.isZero(B.at(PivRow, J)))
          O.subMul(B.at(Row, J), Factor, B.at(PivRow, J));
    }
  }

  // Back substitution.
  for (std::size_t Step = N; Step-- > 0;) {
    std::size_t Row = RowOf[Step];
    const T Pivot = A.at(Row, Step);
    for (std::size_t J = 0; J < NumRhs; ++J) {
      T Value = B.at(Row, J);
      for (std::size_t K = Step + 1; K < N; ++K)
        if (!O.isZero(A.at(Row, K)))
          O.subMul(Value, A.at(Row, K), B.at(RowOf[K], J));
      B.at(Row, J) = O.div(Value, Pivot);
    }
  }

  // Un-permute rows of the solution.
  DenseMatrix<T> X(N, NumRhs);
  for (std::size_t Step = 0; Step < N; ++Step)
    for (std::size_t J = 0; J < NumRhs; ++J)
      X.at(Step, J) = B.at(RowOf[Step], J);
  B = std::move(X);
  return true;
}

/// Solves A X = B in place: on success B holds X and A is destroyed.
/// Returns false if A is singular. Works for T = double (partial pivoting by
/// magnitude) and T = Rational (exact; pivot chosen to limit blow-up).
template <typename T>
bool denseSolveInPlace(DenseMatrix<T> &A, DenseMatrix<T> &B) {
  return denseSolveInPlaceOps(detail::DefaultSolveOps<T>(), A, B);
}

/// Iteratively solves (I - Q) x = b as x = lim (Q x + b) — the Neumann
/// series. Converges whenever Q is substochastic with all weight eventually
/// draining (Lemma B.3 of the paper). Returns the number of iterations used,
/// or 0 if MaxIters was reached before the residual dropped below Tol.
std::size_t neumannSolve(const SparseMatrix &Q, const std::vector<double> &B,
                         std::vector<double> &X, double Tol = 1e-12,
                         std::size_t MaxIters = 100000);

} // namespace linalg
} // namespace mcnk

#endif // MCNK_LINALG_SOLVE_H
