//===----------------------------------------------------------------------===//
///
/// \file
/// Dense row-major matrices, parameterized over the scalar type. Used with
/// `double` for floating-point solves and with `Rational` for the exact
/// backend (paper §5 uses exact rationals in the frontend/FDDs and floats in
/// the linear solver; we provide both ends). The axpy-style helpers route
/// Rational accumulation through the fused in-place API so the exact engine
/// never rebuilds operand temporaries in its inner loops.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_LINALG_DENSE_H
#define MCNK_LINALG_DENSE_H

#include "support/Rational.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace mcnk {
namespace linalg {

namespace detail {

/// Acc += A * B. The generic form materializes the product; the Rational
/// overload uses the fused in-place kernel (int64 fast path end to end).
template <typename T> inline void addMulAssign(T &Acc, const T &A, const T &B) {
  Acc += A * B;
}
inline void addMulAssign(Rational &Acc, const Rational &A, const Rational &B) {
  Acc.addMul(A, B);
}

/// Acc -= A * B (the elimination kernel of Gaussian solvers).
template <typename T> inline void subMulAssign(T &Acc, const T &A, const T &B) {
  Acc -= A * B;
}
inline void subMulAssign(Rational &Acc, const Rational &A, const Rational &B) {
  Acc.subMul(A, B);
}

/// Scalar-operations policy shared by the dense elimination kernels
/// (linalg/Solve.h). The default instantiation routes through the fused
/// helpers above, so T = Rational keeps its in-place int64 fast path and
/// T = double compiles to plain arithmetic; linalg/ModSolve.h supplies a
/// prime-field policy over raw uint64 residues so the mod-p kernels reuse
/// the same loops instead of duplicating them. Policies may be stateful
/// (the prime-field one carries its field), so kernels take an instance.
template <typename T> struct DefaultScalarOps {
  using Scalar = T;
  static T zero() { return T(); }
  static bool isZero(const T &V) { return V == T(); }
  static void addMul(T &Acc, const T &A, const T &B) {
    addMulAssign(Acc, A, B);
  }
  static void subMul(T &Acc, const T &A, const T &B) {
    subMulAssign(Acc, A, B);
  }
  static T div(const T &A, const T &B) { return A / B; }
};

} // namespace detail

/// Dense NumRows x NumCols matrix with row-major storage.
template <typename T> class DenseMatrix {
public:
  DenseMatrix() : Rows(0), Cols(0) {}
  DenseMatrix(std::size_t NumRows, std::size_t NumCols)
      : Rows(NumRows), Cols(NumCols), Data(NumRows * NumCols, T()) {}

  static DenseMatrix identity(std::size_t N) {
    DenseMatrix Result(N, N);
    for (std::size_t I = 0; I < N; ++I)
      Result.at(I, I) = T(1);
    return Result;
  }

  std::size_t numRows() const { return Rows; }
  std::size_t numCols() const { return Cols; }

  T &at(std::size_t Row, std::size_t Col) {
    assert(Row < Rows && Col < Cols && "matrix index out of range");
    return Data[Row * Cols + Col];
  }
  const T &at(std::size_t Row, std::size_t Col) const {
    assert(Row < Rows && Col < Cols && "matrix index out of range");
    return Data[Row * Cols + Col];
  }

  bool operator==(const DenseMatrix &RHS) const {
    return Rows == RHS.Rows && Cols == RHS.Cols && Data == RHS.Data;
  }
  bool operator!=(const DenseMatrix &RHS) const { return !(*this == RHS); }

  DenseMatrix &operator+=(const DenseMatrix &RHS) {
    assert(Rows == RHS.Rows && Cols == RHS.Cols && "shape mismatch");
    for (std::size_t I = 0; I < Data.size(); ++I)
      Data[I] += RHS.Data[I];
    return *this;
  }

  DenseMatrix &operator-=(const DenseMatrix &RHS) {
    assert(Rows == RHS.Rows && Cols == RHS.Cols && "shape mismatch");
    for (std::size_t I = 0; I < Data.size(); ++I)
      Data[I] -= RHS.Data[I];
    return *this;
  }

  DenseMatrix operator+(const DenseMatrix &RHS) const {
    DenseMatrix Result = *this;
    Result += RHS;
    return Result;
  }

  DenseMatrix operator-(const DenseMatrix &RHS) const {
    DenseMatrix Result = *this;
    Result -= RHS;
    return Result;
  }

  DenseMatrix operator*(const DenseMatrix &RHS) const {
    assert(Cols == RHS.Rows && "shape mismatch in matrix product");
    DenseMatrix Result(Rows, RHS.Cols);
    for (std::size_t I = 0; I < Rows; ++I)
      for (std::size_t K = 0; K < Cols; ++K) {
        const T &Lhs = at(I, K);
        if (Lhs == T())
          continue; // Skip structural zeros; big win for Rational.
        for (std::size_t J = 0; J < RHS.Cols; ++J)
          detail::addMulAssign(Result.at(I, J), Lhs, RHS.at(K, J));
      }
    return Result;
  }

  /// Scales every entry by \p Factor, in place.
  DenseMatrix &scaleInPlace(const T &Factor) {
    for (T &Value : Data)
      Value *= Factor;
    return *this;
  }

  /// Scales every entry by \p Factor.
  DenseMatrix scaled(const T &Factor) const {
    DenseMatrix Result = *this;
    Result.scaleInPlace(Factor);
    return Result;
  }

private:
  std::size_t Rows, Cols;
  std::vector<T> Data;
};

} // namespace linalg
} // namespace mcnk

#endif // MCNK_LINALG_DENSE_H
