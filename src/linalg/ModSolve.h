//===----------------------------------------------------------------------===//
///
/// \file
/// Mod-p elimination kernels for the modular exact solver
/// (docs/ARCHITECTURE.md S14). Everything here operates on Montgomery-form
/// residues of a support/ModArith.h PrimeField: one uint64 word per value,
/// no allocation in the inner loops. Two kernels are provided behind one
/// entry point:
///
///   - a dense partial-pivot path for small systems, instantiating the
///     shared denseSolveInPlaceOps() loop (linalg/Solve.h) with a
///     prime-field scalar policy, and
///   - ModSparseLU, a left-looking Gilbert-Peierls LU mirroring
///     linalg/SparseLU over GF(p), combined with PR 6's fill-reducing
///     orderings.
///
/// Over a prime field every nonzero pivot is exact, so "pivoting" is purely
/// structural — but a rationally nonsingular system can still hit a zero
/// pivot mod an unlucky prime (p divides the relevant minor). The kernels
/// report that as a false return; the markov-layer driver discards the
/// prime and draws the next one from the deterministic table.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_LINALG_MODSOLVE_H
#define MCNK_LINALG_MODSOLVE_H

#include "linalg/Ordering.h"
#include "support/ModArith.h"

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mcnk {
namespace linalg {

/// One coordinate-form entry of a mod-p matrix; Value is in Montgomery
/// form. Duplicates are accumulated (field addition) on assembly.
struct ModTriplet {
  std::size_t Row;
  std::size_t Col;
  std::uint64_t Value;
};

/// Scalar policy plugging GF(p) residues into the shared dense
/// elimination loop (linalg/Solve.h denseSolveInPlaceOps). Montgomery
/// zero is the machine zero, so isZero is a word compare; every nonzero
/// pivot is equally exact, so pivotWeight is binary and the loop keeps
/// the first admissible (structurally deterministic) pivot.
struct PrimeFieldOps {
  using Scalar = std::uint64_t;
  const PrimeField &F;
  std::size_t *OpCount = nullptr; ///< Optional multiply-subtract counter.

  std::uint64_t zero() const { return 0; }
  bool isZero(std::uint64_t V) const { return V == 0; }
  double pivotWeight(std::uint64_t V) const { return V == 0 ? 0.0 : 1.0; }
  void addMul(std::uint64_t &Acc, std::uint64_t A, std::uint64_t B) const {
    Acc = F.add(Acc, F.mul(A, B));
  }
  void subMul(std::uint64_t &Acc, std::uint64_t A, std::uint64_t B) const {
    if (OpCount)
      ++*OpCount;
    Acc = F.sub(Acc, F.mul(A, B));
  }
  std::uint64_t div(std::uint64_t A, std::uint64_t B) const {
    return F.mul(A, F.inv(B));
  }
};

/// Left-looking Gilbert-Peierls sparse LU over GF(p): the structure of
/// linalg/SparseLU with Montgomery residues in place of doubles. The
/// pivot search prefers the diagonal and otherwise takes the first
/// nonzero of the reach pattern (deterministic; magnitude is meaningless
/// in a field). factor() returning false means no nonzero pivot existed
/// in some column — mod p the matrix is singular, i.e. the prime is
/// unlucky for a rationally nonsingular system.
class ModSparseLU {
public:
  explicit ModSparseLU(const PrimeField &Field) : F(Field) {}

  /// Factors the Dim x Dim matrix given in coordinate form (duplicate
  /// entries accumulate). Returns false on a zero pivot.
  bool factor(std::size_t Dim, const std::vector<ModTriplet> &Entries);

  /// Solves A x = b in place (Montgomery residues). Requires a successful
  /// factor(); reuses internal scratch, so keep one instance per thread.
  void solve(std::vector<std::uint64_t> &B);

  std::size_t dimension() const { return N; }
  std::size_t numFactorEntries() const;
  /// Multiply-subtract count of the last factor() — the per-prime op
  /// metric, comparable with SparseLU::numEliminationOps().
  std::size_t numEliminationOps() const { return NumOps; }

private:
  using Entry = std::pair<std::size_t, std::uint64_t>; // (row, value)

  const PrimeField &F;
  std::size_t N = 0;
  std::vector<std::vector<Entry>> LCols;
  std::vector<std::vector<Entry>> UCols;
  std::vector<std::size_t> Perm;
  std::vector<std::uint64_t> Work;
  std::size_t NumOps = 0;
};

/// Solves A X = B over GF(p), where \p A is the full Dim x Dim system in
/// coordinate form (Montgomery residues, duplicates accumulated) and \p B
/// is the dense right-hand side, row-major Dim x NumRhs, overwritten with
/// the solution. Small systems run the dense kernel; larger ones apply
/// the fill-reducing \p Ordering (symmetrized pattern, exactly as the
/// Rational and double engines do) and factor with ModSparseLU.
/// \p EliminationOps and \p FillIn accumulate the per-prime work metrics.
/// Returns false on a zero pivot — the unlucky-prime signal.
bool modSolveOrdered(const PrimeField &F, std::size_t Dim,
                     const std::vector<ModTriplet> &A,
                     std::vector<std::uint64_t> &B, std::size_t NumRhs,
                     OrderingKind Ordering, std::size_t &EliminationOps,
                     std::size_t &FillIn);

/// Systems at or below this dimension take the dense kernel (pattern
/// bookkeeping costs more than it saves on tiny blocks).
constexpr std::size_t ModDenseCutoff = 16;

} // namespace linalg
} // namespace mcnk

#endif // MCNK_LINALG_MODSOLVE_H
