//===----------------------------------------------------------------------===//
///
/// \file
/// Linear solvers: exact dense Gaussian elimination over Rational, dense
/// partial-pivot elimination over double, and Neumann-series iteration
/// for (I - Q) x = b.
///
//===----------------------------------------------------------------------===//

#include "linalg/Solve.h"

#include <cassert>

using namespace mcnk;
using namespace mcnk::linalg;

std::size_t linalg::neumannSolve(const SparseMatrix &Q,
                                 const std::vector<double> &B,
                                 std::vector<double> &X, double Tol,
                                 std::size_t MaxIters) {
  assert(Q.numRows() == Q.numCols() && "Q must be square");
  assert(B.size() == Q.numRows() && "RHS length mismatch");
  X = B;
  // One scratch buffer for the whole iteration: Q.multiplyInto reuses its
  // allocation, and std::swap rotates it with X instead of reallocating.
  std::vector<double> Next;
  for (std::size_t Iter = 1; Iter <= MaxIters; ++Iter) {
    Q.multiplyInto(X, Next);
    double Delta = 0.0;
    for (std::size_t I = 0; I < Next.size(); ++I) {
      Next[I] += B[I];
      Delta = std::max(Delta, std::fabs(Next[I] - X[I]));
    }
    std::swap(X, Next);
    if (Delta < Tol)
      return Iter;
  }
  return 0;
}
