//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse LU factorization with partial pivoting (left-looking
/// Gilbert-Peierls algorithm). This is the repository's stand-in for the
/// UMFPACK solver the paper uses to compute loop limits (§5): McNetKAT
/// factors I - Q once and back-solves for each absorbing column of R.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_LINALG_SPARSELU_H
#define MCNK_LINALG_SPARSELU_H

#include "linalg/Sparse.h"

#include <cstddef>
#include <utility>
#include <vector>

namespace mcnk {
namespace linalg {

/// LU factorization PA = LU of a square sparse matrix, with one
/// factor-many-solves usage: factor() once, then solve() per right-hand side.
class SparseLU {
public:
  /// Factors \p A (must be square). Returns false if the matrix is singular
  /// (no pivot with magnitude > \p PivotTol found in some column).
  bool factor(const SparseMatrix &A, double PivotTol = 1e-300);

  /// Solves A x = b in place (\p B holds b on entry, x on return).
  /// Requires a successful factor(). Non-const: reuses the internal
  /// scratch buffer, so concurrent back-solves need one SparseLU (or an
  /// external lock) per thread.
  void solve(std::vector<double> &B);

  std::size_t dimension() const { return N; }

  /// Total stored entries in L and U (fill-in diagnostics for benches).
  std::size_t numFactorEntries() const;

  /// Multiply-subtract operations performed by the last factor() — the
  /// numeric sparse-triangular-solve work, the dominant cost of the
  /// factorization. Comparable across fill-reducing orderings of the same
  /// matrix (docs/ARCHITECTURE.md S13).
  std::size_t numEliminationOps() const { return NumOps; }

private:
  using Entry = std::pair<std::size_t, double>; // (row, value)

  std::size_t N = 0;
  /// L: strictly-below-diagonal entries per column, unit diagonal implicit,
  /// rows in pivot space after factor() completes.
  std::vector<std::vector<Entry>> LCols;
  /// U: at/above-diagonal entries per column, diagonal entry stored last.
  std::vector<std::vector<Entry>> UCols;
  /// Perm[k] = original row index chosen as the k-th pivot.
  std::vector<std::size_t> Perm;
  /// Permutation scratch reused across solve() calls (one factor, many
  /// back-solves: the absorbing-chain engines solve per exit column).
  std::vector<double> Work;
  /// Multiply-subtract count of the last factor().
  std::size_t NumOps = 0;
};

} // namespace linalg
} // namespace mcnk

#endif // MCNK_LINALG_SPARSELU_H
