//===----------------------------------------------------------------------===//
///
/// \file
/// Compressed-sparse-column matrices over double. This is the input format
/// for the sparse LU factorization (our UMFPACK stand-in, see docs/ARCHITECTURE.md) and
/// for the iterative solvers used by the prismlite approximate engine.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_LINALG_SPARSE_H
#define MCNK_LINALG_SPARSE_H

#include <cstddef>
#include <vector>

namespace mcnk {
namespace linalg {

/// A (row, col, value) entry used to assemble sparse matrices.
struct Triplet {
  std::size_t Row;
  std::size_t Col;
  double Value;
};

/// Immutable CSC (compressed sparse column) matrix of doubles.
class SparseMatrix {
public:
  SparseMatrix() : Rows(0), Cols(0) {}

  /// Builds from triplets; duplicate (row, col) entries are summed.
  static SparseMatrix fromTriplets(std::size_t NumRows, std::size_t NumCols,
                                   std::vector<Triplet> Entries);

  std::size_t numRows() const { return Rows; }
  std::size_t numCols() const { return Cols; }
  std::size_t numNonZeros() const { return Values.size(); }

  /// Column slice accessors: entries of column \p Col live at indices
  /// [colBegin(Col), colEnd(Col)) of rowIndex()/values().
  std::size_t colBegin(std::size_t Col) const { return ColPtr[Col]; }
  std::size_t colEnd(std::size_t Col) const { return ColPtr[Col + 1]; }
  const std::vector<std::size_t> &rowIndex() const { return RowIdx; }
  const std::vector<double> &values() const { return Values; }

  /// Dense column-oriented product Y = A * X.
  std::vector<double> multiply(const std::vector<double> &X) const;

  /// Y = A * X into a caller-owned buffer (resized as needed), so iterative
  /// solvers can reuse one allocation across iterations.
  void multiplyInto(const std::vector<double> &X,
                    std::vector<double> &Y) const;

  /// Dense row-oriented product Y = A^T * X.
  std::vector<double> multiplyTranspose(const std::vector<double> &X) const;

  /// Structural transpose (also CSC; equals CSR view of this matrix).
  SparseMatrix transpose() const;

private:
  std::size_t Rows, Cols;
  std::vector<std::size_t> ColPtr; // size Cols + 1
  std::vector<std::size_t> RowIdx; // size nnz
  std::vector<double> Values;      // size nnz
};

} // namespace linalg
} // namespace mcnk

#endif // MCNK_LINALG_SPARSE_H
