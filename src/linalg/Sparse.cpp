//===----------------------------------------------------------------------===//
///
/// \file
/// Compressed-sparse-column matrix construction and the kernels
/// (transpose, mat-vec, column gather) used by the sparse LU and the
/// iterative engines.
///
//===----------------------------------------------------------------------===//

#include "linalg/Sparse.h"

#include <algorithm>
#include <cassert>

using namespace mcnk;
using namespace mcnk::linalg;

SparseMatrix SparseMatrix::fromTriplets(std::size_t NumRows,
                                        std::size_t NumCols,
                                        std::vector<Triplet> Entries) {
  SparseMatrix Result;
  Result.Rows = NumRows;
  Result.Cols = NumCols;

  std::sort(Entries.begin(), Entries.end(),
            [](const Triplet &A, const Triplet &B) {
              return A.Col != B.Col ? A.Col < B.Col : A.Row < B.Row;
            });

  Result.ColPtr.assign(NumCols + 1, 0);
  Result.RowIdx.reserve(Entries.size());
  Result.Values.reserve(Entries.size());

  for (std::size_t I = 0; I < Entries.size();) {
    const Triplet &First = Entries[I];
    assert(First.Row < NumRows && First.Col < NumCols &&
           "triplet index out of range");
    double Sum = 0.0;
    std::size_t J = I;
    while (J < Entries.size() && Entries[J].Row == First.Row &&
           Entries[J].Col == First.Col) {
      Sum += Entries[J].Value;
      ++J;
    }
    if (Sum != 0.0) {
      Result.RowIdx.push_back(First.Row);
      Result.Values.push_back(Sum);
      ++Result.ColPtr[First.Col + 1];
    }
    I = J;
  }
  for (std::size_t C = 0; C < NumCols; ++C)
    Result.ColPtr[C + 1] += Result.ColPtr[C];
  return Result;
}

std::vector<double> SparseMatrix::multiply(const std::vector<double> &X) const {
  std::vector<double> Y;
  multiplyInto(X, Y);
  return Y;
}

void SparseMatrix::multiplyInto(const std::vector<double> &X,
                                std::vector<double> &Y) const {
  assert(X.size() == Cols && "vector length mismatch");
  assert(&X != &Y && "multiplyInto output must not alias the input");
  Y.assign(Rows, 0.0);
  // Raw restrict pointers: with a caller-owned output buffer the compiler
  // can no longer assume the stores don't clobber the index/value arrays,
  // which serializes the scatter loop (a measured ~15% hit on Neumann).
  double *__restrict__ Out = Y.data();
  const double *In = X.data();
  const std::size_t *RI = RowIdx.data();
  const double *VA = Values.data();
  for (std::size_t C = 0; C < Cols; ++C) {
    double Scale = In[C];
    if (Scale == 0.0)
      continue;
    for (std::size_t K = colBegin(C); K < colEnd(C); ++K)
      Out[RI[K]] += VA[K] * Scale;
  }
}

std::vector<double>
SparseMatrix::multiplyTranspose(const std::vector<double> &X) const {
  assert(X.size() == Rows && "vector length mismatch");
  std::vector<double> Y(Cols, 0.0);
  for (std::size_t C = 0; C < Cols; ++C) {
    double Sum = 0.0;
    for (std::size_t K = colBegin(C); K < colEnd(C); ++K)
      Sum += Values[K] * X[RowIdx[K]];
    Y[C] = Sum;
  }
  return Y;
}

SparseMatrix SparseMatrix::transpose() const {
  std::vector<Triplet> Entries;
  Entries.reserve(Values.size());
  for (std::size_t C = 0; C < Cols; ++C)
    for (std::size_t K = colBegin(C); K < colEnd(C); ++K)
      Entries.push_back({C, RowIdx[K], Values[K]});
  return fromTriplets(Cols, Rows, std::move(Entries));
}
