//===----------------------------------------------------------------------===//
///
/// \file
/// Mod-p elimination kernels: Gilbert-Peierls sparse LU over GF(p) and
/// the ordered driver combining it with the dense prime-field path. See
/// linalg/ModSolve.h and docs/ARCHITECTURE.md S14.
///
//===----------------------------------------------------------------------===//

#include "linalg/ModSolve.h"

#include "linalg/Dense.h"
#include "linalg/Solve.h"

#include <cassert>
#include <limits>

using namespace mcnk;
using namespace mcnk::linalg;

namespace {
constexpr std::size_t NotPivotal = std::numeric_limits<std::size_t>::max();
} // namespace

bool ModSparseLU::factor(std::size_t Dim,
                         const std::vector<ModTriplet> &Entries) {
  N = Dim;
  LCols.assign(N, {});
  UCols.assign(N, {});
  Perm.assign(N, 0);
  NumOps = 0;

  // Column-wise assembly. Duplicate coordinates may stay duplicated here:
  // the symbolic step deduplicates rows via visit stamps and the numeric
  // step accumulates values in the field, so they merge correctly below.
  std::vector<std::vector<Entry>> ACols(N);
  for (const ModTriplet &T : Entries) {
    assert(T.Row < N && T.Col < N && "mod triplet out of range");
    ACols[T.Col].emplace_back(T.Row, T.Value);
  }

  // PInv[origRow] = pivot step at which the row became pivotal.
  std::vector<std::size_t> PInv(N, NotPivotal);
  std::vector<std::uint64_t> X(N, 0);
  std::vector<unsigned> VisitStamp(N, 0);
  unsigned Stamp = 0;
  std::vector<std::size_t> PostOrder;
  std::vector<std::pair<std::size_t, std::size_t>> Stack;

  for (std::size_t J = 0; J < N; ++J) {
    // --- Symbolic step: nodes reachable from the pattern of A(:,J)
    // through the graph of already-computed L columns, in DFS postorder
    // (identical to SparseLU::factor — reachability is value-free).
    ++Stamp;
    PostOrder.clear();
    for (const Entry &Root0 : ACols[J]) {
      std::size_t Root = Root0.first;
      if (VisitStamp[Root] == Stamp)
        continue;
      VisitStamp[Root] = Stamp;
      X[Root] = 0;
      Stack.clear();
      Stack.emplace_back(Root, 0);
      while (!Stack.empty()) {
        auto &[Node, ChildPos] = Stack.back();
        const std::vector<Entry> *Children =
            PInv[Node] != NotPivotal ? &LCols[PInv[Node]] : nullptr;
        std::size_t NumChildren = Children ? Children->size() : 0;
        bool Descended = false;
        while (ChildPos < NumChildren) {
          std::size_t Child = (*Children)[ChildPos].first;
          ++ChildPos;
          if (VisitStamp[Child] != Stamp) {
            VisitStamp[Child] = Stamp;
            X[Child] = 0;
            Stack.emplace_back(Child, 0);
            Descended = true;
            break;
          }
        }
        if (Descended)
          continue;
        PostOrder.push_back(Node);
        Stack.pop_back();
      }
    }

    // --- Numeric step: x = L \ A(:,J) over the reached pattern.
    for (const Entry &E : ACols[J])
      X[E.first] = F.add(X[E.first], E.second);
    for (std::size_t P = PostOrder.size(); P-- > 0;) {
      std::size_t Node = PostOrder[P];
      if (PInv[Node] == NotPivotal)
        continue;
      std::uint64_t XNode = X[Node];
      if (XNode == 0)
        continue;
      NumOps += LCols[PInv[Node]].size();
      for (const Entry &E : LCols[PInv[Node]])
        X[E.first] = F.sub(X[E.first], F.mul(E.second, XNode));
    }

    // --- Pivot: prefer the diagonal, else the first nonzero non-pivotal
    // row of the pattern (any nonzero is exact in a field; the choice
    // only shapes fill, and is deterministic either way).
    std::size_t PivotRow = NotPivotal;
    if (PInv[J] == NotPivotal && VisitStamp[J] == Stamp && X[J] != 0) {
      PivotRow = J;
    } else {
      for (std::size_t Node : PostOrder) {
        if (PInv[Node] != NotPivotal || X[Node] == 0)
          continue;
        PivotRow = Node;
        break;
      }
    }
    if (PivotRow == NotPivotal)
      return false; // Singular mod p: the unlucky-prime signal.

    std::uint64_t PivotValue = X[PivotRow];
    std::uint64_t PivotInv = F.inv(PivotValue);

    // --- Emit U(:,J) (pivotal rows) and L(:,J) (non-pivotal, scaled).
    for (std::size_t Node : PostOrder) {
      if (PInv[Node] != NotPivotal) {
        if (X[Node] != 0)
          UCols[J].emplace_back(PInv[Node], X[Node]);
        continue;
      }
      if (Node == PivotRow)
        continue;
      if (X[Node] != 0)
        LCols[J].emplace_back(Node, F.mul(X[Node], PivotInv));
    }
    UCols[J].emplace_back(J, PivotValue); // Diagonal last, by convention.
    Perm[J] = PivotRow;
    PInv[PivotRow] = J;
  }

  // Remap L's row indices from original space to pivot space.
  for (std::size_t J = 0; J < N; ++J)
    for (Entry &E : LCols[J]) {
      assert(PInv[E.first] != NotPivotal && "unpivoted row after factor");
      E.first = PInv[E.first];
    }
  return true;
}

void ModSparseLU::solve(std::vector<std::uint64_t> &B) {
  assert(B.size() == N && "RHS length mismatch");
  std::vector<std::uint64_t> &Y = Work;
  Y.resize(N);
  for (std::size_t K = 0; K < N; ++K)
    Y[K] = B[Perm[K]];

  // Forward substitution with unit lower-triangular L.
  for (std::size_t J = 0; J < N; ++J) {
    std::uint64_t YJ = Y[J];
    if (YJ == 0)
      continue;
    for (const Entry &E : LCols[J])
      Y[E.first] = F.sub(Y[E.first], F.mul(E.second, YJ));
  }

  // Back substitution with U (diagonal stored last in each column).
  for (std::size_t J = N; J-- > 0;) {
    const std::vector<Entry> &Col = UCols[J];
    assert(!Col.empty() && Col.back().first == J && "missing U diagonal");
    Y[J] = F.mul(Y[J], F.inv(Col.back().second));
    std::uint64_t YJ = Y[J];
    if (YJ == 0)
      continue;
    for (std::size_t K = 0; K + 1 < Col.size(); ++K)
      Y[Col[K].first] = F.sub(Y[Col[K].first], F.mul(Col[K].second, YJ));
  }
  std::swap(B, Y);
}

std::size_t ModSparseLU::numFactorEntries() const {
  std::size_t Count = 0;
  for (const auto &Col : LCols)
    Count += Col.size();
  for (const auto &Col : UCols)
    Count += Col.size();
  return Count;
}

bool linalg::modSolveOrdered(const PrimeField &F, std::size_t Dim,
                             const std::vector<ModTriplet> &A,
                             std::vector<std::uint64_t> &B,
                             std::size_t NumRhs, OrderingKind Ordering,
                             std::size_t &EliminationOps,
                             std::size_t &FillIn) {
  assert(B.size() == Dim * NumRhs && "RHS shape mismatch");
  if (Dim == 0)
    return true;

  if (Dim <= ModDenseCutoff) {
    // Dense path: orderings do not matter below the cutoff; run the
    // shared elimination loop under the prime-field policy.
    DenseMatrix<std::uint64_t> DA(Dim, Dim);
    for (const ModTriplet &T : A) {
      std::uint64_t &Cell = DA.at(T.Row, T.Col);
      Cell = F.add(Cell, T.Value);
    }
    DenseMatrix<std::uint64_t> DB(Dim, NumRhs);
    for (std::size_t I = 0; I < Dim; ++I)
      for (std::size_t C = 0; C < NumRhs; ++C)
        DB.at(I, C) = B[I * NumRhs + C];
    PrimeFieldOps Ops{F, &EliminationOps};
    if (!denseSolveInPlaceOps(Ops, DA, DB))
      return false;
    for (std::size_t I = 0; I < Dim; ++I)
      for (std::size_t C = 0; C < NumRhs; ++C)
        B[I * NumRhs + C] = DB.at(I, C);
    return true;
  }

  // Fill-reducing permutation over the symmetrized off-diagonal pattern,
  // exactly as the Rational and double engines order their blocks.
  bool Permute = Ordering != OrderingKind::Natural;
  std::vector<std::size_t> Inverse;
  if (Permute) {
    AdjacencyList Adj(Dim);
    for (const ModTriplet &T : A)
      if (T.Row != T.Col)
        Adj[T.Row].push_back(T.Col);
    std::vector<std::size_t> Perm =
        fillReducingOrdering(Ordering, symmetrizedPattern(Adj));
    Inverse = inversePermutation(Perm);
  }

  std::vector<ModTriplet> Permuted;
  const std::vector<ModTriplet> *Assembled = &A;
  if (Permute) {
    Permuted.reserve(A.size());
    for (const ModTriplet &T : A)
      Permuted.push_back({Inverse[T.Row], Inverse[T.Col], T.Value});
    Assembled = &Permuted;
  }

  ModSparseLU LU(F);
  if (!LU.factor(Dim, *Assembled))
    return false;
  EliminationOps += LU.numEliminationOps();
  std::size_t FactorEntries = LU.numFactorEntries();
  FillIn += FactorEntries > A.size() ? FactorEntries - A.size() : 0;

  // Solve P A P^T x' = P b per column; undo the permutation on write-back.
  std::vector<std::uint64_t> Col(Dim);
  for (std::size_t C = 0; C < NumRhs; ++C) {
    for (std::size_t I = 0; I < Dim; ++I)
      Col[Permute ? Inverse[I] : I] = B[I * NumRhs + C];
    LU.solve(Col);
    for (std::size_t I = 0; I < Dim; ++I)
      B[I * NumRhs + C] = Col[Permute ? Inverse[I] : I];
  }
  return true;
}
