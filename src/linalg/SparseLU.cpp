//===----------------------------------------------------------------------===//
///
/// \file
/// Left-looking Gilbert-Peierls sparse LU with partial pivoting: the
/// UMFPACK stand-in that factors I - Q once and back-solves per
/// absorbing column (Sec 5).
///
//===----------------------------------------------------------------------===//

#include "linalg/SparseLU.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace mcnk;
using namespace mcnk::linalg;

namespace {
constexpr std::size_t NotPivotal = std::numeric_limits<std::size_t>::max();
} // namespace

bool SparseLU::factor(const SparseMatrix &A, double PivotTol) {
  assert(A.numRows() == A.numCols() && "LU requires a square matrix");
  N = A.numCols();
  LCols.assign(N, {});
  UCols.assign(N, {});
  Perm.assign(N, 0);
  NumOps = 0;

  // PInv[origRow] = pivot step at which the row became pivotal.
  std::vector<std::size_t> PInv(N, NotPivotal);
  std::vector<double> X(N, 0.0);
  std::vector<unsigned> VisitStamp(N, 0);
  unsigned Stamp = 0;
  std::vector<std::size_t> PostOrder;
  // Explicit DFS stack of (node, next child position) to avoid deep
  // recursion on long elimination chains.
  std::vector<std::pair<std::size_t, std::size_t>> Stack;

  for (std::size_t J = 0; J < N; ++J) {
    // --- Symbolic step: nodes reachable from the pattern of A(:,J) through
    // the graph of already-computed L columns, in DFS postorder.
    ++Stamp;
    PostOrder.clear();
    for (std::size_t K = A.colBegin(J); K < A.colEnd(J); ++K) {
      std::size_t Root = A.rowIndex()[K];
      if (VisitStamp[Root] == Stamp)
        continue;
      VisitStamp[Root] = Stamp;
      X[Root] = 0.0;
      Stack.clear();
      Stack.emplace_back(Root, 0);
      while (!Stack.empty()) {
        auto &[Node, ChildPos] = Stack.back();
        const std::vector<Entry> *Children =
            PInv[Node] != NotPivotal ? &LCols[PInv[Node]] : nullptr;
        std::size_t NumChildren = Children ? Children->size() : 0;
        bool Descended = false;
        while (ChildPos < NumChildren) {
          std::size_t Child = (*Children)[ChildPos].first;
          ++ChildPos;
          if (VisitStamp[Child] != Stamp) {
            VisitStamp[Child] = Stamp;
            X[Child] = 0.0;
            Stack.emplace_back(Child, 0);
            Descended = true;
            break;
          }
        }
        if (Descended)
          continue;
        PostOrder.push_back(Node);
        Stack.pop_back();
      }
    }

    // --- Numeric step: x = L \ A(:,J) over the reached pattern.
    for (std::size_t K = A.colBegin(J); K < A.colEnd(J); ++K)
      X[A.rowIndex()[K]] += A.values()[K];
    for (std::size_t P = PostOrder.size(); P-- > 0;) {
      std::size_t Node = PostOrder[P];
      if (PInv[Node] == NotPivotal)
        continue;
      double XNode = X[Node];
      if (XNode == 0.0)
        continue;
      NumOps += LCols[PInv[Node]].size();
      for (const Entry &E : LCols[PInv[Node]])
        X[E.first] -= E.second * XNode;
    }

    // --- Partial pivoting over non-pivotal rows of the pattern.
    std::size_t PivotRow = NotPivotal;
    double PivotMag = 0.0;
    for (std::size_t Node : PostOrder) {
      if (PInv[Node] != NotPivotal)
        continue;
      double Mag = std::fabs(X[Node]);
      if (Mag > PivotMag) {
        PivotRow = Node;
        PivotMag = Mag;
      }
    }
    if (PivotRow == NotPivotal || PivotMag <= PivotTol)
      return false; // Structurally or numerically singular.

    double PivotValue = X[PivotRow];

    // --- Emit U(:,J) (pivotal rows) and L(:,J) (non-pivotal rows, scaled).
    for (std::size_t Node : PostOrder) {
      if (PInv[Node] != NotPivotal) {
        if (X[Node] != 0.0)
          UCols[J].emplace_back(PInv[Node], X[Node]);
        continue;
      }
      if (Node == PivotRow)
        continue;
      if (X[Node] != 0.0)
        LCols[J].emplace_back(Node, X[Node] / PivotValue);
    }
    UCols[J].emplace_back(J, PivotValue); // Diagonal last, by convention.
    Perm[J] = PivotRow;
    PInv[PivotRow] = J;
  }

  // Remap L's row indices from original space to pivot space so the solver
  // can run forward substitution directly.
  for (std::size_t J = 0; J < N; ++J)
    for (Entry &E : LCols[J]) {
      assert(PInv[E.first] != NotPivotal && "unpivoted row after factor");
      E.first = PInv[E.first];
    }
  return true;
}

void SparseLU::solve(std::vector<double> &B) {
  assert(B.size() == N && "RHS length mismatch");
  // Apply the row permutation: y = P b. Work is a reused scratch so the
  // per-column back-solve loop of the chain engines does not reallocate.
  std::vector<double> &Y = Work;
  Y.resize(N);
  for (std::size_t K = 0; K < N; ++K)
    Y[K] = B[Perm[K]];

  // Forward substitution with unit lower-triangular L.
  for (std::size_t J = 0; J < N; ++J) {
    double YJ = Y[J];
    if (YJ == 0.0)
      continue;
    for (const Entry &E : LCols[J])
      Y[E.first] -= E.second * YJ;
  }

  // Back substitution with U (diagonal entry stored last in each column).
  for (std::size_t J = N; J-- > 0;) {
    const std::vector<Entry> &Col = UCols[J];
    assert(!Col.empty() && Col.back().first == J && "missing U diagonal");
    Y[J] /= Col.back().second;
    double YJ = Y[J];
    if (YJ == 0.0)
      continue;
    for (std::size_t K = 0; K + 1 < Col.size(); ++K)
      Y[Col[K].first] -= Col[K].second * YJ;
  }
  std::swap(B, Y);
}

std::size_t SparseLU::numFactorEntries() const {
  std::size_t Count = 0;
  for (const auto &Col : LCols)
    Count += Col.size();
  for (const auto &Col : UCols)
    Count += Col.size();
  return Count;
}
