//===----------------------------------------------------------------------===//
///
/// \file
/// Fill-reducing orderings for sparse factorization. Gaussian elimination
/// on a sparse matrix creates fill-in wherever a pivot row scatters into
/// rows that did not previously share its pattern; permuting the matrix
/// symmetrically (P A P^T) before factoring can shrink that fill by orders
/// of magnitude. Two classic heuristics are provided:
///
///   - Reverse Cuthill–McKee: breadth-first level sets from a peripheral
///     vertex, reversed — minimizes bandwidth, ideal for the long chain /
///     ring / grid blocks network models produce.
///   - Minimum degree: greedily eliminates the vertex of smallest degree
///     in the elimination graph (neighbors form a clique after each step)
///     — the classic fill heuristic behind AMD, here in its exact
///     elimination-graph form (our solve blocks are small enough that the
///     quotient-graph machinery of true AMD is not needed).
///
/// Both operate on the *symmetrized* nonzero pattern A + A^T, as is
/// standard for unsymmetric LU with partial pivoting (the pattern of
/// P A P^T is what drives fill regardless of numeric pivoting).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_LINALG_ORDERING_H
#define MCNK_LINALG_ORDERING_H

#include <cstddef>
#include <vector>

namespace mcnk {
namespace linalg {

/// Selection of the fill-reducing ordering applied (inside each solve
/// block) before sparse LU factorization.
enum class OrderingKind {
  Natural,            ///< Identity permutation: factor in given order.
  ReverseCuthillMcKee,///< Bandwidth-minimizing level-set ordering.
  MinimumDegree,      ///< Greedy minimum-degree (AMD-style) ordering.
};

/// Short stable name for logs / JSON ("natural", "rcm", "amd").
const char *orderingName(OrderingKind Kind);

/// Undirected adjacency lists over vertices [0, Adj.size()). Neighbor
/// lists need not be sorted; self-loops and duplicates are tolerated.
using AdjacencyList = std::vector<std::vector<std::size_t>>;

/// The symmetrized, deduplicated, self-loop-free closure of \p Adj:
/// u ∈ result[v] iff v ∈ result[u]. The canonical input to the orderings
/// below when the original pattern is directed (as Q-matrix patterns are).
AdjacencyList symmetrizedPattern(const AdjacencyList &Adj);

/// Reverse Cuthill–McKee over \p Adj (must be symmetric — pass through
/// symmetrizedPattern first for directed patterns). Returns a permutation
/// Perm with Perm[k] = the original vertex placed at position k. Each
/// connected component starts from a minimum-degree vertex and is visited
/// breadth-first with neighbors in increasing-degree order; the final
/// sequence is reversed (the "R" in RCM).
std::vector<std::size_t> reverseCuthillMcKee(const AdjacencyList &Adj);

/// Greedy minimum-degree ordering over \p Adj (must be symmetric).
/// Eliminates the minimum-degree vertex of the evolving elimination graph
/// at every step, connecting its remaining neighbors into a clique. Ties
/// break toward the smallest vertex index, so the result is deterministic.
/// Returns Perm with Perm[k] = original vertex eliminated k-th.
std::vector<std::size_t> minimumDegreeOrdering(const AdjacencyList &Adj);

/// Dispatches on \p Kind; Natural returns the identity permutation.
std::vector<std::size_t> fillReducingOrdering(OrderingKind Kind,
                                              const AdjacencyList &Adj);

/// Inverse of a permutation: Result[Perm[k]] = k.
std::vector<std::size_t>
inversePermutation(const std::vector<std::size_t> &Perm);

/// True if \p Perm is a permutation of [0, Perm.size()).
bool isPermutation(const std::vector<std::size_t> &Perm);

} // namespace linalg
} // namespace mcnk

#endif // MCNK_LINALG_ORDERING_H
