//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal JSON value / parser / serializer for the mcnk_serve line
/// protocol (docs/ARCHITECTURE.md S16). Deliberately small: the protocol
/// needs objects, arrays, strings, integers, booleans and null — nothing
/// more — and pulling in a dependency for that would violate the repo's
/// no-new-deps rule.
///
/// The parser treats its input as untrusted (it arrives over a socket):
/// fully bounds-checked, nesting depth capped, integer-overflow checked,
/// and every failure is a clean error string, never UB. Exact rationals
/// cross the protocol as strings ("3/8"), so no floating point is needed
/// for answers; a Double kind exists only to accept numeric inputs like
/// tolerances without contortions.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SERVE_JSON_H
#define MCNK_SERVE_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mcnk {
namespace serve {

/// A JSON document node. Objects preserve insertion order (responses are
/// diff-friendly and tests can golden them) and are looked up linearly —
/// protocol objects have a handful of keys.
class Json {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool V);
  static Json integer(int64_t V);
  static Json number(double V);
  static Json string(std::string V);
  static Json array();
  static Json object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  int64_t asInt() const { return I; }
  double asDouble() const { return K == Kind::Int ? static_cast<double>(I) : D; }
  const std::string &asString() const { return Str; }

  std::vector<Json> &elements() { return Elems; }
  const std::vector<Json> &elements() const { return Elems; }
  void push(Json V) { Elems.push_back(std::move(V)); }

  std::vector<std::pair<std::string, Json>> &members() { return Members; }
  const std::vector<std::pair<std::string, Json>> &members() const {
    return Members;
  }
  void set(std::string Key, Json V);
  /// Null when absent (pointer, so "absent" and "present null" are
  /// distinguishable).
  const Json *find(const std::string &Key) const;

  /// Compact single-line rendering (the line protocol is one JSON value
  /// per '\n'-terminated line, so serialization never emits newlines).
  std::string dump() const;

private:
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string Str;
  std::vector<Json> Elems;
  std::vector<std::pair<std::string, Json>> Members;
};

/// Parses one complete JSON value from \p Text (trailing whitespace
/// allowed, anything else is an error). Returns false with a diagnostic
/// in \p Error on malformed input.
bool parseJson(const std::string &Text, Json &Out, std::string *Error);

} // namespace serve
} // namespace mcnk

#endif // MCNK_SERVE_JSON_H
