//===----------------------------------------------------------------------===//
///
/// \file
/// JSON parse/serialize for the serve protocol. Recursive-descent with an
/// explicit depth cap: request bytes come off a socket, and "[[[[..." must
/// exhaust a counter, not the stack.
///
//===----------------------------------------------------------------------===//

#include "serve/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace mcnk;
using namespace mcnk::serve;

Json Json::boolean(bool V) {
  Json J;
  J.K = Kind::Bool;
  J.B = V;
  return J;
}
Json Json::integer(int64_t V) {
  Json J;
  J.K = Kind::Int;
  J.I = V;
  return J;
}
Json Json::number(double V) {
  Json J;
  J.K = Kind::Double;
  J.D = V;
  return J;
}
Json Json::string(std::string V) {
  Json J;
  J.K = Kind::String;
  J.Str = std::move(V);
  return J;
}
Json Json::array() {
  Json J;
  J.K = Kind::Array;
  return J;
}
Json Json::object() {
  Json J;
  J.K = Kind::Object;
  return J;
}

void Json::set(std::string Key, Json V) {
  for (auto &[K2, V2] : Members)
    if (K2 == Key) {
      V2 = std::move(V);
      return;
    }
  Members.emplace_back(std::move(Key), std::move(V));
}

const Json *Json::find(const std::string &Key) const {
  for (const auto &[K2, V2] : Members)
    if (K2 == Key)
      return &V2;
  return nullptr;
}

namespace {

void dumpString(const std::string &S, std::string &Out) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C; // UTF-8 passes through byte-for-byte.
      }
    }
  }
  Out += '"';
}

void dumpInto(const Json &V, std::string &Out) {
  switch (V.kind()) {
  case Json::Kind::Null:
    Out += "null";
    return;
  case Json::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    return;
  case Json::Kind::Int:
    Out += std::to_string(V.asInt());
    return;
  case Json::Kind::Double: {
    double D = V.asDouble();
    if (std::isfinite(D)) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.17g", D);
      Out += Buf;
    } else {
      Out += "null"; // JSON has no Inf/NaN.
    }
    return;
  }
  case Json::Kind::String:
    dumpString(V.asString(), Out);
    return;
  case Json::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Json &E : V.elements()) {
      if (!First)
        Out += ',';
      First = false;
      dumpInto(E, Out);
    }
    Out += ']';
    return;
  }
  case Json::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[K, E] : V.members()) {
      if (!First)
        Out += ',';
      First = false;
      dumpString(K, Out);
      Out += ':';
      dumpInto(E, Out);
    }
    Out += '}';
    return;
  }
  }
}

/// Recursive-descent parser over untrusted bytes.
struct Parser {
  const char *Data;
  std::size_t Size;
  std::size_t Pos = 0;
  std::string *Error;
  static constexpr unsigned MaxDepth = 64;

  bool fail(const std::string &Msg) {
    if (Error)
      *Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Size && (Data[Pos] == ' ' || Data[Pos] == '\t' ||
                          Data[Pos] == '\n' || Data[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word, std::size_t Len) {
    if (Size - Pos < Len)
      return false;
    for (std::size_t I = 0; I < Len; ++I)
      if (Data[Pos + I] != Word[I])
        return false;
    Pos += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // Opening quote, already checked by caller.
    Out.clear();
    while (Pos < Size) {
      unsigned char C = static_cast<unsigned char>(Data[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      if (Size - Pos < 2)
        return fail("truncated escape");
      char E = Data[Pos + 1];
      Pos += 2;
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Size - Pos < 4)
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (unsigned I = 0; I < 4; ++I) {
          char H = Data[Pos + I];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        Pos += 4;
        // Encode the BMP code point as UTF-8. Surrogate pairs are not
        // needed by the protocol (all keys/verbs are ASCII); reject them
        // cleanly rather than emit broken UTF-8.
        if (Code >= 0xd800 && Code <= 0xdfff)
          return fail("surrogate \\u escapes unsupported");
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xc0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3f));
        } else {
          Out += static_cast<char>(0xe0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
          Out += static_cast<char>(0x80 | (Code & 0x3f));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(Json &Out) {
    std::size_t Start = Pos;
    if (Pos < Size && Data[Pos] == '-')
      ++Pos;
    bool Integral = true;
    while (Pos < Size && std::isdigit(static_cast<unsigned char>(Data[Pos])))
      ++Pos;
    if (Pos < Size && (Data[Pos] == '.' || Data[Pos] == 'e' ||
                       Data[Pos] == 'E')) {
      Integral = false;
      while (Pos < Size &&
             (std::isdigit(static_cast<unsigned char>(Data[Pos])) ||
              Data[Pos] == '.' || Data[Pos] == 'e' || Data[Pos] == 'E' ||
              Data[Pos] == '+' || Data[Pos] == '-'))
        ++Pos;
    }
    std::string Text(Data + Start, Pos - Start);
    if (Text.empty() || Text == "-")
      return fail("malformed number");
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Text.c_str(), &End, 10);
      if (errno != 0 || End != Text.c_str() + Text.size())
        return fail("integer out of range");
      Out = Json::integer(V);
      return true;
    }
    errno = 0;
    char *End = nullptr;
    double V = std::strtod(Text.c_str(), &End);
    if (End != Text.c_str() + Text.size())
      return fail("malformed number");
    Out = Json::number(V);
    return true;
  }

  bool parseValue(Json &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipSpace();
    if (Pos >= Size)
      return fail("unexpected end of input");
    char C = Data[Pos];
    if (C == 'n')
      return literal("null", 4) ? (Out = Json::null(), true)
                                : fail("bad literal");
    if (C == 't')
      return literal("true", 4) ? (Out = Json::boolean(true), true)
                                : fail("bad literal");
    if (C == 'f')
      return literal("false", 5) ? (Out = Json::boolean(false), true)
                                 : fail("bad literal");
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json::string(std::move(S));
      return true;
    }
    if (C == '[') {
      ++Pos;
      Out = Json::array();
      skipSpace();
      if (Pos < Size && Data[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        Json Elem;
        if (!parseValue(Elem, Depth + 1))
          return false;
        Out.push(std::move(Elem));
        skipSpace();
        if (Pos >= Size)
          return fail("unterminated array");
        if (Data[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Data[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '{') {
      ++Pos;
      Out = Json::object();
      skipSpace();
      if (Pos < Size && Data[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipSpace();
        if (Pos >= Size || Data[Pos] != '"')
          return fail("expected object key");
        std::string Key;
        if (!parseString(Key))
          return false;
        skipSpace();
        if (Pos >= Size || Data[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        Json Val;
        if (!parseValue(Val, Depth + 1))
          return false;
        Out.members().emplace_back(std::move(Key), std::move(Val));
        skipSpace();
        if (Pos >= Size)
          return fail("unterminated object");
        if (Data[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Data[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '-' || std::isdigit(static_cast<unsigned char>(C)))
      return parseNumber(Out);
    return fail("unexpected character");
  }
};

} // namespace

std::string Json::dump() const {
  std::string Out;
  dumpInto(*this, Out);
  return Out;
}

bool serve::parseJson(const std::string &Text, Json &Out,
                      std::string *Error) {
  Parser P{Text.c_str(), Text.size(), 0, Error};
  if (!P.parseValue(Out, 0))
    return false;
  P.skipSpace();
  if (P.Pos != P.Size)
    return P.fail("trailing garbage after value");
  return true;
}
