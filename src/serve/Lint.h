//===----------------------------------------------------------------------===//
///
/// \file
/// The shared lint pipeline behind `mcnk_cli lint` and the serve daemon's
/// `lint` verb: one function collecting the parser's advisory warnings,
/// the S15 abstract-interpretation findings (ast/Analyze.h), and the S17
/// field-dependency findings (ast/Deps.h) into one source-ordered stream,
/// plus the two renderers — the classic `file:line:col: warning[check]:
/// message` text line and the JSON object both consumers emit, so the CLI
/// `--json` flag and the daemon agree byte-for-byte.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SERVE_LINT_H
#define MCNK_SERVE_LINT_H

#include "ast/Context.h"
#include "parser/Parser.h"
#include "serve/Json.h"

#include <string>
#include <vector>

namespace mcnk {
namespace serve {

/// One lint diagnostic, flattened for rendering. Line == 0 means the
/// finding has no source location (programmatically built subtrees); the
/// text renderer then omits the line:col prefix and the JSON renderer
/// emits line and col as 0.
struct LintEntry {
  unsigned Line = 0;
  unsigned Col = 0;
  std::string Check;
  std::string Message;
};

/// Runs the full lint pipeline over an already-parsed program: \p
/// Warnings (the parser's advisory stream) merged with ast::analyze()
/// and ast::analyzeDeps() findings, stably sorted by source position.
std::vector<LintEntry>
lintProgram(const ast::Context &Ctx, const ast::Node *Program,
            const std::vector<parser::Diagnostic> &Warnings);

/// `file:line:col: warning[check]: message` (the format pinned by
/// ast_analyze_test and the lint_smoke ctests).
std::string renderLintEntry(const std::string &File, const LintEntry &E);

/// {"file": ..., "line": N, "col": N, "check": ..., "message": ...}
Json lintEntryJson(const std::string &File, const LintEntry &E);

/// The whole stream as a JSON array of lintEntryJson objects.
Json lintJson(const std::string &File, const std::vector<LintEntry> &Entries);

} // namespace serve
} // namespace mcnk

#endif // MCNK_SERVE_LINT_H
