//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived verification daemon (docs/ARCHITECTURE.md S16). The
/// paper's pipeline pays a large one-time compilation cost per program and
/// then answers queries against the compiled FDD almost for free; a
/// short-lived CLI throws that investment away on every invocation. This
/// layer keeps it: a Service owns the shared S12 CompileCache (warmed from
/// and persisted to an on-disk CacheStore) and a persistent worker pool,
/// and each client connection gets a Session that multiplexes over them.
///
/// Protocol: line-delimited JSON. One request object per '\n'-terminated
/// line, one response object per line, strictly in order. Verbs:
///
///   {"verb":"parse",   "program":"..."}
///   {"verb":"compile", "program":"...", "solver":"exact"}
///   {"verb":"lint",    "program":"...", "file":"<label>"}   // diagnostics
///   {"verb":"query",   "program":"...", "query":"delivery",
///    "inputs":[{"sw":1,"pt":0}, ...]}                  // batched
///   {"verb":"query",   "program":"...", "query":"hop-stats",
///    "inputs":[...], "hopField":"hops"}
///   {"verb":"query",   "program":"...", "program2":"...",
///    "query":"equivalent" | "refines"}
///   {"verb":"stats"}   {"verb":"gc"}   {"verb":"shutdown"}
///
/// `lint` runs the S15 analyzer plus the S17 field-dependency checks and
/// answers {"ok":true, "findings":[{file,line,col,check,message}, ...]} —
/// the same objects `mcnk_cli lint --json` prints (serve/Lint.h is the
/// shared pipeline). Query verbs accept "slice": true to run S17
/// query-directed cone-of-influence slicing before compiling: delivery
/// slices for the delivery observation, hop-stats for its counter field,
/// equivalent/refines for the all-fields observation. Sliced queries are
/// self-contained (they bypass the session's program slot — the sliced
/// diagram depends on the query, not just the program) and the response
/// carries a "slice" stats object; answers are identical with and without
/// slicing, a contract the oracle's CheckSlice lane enforces.
///
/// Every request may carry an "id", echoed in the response. Responses are
/// {"ok":true, ...} or {"ok":false, "error":"..."}; exact probabilities
/// travel as rational strings ("3/8"), never floats. Malformed requests
/// get an error response — the daemon treats socket bytes as untrusted
/// and must never abort on them.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SERVE_SERVER_H
#define MCNK_SERVE_SERVER_H

#include "analysis/Verifier.h"
#include "ast/Context.h"
#include "fdd/CacheStore.h"
#include "fdd/CompileCache.h"
#include "serve/Json.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mcnk {
namespace serve {

/// Process-wide shared state: one compile cache (optionally backed by a
/// persistent CacheStore), one worker pool, request counters. Thread-safe;
/// shared by every Session.
class Service {
public:
  struct Options {
    /// Path of the persistent FDD store; empty disables persistence.
    std::string StorePath;
    /// Compile-cache capacity (entries).
    std::size_t CacheCapacity = 1u << 12;
    /// Worker threads for parallel `case` compilation; 0 = hardware
    /// concurrency, 1 = compile serially (no pool).
    unsigned Threads = 0;
    fdd::CacheStore::Options Store;
  };

  /// Builds the service: opens the store (failing loudly on a version
  /// mismatch or unreadable file), warms the cache from it, then installs
  /// the insert observer so every future cache miss is appended to disk —
  /// in that order, or warming would re-append every record it just read.
  static std::unique_ptr<Service> create(const Options &Opts,
                                         std::string *Error);

  fdd::CompileCache &cache() { return Cache; }
  /// Null when persistence is disabled.
  fdd::CacheStore *store() { return Store.get(); }
  /// Null when Threads == 1.
  ThreadPool *pool() { return Pool.get(); }
  const Options &options() const { return Opts; }

  /// Disk-cache entries loaded into the compile cache at startup.
  std::size_t warmedEntries() const { return Warmed; }

  void countRequest(bool Ok) {
    ++Requests;
    if (!Ok)
      ++Errors;
  }
  uint64_t requests() const { return Requests.load(); }
  uint64_t errors() const { return Errors.load(); }

  /// Aggregates one sliced compile into the service-wide S17 counters
  /// (reported by the stats verb).
  void countSlice(const ast::SliceStats &S) {
    ++SliceRequests;
    SliceAssignmentsRemoved += S.AssignmentsRemoved;
    SliceNodesBefore += S.NodesBefore;
    SliceNodesAfter += S.NodesAfter;
  }
  uint64_t sliceRequests() const { return SliceRequests.load(); }
  uint64_t sliceAssignmentsRemoved() const {
    return SliceAssignmentsRemoved.load();
  }
  uint64_t sliceNodesBefore() const { return SliceNodesBefore.load(); }
  uint64_t sliceNodesAfter() const { return SliceNodesAfter.load(); }

private:
  explicit Service(const Options &O) : Opts(O), Cache(O.CacheCapacity) {}

  Options Opts;
  fdd::CompileCache Cache;
  std::unique_ptr<fdd::CacheStore> Store;
  std::unique_ptr<ThreadPool> Pool;
  std::size_t Warmed = 0;
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> Errors{0};
  std::atomic<uint64_t> SliceRequests{0};
  std::atomic<uint64_t> SliceAssignmentsRemoved{0};
  std::atomic<uint64_t> SliceNodesBefore{0};
  std::atomic<uint64_t> SliceNodesAfter{0};
};

/// One client's worker state. NOT thread-safe — each connection (or the
/// stdio loop) owns exactly one Session and calls handleLine serially,
/// which is what lets it hold per-solver FddManagers (themselves not
/// thread-safe) while all cross-session sharing goes through the
/// Service's thread-safe cache and store.
///
/// The session keeps the last compiled program per solver kind, so a
/// batch of queries against one program compiles once and the manager is
/// gc'd only when the program changes.
class Session {
public:
  explicit Session(Service &Service_) : Svc(Service_) {}

  /// Handles one request line, returns one response line (no trailing
  /// newline). Never aborts on malformed input. Sets \p Shutdown (when
  /// non-null) if the request asked the connection to close.
  std::string handleLine(const std::string &Line, bool *Shutdown = nullptr);

private:
  /// Per-solver-kind compile state: its own Verifier (hence FddManager)
  /// plus the source text and root of the last compiled program.
  struct Slot {
    std::unique_ptr<analysis::Verifier> V;
    std::unique_ptr<ast::Context> Ctx;
    std::string ProgramText;
    fdd::FddRef Root = 0;
    bool HasProgram = false;
  };

  Json dispatch(const Json &Request, bool *Shutdown);
  Json handleParse(const Json &Request);
  Json handleCompile(const Json &Request);
  Json handleLint(const Json &Request);
  Json handleQuery(const Json &Request);
  Json handleSlicedQuery(const Json &Request, const std::string &Program,
                         const std::string &Query, markov::SolverKind Kind);
  Json handleStats();
  Json handleGc();

  Slot &slotFor(markov::SolverKind Kind);
  /// Compiles \p Program into the slot (or reuses the cached compile when
  /// the text matches). Returns false with \p Error set on parse or
  /// guardedness failure. \p WasCached reports session-level reuse.
  bool ensureCompiled(Slot &S, markov::SolverKind Kind,
                      const std::string &Program, std::string &Error,
                      bool &WasCached);

  Service &Svc;
  Slot Slots[4];
};

/// Serves one Session over stdin/stdout-style streams: reads request
/// lines from \p In until EOF or a shutdown verb, writing each response
/// line to \p Out (flushed per line — clients block on responses).
/// Returns the number of requests served.
std::size_t runStdio(Service &Svc, std::istream &In, std::ostream &Out);

/// Line-protocol TCP server on 127.0.0.1 (loopback only — the protocol is
/// unauthenticated by design; remote access is out of scope). One thread
/// and one Session per connection, all sharing the Service.
class TcpServer {
public:
  explicit TcpServer(Service &Service_) : Svc(Service_) {}
  ~TcpServer() { stop(); }

  /// Binds and starts accepting. \p Port 0 picks an ephemeral port (see
  /// port()). Returns false with \p Error set on failure.
  bool start(uint16_t Port, std::string *Error);
  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }
  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent.
  void stop();

private:
  void acceptLoop();
  void serveConnection(int Fd);

  Service &Svc;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::atomic<bool> Stopping{false};
  std::thread Acceptor;
  std::mutex ConnMutex;
  std::vector<int> ConnFds;
  std::vector<std::thread> ConnThreads;
};

/// Maps "exact" / "direct" / "iterative" / "modular-exact" to a solver
/// kind; returns false on unknown names. Inverse of solverKindName.
bool parseSolverKind(const std::string &Name, markov::SolverKind &Out);
const char *solverKindName(markov::SolverKind Kind);

} // namespace serve
} // namespace mcnk

#endif // MCNK_SERVE_SERVER_H
