//===----------------------------------------------------------------------===//
///
/// \file
/// Verification daemon implementation: Service wiring (store → warm →
/// observer, in that order), the per-connection Session request loop, the
/// stdio driver, and a small loopback TCP front end.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "ast/Printer.h"
#include "ast/Traversal.h"
#include "fdd/Export.h"
#include "parser/Parser.h"
#include "serve/Lint.h"

#include <istream>
#include <ostream>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace mcnk;
using namespace mcnk::serve;

bool serve::parseSolverKind(const std::string &Name,
                            markov::SolverKind &Out) {
  if (Name == "exact")
    Out = markov::SolverKind::Exact;
  else if (Name == "direct")
    Out = markov::SolverKind::Direct;
  else if (Name == "iterative")
    Out = markov::SolverKind::Iterative;
  else if (Name == "modular-exact")
    Out = markov::SolverKind::ModularExact;
  else
    return false;
  return true;
}

const char *serve::solverKindName(markov::SolverKind Kind) {
  switch (Kind) {
  case markov::SolverKind::Exact:
    return "exact";
  case markov::SolverKind::Direct:
    return "direct";
  case markov::SolverKind::Iterative:
    return "iterative";
  case markov::SolverKind::ModularExact:
    return "modular-exact";
  }
  return "exact";
}

//===----------------------------------------------------------------------===//
// Service
//===----------------------------------------------------------------------===//

std::unique_ptr<Service> Service::create(const Options &Opts,
                                         std::string *Error) {
  std::unique_ptr<Service> Svc(new Service(Opts));
  if (!Opts.StorePath.empty()) {
    Svc->Store = fdd::CacheStore::open(Opts.StorePath, Error, Opts.Store);
    if (!Svc->Store)
      return nullptr;
    // Warm BEFORE installing the observer: the observer appends every new
    // cache entry to the store, and the warmed entries came *from* the
    // store.
    Svc->Warmed = Svc->Store->warm(Svc->Cache);
    fdd::CacheStore *Store = Svc->Store.get();
    Svc->Cache.setInsertObserver(
        [Store](const ast::ProgramHash &Key, markov::SolverKind Solver,
                const std::shared_ptr<const fdd::PortableFdd> &Diagram) {
          // Best-effort persistence: an I/O failure loses durability for
          // this entry, not correctness — the in-memory cache still has it.
          Store->append(Key, Solver, *Diagram);
        });
  }
  if (Opts.Threads != 1)
    Svc->Pool = std::make_unique<ThreadPool>(Opts.Threads);
  return Svc;
}

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

namespace {

Json errorResponse(const std::string &Message) {
  Json R = Json::object();
  R.set("ok", Json::boolean(false));
  R.set("error", Json::string(Message));
  return R;
}

Json okResponse() {
  Json R = Json::object();
  R.set("ok", Json::boolean(true));
  return R;
}

/// Pulls a required string member; null return means the error response
/// has been written to \p Err.
const std::string *stringMember(const Json &Request, const char *Key,
                                Json &Err) {
  const Json *V = Request.find(Key);
  if (!V || !V->isString()) {
    Err = errorResponse(std::string("missing or non-string \"") + Key +
                        "\" member");
    return nullptr;
  }
  return &V->asString();
}

markov::SolverKind requestSolver(const Json &Request, bool &Ok, Json &Err) {
  Ok = true;
  const Json *V = Request.find("solver");
  if (!V)
    return markov::SolverKind::Exact;
  markov::SolverKind Kind;
  if (!V->isString() || !parseSolverKind(V->asString(), Kind)) {
    Ok = false;
    Err = errorResponse("unknown solver (expected \"exact\", \"direct\", "
                        "\"iterative\" or \"modular-exact\")");
    return markov::SolverKind::Exact;
  }
  return Kind;
}

/// Decodes one {"field": value, ...} input object against the program's
/// field table. Every field the program mentions must be assigned; fields
/// absent from the object default to 0 (matching the examples' harnesses).
bool decodeInput(const Json &Obj, const FieldTable &Fields, Packet &Out,
                 std::string &Error) {
  if (!Obj.isObject()) {
    Error = "each input must be an object of field: value pairs";
    return false;
  }
  Out = Packet(Fields.numFields());
  for (const auto &[Name, Value] : Obj.members()) {
    FieldId Id = Fields.lookup(Name);
    if (Id == FieldTable::NotFound) {
      Error = "input mentions field \"" + Name +
              "\" which the program never uses";
      return false;
    }
    if (!Value.isInt() || Value.asInt() < 0 ||
        Value.asInt() > static_cast<int64_t>(UINT32_MAX)) {
      Error = "input field \"" + Name + "\" must be a non-negative integer";
      return false;
    }
    Out.set(Id, static_cast<FieldValue>(Value.asInt()));
  }
  return true;
}

/// The per-compile S17 slice statistics as the response's "slice" object.
Json sliceStatsJson(const ast::SliceStats &S) {
  Json O = Json::object();
  O.set("assignmentsRemoved",
        Json::integer(static_cast<int64_t>(S.AssignmentsRemoved)));
  O.set("nodesBefore", Json::integer(static_cast<int64_t>(S.NodesBefore)));
  O.set("nodesAfter", Json::integer(static_cast<int64_t>(S.NodesAfter)));
  O.set("fieldsBefore", Json::integer(static_cast<int64_t>(S.FieldsBefore)));
  O.set("fieldsRelevant",
        Json::integer(static_cast<int64_t>(S.FieldsRelevant)));
  return O;
}

} // namespace

Session::Slot &Session::slotFor(markov::SolverKind Kind) {
  return Slots[static_cast<std::size_t>(Kind)];
}

bool Session::ensureCompiled(Slot &S, markov::SolverKind Kind,
                             const std::string &Program, std::string &Error,
                             bool &WasCached) {
  if (S.HasProgram && S.ProgramText == Program) {
    WasCached = true;
    return true;
  }
  WasCached = false;
  auto Ctx = std::make_unique<ast::Context>();
  parser::ParseResult Parsed = parser::parseProgram(Program, *Ctx);
  if (!Parsed.ok()) {
    Error = Parsed.Diagnostics.empty() ? "parse error"
                                       : Parsed.Diagnostics.front().render();
    return false;
  }
  if (!ast::isGuarded(Parsed.Program)) {
    Error = "program is outside the guarded fragment (contains `*` or a "
            "union of non-predicates)";
    return false;
  }
  if (!S.V)
    S.V = std::make_unique<analysis::Verifier>(Kind);
  fdd::CompileOptions Options;
  Options.Cache = &Svc.cache();
  Options.Pool = Svc.pool();
  Options.ParallelCase = Svc.pool() != nullptr;
  fdd::FddRef NewRoot = fdd::compile(S.V->manager(), Parsed.Program, Options);
  bool Replacing = S.HasProgram;
  S.Ctx = std::move(Ctx);
  S.ProgramText = Program;
  S.Root = NewRoot;
  S.HasProgram = true;
  // The previous program's diagram is garbage now; reclaim it before the
  // next request rather than let a long-lived session accrete every
  // program it ever saw (gc remaps S.Root in place).
  if (Replacing)
    S.V->manager().gc({&S.Root});
  return true;
}

Json Session::handleParse(const Json &Request) {
  Json Err;
  const std::string *Program = stringMember(Request, "program", Err);
  if (!Program)
    return Err;
  ast::Context Ctx;
  parser::ParseResult Parsed = parser::parseProgram(*Program, Ctx);
  if (!Parsed.ok())
    return errorResponse(Parsed.Diagnostics.empty()
                             ? "parse error"
                             : Parsed.Diagnostics.front().render());
  Json R = okResponse();
  R.set("nodes",
        Json::integer(static_cast<int64_t>(ast::countNodes(Parsed.Program))));
  R.set("depth",
        Json::integer(static_cast<int64_t>(ast::depth(Parsed.Program))));
  R.set("guarded", Json::boolean(ast::isGuarded(Parsed.Program)));
  Json Fields = Json::array();
  for (std::size_t I = 0; I < Ctx.fields().numFields(); ++I)
    Fields.push(Json::string(Ctx.fields().name(static_cast<FieldId>(I))));
  R.set("fields", std::move(Fields));
  Json Warnings = Json::array();
  for (const parser::Diagnostic &W : Parsed.Warnings)
    Warnings.push(Json::string(W.render()));
  R.set("warnings", std::move(Warnings));
  return R;
}

Json Session::handleCompile(const Json &Request) {
  Json Err;
  const std::string *Program = stringMember(Request, "program", Err);
  if (!Program)
    return Err;
  bool SolverOk = false;
  markov::SolverKind Kind = requestSolver(Request, SolverOk, Err);
  if (!SolverOk)
    return Err;
  Slot &S = slotFor(Kind);
  std::string Error;
  bool WasCached = false;
  if (!ensureCompiled(S, Kind, *Program, Error, WasCached))
    return errorResponse(Error);
  Json R = okResponse();
  R.set("solver", Json::string(solverKindName(Kind)));
  R.set("sessionCached", Json::boolean(WasCached));
  R.set("fddNodes", Json::integer(static_cast<int64_t>(
                        S.V->manager().diagramSize(S.Root))));
  return R;
}

Json Session::handleLint(const Json &Request) {
  Json Err;
  const std::string *Program = stringMember(Request, "program", Err);
  if (!Program)
    return Err;
  // Optional display label for the findings' "file" member (clients
  // linting editor buffers pass their path); defaults to "<program>".
  std::string File = "<program>";
  if (const Json *F = Request.find("file")) {
    if (!F->isString())
      return errorResponse("\"file\" must be a string");
    File = F->asString();
  }
  ast::Context Ctx;
  parser::ParseResult Parsed = parser::parseProgram(*Program, Ctx);
  if (!Parsed.ok())
    return errorResponse(Parsed.Diagnostics.empty()
                             ? "parse error"
                             : Parsed.Diagnostics.front().render());
  std::vector<LintEntry> Entries =
      lintProgram(Ctx, Parsed.Program, Parsed.Warnings);
  Json R = okResponse();
  R.set("clean", Json::boolean(Entries.empty()));
  R.set("findings", lintJson(File, Entries));
  return R;
}

/// The self-contained sliced query path (S17): parse into a fresh
/// context, compile with a SliceHook for the query's observation set, and
/// answer from the transient verifier. Deliberately bypasses the
/// session's program slot — the sliced diagram depends on the query, not
/// just the program text, so caching it under the text would poison
/// unsliced queries (the shared S12 cache still makes repeats cheap, and
/// its fingerprint pass runs over the sliced tree).
Json Session::handleSlicedQuery(const Json &Request,
                                const std::string &Program,
                                const std::string &Query,
                                markov::SolverKind Kind) {
  Json Err;
  ast::Context Ctx;
  parser::ParseResult Parsed = parser::parseProgram(Program, Ctx);
  if (!Parsed.ok())
    return errorResponse(Parsed.Diagnostics.empty()
                             ? "parse error"
                             : Parsed.Diagnostics.front().render());
  if (!ast::isGuarded(Parsed.Program))
    return errorResponse("program is outside the guarded fragment");

  ast::ObservationSet Obs = ast::ObservationSet::delivery();
  FieldId Hop = FieldTable::NotFound;
  if (Query == "hop-stats") {
    const std::string *HopField = stringMember(Request, "hopField", Err);
    if (!HopField)
      return Err;
    Hop = Ctx.fields().lookup(*HopField);
    if (Hop == FieldTable::NotFound)
      return errorResponse("hop field \"" + *HopField +
                           "\" is not used by the program");
    Obs = ast::ObservationSet::fields({Hop});
  } else if (Query != "delivery") {
    return errorResponse("unknown query \"" + Query +
                         "\" (expected \"delivery\", \"hop-stats\", "
                         "\"equivalent\" or \"refines\")");
  }

  const Json *Inputs = Request.find("inputs");
  if (!Inputs || !Inputs->isArray() || Inputs->elements().empty())
    return errorResponse("\"" + Query +
                         "\" needs a non-empty \"inputs\" array");
  std::string Error;
  std::vector<Packet> Packets;
  Packets.reserve(Inputs->elements().size());
  for (const Json &Obj : Inputs->elements()) {
    Packet P;
    if (!decodeInput(Obj, Ctx.fields(), P, Error))
      return errorResponse(Error);
    Packets.push_back(std::move(P));
  }

  analysis::Verifier V(Kind);
  fdd::CompileOptions Options;
  Options.Cache = &Svc.cache();
  Options.Pool = Svc.pool();
  Options.ParallelCase = Svc.pool() != nullptr;
  ast::SliceStats Stats;
  fdd::SliceHook Hook;
  Hook.Ctx = &Ctx;
  Hook.Observed = Obs;
  Hook.Stats = &Stats;
  Options.Slice = &Hook;
  fdd::FddRef Root = fdd::compile(V.manager(), Parsed.Program, Options);
  Svc.countSlice(Stats);

  Json R = okResponse();
  if (Query == "delivery") {
    Json Results = Json::array();
    Rational Total;
    for (const Packet &P : Packets) {
      Rational Prob = V.deliveryProbability(Root, P);
      Total += Prob;
      Results.push(Json::string(Prob.toString()));
    }
    R.set("results", std::move(Results));
    R.set("average",
          Json::string(
              (Total / Rational(static_cast<int64_t>(Packets.size())))
                  .toString()));
  } else {
    analysis::HopStats HS = V.hopStats(Root, Packets, Hop);
    R.set("delivered", Json::string(HS.Delivered.toString()));
    Json Histogram = Json::object();
    for (const auto &[Hops, Mass] : HS.Histogram)
      Histogram.set(std::to_string(Hops), Json::string(Mass.toString()));
    R.set("histogram", std::move(Histogram));
    R.set("expectedGivenDelivered",
          Json::number(HS.expectedGivenDelivered()));
  }
  R.set("slice", sliceStatsJson(Stats));
  return R;
}

Json Session::handleQuery(const Json &Request) {
  Json Err;
  const std::string *Program = stringMember(Request, "program", Err);
  if (!Program)
    return Err;
  const std::string *Query = stringMember(Request, "query", Err);
  if (!Query)
    return Err;
  bool SolverOk = false;
  markov::SolverKind Kind = requestSolver(Request, SolverOk, Err);
  if (!SolverOk)
    return Err;
  bool Slice = false;
  if (const Json *S = Request.find("slice")) {
    if (!S->isBool())
      return errorResponse("\"slice\" must be a boolean");
    Slice = S->asBool();
  }

  if (*Query == "equivalent" || *Query == "refines") {
    const std::string *Program2 = stringMember(Request, "program2", Err);
    if (!Program2)
      return Err;
    // Two-program queries are self-contained: both sides parse into ONE
    // fresh context (field ids are interning order and the FDD variable
    // order follows them, so they must agree) and compile into one
    // transient manager (equivalence is reference equality *within* a
    // manager). Nothing touches the session slot, so a long-lived session
    // doesn't accrete one arena's worth of AST per comparison — the
    // shared compile cache still makes repeats cheap.
    ast::Context Ctx;
    parser::ParseResult Parsed1 = parser::parseProgram(*Program, Ctx);
    if (!Parsed1.ok())
      return errorResponse(Parsed1.Diagnostics.empty()
                               ? "parse error"
                               : Parsed1.Diagnostics.front().render());
    parser::ParseResult Parsed2 = parser::parseProgram(*Program2, Ctx);
    if (!Parsed2.ok())
      return errorResponse(Parsed2.Diagnostics.empty()
                               ? "parse error in \"program2\""
                               : Parsed2.Diagnostics.front().render());
    if (!ast::isGuarded(Parsed1.Program))
      return errorResponse("program is outside the guarded fragment");
    if (!ast::isGuarded(Parsed2.Program))
      return errorResponse("\"program2\" is outside the guarded fragment");
    analysis::Verifier V(Kind);
    fdd::CompileOptions Options;
    Options.Cache = &Svc.cache();
    Options.Pool = Svc.pool();
    Options.ParallelCase = Svc.pool() != nullptr;
    // With "slice": true, both sides slice for the all-fields observation
    // (the comparison observes whole output packets, so this is a
    // verified no-op rewrite). fdd::compile consumes the hook from its
    // private options copy, so re-pointing Slice between compiles is
    // safe.
    ast::SliceStats Stats1, Stats2;
    fdd::SliceHook Hook1, Hook2;
    if (Slice) {
      Hook1.Ctx = &Ctx;
      Hook1.Observed = ast::ObservationSet::all();
      Hook1.Stats = &Stats1;
      Options.Slice = &Hook1;
    }
    fdd::FddRef P = fdd::compile(V.manager(), Parsed1.Program, Options);
    if (Slice) {
      Hook2.Ctx = &Ctx;
      Hook2.Observed = ast::ObservationSet::all();
      Hook2.Stats = &Stats2;
      Options.Slice = &Hook2;
    }
    fdd::FddRef Q = fdd::compile(V.manager(), Parsed2.Program, Options);
    bool Holds =
        *Query == "equivalent" ? V.equivalent(P, Q) : V.refines(P, Q);
    Json R = okResponse();
    R.set("holds", Json::boolean(Holds));
    if (Slice) {
      Svc.countSlice(Stats1);
      Svc.countSlice(Stats2);
      R.set("slice", sliceStatsJson(Stats1));
      R.set("slice2", sliceStatsJson(Stats2));
    }
    return R;
  }

  if (Slice)
    // Sliced packet queries compile a query-specific diagram; keep them
    // out of the session's (program-text-keyed) slot.
    return handleSlicedQuery(Request, *Program, *Query, Kind);

  Slot &S = slotFor(Kind);
  std::string Error;
  bool WasCached = false;
  if (!ensureCompiled(S, Kind, *Program, Error, WasCached))
    return errorResponse(Error);

  // The packet-level queries: decode the (batched) inputs once.
  const Json *Inputs = Request.find("inputs");
  if (!Inputs || !Inputs->isArray() || Inputs->elements().empty())
    return errorResponse("\"" + *Query +
                         "\" needs a non-empty \"inputs\" array");
  std::vector<Packet> Packets;
  Packets.reserve(Inputs->elements().size());
  for (const Json &Obj : Inputs->elements()) {
    Packet P;
    if (!decodeInput(Obj, S.Ctx->fields(), P, Error))
      return errorResponse(Error);
    Packets.push_back(std::move(P));
  }

  if (*Query == "delivery") {
    Json Results = Json::array();
    Rational Total;
    for (const Packet &P : Packets) {
      Rational Prob = S.V->deliveryProbability(S.Root, P);
      Total += Prob;
      Results.push(Json::string(Prob.toString()));
    }
    Json R = okResponse();
    R.set("results", std::move(Results));
    R.set("average",
          Json::string(
              (Total / Rational(static_cast<int64_t>(Packets.size())))
                  .toString()));
    return R;
  }

  if (*Query == "hop-stats") {
    const std::string *HopField = stringMember(Request, "hopField", Err);
    if (!HopField)
      return Err;
    FieldId Hop = S.Ctx->fields().lookup(*HopField);
    if (Hop == FieldTable::NotFound)
      return errorResponse("hop field \"" + *HopField +
                           "\" is not used by the program");
    analysis::HopStats Stats = S.V->hopStats(S.Root, Packets, Hop);
    Json R = okResponse();
    R.set("delivered", Json::string(Stats.Delivered.toString()));
    Json Histogram = Json::object();
    for (const auto &[Hops, Mass] : Stats.Histogram)
      Histogram.set(std::to_string(Hops), Json::string(Mass.toString()));
    R.set("histogram", std::move(Histogram));
    R.set("expectedGivenDelivered",
          Json::number(Stats.expectedGivenDelivered()));
    return R;
  }

  return errorResponse("unknown query \"" + *Query +
                       "\" (expected \"delivery\", \"hop-stats\", "
                       "\"equivalent\" or \"refines\")");
}

Json Session::handleStats() {
  Json R = okResponse();
  fdd::CompileCache::Stats C = Svc.cache().stats();
  Json Cache = Json::object();
  Cache.set("entries", Json::integer(static_cast<int64_t>(C.Entries)));
  Cache.set("hits", Json::integer(static_cast<int64_t>(C.Hits)));
  Cache.set("misses", Json::integer(static_cast<int64_t>(C.Misses)));
  Cache.set("insertions", Json::integer(static_cast<int64_t>(C.Insertions)));
  Cache.set("duplicateInserts",
            Json::integer(static_cast<int64_t>(C.DuplicateInserts)));
  Cache.set("evictions", Json::integer(static_cast<int64_t>(C.Evictions)));
  Cache.set("storedNodes",
            Json::integer(static_cast<int64_t>(C.StoredNodes)));
  R.set("cache", std::move(Cache));
  if (fdd::CacheStore *Store = Svc.store()) {
    fdd::CacheStore::Stats St = Store->stats();
    Json S = Json::object();
    S.set("path", Json::string(Store->path()));
    S.set("liveRecords", Json::integer(static_cast<int64_t>(St.LiveRecords)));
    S.set("deadRecords", Json::integer(static_cast<int64_t>(St.DeadRecords)));
    S.set("fileBytes", Json::integer(static_cast<int64_t>(St.FileBytes)));
    S.set("tornBytesDropped",
          Json::integer(static_cast<int64_t>(St.TornBytesDropped)));
    S.set("appends", Json::integer(static_cast<int64_t>(St.Appends)));
    S.set("compactions",
          Json::integer(static_cast<int64_t>(St.Compactions)));
    R.set("store", std::move(S));
  }
  R.set("warmedEntries",
        Json::integer(static_cast<int64_t>(Svc.warmedEntries())));
  R.set("requests", Json::integer(static_cast<int64_t>(Svc.requests())));
  R.set("errors", Json::integer(static_cast<int64_t>(Svc.errors())));
  Json Sl = Json::object();
  Sl.set("requests",
         Json::integer(static_cast<int64_t>(Svc.sliceRequests())));
  Sl.set("assignmentsRemoved",
         Json::integer(static_cast<int64_t>(Svc.sliceAssignmentsRemoved())));
  Sl.set("nodesBefore",
         Json::integer(static_cast<int64_t>(Svc.sliceNodesBefore())));
  Sl.set("nodesAfter",
         Json::integer(static_cast<int64_t>(Svc.sliceNodesAfter())));
  R.set("slice", std::move(Sl));
  return R;
}

Json Session::handleGc() {
  std::size_t FreedInners = 0, FreedLeaves = 0;
  for (Slot &S : Slots) {
    if (!S.V)
      continue;
    std::vector<fdd::FddRef *> Roots;
    if (S.HasProgram)
      Roots.push_back(&S.Root);
    fdd::GcStats G = S.V->manager().gc(Roots);
    FreedInners += G.FreedInners;
    FreedLeaves += G.FreedLeaves;
  }
  Json R = okResponse();
  R.set("freedInners", Json::integer(static_cast<int64_t>(FreedInners)));
  R.set("freedLeaves", Json::integer(static_cast<int64_t>(FreedLeaves)));
  if (fdd::CacheStore *Store = Svc.store()) {
    std::string Error;
    if (!Store->maybeCompact(&Error))
      return errorResponse("store compaction failed: " + Error);
    R.set("storeCompactions",
          Json::integer(static_cast<int64_t>(Store->stats().Compactions)));
  }
  return R;
}

Json Session::dispatch(const Json &Request, bool *Shutdown) {
  if (!Request.isObject())
    return errorResponse("request must be a JSON object");
  Json Err;
  const std::string *Verb = stringMember(Request, "verb", Err);
  if (!Verb)
    return Err;
  if (*Verb == "parse")
    return handleParse(Request);
  if (*Verb == "compile")
    return handleCompile(Request);
  if (*Verb == "lint")
    return handleLint(Request);
  if (*Verb == "query")
    return handleQuery(Request);
  if (*Verb == "stats")
    return handleStats();
  if (*Verb == "gc")
    return handleGc();
  if (*Verb == "shutdown") {
    if (Shutdown)
      *Shutdown = true;
    return okResponse();
  }
  return errorResponse("unknown verb \"" + *Verb +
                       "\" (expected parse, compile, lint, query, stats, gc "
                       "or shutdown)");
}

std::string Session::handleLine(const std::string &Line, bool *Shutdown) {
  Json Request;
  std::string ParseError;
  Json Response;
  if (!parseJson(Line, Request, &ParseError)) {
    Response = errorResponse("malformed JSON: " + ParseError);
  } else {
    Response = dispatch(Request, Shutdown);
  }
  // Echo the request id (if any) so pipelined clients can match responses.
  if (Request.isObject()) {
    if (const Json *Id = Request.find("id"))
      Response.set("id", *Id);
  }
  const Json *Ok = Response.find("ok");
  Svc.countRequest(Ok && Ok->isBool() && Ok->asBool());
  return Response.dump();
}

//===----------------------------------------------------------------------===//
// stdio driver
//===----------------------------------------------------------------------===//

std::size_t serve::runStdio(Service &Svc, std::istream &In,
                            std::ostream &Out) {
  Session S(Svc);
  std::string Line;
  std::size_t Served = 0;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    bool Shutdown = false;
    Out << S.handleLine(Line, &Shutdown) << "\n";
    Out.flush();
    ++Served;
    if (Shutdown)
      break;
  }
  return Served;
}

//===----------------------------------------------------------------------===//
// TCP front end
//===----------------------------------------------------------------------===//

bool TcpServer::start(uint16_t Port, std::string *Error) {
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    if (Error)
      *Error = "cannot create socket";
    return false;
  }
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFd, 16) < 0) {
    if (Error)
      *Error = "cannot bind 127.0.0.1:" + std::to_string(Port);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) ==
      0)
    BoundPort = ntohs(Addr.sin_port);
  Stopping = false;
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void TcpServer::acceptLoop() {
  while (!Stopping) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (Stopping)
        break;
      continue;
    }
    std::lock_guard<std::mutex> Lock(ConnMutex);
    ConnFds.push_back(Fd);
    ConnThreads.emplace_back([this, Fd] { serveConnection(Fd); });
  }
}

void TcpServer::serveConnection(int Fd) {
  Session S(Svc);
  std::string Buffer;
  char Chunk[4096];
  bool Shutdown = false;
  while (!Shutdown && !Stopping) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0)
      break;
    Buffer.append(Chunk, static_cast<std::size_t>(N));
    std::size_t Start = 0;
    for (std::size_t NL; !Shutdown &&
                         (NL = Buffer.find('\n', Start)) != std::string::npos;
         Start = NL + 1) {
      std::string Line = Buffer.substr(Start, NL - Start);
      if (Line.empty())
        continue;
      std::string Response = S.handleLine(Line, &Shutdown) + "\n";
      std::size_t Sent = 0;
      while (Sent < Response.size()) {
        ssize_t W =
            ::write(Fd, Response.data() + Sent, Response.size() - Sent);
        if (W <= 0) {
          Shutdown = true;
          break;
        }
        Sent += static_cast<std::size_t>(W);
      }
    }
    Buffer.erase(0, Start);
  }
  ::close(Fd);
}

void TcpServer::stop() {
  if (Stopping.exchange(true))
    return;
  if (ListenFd >= 0) {
    ::shutdown(ListenFd, SHUT_RDWR);
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (Acceptor.joinable())
    Acceptor.join();
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RDWR);
    ConnFds.clear();
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
}
