//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the shared lint pipeline: collection, the pinned text
/// rendering, and the JSON shape both `mcnk_cli lint --json` and the
/// serve daemon's `lint` verb emit.
///
//===----------------------------------------------------------------------===//

#include "serve/Lint.h"

#include "ast/Analyze.h"
#include "ast/Deps.h"

#include <algorithm>

using namespace mcnk;
using namespace mcnk::serve;

std::vector<LintEntry>
serve::lintProgram(const ast::Context &Ctx, const ast::Node *Program,
                   const std::vector<parser::Diagnostic> &Warnings) {
  std::vector<LintEntry> Entries;
  for (const parser::Diagnostic &W : Warnings)
    Entries.push_back({W.Line, W.Column, W.Check, W.Message});
  auto Add = [&](const std::vector<ast::Finding> &Findings) {
    for (const ast::Finding &F : Findings)
      Entries.push_back({F.Loc.valid() ? F.Loc.Line : 0,
                         F.Loc.valid() ? F.Loc.Column : 0,
                         ast::checkName(F.Check), F.Message});
  };
  Add(ast::analyze(Ctx, Program));
  Add(ast::analyzeDeps(Ctx, Program));
  // Stable by position: each producer already orders its own findings
  // (located first, then by position, then by check), so the merge keeps
  // that order within a position.
  std::stable_sort(Entries.begin(), Entries.end(),
                   [](const LintEntry &A, const LintEntry &B) {
                     return A.Line != B.Line ? A.Line < B.Line
                                             : A.Col < B.Col;
                   });
  return Entries;
}

std::string serve::renderLintEntry(const std::string &File,
                                   const LintEntry &E) {
  std::string Out = File;
  if (E.Line > 0)
    Out += ":" + std::to_string(E.Line) + ":" + std::to_string(E.Col);
  Out += ": warning[" + E.Check + "]: " + E.Message;
  return Out;
}

Json serve::lintEntryJson(const std::string &File, const LintEntry &E) {
  Json O = Json::object();
  O.set("file", Json::string(File));
  O.set("line", Json::integer(E.Line));
  O.set("col", Json::integer(E.Col));
  O.set("check", Json::string(E.Check));
  O.set("message", Json::string(E.Message));
  return O;
}

Json serve::lintJson(const std::string &File,
                     const std::vector<LintEntry> &Entries) {
  Json A = Json::array();
  for (const LintEntry &E : Entries)
    A.push(lintEntryJson(File, E));
  return A;
}
