//===----------------------------------------------------------------------===//
///
/// \file
/// prismlite: an explicit-state DTMC model checker for the PRISM subset
/// emitted by the translation backend (and for hand-written models of the
/// same shape). This is the repository's stand-in for the PRISM binary
/// (see docs/ARCHITECTURE.md): parse a `dtmc` module, build the reachable state
/// space, and compute reachability probabilities Pr[F goal] with either
/// the exact rational engine or the iterative floating-point engine
/// (PRISM's "exact" and default configurations in Fig 10).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_PRISM_CHECKER_H
#define MCNK_PRISM_CHECKER_H

#include "markov/Absorbing.h"
#include "support/Rational.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mcnk {
namespace prism {

/// Boolean guard expression over model variables (parsed form).
struct GuardExpr {
  enum class Kind : uint8_t { True, False, Eq, Neq, Not, And, Or };
  Kind K = Kind::True;
  unsigned Var = 0;   // Eq/Neq
  uint32_t Value = 0; // Eq/Neq
  std::vector<GuardExpr> Children; // Not (1), And/Or (2)

  bool eval(const std::vector<uint32_t> &Valuation) const;
};

/// One guarded command: guard -> p1:(updates) + ... + pk:(updates).
struct Command {
  GuardExpr Guard;
  struct Alternative {
    Rational Prob;
    std::vector<std::pair<unsigned, uint32_t>> Updates; // (var, value)
  };
  std::vector<Alternative> Alternatives;
};

/// A parsed DTMC module.
struct Model {
  std::vector<std::string> VarNames;
  std::vector<uint32_t> LowerBounds;
  std::vector<uint32_t> UpperBounds;
  std::vector<uint32_t> Init;
  std::vector<Command> Commands;

  unsigned varIndex(const std::string &Name) const;
};

/// Parses the PRISM subset; returns false with a message on malformed
/// input (including syntax accepted by PRISM but outside our subset).
bool parseModel(const std::string &Source, Model &Out, std::string &Error);

/// Parses a standalone guard expression (for properties) against the
/// model's variables.
bool parseGuard(const std::string &Text, const Model &M, GuardExpr &Out,
                std::string &Error);

/// Result of a reachability query.
struct CheckResult {
  Rational Probability;
  std::size_t NumStates = 0;      ///< Reachable states explored.
  std::size_t NumTransitions = 0; ///< Transition entries.
};

/// Computes Pr[F goal] from the initial valuation by explicit-state
/// exploration and an absorbing-chain solve. States where no command is
/// enabled, or more than one is, are model errors (guards must partition).
/// Returns false with a message on such errors or solver failure.
bool checkReachability(const Model &M, const GuardExpr &Goal,
                       markov::SolverKind Solver, CheckResult &Out,
                       std::string &Error);

} // namespace prism
} // namespace mcnk

#endif // MCNK_PRISM_CHECKER_H
