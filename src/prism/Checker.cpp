//===----------------------------------------------------------------------===//
///
/// \file
/// prismlite: parser for the emitted PRISM `dtmc` subset, reachable
/// state-space construction, and reachability probability computation by
/// Gaussian elimination or Gauss-Seidel iteration.
///
//===----------------------------------------------------------------------===//

#include "prism/Checker.h"

#include "support/Error.h"
#include "support/Hashing.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace mcnk;
using namespace mcnk::prism;

bool GuardExpr::eval(const std::vector<uint32_t> &Valuation) const {
  switch (K) {
  case Kind::True:
    return true;
  case Kind::False:
    return false;
  case Kind::Eq:
    return Valuation[Var] == Value;
  case Kind::Neq:
    return Valuation[Var] != Value;
  case Kind::Not:
    return !Children[0].eval(Valuation);
  case Kind::And:
    return Children[0].eval(Valuation) && Children[1].eval(Valuation);
  case Kind::Or:
    return Children[0].eval(Valuation) || Children[1].eval(Valuation);
  }
  MCNK_UNREACHABLE("bad guard kind");
}

unsigned Model::varIndex(const std::string &Name) const {
  for (unsigned I = 0; I < VarNames.size(); ++I)
    if (VarNames[I] == Name)
      return I;
  return ~0u;
}

namespace {

/// Shared scanner for the model and guard grammars.
struct Scanner {
  const std::string &Text;
  std::size_t Pos = 0;
  std::string Error;

  void skip() {
    while (Pos < Text.size()) {
      if (std::isspace(static_cast<unsigned char>(Text[Pos]))) {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '/' && Pos + 1 < Text.size() &&
          Text[Pos + 1] == '/') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      break;
    }
  }

  bool literal(const char *Word) {
    skip();
    std::size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  bool peekLiteral(const char *Word) {
    std::size_t Save = Pos;
    bool Ok = literal(Word);
    Pos = Save;
    return Ok;
  }

  bool ident(std::string &Out) {
    skip();
    if (Pos >= Text.size() ||
        (!std::isalpha(static_cast<unsigned char>(Text[Pos])) &&
         Text[Pos] != '_'))
      return false;
    Out.clear();
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_'))
      Out.push_back(Text[Pos++]);
    return true;
  }

  bool number(uint64_t &Out) {
    skip();
    if (Pos >= Text.size() ||
        !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return false;
    Out = 0;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      Out = Out * 10 + static_cast<uint64_t>(Text[Pos++] - '0');
    return true;
  }

  /// nat | nat '/' nat | nat '.' digits — exact rational.
  bool probability(Rational &Out) {
    uint64_t A;
    if (!number(A))
      return false;
    if (Pos < Text.size() && Text[Pos] == '/') {
      ++Pos;
      uint64_t B;
      if (!number(B) || B == 0)
        return false;
      Out = Rational(BigInt::fromUnsigned(A), BigInt::fromUnsigned(B));
      return true;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      std::string Digits;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        Digits.push_back(Text[Pos++]);
      if (Digits.empty())
        return false;
      BigInt Num = BigInt::fromUnsigned(A);
      for (char D : Digits)
        Num = Num * BigInt(10) + BigInt(D - '0');
      Out = Rational(std::move(Num),
                     BigInt::pow(BigInt(10),
                                 static_cast<unsigned>(Digits.size())));
      return true;
    }
    Out = Rational(BigInt::fromUnsigned(A), BigInt(1));
    return true;
  }
};

/// Recursive-descent guard parser: or := and ('|' and)*,
/// and := unary ('&' unary)*, unary := '!' unary | '(' or ')' | atom.
struct GuardParser {
  Scanner &S;
  const Model &M;

  bool parseOr(GuardExpr &Out) {
    GuardExpr Lhs;
    if (!parseAnd(Lhs))
      return false;
    while (S.literal("|")) {
      GuardExpr Rhs;
      if (!parseAnd(Rhs))
        return false;
      GuardExpr Combined;
      Combined.K = GuardExpr::Kind::Or;
      Combined.Children = {std::move(Lhs), std::move(Rhs)};
      Lhs = std::move(Combined);
    }
    Out = std::move(Lhs);
    return true;
  }

  bool parseAnd(GuardExpr &Out) {
    GuardExpr Lhs;
    if (!parseUnary(Lhs))
      return false;
    while (S.literal("&")) {
      GuardExpr Rhs;
      if (!parseUnary(Rhs))
        return false;
      GuardExpr Combined;
      Combined.K = GuardExpr::Kind::And;
      Combined.Children = {std::move(Lhs), std::move(Rhs)};
      Lhs = std::move(Combined);
    }
    Out = std::move(Lhs);
    return true;
  }

  bool parseUnary(GuardExpr &Out) {
    if (S.literal("!")) {
      GuardExpr Inner;
      if (!parseUnary(Inner))
        return false;
      Out.K = GuardExpr::Kind::Not;
      Out.Children = {std::move(Inner)};
      return true;
    }
    if (S.literal("(")) {
      if (!parseOr(Out))
        return false;
      return S.literal(")");
    }
    if (S.literal("true")) {
      Out.K = GuardExpr::Kind::True;
      return true;
    }
    if (S.literal("false")) {
      Out.K = GuardExpr::Kind::False;
      return true;
    }
    std::string Name;
    if (!S.ident(Name)) {
      S.Error = "expected a guard atom";
      return false;
    }
    unsigned Var = M.varIndex(Name);
    if (Var == ~0u) {
      S.Error = "unknown variable '" + Name + "'";
      return false;
    }
    bool Neq = false;
    if (S.literal("!=")) {
      Neq = true;
    } else if (!S.literal("=")) {
      S.Error = "expected '=' or '!=' after variable";
      return false;
    }
    uint64_t Value;
    if (!S.number(Value)) {
      S.Error = "expected a number after comparison";
      return false;
    }
    Out.K = Neq ? GuardExpr::Kind::Neq : GuardExpr::Kind::Eq;
    Out.Var = Var;
    Out.Value = static_cast<uint32_t>(Value);
    return true;
  }
};

} // namespace

bool prism::parseModel(const std::string &Source, Model &Out,
                       std::string &Error) {
  Scanner S{Source, 0, {}};
  Out = Model();
  if (!S.literal("dtmc")) {
    Error = "expected 'dtmc' header";
    return false;
  }
  if (!S.literal("module")) {
    Error = "expected 'module'";
    return false;
  }
  std::string Name;
  if (!S.ident(Name)) {
    Error = "expected module name";
    return false;
  }

  // Variable declarations: ident : [lo..hi] init n;
  for (;;) {
    if (S.peekLiteral("[]") || S.peekLiteral("endmodule"))
      break;
    std::string Var;
    uint64_t Lo, Hi, Init;
    if (!S.ident(Var) || !S.literal(":") || !S.literal("[") ||
        !S.number(Lo) || !S.literal("..") || !S.number(Hi) ||
        !S.literal("]") || !S.literal("init") || !S.number(Init) ||
        !S.literal(";")) {
      Error = "malformed variable declaration near offset " +
              std::to_string(S.Pos);
      return false;
    }
    if (Init < Lo || Init > Hi) {
      Error = "initial value out of range for '" + Var + "'";
      return false;
    }
    Out.VarNames.push_back(Var);
    Out.LowerBounds.push_back(static_cast<uint32_t>(Lo));
    Out.UpperBounds.push_back(static_cast<uint32_t>(Hi));
    Out.Init.push_back(static_cast<uint32_t>(Init));
  }

  // Commands: [] guard -> p : update (+ p : update)* ;
  while (!S.literal("endmodule")) {
    if (!S.literal("[]")) {
      Error = "expected '[]' command near offset " + std::to_string(S.Pos);
      return false;
    }
    Command Cmd;
    GuardParser GP{S, Out};
    if (!GP.parseOr(Cmd.Guard)) {
      Error = S.Error.empty() ? "malformed guard" : S.Error;
      return false;
    }
    if (!S.literal("->")) {
      Error = "expected '->' after guard";
      return false;
    }
    do {
      Command::Alternative Alt;
      if (!S.probability(Alt.Prob)) {
        Error = "expected a probability";
        return false;
      }
      if (!S.literal(":")) {
        Error = "expected ':' after probability";
        return false;
      }
      if (S.literal("true")) {
        // No-op update.
      } else {
        do {
          std::string Var;
          uint64_t Value;
          if (!S.literal("(") || !S.ident(Var) || !S.literal("'") ||
              !S.literal("=") || !S.number(Value) || !S.literal(")")) {
            Error = "malformed update near offset " + std::to_string(S.Pos);
            return false;
          }
          unsigned Idx = Out.varIndex(Var);
          if (Idx == ~0u) {
            Error = "unknown variable '" + Var + "' in update";
            return false;
          }
          Alt.Updates.emplace_back(Idx, static_cast<uint32_t>(Value));
        } while (S.literal("&"));
      }
      Cmd.Alternatives.push_back(std::move(Alt));
    } while (S.literal("+"));
    if (!S.literal(";")) {
      Error = "expected ';' after command";
      return false;
    }
    // Probabilities must sum to one.
    Rational Total;
    for (const auto &Alt : Cmd.Alternatives)
      Total += Alt.Prob;
    if (!Total.isOne()) {
      Error = "command probabilities sum to " + Total.toString();
      return false;
    }
    Out.Commands.push_back(std::move(Cmd));
  }
  S.skip();
  if (S.Pos != Source.size()) {
    Error = "trailing content after 'endmodule'";
    return false;
  }
  return true;
}

bool prism::parseGuard(const std::string &Text, const Model &M,
                       GuardExpr &Out, std::string &Error) {
  Scanner S{Text, 0, {}};
  GuardParser GP{S, M};
  if (!GP.parseOr(Out)) {
    Error = S.Error.empty() ? "malformed guard" : S.Error;
    return false;
  }
  S.skip();
  if (S.Pos != Text.size()) {
    Error = "trailing content in guard";
    return false;
  }
  return true;
}

bool prism::checkReachability(const Model &M, const GuardExpr &Goal,
                              markov::SolverKind Solver, CheckResult &Out,
                              std::string &Error) {
  // Explicit-state BFS from the initial valuation.
  using Valuation = std::vector<uint32_t>;
  std::unordered_map<Valuation, std::size_t, RangeHash> Index;
  std::vector<Valuation> States;
  auto Intern = [&](const Valuation &V) {
    auto [It, Inserted] = Index.emplace(V, States.size());
    if (Inserted)
      States.push_back(V);
    return It->second;
  };

  markov::AbsorbingChain Chain;
  Chain.NumAbsorbing = 1; // The goal.
  std::vector<bool> IsGoal;

  Intern(M.Init);
  IsGoal.push_back(Goal.eval(M.Init));
  for (std::size_t S = 0; S < States.size(); ++S) {
    if (IsGoal[S])
      continue; // Absorbing target; successors irrelevant.
    Valuation Current = States[S];
    const Command *Enabled = nullptr;
    for (const Command &Cmd : M.Commands) {
      if (!Cmd.Guard.eval(Current))
        continue;
      if (Enabled) {
        Error = "multiple commands enabled in one state (guards overlap)";
        return false;
      }
      Enabled = &Cmd;
    }
    if (!Enabled) {
      Error = "no command enabled (guards are not exhaustive)";
      return false;
    }
    for (const Command::Alternative &Alt : Enabled->Alternatives) {
      Valuation Next = Current;
      for (const auto &[Var, Value] : Alt.Updates) {
        if (Value < M.LowerBounds[Var] || Value > M.UpperBounds[Var]) {
          Error = "update drives '" + M.VarNames[Var] + "' out of range";
          return false;
        }
        Next[Var] = Value;
      }
      std::size_t T = Intern(Next);
      if (T == IsGoal.size())
        IsGoal.push_back(Goal.eval(Next));
      if (IsGoal[T])
        Chain.REntries.push_back({S, 0, Alt.Prob});
      else
        Chain.QEntries.push_back({S, T, Alt.Prob});
    }
  }
  Chain.NumTransient = States.size();
  Out.NumStates = States.size();
  Out.NumTransitions = Chain.QEntries.size() + Chain.REntries.size();

  std::size_t Start = 0;
  if (IsGoal[Start]) {
    Out.Probability = Rational(1);
    return true;
  }

  if (Solver == markov::SolverKind::Exact ||
      Solver == markov::SolverKind::ModularExact) {
    linalg::DenseMatrix<Rational> A;
    bool Ok = Solver == markov::SolverKind::Exact
                  ? markov::solveAbsorptionExact(Chain, A)
                  : markov::solveAbsorptionModular(Chain, A);
    if (!Ok) {
      Error = "absorbing solve failed";
      return false;
    }
    Out.Probability = A.at(Start, 0);
    return true;
  }
  linalg::DenseMatrix<double> A;
  if (!markov::solveAbsorptionDouble(Chain, A, Solver)) {
    Error = "absorbing solve failed";
    return false;
  }
  Out.Probability = Rational::fromDouble(A.at(Start, 0));
  return true;
}
