//===----------------------------------------------------------------------===//
///
/// \file
/// The PRISM backend (Sec 5.2): Thompson-style guarded-command
/// construction from guarded ProbNetKAT, epsilon-chain collapse of basic
/// blocks, and rendering into PRISM's input language.
///
//===----------------------------------------------------------------------===//

#include "prism/Translate.h"

#include "ast/Traversal.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <cassert>
#include <map>
#include <sstream>

using namespace mcnk;
using namespace mcnk::prism;
using namespace mcnk::ast;

namespace {

/// One automaton transition: fires when Guard holds (null = true), with
/// probability Prob, applying Updates, moving to Target.
struct Edge {
  const Node *Guard = nullptr; // Predicate AST; nullptr means `true`.
  Rational Prob = Rational(1);
  std::vector<std::pair<FieldId, FieldValue>> Updates;
  unsigned Target = 0;
};

/// Thompson-style automaton builder. States 0.. are allocated on demand;
/// state edges obey the well-formedness conditions of §5.2 (per state:
/// either one family of guarded prob-1 edges with mutually exclusive
/// guards, or one family of unguarded probabilistic edges summing to 1).
class AutomatonBuilder {
public:
  AutomatonBuilder(Context &C) : Ctx(C) {
    Entry = fresh();
    Done = fresh();
    Drop = fresh();
  }

  unsigned fresh() {
    States.emplace_back();
    return static_cast<unsigned>(States.size() - 1);
  }

  void addEdge(unsigned From, Edge E) { States[From].push_back(std::move(E)); }

  /// Emits the automaton for \p P between \p From and a returned exit.
  unsigned build(const Node *P, unsigned From) {
    if (P->isPredicate()) {
      // Predicates become a guard split: pass / drop.
      unsigned Exit = fresh();
      addEdge(From, {P, Rational(1), {}, Exit});
      addEdge(From, {Ctx.negate(P), Rational(1), {}, Drop});
      return Exit;
    }
    switch (P->kind()) {
    case NodeKind::Assign: {
      const auto *A = cast<AssignNode>(P);
      unsigned Exit = fresh();
      addEdge(From, {nullptr, Rational(1), {{A->field(), A->value()}}, Exit});
      return Exit;
    }
    case NodeKind::Seq: {
      const auto *S = cast<SeqNode>(P);
      return build(S->rhs(), build(S->lhs(), From));
    }
    case NodeKind::Choice: {
      const auto *C = cast<ChoiceNode>(P);
      unsigned LEntry = fresh(), REntry = fresh(), Exit = fresh();
      addEdge(From, {nullptr, C->probability(), {}, LEntry});
      addEdge(From,
              {nullptr, Rational(1) - C->probability(), {}, REntry});
      epsilon(build(C->lhs(), LEntry), Exit);
      epsilon(build(C->rhs(), REntry), Exit);
      return Exit;
    }
    case NodeKind::IfThenElse: {
      const auto *I = cast<IfThenElseNode>(P);
      unsigned TEntry = fresh(), EEntry = fresh(), Exit = fresh();
      addEdge(From, {I->cond(), Rational(1), {}, TEntry});
      addEdge(From, {Ctx.negate(I->cond()), Rational(1), {}, EEntry});
      epsilon(build(I->thenBranch(), TEntry), Exit);
      epsilon(build(I->elseBranch(), EEntry), Exit);
      return Exit;
    }
    case NodeKind::While: {
      const auto *W = cast<WhileNode>(P);
      unsigned BEntry = fresh(), Exit = fresh();
      addEdge(From, {W->cond(), Rational(1), {}, BEntry});
      addEdge(From, {Ctx.negate(W->cond()), Rational(1), {}, Exit});
      epsilon(build(W->body(), BEntry), From);
      return Exit;
    }
    case NodeKind::Case: {
      // First-match cascade semantics (what the FDD compiler, the
      // baseline, and the set semantics implement): branch i fires on
      // guard_i conjoined with the negations of every earlier guard, so
      // the emitted commands partition even when guards overlap.
      const auto *C = cast<CaseNode>(P);
      unsigned Exit = fresh();
      const Node *AllFail = Ctx.skip();
      for (const auto &[Guard, Program] : C->branches()) {
        unsigned BEntry = fresh();
        addEdge(From, {Ctx.seq(AllFail, Guard), Rational(1), {}, BEntry});
        epsilon(build(Program, BEntry), Exit);
        AllFail = Ctx.seq(AllFail, Ctx.negate(Guard));
      }
      unsigned DEntry = fresh();
      addEdge(From, {AllFail, Rational(1), {}, DEntry});
      epsilon(build(C->defaultBranch(), DEntry), Exit);
      return Exit;
    }
    case NodeKind::Union:
    case NodeKind::Star:
      fatalError("PRISM backend requires the guarded fragment");
    default:
      MCNK_UNREACHABLE("predicates handled above");
    }
  }

  /// Adds an unconditional no-op transition (a basic-block boundary; the
  /// collapse pass removes it).
  void epsilon(unsigned From, unsigned To) {
    addEdge(From, {nullptr, Rational(1), {}, To});
  }

  /// Collapses ε-chains: any state whose single outgoing edge is an
  /// unguarded, update-free, probability-1 edge is merged into its
  /// target. This is the basic-block collapse of §5.2.
  void collapse() {
    Redirect.assign(States.size(), 0);
    for (unsigned S = 0; S < States.size(); ++S)
      Redirect[S] = S;
    for (unsigned S = 0; S < States.size(); ++S) {
      if (States[S].size() != 1)
        continue;
      const Edge &E = States[S][0];
      if (E.Guard == nullptr && E.Prob.isOne() && E.Updates.empty())
        Redirect[S] = E.Target; // Union toward the target.
    }
    // Path-compress the redirect chains (cycles of pure ε-states can only
    // arise from empty loops, which the smart constructors eliminate; a
    // defensive visit guard breaks them anyway).
    for (unsigned S = 0; S < States.size(); ++S) {
      std::vector<unsigned> Path;
      unsigned Cur = S;
      while (Redirect[Cur] != Cur) {
        Path.push_back(Cur);
        Cur = Redirect[Cur];
        if (Path.size() > States.size())
          break; // ε-cycle: map the whole cycle onto Cur.
      }
      for (unsigned Node : Path)
        Redirect[Node] = Cur;
    }
    for (auto &StateEdges : States)
      for (Edge &E : StateEdges)
        E.Target = Redirect[E.Target];
  }

  Context &Ctx;
  std::vector<std::vector<Edge>> States;
  std::vector<unsigned> Redirect;
  unsigned Entry = 0, Done = 0, Drop = 0;
};

/// Renders a predicate AST as a PRISM boolean expression.
void renderPredicate(const Node *P, const FieldTable &Fields,
                     std::ostringstream &Out) {
  switch (P->kind()) {
  case NodeKind::Drop:
    Out << "false";
    return;
  case NodeKind::Skip:
    Out << "true";
    return;
  case NodeKind::Test: {
    const auto *T = cast<TestNode>(P);
    Out << Fields.name(T->field()) << "=" << T->value();
    return;
  }
  case NodeKind::Not:
    Out << "!(";
    renderPredicate(cast<NotNode>(P)->operand(), Fields, Out);
    Out << ")";
    return;
  case NodeKind::Seq: {
    const auto *S = cast<SeqNode>(P);
    Out << "(";
    renderPredicate(S->lhs(), Fields, Out);
    Out << " & ";
    renderPredicate(S->rhs(), Fields, Out);
    Out << ")";
    return;
  }
  case NodeKind::Union: {
    const auto *U = cast<UnionNode>(P);
    Out << "(";
    renderPredicate(U->lhs(), Fields, Out);
    Out << " | ";
    renderPredicate(U->rhs(), Fields, Out);
    Out << ")";
    return;
  }
  default:
    MCNK_UNREACHABLE("not a predicate");
  }
}

} // namespace

Translation prism::translate(Context &Ctx, const Node *Program,
                             const Packet &Initial) {
  assert(isGuarded(Program) && "PRISM backend requires guarded programs");
  AutomatonBuilder B(Ctx);
  unsigned Exit = B.build(Program, B.Entry);
  B.epsilon(Exit, B.Done);
  // Absorbing self-loops so the DTMC is total.
  B.addEdge(B.Done, {nullptr, Rational(1), {}, B.Done});
  B.addEdge(B.Drop, {nullptr, Rational(1), {}, B.Drop});

  Translation Result;
  Result.NumPcStatesExpanded = static_cast<unsigned>(B.States.size());
  B.collapse();

  // Renumber the live states (those that own edges and are reachable
  // targets) densely.
  std::map<unsigned, unsigned> Dense;
  auto DenseId = [&](unsigned S) {
    auto [It, Inserted] = Dense.emplace(S, Dense.size());
    (void)Inserted;
    return It->second;
  };
  unsigned Entry = B.Redirect[B.Entry];
  unsigned Done = B.Redirect[B.Done];
  unsigned Drop = B.Redirect[B.Drop];
  DenseId(Entry); // pc = 0 is the entry.

  const FieldTable &Fields = Ctx.fields();
  // Field bounds: maximum of mentioned and initial values.
  std::map<FieldId, FieldValue> Bounds;
  for (const auto &[F, Values] : collectValues(Program))
    Bounds[F] = *Values.rbegin();
  for (std::size_t F = 0; F < Initial.numFields(); ++F) {
    FieldValue V = Initial.get(static_cast<FieldId>(F));
    auto [It, Inserted] = Bounds.emplace(static_cast<FieldId>(F), V);
    if (!Inserted)
      It->second = std::max(It->second, V);
  }

  std::ostringstream Body;
  unsigned NumCommands = 0;
  for (unsigned S = 0; S < B.States.size(); ++S) {
    if (B.Redirect[S] != S || B.States[S].empty())
      continue;
    unsigned Id = DenseId(S);
    // Partition edges: unguarded probabilistic family vs guarded edges.
    std::vector<const Edge *> Unguarded;
    std::vector<const Edge *> Guarded;
    for (const Edge &E : B.States[S])
      (E.Guard ? Guarded : Unguarded).push_back(&E);
    assert((Unguarded.empty() || Guarded.empty()) &&
           "state mixes guarded and probabilistic edges");

    auto RenderUpdates = [&](const Edge &E) {
      std::ostringstream U;
      U << "(pc'=" << DenseId(E.Target) << ")";
      for (const auto &[F, V] : E.Updates)
        U << " & (" << Fields.name(F) << "'=" << V << ")";
      return U.str();
    };

    if (!Unguarded.empty()) {
      Body << "  [] pc=" << Id << " -> ";
      for (std::size_t I = 0; I < Unguarded.size(); ++I) {
        if (I)
          Body << " + ";
        Body << Unguarded[I]->Prob.toString() << " : "
             << RenderUpdates(*Unguarded[I]);
      }
      Body << ";\n";
      ++NumCommands;
    }
    for (const Edge *E : Guarded) {
      std::ostringstream G;
      renderPredicate(E->Guard, Fields, G);
      Body << "  [] pc=" << Id << " & " << G.str() << " -> 1 : "
           << RenderUpdates(*E) << ";\n";
      ++NumCommands;
    }
  }

  std::ostringstream Out;
  Out << "dtmc\n\nmodule net\n";
  Out << "  pc : [0.." << (Dense.size() ? Dense.size() - 1 : 0)
      << "] init 0;\n";
  for (const auto &[F, Bound] : Bounds)
    Out << "  " << Fields.name(F) << " : [0.." << Bound << "] init "
        << (F < Initial.numFields() ? Initial.get(F) : 0) << ";\n";
  Out << Body.str();
  Out << "endmodule\n";

  Result.Source = Out.str();
  Result.DoneGuard = "pc=" + std::to_string(DenseId(Done));
  Result.DropGuard = "pc=" + std::to_string(DenseId(Drop));
  Result.NumPcStates = static_cast<unsigned>(Dense.size());
  return Result;
}
