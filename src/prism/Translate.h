//===----------------------------------------------------------------------===//
///
/// \file
/// The PRISM backend (paper §5.2): a purely syntactic translation from
/// guarded ProbNetKAT to a PRISM DTMC module. The program becomes a
/// guarded-command automaton via a Thompson-style construction; basic
/// blocks (ε-chains) are collapsed to keep the program counter small; the
/// result is rendered in PRISM's input language. Model checking itself is
/// done by `prismlite` (Checker.h), our stand-in for the PRISM binary.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_PRISM_TRANSLATE_H
#define MCNK_PRISM_TRANSLATE_H

#include "ast/Context.h"
#include "packet/Packet.h"

#include <string>

namespace mcnk {
namespace prism {

/// A PRISM model plus the bookkeeping needed to query it.
struct Translation {
  std::string Source;      ///< PRISM model text (`dtmc` module).
  std::string DoneGuard;   ///< Expression: program terminated normally.
  std::string DropGuard;   ///< Expression: packet was dropped.
  unsigned NumPcStatesExpanded = 0; ///< pc states before collapsing.
  unsigned NumPcStates = 0;         ///< pc states after collapsing.
};

/// Translates \p Program (guarded fragment) into a PRISM DTMC whose
/// variables are the packet fields (bounded by the values mentioned in the
/// program and in \p Initial) plus a program counter. The initial state is
/// the concrete packet \p Initial at the program entry. Reaching DoneGuard
/// means the program produced the current valuation as output; DropGuard
/// absorbs dropped packets.
Translation translate(ast::Context &Ctx, const ast::Node *Program,
                      const Packet &Initial);

} // namespace prism
} // namespace mcnk

#endif // MCNK_PRISM_TRANSLATE_H
