//===----------------------------------------------------------------------===//
///
/// \file
/// Port-level topology graph, the generators for the paper's topology
/// families (FatTree, AB FatTree, chain of diamonds, triangle), the
/// scenario-registry families (ring, grid/torus, seeded random connected
/// graphs), and Graphviz DOT import/export.
///
//===----------------------------------------------------------------------===//

#include "topology/Topology.h"

#include "support/Error.h"
#include "support/Prng.h"

#include <cassert>
#include <cctype>
#include <set>
#include <sstream>

using namespace mcnk;
using namespace mcnk::topology;

void Topology::addLink(SwitchId Src, PortId SrcPort, SwitchId Dst,
                       PortId DstPort) {
  assert(Src >= 1 && Src <= SwitchCount && "source switch out of range");
  assert(Dst >= 1 && Dst <= SwitchCount && "target switch out of range");
  auto [It, Inserted] =
      OutIndex.emplace(std::make_pair(Src, SrcPort), Links.size());
  (void)It;
  assert(Inserted && "duplicate outgoing (switch, port)");
  Links.push_back({Src, SrcPort, Dst, DstPort});
}

void Topology::addCable(SwitchId A, PortId PortA, SwitchId B, PortId PortB) {
  addLink(A, PortA, B, PortB);
  addLink(B, PortB, A, PortA);
}

std::optional<Link> Topology::linkFrom(SwitchId Src, PortId SrcPort) const {
  auto It = OutIndex.find({Src, SrcPort});
  if (It == OutIndex.end())
    return std::nullopt;
  return Links[It->second];
}

std::size_t Topology::degree(SwitchId Switch) const {
  std::size_t Count = 0;
  for (const Link &L : Links)
    if (L.Src == Switch)
      ++Count;
  return Count;
}

std::string Topology::toDot() const {
  std::ostringstream Out;
  Out << "digraph topology {\n";
  Out << "  // switches: " << SwitchCount << "\n";
  for (const Link &L : Links)
    Out << "  s" << L.Src << " -> s" << L.Dst << " [src_port=" << L.SrcPort
        << ", dst_port=" << L.DstPort << "];\n";
  Out << "}\n";
  return Out.str();
}

namespace {

/// Minimal tokenizer for the DOT subset: skips whitespace and comments.
struct DotScanner {
  const std::string &Text;
  std::size_t Pos = 0;

  void skip() {
    while (Pos < Text.size()) {
      if (std::isspace(static_cast<unsigned char>(Text[Pos]))) {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '/' && Pos + 1 < Text.size() &&
          Text[Pos + 1] == '/') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      break;
    }
  }

  bool literal(const std::string &Word) {
    skip();
    if (Text.compare(Pos, Word.size(), Word) != 0)
      return false;
    Pos += Word.size();
    return true;
  }

  bool number(uint64_t &Out) {
    skip();
    if (Pos >= Text.size() ||
        !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return false;
    Out = 0;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      Out = Out * 10 + static_cast<uint64_t>(Text[Pos++] - '0');
    return true;
  }

  bool done() {
    skip();
    return Pos >= Text.size();
  }
};

} // namespace

bool Topology::fromDot(const std::string &Text, Topology &Out,
                       std::string &Error) {
  DotScanner S{Text};
  if (!S.literal("digraph")) {
    Error = "expected 'digraph'";
    return false;
  }
  // Optional graph name.
  S.skip();
  while (S.Pos < Text.size() && Text[S.Pos] != '{')
    ++S.Pos;
  if (!S.literal("{")) {
    Error = "expected '{'";
    return false;
  }

  Out = Topology();
  SwitchId MaxSwitch = 0;
  for (;;) {
    if (S.literal("}"))
      break;
    uint64_t Src, Dst, SrcPort, DstPort;
    if (!S.literal("s") || !S.number(Src) || !S.literal("->") ||
        !S.literal("s") || !S.number(Dst) || !S.literal("[") ||
        !S.literal("src_port=") || !S.number(SrcPort) || !S.literal(",") ||
        !S.literal("dst_port=") || !S.number(DstPort) || !S.literal("]") ||
        !S.literal(";")) {
      Error = "malformed edge near offset " + std::to_string(S.Pos);
      return false;
    }
    MaxSwitch = std::max<SwitchId>(
        MaxSwitch, static_cast<SwitchId>(std::max(Src, Dst)));
    Out.SwitchCount = MaxSwitch;
    Out.addLink(static_cast<SwitchId>(Src), static_cast<PortId>(SrcPort),
                static_cast<SwitchId>(Dst), static_cast<PortId>(DstPort));
  }
  if (!S.done()) {
    Error = "trailing content after '}'";
    return false;
  }
  return true;
}

namespace {

Topology makeFatTreeImpl(unsigned P, bool AB, FatTreeLayout &Layout) {
  if (P < 2 || P % 2 != 0)
    fatalError("FatTree parameter must be even and >= 2");
  Layout.P = P;
  Layout.AB = AB;
  Layout.H = P / 2;
  unsigned H = Layout.H;

  Topology T(Layout.numSwitches());
  // Edge <-> agg cables within each pod.
  for (unsigned Pod = 0; Pod < P; ++Pod)
    for (unsigned E = 0; E < H; ++E)
      for (unsigned X = 0; X < H; ++X)
        T.addCable(Layout.edgeId(Pod, E), Layout.edgeUpPort(X),
                   Layout.aggId(Pod, X), Layout.aggDownPort(E));
  // Agg <-> core cables, staggered for type-B pods.
  for (unsigned Pod = 0; Pod < P; ++Pod)
    for (unsigned X = 0; X < H; ++X)
      for (unsigned M = 0; M < H; ++M)
        T.addCable(Layout.aggId(Pod, X), Layout.aggUpPort(M),
                   Layout.coreAbove(Pod, X, M), Layout.corePodPort(Pod));
  return T;
}

} // namespace

Topology topology::makeFatTree(unsigned P, FatTreeLayout &Layout) {
  return makeFatTreeImpl(P, /*AB=*/false, Layout);
}

Topology topology::makeAbFatTree(unsigned P, FatTreeLayout &Layout) {
  return makeFatTreeImpl(P, /*AB=*/true, Layout);
}

Topology topology::makeChain(unsigned K, ChainLayout &Layout) {
  if (K == 0)
    fatalError("chain topology needs at least one diamond");
  Layout.K = K;
  Topology T(Layout.numSwitches());
  for (unsigned D = 0; D < K; ++D) {
    T.addLink(Layout.split(D), 1, Layout.upper(D), 1);
    T.addLink(Layout.split(D), 2, Layout.lower(D), 1);
    T.addLink(Layout.upper(D), 2, Layout.join(D), 1);
    T.addLink(Layout.lower(D), 2, Layout.join(D), 2);
    if (D + 1 < K)
      T.addLink(Layout.join(D), 3, Layout.split(D + 1), 3);
  }
  return T;
}

Topology topology::makeTriangle() {
  // Fig 1: switch 1 ports {1: source, 2: to sw2, 3: to sw3},
  // switch 2 ports {1: from sw1, 2: destination, 3: from sw3},
  // switch 3 ports {1: from sw1, 2: to sw2}.
  Topology T(3);
  T.addCable(1, 2, 2, 1);
  T.addCable(1, 3, 3, 1);
  T.addCable(3, 2, 2, 3);
  return T;
}

Topology topology::makeRing(unsigned N, RingLayout &Layout) {
  if (N < 3)
    fatalError("ring topology needs at least three switches");
  Layout.N = N;
  Topology T(N);
  // One cable per cycle edge: S's port 1 to next(S)'s port 2.
  for (SwitchId S = 1; S <= N; ++S)
    T.addCable(S, 1, Layout.next(S), 2);
  return T;
}

Topology topology::makeGrid(unsigned Rows, unsigned Cols, bool Torus,
                            GridLayout &Layout) {
  if (Rows == 0 || Cols == 0 || Rows * Cols < 2)
    fatalError("grid topology needs at least two switches");
  Layout.Rows = Rows;
  Layout.Cols = Cols;
  Layout.Torus = Torus;
  Topology T(Layout.numSwitches());
  for (unsigned R = 0; R < Rows; ++R)
    for (unsigned C = 0; C < Cols; ++C) {
      if (C + 1 < Cols)
        T.addCable(Layout.at(R, C), GridLayout::East, Layout.at(R, C + 1),
                   GridLayout::West);
      else if (Torus && Cols >= 3)
        T.addCable(Layout.at(R, C), GridLayout::East, Layout.at(R, 0),
                   GridLayout::West);
      if (R + 1 < Rows)
        T.addCable(Layout.at(R, C), GridLayout::South, Layout.at(R + 1, C),
                   GridLayout::North);
      else if (Torus && Rows >= 3)
        T.addCable(Layout.at(R, C), GridLayout::South, Layout.at(0, C),
                   GridLayout::North);
    }
  return T;
}

Topology topology::makeRandomConnected(unsigned N, unsigned ExtraCables,
                                       uint64_t Seed) {
  if (N < 2)
    fatalError("random topology needs at least two switches");
  Prng Rng(Seed);
  Topology T(N);
  std::vector<PortId> NextPort(N + 1, 1);
  std::set<std::pair<SwitchId, SwitchId>> Cabled;
  auto Connect = [&](SwitchId A, SwitchId B) {
    T.addCable(A, NextPort[A]++, B, NextPort[B]++);
    Cabled.emplace(std::min(A, B), std::max(A, B));
  };
  // Random spanning tree: each switch attaches to a uniformly chosen
  // earlier one.
  for (SwitchId S = 2; S <= N; ++S)
    Connect(S, static_cast<SwitchId>(1 + Rng.below(S - 1)));
  // Extra cables between not-yet-adjacent pairs; give up on a pair after
  // a bounded number of rejected draws (dense graphs run out of pairs).
  for (unsigned E = 0; E < ExtraCables; ++E) {
    for (unsigned Attempt = 0; Attempt < 16; ++Attempt) {
      SwitchId A = static_cast<SwitchId>(1 + Rng.below(N));
      SwitchId B = static_cast<SwitchId>(1 + Rng.below(N));
      if (A == B || Cabled.count({std::min(A, B), std::max(A, B)}))
        continue;
      Connect(A, B);
      break;
    }
  }
  return T;
}
