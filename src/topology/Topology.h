//===----------------------------------------------------------------------===//
///
/// \file
/// Network topologies: a directed port-level graph plus generators for the
/// families the paper evaluates — FatTree (Fig 6), AB FatTree (Fig 11a,
/// after Liu et al.'s F10), the chain-of-diamonds topology of the Bayonet
/// comparison (Fig 9), and the §2 triangle — and the scenario-registry
/// families (ring, grid/torus, seeded random connected graphs) used by the
/// differential-testing subsystem (src/gen/). Graphviz DOT import/export
/// mirrors McNetKAT's topology input format.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_TOPOLOGY_TOPOLOGY_H
#define MCNK_TOPOLOGY_TOPOLOGY_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcnk {
namespace topology {

/// Switches are 1-based ids (the paper's `sw=1` destination convention);
/// ports are 1-based per switch.
using SwitchId = uint32_t;
using PortId = uint32_t;

/// One directed hop: leaving (Src, SrcPort) delivers to (Dst, DstPort).
struct Link {
  SwitchId Src;
  PortId SrcPort;
  SwitchId Dst;
  PortId DstPort;
};

/// A port-level directed multigraph. Physical cables appear as two
/// directed links, added together via addCable.
class Topology {
public:
  explicit Topology(std::size_t NumSwitches = 0)
      : SwitchCount(NumSwitches) {}

  std::size_t numSwitches() const { return SwitchCount; }
  void setNumSwitches(std::size_t N) { SwitchCount = N; }

  const std::vector<Link> &links() const { return Links; }

  /// Adds one directed link.
  void addLink(SwitchId Src, PortId SrcPort, SwitchId Dst, PortId DstPort);
  /// Adds both directions of a cable.
  void addCable(SwitchId A, PortId PortA, SwitchId B, PortId PortB);

  /// The link leaving (Src, SrcPort), if any.
  std::optional<Link> linkFrom(SwitchId Src, PortId SrcPort) const;

  /// Out-degree (number of distinct outgoing ports) of a switch.
  std::size_t degree(SwitchId Switch) const;

  /// Graphviz DOT rendering: one `a -> b [src_port=i, dst_port=j]` edge
  /// per directed link.
  std::string toDot() const;

  /// Parses the subset of DOT produced by toDot(). Returns false (with a
  /// message) on malformed input.
  static bool fromDot(const std::string &Text, Topology &Out,
                      std::string &Error);

private:
  std::size_t SwitchCount;
  std::vector<Link> Links;
  std::map<std::pair<SwitchId, PortId>, std::size_t> OutIndex;
};

/// Structural metadata for (AB) FatTrees; all the routing generators need.
struct FatTreeLayout {
  unsigned P = 0;    ///< Ports per switch (even).
  bool AB = false;   ///< AB FatTree (true) or standard FatTree (false).
  unsigned H = 0;    ///< P / 2.

  unsigned numPods() const { return P; }
  unsigned numEdges() const { return P * H; }
  unsigned numAggs() const { return P * H; }
  unsigned numCores() const { return H * H; }
  unsigned numSwitches() const { return numEdges() + numAggs() + numCores(); }

  /// Pod types: pod 0 is always type A; in an AB FatTree pods alternate.
  bool isTypeB(unsigned Pod) const { return AB && (Pod % 2 == 1); }

  // Id layout: edges first, then aggregations, then cores (all 1-based).
  SwitchId edgeId(unsigned Pod, unsigned Index) const {
    return 1 + Pod * H + Index;
  }
  SwitchId aggId(unsigned Pod, unsigned Index) const {
    return 1 + numEdges() + Pod * H + Index;
  }
  SwitchId coreId(unsigned X, unsigned Y) const {
    return 1 + numEdges() + numAggs() + X * H + Y;
  }

  bool isEdge(SwitchId Sw) const { return Sw >= 1 && Sw <= numEdges(); }
  bool isAgg(SwitchId Sw) const {
    return Sw > numEdges() && Sw <= numEdges() + numAggs();
  }
  bool isCore(SwitchId Sw) const {
    return Sw > numEdges() + numAggs() && Sw <= numSwitches();
  }
  unsigned podOf(SwitchId Sw) const {
    if (isEdge(Sw))
      return (Sw - 1) / H;
    return (Sw - 1 - numEdges()) / H;
  }
  unsigned indexOf(SwitchId Sw) const {
    if (isEdge(Sw))
      return (Sw - 1) % H;
    if (isAgg(Sw))
      return (Sw - 1 - numEdges()) % H;
    return Sw - 1 - numEdges() - numAggs(); // Core linear index X*H+Y.
  }

  // Port conventions (1-based):
  //  - edge: ports 1..H up to aggs (port 1+x -> agg x), H+1..P to hosts
  //  - agg:  ports 1..H down to edges (port 1+j -> edge j), H+1..P up
  //  - core: port 1+i -> pod i
  PortId edgeUpPort(unsigned AggIndex) const { return 1 + AggIndex; }
  PortId edgeHostPort() const { return H + 1; }
  PortId aggDownPort(unsigned EdgeIndex) const { return 1 + EdgeIndex; }
  PortId aggUpPort(unsigned M) const { return H + 1 + M; }
  PortId corePodPort(unsigned Pod) const { return 1 + Pod; }

  /// The core an agg's M-th up port reaches: type A pods use (x, m),
  /// type B pods use (m, y) — the staggered wiring that creates the short
  /// detours (appendix E).
  SwitchId coreAbove(unsigned Pod, unsigned AggIndex, unsigned M) const {
    return isTypeB(Pod) ? coreId(M, AggIndex) : coreId(AggIndex, M);
  }
};

/// Standard FatTree with parameter \p P (even, >= 2): 5P²/4 switches.
Topology makeFatTree(unsigned P, FatTreeLayout &Layout);

/// AB FatTree with parameter \p P: same size, staggered type-B pods.
Topology makeAbFatTree(unsigned P, FatTreeLayout &Layout);

/// Chain-of-diamonds metadata (Fig 9): K diamonds, switches S0..S_{4K-1};
/// H1 injects at S0, H2 receives after S_{4K-1}.
struct ChainLayout {
  unsigned K = 0;
  SwitchId split(unsigned D) const { return 1 + 4 * D; }
  SwitchId upper(unsigned D) const { return 2 + 4 * D; }
  SwitchId lower(unsigned D) const { return 3 + 4 * D; }
  SwitchId join(unsigned D) const { return 4 + 4 * D; }
  unsigned numSwitches() const { return 4 * K; }
};

/// Chain of \p K diamonds.
Topology makeChain(unsigned K, ChainLayout &Layout);

/// The §2 running-example triangle (Fig 1): switches 1..3; switch 1 and 2
/// joined via port 2, detour via switch 3 on ports 3/2.
Topology makeTriangle();

/// Ring metadata: N switches in a cycle. Port 1 leads clockwise (to
/// next(S)), port 2 counter-clockwise (to prev(S)).
struct RingLayout {
  unsigned N = 0;
  SwitchId next(SwitchId S) const { return S % N + 1; }
  SwitchId prev(SwitchId S) const { return S == 1 ? N : S - 1; }
  unsigned numSwitches() const { return N; }
};

/// Ring of \p N switches (N >= 3).
Topology makeRing(unsigned N, RingLayout &Layout);

/// Grid / torus metadata: Rows x Cols switches, row-major 1-based ids.
/// Ports are fixed per direction: 1 = east, 2 = west, 3 = south, 4 =
/// north (wrap links reuse the same ports on a torus).
struct GridLayout {
  unsigned Rows = 0;
  unsigned Cols = 0;
  bool Torus = false;
  SwitchId at(unsigned Row, unsigned Col) const {
    return 1 + Row * Cols + Col;
  }
  unsigned numSwitches() const { return Rows * Cols; }

  static constexpr PortId East = 1, West = 2, South = 3, North = 4;
};

/// Rows x Cols mesh (Torus wraps both dimensions; wrap links are only
/// added for dimensions of length >= 3, where they are not duplicates).
Topology makeGrid(unsigned Rows, unsigned Cols, bool Torus,
                  GridLayout &Layout);

/// Seeded random connected multigraph: a random spanning tree over \p N
/// switches plus \p ExtraCables additional random cables (self-loops and
/// duplicate cables are avoided; ports are assigned densely per switch in
/// construction order). Deterministic in \p Seed across platforms.
Topology makeRandomConnected(unsigned N, unsigned ExtraCables,
                             uint64_t Seed);

} // namespace topology
} // namespace mcnk

#endif // MCNK_TOPOLOGY_TOPOLOGY_H
