//===----------------------------------------------------------------------===//
///
/// \file
/// FieldTable: interning of field names to dense ids with bounds
/// metadata.
///
//===----------------------------------------------------------------------===//

#include "packet/Field.h"

#include "support/Error.h"

#include <cassert>

using namespace mcnk;

FieldId FieldTable::intern(const std::string &Name) {
  auto It = Ids.find(Name);
  if (It != Ids.end())
    return It->second;
  if (Names.size() >= NotFound)
    fatalError("too many fields interned");
  FieldId Id = static_cast<FieldId>(Names.size());
  Names.push_back(Name);
  Ids.emplace(Name, Id);
  return Id;
}

FieldId FieldTable::lookup(const std::string &Name) const {
  auto It = Ids.find(Name);
  return It == Ids.end() ? NotFound : It->second;
}

const std::string &FieldTable::name(FieldId Id) const {
  assert(Id < Names.size() && "field id out of range");
  return Names[Id];
}
