//===----------------------------------------------------------------------===//
///
/// \file
/// Packet operations and finite packet-domain enumeration for the
/// reference set semantics (test oracle on tiny spaces).
///
//===----------------------------------------------------------------------===//

#include "packet/Packet.h"

#include <cassert>

using namespace mcnk;

PacketDomain::PacketDomain(std::vector<FieldValue> FieldSizes)
    : Sizes(std::move(FieldSizes)) {
  for (FieldValue Size : Sizes) {
    assert(Size > 0 && "field with empty value range");
    Count *= Size;
  }
}

std::size_t PacketDomain::index(const Packet &P) const {
  assert(P.numFields() == Sizes.size() && "packet/domain mismatch");
  std::size_t Result = 0;
  for (std::size_t F = 0; F < Sizes.size(); ++F) {
    assert(P.get(static_cast<FieldId>(F)) < Sizes[F] &&
           "packet value out of domain");
    Result = Result * Sizes[F] + P.get(static_cast<FieldId>(F));
  }
  return Result;
}

Packet PacketDomain::packet(std::size_t Index) const {
  assert(Index < Count && "packet index out of range");
  Packet Result(Sizes.size());
  for (std::size_t F = Sizes.size(); F-- > 0;) {
    Result.set(static_cast<FieldId>(F),
               static_cast<FieldValue>(Index % Sizes[F]));
    Index /= Sizes[F];
  }
  return Result;
}

bool PacketDomain::contains(const Packet &P) const {
  if (P.numFields() != Sizes.size())
    return false;
  for (std::size_t F = 0; F < Sizes.size(); ++F)
    if (P.get(static_cast<FieldId>(F)) >= Sizes[F])
      return false;
  return true;
}
