//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete packets and finite packet domains. Packets assign a value to
/// every field of a domain; PacketDomain enumerates the (finite) packet
/// space for the reference set semantics, which is exponential and only
/// used as a test oracle on tiny spaces (docs/ARCHITECTURE.md S4).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_PACKET_PACKET_H
#define MCNK_PACKET_PACKET_H

#include "packet/Field.h"
#include "support/Hashing.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace mcnk {

/// A concrete packet: one value per field of the ambient domain.
class Packet {
public:
  Packet() = default;
  explicit Packet(std::size_t NumFields) : Values(NumFields, 0) {}
  explicit Packet(std::vector<FieldValue> FieldValues)
      : Values(std::move(FieldValues)) {}

  std::size_t numFields() const { return Values.size(); }

  FieldValue get(FieldId Field) const {
    assert(Field < Values.size() && "field out of range");
    return Values[Field];
  }
  void set(FieldId Field, FieldValue Value) {
    assert(Field < Values.size() && "field out of range");
    Values[Field] = Value;
  }

  /// π[f := n] — functional update (paper §3 notation).
  Packet with(FieldId Field, FieldValue Value) const {
    Packet Result = *this;
    Result.set(Field, Value);
    return Result;
  }

  bool operator==(const Packet &RHS) const { return Values == RHS.Values; }
  bool operator!=(const Packet &RHS) const { return !(*this == RHS); }
  bool operator<(const Packet &RHS) const { return Values < RHS.Values; }

  std::size_t hash() const {
    return hashRange(Values.begin(), Values.end());
  }

private:
  std::vector<FieldValue> Values;
};

/// A finite packet space: field f ranges over {0, ..., Size[f] - 1}.
class PacketDomain {
public:
  PacketDomain() = default;
  explicit PacketDomain(std::vector<FieldValue> FieldSizes);

  std::size_t numFields() const { return Sizes.size(); }
  FieldValue fieldSize(FieldId Field) const {
    assert(Field < Sizes.size() && "field out of range");
    return Sizes[Field];
  }

  /// Total number of packets (product of field sizes).
  std::size_t numPackets() const { return Count; }

  /// Bijection between packets and [0, numPackets()).
  std::size_t index(const Packet &P) const;
  Packet packet(std::size_t Index) const;

  /// True if every field value is within range.
  bool contains(const Packet &P) const;

private:
  std::vector<FieldValue> Sizes;
  std::size_t Count = 1;
};

} // namespace mcnk

template <> struct std::hash<mcnk::Packet> {
  std::size_t operator()(const mcnk::Packet &P) const { return P.hash(); }
};

#endif // MCNK_PACKET_PACKET_H
