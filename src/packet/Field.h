//===----------------------------------------------------------------------===//
///
/// \file
/// Packet fields. A packet is a record mapping a finite set of fields to
/// bounded integers (paper §3); fields include real headers (src, dst) and
/// logical fields (sw, pt, up_i) used for modeling. FieldTable interns
/// field names to dense ids so packets and FDD tests index by integer.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_PACKET_FIELD_H
#define MCNK_PACKET_FIELD_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mcnk {

/// Dense id of an interned field. Also the FDD variable-ordering position:
/// fields are ordered by id (first interned tests first).
using FieldId = uint16_t;

/// Field values are bounded naturals.
using FieldValue = uint32_t;

/// Interns field names; stable dense ids in interning order.
class FieldTable {
public:
  /// Returns the id for \p Name, interning it on first use.
  FieldId intern(const std::string &Name);

  /// Returns the id for \p Name or NotFound if never interned.
  static constexpr FieldId NotFound = 0xffff;
  FieldId lookup(const std::string &Name) const;

  const std::string &name(FieldId Id) const;
  std::size_t numFields() const { return Names.size(); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, FieldId> Ids;
};

} // namespace mcnk

#endif // MCNK_PACKET_FIELD_H
