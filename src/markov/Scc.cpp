//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative Tarjan SCC with reverse-topological block numbering (see
/// Scc.h for why pop order is exactly the order the blocked solver wants).
///
//===----------------------------------------------------------------------===//

#include "markov/Scc.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace mcnk;
using namespace mcnk::markov;

namespace {
constexpr std::size_t Unvisited = std::numeric_limits<std::size_t>::max();
} // namespace

SccDecomposition
markov::computeScc(std::size_t NumVertices,
                   const std::vector<std::vector<std::size_t>> &Adj) {
  assert(Adj.size() == NumVertices && "adjacency size mismatch");
  SccDecomposition Result;
  Result.BlockOf.assign(NumVertices, Unvisited);

  std::vector<std::size_t> Index(NumVertices, Unvisited);
  std::vector<std::size_t> LowLink(NumVertices, 0);
  std::vector<bool> OnStack(NumVertices, false);
  std::vector<std::size_t> SccStack;
  std::size_t NextIndex = 0;

  // Explicit DFS frames (vertex, next edge position) so deep chains do not
  // overflow the call stack — transient graphs routinely hold thousands of
  // states in a single path.
  std::vector<std::pair<std::size_t, std::size_t>> Frames;
  for (std::size_t Root = 0; Root < NumVertices; ++Root) {
    if (Index[Root] != Unvisited)
      continue;
    Frames.emplace_back(Root, 0);
    Index[Root] = LowLink[Root] = NextIndex++;
    SccStack.push_back(Root);
    OnStack[Root] = true;
    while (!Frames.empty()) {
      auto &[V, EdgePos] = Frames.back();
      if (EdgePos < Adj[V].size()) {
        std::size_t W = Adj[V][EdgePos++];
        assert(W < NumVertices && "edge target out of range");
        if (Index[W] == Unvisited) {
          Frames.emplace_back(W, 0);
          Index[W] = LowLink[W] = NextIndex++;
          SccStack.push_back(W);
          OnStack[W] = true;
        } else if (OnStack[W]) {
          LowLink[V] = std::min(LowLink[V], Index[W]);
        }
        continue;
      }
      // All edges of V explored: pop a component if V is its root, then
      // propagate the lowlink to the DFS parent.
      if (LowLink[V] == Index[V]) {
        std::size_t Block = Result.NumBlocks++;
        Result.Blocks.emplace_back();
        std::size_t Member;
        do {
          Member = SccStack.back();
          SccStack.pop_back();
          OnStack[Member] = false;
          Result.BlockOf[Member] = Block;
          Result.Blocks[Block].push_back(Member);
        } while (Member != V);
        std::sort(Result.Blocks[Block].begin(), Result.Blocks[Block].end());
      }
      std::size_t Child = V;
      Frames.pop_back();
      if (!Frames.empty()) {
        std::size_t Parent = Frames.back().first;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[Child]);
      }
    }
  }
  assert(SccStack.empty() && "Tarjan stack not drained");

  // Condensation edges, deduplicated per block. Successors were popped
  // before their predecessors, so every successor id is smaller.
  Result.Successors.assign(Result.NumBlocks, {});
  for (std::size_t U = 0; U < NumVertices; ++U)
    for (std::size_t V : Adj[U]) {
      std::size_t BU = Result.BlockOf[U], BV = Result.BlockOf[V];
      if (BU == BV)
        continue;
      assert(BV < BU && "condensation edge violates pop-order numbering");
      Result.Successors[BU].push_back(BV);
    }
  for (std::vector<std::size_t> &Succ : Result.Successors) {
    std::sort(Succ.begin(), Succ.end());
    Succ.erase(std::unique(Succ.begin(), Succ.end()), Succ.end());
  }
  return Result;
}
