//===----------------------------------------------------------------------===//
///
/// \file
/// Block-structured absorbing-chain solves (docs/ARCHITECTURE.md S13).
/// The transient graph decomposes into strongly connected classes; in the
/// condensation DAG, absorption out of a class depends only on classes
/// downstream of it:
///
///   (I - Q_BB) A_B = R_B + Q_{B,ext} A_ext
///
/// where ext ranges over states in already-solved successor blocks. Blocks
/// are eliminated in reverse topological order (block ids from Tarjan pop
/// order make that simply increasing id order); when a ThreadPool is
/// supplied, independent classes solve concurrently under a
/// dependency-counted DAG schedule — each task writes only its own block's
/// rows of the shared absorption matrix, and every cross-block read is
/// ordered behind the writer by the scheduling edge.
///
/// The exact blocked solve is reference-equal to the monolithic one: both
/// compute the unique rational solution of the same nonsingular system.
/// The double blocked solve agrees up to elimination-order ulps only.
///
//===----------------------------------------------------------------------===//

#include "markov/Absorbing.h"
#include "markov/Scc.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <functional>
#include <mutex>

using namespace mcnk;
using namespace mcnk::markov;
using linalg::DenseMatrix;
using linalg::Triplet;

namespace {

/// The pruned chain reorganized for per-block assembly: per compact state,
/// its kept Q row (compact column indices) and R row.
struct BlockPlan {
  ChainPruning Pruned;
  SccDecomposition Scc; // Over compact transient indices.
  std::vector<std::vector<std::pair<std::size_t, Rational>>> QRows;
  std::vector<std::vector<std::pair<std::size_t, Rational>>> RRows;
  std::size_t NumKeptQ = 0;
};

BlockPlan planBlocks(const AbsorbingChain &Chain) {
  BlockPlan Plan;
  Plan.Pruned = pruneUnreachableStates(Chain);
  std::size_t NK = Plan.Pruned.NumKept;
  Plan.QRows.resize(NK);
  Plan.RRows.resize(NK);
  std::vector<std::vector<std::size_t>> Adj(NK);
  for (const RationalTriplet &E : Chain.QEntries)
    if (!E.Value.isZero() && Plan.Pruned.CanReach[E.Row] &&
        Plan.Pruned.CanReach[E.Col]) {
      std::size_t U = Plan.Pruned.Compact[E.Row];
      std::size_t V = Plan.Pruned.Compact[E.Col];
      Plan.QRows[U].emplace_back(V, E.Value);
      Adj[U].push_back(V);
      ++Plan.NumKeptQ;
    }
  for (const RationalTriplet &E : Chain.REntries)
    if (Plan.Pruned.CanReach[E.Row])
      Plan.RRows[Plan.Pruned.Compact[E.Row]].emplace_back(E.Col, E.Value);
  Plan.Scc = computeScc(NK, Adj);
  return Plan;
}

/// Runs Solve(BlockId) once per block, respecting condensation-DAG order.
/// Serial fallback processes ids in increasing order (successors first);
/// on a pool, blocks become ready when their dependency counter drains,
/// each completion enqueuing newly ready dependents. Returns false as
/// soon as any Solve fails (remaining ready work is abandoned).
bool runBlocks(const SccDecomposition &Scc, ThreadPool *Pool,
               const std::function<bool(std::size_t)> &Solve) {
  std::size_t NB = Scc.NumBlocks;
  if (!Pool || NB <= 1) {
    for (std::size_t B = 0; B < NB; ++B)
      if (!Solve(B))
        return false;
    return true;
  }

  // DepCount[B] = unsolved successor blocks; Dependents inverts the edge.
  std::vector<std::size_t> DepCount(NB);
  std::vector<std::vector<std::size_t>> Dependents(NB);
  for (std::size_t B = 0; B < NB; ++B) {
    DepCount[B] = Scc.Successors[B].size();
    for (std::size_t S : Scc.Successors[B])
      Dependents[S].push_back(B);
  }

  std::mutex Mutex;
  std::atomic<bool> Ok{true};
  TaskGroup Group(*Pool);
  // Tasks enqueue their newly unblocked dependents onto the same group;
  // the group cannot drain while an enqueuing task is still running, so
  // the final wait() covers every block. All cross-task visibility rides
  // on Mutex plus the pool's queue synchronization (TSan-clean).
  std::function<void(std::size_t)> Run = [&](std::size_t B) {
    if (!Ok.load(std::memory_order_acquire))
      return;
    if (!Solve(B)) {
      Ok.store(false, std::memory_order_release);
      return;
    }
    std::vector<std::size_t> Ready;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      for (std::size_t D : Dependents[B])
        if (--DepCount[D] == 0)
          Ready.push_back(D);
    }
    for (std::size_t D : Ready)
      Group.run([&Run, D] { Run(D); });
  };
  // Snapshot the initially ready set before enqueueing anything: once the
  // first task runs, workers decrement DepCount concurrently, and a block
  // draining to zero mid-seeding would otherwise be enqueued twice (once
  // by its completing successor, once by this loop reading the drained
  // counter). Sink blocks can never be resurrected by a completion, so
  // the snapshot is exact.
  std::vector<std::size_t> Initial;
  for (std::size_t B = 0; B < NB; ++B)
    if (DepCount[B] == 0)
      Initial.push_back(B);
  for (std::size_t B : Initial)
    Group.run([&Run, B] { Run(B); });
  Group.wait();
  return Ok.load();
}

/// Folds per-block metrics into the totals after all blocks completed.
void finishMetrics(SolveMetrics &M, const BlockPlan &Plan,
                   std::vector<BlockMetrics> Blocks) {
  M.NumSolved = Plan.Pruned.NumKept;
  M.NumSolvedQ = Plan.NumKeptQ;
  M.NumBlocks = Plan.Scc.NumBlocks;
  M.Blocks = std::move(Blocks);
  for (const BlockMetrics &B : M.Blocks) {
    M.MaxBlockSize = std::max(M.MaxBlockSize, B.NumStates);
    M.EliminationOps += B.EliminationOps;
    M.FillIn += B.FillIn;
  }
}

} // namespace

bool markov::detail::solveAbsorptionExactBlocked(
    const AbsorbingChain &Chain, DenseMatrix<Rational> &Out,
    const SolverStructure &Structure, SolveMetrics *Metrics) {
  std::size_t NT = Chain.NumTransient, NA = Chain.NumAbsorbing;
  BlockPlan Plan = planBlocks(Chain);
  std::size_t NK = Plan.Pruned.NumKept;

  Out = DenseMatrix<Rational>(NT, NA);
  if (Metrics)
    *Metrics = SolveMetrics();
  if (NK == 0)
    return true;

  // Absorption rows in compact index space: block B writes rows of its
  // members, later (higher-id) blocks read rows of their successors.
  DenseMatrix<Rational> Absorb(NK, NA);
  std::vector<BlockMetrics> Blocks(Plan.Scc.NumBlocks);

  auto SolveBlock = [&](std::size_t B) -> bool {
    const std::vector<std::size_t> &Members = Plan.Scc.Blocks[B];
    std::size_t N = Members.size();
    auto LocalOf = [&](std::size_t Global) {
      return static_cast<std::size_t>(
          std::lower_bound(Members.begin(), Members.end(), Global) -
          Members.begin());
    };

    BlockMetrics &BM = Blocks[B];
    BM.NumStates = N;
    std::vector<std::map<std::size_t, Rational>> Rows(N);
    std::vector<std::vector<Rational>> Rhs(N, std::vector<Rational>(NA));
    for (std::size_t L = 0; L < N; ++L)
      Rows[L][L] = Rational(1);
    for (std::size_t L = 0; L < N; ++L) {
      std::size_t G = Members[L];
      for (const auto &[Col, V] : Plan.RRows[G])
        Rhs[L][Col] += V;
      for (const auto &[Target, V] : Plan.QRows[G]) {
        ++BM.NumQEntries;
        if (Plan.Scc.BlockOf[Target] == B) {
          Rational &Cell = Rows[L][LocalOf(Target)];
          Cell -= V;
          if (Cell.isZero())
            Rows[L].erase(LocalOf(Target));
        } else {
          // Back-substitution along a condensation edge: the successor
          // block already solved, fold its absorption row into the RHS.
          assert(Plan.Scc.BlockOf[Target] < B && "unsolved successor");
          for (std::size_t C = 0; C < NA; ++C)
            if (!Absorb.at(Target, C).isZero())
              Rhs[L][C].addMul(V, Absorb.at(Target, C));
        }
      }
    }

    if (!eliminateRationalSystem(Rows, Rhs, BM.EliminationOps, BM.FillIn))
      return false;
    for (std::size_t L = 0; L < N; ++L)
      for (std::size_t C = 0; C < NA; ++C)
        Absorb.at(Members[L], C) = std::move(Rhs[L][C]);
    return true;
  };

  if (!runBlocks(Plan.Scc, Structure.Pool, SolveBlock))
    return false;

  for (std::size_t K = 0; K < NK; ++K)
    for (std::size_t C = 0; C < NA; ++C)
      Out.at(Plan.Pruned.Original[K], C) = std::move(Absorb.at(K, C));
  if (Metrics)
    finishMetrics(*Metrics, Plan, std::move(Blocks));
  return true;
}

bool markov::detail::solveAbsorptionModularBlocked(
    const AbsorbingChain &Chain, DenseMatrix<Rational> &Out,
    const SolverStructure &Structure, SolveMetrics *Metrics) {
  std::size_t NT = Chain.NumTransient, NA = Chain.NumAbsorbing;
  BlockPlan Plan = planBlocks(Chain);
  std::size_t NK = Plan.Pruned.NumKept;

  Out = DenseMatrix<Rational>(NT, NA);
  if (Metrics)
    *Metrics = SolveMetrics();
  if (NK == 0)
    return true;

  DenseMatrix<Rational> Absorb(NK, NA);
  std::vector<BlockMetrics> Blocks(Plan.Scc.NumBlocks);
  // Per-block modular counters, folded after the DAG completes (tasks
  // write only their own slot, so no synchronization is needed beyond
  // the scheduling edges).
  std::vector<ModularStats> Stats(Plan.Scc.NumBlocks);
  std::vector<char> FellBack(Plan.Scc.NumBlocks, 0);

  auto SolveBlock = [&](std::size_t B) -> bool {
    const std::vector<std::size_t> &Members = Plan.Scc.Blocks[B];
    std::size_t N = Members.size();
    auto LocalOf = [&](std::size_t Global) {
      return static_cast<std::size_t>(
          std::lower_bound(Members.begin(), Members.end(), Global) -
          Members.begin());
    };

    BlockMetrics &BM = Blocks[B];
    BM.NumStates = N;
    std::vector<std::map<std::size_t, Rational>> Rows(N);
    std::vector<std::vector<Rational>> Rhs(N, std::vector<Rational>(NA));
    for (std::size_t L = 0; L < N; ++L)
      Rows[L][L] = Rational(1);
    for (std::size_t L = 0; L < N; ++L) {
      std::size_t G = Members[L];
      for (const auto &[Col, V] : Plan.RRows[G])
        Rhs[L][Col] += V;
      for (const auto &[Target, V] : Plan.QRows[G]) {
        ++BM.NumQEntries;
        if (Plan.Scc.BlockOf[Target] == B) {
          Rational &Cell = Rows[L][LocalOf(Target)];
          Cell -= V;
          if (Cell.isZero())
            Rows[L].erase(LocalOf(Target));
        } else {
          assert(Plan.Scc.BlockOf[Target] < B && "unsolved successor");
          for (std::size_t C = 0; C < NA; ++C)
            if (!Absorb.at(Target, C).isZero())
              Rhs[L][C].addMul(V, Absorb.at(Target, C));
        }
      }
    }

    // Independent primes fan out on the same pool the blocks run on —
    // the pool is nestable (help-first workers), so a block task's
    // parallelFor executes pending prime chunks inline.
    if (!modularEliminateSystem(Rows, Rhs, Structure.Ordering,
                                Structure.Pool, Structure.Modular,
                                BM.EliminationOps, BM.FillIn, Stats[B])) {
      FellBack[B] = 1;
      if (!eliminateRationalSystem(Rows, Rhs, BM.EliminationOps, BM.FillIn))
        return false;
    }
    for (std::size_t L = 0; L < N; ++L)
      for (std::size_t C = 0; C < NA; ++C)
        Absorb.at(Members[L], C) = std::move(Rhs[L][C]);
    return true;
  };

  if (!runBlocks(Plan.Scc, Structure.Pool, SolveBlock))
    return false;

  for (std::size_t K = 0; K < NK; ++K)
    for (std::size_t C = 0; C < NA; ++C)
      Out.at(Plan.Pruned.Original[K], C) = std::move(Absorb.at(K, C));
  if (Metrics) {
    finishMetrics(*Metrics, Plan, std::move(Blocks));
    for (std::size_t B = 0; B < Plan.Scc.NumBlocks; ++B) {
      Metrics->NumPrimes += Stats[B].NumPrimes;
      Metrics->RetriedPrimes += Stats[B].RetriedPrimes;
      Metrics->ReconstructionBits =
          std::max(Metrics->ReconstructionBits, Stats[B].ReconstructionBits);
      Metrics->ModularFallbacks += FellBack[B] ? 1 : 0;
    }
  }
  return true;
}

bool markov::detail::solveAbsorptionDoubleBlocked(
    const AbsorbingChain &Chain, DenseMatrix<double> &Out,
    const SolverStructure &Structure, SolveMetrics *Metrics) {
  std::size_t NT = Chain.NumTransient, NA = Chain.NumAbsorbing;
  BlockPlan Plan = planBlocks(Chain);
  std::size_t NK = Plan.Pruned.NumKept;

  Out = DenseMatrix<double>(NT, NA);
  if (Metrics)
    *Metrics = SolveMetrics();
  if (NK == 0)
    return true;

  DenseMatrix<double> Absorb(NK, NA);
  std::vector<BlockMetrics> Blocks(Plan.Scc.NumBlocks);

  auto SolveBlock = [&](std::size_t B) -> bool {
    const std::vector<std::size_t> &Members = Plan.Scc.Blocks[B];
    std::size_t N = Members.size();
    auto LocalOf = [&](std::size_t Global) {
      return static_cast<std::size_t>(
          std::lower_bound(Members.begin(), Members.end(), Global) -
          Members.begin());
    };

    BlockMetrics &BM = Blocks[B];
    BM.NumStates = N;
    std::vector<Triplet> QT;
    DenseMatrix<double> Rhs(N, NA);
    for (std::size_t L = 0; L < N; ++L) {
      std::size_t G = Members[L];
      for (const auto &[Col, V] : Plan.RRows[G])
        Rhs.at(L, Col) += V.toDouble();
      for (const auto &[Target, V] : Plan.QRows[G]) {
        ++BM.NumQEntries;
        if (Plan.Scc.BlockOf[Target] == B) {
          QT.push_back({L, LocalOf(Target), V.toDouble()});
        } else {
          assert(Plan.Scc.BlockOf[Target] < B && "unsolved successor");
          double W = V.toDouble();
          for (std::size_t C = 0; C < NA; ++C)
            Rhs.at(L, C) += W * Absorb.at(Target, C);
        }
      }
    }

    if (!luSolveOrdered(N, QT, Rhs, Structure.Ordering, BM.EliminationOps,
                        BM.FillIn))
      return false;
    for (std::size_t L = 0; L < N; ++L)
      for (std::size_t C = 0; C < NA; ++C)
        Absorb.at(Members[L], C) = Rhs.at(L, C);
    return true;
  };

  if (!runBlocks(Plan.Scc, Structure.Pool, SolveBlock))
    return false;

  for (std::size_t K = 0; K < NK; ++K)
    for (std::size_t C = 0; C < NA; ++C)
      Out.at(Plan.Pruned.Original[K], C) = Absorb.at(K, C);
  if (Metrics)
    finishMetrics(*Metrics, Plan, std::move(Blocks));
  return true;
}
