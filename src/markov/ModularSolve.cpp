//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-prime modular exact engine (docs/ARCHITECTURE.md S14):
/// modularEliminateSystem — solve the absorption system mod word-size
/// primes with the linalg/ModSolve.h kernels, combine residues by CRT,
/// recover Rationals by Wang reconstruction, and verify the result
/// against fresh primes before accepting it — plus the monolithic
/// solveAbsorptionModular driver. The SCC-blocked driver shares the
/// block machinery in BlockSolve.cpp.
///
//===----------------------------------------------------------------------===//

#include "markov/Absorbing.h"

#include "linalg/ModSolve.h"
#include "support/ModArith.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <vector>

using namespace mcnk;
using namespace mcnk::markov;
using linalg::DenseMatrix;
using linalg::ModTriplet;

namespace {

/// One flattened coefficient of the system (pointer into the caller's
/// Rows maps — the system itself is never copied or mutated).
struct Coeff {
  std::size_t Row;
  std::size_t Col;
  const Rational *Value;
};

/// Per-prime image of the system: every coefficient and right-hand-side
/// entry reduced mod p (Montgomery form). Returns false when p divides
/// any denominator — the conversion-side unlucky-prime signal.
bool convertSystem(const std::vector<Coeff> &Entries,
                   const std::vector<std::vector<Rational>> &Rhs,
                   std::size_t N, std::size_t NA, const PrimeField &F,
                   std::vector<ModTriplet> &A,
                   std::vector<std::uint64_t> &B) {
  A.clear();
  A.reserve(Entries.size());
  for (const Coeff &E : Entries) {
    std::uint64_t R;
    if (!rationalMod(*E.Value, F, R))
      return false;
    A.push_back({E.Row, E.Col, F.encode(R)});
  }
  B.assign(N * NA, 0);
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t C = 0; C < NA; ++C) {
      const Rational &V = Rhs[I][C];
      if (V.isZero())
        continue;
      std::uint64_t R;
      if (!rationalMod(V, F, R))
        return false;
      B[I * NA + C] = F.encode(R);
    }
  return true;
}

/// Residue check of the reconstructed candidate against one fresh prime:
/// A·X ≡ Rhs (mod q) entry for entry. Returns false on a mismatch;
/// \p Unlucky reports that q divides some denominator (candidate or
/// system), in which case nothing was decided and the caller draws
/// another check prime.
bool verifyAgainstPrime(const std::vector<Coeff> &Entries,
                        const std::vector<std::vector<Rational>> &Rhs,
                        const std::vector<Rational> &Candidate,
                        std::size_t N, std::size_t NA, const PrimeField &F,
                        bool &Unlucky) {
  Unlucky = false;
  std::vector<std::uint64_t> CX(N * NA);
  for (std::size_t E = 0; E < N * NA; ++E) {
    std::uint64_t R;
    if (!rationalMod(Candidate[E], F, R)) {
      Unlucky = true;
      return false;
    }
    CX[E] = F.encode(R);
  }
  // Accumulate A·X row by row and compare to the RHS residues.
  std::vector<std::uint64_t> Acc(N * NA, 0);
  for (const Coeff &E : Entries) {
    std::uint64_t R;
    if (!rationalMod(*E.Value, F, R)) {
      Unlucky = true;
      return false;
    }
    std::uint64_t AV = F.encode(R);
    for (std::size_t C = 0; C < NA; ++C) {
      std::size_t Slot = E.Row * NA + C;
      Acc[Slot] = F.add(Acc[Slot], F.mul(AV, CX[E.Col * NA + C]));
    }
  }
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t C = 0; C < NA; ++C) {
      std::uint64_t Want;
      if (!rationalMod(Rhs[I][C], F, Want)) {
        Unlucky = true;
        return false;
      }
      if (F.decode(Acc[I * NA + C]) != Want)
        return false;
    }
  return true;
}

} // namespace

bool markov::detail::modularEliminateSystem(
    const std::vector<std::map<std::size_t, Rational>> &Rows,
    std::vector<std::vector<Rational>> &Rhs, linalg::OrderingKind Ordering,
    ThreadPool *Pool, const ModularOptions &Options,
    std::size_t &EliminationOps, std::size_t &FillIn, ModularStats &Stats) {
  std::size_t N = Rows.size();
  std::size_t NA = N == 0 ? 0 : Rhs[0].size();
  if (N == 0 || NA == 0)
    return true; // Nothing to solve; avoid spending primes on it.

  std::vector<Coeff> Entries;
  for (std::size_t I = 0; I < N; ++I)
    for (const auto &[Col, V] : Rows[I])
      Entries.push_back({I, Col, &V});

  std::size_t PrimeCursor = Options.FirstPrimeIndex;
  // A system singular mod one prime may just be unlucky; singular mod
  // this many distinct primes in a row is a genuinely singular system
  // (denominator factors are finite), so give up and let the Rational
  // kernel produce the authoritative verdict.
  std::size_t RetryBudget = Options.MaxPrimes + 8;

  BigInt M(1); // Product of accepted primes.
  std::vector<std::uint64_t> M64 = M.magnitudeLimbs64();
  // CRT-combined residues in [0, M), kept as raw 64-bit limb vectors so
  // the per-prime fold is a single allocation-free multiply-accumulate
  // pass (support/ModArith.h crtFoldLimbs64); they become BigInts only at
  // reconstruction attempts.
  std::vector<std::vector<std::uint64_t>> Crt(N * NA);
  std::size_t Accepted = 0;
  std::size_t NextAttempt = 1; // Reconstruct at 1, 2, 4, ... primes.
  std::vector<Rational> Candidate(N * NA);
  // Per-entry reconstruction state machine. Answers stabilize at their own
  // size, not the final modulus: an entry whose candidate survives a prime
  // accepted after it was reconstructed (a residue check it had no hand
  // in) is done, and skips all further EGCD and CRT-fold work. The global
  // fresh-prime verification below still covers every entry.
  //   0 = no candidate; 1 = candidate awaiting a fresh-prime check;
  //   2 = candidate confirmed by a fresh prime.
  std::vector<char> State(N * NA, 0);
  std::size_t Restarts = 0;

  // Reconstruction scan order: rows nearer absorption (BFS distance
  // through the transition structure, absorbing exits as seeds) tend to
  // have the smallest answers, so trying them first lets each attempt
  // retire its whole in-range frontier and stop at the failure cap,
  // instead of burning full-width EGCDs on the hardest rows every time.
  std::vector<std::size_t> ScanOrder(N);
  {
    std::vector<std::size_t> Dist(N, SIZE_MAX);
    std::vector<std::vector<std::size_t>> RevAdj(N);
    std::vector<std::size_t> Queue;
    for (std::size_t I = 0; I < N; ++I) {
      for (const auto &[Col, V] : Rows[I])
        if (Col != I)
          RevAdj[Col].push_back(I);
      for (const Rational &V : Rhs[I])
        if (!V.isZero()) {
          if (Dist[I] == SIZE_MAX) {
            Dist[I] = 0;
            Queue.push_back(I);
          }
          break;
        }
    }
    for (std::size_t Head = 0; Head < Queue.size(); ++Head)
      for (std::size_t P : RevAdj[Queue[Head]])
        if (Dist[P] == SIZE_MAX) {
          Dist[P] = Dist[Queue[Head]] + 1;
          Queue.push_back(P);
        }
    std::iota(ScanOrder.begin(), ScanOrder.end(), std::size_t{0});
    std::stable_sort(ScanOrder.begin(), ScanOrder.end(),
                     [&](std::size_t A, std::size_t B) {
                       return Dist[A] < Dist[B];
                     });
  }

  while (true) {
    std::size_t Target = std::min(NextAttempt, Options.MaxPrimes);

    // Accumulate primes (in deterministic table order) until the target.
    while (Accepted < Target) {
      std::size_t Want = Target - Accepted;
      std::vector<std::uint64_t> Batch(Want);
      for (std::size_t I = 0; I < Want; ++I)
        Batch[I] = modPrime(PrimeCursor++);

      // Independent primes solve concurrently; results fold in batch
      // order below, so the CRT product is deterministic regardless of
      // scheduling.
      std::vector<std::vector<std::uint64_t>> Residues(Want);
      std::vector<char> Lucky(Want, 0);
      std::vector<std::size_t> POps(Want, 0), PFill(Want, 0);
      auto SolveOne = [&](std::size_t I) {
        PrimeField F(Batch[I]);
        std::vector<ModTriplet> A;
        if (!convertSystem(Entries, Rhs, N, NA, F, A, Residues[I]))
          return;
        if (!linalg::modSolveOrdered(F, N, A, Residues[I], NA, Ordering,
                                     POps[I], PFill[I]))
          return;
        for (std::uint64_t &V : Residues[I])
          V = F.decode(V);
        Lucky[I] = 1;
      };
      if (Pool && Want > 1)
        Pool->parallelFor(Want, SolveOne);
      else
        for (std::size_t I = 0; I < Want; ++I)
          SolveOne(I);

      for (std::size_t I = 0; I < Want; ++I) {
        EliminationOps += POps[I];
        FillIn += PFill[I];
        if (!Lucky[I]) {
          ++Stats.RetriedPrimes;
          if (RetryBudget-- == 0)
            return false; // Singular mod every prime tried: fall back.
          continue;
        }
        PrimeField F(Batch[I]);
        std::uint64_t InvM = F.inv(F.encode(M.modU64(F.prime())));
        for (std::size_t E = 0; E < N * NA; ++E) {
          if (State[E] == 2)
            continue; // Confirmed: this entry's answer is already known.
          if (State[E] == 1) {
            std::uint64_t Got;
            if (rationalMod(Candidate[E], F, Got) &&
                Got == Residues[I][E]) {
              State[E] = 2; // Survived a prime it was not built from.
              continue;
            }
            State[E] = 0; // Refuted (or unlucky prime): reconstruct anew.
          }
          // In-place CRT lift: X += M·((r - X)·M^{-1} mod p).
          std::uint64_t XModP = F.encode(limbs64ModU64(Crt[E], F.prime()));
          std::uint64_t T = F.decode(
              F.mul(F.sub(F.encode(Residues[I][E]), XModP), InvM));
          crtFoldLimbs64(Crt[E], M64, T);
        }
        M *= BigInt::fromUnsigned(F.prime());
        M64 = M.magnitudeLimbs64();
        ++Accepted;
        ++Stats.NumPrimes;
      }
    }

    // Attempt reconstruction at the Wang bound, then verify against
    // fresh primes — the reconstruction is checked, never trusted.
    // Unconfirmed entries reconstruct even when the attempt as a whole
    // fails: their candidates get checked against the next batch of
    // primes, so entries with small answers retire early instead of
    // re-running EGCD at every larger modulus. A failure cap bounds the
    // wasted work when most entries are still far from their answer.
    BigInt Bound = isqrtBigInt((M - BigInt(1)) / BigInt(2));
    bool Reconstructed = true;
    std::size_t Failures = 0;
    for (std::size_t RI = 0; RI < N && Failures < 8; ++RI)
      for (std::size_t C = 0; C < NA && Failures < 8; ++C) {
        std::size_t E = ScanOrder[RI] * NA + C;
        if (State[E] == 2)
          continue;
        if (rationalReconstruct(BigInt::fromLimbs64(false, Crt[E]), M, Bound,
                                Candidate[E])) {
          State[E] = 1;
        } else {
          Reconstructed = false;
          ++Failures;
        }
      }
    if (Reconstructed) {
      std::size_t Verified = 0;
      bool Mismatch = false;
      while (Verified < Options.CheckPrimes && !Mismatch) {
        PrimeField F(modPrime(PrimeCursor++));
        bool Unlucky = false;
        if (verifyAgainstPrime(Entries, Rhs, Candidate, N, NA, F, Unlucky))
          ++Verified;
        else if (Unlucky) {
          ++Stats.RetriedPrimes;
          if (RetryBudget-- == 0)
            return false;
        } else {
          Mismatch = true; // Premature reconstruction: need more primes.
        }
      }
      if (!Mismatch) {
        for (std::size_t I = 0; I < N; ++I)
          for (std::size_t C = 0; C < NA; ++C)
            Rhs[I][C] = Candidate[I * NA + C];
        Stats.ReconstructionBits = M.bitLength();
        return true;
      }
      // With no confirmed entries the mismatch is just a premature
      // reconstruction — every CRT image is still live, so accumulating
      // more primes repairs it. A *confirmed* entry, though, stopped
      // folding the moment it was confirmed: if it is the wrong one, its
      // CRT image is stale and cannot be repaired incrementally, so
      // restart the accumulation from fresh primes. Needing that twice
      // means the system defeats the residue checks structurally; hand
      // it to the Rational kernel.
      if (std::any_of(State.begin(), State.end(),
                      [](char S) { return S == 2; })) {
        if (++Restarts > 1)
          return false;
        for (std::size_t E = 0; E < N * NA; ++E) {
          State[E] = 0;
          Crt[E].clear();
        }
        M = BigInt(1);
        M64 = M.magnitudeLimbs64();
        Accepted = 0;
      }
    }

    if (Accepted >= Options.MaxPrimes)
      return false; // Prime budget exhausted: Rational fallback.
    // Double while cheap, then grow by quarters: the modulus only needs to
    // clear the largest answer, and overshooting it inflates every
    // remaining EGCD and fold quadratically.
    NextAttempt = Accepted < 16 ? std::max<std::size_t>(1, Accepted * 2)
                                : Accepted + std::max<std::size_t>(4, Accepted / 4);
  }
}

bool markov::solveAbsorptionModular(const AbsorbingChain &Chain,
                                    DenseMatrix<Rational> &Out,
                                    const SolverStructure &Structure,
                                    SolveMetrics *Metrics) {
  if (Structure.Blocked)
    return detail::solveAbsorptionModularBlocked(Chain, Out, Structure,
                                                 Metrics);
  std::size_t NT = Chain.NumTransient, NA = Chain.NumAbsorbing;
  ChainPruning Pruned = pruneUnreachableStates(Chain);
  std::size_t NK = Pruned.NumKept;

  Out = DenseMatrix<Rational>(NT, NA);
  if (Metrics)
    *Metrics = SolveMetrics();
  if (NK == 0)
    return true;

  // Assemble I - Q and the R right-hand side exactly as the Rational
  // engine does; the modular path reads the system non-destructively, so
  // a fallback reuses it as-is.
  std::vector<std::map<std::size_t, Rational>> Rows(NK);
  std::vector<std::vector<Rational>> Rhs(NK, std::vector<Rational>(NA));
  std::size_t NumKeptQ = 0;
  for (std::size_t K = 0; K < NK; ++K)
    Rows[K][K] = Rational(1);
  for (const RationalTriplet &E : Chain.QEntries) {
    assert(E.Row < NT && E.Col < NT && "Q entry out of range");
    if (E.Value.isZero() || !Pruned.CanReach[E.Row] ||
        !Pruned.CanReach[E.Col])
      continue;
    ++NumKeptQ;
    Rational &Cell = Rows[Pruned.Compact[E.Row]][Pruned.Compact[E.Col]];
    Cell -= E.Value;
    if (Cell.isZero())
      Rows[Pruned.Compact[E.Row]].erase(Pruned.Compact[E.Col]);
  }
  for (const RationalTriplet &E : Chain.REntries) {
    assert(E.Row < NT && E.Col < NA && "R entry out of range");
    if (Pruned.CanReach[E.Row])
      Rhs[Pruned.Compact[E.Row]][E.Col] += E.Value;
  }

  std::size_t Ops = 0, Fill = 0, Fallbacks = 0;
  detail::ModularStats Stats;
  if (!detail::modularEliminateSystem(Rows, Rhs, Structure.Ordering,
                                      Structure.Pool, Structure.Modular,
                                      Ops, Fill, Stats)) {
    // Prime budget exhausted (or the system is singular): the Rows maps
    // are untouched, so the Rational kernel takes over authoritatively.
    ++Fallbacks;
    if (!detail::eliminateRationalSystem(Rows, Rhs, Ops, Fill))
      return false;
  }

  for (std::size_t K = 0; K < NK; ++K)
    for (std::size_t C = 0; C < NA; ++C)
      Out.at(Pruned.Original[K], C) = Rhs[K][C];

  if (Metrics) {
    Metrics->NumSolved = NK;
    Metrics->NumSolvedQ = NumKeptQ;
    Metrics->NumBlocks = 1;
    Metrics->MaxBlockSize = NK;
    Metrics->EliminationOps = Ops;
    Metrics->FillIn = Fill;
    Metrics->NumPrimes = Stats.NumPrimes;
    Metrics->RetriedPrimes = Stats.RetriedPrimes;
    Metrics->ReconstructionBits = Stats.ReconstructionBits;
    Metrics->ModularFallbacks = Fallbacks;
    Metrics->Blocks.push_back({NK, NumKeptQ, Ops, Fill});
  }
  return true;
}
