//===----------------------------------------------------------------------===//
///
/// \file
/// Absorption probabilities A = (I - Q)^{-1} R (Thm 4.7) via the three
/// engines: exact rational elimination, sparse-LU over double, and
/// Neumann iteration. The monolithic paths live here; the SCC-blocked
/// paths (docs/ARCHITECTURE.md S13) are in BlockSolve.cpp and share this
/// file's pruning and elimination kernels so their operation counts are
/// directly comparable.
///
//===----------------------------------------------------------------------===//

#include "markov/Absorbing.h"

#include "linalg/Solve.h"
#include "linalg/SparseLU.h"

#include <cassert>
#include <cmath>
#include <map>
#include <set>
#include <vector>

using namespace mcnk;
using namespace mcnk::markov;
using linalg::DenseMatrix;
using linalg::SparseMatrix;
using linalg::Triplet;

ChainPruning markov::pruneUnreachableStates(const AbsorbingChain &Chain) {
  std::size_t NT = Chain.NumTransient;
  // Reverse adjacency over Q.
  std::vector<std::vector<std::size_t>> Preds(NT);
  for (const RationalTriplet &E : Chain.QEntries)
    if (!E.Value.isZero())
      Preds[E.Col].push_back(E.Row);

  ChainPruning Result;
  Result.CanReach.assign(NT, false);
  std::vector<std::size_t> Worklist;
  for (const RationalTriplet &E : Chain.REntries)
    if (!E.Value.isZero() && !Result.CanReach[E.Row]) {
      Result.CanReach[E.Row] = true;
      Worklist.push_back(E.Row);
    }
  while (!Worklist.empty()) {
    std::size_t S = Worklist.back();
    Worklist.pop_back();
    for (std::size_t P : Preds[S])
      if (!Result.CanReach[P]) {
        Result.CanReach[P] = true;
        Worklist.push_back(P);
      }
  }

  Result.Compact.assign(NT, 0);
  for (std::size_t I = 0; I < NT; ++I)
    if (Result.CanReach[I]) {
      Result.Compact[I] = Result.NumKept++;
      Result.Original.push_back(I);
    }
  return Result;
}

bool markov::detail::eliminateRationalSystem(
    std::vector<std::map<std::size_t, Rational>> &Rows,
    std::vector<std::vector<Rational>> &Rhs, std::size_t &EliminationOps,
    std::size_t &FillIn) {
  std::size_t NK = Rows.size();
  std::size_t NA = NK == 0 ? 0 : Rhs[0].size();

  // Sparse Gauss-Jordan with min-degree pivoting on the (always nonzero)
  // diagonal. Network chains are nearly acyclic, so a fill-minimizing
  // order keeps both the sparsity and the rational coefficient growth
  // under control — a dense elimination over bignum rationals is hopeless
  // beyond a few dozen states.
  //
  // Column -> rows currently holding a nonzero in that column.
  std::vector<std::set<std::size_t>> ColRows(NK);
  for (std::size_t K = 0; K < NK; ++K)
    for (const auto &[Col, V] : Rows[K]) {
      (void)V;
      ColRows[Col].insert(K);
    }

  std::vector<bool> Eliminated(NK, false);
  for (std::size_t Step = 0; Step < NK; ++Step) {
    // Min-degree pivot: cheapest (row nnz - 1) * (col nnz - 1) product.
    std::size_t Pivot = SIZE_MAX, BestScore = SIZE_MAX;
    for (std::size_t K = 0; K < NK; ++K) {
      if (Eliminated[K])
        continue;
      if (Rows[K].empty())
        return false; // A row eliminated to zero: singular system.
      std::size_t Score =
          (Rows[K].size() - 1) * (ColRows[K].size() - 1);
      if (Score < BestScore) {
        BestScore = Score;
        Pivot = K;
        if (Score == 0)
          break;
      }
    }
    if (Pivot == SIZE_MAX)
      return false; // No pivotable row left: singular system.
    auto PivIt = Rows[Pivot].find(Pivot);
    if (PivIt == Rows[Pivot].end() || PivIt->second.isZero())
      return false; // Should not happen after pruning.

    // Normalize the pivot row.
    Rational Inv = PivIt->second.reciprocal();
    if (!Inv.isOne()) {
      for (auto &[Col, V] : Rows[Pivot])
        V *= Inv;
      for (Rational &V : Rhs[Pivot])
        if (!V.isZero())
          V *= Inv;
    }
    Eliminated[Pivot] = true;

    // Substitute into every other row holding the pivot column.
    std::vector<std::size_t> Users(ColRows[Pivot].begin(),
                                   ColRows[Pivot].end());
    for (std::size_t User : Users) {
      if (User == Pivot)
        continue;
      auto It = Rows[User].find(Pivot);
      if (It == Rows[User].end())
        continue;
      Rational Coeff = It->second;
      Rows[User].erase(It);
      ColRows[Pivot].erase(User);
      // Fused in-place axpy on both the row and its right-hand side —
      // the hot kernel of the exact engine (no Rational temporaries on
      // the int64 fast path).
      for (const auto &[Col, V] : Rows[Pivot]) {
        if (Col == Pivot)
          continue;
        Rational &Cell = Rows[User][Col];
        bool WasZero = Cell.isZero();
        Cell.subMul(Coeff, V);
        ++EliminationOps;
        if (Cell.isZero())
          Rows[User].erase(Col);
        else if (WasZero) {
          ColRows[Col].insert(User);
          ++FillIn;
        }
      }
      for (std::size_t C = 0; C < NA; ++C)
        if (!Rhs[Pivot][C].isZero()) {
          Rhs[User][C].subMul(Coeff, Rhs[Pivot][C]);
          ++EliminationOps;
        }
    }
  }

  for (std::size_t K = 0; K < NK; ++K) {
    (void)K;
    assert(Rows[K].size() == 1 && Rows[K].count(K) == 1 &&
           "Gauss-Jordan left a non-diagonal entry");
  }
  return true;
}

bool markov::solveAbsorptionExact(const AbsorbingChain &Chain,
                                  DenseMatrix<Rational> &Out,
                                  const SolverStructure &Structure,
                                  SolveMetrics *Metrics) {
  if (Structure.Blocked)
    return detail::solveAbsorptionExactBlocked(Chain, Out, Structure,
                                               Metrics);
  std::size_t NT = Chain.NumTransient, NA = Chain.NumAbsorbing;
  ChainPruning Pruned = pruneUnreachableStates(Chain);
  std::size_t NK = Pruned.NumKept;

  Out = DenseMatrix<Rational>(NT, NA);
  if (Metrics)
    *Metrics = SolveMetrics();
  if (NK == 0)
    return true;

  std::vector<std::map<std::size_t, Rational>> Rows(NK);
  std::vector<std::vector<Rational>> Rhs(NK,
                                         std::vector<Rational>(NA));
  std::size_t NumKeptQ = 0;
  for (std::size_t K = 0; K < NK; ++K)
    Rows[K][K] = Rational(1);
  for (const RationalTriplet &E : Chain.QEntries) {
    assert(E.Row < NT && E.Col < NT && "Q entry out of range");
    if (E.Value.isZero() || !Pruned.CanReach[E.Row] ||
        !Pruned.CanReach[E.Col])
      continue;
    ++NumKeptQ;
    Rational &Cell =
        Rows[Pruned.Compact[E.Row]][Pruned.Compact[E.Col]];
    Cell -= E.Value;
    if (Cell.isZero())
      Rows[Pruned.Compact[E.Row]].erase(Pruned.Compact[E.Col]);
  }
  for (const RationalTriplet &E : Chain.REntries) {
    assert(E.Row < NT && E.Col < NA && "R entry out of range");
    if (Pruned.CanReach[E.Row])
      Rhs[Pruned.Compact[E.Row]][E.Col] += E.Value;
  }

  std::size_t Ops = 0, Fill = 0;
  if (!detail::eliminateRationalSystem(Rows, Rhs, Ops, Fill))
    return false;

  for (std::size_t K = 0; K < NK; ++K)
    for (std::size_t C = 0; C < NA; ++C)
      Out.at(Pruned.Original[K], C) = Rhs[K][C];

  if (Metrics) {
    Metrics->NumSolved = NK;
    Metrics->NumSolvedQ = NumKeptQ;
    Metrics->NumBlocks = 1;
    Metrics->MaxBlockSize = NK;
    Metrics->EliminationOps = Ops;
    Metrics->FillIn = Fill;
    Metrics->Blocks.push_back({NK, NumKeptQ, Ops, Fill});
  }
  return true;
}

bool markov::detail::luSolveOrdered(std::size_t N,
                                    const std::vector<Triplet> &QTriplets,
                                    DenseMatrix<double> &Rhs,
                                    linalg::OrderingKind Ordering,
                                    std::size_t &EliminationOps,
                                    std::size_t &FillIn) {
  // Fill-reducing permutation over the symmetrized pattern of I - Q (the
  // diagonal is structurally present, so Q's off-diagonal pattern is the
  // whole story). Natural skips the permutation machinery entirely and
  // reproduces the historical factorization bit for bit.
  bool Permute = Ordering != linalg::OrderingKind::Natural;
  std::vector<std::size_t> Inverse;
  if (Permute) {
    linalg::AdjacencyList Adj(N);
    for (const Triplet &E : QTriplets)
      Adj[E.Row].push_back(E.Col);
    std::vector<std::size_t> Perm =
        linalg::fillReducingOrdering(Ordering, linalg::symmetrizedPattern(Adj));
    Inverse = linalg::inversePermutation(Perm);
  }

  std::vector<Triplet> Entries;
  Entries.reserve(QTriplets.size() + N);
  for (const Triplet &E : QTriplets)
    Entries.push_back({Permute ? Inverse[E.Row] : E.Row,
                       Permute ? Inverse[E.Col] : E.Col, -E.Value});
  for (std::size_t I = 0; I < N; ++I)
    Entries.push_back({I, I, 1.0});
  SparseMatrix IminusQ =
      SparseMatrix::fromTriplets(N, N, std::move(Entries));
  linalg::SparseLU LU;
  if (!LU.factor(IminusQ))
    return false;
  EliminationOps += LU.numEliminationOps();
  std::size_t FactorEntries = LU.numFactorEntries();
  std::size_t Assembled = IminusQ.numNonZeros();
  FillIn += FactorEntries > Assembled ? FactorEntries - Assembled : 0;

  // Solve P(I-Q)P^T x' = P b per column, with x'[k] the solution entry of
  // the original index Perm[k]; undo the permutation on write-back.
  std::size_t NA = Rhs.numCols();
  std::vector<double> Col(N);
  for (std::size_t J = 0; J < NA; ++J) {
    for (std::size_t I = 0; I < N; ++I)
      Col[Permute ? Inverse[I] : I] = Rhs.at(I, J);
    LU.solve(Col);
    for (std::size_t I = 0; I < N; ++I)
      Rhs.at(I, J) = Col[Permute ? Inverse[I] : I];
  }
  return true;
}

bool markov::solveAbsorptionDouble(const AbsorbingChain &Chain,
                                   DenseMatrix<double> &Out,
                                   SolverKind Kind,
                                   const SolverStructure &Structure,
                                   SolveMetrics *Metrics) {
  assert(Kind != SolverKind::Exact && Kind != SolverKind::ModularExact &&
         "use solveAbsorptionExact / solveAbsorptionModular");
  if (Structure.Blocked && Kind == SolverKind::Direct)
    return detail::solveAbsorptionDoubleBlocked(Chain, Out, Structure,
                                                Metrics);
  std::size_t NT = Chain.NumTransient, NA = Chain.NumAbsorbing;
  ChainPruning Pruned = pruneUnreachableStates(Chain);
  std::size_t NK = Pruned.NumKept;

  Out = DenseMatrix<double>(NT, NA);
  if (Metrics)
    *Metrics = SolveMetrics();
  if (NK == 0)
    return true;

  std::vector<Triplet> QT;
  QT.reserve(Chain.QEntries.size());
  std::size_t NumKeptQ = 0;
  for (const RationalTriplet &E : Chain.QEntries)
    if (!E.Value.isZero() && Pruned.CanReach[E.Row] &&
        Pruned.CanReach[E.Col]) {
      ++NumKeptQ;
      QT.push_back({Pruned.Compact[E.Row], Pruned.Compact[E.Col],
                    E.Value.toDouble()});
    }

  DenseMatrix<double> R(NK, NA);
  for (const RationalTriplet &E : Chain.REntries)
    if (Pruned.CanReach[E.Row])
      R.at(Pruned.Compact[E.Row], E.Col) += E.Value.toDouble();

  std::size_t Ops = 0, Fill = 0;
  if (Kind == SolverKind::Direct) {
    // Assemble I - Q and factor once; back-solve per absorbing column.
    if (!detail::luSolveOrdered(NK, QT, R, Structure.Ordering, Ops, Fill))
      return false;
  } else {
    // Iterative: x = Qx + r per absorbing column.
    SparseMatrix Q = SparseMatrix::fromTriplets(NK, NK, QT);
    std::vector<double> Col(NK), X;
    for (std::size_t J = 0; J < NA; ++J) {
      for (std::size_t I = 0; I < NK; ++I)
        Col[I] = R.at(I, J);
      std::size_t Iterations = linalg::neumannSolve(Q, Col, X);
      if (Iterations == 0)
        return false;
      Ops += Iterations * Q.numNonZeros();
      for (std::size_t I = 0; I < NK; ++I)
        R.at(I, J) = X[I];
    }
  }

  for (std::size_t K = 0; K < NK; ++K)
    for (std::size_t C = 0; C < NA; ++C)
      Out.at(Pruned.Original[K], C) = R.at(K, C);

  if (Metrics) {
    Metrics->NumSolved = NK;
    Metrics->NumSolvedQ = NumKeptQ;
    Metrics->NumBlocks = 1;
    Metrics->MaxBlockSize = NK;
    Metrics->EliminationOps = Ops;
    Metrics->FillIn = Fill;
    Metrics->Blocks.push_back({NK, NumKeptQ, Ops, Fill});
  }
  return true;
}

bool markov::rowsAreStochastic(const AbsorbingChain &Chain, double Tol) {
  std::vector<double> RowSum(Chain.NumTransient, 0.0);
  for (const RationalTriplet &E : Chain.QEntries)
    RowSum[E.Row] += E.Value.toDouble();
  for (const RationalTriplet &E : Chain.REntries)
    RowSum[E.Row] += E.Value.toDouble();
  for (double Sum : RowSum)
    if (std::fabs(Sum - 1.0) > Tol)
      return false;
  return true;
}
