//===----------------------------------------------------------------------===//
///
/// \file
/// Absorption probabilities A = (I - Q)^{-1} R (Thm 4.7) via the three
/// engines: exact rational elimination, sparse-LU over double, and
/// Neumann iteration.
///
//===----------------------------------------------------------------------===//

#include "markov/Absorbing.h"

#include "linalg/Solve.h"
#include "linalg/SparseLU.h"

#include <cassert>
#include <cmath>
#include <map>
#include <set>
#include <vector>

using namespace mcnk;
using namespace mcnk::markov;
using linalg::DenseMatrix;
using linalg::SparseMatrix;
using linalg::Triplet;

namespace {

/// Computes which transient states can reach an absorbing state (reverse
/// BFS from rows with R mass through Q edges). Mass in states that cannot
/// reach absorption diverges; the language interprets it as dropped, so
/// those rows of the absorption matrix are zero and the states are pruned
/// from the linear system. After pruning, I - Q is nonsingular (every
/// remaining state reaches a defective row; Lemma B.3 of the paper).
struct PrunedChain {
  std::vector<bool> CanReach;          // indexed by transient state
  std::vector<std::size_t> Compact;    // old index -> compact index
  std::vector<std::size_t> Original;   // compact index -> old index
  std::size_t NumKept = 0;
};

PrunedChain pruneUnreachable(const AbsorbingChain &Chain) {
  std::size_t NT = Chain.NumTransient;
  // Reverse adjacency over Q.
  std::vector<std::vector<std::size_t>> Preds(NT);
  for (const RationalTriplet &E : Chain.QEntries)
    if (!E.Value.isZero())
      Preds[E.Col].push_back(E.Row);

  PrunedChain Result;
  Result.CanReach.assign(NT, false);
  std::vector<std::size_t> Worklist;
  for (const RationalTriplet &E : Chain.REntries)
    if (!E.Value.isZero() && !Result.CanReach[E.Row]) {
      Result.CanReach[E.Row] = true;
      Worklist.push_back(E.Row);
    }
  while (!Worklist.empty()) {
    std::size_t S = Worklist.back();
    Worklist.pop_back();
    for (std::size_t P : Preds[S])
      if (!Result.CanReach[P]) {
        Result.CanReach[P] = true;
        Worklist.push_back(P);
      }
  }

  Result.Compact.assign(NT, 0);
  for (std::size_t I = 0; I < NT; ++I)
    if (Result.CanReach[I]) {
      Result.Compact[I] = Result.NumKept++;
      Result.Original.push_back(I);
    }
  return Result;
}

} // namespace

bool markov::solveAbsorptionExact(const AbsorbingChain &Chain,
                                  DenseMatrix<Rational> &Out) {
  std::size_t NT = Chain.NumTransient, NA = Chain.NumAbsorbing;
  PrunedChain Pruned = pruneUnreachable(Chain);
  std::size_t NK = Pruned.NumKept;

  Out = DenseMatrix<Rational>(NT, NA);
  if (NK == 0)
    return true;

  // Sparse Gauss-Jordan elimination on (I - Q) X = R with min-degree
  // pivoting on the (always nonzero) diagonal. Network chains are nearly
  // acyclic, so a fill-minimizing order keeps both the sparsity and the
  // rational coefficient growth under control — a dense elimination over
  // bignum rationals is hopeless beyond a few dozen states.
  std::vector<std::map<std::size_t, Rational>> Rows(NK);
  std::vector<std::vector<Rational>> Rhs(NK,
                                         std::vector<Rational>(NA));
  for (std::size_t K = 0; K < NK; ++K)
    Rows[K][K] = Rational(1);
  for (const RationalTriplet &E : Chain.QEntries) {
    assert(E.Row < NT && E.Col < NT && "Q entry out of range");
    if (Pruned.CanReach[E.Row] && Pruned.CanReach[E.Col]) {
      Rational &Cell =
          Rows[Pruned.Compact[E.Row]][Pruned.Compact[E.Col]];
      Cell -= E.Value;
      if (Cell.isZero())
        Rows[Pruned.Compact[E.Row]].erase(Pruned.Compact[E.Col]);
    }
  }
  for (const RationalTriplet &E : Chain.REntries) {
    assert(E.Row < NT && E.Col < NA && "R entry out of range");
    if (Pruned.CanReach[E.Row])
      Rhs[Pruned.Compact[E.Row]][E.Col] += E.Value;
  }

  // Column -> rows currently holding a nonzero in that column.
  std::vector<std::set<std::size_t>> ColRows(NK);
  for (std::size_t K = 0; K < NK; ++K)
    for (const auto &[Col, V] : Rows[K]) {
      (void)V;
      ColRows[Col].insert(K);
    }

  std::vector<bool> Eliminated(NK, false);
  for (std::size_t Step = 0; Step < NK; ++Step) {
    // Min-degree pivot: cheapest (row nnz - 1) * (col nnz - 1) product.
    std::size_t Pivot = SIZE_MAX, BestScore = SIZE_MAX;
    for (std::size_t K = 0; K < NK; ++K) {
      if (Eliminated[K])
        continue;
      std::size_t Score =
          (Rows[K].size() - 1) * (ColRows[K].size() - 1);
      if (Score < BestScore) {
        BestScore = Score;
        Pivot = K;
        if (Score == 0)
          break;
      }
    }
    assert(Pivot != SIZE_MAX && "no pivot left");
    auto PivIt = Rows[Pivot].find(Pivot);
    if (PivIt == Rows[Pivot].end() || PivIt->second.isZero())
      return false; // Should not happen after pruning.

    // Normalize the pivot row.
    Rational Inv = PivIt->second.reciprocal();
    if (!Inv.isOne()) {
      for (auto &[Col, V] : Rows[Pivot])
        V *= Inv;
      for (Rational &V : Rhs[Pivot])
        if (!V.isZero())
          V *= Inv;
    }
    Eliminated[Pivot] = true;

    // Substitute into every other row holding the pivot column.
    std::vector<std::size_t> Users(ColRows[Pivot].begin(),
                                   ColRows[Pivot].end());
    for (std::size_t User : Users) {
      if (User == Pivot)
        continue;
      auto It = Rows[User].find(Pivot);
      if (It == Rows[User].end())
        continue;
      Rational Coeff = It->second;
      Rows[User].erase(It);
      ColRows[Pivot].erase(User);
      // Fused in-place axpy on both the row and its right-hand side —
      // the hot kernel of the exact engine (no Rational temporaries on
      // the int64 fast path).
      for (const auto &[Col, V] : Rows[Pivot]) {
        if (Col == Pivot)
          continue;
        Rational &Cell = Rows[User][Col];
        bool WasZero = Cell.isZero();
        Cell.subMul(Coeff, V);
        if (Cell.isZero())
          Rows[User].erase(Col);
        else if (WasZero)
          ColRows[Col].insert(User);
      }
      for (std::size_t C = 0; C < NA; ++C)
        if (!Rhs[Pivot][C].isZero())
          Rhs[User][C].subMul(Coeff, Rhs[Pivot][C]);
    }
  }

  for (std::size_t K = 0; K < NK; ++K) {
    assert(Rows[K].size() == 1 && Rows[K].count(K) == 1 &&
           "Gauss-Jordan left a non-diagonal entry");
    for (std::size_t C = 0; C < NA; ++C)
      Out.at(Pruned.Original[K], C) = Rhs[K][C];
  }
  return true;
}

bool markov::solveAbsorptionDouble(const AbsorbingChain &Chain,
                                   DenseMatrix<double> &Out,
                                   SolverKind Kind) {
  assert(Kind != SolverKind::Exact && "use solveAbsorptionExact");
  std::size_t NT = Chain.NumTransient, NA = Chain.NumAbsorbing;
  PrunedChain Pruned = pruneUnreachable(Chain);
  std::size_t NK = Pruned.NumKept;

  Out = DenseMatrix<double>(NT, NA);
  if (NK == 0)
    return true;

  std::vector<Triplet> QT;
  QT.reserve(Chain.QEntries.size());
  for (const RationalTriplet &E : Chain.QEntries)
    if (Pruned.CanReach[E.Row] && Pruned.CanReach[E.Col])
      QT.push_back({Pruned.Compact[E.Row], Pruned.Compact[E.Col],
                    E.Value.toDouble()});

  DenseMatrix<double> R(NK, NA);
  for (const RationalTriplet &E : Chain.REntries)
    if (Pruned.CanReach[E.Row])
      R.at(Pruned.Compact[E.Row], E.Col) += E.Value.toDouble();

  DenseMatrix<double> Solved(NK, NA);
  if (Kind == SolverKind::Direct) {
    // Assemble I - Q and factor once; back-solve per absorbing column.
    std::vector<Triplet> Entries = QT;
    for (Triplet &E : Entries)
      E.Value = -E.Value;
    for (std::size_t I = 0; I < NK; ++I)
      Entries.push_back({I, I, 1.0});
    SparseMatrix IminusQ = SparseMatrix::fromTriplets(NK, NK, Entries);
    linalg::SparseLU LU;
    if (!LU.factor(IminusQ))
      return false;
    std::vector<double> Col(NK);
    for (std::size_t J = 0; J < NA; ++J) {
      for (std::size_t I = 0; I < NK; ++I)
        Col[I] = R.at(I, J);
      LU.solve(Col);
      for (std::size_t I = 0; I < NK; ++I)
        Solved.at(I, J) = Col[I];
    }
  } else {
    // Iterative: x = Qx + r per absorbing column.
    SparseMatrix Q = SparseMatrix::fromTriplets(NK, NK, QT);
    std::vector<double> Col(NK), X;
    for (std::size_t J = 0; J < NA; ++J) {
      for (std::size_t I = 0; I < NK; ++I)
        Col[I] = R.at(I, J);
      if (linalg::neumannSolve(Q, Col, X) == 0)
        return false;
      for (std::size_t I = 0; I < NK; ++I)
        Solved.at(I, J) = X[I];
    }
  }

  for (std::size_t K = 0; K < NK; ++K)
    for (std::size_t C = 0; C < NA; ++C)
      Out.at(Pruned.Original[K], C) = Solved.at(K, C);
  return true;
}

bool markov::rowsAreStochastic(const AbsorbingChain &Chain, double Tol) {
  std::vector<double> RowSum(Chain.NumTransient, 0.0);
  for (const RationalTriplet &E : Chain.QEntries)
    RowSum[E.Row] += E.Value.toDouble();
  for (const RationalTriplet &E : Chain.REntries)
    RowSum[E.Row] += E.Value.toDouble();
  for (double Sum : RowSum)
    if (std::fabs(Sum - 1.0) > Tol)
      return false;
  return true;
}
