//===----------------------------------------------------------------------===//
///
/// \file
/// Absorbing Markov chain analysis (paper §4). Given the transient-to-
/// transient block Q and transient-to-absorbing block R of an absorbing
/// chain, computes the absorption probabilities A = (I - Q)^{-1} R
/// (Equation 2 / Theorem 4.7). Three engines:
///   - exact:     sparse Gauss-Jordan elimination over Rational
///   - direct:    sparse LU over double (the paper's UMFPACK configuration)
///   - iterative: Neumann-series iteration over double (PRISM-style approx)
///
/// Each engine can additionally run *blocked* (docs/ARCHITECTURE.md S13):
/// the transient graph is decomposed into strongly connected components,
/// and the condensation DAG is eliminated class by class in reverse
/// topological order — absorption out of a class depends only on already
/// solved downstream classes, so independent classes solve concurrently on
/// a shared ThreadPool and each block can be permuted by a fill-reducing
/// ordering before factorization. The exact blocked solve is
/// reference-equal to the monolithic one (rationals have no rounding);
/// the double blocked solve agrees up to elimination-order ulps.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_MARKOV_ABSORBING_H
#define MCNK_MARKOV_ABSORBING_H

#include "linalg/Dense.h"
#include "linalg/Ordering.h"
#include "linalg/Sparse.h"
#include "support/Rational.h"

#include <cstddef>
#include <map>
#include <vector>

namespace mcnk {

class ThreadPool;

namespace markov {

/// A rational-valued sparse entry of the Q or R block.
struct RationalTriplet {
  std::size_t Row;
  std::size_t Col;
  Rational Value;
};

/// Sparse description of an absorbing chain's transient rows: Q is
/// NumTransient x NumTransient, R is NumTransient x NumAbsorbing. Rows must
/// be substochastic: Q-row sum + R-row sum == 1 for genuine chains.
struct AbsorbingChain {
  std::size_t NumTransient = 0;
  std::size_t NumAbsorbing = 0;
  std::vector<RationalTriplet> QEntries;
  std::vector<RationalTriplet> REntries;
};

/// Solver selection for absorption probabilities.
enum class SolverKind {
  Exact,     ///< Rational Gaussian elimination; no rounding anywhere.
  Direct,    ///< Sparse LU over double (paper's native configuration).
  Iterative, ///< Neumann iteration over double.
  ModularExact, ///< Multi-prime mod-p elimination + CRT/rational
                ///< reconstruction; exact, reference-equal to Exact
                ///< (docs/ARCHITECTURE.md S14).
};

/// Knobs of the multi-prime modular engine (SolverKind::ModularExact).
/// The defaults handle every well-formed chain; tests shrink MaxPrimes to
/// force the Rational fallback and shift FirstPrimeIndex to replay an
/// unlucky-prime walk from a printed seed.
struct ModularOptions {
  /// Prime budget: once this many primes have been accepted without a
  /// verified reconstruction, the solve falls back to the Rational
  /// kernel (recorded in SolveMetrics::ModularFallbacks). The modulus
  /// only ever grows to just past the largest answer (attempts confirm
  /// entries incrementally), so the default is a runaway guard — ~250k
  /// bits of answer — not a tuning knob.
  std::size_t MaxPrimes = 4096;
  /// Fresh primes the reconstructed solution is re-verified against
  /// (residue check of the full system) before being accepted.
  std::size_t CheckPrimes = 2;
  /// Index into the deterministic modPrime() table where this solve
  /// starts drawing primes.
  std::size_t FirstPrimeIndex = 0;
};

/// How the linear system is decomposed, orthogonal to SolverKind. The
/// default reproduces the monolithic solve exactly.
struct SolverStructure {
  /// Eliminate per strongly-connected block of the transient graph, in
  /// reverse topological order of the condensation DAG, instead of as one
  /// monolithic system. Applies to the Exact and Direct engines; the
  /// Iterative engine always solves monolithically (its convergence
  /// criterion is a whole-system residual).
  bool Blocked = false;
  /// Fill-reducing permutation applied inside each block before sparse LU
  /// (Direct engine only; the exact engine already pivots dynamically by
  /// minimum degree). Natural leaves the system untouched.
  linalg::OrderingKind Ordering = linalg::OrderingKind::Natural;
  /// When non-null and Blocked is set, independent blocks solve
  /// concurrently on this pool (dependency-counted DAG schedule). Null
  /// solves blocks serially in id order. The ModularExact engine also
  /// fans independent primes out on the same pool (the pool is nestable,
  /// so blocks and primes compose).
  ThreadPool *Pool = nullptr;
  /// Multi-prime knobs; only read by SolverKind::ModularExact.
  ModularOptions Modular;
};

/// Elimination statistics of one solve block (or of the whole system for a
/// monolithic solve, which reports itself as a single block).
struct BlockMetrics {
  std::size_t NumStates = 0;       ///< Transient states in the block.
  std::size_t NumQEntries = 0;     ///< Kept Q entries rooted in the block.
  std::size_t EliminationOps = 0;  ///< Multiply-subtract operations.
  std::size_t FillIn = 0;          ///< Entries created by elimination.
};

/// Aggregated solve statistics. Per-block entries always sum to the
/// totals: Σ Blocks[i].NumStates == NumSolved, Σ NumQEntries ==
/// NumSolvedQ, and likewise for EliminationOps / FillIn — a monolithic
/// solve is simply the one-block case.
struct SolveMetrics {
  std::size_t NumSolved = 0;      ///< Transient states kept after pruning.
  std::size_t NumSolvedQ = 0;     ///< Q entries inside the kept subgraph.
  std::size_t NumBlocks = 0;
  std::size_t MaxBlockSize = 0;
  std::size_t EliminationOps = 0;
  std::size_t FillIn = 0;
  /// ModularExact only (zero elsewhere): primes accepted into the CRT
  /// product, unlucky primes discarded along the way, the bit length of
  /// the prime product backing the accepted reconstruction (max over
  /// blocks for a blocked solve), and systems that exhausted the prime
  /// budget and fell back to the Rational kernel.
  std::size_t NumPrimes = 0;
  std::size_t RetriedPrimes = 0;
  std::size_t ReconstructionBits = 0;
  std::size_t ModularFallbacks = 0;
  std::vector<BlockMetrics> Blocks; ///< Indexed by block id.
};

/// Transient states that cannot reach any absorbing state, computed by
/// reverse BFS from rows with R mass through Q edges. Mass in such states
/// diverges; the language interprets it as dropped, so their rows of the
/// absorption matrix are zero and the states are pruned from the linear
/// system. After pruning, I - Q is nonsingular (every remaining state
/// reaches a defective row; Lemma B.3 of the paper).
struct ChainPruning {
  std::vector<bool> CanReach;        ///< Indexed by transient state.
  std::vector<std::size_t> Compact;  ///< Old index -> compact index.
  std::vector<std::size_t> Original; ///< Compact index -> old index.
  std::size_t NumKept = 0;
};

ChainPruning pruneUnreachableStates(const AbsorbingChain &Chain);

/// Exact absorption probabilities. Unreachable states (a ProbNetKAT loop
/// diverging on some input) get absorption probability 0 into every
/// absorbing state — the minimal solution, matching the semantics where
/// diverging mass lands on ∅/drop. Returns false only if the pruned
/// system is singular (cannot happen for a well-formed substochastic
/// chain; guards against malformed input). \p Metrics, when non-null,
/// receives the per-block elimination statistics.
bool solveAbsorptionExact(const AbsorbingChain &Chain,
                          linalg::DenseMatrix<Rational> &Out,
                          const SolverStructure &Structure = {},
                          SolveMetrics *Metrics = nullptr);

/// Exact absorption probabilities via the multi-prime modular engine
/// (docs/ARCHITECTURE.md S14): solve mod word-size primes with the
/// allocation-free linalg/ModSolve.h kernels, recover Rationals by CRT +
/// rational reconstruction, verify the reconstruction against fresh
/// primes, and fall back to the Rational kernel if the prime budget runs
/// out. Reference-equal to solveAbsorptionExact by construction; the
/// same divergence and singularity conventions apply. Composes with
/// Structure.Blocked and Structure.Pool (independent SCC blocks and
/// independent primes both fan out).
bool solveAbsorptionModular(const AbsorbingChain &Chain,
                            linalg::DenseMatrix<Rational> &Out,
                            const SolverStructure &Structure = {},
                            SolveMetrics *Metrics = nullptr);

/// Floating-point absorption probabilities via sparse LU (Direct) or
/// Neumann iteration (Iterative). Returns false on singularity /
/// non-convergence.
bool solveAbsorptionDouble(const AbsorbingChain &Chain,
                           linalg::DenseMatrix<double> &Out,
                           SolverKind Kind = SolverKind::Direct,
                           const SolverStructure &Structure = {},
                           SolveMetrics *Metrics = nullptr);

/// Checks that every transient row of the chain sums to one (within \p Tol
/// when evaluated in floating point). Used by tests and assertions.
bool rowsAreStochastic(const AbsorbingChain &Chain, double Tol = 1e-9);

namespace detail {

/// Sparse Gauss-Jordan elimination over Rational with min-degree pivoting
/// — the shared kernel of the exact engine, used unchanged for monolithic
/// systems and for every block of a blocked solve (so operation counts
/// are comparable across structures). \p Rows holds the square system
/// (Rows[i] maps column -> coefficient, diagonals nonzero on entry for
/// well-formed chains); \p Rhs the dense right-hand-side block. On success
/// Rows is reduced to the identity and Rhs holds the solution in place.
/// \p EliminationOps accumulates multiply-subtract operations and
/// \p FillIn the number of matrix entries created during elimination.
/// Returns false if a zero pivot is hit (singular system).
bool eliminateRationalSystem(
    std::vector<std::map<std::size_t, Rational>> &Rows,
    std::vector<std::vector<Rational>> &Rhs, std::size_t &EliminationOps,
    std::size_t &FillIn);

/// Assembles I - Q from \p QTriplets (local indices, values +q), applies
/// the fill-reducing \p Ordering symmetrically, factors with sparse LU,
/// and solves in place for each column of \p Rhs (N x NumAbsorbing).
/// Shared by the monolithic Direct engine (one call for the whole system)
/// and the blocked one (one call per block). \p EliminationOps
/// accumulates the factorization's multiply-subtract count and \p FillIn
/// the factor entries beyond the assembled pattern.
bool luSolveOrdered(std::size_t N,
                    const std::vector<linalg::Triplet> &QTriplets,
                    linalg::DenseMatrix<double> &Rhs,
                    linalg::OrderingKind Ordering,
                    std::size_t &EliminationOps, std::size_t &FillIn);

/// Modular-engine counters of one system solve (folded into SolveMetrics
/// by the drivers; blocked solves keep one per block and fold after the
/// DAG completes).
struct ModularStats {
  std::size_t NumPrimes = 0;
  std::size_t RetriedPrimes = 0;
  std::size_t ReconstructionBits = 0;
};

/// Multi-prime modular solve of the same system layout
/// eliminateRationalSystem consumes — but \p Rows is read non-
/// destructively, so on a false return (prime budget exhausted without a
/// verified reconstruction, or the system is singular mod every prime
/// tried) the caller can run the Rational kernel on the untouched
/// system. On success \p Rhs holds the verified exact solution.
/// Independent primes fan out on \p Pool when non-null.
bool modularEliminateSystem(
    const std::vector<std::map<std::size_t, Rational>> &Rows,
    std::vector<std::vector<Rational>> &Rhs, linalg::OrderingKind Ordering,
    ThreadPool *Pool, const ModularOptions &Options,
    std::size_t &EliminationOps, std::size_t &FillIn, ModularStats &Stats);

/// Blocked implementations (BlockSolve.cpp); the public entry points
/// dispatch here when Structure.Blocked is set.
bool solveAbsorptionExactBlocked(const AbsorbingChain &Chain,
                                 linalg::DenseMatrix<Rational> &Out,
                                 const SolverStructure &Structure,
                                 SolveMetrics *Metrics);
bool solveAbsorptionModularBlocked(const AbsorbingChain &Chain,
                                   linalg::DenseMatrix<Rational> &Out,
                                   const SolverStructure &Structure,
                                   SolveMetrics *Metrics);
bool solveAbsorptionDoubleBlocked(const AbsorbingChain &Chain,
                                  linalg::DenseMatrix<double> &Out,
                                  const SolverStructure &Structure,
                                  SolveMetrics *Metrics);

} // namespace detail

} // namespace markov
} // namespace mcnk

#endif // MCNK_MARKOV_ABSORBING_H
