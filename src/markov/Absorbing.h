//===----------------------------------------------------------------------===//
///
/// \file
/// Absorbing Markov chain analysis (paper §4). Given the transient-to-
/// transient block Q and transient-to-absorbing block R of an absorbing
/// chain, computes the absorption probabilities A = (I - Q)^{-1} R
/// (Equation 2 / Theorem 4.7). Three engines:
///   - exact:     dense Gaussian elimination over Rational
///   - direct:    sparse LU over double (the paper's UMFPACK configuration)
///   - iterative: Neumann-series iteration over double (PRISM-style approx)
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_MARKOV_ABSORBING_H
#define MCNK_MARKOV_ABSORBING_H

#include "linalg/Dense.h"
#include "linalg/Sparse.h"
#include "support/Rational.h"

#include <cstddef>
#include <vector>

namespace mcnk {
namespace markov {

/// A rational-valued sparse entry of the Q or R block.
struct RationalTriplet {
  std::size_t Row;
  std::size_t Col;
  Rational Value;
};

/// Sparse description of an absorbing chain's transient rows: Q is
/// NumTransient x NumTransient, R is NumTransient x NumAbsorbing. Rows must
/// be substochastic: Q-row sum + R-row sum == 1 for genuine chains.
struct AbsorbingChain {
  std::size_t NumTransient = 0;
  std::size_t NumAbsorbing = 0;
  std::vector<RationalTriplet> QEntries;
  std::vector<RationalTriplet> REntries;
};

/// Solver selection for absorption probabilities.
enum class SolverKind {
  Exact,     ///< Rational Gaussian elimination; no rounding anywhere.
  Direct,    ///< Sparse LU over double (paper's native configuration).
  Iterative, ///< Neumann iteration over double.
};

/// Exact absorption probabilities. States that cannot reach any absorbing
/// state (a ProbNetKAT loop diverging on some input) get absorption
/// probability 0 into every absorbing state — the minimal solution, which
/// matches the language semantics where diverging mass lands on ∅/drop.
/// Returns false only if the pruned system is singular (cannot happen for a
/// well-formed substochastic chain; guards against malformed input).
bool solveAbsorptionExact(const AbsorbingChain &Chain,
                          linalg::DenseMatrix<Rational> &Out);

/// Floating-point absorption probabilities via sparse LU (Direct) or
/// Neumann iteration (Iterative). Returns false on singularity /
/// non-convergence.
bool solveAbsorptionDouble(const AbsorbingChain &Chain,
                           linalg::DenseMatrix<double> &Out,
                           SolverKind Kind = SolverKind::Direct);

/// Checks that every transient row of the chain sums to one (within \p Tol
/// when evaluated in floating point). Used by tests and assertions.
bool rowsAreStochastic(const AbsorbingChain &Chain, double Tol = 1e-9);

} // namespace markov
} // namespace mcnk

#endif // MCNK_MARKOV_ABSORBING_H
