//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly connected components of the transient-state graph. The exact
/// blocked solver (docs/ARCHITECTURE.md S13) decomposes the Q matrix into
/// its communicating classes: absorption out of a class depends only on
/// classes *downstream* of it in the condensation DAG, so each class is an
/// independent solve block once its successors are done. Tarjan's
/// algorithm pops components in reverse topological order, which we exploit
/// directly: block ids are assigned in pop order, so every condensation
/// edge u -> v satisfies BlockOf[u] > BlockOf[v] and processing blocks in
/// increasing id order visits all successors of a block before the block
/// itself.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_MARKOV_SCC_H
#define MCNK_MARKOV_SCC_H

#include <cstddef>
#include <vector>

namespace mcnk {
namespace markov {

/// The condensation of a directed graph into strongly connected components.
/// Block ids are a reverse topological order of the condensation DAG: for
/// every edge u -> v of the input with BlockOf[u] != BlockOf[v],
/// BlockOf[u] > BlockOf[v].
struct SccDecomposition {
  std::size_t NumBlocks = 0;
  /// Vertex -> id of its component.
  std::vector<std::size_t> BlockOf;
  /// Component id -> member vertices (ascending).
  std::vector<std::vector<std::size_t>> Blocks;
  /// Component id -> distinct successor components in the condensation
  /// DAG (deduplicated, ascending; every successor id is smaller than the
  /// block's own id by the reverse-topological numbering).
  std::vector<std::vector<std::size_t>> Successors;
};

/// Tarjan's algorithm (iterative) over vertices [0, NumVertices) with
/// forward adjacency \p Adj. Self-loops and duplicate edges are tolerated.
SccDecomposition
computeScc(std::size_t NumVertices,
           const std::vector<std::vector<std::size_t>> &Adj);

} // namespace markov
} // namespace mcnk

#endif // MCNK_MARKOV_SCC_H
