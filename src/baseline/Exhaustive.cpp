//===----------------------------------------------------------------------===//
///
/// \file
/// Exact-inference baseline by exhaustive enumeration of probabilistic
/// execution paths, with caller-bounded loop unrolling and no FDDs or
/// domain reduction (the Fig 10 comparison stand-in).
///
//===----------------------------------------------------------------------===//

#include "baseline/Exhaustive.h"

#include "ast/Traversal.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <cassert>
#include <functional>

using namespace mcnk;
using namespace mcnk::baseline;
using namespace mcnk::ast;

Rational InferenceResult::deliveredMass() const {
  Rational Total;
  for (const auto &[P, W] : Outputs)
    Total += W;
  return Total;
}

namespace {

/// Evaluates a predicate on a concrete packet.
bool evalPredicate(const Node *P, const Packet &Pkt) {
  switch (P->kind()) {
  case NodeKind::Drop:
    return false;
  case NodeKind::Skip:
    return true;
  case NodeKind::Test: {
    const auto *T = cast<TestNode>(P);
    return Pkt.get(T->field()) == T->value();
  }
  case NodeKind::Not:
    return !evalPredicate(cast<NotNode>(P)->operand(), Pkt);
  case NodeKind::Seq: {
    const auto *S = cast<SeqNode>(P);
    return evalPredicate(S->lhs(), Pkt) && evalPredicate(S->rhs(), Pkt);
  }
  case NodeKind::Union: {
    const auto *U = cast<UnionNode>(P);
    return evalPredicate(U->lhs(), Pkt) || evalPredicate(U->rhs(), Pkt);
  }
  default:
    MCNK_UNREACHABLE("not a predicate");
  }
}

/// Path-at-a-time evaluator. Each probabilistic choice forks the
/// exploration; continuations are passed explicitly so sequencing works
/// without materializing intermediate distributions (that would be the
/// FDD-style optimization this baseline deliberately lacks).
class PathExplorer {
public:
  PathExplorer(const InferenceOptions &Opts, InferenceResult &Res)
      : Options(Opts), Result(Res) {}

  using Continuation = std::function<void(const Packet &, const Rational &)>;

  void run(const Node *Program, const Packet &Input) {
    eval(Program, Input, Rational(1), [this](const Packet &Out,
                                             const Rational &W) {
      Result.Outputs[Out] += W;
      ++Result.NumPaths;
    });
  }

private:
  bool budgetLeft() {
    if (Options.PathBudget == 0)
      return true;
    if (Result.NumPaths < Options.PathBudget)
      return true;
    Result.BudgetExhausted = true;
    return false;
  }

  void eval(const Node *P, const Packet &Pkt, const Rational &Weight,
            const Continuation &K) {
    if (!budgetLeft())
      return;
    if (P->isPredicate()) {
      if (evalPredicate(P, Pkt)) {
        K(Pkt, Weight);
      } else {
        Result.Dropped += Weight;
        ++Result.NumPaths;
      }
      return;
    }
    switch (P->kind()) {
    case NodeKind::Assign: {
      const auto *A = cast<AssignNode>(P);
      K(Pkt.with(A->field(), A->value()), Weight);
      return;
    }
    case NodeKind::Seq: {
      const auto *S = cast<SeqNode>(P);
      eval(S->lhs(), Pkt, Weight,
           [this, S, &K](const Packet &Mid, const Rational &W) {
             eval(S->rhs(), Mid, W, K);
           });
      return;
    }
    case NodeKind::Choice: {
      const auto *C = cast<ChoiceNode>(P);
      eval(C->lhs(), Pkt, Weight * C->probability(), K);
      eval(C->rhs(), Pkt, Weight * (Rational(1) - C->probability()), K);
      return;
    }
    case NodeKind::IfThenElse: {
      const auto *I = cast<IfThenElseNode>(P);
      eval(evalPredicate(I->cond(), Pkt) ? I->thenBranch()
                                         : I->elseBranch(),
           Pkt, Weight, K);
      return;
    }
    case NodeKind::While: {
      const auto *W = cast<WhileNode>(P);
      evalLoop(W, Pkt, Weight, Options.LoopBound, K);
      return;
    }
    case NodeKind::Case: {
      const auto *C = cast<CaseNode>(P);
      for (const auto &[Guard, Program] : C->branches())
        if (evalPredicate(Guard, Pkt)) {
          eval(Program, Pkt, Weight, K);
          return;
        }
      eval(C->defaultBranch(), Pkt, Weight, K);
      return;
    }
    case NodeKind::Union:
    case NodeKind::Star:
      fatalError("baseline interpreter requires the guarded fragment");
    default:
      MCNK_UNREACHABLE("predicates handled above");
    }
  }

  void evalLoop(const WhileNode *W, const Packet &Pkt,
                const Rational &Weight, std::size_t Remaining,
                const Continuation &K) {
    if (!budgetLeft())
      return;
    if (!evalPredicate(W->cond(), Pkt)) {
      K(Pkt, Weight);
      return;
    }
    if (Remaining == 0) {
      // Unrolling bound reached with the guard still true.
      Result.Residual += Weight;
      ++Result.NumPaths;
      return;
    }
    eval(W->body(), Pkt, Weight,
         [this, W, Remaining, &K](const Packet &Next, const Rational &V) {
           evalLoop(W, Next, V, Remaining - 1, K);
         });
  }

  const InferenceOptions &Options;
  InferenceResult &Result;
};

} // namespace

InferenceResult baseline::infer(const Node *Program, const Packet &Input,
                                const InferenceOptions &Options) {
  assert(isGuarded(Program) && "baseline requires guarded programs");
  InferenceResult Result;
  PathExplorer Explorer(Options, Result);
  Explorer.run(Program, Input);
  return Result;
}
