//===----------------------------------------------------------------------===//
///
/// \file
/// General-purpose exact inference baseline (the Bayonet/PSI stand-in for
/// the Fig 10 comparison; see docs/ARCHITECTURE.md). Computes output distributions
/// by exhaustively enumerating the probabilistic execution paths of a
/// guarded program on a concrete input — no FDDs, no domain reduction, no
/// sparse linear algebra. Loops unroll up to a caller-supplied bound, the
/// same restriction Bayonet imposes ("programmers must supply an upper
/// bound on loops", §8); mass still circulating at the bound is reported
/// as residual.
///
/// Path count grows exponentially with the number of probabilistic
/// choices encountered, which is exactly the scaling behavior the
/// comparison is meant to exhibit.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_BASELINE_EXHAUSTIVE_H
#define MCNK_BASELINE_EXHAUSTIVE_H

#include "ast/Node.h"
#include "packet/Packet.h"
#include "support/Rational.h"

#include <cstddef>
#include <map>

namespace mcnk {
namespace baseline {

struct InferenceOptions {
  /// Maximum iterations unrolled per while loop (Bayonet-style bound).
  std::size_t LoopBound = 256;
  /// Abort once this many paths have been expanded (0 = unlimited).
  std::size_t PathBudget = 0;
};

struct InferenceResult {
  std::map<Packet, Rational> Outputs;
  Rational Dropped;
  /// Mass still inside a loop when the unrolling bound was hit.
  Rational Residual;
  /// Number of complete root-to-leaf probabilistic paths explored.
  std::size_t NumPaths = 0;
  /// True if PathBudget stopped the exploration early.
  bool BudgetExhausted = false;

  /// Total probability of producing any packet (1 - drop - residual).
  Rational deliveredMass() const;
};

/// Runs exhaustive exact inference of \p Program on \p Input. The program
/// must be guarded (no star, no program-level union).
InferenceResult infer(const ast::Node *Program, const Packet &Input,
                      const InferenceOptions &Options = {});

} // namespace baseline
} // namespace mcnk

#endif // MCNK_BASELINE_EXHAUSTIVE_H
