//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the verification facade: wires AST->FDD compilation to the
/// query procedures and derives delivery probabilities and hop-count
/// statistics from per-input output distributions.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include <cassert>

using namespace mcnk;
using namespace mcnk::analysis;
using fdd::FddRef;

double HopStats::expectedGivenDelivered() const {
  if (Delivered.isZero())
    return 0.0;
  double Weighted = 0.0;
  for (const auto &[Hops, Mass] : Histogram)
    Weighted += static_cast<double>(Hops) * Mass.toDouble();
  return Weighted / Delivered.toDouble();
}

Rational HopStats::cumulative(unsigned MaxHops) const {
  Rational Total;
  for (const auto &[Hops, Mass] : Histogram)
    if (Hops <= MaxHops)
      Total += Mass;
  return Total;
}

FddRef Verifier::compile(const ast::Node *Program, bool Parallel,
                         unsigned Threads) {
  fdd::CompileOptions Options;
  Options.ParallelCase = Parallel;
  Options.Threads = Threads;
  if (Parallel)
    Options.Pool = &compilePool(Threads);
  Options.Cache = Cache;
  Options.Simplify = SimplifyCtx;
  fdd::SliceHook Hook;
  if (SliceCtx) {
    Hook.Ctx = SliceCtx;
    Hook.Observed = SliceObs;
    Hook.Stats = &LastSlice;
    Options.Slice = &Hook;
  }
  return fdd::compile(Manager, Program, Options);
}

ThreadPool &Verifier::compilePool(unsigned Threads) {
  if (Pool && Threads != 0 && Pool->numThreads() != Threads)
    Pool.reset();
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Threads);
  return *Pool;
}

fdd::CompileCache &Verifier::enableCompileCache(std::size_t Capacity) {
  OwnedCache = std::make_unique<fdd::CompileCache>(Capacity);
  Cache = OwnedCache.get();
  return *Cache;
}

void Verifier::setCompileCache(fdd::CompileCache *Shared) {
  OwnedCache.reset();
  Cache = Shared;
}

namespace {
/// Both the Rational and the multi-prime modular engines are exact —
/// their FDDs admit reference equality and zero-tolerance refinement.
bool isExactKind(markov::SolverKind Kind) {
  return Kind == markov::SolverKind::Exact ||
         Kind == markov::SolverKind::ModularExact;
}
} // namespace

bool Verifier::equivalent(FddRef P, FddRef Q) const {
  if (isExactKind(Manager.solverKind()))
    return fdd::equivalent(P, Q);
  return fdd::approxEquivalent(Manager, P, Q, Tolerance);
}

bool Verifier::refines(FddRef P, FddRef Q) const {
  double Eps = isExactKind(Manager.solverKind()) ? 0.0 : Tolerance;
  return fdd::refines(Manager, P, Q, Eps);
}

Rational Verifier::deliveryProbability(FddRef Program,
                                       const Packet &In) const {
  return Rational(1) - Manager.evalToLeaf(Program, In).dropMass();
}

Rational Verifier::averageDeliveryProbability(
    FddRef Program, const std::vector<Packet> &In) const {
  assert(!In.empty() && "no ingress packets");
  Rational Total;
  for (const Packet &P : In)
    Total += deliveryProbability(Program, P);
  return Total / Rational(static_cast<int64_t>(In.size()));
}

std::map<FieldValue, Rational>
Verifier::outputFieldDistribution(FddRef Program, const Packet &In,
                                  FieldId Field) const {
  std::map<FieldValue, Rational> Result;
  fdd::FddManager::OutputDist Out = Manager.outputDistribution(Program, In);
  for (const auto &[Pkt, W] : Out.Outputs)
    Result[Pkt.get(Field)] += W;
  return Result;
}

HopStats Verifier::hopStats(FddRef Program, const std::vector<Packet> &In,
                            FieldId HopField) const {
  assert(!In.empty() && "no ingress packets");
  HopStats Stats;
  Rational Share(1, static_cast<int64_t>(In.size()));
  for (const Packet &P : In) {
    for (const auto &[Value, Mass] :
         outputFieldDistribution(Program, P, HopField)) {
      Stats.Histogram[Value] += Mass * Share;
      Stats.Delivered += Mass * Share;
    }
  }
  return Stats;
}
