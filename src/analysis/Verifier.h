//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing verification facade: compile guarded ProbNetKAT
/// programs and decide the paper's query classes — equivalence (≡),
/// refinement (<, ≤), delivery probabilities, and hop-count statistics
/// (§2 and §7). This is the API the examples and benchmark harnesses use.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_ANALYSIS_VERIFIER_H
#define MCNK_ANALYSIS_VERIFIER_H

#include "ast/Context.h"
#include "fdd/Compile.h"
#include "fdd/CompileCache.h"
#include "fdd/Fdd.h"
#include "fdd/Query.h"
#include "support/ThreadPool.h"

#include <map>
#include <memory>
#include <vector>

namespace mcnk {
namespace analysis {

/// Aggregated hop-count statistics over a set of ingress packets
/// (uniform traffic split, as in Fig 12).
struct HopStats {
  /// Pr[delivered with hop count == h], averaged over ingresses.
  std::map<unsigned, Rational> Histogram;
  /// Total delivered mass (≤ 1).
  Rational Delivered;
  /// E[hop count | delivered]; 0 when nothing is delivered.
  double expectedGivenDelivered() const;
  /// Pr[delivered and hop count ≤ h].
  Rational cumulative(unsigned MaxHops) const;
};

/// Bundles an FDD manager with the query procedures. Equivalence checks
/// are exact reference-equality in Exact solver mode and epsilon-tolerant
/// otherwise (floating point enters only through loop solutions).
class Verifier {
public:
  explicit Verifier(markov::SolverKind Solver = markov::SolverKind::Exact,
                    double Tol = 1e-9)
      : Manager(Solver), Tolerance(Tol) {}

  fdd::FddManager &manager() { return Manager; }

  /// Solver structure for while-loop solves (blocked SCC/DAG elimination
  /// with fill-reducing ordering; docs/ARCHITECTURE.md S13). Forwards to
  /// the manager: the structure applies to every subsequent compile, and
  /// parallel-`case` worker managers inherit it. Pass a structure whose
  /// Pool is this verifier's compilePool() to solve independent blocks
  /// concurrently.
  void setSolverStructure(const markov::SolverStructure &S) {
    Manager.setSolverStructure(S);
  }
  const markov::SolverStructure &solverStructure() const {
    return Manager.solverStructure();
  }

  /// Compiles a guarded program; optionally compiles `case` constructs on
  /// the verifier's persistent worker pool (the §6 parallel backend).
  ///
  /// \param Program   Guarded-fragment program (ast::isGuarded must hold).
  /// \param Parallel  Compile n-ary `case` branches on worker threads.
  /// \param Threads   Worker count; 0 means hardware concurrency.
  /// \return The compiled diagram, owned by this verifier's manager. All
  ///         query methods below expect diagrams from that same manager.
  fdd::FddRef compile(const ast::Node *Program, bool Parallel = false,
                      unsigned Threads = 0);

  /// The verifier-owned parallel compile engine: created on first use and
  /// reused by every subsequent compile (one pool serves the pipeline;
  /// docs/ARCHITECTURE.md S10). Passing a non-zero \p Threads that
  /// differs from the current pool's width replaces the pool; 0 keeps
  /// whatever exists (creating a hardware-concurrency pool if none does).
  ThreadPool &compilePool(unsigned Threads = 0);

  /// Enables the persistent cross-compile cache (docs/ARCHITECTURE.md
  /// S12): every subsequent compile() consults and fills it, so repeated
  /// compiles of overlapping program families only pay for what changed.
  /// Replaces any previously attached cache; returns the new one.
  fdd::CompileCache &enableCompileCache(std::size_t Capacity = 1u << 12);
  /// Attaches an external (possibly shared) cache the caller owns; null
  /// detaches and disables caching.
  void setCompileCache(fdd::CompileCache *Shared);
  /// The active cache, or null when caching is off.
  fdd::CompileCache *compileCache() const { return Cache; }

  /// Enables the verified S15 simplifier for every subsequent compile():
  /// programs are rewritten (in \p Ctx, which must own their nodes and
  /// outlive the verifier's compiles) before FDD compilation. Null
  /// disables. Semantics are unchanged — simplified and original programs
  /// compile to reference-equal diagrams, a contract the oracle's
  /// CheckSimplify step enforces on every conformance and fuzz case.
  void setSimplify(ast::Context *Ctx) { SimplifyCtx = Ctx; }
  /// The context the simplifier rewrites into, or null when off.
  ast::Context *simplifyContext() const { return SimplifyCtx; }

  /// Enables S17 cone-of-influence slicing for every subsequent compile():
  /// the program is sliced for \p Obs (ast/Slice.h) in \p Ctx — which
  /// must own the program's nodes and outlive the verifier's compiles —
  /// before FDD compilation, so the diagram never branches on (or writes)
  /// fields outside the query's cone. Null disables. The compiled diagram
  /// equals the unsliced one after projecting onto the cone, and every
  /// query within \p Obs answers identically — the contract the oracle's
  /// CheckSlice lane enforces.
  void setSlice(ast::Context *Ctx, ast::ObservationSet Obs = {}) {
    SliceCtx = Ctx;
    SliceObs = std::move(Obs);
  }
  /// The context the slicer rewrites into, or null when off.
  ast::Context *sliceContext() const { return SliceCtx; }
  /// Statistics of the most recent sliced compile (zeros before one).
  const ast::SliceStats &lastSliceStats() const { return LastSlice; }
  /// Hit/miss/size counters of the active cache (all zero when off).
  fdd::CompileCache::Stats cacheStats() const {
    return Cache ? Cache->stats() : fdd::CompileCache::Stats();
  }

  /// p ≡ q.
  bool equivalent(fdd::FddRef P, fdd::FddRef Q) const;
  /// p ≤ q (refinement); p < q is refines && !equivalent.
  bool refines(fdd::FddRef P, fdd::FddRef Q) const;
  bool strictlyRefines(fdd::FddRef P, fdd::FddRef Q) const {
    return refines(P, Q) && !equivalent(P, Q);
  }

  /// Probability the program emits any packet for this input.
  ///
  /// \param Program  A diagram compiled by this verifier.
  /// \param In       Concrete input packet (must assign every field the
  ///                 diagram tests or modifies).
  /// \return An exact rational in [0, 1]: one minus the drop mass of the
  ///         output distribution for \p In.
  Rational deliveryProbability(fdd::FddRef Program, const Packet &In) const;
  /// Mean delivery probability over a uniform ingress mix: the arithmetic
  /// average of deliveryProbability over \p In (Pr[delivered] under a
  /// uniform choice of ingress, as in the §7 resilience tables).
  Rational averageDeliveryProbability(fdd::FddRef Program,
                                      const std::vector<Packet> &In) const;

  /// Distribution of \p Field over the delivered outputs for one input
  /// (probabilities need not sum to 1; the gap is dropped mass).
  std::map<FieldValue, Rational>
  outputFieldDistribution(fdd::FddRef Program, const Packet &In,
                          FieldId Field) const;

  /// Hop-count statistics over a uniform ingress mix; \p HopField is the
  /// model's counter field.
  HopStats hopStats(fdd::FddRef Program, const std::vector<Packet> &In,
                    FieldId HopField) const;

private:
  fdd::FddManager Manager;
  double Tolerance;
  std::unique_ptr<ThreadPool> Pool;
  /// Owned storage when enableCompileCache() created the cache; Cache may
  /// instead point at caller-owned shared storage (setCompileCache).
  std::unique_ptr<fdd::CompileCache> OwnedCache;
  fdd::CompileCache *Cache = nullptr;
  ast::Context *SimplifyCtx = nullptr;
  ast::Context *SliceCtx = nullptr;
  ast::ObservationSet SliceObs;
  ast::SliceStats LastSlice;
};

} // namespace analysis
} // namespace mcnk

#endif // MCNK_ANALYSIS_VERIFIER_H
