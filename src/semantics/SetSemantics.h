//===----------------------------------------------------------------------===//
///
/// \file
/// Executable reference semantics: the denotational model J·K : 2^Pk ->
/// D(2^Pk) of Fig 13 (appendix A), computed exactly over a finite packet
/// domain. Handles the *full* language including parallel composition `&`
/// and iteration `p*`; star limits are computed in closed form via the
/// small-step chain of §4 (states (a, b), saturation quotient U, absorbing
/// solve per Theorem 4.7).
///
/// The state space is exponential in the domain (2^Pk), so this module is
/// strictly a test oracle for tiny domains; the production path is the FDD
/// backend. Soundness (Theorem 3.1) is validated by comparing the two on
/// randomized programs in the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SEMANTICS_SETSEMANTICS_H
#define MCNK_SEMANTICS_SETSEMANTICS_H

#include "ast/Context.h"
#include "packet/Packet.h"
#include "support/Rational.h"

#include <cstdint>
#include <map>
#include <unordered_map>

namespace mcnk {
namespace semantics {

/// A set of packets encoded as a bitmask over PacketDomain indices.
/// Domains are limited to 64 packets — ample for an oracle.
using PacketSet = uint64_t;

/// A discrete distribution over packet sets; entries are positive and sum
/// to one.
using SetDist = std::map<PacketSet, Rational>;

/// Exact evaluator for ProbNetKAT terms over a finite packet domain.
class SetSemantics {
public:
  /// \p Ctx provides field ids (and owns any nodes evaluated);
  /// \p Domain fixes the finite packet space (at most 64 packets).
  SetSemantics(ast::Context &Ctx, PacketDomain Domain);

  const PacketDomain &domain() const { return Domain; }

  /// The full packet set (all packets of the domain).
  PacketSet fullSet() const;

  /// Singleton set containing \p P.
  PacketSet singleton(const Packet &P) const;

  /// JpK(a) — the exact output distribution on input set \p Input.
  /// Evaluations are memoized per (node, input).
  const SetDist &eval(const ast::Node *Program, PacketSet Input);

  /// Probability that JpK(a) produces exactly \p Output (BJpK_{a,b}).
  Rational outputProbability(const ast::Node *Program, PacketSet Input,
                             PacketSet Output);

  /// Pointwise semantic equivalence p ≡ q: JpK(a) = JqK(a) for all inputs
  /// a ⊆ Pk. Exponential in the domain; oracle use only.
  bool equivalent(const ast::Node *P, const ast::Node *Q);

  /// Semantic refinement p ≤ q in the ⊑ order of appendix A.1:
  /// JpK(a)({b}↑) ≤ JqK(a)({b}↑) for all inputs a and sets b.
  bool refines(const ast::Node *P, const ast::Node *Q);

private:
  SetDist evalUncached(const ast::Node *Program, PacketSet Input);
  SetDist evalStar(const ast::Node *Body, PacketSet Input);

  /// Probability mass JpK(a) assigns to the up-set {b}↑ = {c | b ⊆ c}.
  Rational upSetMass(const ast::Node *P, PacketSet Input, PacketSet UpSet);

  ast::Context &Ctx;
  PacketDomain Domain;
  std::vector<Packet> Packets; // Index -> concrete packet.
  std::unordered_map<const ast::Node *, std::map<PacketSet, SetDist>> Cache;
};

} // namespace semantics
} // namespace mcnk

#endif // MCNK_SEMANTICS_SETSEMANTICS_H
