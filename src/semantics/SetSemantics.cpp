//===----------------------------------------------------------------------===//
///
/// \file
/// The reference denotational semantics of Fig 13 over a finite packet
/// domain, including closed-form star limits computed from the small-step
/// absorbing chain of Sec 4.
///
//===----------------------------------------------------------------------===//

#include "semantics/SetSemantics.h"

#include "ast/Traversal.h"
#include "markov/Absorbing.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <cassert>

using namespace mcnk;
using namespace mcnk::semantics;
using namespace mcnk::ast;

SetSemantics::SetSemantics(Context &C, PacketDomain Dom)
    : Ctx(C), Domain(std::move(Dom)) {
  if (Domain.numPackets() > 64)
    fatalError("SetSemantics domain exceeds 64 packets");
  Packets.reserve(Domain.numPackets());
  for (std::size_t I = 0; I < Domain.numPackets(); ++I)
    Packets.push_back(Domain.packet(I));
}

PacketSet SetSemantics::fullSet() const {
  std::size_t N = Domain.numPackets();
  return N == 64 ? ~0ULL : ((1ULL << N) - 1);
}

PacketSet SetSemantics::singleton(const Packet &P) const {
  return 1ULL << Domain.index(P);
}

const SetDist &SetSemantics::eval(const Node *Program, PacketSet Input) {
  auto &PerInput = Cache[Program];
  auto It = PerInput.find(Input);
  if (It != PerInput.end())
    return It->second;
  SetDist Result = evalUncached(Program, Input);
  return PerInput.emplace(Input, std::move(Result)).first->second;
}

Rational SetSemantics::outputProbability(const Node *Program, PacketSet Input,
                                         PacketSet Output) {
  const SetDist &Dist = eval(Program, Input);
  auto It = Dist.find(Output);
  return It == Dist.end() ? Rational() : It->second;
}

SetDist SetSemantics::evalUncached(const Node *Program, PacketSet Input) {
  switch (Program->kind()) {
  case NodeKind::Drop:
    return {{0, Rational(1)}};
  case NodeKind::Skip:
    return {{Input, Rational(1)}};
  case NodeKind::Test: {
    const auto *T = cast<TestNode>(Program);
    PacketSet Out = 0;
    for (std::size_t I = 0; I < Packets.size(); ++I)
      if ((Input >> I) & 1 && Packets[I].get(T->field()) == T->value())
        Out |= 1ULL << I;
    return {{Out, Rational(1)}};
  }
  case NodeKind::Assign: {
    const auto *A = cast<AssignNode>(Program);
    PacketSet Out = 0;
    for (std::size_t I = 0; I < Packets.size(); ++I)
      if ((Input >> I) & 1) {
        Packet Updated = Packets[I].with(A->field(), A->value());
        assert(Domain.contains(Updated) &&
               "assignment leaves the packet domain");
        Out |= 1ULL << Domain.index(Updated);
      }
    return {{Out, Rational(1)}};
  }
  case NodeKind::Not: {
    // J¬tK(a) = pushforward of (λb. a − b) over JtK(a).
    const SetDist &Inner = eval(cast<NotNode>(Program)->operand(), Input);
    SetDist Result;
    for (const auto &[B, W] : Inner)
      Result[Input & ~B] += W;
    return Result;
  }
  case NodeKind::Seq: {
    // Jp;qK(a) = bind: average JqK over intermediate outputs of JpK.
    const auto *S = cast<SeqNode>(Program);
    const SetDist Lhs = eval(S->lhs(), Input); // Copy: cache may rehash.
    SetDist Result;
    for (const auto &[Mid, W] : Lhs)
      for (const auto &[Out, V] : eval(S->rhs(), Mid))
        Result[Out] += W * V;
    return Result;
  }
  case NodeKind::Union: {
    // Jp&qK(a) = D(∪)(JpK(a) × JqK(a)) — independent product, then union.
    const auto *U = cast<UnionNode>(Program);
    const SetDist Lhs = eval(U->lhs(), Input);
    const SetDist Rhs = eval(U->rhs(), Input);
    SetDist Result;
    for (const auto &[B1, W1] : Lhs)
      for (const auto &[B2, W2] : Rhs)
        Result[B1 | B2] += W1 * W2;
    return Result;
  }
  case NodeKind::Choice: {
    const auto *C = cast<ChoiceNode>(Program);
    const Rational &R = C->probability();
    const SetDist Lhs = eval(C->lhs(), Input);
    const SetDist Rhs = eval(C->rhs(), Input);
    SetDist Result;
    for (const auto &[B, W] : Lhs)
      Result[B] += R * W;
    Rational OneMinusR = Rational(1) - R;
    for (const auto &[B, W] : Rhs)
      Result[B] += OneMinusR * W;
    return Result;
  }
  case NodeKind::Star:
    return evalStar(cast<StarNode>(Program)->body(), Input);
  case NodeKind::IfThenElse: {
    // if t then p else q ≜ t;p & ¬t;q.
    const auto *I = cast<IfThenElseNode>(Program);
    const Node *Desugared =
        Ctx.unite(Ctx.seq(I->cond(), I->thenBranch()),
                  Ctx.seq(Ctx.negate(I->cond()), I->elseBranch()));
    return eval(Desugared, Input);
  }
  case NodeKind::While: {
    // while t do p ≜ (t;p)* ; ¬t.
    const auto *W = cast<WhileNode>(Program);
    const Node *Desugared = Ctx.seq(Ctx.star(Ctx.seq(W->cond(), W->body())),
                                    Ctx.negate(W->cond()));
    return eval(Desugared, Input);
  }
  case NodeKind::Case: {
    // Disjoint cascade of conditionals.
    const auto *C = cast<CaseNode>(Program);
    const Node *Desugared = C->defaultBranch();
    for (std::size_t I = C->branches().size(); I-- > 0;)
      Desugared = Ctx.ite(C->branches()[I].first, C->branches()[I].second,
                          Desugared);
    return eval(Desugared, Input);
  }
  }
  MCNK_UNREACHABLE("unhandled node kind");
}

SetDist SetSemantics::evalStar(const Node *Body, PacketSet Input) {
  // Small-step chain of §4: states (a, b) with transition
  //   (a, b) --w--> (a', b ∪ a)  where w = BJbodyK_{a,a'}.
  // Explore states reachable from (Input, ∅), quotient saturated states
  // into absorbing sinks per accumulator (the U matrix), and solve the
  // absorbing chain (Theorem 4.7).
  struct StateKey {
    PacketSet A, B;
    bool operator<(const StateKey &R) const {
      return A != R.A ? A < R.A : B < R.B;
    }
  };
  std::map<StateKey, std::size_t> Index;
  std::vector<StateKey> States;
  std::vector<std::vector<std::pair<std::size_t, Rational>>> Succs;

  auto InternState = [&](PacketSet A, PacketSet B) {
    auto [It, Inserted] = Index.emplace(StateKey{A, B}, States.size());
    if (Inserted) {
      States.push_back({A, B});
      Succs.emplace_back();
    }
    return It->second;
  };

  InternState(Input, 0);
  for (std::size_t S = 0; S < States.size(); ++S) {
    auto [A, B] = States[S];
    PacketSet NextB = B | A;
    const SetDist &Step = eval(Body, A);
    for (const auto &[A2, W] : Step) {
      // InternState may reallocate Succs; fetch the target index first.
      std::size_t T = InternState(A2, NextB);
      Succs[S].emplace_back(T, W);
    }
  }

  // Saturation (Def 4.4) as a greatest fixpoint: a state is saturated iff
  // every successor keeps the accumulator and is itself saturated.
  std::vector<bool> Saturated(States.size(), true);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::size_t S = 0; S < States.size(); ++S) {
      if (!Saturated[S])
        continue;
      // Successors carry accumulator B ∪ A; saturation requires the
      // accumulator to stay at B along every path.
      if ((States[S].B | States[S].A) != States[S].B) {
        Saturated[S] = false;
        Changed = true;
        continue;
      }
      for (const auto &[T, W] : Succs[S]) {
        (void)W;
        if (!Saturated[T]) {
          Saturated[S] = false;
          Changed = true;
          break;
        }
      }
    }
  }

  // Degenerate case: the start state is already saturated (only when the
  // input is ∅, or the body maps A to itself forever with B stable).
  std::size_t Start = 0;
  if (Saturated[Start])
    return {{States[Start].B | States[Start].A, Rational(1)}};

  // Build the absorbing chain over unsaturated (transient) states; an edge
  // into a saturated state (a', b') absorbs into accumulator b' (the U
  // quotient maps it to (∅, b')).
  std::vector<std::size_t> TransientId(States.size(), SIZE_MAX);
  std::size_t NumTransient = 0;
  for (std::size_t S = 0; S < States.size(); ++S)
    if (!Saturated[S])
      TransientId[S] = NumTransient++;

  std::map<PacketSet, std::size_t> AbsorbId;
  std::vector<PacketSet> Accumulators;
  markov::AbsorbingChain Chain;
  Chain.NumTransient = NumTransient;
  for (std::size_t S = 0; S < States.size(); ++S) {
    if (Saturated[S])
      continue;
    for (const auto &[T, W] : Succs[S]) {
      if (!Saturated[T]) {
        Chain.QEntries.push_back({TransientId[S], TransientId[T], W});
        continue;
      }
      PacketSet Acc = States[T].B; // Saturated: accumulator is final.
      auto [It, Inserted] = AbsorbId.emplace(Acc, Accumulators.size());
      if (Inserted)
        Accumulators.push_back(Acc);
      Chain.REntries.push_back({TransientId[S], It->second, W});
    }
  }
  Chain.NumAbsorbing = Accumulators.size();

  linalg::DenseMatrix<Rational> Absorption;
  if (!markov::solveAbsorptionExact(Chain, Absorption))
    fatalError("star chain unexpectedly singular");

  SetDist Result;
  Rational Total;
  for (std::size_t C = 0; C < Accumulators.size(); ++C) {
    Rational W = Absorption.at(TransientId[Start], C);
    if (!W.isZero()) {
      Result[Accumulators[C]] += W;
      Total += W;
    }
  }
  assert(Total.isOne() && "star limit distribution must be total");
  return Result;
}

bool SetSemantics::equivalent(const Node *P, const Node *Q) {
  PacketSet Full = fullSet();
  for (PacketSet A = 0;; ++A) {
    if (eval(P, A) != eval(Q, A))
      return false;
    if (A == Full)
      break;
  }
  return true;
}

Rational SetSemantics::upSetMass(const Node *P, PacketSet Input,
                                 PacketSet UpSet) {
  Rational Mass;
  for (const auto &[B, W] : eval(P, Input))
    if ((B & UpSet) == UpSet)
      Mass += W;
  return Mass;
}

bool SetSemantics::refines(const Node *P, const Node *Q) {
  PacketSet Full = fullSet();
  for (PacketSet A = 0;; ++A) {
    for (PacketSet B = 0;; ++B) {
      if (upSetMass(P, A, B) > upSetMass(Q, A, B))
        return false;
      if (B == Full)
        break;
    }
    if (A == Full)
      break;
  }
  return true;
}
