//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of FDDs to and from the portable format used to move
/// diagrams between managers (worker-to-main merges, tests, goldens).
///
//===----------------------------------------------------------------------===//

#include "fdd/Export.h"

#include "support/Error.h"

#include <cassert>
#include <unordered_map>

using namespace mcnk;
using namespace mcnk::fdd;

PortableFdd fdd::exportFdd(const FddManager &Manager, FddRef Ref) {
  PortableFdd Result;
  std::unordered_map<FddRef, uint32_t> Ids;

  // Post-order emission so children precede parents.
  std::vector<std::pair<FddRef, bool>> Stack = {{Ref, false}};
  while (!Stack.empty()) {
    auto [Cur, ChildrenDone] = Stack.back();
    Stack.pop_back();
    if (Ids.count(Cur))
      continue;
    if (isLeafRef(Cur)) {
      PortableFdd::Node Node;
      Node.IsLeaf = true;
      Node.Dist = Manager.leafDist(Cur).entries();
      Ids.emplace(Cur, static_cast<uint32_t>(Result.Nodes.size()));
      Result.Nodes.push_back(std::move(Node));
      continue;
    }
    const FddManager::InnerNode &N = Manager.innerNode(Cur);
    if (!ChildrenDone) {
      Stack.push_back({Cur, true});
      Stack.push_back({N.Hi, false});
      Stack.push_back({N.Lo, false});
      continue;
    }
    PortableFdd::Node Node;
    Node.Field = N.Field;
    Node.Value = N.Value;
    Node.Hi = Ids.at(N.Hi);
    Node.Lo = Ids.at(N.Lo);
    Ids.emplace(Cur, static_cast<uint32_t>(Result.Nodes.size()));
    Result.Nodes.push_back(std::move(Node));
  }
  Result.Root = Ids.at(Ref);
  return Result;
}

FddRef fdd::importFdd(FddManager &Manager, const PortableFdd &Portable) {
  std::vector<FddRef> Refs(Portable.Nodes.size());
  for (std::size_t I = 0; I < Portable.Nodes.size(); ++I) {
    const PortableFdd::Node &Node = Portable.Nodes[I];
    if (Node.IsLeaf) {
      Refs[I] = Manager.leaf(ActionDist::fromEntries(Node.Dist));
      continue;
    }
    assert(Node.Hi < I && Node.Lo < I && "portable FDD not topological");
    Refs[I] =
        Manager.inner(Node.Field, Node.Value, Refs[Node.Hi], Refs[Node.Lo]);
  }
  return Refs.at(Portable.Root);
}

namespace {

void dumpInto(const FddManager &M, FddRef Ref, const FieldTable &Fields,
              unsigned Indent, std::string &Out) {
  std::string Pad(Indent * 2, ' ');
  if (isLeafRef(Ref)) {
    Out += Pad + "{";
    bool First = true;
    for (const auto &[A, W] : M.leafDist(Ref).entries()) {
      if (!First)
        Out += ", ";
      First = false;
      if (A.isDrop()) {
        Out += "drop";
      } else if (A.isIdentity()) {
        Out += "id";
      } else {
        bool FirstMod = true;
        for (const auto &[F, V] : A.mods()) {
          if (!FirstMod)
            Out += ",";
          FirstMod = false;
          Out += Fields.name(F) + ":=" + std::to_string(V);
        }
      }
      Out += " @ " + W.toString();
    }
    Out += "}\n";
    return;
  }
  const FddManager::InnerNode &N = M.innerNode(Ref);
  Out += Pad + Fields.name(N.Field) + "=" + std::to_string(N.Value) + "?\n";
  dumpInto(M, N.Hi, Fields, Indent + 1, Out);
  dumpInto(M, N.Lo, Fields, Indent + 1, Out);
}

} // namespace

std::string fdd::dumpFdd(const FddManager &Manager, FddRef Ref,
                         const FieldTable &Fields) {
  std::string Out;
  dumpInto(Manager, Ref, Fields, 0, Out);
  return Out;
}
