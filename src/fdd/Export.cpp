//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of FDDs to and from the portable format used to move
/// diagrams between managers (worker-to-main merges, tests, goldens).
///
//===----------------------------------------------------------------------===//

#include "fdd/Export.h"

#include "support/Error.h"

#include <unordered_map>

using namespace mcnk;
using namespace mcnk::fdd;

PortableFdd fdd::exportFdd(const FddManager &Manager, FddRef Ref) {
  PortableFdd Result;
  std::unordered_map<FddRef, uint32_t> Ids;

  // Post-order emission so children precede parents.
  std::vector<std::pair<FddRef, bool>> Stack = {{Ref, false}};
  while (!Stack.empty()) {
    auto [Cur, ChildrenDone] = Stack.back();
    Stack.pop_back();
    if (Ids.count(Cur))
      continue;
    if (isLeafRef(Cur)) {
      PortableFdd::Node Node;
      Node.IsLeaf = true;
      Node.Dist = Manager.leafDist(Cur).entries();
      Ids.emplace(Cur, static_cast<uint32_t>(Result.Nodes.size()));
      Result.Nodes.push_back(std::move(Node));
      continue;
    }
    const FddManager::InnerNode &N = Manager.innerNode(Cur);
    if (!ChildrenDone) {
      Stack.push_back({Cur, true});
      Stack.push_back({N.Hi, false});
      Stack.push_back({N.Lo, false});
      continue;
    }
    PortableFdd::Node Node;
    Node.Field = N.Field;
    Node.Value = N.Value;
    Node.Hi = Ids.at(N.Hi);
    Node.Lo = Ids.at(N.Lo);
    Ids.emplace(Cur, static_cast<uint32_t>(Result.Nodes.size()));
    Result.Nodes.push_back(std::move(Node));
  }
  Result.Root = Ids.at(Ref);
  return Result;
}

bool fdd::validateFdd(const PortableFdd &Portable, std::string *Error) {
  auto Fail = [&](std::string Msg) {
    if (Error)
      *Error = std::move(Msg);
    return false;
  };
  // A malformed diagram — child indices out of range or not strictly
  // topological — would otherwise index uninitialized refs and corrupt
  // the importing manager.
  if (Portable.Nodes.empty())
    return Fail("portable diagram has no nodes");
  if (Portable.Root >= Portable.Nodes.size())
    return Fail("root index " + std::to_string(Portable.Root) +
                " out of range (diagram has " +
                std::to_string(Portable.Nodes.size()) + " nodes)");
  for (std::size_t I = 0; I < Portable.Nodes.size(); ++I) {
    const PortableFdd::Node &Node = Portable.Nodes[I];
    if (Node.IsLeaf) {
      // Leaf distributions must be genuine distributions (drop is an
      // explicit action, so weights sum to exactly one); FddManager only
      // asserts this, which Release builds compile out.
      Rational Total;
      for (const auto &[Act, Weight] : Node.Dist) {
        if (Act.isDrop() && !Act.mods().empty())
          return Fail("leaf " + std::to_string(I) +
                      " has a drop action carrying modifications");
        if (Weight.isNegative())
          return Fail("leaf " + std::to_string(I) +
                      " has a negative probability");
        Total += Weight;
      }
      if (!Total.isOne())
        return Fail("leaf " + std::to_string(I) +
                    " distribution does not sum to 1");
      continue;
    }
    if (Node.Hi >= I || Node.Lo >= I)
      return Fail("node " + std::to_string(I) + " has child indices (" +
                  std::to_string(Node.Hi) + ", " + std::to_string(Node.Lo) +
                  ") violating topological order (children must precede "
                  "parents)");
    // The canonical-FDD ordering invariants (see Fdd.h): rebuilding a
    // diagram that violates them would hash-cons non-canonical nodes and
    // silently break reference-equality equivalence. Checking each
    // node's children covers the whole subtree inductively.
    const PortableFdd::Node &Hi = Portable.Nodes[Node.Hi];
    if (!Hi.IsLeaf && Hi.Field <= Node.Field)
      return Fail("node " + std::to_string(I) + " true-subtree re-tests field " +
                  std::to_string(Hi.Field) + " (test ordering violated)");
    const PortableFdd::Node &Lo = Portable.Nodes[Node.Lo];
    if (!Lo.IsLeaf && (Lo.Field < Node.Field ||
                       (Lo.Field == Node.Field && Lo.Value <= Node.Value)))
      return Fail("node " + std::to_string(I) +
                  " false-subtree violates test ordering");
  }
  return true;
}

namespace {

/// The build half of the importers: assumes \p Portable already validated.
FddRef buildValidated(FddManager &Manager, const PortableFdd &Portable) {
  std::vector<FddRef> Refs(Portable.Nodes.size());
  for (std::size_t I = 0; I < Portable.Nodes.size(); ++I) {
    const PortableFdd::Node &Node = Portable.Nodes[I];
    if (Node.IsLeaf) {
      Refs[I] = Manager.leaf(ActionDist::fromEntries(Node.Dist));
      continue;
    }
    Refs[I] =
        Manager.inner(Node.Field, Node.Value, Refs[Node.Hi], Refs[Node.Lo]);
  }
  return Refs[Portable.Root];
}

} // namespace

FddRef fdd::importFdd(FddManager &Manager, const PortableFdd &Portable) {
  std::string Error;
  if (!validateFdd(Portable, &Error))
    fatalError("importFdd: " + Error);
  return buildValidated(Manager, Portable);
}

bool fdd::tryImportFdd(FddManager &Manager, const PortableFdd &Portable,
                       FddRef &Out, std::string *Error) {
  if (!validateFdd(Portable, Error))
    return false;
  Out = buildValidated(Manager, Portable);
  return true;
}

namespace {

void dumpInto(const FddManager &M, FddRef Ref, const FieldTable &Fields,
              unsigned Indent, std::string &Out) {
  std::string Pad(Indent * 2, ' ');
  if (isLeafRef(Ref)) {
    Out += Pad + "{";
    bool First = true;
    for (const auto &[A, W] : M.leafDist(Ref).entries()) {
      if (!First)
        Out += ", ";
      First = false;
      if (A.isDrop()) {
        Out += "drop";
      } else if (A.isIdentity()) {
        Out += "id";
      } else {
        bool FirstMod = true;
        for (const auto &[F, V] : A.mods()) {
          if (!FirstMod)
            Out += ",";
          FirstMod = false;
          Out += Fields.name(F) + ":=" + std::to_string(V);
        }
      }
      Out += " @ " + W.toString();
    }
    Out += "}\n";
    return;
  }
  const FddManager::InnerNode &N = M.innerNode(Ref);
  Out += Pad + Fields.name(N.Field) + "=" + std::to_string(N.Value) + "?\n";
  dumpInto(M, N.Hi, Fields, Indent + 1, Out);
  dumpInto(M, N.Lo, Fields, Indent + 1, Out);
}

} // namespace

std::string fdd::dumpFdd(const FddManager &Manager, FddRef Ref,
                         const FieldTable &Fields) {
  std::string Out;
  dumpInto(Manager, Ref, Fields, 0, Out);
  return Out;
}
