//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-compile memoization cache (docs/ARCHITECTURE.md S12): maps a
/// structural program fingerprint plus solver kind to the compiled FDD in
/// portable (Export) form. Because canonical FDDs make equivalence
/// reference equality, importing a cached diagram into any manager is
/// guaranteed to produce the exact ref a fresh compile would — so a
/// failure-parameter sweep over a family of networks only recompiles the
/// sub-programs that actually changed, and the cache can outlive any
/// particular FddManager (reset()/gc() never invalidate it).
///
/// Entries are keyed on (ProgramHash, SolverKind): loop solutions depend
/// on the configured solver, so Exact/Direct/Iterative results never mix.
/// Eviction is LRU by entry count. All operations are thread-safe; the
/// parallel `case` workers consult one shared cache.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_FDD_COMPILECACHE_H
#define MCNK_FDD_COMPILECACHE_H

#include "ast/Hash.h"
#include "fdd/Export.h"
#include "markov/Absorbing.h"

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace mcnk {
namespace fdd {

/// Thread-safe LRU cache of compiled sub-programs in portable form.
/// Stored diagrams are immutable (canonicity makes re-inserts identical),
/// so hits hand out shared ownership instead of deep-copying inside the
/// lock — parallel `case` workers sharing one cache only contend for the
/// recency splice, not an O(diagram) copy.
class CompileCache {
public:
  /// \p Capacity is the maximum number of entries (minimum 1); the
  /// least-recently-used entry is evicted on overflow.
  explicit CompileCache(std::size_t Capacity = 1u << 12);

  /// Looks up (\p Key, \p Solver); on hit points \p Out at the stored
  /// (immutable, shared) diagram, refreshes recency, and returns true.
  bool lookup(const ast::ProgramHash &Key, markov::SolverKind Solver,
              std::shared_ptr<const PortableFdd> &Out);

  /// Stores a compiled diagram under (\p Key, \p Solver). Re-inserting an
  /// existing key refreshes recency and keeps the first value (canonicity
  /// guarantees both are identical); duplicate inserts — the common case
  /// when parallel `case` workers miss on the same fingerprint and race to
  /// fill it — are counted separately and never touch the size accounting.
  void insert(const ast::ProgramHash &Key, markov::SolverKind Solver,
              PortableFdd Diagram);

  /// Called once per *genuinely new* entry, after the cache's lock has
  /// been released — never for the duplicate-insert dedup path, so a
  /// persistence layer (fdd::CacheStore) appending from this hook writes
  /// each entry exactly once no matter how many workers raced on the key.
  using InsertObserver = std::function<void(
      const ast::ProgramHash &, markov::SolverKind,
      const std::shared_ptr<const PortableFdd> &)>;
  /// Installs \p Observer (null disarms). Must not be changed while other
  /// threads are inserting; install it before the cache is shared. The
  /// observer must not call back into this cache.
  void setInsertObserver(InsertObserver Observer);

  /// Counters since construction (or the last clear()). Invariants the
  /// regression suite pins: Insertions - Evictions == Entries,
  /// Insertions + DuplicateInserts == total insert() calls, and
  /// StoredNodes is the node sum of exactly the resident entries.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
    uint64_t Evictions = 0;
    /// insert() calls that found the key already resident (kept the first
    /// value, refreshed recency, changed no size accounting).
    uint64_t DuplicateInserts = 0;
    std::size_t Entries = 0;     ///< Current entry count.
    std::size_t StoredNodes = 0; ///< Total portable nodes currently held.
  };
  Stats stats() const;

  /// Drops every entry and zeroes the counters; capacity is unchanged.
  void clear();

  std::size_t capacity() const { return Capacity; }

private:
  struct Key {
    ast::ProgramHash Hash;
    markov::SolverKind Solver;
    bool operator==(const Key &R) const {
      return Hash == R.Hash && Solver == R.Solver;
    }
  };
  struct KeyHasher {
    std::size_t operator()(const Key &K) const {
      return ast::ProgramHashHasher()(K.Hash) * 31 +
             static_cast<std::size_t>(K.Solver);
    }
  };
  struct Entry {
    Key K;
    std::shared_ptr<const PortableFdd> Diagram;
  };

  void evictIfNeededLocked();

  const std::size_t Capacity;
  mutable std::mutex Mutex;
  /// Most-recently-used at the front.
  std::list<Entry> Lru;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHasher> Index;
  Stats Counters;
  /// Behind a shared_ptr so insert() can copy the handle under the lock
  /// and invoke outside it (file I/O in an observer must not serialize
  /// every other cache operation).
  std::shared_ptr<const InsertObserver> Observer;
};

} // namespace fdd
} // namespace mcnk

#endif // MCNK_FDD_COMPILECACHE_H
