//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic domain reduction (Sec 5.1) and the FDD-to-stochastic-matrix
/// conversion of the Fig 5 "Convert" step.
///
//===----------------------------------------------------------------------===//

#include "fdd/MatrixConv.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace mcnk;
using namespace mcnk::fdd;

SymbolicPacket StochasticMatrix::decode(std::size_t State) const {
  SymbolicPacket Result;
  Result.ValueIndex.resize(Fields.size());
  for (std::size_t I = Fields.size(); I-- > 0;) {
    Result.ValueIndex[I] = State % (Domain[I].size() + 1);
    State /= Domain[I].size() + 1;
  }
  return Result;
}

std::string StochasticMatrix::renderState(std::size_t State,
                                          const FieldTable &Table) const {
  SymbolicPacket Sym = decode(State);
  std::string Out;
  for (std::size_t I = 0; I < Fields.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Table.name(Fields[I]) + "=";
    if (Sym.ValueIndex[I] < Domain[I].size())
      Out += std::to_string(Domain[I][Sym.ValueIndex[I]]);
    else
      Out += "*";
  }
  return Out.empty() ? "<any>" : Out;
}

std::size_t StochasticMatrix::stateOf(const Packet &P) const {
  std::size_t State = 0;
  for (std::size_t I = 0; I < Fields.size(); ++I) {
    const std::vector<FieldValue> &Values = Domain[I];
    FieldValue V = P.get(Fields[I]);
    auto It = std::lower_bound(Values.begin(), Values.end(), V);
    std::size_t Index = (It != Values.end() && *It == V)
                            ? static_cast<std::size_t>(It - Values.begin())
                            : Values.size(); // Wildcard.
    State = State * (Values.size() + 1) + Index;
  }
  return State;
}

StochasticMatrix fdd::toMatrix(const FddManager &Manager, FddRef Ref,
                               std::size_t MaxStates) {
  StochasticMatrix Result;
  for (const auto &[Field, Values] : Manager.collectDomain(Ref)) {
    Result.Fields.push_back(Field);
    Result.Domain.push_back(Values);
  }
  Result.NumStates = 1;
  for (const std::vector<FieldValue> &Values : Result.Domain) {
    if (Result.NumStates > MaxStates / (Values.size() + 1))
      fatalError("symbolic matrix exceeds the state cap");
    Result.NumStates *= Values.size() + 1;
  }

  std::vector<std::size_t> Sym(Result.Fields.size());
  Result.DropMass.resize(Result.NumStates);
  // Every non-drop leaf action contributes one entry; most states carry at
  // least one, so NumStates is a sound reserve floor.
  Result.Entries.reserve(Result.NumStates);
  for (std::size_t State = 0; State < Result.NumStates; ++State) {
    // Decode in place.
    std::size_t Rest = State;
    for (std::size_t I = Result.Fields.size(); I-- > 0;) {
      Sym[I] = Rest % (Result.Domain[I].size() + 1);
      Rest /= Result.Domain[I].size() + 1;
    }
    // Walk the diagram; the wildcard fails every test by construction.
    FddRef Cur = Ref;
    while (!isLeafRef(Cur)) {
      const FddManager::InnerNode &N = Manager.innerNode(Cur);
      auto Pos = std::lower_bound(Result.Fields.begin(),
                                  Result.Fields.end(), N.Field) -
                 Result.Fields.begin();
      assert(static_cast<std::size_t>(Pos) < Result.Fields.size() &&
             Result.Fields[Pos] == N.Field && "test outside the domain");
      std::size_t SymVal = Sym[Pos];
      bool Matches = SymVal < Result.Domain[Pos].size() &&
                     Result.Domain[Pos][SymVal] == N.Value;
      Cur = Matches ? N.Hi : N.Lo;
    }
    for (const auto &[A, W] : Manager.leafDist(Cur).entries()) {
      if (A.isDrop()) {
        Result.DropMass[State] += W;
        continue;
      }
      // Apply modifications to obtain the target state.
      std::size_t Target = 0;
      for (std::size_t I = 0; I < Result.Fields.size(); ++I) {
        std::size_t Index = Sym[I];
        if (std::optional<FieldValue> Written = A.writeTo(Result.Fields[I])) {
          auto It = std::lower_bound(Result.Domain[I].begin(),
                                     Result.Domain[I].end(), *Written);
          assert(It != Result.Domain[I].end() && *It == *Written &&
                 "modification outside the collected domain");
          Index = static_cast<std::size_t>(It - Result.Domain[I].begin());
        }
        Target = Target * (Result.Domain[I].size() + 1) + Index;
      }
      Result.Entries.push_back({State, Target, W});
    }
  }
  return Result;
}
