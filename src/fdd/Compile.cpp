//===----------------------------------------------------------------------===//
///
/// \file
/// Structural-recursion compiler from the guarded AST fragment to FDDs,
/// including the parallel `case` path that compiles branches on a
/// persistent worker-pool engine and merges them through the portable
/// format with a pairwise tree reduction (Sec 6).
///
//===----------------------------------------------------------------------===//

#include "fdd/Compile.h"

#include "fdd/Export.h"
#include "support/Casting.h"
#include "support/Error.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <memory>

using namespace mcnk;
using namespace mcnk::fdd;
using namespace mcnk::ast;

namespace {

FddRef compileNode(FddManager &M, const Node *P, const CompileOptions &O);

/// A partially merged run of `case` branches, shipped between worker
/// managers in portable form. A segment over arms (g_i, b_i) denotes the
/// first-match cascade with a *drop* fall-through; Guard is the
/// disjunction of its guards, so the cascade-with-hole semantics is
/// `Body + !Guard ; <hole>`. Two adjacent segments compose as
///   Guard = Guard_L | Guard_R
///   Body  = if Guard_L then Body_L else Body_R
/// which is associative — that is what licenses the pairwise tree
/// reduction below. Both merge operations are arithmetic-free (they only
/// route between existing leaves), so parallel and serial compilation
/// produce reference-equal canonical diagrams in every solver mode.
struct CaseSegment {
  PortableFdd Guard;
  PortableFdd Body;
};

/// Compiles the branches of a `case` on the persistent worker pool: one
/// FddManager per task (managers are single-threaded), guards precompiled
/// alongside their branch, results shipped through the portable format and
/// merged by a log-depth pairwise tree reduction — the map-reduce strategy
/// of §6 on a single machine. Nested `case` nodes keep ParallelCase set:
/// they reuse the same pool, whose waiters help execute queued tasks
/// inline instead of blocking (docs/ARCHITECTURE.md S10).
FddRef compileCaseParallel(FddManager &M, const CaseNode *C,
                           const CompileOptions &O) {
  assert(O.Pool && "parallel case compilation requires an engine");
  ThreadPool &Pool = *O.Pool;
  const auto &Branches = C->branches();

  // Map: compile guard and branch of each arm in a private manager.
  std::vector<CaseSegment> Level(Branches.size());
  Pool.parallelFor(Branches.size(), [&](std::size_t I) {
    FddManager Worker(M.solverKind());
    FddRef Guard = compileNode(Worker, Branches[I].first, O);
    FddRef Body = compileNode(Worker, Branches[I].second, O);
    Level[I].Guard = exportFdd(Worker, Guard);
    Level[I].Body =
        exportFdd(Worker, Worker.branch(Guard, Body, Worker.dropLeaf()));
  });

  // Reduce: merge adjacent segments pairwise until one remains. Each
  // level halves the segment count, so the critical path is logarithmic
  // instead of the old serial right-fold.
  while (Level.size() > 1) {
    std::size_t Pairs = Level.size() / 2;
    std::vector<CaseSegment> Next(Pairs + (Level.size() & 1));
    Pool.parallelFor(Pairs, [&](std::size_t J) {
      FddManager Worker(M.solverKind());
      FddRef GuardL = importFdd(Worker, Level[2 * J].Guard);
      FddRef BodyL = importFdd(Worker, Level[2 * J].Body);
      FddRef GuardR = importFdd(Worker, Level[2 * J + 1].Guard);
      FddRef BodyR = importFdd(Worker, Level[2 * J + 1].Body);
      Next[J].Guard = exportFdd(Worker, Worker.disjoin(GuardL, GuardR));
      Next[J].Body = exportFdd(Worker, Worker.branch(GuardL, BodyL, BodyR));
    });
    if (Level.size() & 1)
      Next.back() = std::move(Level.back());
    Level = std::move(Next);
  }

  // Plug the default branch into the surviving segment's fall-through, in
  // the caller's manager.
  FddRef Default = compileNode(M, C->defaultBranch(), O);
  FddRef Guard = importFdd(M, Level.front().Guard);
  FddRef Body = importFdd(M, Level.front().Body);
  return M.branch(Guard, Body, Default);
}

FddRef compileNode(FddManager &M, const Node *P, const CompileOptions &O) {
  switch (P->kind()) {
  case NodeKind::Drop:
    return M.dropLeaf();
  case NodeKind::Skip:
    return M.identityLeaf();
  case NodeKind::Test: {
    const auto *T = cast<TestNode>(P);
    return M.test(T->field(), T->value());
  }
  case NodeKind::Assign: {
    const auto *A = cast<AssignNode>(P);
    return M.assign(A->field(), A->value());
  }
  case NodeKind::Not:
    return M.negate(compileNode(M, cast<NotNode>(P)->operand(), O));
  case NodeKind::Seq: {
    const auto *S = cast<SeqNode>(P);
    return M.seq(compileNode(M, S->lhs(), O), compileNode(M, S->rhs(), O));
  }
  case NodeKind::Union: {
    const auto *U = cast<UnionNode>(P);
    if (!U->isPredicate())
      fatalError("program-level union is outside the guarded fragment; "
                 "the native backend only compiles guarded programs (§5)");
    return M.disjoin(compileNode(M, U->lhs(), O),
                     compileNode(M, U->rhs(), O));
  }
  case NodeKind::Choice: {
    const auto *C = cast<ChoiceNode>(P);
    return M.choice(C->probability(), compileNode(M, C->lhs(), O),
                    compileNode(M, C->rhs(), O));
  }
  case NodeKind::Star:
    fatalError("star is outside the guarded fragment; use while loops");
  case NodeKind::IfThenElse: {
    const auto *I = cast<IfThenElseNode>(P);
    return M.branch(compileNode(M, I->cond(), O),
                    compileNode(M, I->thenBranch(), O),
                    compileNode(M, I->elseBranch(), O));
  }
  case NodeKind::While: {
    const auto *W = cast<WhileNode>(P);
    return M.solveLoop(compileNode(M, W->cond(), O),
                       compileNode(M, W->body(), O));
  }
  case NodeKind::Case: {
    const auto *C = cast<CaseNode>(P);
    if (O.ParallelCase && C->branches().size() > 1)
      return compileCaseParallel(M, C, O);
    FddRef Acc = compileNode(M, C->defaultBranch(), O);
    for (std::size_t I = C->branches().size(); I-- > 0;) {
      FddRef Guard = compileNode(M, C->branches()[I].first, O);
      FddRef Branch = compileNode(M, C->branches()[I].second, O);
      Acc = M.branch(Guard, Branch, Acc);
    }
    return Acc;
  }
  }
  MCNK_UNREACHABLE("unhandled node kind");
}

} // namespace

FddRef fdd::compile(FddManager &Manager, const Node *Program,
                    const CompileOptions &Options) {
  CompileOptions O = Options;
  std::unique_ptr<ThreadPool> Owned;
  if (O.ParallelCase && !O.Pool) {
    if (O.Threads == 0) {
      O.Pool = &ThreadPool::global();
    } else {
      // A caller-specified width with no engine: a private pool spanning
      // this one compile (every nested `case` shares it).
      Owned = std::make_unique<ThreadPool>(O.Threads);
      O.Pool = Owned.get();
    }
  }
  return compileNode(Manager, Program, O);
}
