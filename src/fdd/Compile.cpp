//===----------------------------------------------------------------------===//
///
/// \file
/// Structural-recursion compiler from the guarded AST fragment to FDDs,
/// including the parallel `case` path that compiles branches on a
/// persistent worker-pool engine and merges them through the portable
/// format with a pairwise tree reduction (Sec 6).
///
//===----------------------------------------------------------------------===//

#include "fdd/Compile.h"

#include "ast/Hash.h"
#include "ast/Simplify.h"
#include "fdd/CompileCache.h"
#include "fdd/Export.h"
#include "support/Casting.h"
#include "support/Error.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <memory>

using namespace mcnk;
using namespace mcnk::fdd;
using namespace mcnk::ast;

namespace {

/// Cross-compile memoization state for one compile() call: the shared
/// cache plus the fingerprint memo, computed up front in one pass so the
/// parallel `case` workers can read it concurrently without locking.
struct CacheContext {
  CompileCache *Cache;
  std::size_t MinNodes;
  FingerprintMemo Memo;
};

FddRef compileNode(FddManager &M, const Node *P, const CompileOptions &O,
                   const CacheContext *CC);

/// True for the composite kinds worth a cache round-trip. Atoms and
/// negation are cheaper to recompile than to import; everything that can
/// hide real compilation work (loops, cases, conditionals, sequences,
/// choices, predicate unions) is cacheable.
bool isCacheableKind(NodeKind Kind) {
  switch (Kind) {
  case NodeKind::Seq:
  case NodeKind::Union:
  case NodeKind::Choice:
  case NodeKind::IfThenElse:
  case NodeKind::While:
  case NodeKind::Case:
    return true;
  default:
    return false;
  }
}

/// A partially merged run of `case` branches, shipped between worker
/// managers in portable form. A segment over arms (g_i, b_i) denotes the
/// first-match cascade with a *drop* fall-through; Guard is the
/// disjunction of its guards, so the cascade-with-hole semantics is
/// `Body + !Guard ; <hole>`. Two adjacent segments compose as
///   Guard = Guard_L | Guard_R
///   Body  = if Guard_L then Body_L else Body_R
/// which is associative — that is what licenses the pairwise tree
/// reduction below. Both merge operations are arithmetic-free (they only
/// route between existing leaves), so parallel and serial compilation
/// produce reference-equal canonical diagrams in every solver mode.
struct CaseSegment {
  PortableFdd Guard;
  PortableFdd Body;
};

/// Compiles the branches of a `case` on the persistent worker pool: one
/// FddManager per task (managers are single-threaded), guards precompiled
/// alongside their branch, results shipped through the portable format and
/// merged by a log-depth pairwise tree reduction — the map-reduce strategy
/// of §6 on a single machine. Nested `case` nodes keep ParallelCase set:
/// they reuse the same pool, whose waiters help execute queued tasks
/// inline instead of blocking (docs/ARCHITECTURE.md S10).
FddRef compileCaseParallel(FddManager &M, const CaseNode *C,
                           const CompileOptions &O, const CacheContext *CC) {
  assert(O.Pool && "parallel case compilation requires an engine");
  ThreadPool &Pool = *O.Pool;
  const auto &Branches = C->branches();

  // Map: compile guard and branch of each arm in a private manager. The
  // cache context is shared read-only (the memo is fully populated before
  // any worker runs; CompileCache itself is thread-safe).
  std::vector<CaseSegment> Level(Branches.size());
  Pool.parallelFor(Branches.size(), [&](std::size_t I) {
    FddManager Worker(M.solverKind());
    Worker.setSolverStructure(M.solverStructure());
    FddRef Guard = compileNode(Worker, Branches[I].first, O, CC);
    FddRef Body = compileNode(Worker, Branches[I].second, O, CC);
    Level[I].Guard = exportFdd(Worker, Guard);
    Level[I].Body =
        exportFdd(Worker, Worker.branch(Guard, Body, Worker.dropLeaf()));
  });

  // Reduce: merge adjacent segments pairwise until one remains. Each
  // level halves the segment count, so the critical path is logarithmic
  // instead of the old serial right-fold.
  while (Level.size() > 1) {
    std::size_t Pairs = Level.size() / 2;
    std::vector<CaseSegment> Next(Pairs + (Level.size() & 1));
    Pool.parallelFor(Pairs, [&](std::size_t J) {
      FddManager Worker(M.solverKind());
      FddRef GuardL = importFdd(Worker, Level[2 * J].Guard);
      FddRef BodyL = importFdd(Worker, Level[2 * J].Body);
      FddRef GuardR = importFdd(Worker, Level[2 * J + 1].Guard);
      FddRef BodyR = importFdd(Worker, Level[2 * J + 1].Body);
      Next[J].Guard = exportFdd(Worker, Worker.disjoin(GuardL, GuardR));
      Next[J].Body = exportFdd(Worker, Worker.branch(GuardL, BodyL, BodyR));
    });
    if (Level.size() & 1)
      Next.back() = std::move(Level.back());
    Level = std::move(Next);
  }

  // Plug the default branch into the surviving segment's fall-through, in
  // the caller's manager.
  FddRef Default = compileNode(M, C->defaultBranch(), O, CC);
  FddRef Guard = importFdd(M, Level.front().Guard);
  FddRef Body = importFdd(M, Level.front().Body);
  return M.branch(Guard, Body, Default);
}

FddRef compileNodeUncached(FddManager &M, const Node *P,
                           const CompileOptions &O, const CacheContext *CC) {
  switch (P->kind()) {
  case NodeKind::Drop:
    return M.dropLeaf();
  case NodeKind::Skip:
    return M.identityLeaf();
  case NodeKind::Test: {
    const auto *T = cast<TestNode>(P);
    return M.test(T->field(), T->value());
  }
  case NodeKind::Assign: {
    const auto *A = cast<AssignNode>(P);
    return M.assign(A->field(), A->value());
  }
  case NodeKind::Not:
    return M.negate(compileNode(M, cast<NotNode>(P)->operand(), O, CC));
  case NodeKind::Seq: {
    const auto *S = cast<SeqNode>(P);
    return M.seq(compileNode(M, S->lhs(), O, CC),
                 compileNode(M, S->rhs(), O, CC));
  }
  case NodeKind::Union: {
    const auto *U = cast<UnionNode>(P);
    if (!U->isPredicate())
      fatalError("program-level union is outside the guarded fragment; "
                 "the native backend only compiles guarded programs (§5)");
    return M.disjoin(compileNode(M, U->lhs(), O, CC),
                     compileNode(M, U->rhs(), O, CC));
  }
  case NodeKind::Choice: {
    const auto *C = cast<ChoiceNode>(P);
    return M.choice(C->probability(), compileNode(M, C->lhs(), O, CC),
                    compileNode(M, C->rhs(), O, CC));
  }
  case NodeKind::Star:
    fatalError("star is outside the guarded fragment; use while loops");
  case NodeKind::IfThenElse: {
    const auto *I = cast<IfThenElseNode>(P);
    return M.branch(compileNode(M, I->cond(), O, CC),
                    compileNode(M, I->thenBranch(), O, CC),
                    compileNode(M, I->elseBranch(), O, CC));
  }
  case NodeKind::While: {
    const auto *W = cast<WhileNode>(P);
    return M.solveLoop(compileNode(M, W->cond(), O, CC),
                       compileNode(M, W->body(), O, CC));
  }
  case NodeKind::Case: {
    const auto *C = cast<CaseNode>(P);
    if (O.ParallelCase && C->branches().size() > 1)
      return compileCaseParallel(M, C, O, CC);
    FddRef Acc = compileNode(M, C->defaultBranch(), O, CC);
    for (std::size_t I = C->branches().size(); I-- > 0;) {
      FddRef Guard = compileNode(M, C->branches()[I].first, O, CC);
      FddRef Branch = compileNode(M, C->branches()[I].second, O, CC);
      Acc = M.branch(Guard, Branch, Acc);
    }
    return Acc;
  }
  }
  MCNK_UNREACHABLE("unhandled node kind");
}

/// The caching shell around compileNodeUncached: consult the shared cache
/// before compiling a composite sub-program, store what was compiled
/// after. Canonicity makes this transparent — importing a cached portable
/// diagram yields exactly the ref a fresh compile would have produced, so
/// hits and misses are reference-equal in every solver mode, serial or
/// parallel.
FddRef compileNode(FddManager &M, const Node *P, const CompileOptions &O,
                   const CacheContext *CC) {
  bool Consult = CC && isCacheableKind(P->kind());
  ast::ProgramHash Key;
  if (Consult) {
    const NodeFingerprint &FP = CC->Memo.at(P);
    Consult = FP.Size >= CC->MinNodes;
    Key = FP.Hash;
  }
  if (Consult) {
    std::shared_ptr<const PortableFdd> Cached;
    if (CC->Cache->lookup(Key, M.solverKind(), Cached))
      return importFdd(M, *Cached);
  }
  FddRef Result = compileNodeUncached(M, P, O, CC);
  if (Consult)
    CC->Cache->insert(Key, M.solverKind(), exportFdd(M, Result));
  return Result;
}

} // namespace

namespace {

/// Applies a CompileOptions solver-structure override for the duration of
/// one compile() call, restoring the manager's own setting afterwards.
/// The parallel-`case` workers read the manager's structure, so the
/// override propagates to them for free.
struct StructureOverride {
  StructureOverride(FddManager &M, const markov::SolverStructure *S)
      : Manager(M), Saved(M.solverStructure()) {
    if (S)
      Manager.setSolverStructure(*S);
  }
  ~StructureOverride() { Manager.setSolverStructure(Saved); }
  FddManager &Manager;
  markov::SolverStructure Saved;
};

} // namespace

FddRef fdd::compile(FddManager &Manager, const Node *Program,
                    const CompileOptions &Options) {
  CompileOptions O = Options;
  if (O.Slice && O.Slice->Ctx) {
    // Like Simplify below: once, before any worker copies the options.
    ast::SliceResult R =
        ast::slice(*O.Slice->Ctx, Program, O.Slice->Observed);
    Program = R.Program;
    if (O.Slice->Stats)
      *O.Slice->Stats = R.Stats;
    O.Slice = nullptr;
  }
  if (O.Simplify) {
    // Once, before any worker copies the options: ast::Context (the arena
    // behind the rewrite) is not thread-safe.
    Program = ast::simplify(*O.Simplify, Program);
    O.Simplify = nullptr;
  }
  StructureOverride Override(Manager, O.Structure);
  std::unique_ptr<ThreadPool> Owned;
  if (O.ParallelCase && !O.Pool) {
    if (O.Threads == 0) {
      O.Pool = &ThreadPool::global();
    } else {
      // A caller-specified width with no engine: a private pool spanning
      // this one compile (every nested `case` shares it).
      Owned = std::make_unique<ThreadPool>(O.Threads);
      O.Pool = Owned.get();
    }
  }
  if (O.Cache) {
    CacheContext CC{O.Cache, O.CacheMinNodes, {}};
    // One up-front fingerprint pass over the whole term; workers then
    // share the memo read-only.
    fingerprintTree(Program, CC.Memo);
    return compileNode(Manager, Program, O, &CC);
  }
  return compileNode(Manager, Program, O, nullptr);
}
