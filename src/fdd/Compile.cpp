//===----------------------------------------------------------------------===//
///
/// \file
/// Structural-recursion compiler from the guarded AST fragment to FDDs,
/// including the parallel `case` path that compiles branches on worker
/// managers and merges them through the portable format (Sec 6).
///
//===----------------------------------------------------------------------===//

#include "fdd/Compile.h"

#include "fdd/Export.h"
#include "support/Casting.h"
#include "support/Error.h"
#include "support/ThreadPool.h"

#include <cassert>

using namespace mcnk;
using namespace mcnk::fdd;
using namespace mcnk::ast;

namespace {

FddRef compileNode(FddManager &M, const Node *P, const CompileOptions &O);

/// Compiles the branches of a `case` on a worker pool: one FddManager per
/// branch (managers are single-threaded), results shipped back through the
/// portable format and merged with guarded branches — the map-reduce
/// strategy of §6 on a single machine.
FddRef compileCaseParallel(FddManager &M, const CaseNode *C,
                           const CompileOptions &O) {
  const auto &Branches = C->branches();
  std::vector<PortableFdd> Compiled(Branches.size());
  {
    ThreadPool Pool(O.Threads);
    CompileOptions Inner = O;
    Inner.ParallelCase = false; // Workers compile their branch serially.
    Pool.parallelFor(Branches.size(), [&](std::size_t I) {
      FddManager Worker(M.solverKind());
      FddRef Ref = compileNode(Worker, Branches[I].second, Inner);
      Compiled[I] = exportFdd(Worker, Ref);
    });
  }

  // Reduce: guards compile serially (they are tiny predicates), branches
  // are imported and folded right-to-left.
  FddRef Acc = compileNode(M, C->defaultBranch(), O);
  for (std::size_t I = Branches.size(); I-- > 0;) {
    FddRef Guard = compileNode(M, Branches[I].first, O);
    FddRef Branch = importFdd(M, Compiled[I]);
    Acc = M.branch(Guard, Branch, Acc);
  }
  return Acc;
}

FddRef compileNode(FddManager &M, const Node *P, const CompileOptions &O) {
  switch (P->kind()) {
  case NodeKind::Drop:
    return M.dropLeaf();
  case NodeKind::Skip:
    return M.identityLeaf();
  case NodeKind::Test: {
    const auto *T = cast<TestNode>(P);
    return M.test(T->field(), T->value());
  }
  case NodeKind::Assign: {
    const auto *A = cast<AssignNode>(P);
    return M.assign(A->field(), A->value());
  }
  case NodeKind::Not:
    return M.negate(compileNode(M, cast<NotNode>(P)->operand(), O));
  case NodeKind::Seq: {
    const auto *S = cast<SeqNode>(P);
    return M.seq(compileNode(M, S->lhs(), O), compileNode(M, S->rhs(), O));
  }
  case NodeKind::Union: {
    const auto *U = cast<UnionNode>(P);
    if (!U->isPredicate())
      fatalError("program-level union is outside the guarded fragment; "
                 "the native backend only compiles guarded programs (§5)");
    return M.disjoin(compileNode(M, U->lhs(), O),
                     compileNode(M, U->rhs(), O));
  }
  case NodeKind::Choice: {
    const auto *C = cast<ChoiceNode>(P);
    return M.choice(C->probability(), compileNode(M, C->lhs(), O),
                    compileNode(M, C->rhs(), O));
  }
  case NodeKind::Star:
    fatalError("star is outside the guarded fragment; use while loops");
  case NodeKind::IfThenElse: {
    const auto *I = cast<IfThenElseNode>(P);
    return M.branch(compileNode(M, I->cond(), O),
                    compileNode(M, I->thenBranch(), O),
                    compileNode(M, I->elseBranch(), O));
  }
  case NodeKind::While: {
    const auto *W = cast<WhileNode>(P);
    return M.solveLoop(compileNode(M, W->cond(), O),
                       compileNode(M, W->body(), O));
  }
  case NodeKind::Case: {
    const auto *C = cast<CaseNode>(P);
    if (O.ParallelCase && C->branches().size() > 1)
      return compileCaseParallel(M, C, O);
    FddRef Acc = compileNode(M, C->defaultBranch(), O);
    for (std::size_t I = C->branches().size(); I-- > 0;) {
      FddRef Guard = compileNode(M, C->branches()[I].first, O);
      FddRef Branch = compileNode(M, C->branches()[I].second, O);
      Acc = M.branch(Guard, Branch, Acc);
    }
    return Acc;
  }
  }
  MCNK_UNREACHABLE("unhandled node kind");
}

} // namespace

FddRef fdd::compile(FddManager &Manager, const Node *Program,
                    const CompileOptions &Options) {
  return compileNode(Manager, Program, Options);
}
