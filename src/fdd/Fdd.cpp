//===----------------------------------------------------------------------===//
///
/// \file
/// The FddManager: hash-consed node construction, the ordered-diagram
/// invariants, apply-style binary operations, and leaf algebra that keep
/// diagrams canonical so equivalence is reference equality.
///
//===----------------------------------------------------------------------===//

#include "fdd/Fdd.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>

using namespace mcnk;
using namespace mcnk::fdd;

namespace {
constexpr FieldId NoField = std::numeric_limits<FieldId>::max();
constexpr FieldValue NoValue = std::numeric_limits<FieldValue>::max();

/// Lexicographic order on tests; leaves order after every real test.
bool testLess(std::pair<FieldId, FieldValue> A,
              std::pair<FieldId, FieldValue> B) {
  return A.first != B.first ? A.first < B.first : A.second < B.second;
}
} // namespace

FddManager::FddManager(markov::SolverKind SolverMode) : Solver(SolverMode) {
  IdentityLeaf = leaf(ActionDist::dirac(Action()));
  DropLeaf = leaf(ActionDist::dirac(Action::drop()));
}

FddRef FddManager::leaf(const ActionDist &Dist) {
  std::size_t Hash = Dist.hash();
  auto &Bucket = LeafTable[Hash];
  for (uint32_t Idx : Bucket)
    if (Leaves[Idx] == Dist)
      return (Idx << 1) | 1;
  uint32_t Idx = static_cast<uint32_t>(Leaves.size());
  Leaves.push_back(Dist);
  Bucket.push_back(Idx);
  return (Idx << 1) | 1;
}

FddRef FddManager::inner(FieldId Field, FieldValue Value, FddRef Hi,
                         FddRef Lo) {
  if (Hi == Lo)
    return Hi;
  assert((isLeafRef(Hi) || innerNode(Hi).Field > Field) &&
         "true-subtree re-tests the decided field");
  assert((isLeafRef(Lo) || innerNode(Lo).Field > Field ||
          (innerNode(Lo).Field == Field && innerNode(Lo).Value > Value)) &&
         "false-subtree violates test ordering");
  // Second reduction rule (beyond Hi == Lo): the test is redundant when
  // the false-subtree already behaves like Hi for packets with
  // Field == Value — i.e. its true-cofactor equals Hi. Without this rule
  // multi-valued FDDs are not canonical and equivalence checking by
  // reference equality would report false negatives.
  if (cofactorTrue(Lo, Field, Value) == Hi)
    return Lo;
  InnerNode Node{Field, Value, Hi, Lo};
  std::size_t Hash = hashValues(Field, Value, Hi, Lo);
  auto &Bucket = InnerTable[Hash];
  for (uint32_t Idx : Bucket)
    if (Inners[Idx] == Node)
      return Idx << 1;
  uint32_t Idx = static_cast<uint32_t>(Inners.size());
  Inners.push_back(Node);
  Bucket.push_back(Idx);
  return Idx << 1;
}

const ActionDist &FddManager::leafDist(FddRef Leaf) const {
  assert(isLeafRef(Leaf) && "leafDist on interior node");
  return Leaves[Leaf >> 1];
}

const FddManager::InnerNode &FddManager::innerNode(FddRef Ref) const {
  assert(!isLeafRef(Ref) && "innerNode on leaf");
  return Inners[Ref >> 1];
}

uint32_t FddManager::internAction(const Action &A) {
  std::size_t Hash = A.hash();
  auto &Bucket = ActionTable[Hash];
  for (uint32_t Idx : Bucket)
    if (Actions[Idx] == A)
      return Idx;
  uint32_t Idx = static_cast<uint32_t>(Actions.size());
  Actions.push_back(A);
  Bucket.push_back(Idx);
  return Idx;
}

FddRef FddManager::test(FieldId Field, FieldValue Value) {
  return inner(Field, Value, IdentityLeaf, DropLeaf);
}

FddRef FddManager::assign(FieldId Field, FieldValue Value) {
  return leaf(ActionDist::dirac(Action::modify({{Field, Value}})));
}

std::pair<FieldId, FieldValue> FddManager::rootTest(FddRef Ref) const {
  if (isLeafRef(Ref))
    return {NoField, NoValue};
  const InnerNode &N = innerNode(Ref);
  return {N.Field, N.Value};
}

FddRef FddManager::cofactorTrue(FddRef Ref, FieldId Field,
                                FieldValue Value) const {
  // Assumption Field == Value; precondition: Ref's root test is not
  // smaller than (Field, Value) in the global test order.
  while (!isLeafRef(Ref)) {
    const InnerNode &N = innerNode(Ref);
    if (N.Field != Field)
      break; // N.Field > Field: no test on Field anywhere below.
    if (N.Value == Value)
      return N.Hi;
    assert(N.Value > Value && "cofactor precondition violated");
    Ref = N.Lo; // Test Field = N.Value fails under Field == Value.
  }
  return Ref;
}

FddRef FddManager::cofactorFalse(FddRef Ref, FieldId Field,
                                 FieldValue Value) const {
  if (isLeafRef(Ref))
    return Ref;
  const InnerNode &N = innerNode(Ref);
  if (N.Field == Field && N.Value == Value)
    return N.Lo;
  return Ref; // Larger tests stay undetermined under Field != Value.
}

FddRef FddManager::negate(FddRef Pred) {
  if (Pred == IdentityLeaf)
    return DropLeaf;
  if (Pred == DropLeaf)
    return IdentityLeaf;
  assert(!isLeafRef(Pred) && "negate on a non-predicate leaf");
  auto It = NegateCache.find(Pred);
  if (It != NegateCache.end())
    return It->second;
  // Copy: recursive calls may grow the node pool and invalidate refs.
  const InnerNode N = innerNode(Pred);
  FddRef Result = inner(N.Field, N.Value, negate(N.Hi), negate(N.Lo));
  NegateCache.emplace(Pred, Result);
  return Result;
}

FddRef FddManager::disjoin(FddRef PredA, FddRef PredB) {
  if (PredA == PredB || PredB == DropLeaf)
    return PredA;
  if (PredA == DropLeaf)
    return PredB;
  if (PredA == IdentityLeaf || PredB == IdentityLeaf)
    return IdentityLeaf;
  assert(!isLeafRef(PredA) && !isLeafRef(PredB) &&
         "disjoin on a non-predicate leaf");
  std::pair<FddRef, FddRef> Key = {std::min(PredA, PredB),
                                   std::max(PredA, PredB)};
  auto It = DisjoinCache.find(Key);
  if (It != DisjoinCache.end())
    return It->second;
  auto Test = std::min(rootTest(PredA), rootTest(PredB), testLess);
  auto [F, V] = Test;
  FddRef Hi =
      disjoin(cofactorTrue(PredA, F, V), cofactorTrue(PredB, F, V));
  FddRef Lo =
      disjoin(cofactorFalse(PredA, F, V), cofactorFalse(PredB, F, V));
  FddRef Result = inner(F, V, Hi, Lo);
  DisjoinCache.emplace(Key, Result);
  return Result;
}

FddRef FddManager::choice(const Rational &R, FddRef P, FddRef Q) {
  assert(R.isProbability() && "choice weight outside [0,1]");
  if (P == Q || R.isOne())
    return P;
  if (R.isZero())
    return Q;
  ChoiceKey Key{R, P, Q};
  auto It = ChoiceCache.find(Key);
  if (It != ChoiceCache.end())
    return It->second;
  FddRef Result;
  if (isLeafRef(P) && isLeafRef(Q)) {
    Result = leaf(ActionDist::convex(R, leafDist(P), leafDist(Q)));
  } else {
    auto [F, V] = std::min(rootTest(P), rootTest(Q), testLess);
    FddRef Hi = choice(R, cofactorTrue(P, F, V), cofactorTrue(Q, F, V));
    FddRef Lo = choice(R, cofactorFalse(P, F, V), cofactorFalse(Q, F, V));
    Result = inner(F, V, Hi, Lo);
  }
  ChoiceCache.emplace(Key, Result);
  return Result;
}

FddRef FddManager::branch(FddRef Guard, FddRef Then, FddRef Else) {
  if (Guard == IdentityLeaf)
    return Then;
  if (Guard == DropLeaf)
    return Else;
  if (Then == Else)
    return Then;
  assert(!isLeafRef(Guard) && "guard leaf must be pass or drop");
  auto Key = std::make_tuple(Guard, Then, Else);
  auto It = BranchCache.find(Key);
  if (It != BranchCache.end())
    return It->second;
  auto Test = std::min({rootTest(Guard), rootTest(Then), rootTest(Else)},
                       testLess);
  auto [F, V] = Test;
  FddRef Hi = branch(cofactorTrue(Guard, F, V), cofactorTrue(Then, F, V),
                     cofactorTrue(Else, F, V));
  FddRef Lo = branch(cofactorFalse(Guard, F, V), cofactorFalse(Then, F, V),
                     cofactorFalse(Else, F, V));
  FddRef Result = inner(F, V, Hi, Lo);
  BranchCache.emplace(Key, Result);
  return Result;
}

FddRef FddManager::seqAction(uint32_t ActionId, FddRef Q) {
  const Action &A = Actions[ActionId];
  if (A.isDrop())
    return DropLeaf;
  std::pair<uint32_t, FddRef> Key = {ActionId, Q};
  auto It = SeqActionCache.find(Key);
  if (It != SeqActionCache.end())
    return It->second;
  FddRef Result;
  if (isLeafRef(Q)) {
    std::vector<std::pair<Action, Rational>> Entries;
    for (const auto &[B, W] : leafDist(Q).entries())
      Entries.emplace_back(A.then(B), W);
    Result = leaf(ActionDist::fromEntries(std::move(Entries)));
  } else {
    // Copy: recursive calls may grow the node pool and invalidate refs.
    const InnerNode N = innerNode(Q);
    if (std::optional<FieldValue> Written = A.writeTo(N.Field)) {
      // The action pins this field before Q tests it; resolve statically.
      Result = seqAction(ActionId, *Written == N.Value ? N.Hi : N.Lo);
    } else {
      Result = inner(N.Field, N.Value, seqAction(ActionId, N.Hi),
                     seqAction(ActionId, N.Lo));
    }
  }
  SeqActionCache.emplace(Key, Result);
  return Result;
}

FddRef FddManager::weightedSum(
    std::vector<std::pair<Rational, FddRef>> Terms) {
  assert(!Terms.empty() && "weighted sum of nothing");
  FddRef Acc = Terms.back().second;
  // Mass accumulates in place (int64 fast path for the typical small
  // per-leaf weights); the per-step ratio W / Mass is the only temporary.
  Rational Mass = std::move(Terms.back().first);
  for (std::size_t I = Terms.size() - 1; I-- > 0;) {
    auto &[W, Ref] = Terms[I];
    Mass += W;
    W /= Mass;
    Acc = choice(W, Ref, Acc);
  }
  assert(Mass.isOne() && "weighted sum must be a full decomposition");
  return Acc;
}

FddRef FddManager::seq(FddRef P, FddRef Q) {
  if (P == DropLeaf || Q == IdentityLeaf || Q == DropLeaf) {
    // p ; skip = p, drop ; q = drop, p ; drop = drop (all mass dropped).
    return Q == DropLeaf ? DropLeaf : P;
  }
  if (P == IdentityLeaf)
    return Q;
  std::pair<FddRef, FddRef> Key = {P, Q};
  auto It = SeqCache.find(Key);
  if (It != SeqCache.end())
    return It->second;
  FddRef Result;
  if (isLeafRef(P)) {
    std::vector<std::pair<Rational, FddRef>> Terms;
    for (const auto &[A, W] : leafDist(P).entries())
      Terms.emplace_back(W, seqAction(internAction(A), Q));
    Result = weightedSum(std::move(Terms));
  } else {
    // Copy: recursive calls may grow the node pool and invalidate refs.
    const InnerNode N = innerNode(P);
    // Q's tests read the packet *after* P's actions, so they may need to
    // float above this node's test; route through branch() which
    // re-interleaves in canonical order.
    Result = branch(test(N.Field, N.Value), seq(N.Hi, Q), seq(N.Lo, Q));
  }
  SeqCache.emplace(Key, Result);
  return Result;
}

bool FddManager::isPredicateFdd(FddRef Ref) const {
  std::set<FddRef> Visited;
  std::vector<FddRef> Stack = {Ref};
  while (!Stack.empty()) {
    FddRef Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur).second)
      continue;
    if (isLeafRef(Cur)) {
      if (Cur != IdentityLeaf && Cur != DropLeaf)
        return false;
      continue;
    }
    const InnerNode &N = innerNode(Cur);
    Stack.push_back(N.Hi);
    Stack.push_back(N.Lo);
  }
  return true;
}

const ActionDist &FddManager::evalToLeaf(FddRef Ref, const Packet &P) const {
  while (!isLeafRef(Ref)) {
    const InnerNode &N = innerNode(Ref);
    Ref = P.get(N.Field) == N.Value ? N.Hi : N.Lo;
  }
  return leafDist(Ref);
}

FddManager::OutputDist FddManager::outputDistribution(FddRef Ref,
                                                      const Packet &P) const {
  OutputDist Result;
  for (const auto &[A, W] : evalToLeaf(Ref, P).entries()) {
    if (A.isDrop())
      Result.Dropped += W;
    else
      Result.Outputs[A.applyTo(P)] += W;
  }
  return Result;
}

std::size_t FddManager::diagramSize(FddRef Ref) const {
  std::set<FddRef> Visited;
  std::vector<FddRef> Stack = {Ref};
  while (!Stack.empty()) {
    FddRef Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur).second || isLeafRef(Cur))
      continue;
    const InnerNode &N = innerNode(Cur);
    Stack.push_back(N.Hi);
    Stack.push_back(N.Lo);
  }
  return Visited.size();
}

std::map<FieldId, std::vector<FieldValue>>
FddManager::collectDomain(FddRef Ref) const {
  std::map<FieldId, std::set<FieldValue>> Sets;
  std::set<FddRef> Visited;
  std::vector<FddRef> Stack = {Ref};
  while (!Stack.empty()) {
    FddRef Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur).second)
      continue;
    if (isLeafRef(Cur)) {
      for (const auto &[A, W] : leafDist(Cur).entries()) {
        (void)W;
        for (const auto &[F, V] : A.mods())
          Sets[F].insert(V);
      }
      continue;
    }
    const InnerNode &N = innerNode(Cur);
    Sets[N.Field].insert(N.Value);
    Stack.push_back(N.Hi);
    Stack.push_back(N.Lo);
  }
  std::map<FieldId, std::vector<FieldValue>> Result;
  for (auto &[F, Values] : Sets)
    Result.emplace(F, std::vector<FieldValue>(Values.begin(), Values.end()));
  return Result;
}
