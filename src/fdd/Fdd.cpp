//===----------------------------------------------------------------------===//
///
/// \file
/// The FddManager: hash-consed node construction, the ordered-diagram
/// invariants, apply-style binary operations, and leaf algebra that keep
/// diagrams canonical so equivalence is reference equality.
///
//===----------------------------------------------------------------------===//

#include "fdd/Fdd.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>
#include <type_traits>

using namespace mcnk;
using namespace mcnk::fdd;

namespace {
constexpr FieldId NoField = std::numeric_limits<FieldId>::max();
constexpr FieldValue NoValue = std::numeric_limits<FieldValue>::max();

/// Lexicographic order on tests; leaves order after every real test.
bool testLess(std::pair<FieldId, FieldValue> A,
              std::pair<FieldId, FieldValue> B) {
  return A.first != B.first ? A.first < B.first : A.second < B.second;
}
} // namespace

FddManager::FddManager(markov::SolverKind SolverMode) : Solver(SolverMode) {
  IdentityLeaf = leaf(ActionDist::dirac(Action()));
  DropLeaf = leaf(ActionDist::dirac(Action::drop()));
}

FddRef FddManager::leaf(const ActionDist &Dist) {
  std::size_t Hash = Dist.hash();
  auto &Bucket = LeafTable[Hash];
  for (uint32_t Idx : Bucket)
    if (Leaves[Idx] == Dist)
      return (Idx << 1) | 1;
  uint32_t Idx = static_cast<uint32_t>(Leaves.size());
  Leaves.push_back(Dist);
  Bucket.push_back(Idx);
  return (Idx << 1) | 1;
}

FddRef FddManager::inner(FieldId Field, FieldValue Value, FddRef Hi,
                         FddRef Lo) {
  if (Hi == Lo)
    return Hi;
  assert((isLeafRef(Hi) || innerNode(Hi).Field > Field) &&
         "true-subtree re-tests the decided field");
  assert((isLeafRef(Lo) || innerNode(Lo).Field > Field ||
          (innerNode(Lo).Field == Field && innerNode(Lo).Value > Value)) &&
         "false-subtree violates test ordering");
  // Second reduction rule (beyond Hi == Lo): the test is redundant when
  // the false-subtree already behaves like Hi for packets with
  // Field == Value — i.e. its true-cofactor equals Hi. Without this rule
  // multi-valued FDDs are not canonical and equivalence checking by
  // reference equality would report false negatives.
  if (cofactorTrue(Lo, Field, Value) == Hi)
    return Lo;
  InnerNode Node{Field, Value, Hi, Lo};
  std::size_t Hash = hashValues(Field, Value, Hi, Lo);
  auto &Bucket = InnerTable[Hash];
  for (uint32_t Idx : Bucket)
    if (Inners[Idx] == Node)
      return Idx << 1;
  uint32_t Idx = static_cast<uint32_t>(Inners.size());
  Inners.push_back(Node);
  Bucket.push_back(Idx);
  return Idx << 1;
}

const ActionDist &FddManager::leafDist(FddRef Leaf) const {
  assert(isLeafRef(Leaf) && "leafDist on interior node");
  return Leaves[Leaf >> 1];
}

const FddManager::InnerNode &FddManager::innerNode(FddRef Ref) const {
  assert(!isLeafRef(Ref) && "innerNode on leaf");
  return Inners[Ref >> 1];
}

uint32_t FddManager::internAction(const Action &A) {
  std::size_t Hash = A.hash();
  auto &Bucket = ActionTable[Hash];
  for (uint32_t Idx : Bucket)
    if (Actions[Idx] == A)
      return Idx;
  uint32_t Idx = static_cast<uint32_t>(Actions.size());
  Actions.push_back(A);
  Bucket.push_back(Idx);
  return Idx;
}

FddRef FddManager::test(FieldId Field, FieldValue Value) {
  return inner(Field, Value, IdentityLeaf, DropLeaf);
}

FddRef FddManager::assign(FieldId Field, FieldValue Value) {
  return leaf(ActionDist::dirac(Action::modify({{Field, Value}})));
}

std::pair<FieldId, FieldValue> FddManager::rootTest(FddRef Ref) const {
  if (isLeafRef(Ref))
    return {NoField, NoValue};
  const InnerNode &N = innerNode(Ref);
  return {N.Field, N.Value};
}

FddRef FddManager::cofactorTrue(FddRef Ref, FieldId Field,
                                FieldValue Value) const {
  // Assumption Field == Value; precondition: Ref's root test is not
  // smaller than (Field, Value) in the global test order.
  while (!isLeafRef(Ref)) {
    const InnerNode &N = innerNode(Ref);
    if (N.Field != Field)
      break; // N.Field > Field: no test on Field anywhere below.
    if (N.Value == Value)
      return N.Hi;
    assert(N.Value > Value && "cofactor precondition violated");
    Ref = N.Lo; // Test Field = N.Value fails under Field == Value.
  }
  return Ref;
}

FddRef FddManager::cofactorFalse(FddRef Ref, FieldId Field,
                                 FieldValue Value) const {
  if (isLeafRef(Ref))
    return Ref;
  const InnerNode &N = innerNode(Ref);
  if (N.Field == Field && N.Value == Value)
    return N.Lo;
  return Ref; // Larger tests stay undetermined under Field != Value.
}

// The compiler operations below are written in the explicit-stack style of
// Export.cpp rather than as direct recursion: diagrams shaped like long
// test chains (one inner node per value, tens of thousands deep) would
// otherwise overflow the call stack. Each operation keeps its terminal
// cases and memo table exactly as before; the Frame stack replaces the
// call stack and a value stack carries child results to their parent,
// with children evaluated in the same order the recursive versions used.

FddRef FddManager::negate(FddRef Pred) {
  if (Pred == IdentityLeaf)
    return DropLeaf;
  if (Pred == DropLeaf)
    return IdentityLeaf;
  assert(!isLeafRef(Pred) && "negate on a non-predicate leaf");
  if (auto It = NegateCache.find(Pred); It != NegateCache.end())
    return It->second;

  struct Frame {
    FddRef Ref;
    FieldId Field;
    FieldValue Value;
    bool Expanded;
  };
  std::vector<Frame> Stack;
  std::vector<FddRef> Values;
  Stack.push_back({Pred, 0, 0, false});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (!Top.Expanded) {
      FddRef Ref = Top.Ref;
      if (Ref == IdentityLeaf || Ref == DropLeaf) {
        Values.push_back(Ref == IdentityLeaf ? DropLeaf : IdentityLeaf);
        Stack.pop_back();
        continue;
      }
      assert(!isLeafRef(Ref) && "negate on a non-predicate leaf");
      if (auto It = NegateCache.find(Ref); It != NegateCache.end()) {
        Values.push_back(It->second);
        Stack.pop_back();
        continue;
      }
      const InnerNode &N = innerNode(Ref);
      Top.Field = N.Field;
      Top.Value = N.Value;
      Top.Expanded = true;
      FddRef Hi = N.Hi, Lo = N.Lo; // Pushing below invalidates Top and N.
      Stack.push_back({Lo, 0, 0, false});
      Stack.push_back({Hi, 0, 0, false});
      continue;
    }
    FddRef LoRes = Values.back();
    Values.pop_back();
    FddRef HiRes = Values.back();
    Values.pop_back();
    FddRef Result = inner(Top.Field, Top.Value, HiRes, LoRes);
    NegateCache.emplace(Top.Ref, Result);
    Values.push_back(Result);
    Stack.pop_back();
  }
  assert(Values.size() == 1 && "unbalanced traversal");
  return Values.back();
}

FddRef FddManager::disjoin(FddRef PredA, FddRef PredB) {
  auto Terminal = [this](FddRef A, FddRef B, FddRef &Out) {
    if (A == B || B == DropLeaf) {
      Out = A;
      return true;
    }
    if (A == DropLeaf) {
      Out = B;
      return true;
    }
    if (A == IdentityLeaf || B == IdentityLeaf) {
      Out = IdentityLeaf;
      return true;
    }
    return false;
  };
  FddRef Quick;
  if (Terminal(PredA, PredB, Quick))
    return Quick;

  struct Frame {
    FddRef A, B;
    FieldId Field;
    FieldValue Value;
    bool Expanded;
  };
  std::vector<Frame> Stack;
  std::vector<FddRef> Values;
  Stack.push_back({PredA, PredB, 0, 0, false});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (!Top.Expanded) {
      FddRef A = Top.A, B = Top.B;
      FddRef Out;
      if (Terminal(A, B, Out)) {
        Values.push_back(Out);
        Stack.pop_back();
        continue;
      }
      assert(!isLeafRef(A) && !isLeafRef(B) &&
             "disjoin on a non-predicate leaf");
      std::pair<FddRef, FddRef> Key = {std::min(A, B), std::max(A, B)};
      if (auto It = DisjoinCache.find(Key); It != DisjoinCache.end()) {
        Values.push_back(It->second);
        Stack.pop_back();
        continue;
      }
      auto [F, V] = std::min(rootTest(A), rootTest(B), testLess);
      Top.Field = F;
      Top.Value = V;
      Top.Expanded = true;
      // Pushing below invalidates Top; cofactors allocate nothing.
      Stack.push_back(
          {cofactorFalse(A, F, V), cofactorFalse(B, F, V), 0, 0, false});
      Stack.push_back(
          {cofactorTrue(A, F, V), cofactorTrue(B, F, V), 0, 0, false});
      continue;
    }
    FddRef LoRes = Values.back();
    Values.pop_back();
    FddRef HiRes = Values.back();
    Values.pop_back();
    FddRef Result = inner(Top.Field, Top.Value, HiRes, LoRes);
    DisjoinCache.emplace(
        std::make_pair(std::min(Top.A, Top.B), std::max(Top.A, Top.B)),
        Result);
    Values.push_back(Result);
    Stack.pop_back();
  }
  assert(Values.size() == 1 && "unbalanced traversal");
  return Values.back();
}

FddRef FddManager::choice(const Rational &R, FddRef P, FddRef Q) {
  assert(R.isProbability() && "choice weight outside [0,1]");
  if (P == Q || R.isOne())
    return P;
  if (R.isZero())
    return Q;

  // R is invariant across the whole decomposition, so frames carry only
  // the operand pair.
  struct Frame {
    FddRef P, Q;
    FieldId Field;
    FieldValue Value;
    bool Expanded;
  };
  std::vector<Frame> Stack;
  std::vector<FddRef> Values;
  Stack.push_back({P, Q, 0, 0, false});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (!Top.Expanded) {
      FddRef A = Top.P, B = Top.Q;
      if (A == B) {
        Values.push_back(A);
        Stack.pop_back();
        continue;
      }
      if (auto It = ChoiceCache.find(ChoiceKey{R, A, B});
          It != ChoiceCache.end()) {
        Values.push_back(It->second);
        Stack.pop_back();
        continue;
      }
      if (isLeafRef(A) && isLeafRef(B)) {
        FddRef Result = leaf(ActionDist::convex(R, leafDist(A), leafDist(B)));
        ChoiceCache.emplace(ChoiceKey{R, A, B}, Result);
        Values.push_back(Result);
        Stack.pop_back();
        continue;
      }
      auto [F, V] = std::min(rootTest(A), rootTest(B), testLess);
      Top.Field = F;
      Top.Value = V;
      Top.Expanded = true;
      // Pushing below invalidates Top; cofactors allocate nothing.
      Stack.push_back(
          {cofactorFalse(A, F, V), cofactorFalse(B, F, V), 0, 0, false});
      Stack.push_back(
          {cofactorTrue(A, F, V), cofactorTrue(B, F, V), 0, 0, false});
      continue;
    }
    FddRef LoRes = Values.back();
    Values.pop_back();
    FddRef HiRes = Values.back();
    Values.pop_back();
    FddRef Result = inner(Top.Field, Top.Value, HiRes, LoRes);
    ChoiceCache.emplace(ChoiceKey{R, Top.P, Top.Q}, Result);
    Values.push_back(Result);
    Stack.pop_back();
  }
  assert(Values.size() == 1 && "unbalanced traversal");
  return Values.back();
}

FddRef FddManager::branch(FddRef Guard, FddRef Then, FddRef Else) {
  auto Terminal = [this](FddRef G, FddRef T, FddRef E, FddRef &Out) {
    if (G == IdentityLeaf) {
      Out = T;
      return true;
    }
    if (G == DropLeaf) {
      Out = E;
      return true;
    }
    if (T == E) {
      Out = T;
      return true;
    }
    return false;
  };
  FddRef Quick;
  if (Terminal(Guard, Then, Else, Quick))
    return Quick;

  struct Frame {
    FddRef Guard, Then, Else;
    FieldId Field;
    FieldValue Value;
    bool Expanded;
  };
  std::vector<Frame> Stack;
  std::vector<FddRef> Values;
  Stack.push_back({Guard, Then, Else, 0, 0, false});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (!Top.Expanded) {
      FddRef G = Top.Guard, T = Top.Then, E = Top.Else;
      FddRef Out;
      if (Terminal(G, T, E, Out)) {
        Values.push_back(Out);
        Stack.pop_back();
        continue;
      }
      assert(!isLeafRef(G) && "guard leaf must be pass or drop");
      if (auto It = BranchCache.find(std::make_tuple(G, T, E));
          It != BranchCache.end()) {
        Values.push_back(It->second);
        Stack.pop_back();
        continue;
      }
      auto [F, V] =
          std::min({rootTest(G), rootTest(T), rootTest(E)}, testLess);
      Top.Field = F;
      Top.Value = V;
      Top.Expanded = true;
      // Pushing below invalidates Top; cofactors allocate nothing.
      Stack.push_back({cofactorFalse(G, F, V), cofactorFalse(T, F, V),
                       cofactorFalse(E, F, V), 0, 0, false});
      Stack.push_back({cofactorTrue(G, F, V), cofactorTrue(T, F, V),
                       cofactorTrue(E, F, V), 0, 0, false});
      continue;
    }
    FddRef LoRes = Values.back();
    Values.pop_back();
    FddRef HiRes = Values.back();
    Values.pop_back();
    FddRef Result = inner(Top.Field, Top.Value, HiRes, LoRes);
    BranchCache.emplace(std::make_tuple(Top.Guard, Top.Then, Top.Else),
                        Result);
    Values.push_back(Result);
    Stack.pop_back();
  }
  assert(Values.size() == 1 && "unbalanced traversal");
  return Values.back();
}

FddRef FddManager::seqAction(uint32_t ActionId, FddRef Q) {
  // Copy: the leaf algebra below can intern new leaves, but never new
  // actions, so the id stays valid; the copy guards against pool growth
  // elsewhere all the same.
  const Action A = Actions[ActionId];
  if (A.isDrop())
    return DropLeaf;
  if (auto It = SeqActionCache.find({ActionId, Q});
      It != SeqActionCache.end())
    return It->second;

  // The action is invariant across the decomposition; frames carry the
  // sub-diagram plus whether the test was statically resolved (one child)
  // or split (two).
  struct Frame {
    FddRef Q;
    FieldId Field;
    FieldValue Value;
    bool Expanded;
    bool Resolved;
  };
  std::vector<Frame> Stack;
  std::vector<FddRef> Values;
  Stack.push_back({Q, 0, 0, false, false});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (!Top.Expanded) {
      FddRef Cur = Top.Q;
      if (auto It = SeqActionCache.find({ActionId, Cur});
          It != SeqActionCache.end()) {
        Values.push_back(It->second);
        Stack.pop_back();
        continue;
      }
      if (isLeafRef(Cur)) {
        std::vector<std::pair<Action, Rational>> Entries;
        for (const auto &[B, W] : leafDist(Cur).entries())
          Entries.emplace_back(A.then(B), W);
        FddRef Result = leaf(ActionDist::fromEntries(std::move(Entries)));
        SeqActionCache.emplace(std::make_pair(ActionId, Cur), Result);
        Values.push_back(Result);
        Stack.pop_back();
        continue;
      }
      const InnerNode &N = innerNode(Cur);
      Top.Field = N.Field;
      Top.Value = N.Value;
      Top.Expanded = true;
      FddRef Hi = N.Hi, Lo = N.Lo; // Pushing below invalidates Top and N.
      if (std::optional<FieldValue> Written = A.writeTo(Top.Field)) {
        // The action pins this field before Q tests it; resolve statically.
        Top.Resolved = true;
        Stack.push_back(
            {*Written == Top.Value ? Hi : Lo, 0, 0, false, false});
      } else {
        Stack.push_back({Lo, 0, 0, false, false});
        Stack.push_back({Hi, 0, 0, false, false});
      }
      continue;
    }
    FddRef Result;
    if (Top.Resolved) {
      Result = Values.back();
      Values.pop_back();
    } else {
      FddRef LoRes = Values.back();
      Values.pop_back();
      FddRef HiRes = Values.back();
      Values.pop_back();
      Result = inner(Top.Field, Top.Value, HiRes, LoRes);
    }
    SeqActionCache.emplace(std::make_pair(ActionId, Top.Q), Result);
    Values.push_back(Result);
    Stack.pop_back();
  }
  assert(Values.size() == 1 && "unbalanced traversal");
  return Values.back();
}

FddRef FddManager::weightedSum(
    std::vector<std::pair<Rational, FddRef>> Terms) {
  assert(!Terms.empty() && "weighted sum of nothing");
  FddRef Acc = Terms.back().second;
  // Mass accumulates in place (int64 fast path for the typical small
  // per-leaf weights); the per-step ratio W / Mass is the only temporary.
  Rational Mass = std::move(Terms.back().first);
  for (std::size_t I = Terms.size() - 1; I-- > 0;) {
    auto &[W, Ref] = Terms[I];
    Mass += W;
    W /= Mass;
    Acc = choice(W, Ref, Acc);
  }
  assert(Mass.isOne() && "weighted sum must be a full decomposition");
  return Acc;
}

FddRef FddManager::seq(FddRef P, FddRef Q) {
  auto Terminal = [this](FddRef A, FddRef B, FddRef &Out) {
    if (A == DropLeaf || B == IdentityLeaf || B == DropLeaf) {
      // p ; skip = p, drop ; q = drop, p ; drop = drop (all mass dropped).
      Out = B == DropLeaf ? DropLeaf : A;
      return true;
    }
    if (A == IdentityLeaf) {
      Out = B;
      return true;
    }
    return false;
  };
  FddRef Quick;
  if (Terminal(P, Q, Quick))
    return Quick;

  struct Frame {
    FddRef P, Q;
    FieldId Field;
    FieldValue Value;
    bool Expanded;
  };
  std::vector<Frame> Stack;
  std::vector<FddRef> Values;
  Stack.push_back({P, Q, 0, 0, false});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (!Top.Expanded) {
      FddRef A = Top.P, B = Top.Q;
      FddRef Out;
      if (Terminal(A, B, Out)) {
        Values.push_back(Out);
        Stack.pop_back();
        continue;
      }
      if (auto It = SeqCache.find({A, B}); It != SeqCache.end()) {
        Values.push_back(It->second);
        Stack.pop_back();
        continue;
      }
      if (isLeafRef(A)) {
        // Leaf ▷ diagram: decompose into per-action compositions (each
        // one an iterative seqAction) and reassemble; weightedSum and
        // choice are themselves non-recursive. Copy the entries: the
        // seqAction calls intern new leaves, which can relocate the pool
        // the distribution lives in.
        const std::vector<std::pair<Action, Rational>> Entries =
            leafDist(A).entries();
        std::vector<std::pair<Rational, FddRef>> Terms;
        for (const auto &[Act, W] : Entries)
          Terms.emplace_back(W, seqAction(internAction(Act), B));
        FddRef Result = weightedSum(std::move(Terms));
        SeqCache.emplace(std::make_pair(A, B), Result);
        Values.push_back(Result);
        Stack.pop_back();
        continue;
      }
      const InnerNode &N = innerNode(A);
      Top.Field = N.Field;
      Top.Value = N.Value;
      Top.Expanded = true;
      FddRef Hi = N.Hi, Lo = N.Lo; // Pushing below invalidates Top and N.
      Stack.push_back({Lo, B, 0, 0, false});
      Stack.push_back({Hi, B, 0, 0, false});
      continue;
    }
    FddRef LoRes = Values.back();
    Values.pop_back();
    FddRef HiRes = Values.back();
    Values.pop_back();
    // Q's tests read the packet *after* P's actions, so they may need to
    // float above this node's test; route through branch() which
    // re-interleaves in canonical order.
    FddRef Result = branch(test(Top.Field, Top.Value), HiRes, LoRes);
    SeqCache.emplace(std::make_pair(Top.P, Top.Q), Result);
    Values.push_back(Result);
    Stack.pop_back();
  }
  assert(Values.size() == 1 && "unbalanced traversal");
  return Values.back();
}

bool FddManager::isPredicateFdd(FddRef Ref) const {
  std::set<FddRef> Visited;
  std::vector<FddRef> Stack = {Ref};
  while (!Stack.empty()) {
    FddRef Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur).second)
      continue;
    if (isLeafRef(Cur)) {
      if (Cur != IdentityLeaf && Cur != DropLeaf)
        return false;
      continue;
    }
    const InnerNode &N = innerNode(Cur);
    Stack.push_back(N.Hi);
    Stack.push_back(N.Lo);
  }
  return true;
}

const ActionDist &FddManager::evalToLeaf(FddRef Ref, const Packet &P) const {
  while (!isLeafRef(Ref)) {
    const InnerNode &N = innerNode(Ref);
    Ref = P.get(N.Field) == N.Value ? N.Hi : N.Lo;
  }
  return leafDist(Ref);
}

FddManager::OutputDist FddManager::outputDistribution(FddRef Ref,
                                                      const Packet &P) const {
  OutputDist Result;
  for (const auto &[A, W] : evalToLeaf(Ref, P).entries()) {
    if (A.isDrop())
      Result.Dropped += W;
    else
      Result.Outputs[A.applyTo(P)] += W;
  }
  return Result;
}

std::size_t FddManager::diagramSize(FddRef Ref) const {
  std::set<FddRef> Visited;
  std::vector<FddRef> Stack = {Ref};
  while (!Stack.empty()) {
    FddRef Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur).second || isLeafRef(Cur))
      continue;
    const InnerNode &N = innerNode(Cur);
    Stack.push_back(N.Hi);
    Stack.push_back(N.Lo);
  }
  return Visited.size();
}

std::map<FieldId, std::vector<FieldValue>>
FddManager::collectDomain(FddRef Ref) const {
  std::map<FieldId, std::set<FieldValue>> Sets;
  std::set<FddRef> Visited;
  std::vector<FddRef> Stack = {Ref};
  while (!Stack.empty()) {
    FddRef Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur).second)
      continue;
    if (isLeafRef(Cur)) {
      for (const auto &[A, W] : leafDist(Cur).entries()) {
        (void)W;
        for (const auto &[F, V] : A.mods())
          Sets[F].insert(V);
      }
      continue;
    }
    const InnerNode &N = innerNode(Cur);
    Sets[N.Field].insert(N.Value);
    Stack.push_back(N.Hi);
    Stack.push_back(N.Lo);
  }
  std::map<FieldId, std::vector<FieldValue>> Result;
  for (auto &[F, Values] : Sets)
    Result.emplace(F, std::vector<FieldValue>(Values.begin(), Values.end()));
  return Result;
}

//===----------------------------------------------------------------------===//
// Lifecycle: reset and mark-sweep compaction
//===----------------------------------------------------------------------===//

void FddManager::reset() {
  Leaves.clear();
  LeafTable.clear();
  Inners.clear();
  InnerTable.clear();
  Actions.clear();
  ActionTable.clear();
  SeqCache.clear();
  DisjoinCache.clear();
  NegateCache.clear();
  ChoiceCache.clear();
  BranchCache.clear();
  SeqActionCache.clear();
  LoopCache.clear();
  LastLoop = LoopSolveStats();
  IdentityLeaf = leaf(ActionDist::dirac(Action()));
  DropLeaf = leaf(ActionDist::dirac(Action::drop()));
}

GcStats FddManager::gc(const std::vector<FddRef *> &Roots) {
  GcStats Stats;
  constexpr uint32_t Dead = std::numeric_limits<uint32_t>::max();

  // --- Mark: everything reachable from the roots plus the constants. ----
  std::vector<bool> LeafLive(Leaves.size(), false);
  std::vector<bool> InnerLive(Inners.size(), false);
  std::vector<FddRef> Stack = {IdentityLeaf, DropLeaf};
  for (FddRef *Root : Roots) {
    assert(Root && "null root handed to gc");
    Stack.push_back(*Root);
  }
  while (!Stack.empty()) {
    FddRef Cur = Stack.back();
    Stack.pop_back();
    if (isLeafRef(Cur)) {
      LeafLive[Cur >> 1] = true;
      continue;
    }
    if (InnerLive[Cur >> 1])
      continue;
    InnerLive[Cur >> 1] = true;
    const InnerNode &N = Inners[Cur >> 1];
    Stack.push_back(N.Hi);
    Stack.push_back(N.Lo);
  }

  // --- Sweep: order-preserving compaction keeps the children-precede-
  // parents property of the inner pool, so one ascending pass remaps
  // every child ref before its parent is rebuilt. -----------------------
  std::vector<uint32_t> LeafRemap(Leaves.size(), Dead);
  std::vector<uint32_t> InnerRemap(Inners.size(), Dead);
  for (std::size_t I = 0; I < Leaves.size(); ++I)
    if (LeafLive[I])
      LeafRemap[I] = static_cast<uint32_t>(Stats.LiveLeaves++);
  Stats.FreedLeaves = Leaves.size() - Stats.LiveLeaves;
  for (std::size_t I = 0; I < Inners.size(); ++I)
    if (InnerLive[I])
      InnerRemap[I] = static_cast<uint32_t>(Stats.LiveInners++);
  Stats.FreedInners = Inners.size() - Stats.LiveInners;

  auto LiveRef = [&](FddRef Old) {
    return isLeafRef(Old) ? LeafLive[Old >> 1] : InnerLive[Old >> 1];
  };
  auto RemapRef = [&](FddRef Old) -> FddRef {
    if (isLeafRef(Old)) {
      assert(LeafRemap[Old >> 1] != Dead && "remapping a dead leaf");
      return (LeafRemap[Old >> 1] << 1) | 1;
    }
    assert(InnerRemap[Old >> 1] != Dead && "remapping a dead node");
    return InnerRemap[Old >> 1] << 1;
  };

  {
    std::vector<ActionDist> NewLeaves;
    NewLeaves.reserve(Stats.LiveLeaves);
    LeafTable.clear();
    for (std::size_t I = 0; I < Leaves.size(); ++I) {
      if (!LeafLive[I])
        continue;
      LeafTable[Leaves[I].hash()].push_back(
          static_cast<uint32_t>(NewLeaves.size()));
      NewLeaves.push_back(std::move(Leaves[I]));
    }
    Leaves = std::move(NewLeaves);
  }
  {
    std::vector<InnerNode> NewInners;
    NewInners.reserve(Stats.LiveInners);
    InnerTable.clear();
    for (std::size_t I = 0; I < Inners.size(); ++I) {
      if (!InnerLive[I])
        continue;
      InnerNode N = Inners[I];
      N.Hi = RemapRef(N.Hi);
      N.Lo = RemapRef(N.Lo);
      InnerTable[hashValues(N.Field, N.Value, N.Hi, N.Lo)].push_back(
          static_cast<uint32_t>(NewInners.size()));
      NewInners.push_back(N);
    }
    Inners = std::move(NewInners);
  }

  IdentityLeaf = RemapRef(IdentityLeaf);
  DropLeaf = RemapRef(DropLeaf);
  // Remap each distinct root location exactly once: duplicate (aliased)
  // pointers in Roots would otherwise be remapped twice, feeding an
  // already-new ref back through the old-index tables.
  {
    std::set<FddRef *> Seen;
    for (FddRef *Root : Roots)
      if (Seen.insert(Root).second)
        *Root = RemapRef(*Root);
  }

  // --- Rebuild the operation caches onto the compacted refs. An entry
  // survives iff every operand and its result are still reachable; the
  // rest would pin dead structure (or dangle), so they are dropped and
  // simply recomputed on demand. -----------------------------------------
  auto RebuildPair = [&](auto &Cache) {
    std::remove_reference_t<decltype(Cache)> New;
    New.reserve(Cache.size());
    for (const auto &[K, V] : Cache) {
      if (!LiveRef(K.first) || !LiveRef(K.second) || !LiveRef(V)) {
        ++Stats.DroppedCacheEntries;
        continue;
      }
      New.emplace(std::make_pair(RemapRef(K.first), RemapRef(K.second)),
                  RemapRef(V));
      ++Stats.KeptCacheEntries;
    }
    Cache = std::move(New);
  };
  RebuildPair(SeqCache);
  {
    // Disjoin keys carry a (min, max) normalization. Both operands are
    // always inner refs (leaves are swallowed by the terminal cases), so
    // order-preserving compaction cannot actually flip them — but
    // re-normalize locally so the lookup invariant is evident here
    // rather than resting on that argument.
    decltype(DisjoinCache) New;
    New.reserve(DisjoinCache.size());
    for (const auto &[K, V] : DisjoinCache) {
      if (!LiveRef(K.first) || !LiveRef(K.second) || !LiveRef(V)) {
        ++Stats.DroppedCacheEntries;
        continue;
      }
      New.emplace(std::minmax(RemapRef(K.first), RemapRef(K.second)),
                  RemapRef(V));
      ++Stats.KeptCacheEntries;
    }
    DisjoinCache = std::move(New);
  }
  {
    decltype(NegateCache) New;
    New.reserve(NegateCache.size());
    for (const auto &[K, V] : NegateCache) {
      if (!LiveRef(K) || !LiveRef(V)) {
        ++Stats.DroppedCacheEntries;
        continue;
      }
      New.emplace(RemapRef(K), RemapRef(V));
      ++Stats.KeptCacheEntries;
    }
    NegateCache = std::move(New);
  }
  {
    decltype(ChoiceCache) New;
    New.reserve(ChoiceCache.size());
    for (const auto &[K, V] : ChoiceCache) {
      if (!LiveRef(K.P) || !LiveRef(K.Q) || !LiveRef(V)) {
        ++Stats.DroppedCacheEntries;
        continue;
      }
      New.emplace(ChoiceKey{K.R, RemapRef(K.P), RemapRef(K.Q)},
                  RemapRef(V));
      ++Stats.KeptCacheEntries;
    }
    ChoiceCache = std::move(New);
  }
  {
    decltype(BranchCache) New;
    New.reserve(BranchCache.size());
    for (const auto &[K, V] : BranchCache) {
      auto [G, T, E] = K;
      if (!LiveRef(G) || !LiveRef(T) || !LiveRef(E) || !LiveRef(V)) {
        ++Stats.DroppedCacheEntries;
        continue;
      }
      New.emplace(std::make_tuple(RemapRef(G), RemapRef(T), RemapRef(E)),
                  RemapRef(V));
      ++Stats.KeptCacheEntries;
    }
    BranchCache = std::move(New);
  }
  {
    // SeqAction keys embed interned action ids; the action pool is itself
    // a cache-support structure, so compact it down to the actions that
    // surviving entries still reference.
    decltype(SeqActionCache) New;
    New.reserve(SeqActionCache.size());
    std::vector<uint32_t> ActionRemap(Actions.size(), Dead);
    std::vector<Action> NewActions;
    ActionTable.clear();
    for (const auto &[K, V] : SeqActionCache) {
      if (!LiveRef(K.second) || !LiveRef(V)) {
        ++Stats.DroppedCacheEntries;
        continue;
      }
      uint32_t OldAction = K.first;
      if (ActionRemap[OldAction] == Dead) {
        ActionRemap[OldAction] = static_cast<uint32_t>(NewActions.size());
        ActionTable[Actions[OldAction].hash()].push_back(
            static_cast<uint32_t>(NewActions.size()));
        NewActions.push_back(Actions[OldAction]);
      }
      New.emplace(
          std::make_pair(ActionRemap[OldAction], RemapRef(K.second)),
          RemapRef(V));
      ++Stats.KeptCacheEntries;
    }
    Stats.FreedActions = Actions.size() - NewActions.size();
    Actions = std::move(NewActions);
    SeqActionCache = std::move(New);
  }
  {
    decltype(LoopCache) New;
    New.reserve(LoopCache.size());
    for (const auto &[K, V] : LoopCache) {
      if (!LiveRef(K.first) || !LiveRef(K.second) || !LiveRef(V.Result)) {
        ++Stats.DroppedCacheEntries;
        continue;
      }
      New.emplace(std::make_pair(RemapRef(K.first), RemapRef(K.second)),
                  LoopEntry{RemapRef(V.Result), V.Stats});
      ++Stats.KeptCacheEntries;
    }
    LoopCache = std::move(New);
  }
  return Stats;
}
