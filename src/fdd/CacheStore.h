//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent on-disk backing for the S12 CompileCache: an append-only,
/// length-prefixed, checksummed record file mapping (program fingerprint,
/// solver kind) to a portable FDD (docs/ARCHITECTURE.md S16). Fingerprints
/// are salt-stable and portable FDDs are manager-independent, so entries
/// written by one process warm the cache of the next — compiled artifacts
/// outlive the process, which is where the paper's compile-once /
/// query-many amortization pays off for a long-lived verification daemon.
///
/// Durability model: records are appended atomically-enough for a
/// single-writer process (one internal mutex); a crash mid-append leaves a
/// *torn tail*, which open() detects (short record or checksum mismatch)
/// and truncates rather than trusts. A versioned header makes format
/// changes fail loudly instead of misparsing. Superseded records (same key
/// appended again, e.g. across eviction/recompile cycles) stay in the file
/// until the dead-record ratio crosses a threshold, when compact()
/// rewrites the file keeping the newest record per key.
///
/// Every byte read from disk is treated as untrusted: decoding is fully
/// bounds-checked and decoded diagrams pass fdd::validateFdd before they
/// are handed to any manager. Malformed input yields a clean error, never
/// UB or an abort.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_FDD_CACHESTORE_H
#define MCNK_FDD_CACHESTORE_H

#include "fdd/CompileCache.h"

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mcnk {
namespace fdd {

/// One decoded store record (exposed for the record codec's tests).
struct CacheRecord {
  ast::ProgramHash Key;
  markov::SolverKind Solver = markov::SolverKind::Exact;
  PortableFdd Diagram;
};

/// Serializes one record to the store's payload encoding (little-endian,
/// explicit byte layout — files written on any host load on any other).
std::vector<uint8_t> encodeCacheRecord(const CacheRecord &Record);

/// Bounds-checked decode of one payload. Returns false with a diagnostic
/// in \p Error (when non-null) on any malformed input — truncation,
/// trailing garbage, counts that overrun the buffer, invalid solver kinds,
/// zero denominators, or a diagram that fails validateFdd.
bool decodeCacheRecord(const uint8_t *Data, std::size_t Size,
                       CacheRecord &Out, std::string *Error = nullptr);

/// The append-only record file. Thread-safe: append() may be called from
/// many threads (typically via CompileCache::setInsertObserver, so every
/// cache miss lands on disk exactly once).
class CacheStore {
public:
  struct Options {
    /// maybeCompact() rewrites the file when superseded records make up
    /// more than this fraction of all records...
    double CompactDeadRatio = 0.5;
    /// ...but never below this record count (tiny files aren't worth it).
    std::size_t CompactMinRecords = 64;
  };

  struct Stats {
    std::size_t LiveRecords = 0;  ///< Distinct keys in the file.
    std::size_t DeadRecords = 0;  ///< Superseded duplicates awaiting gc.
    std::size_t FileBytes = 0;    ///< Current file size.
    std::size_t TornBytesDropped = 0; ///< Truncated at open (crash tail).
    std::size_t CorruptRecordsDropped = 0; ///< Checksum/decode rejects.
    std::size_t Appends = 0;      ///< Records appended by this process.
    std::size_t Compactions = 0;  ///< compact() rewrites this lifetime.
  };

  /// Opens (creating if absent) the store at \p Path, scanning and
  /// validating every record. A torn tail is truncated in place; a
  /// version/magic mismatch or I/O failure returns null with a diagnostic
  /// in \p Error. Loaded records are held until warm() or discardLoaded().
  static std::unique_ptr<CacheStore> open(const std::string &Path,
                                          std::string *Error,
                                          const Options &Opts);
  static std::unique_ptr<CacheStore> open(const std::string &Path,
                                          std::string *Error) {
    return open(Path, Error, Options());
  }

  /// Moves every loaded record (newest per key) into \p Cache and drops
  /// the loaded copy. Returns the number of entries inserted. Call before
  /// installing an insert observer that appends back to this store, or
  /// warming would re-append every entry it just read.
  std::size_t warm(CompileCache &Cache);

  /// Drops the records held since open() without inserting them anywhere.
  void discardLoaded();

  /// Appends one record. Thread-safe; returns false on I/O failure.
  bool append(const ast::ProgramHash &Key, markov::SolverKind Solver,
              const PortableFdd &Diagram, std::string *Error = nullptr);

  /// Rewrites the file keeping only the newest record per key (read back
  /// from disk, checksums re-verified), then atomically renames it into
  /// place. Returns false on I/O failure (the original file is kept).
  bool compact(std::string *Error = nullptr);

  /// compact() if the dead-record ratio exceeds the configured threshold.
  /// Returns false only on a compaction that was attempted and failed.
  bool maybeCompact(std::string *Error = nullptr);

  Stats stats() const;
  const std::string &path() const { return Path; }

  /// The store format version written and required by this build.
  static constexpr uint32_t FormatVersion = 1;

private:
  CacheStore(std::string P, Options O) : Path(std::move(P)), Opts(O) {}

  bool appendLocked(const std::vector<uint8_t> &Payload, std::string *Error);

  const std::string Path;
  const Options Opts;

  mutable std::mutex Mutex;
  /// Newest record per key, in file order; populated by open(), consumed
  /// by warm()/discardLoaded().
  std::vector<CacheRecord> Loaded;
  /// Per-(fingerprint, solver) record counts in the file — the dead-record
  /// accounting behind maybeCompact(). Indexed by solver kind (4 kinds).
  std::unordered_map<ast::ProgramHash, std::array<uint32_t, 4>,
                     ast::ProgramHashHasher>
      FileKeys;
  std::size_t TotalRecords = 0;
  Stats Counters;
};

} // namespace fdd
} // namespace mcnk

#endif // MCNK_FDD_CACHESTORE_H
