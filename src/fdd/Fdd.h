//===----------------------------------------------------------------------===//
///
/// \file
/// Probabilistic Forwarding Decision Diagrams (paper §5.1): hash-consed,
/// ordered decision diagrams whose interior nodes test `field = value` and
/// whose leaves hold exact-rational distributions over actions. An FDD
/// denotes a function Pk -> D(Pk + ∅), i.e. a (sub)stochastic matrix over
/// the single-packet state space (§5's pragmatic restriction).
///
/// Node invariants (which make FDDs canonical, so program equivalence is
/// reference equality — Corollary 3.2 made executable):
///  - Tests are ordered lexicographically by (field, value); a node's
///    true-subtree never re-tests its field, and its false-subtree's root
///    test is strictly larger.
///  - No node has identical true/false children.
///  - Leaves and interior nodes are interned (structural sharing).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_FDD_FDD_H
#define MCNK_FDD_FDD_H

#include "fdd/Action.h"
#include "markov/Absorbing.h"
#include "packet/Packet.h"
#include "support/Hashing.h"

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace mcnk {
namespace fdd {

/// Handle to an interned FDD node (tagged index into the manager's pools;
/// low bit set = leaf). Handles are only meaningful relative to their
/// FddManager.
using FddRef = uint32_t;

inline bool isLeafRef(FddRef Ref) { return Ref & 1; }

/// Statistics describing the last solved loop (benchmark diagnostics).
/// The class counts are reported per solve block and always sum to the
/// monolithic totals: Σ Blocks[i].NumStates == NumSolved and
/// Σ Blocks[i].NumQEntries == NumSolvedQ, whether the solver ran blocked
/// (one block per strongly connected class, docs/ARCHITECTURE.md S13) or
/// monolithically (a single block covering the whole kept system).
struct LoopSolveStats {
  std::size_t NumStates = 0;    ///< Symbolic-packet product size.
  std::size_t NumTransient = 0; ///< Guard-true classes (matrix dimension).
  std::size_t NumAbsorbing = 0; ///< Distinct exit classes.
  std::size_t NumQEntries = 0;  ///< Sparse entries of Q.
  std::size_t NumSolved = 0;    ///< Transient classes kept after pruning.
  std::size_t NumSolvedQ = 0;   ///< Q entries within the kept subgraph.
  std::size_t NumBlocks = 0;    ///< Solve blocks (1 for monolithic).
  std::size_t MaxBlockSize = 0; ///< Largest block's state count.
  std::size_t EliminationOps = 0; ///< Multiply-subtract operations.
  std::size_t FillIn = 0;         ///< Entries created by elimination.
  /// ModularExact only (zero for the other engines): accepted primes,
  /// unlucky primes discarded, and the accepted reconstruction's
  /// prime-product bit length (max over blocks when blocked). See
  /// docs/ARCHITECTURE.md S14.
  std::size_t NumPrimes = 0;
  std::size_t RetriedPrimes = 0;
  std::size_t ReconstructionBits = 0;
  std::size_t ModularFallbacks = 0; ///< Blocks that fell back to Rational.
  std::vector<markov::BlockMetrics> Blocks; ///< Per-block breakdown.
};

/// Outcome of one FddManager::gc() mark-sweep pass (diagnostics).
struct GcStats {
  std::size_t LiveLeaves = 0;
  std::size_t FreedLeaves = 0;
  std::size_t LiveInners = 0;
  std::size_t FreedInners = 0;
  std::size_t FreedActions = 0;
  /// Operation-cache entries rebuilt onto the compacted pools vs dropped
  /// because an operand or result died.
  std::size_t KeptCacheEntries = 0;
  std::size_t DroppedCacheEntries = 0;
};

/// Owns all FDD nodes and implements the compiler's operations. Not
/// thread-safe; the parallel backend uses one manager per worker and
/// merges results via Export/Import (mirroring the paper's multi-process
/// map-reduce design).
class FddManager {
public:
  explicit FddManager(
      markov::SolverKind Solver = markov::SolverKind::Exact);

  markov::SolverKind solverKind() const { return Solver; }

  /// The solver structure (blocked SCC/DAG elimination, fill-reducing
  /// ordering, optional pool; docs/ARCHITECTURE.md S13) used by subsequent
  /// solveLoop calls. Orthogonal to solverKind: the default reproduces the
  /// monolithic solve. Loops already in the loop cache are returned as
  /// cached — their diagrams are structure-independent in Exact mode, but
  /// their recorded stats describe the structure that first solved them;
  /// reset() clears the cache when a clean re-solve is needed.
  void setSolverStructure(const markov::SolverStructure &S) {
    Structure = S;
  }
  const markov::SolverStructure &solverStructure() const { return Structure; }

  // --- Node construction and inspection ---------------------------------
  FddRef leaf(const ActionDist &Dist);
  /// Interning constructor; collapses Hi == Lo and checks ordering
  /// invariants in assert builds.
  FddRef inner(FieldId Field, FieldValue Value, FddRef Hi, FddRef Lo);

  FddRef identityLeaf() const { return IdentityLeaf; }
  FddRef dropLeaf() const { return DropLeaf; }

  const ActionDist &leafDist(FddRef Leaf) const;

  struct InnerNode {
    FieldId Field;
    FieldValue Value;
    FddRef Hi;
    FddRef Lo;
    bool operator==(const InnerNode &R) const {
      return Field == R.Field && Value == R.Value && Hi == R.Hi && Lo == R.Lo;
    }
  };
  const InnerNode &innerNode(FddRef Ref) const;

  // --- Primitive programs ------------------------------------------------
  /// f = n as an FDD (identity when the test passes, drop otherwise).
  FddRef test(FieldId Field, FieldValue Value);
  /// f := n as an FDD (a single modification leaf).
  FddRef assign(FieldId Field, FieldValue Value);

  // --- Compiler operations ------------------------------------------------
  /// Sequential composition p ; q.
  FddRef seq(FddRef P, FddRef Q);
  /// Negation of a predicate FDD (leaves swap pass/drop).
  FddRef negate(FddRef Pred);
  /// Disjunction of two predicate FDDs (t & u on predicates).
  FddRef disjoin(FddRef PredA, FddRef PredB);
  /// Probabilistic choice p ⊕_r q.
  FddRef choice(const Rational &R, FddRef P, FddRef Q);
  /// Guarded branching: if Guard then Then else Else.
  FddRef branch(FddRef Guard, FddRef Then, FddRef Else);
  /// Closed-form while loop (paper §4/§5): builds the absorbing chain
  /// over symbolic packets via dynamic domain reduction, solves
  /// A = (I-Q)^{-1} R with the configured solver, and converts the
  /// absorption matrix back into an FDD.
  FddRef solveLoop(FddRef Guard, FddRef Body);

  /// True if every leaf reachable from \p Ref is dirac pass or dirac drop.
  bool isPredicateFdd(FddRef Ref) const;

  // --- Concrete evaluation -------------------------------------------------
  /// Follows tests for a concrete packet down to the leaf distribution.
  const ActionDist &evalToLeaf(FddRef Ref, const Packet &P) const;
  /// Full output distribution for a concrete input packet; the ∅ outcome
  /// is reported under `Dropped`.
  struct OutputDist {
    std::map<Packet, Rational> Outputs;
    Rational Dropped;
  };
  OutputDist outputDistribution(FddRef Ref, const Packet &P) const;

  // --- Lifecycle -----------------------------------------------------------
  /// Returns the manager to its freshly constructed state: every pool and
  /// operation cache is dropped and the identity/drop leaves re-interned.
  /// All previously issued FddRefs are invalidated.
  void reset();

  /// Mark-sweep compaction: every node unreachable from \p Roots (plus the
  /// identity/drop leaves) is freed, the pools are compacted in place, and
  /// each `*Root` is remapped to its new ref. Operation-cache entries
  /// whose operands and result all survive are rebuilt onto the compacted
  /// refs (so warm state is kept, not thrown away); the rest are dropped.
  /// Any FddRef not routed through \p Roots is invalidated.
  GcStats gc(const std::vector<FddRef *> &Roots);

  // --- Diagnostics ---------------------------------------------------------
  std::size_t numInnerNodes() const { return Inners.size(); }
  std::size_t numLeaves() const { return Leaves.size(); }
  /// Reachable node count of one diagram (DAG size).
  std::size_t diagramSize(FddRef Ref) const;
  const LoopSolveStats &lastLoopStats() const { return LastLoop; }

  /// Collected per-field values mentioned in tests/modifications under
  /// \p Ref — the seed of dynamic domain reduction (§5.1). Exposed for
  /// tests and the matrix-conversion benches.
  std::map<FieldId, std::vector<FieldValue>> collectDomain(FddRef Ref) const;

  // --- Shared cofactor helpers (also used by queries) ----------------------
  /// Specializes \p Ref under the assumption Field == Value. Only valid
  /// when \p Ref's root test is not smaller than (Field, Value).
  FddRef cofactorTrue(FddRef Ref, FieldId Field, FieldValue Value) const;
  /// Specializes \p Ref under the assumption Field != Value.
  FddRef cofactorFalse(FddRef Ref, FieldId Field, FieldValue Value) const;
  /// The root test of \p Ref, or (max, max) for leaves.
  std::pair<FieldId, FieldValue> rootTest(FddRef Ref) const;

private:
  FddRef internAction(const Action &A);
  /// a ▷ q: runs q on the output of the single action a.
  FddRef seqAction(uint32_t ActionId, FddRef Q);
  /// Weighted sum of FDDs (weights positive, summing to at most one; the
  /// missing mass is implicit drop — callers pass full decompositions).
  FddRef weightedSum(std::vector<std::pair<Rational, FddRef>> Terms);

  markov::SolverKind Solver;
  markov::SolverStructure Structure;

  // Interning pools.
  std::vector<ActionDist> Leaves;
  std::unordered_map<std::size_t, std::vector<uint32_t>> LeafTable;
  std::vector<InnerNode> Inners;
  std::unordered_map<std::size_t, std::vector<uint32_t>> InnerTable;
  std::vector<Action> Actions;
  std::unordered_map<std::size_t, std::vector<uint32_t>> ActionTable;

  FddRef IdentityLeaf = 0;
  FddRef DropLeaf = 0;

  // Operation caches (generic hashers from support/Hashing.h).
  std::unordered_map<std::pair<FddRef, FddRef>, FddRef, PairHash> SeqCache;
  std::unordered_map<std::pair<FddRef, FddRef>, FddRef, PairHash>
      DisjoinCache;
  std::unordered_map<FddRef, FddRef> NegateCache;
  struct ChoiceKey {
    Rational R;
    FddRef P, Q;
    bool operator==(const ChoiceKey &K) const {
      return R == K.R && P == K.P && Q == K.Q;
    }
  };
  struct ChoiceKeyHash {
    std::size_t operator()(const ChoiceKey &K) const {
      return hashValues(K.R, K.P, K.Q);
    }
  };
  std::unordered_map<ChoiceKey, FddRef, ChoiceKeyHash> ChoiceCache;
  std::unordered_map<std::tuple<FddRef, FddRef, FddRef>, FddRef, TupleHash>
      BranchCache;
  std::unordered_map<std::pair<uint32_t, FddRef>, FddRef, PairHash>
      SeqActionCache;
  /// Loop results carry their solve statistics so a cache hit can refresh
  /// lastLoopStats() exactly as the original solve did.
  struct LoopEntry {
    FddRef Result;
    LoopSolveStats Stats;
  };
  std::unordered_map<std::pair<FddRef, FddRef>, LoopEntry, PairHash>
      LoopCache;

  LoopSolveStats LastLoop;
};

} // namespace fdd
} // namespace mcnk

#endif // MCNK_FDD_FDD_H
