//===----------------------------------------------------------------------===//
///
/// \file
/// LRU compile-cache implementation: a doubly linked recency list with an
/// index keyed on (program fingerprint, solver kind), one mutex around
/// both (lookups splice, so even reads mutate recency state).
///
//===----------------------------------------------------------------------===//

#include "fdd/CompileCache.h"

#include <algorithm>

using namespace mcnk;
using namespace mcnk::fdd;

CompileCache::CompileCache(std::size_t Cap)
    : Capacity(std::max<std::size_t>(Cap, 1)) {}

bool CompileCache::lookup(const ast::ProgramHash &Hash,
                          markov::SolverKind Solver,
                          std::shared_ptr<const PortableFdd> &Out) {
  Key K{Hash, Solver};
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(K);
  if (It == Index.end()) {
    ++Counters.Misses;
    return false;
  }
  ++Counters.Hits;
  Lru.splice(Lru.begin(), Lru, It->second);
  Out = It->second->Diagram; // Shared, immutable: no copy under the lock.
  return true;
}

void CompileCache::insert(const ast::ProgramHash &Hash,
                          markov::SolverKind Solver, PortableFdd Diagram) {
  Key K{Hash, Solver};
  auto Stored = std::make_shared<const PortableFdd>(std::move(Diagram));
  std::shared_ptr<const InsertObserver> Notify;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Index.find(K);
    if (It != Index.end()) {
      // Canonicity makes re-inserts identical; refresh recency, keep the
      // first value, and leave Insertions/StoredNodes alone — counting
      // this racing-workers path again is exactly the double-insert size
      // skew the regression suite hammers for.
      ++Counters.DuplicateInserts;
      Lru.splice(Lru.begin(), Lru, It->second);
      return;
    }
    ++Counters.Insertions;
    Counters.StoredNodes += Stored->Nodes.size();
    Lru.push_front(Entry{K, Stored});
    Index.emplace(K, Lru.begin());
    evictIfNeededLocked();
    Notify = Observer;
  }
  // Outside the lock: the observer may do file I/O (CacheStore::append).
  // The entry may already have been evicted by a racing insert — the
  // notification is still for a genuinely-new entry, which is the
  // contract persistence relies on.
  if (Notify && *Notify)
    (*Notify)(Hash, Solver, Stored);
}

void CompileCache::setInsertObserver(InsertObserver O) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Observer = O ? std::make_shared<const InsertObserver>(std::move(O))
               : nullptr;
}

void CompileCache::evictIfNeededLocked() {
  while (Lru.size() > Capacity) {
    Entry &Victim = Lru.back();
    Counters.StoredNodes -= Victim.Diagram->Nodes.size();
    ++Counters.Evictions;
    Index.erase(Victim.K);
    Lru.pop_back();
  }
}

CompileCache::Stats CompileCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats S = Counters;
  S.Entries = Lru.size();
  return S;
}

void CompileCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Lru.clear();
  Index.clear();
  Counters = Stats();
}
