//===----------------------------------------------------------------------===//
///
/// \file
/// LRU compile-cache implementation: a doubly linked recency list with an
/// index keyed on (program fingerprint, solver kind), one mutex around
/// both (lookups splice, so even reads mutate recency state).
///
//===----------------------------------------------------------------------===//

#include "fdd/CompileCache.h"

#include <algorithm>

using namespace mcnk;
using namespace mcnk::fdd;

CompileCache::CompileCache(std::size_t Cap)
    : Capacity(std::max<std::size_t>(Cap, 1)) {}

bool CompileCache::lookup(const ast::ProgramHash &Hash,
                          markov::SolverKind Solver,
                          std::shared_ptr<const PortableFdd> &Out) {
  Key K{Hash, Solver};
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(K);
  if (It == Index.end()) {
    ++Counters.Misses;
    return false;
  }
  ++Counters.Hits;
  Lru.splice(Lru.begin(), Lru, It->second);
  Out = It->second->Diagram; // Shared, immutable: no copy under the lock.
  return true;
}

void CompileCache::insert(const ast::ProgramHash &Hash,
                          markov::SolverKind Solver, PortableFdd Diagram) {
  Key K{Hash, Solver};
  auto Stored = std::make_shared<const PortableFdd>(std::move(Diagram));
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(K);
  if (It != Index.end()) {
    // Canonicity makes re-inserts identical; just refresh recency.
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  ++Counters.Insertions;
  Counters.StoredNodes += Stored->Nodes.size();
  Lru.push_front(Entry{K, std::move(Stored)});
  Index.emplace(K, Lru.begin());
  evictIfNeededLocked();
}

void CompileCache::evictIfNeededLocked() {
  while (Lru.size() > Capacity) {
    Entry &Victim = Lru.back();
    Counters.StoredNodes -= Victim.Diagram->Nodes.size();
    ++Counters.Evictions;
    Index.erase(Victim.K);
    Lru.pop_back();
  }
}

CompileCache::Stats CompileCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats S = Counters;
  S.Entries = Lru.size();
  return S;
}

void CompileCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Lru.clear();
  Index.clear();
  Counters = Stats();
}
