//===----------------------------------------------------------------------===//
///
/// \file
/// FDD leaf ingredients (paper §5.1): an *action* is either drop or a set
/// of field modifications; a leaf holds a probability distribution over
/// actions. All probabilities are exact rationals.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_FDD_ACTION_H
#define MCNK_FDD_ACTION_H

#include "packet/Packet.h"
#include "support/Hashing.h"
#include "support/Rational.h"

#include <optional>
#include <utility>
#include <vector>

namespace mcnk {
namespace fdd {

/// A deterministic packet transformation: `drop`, or a (possibly empty)
/// set of `field := value` writes applied simultaneously. The empty
/// modification set is the identity.
class Action {
public:
  using Mod = std::pair<FieldId, FieldValue>;

  /// The identity action (no modifications).
  Action() = default;

  static Action drop() {
    Action Result;
    Result.IsDrop = true;
    return Result;
  }

  /// Builds a modification action; \p Mods need not be sorted.
  static Action modify(std::vector<Mod> Mods);

  bool isDrop() const { return IsDrop; }
  bool isIdentity() const { return !IsDrop && Mods.empty(); }

  /// Sorted, duplicate-free modification list (empty for drop/identity).
  const std::vector<Mod> &mods() const { return Mods; }

  /// The value this action writes to \p Field, if any.
  std::optional<FieldValue> writeTo(FieldId Field) const;

  /// Sequential composition: run *this first, then \p Other; later writes
  /// win. drop absorbs on either side.
  Action then(const Action &Other) const;

  /// Returns a copy without the modification of \p Field (used to
  /// canonicalize writes that restate a path constraint).
  Action dropMod(FieldId Field) const;

  /// Applies to a concrete packet; must not be called on drop.
  Packet applyTo(const Packet &P) const;

  bool operator==(const Action &RHS) const {
    return IsDrop == RHS.IsDrop && Mods == RHS.Mods;
  }
  bool operator!=(const Action &RHS) const { return !(*this == RHS); }
  bool operator<(const Action &RHS) const {
    if (IsDrop != RHS.IsDrop)
      return IsDrop < RHS.IsDrop;
    return Mods < RHS.Mods;
  }

  std::size_t hash() const {
    std::size_t Seed = IsDrop ? 0x9e37u : 0x42u;
    for (const Mod &M : Mods)
      Seed = hashCombine(hashCombine(Seed, M.first), M.second);
    return Seed;
  }

private:
  bool IsDrop = false;
  std::vector<Mod> Mods;
};

/// A probability distribution over actions: sorted by action, strictly
/// positive weights summing to exactly one. Canonical representation, so
/// equality is structural.
class ActionDist {
public:
  ActionDist() = default;

  static ActionDist dirac(Action A) {
    ActionDist Result;
    Result.Entries.emplace_back(std::move(A), Rational(1));
    return Result;
  }

  /// Builds from unsorted entries with possible duplicates; merges and
  /// drops zero weights. Asserts the total is one.
  static ActionDist
  fromEntries(std::vector<std::pair<Action, Rational>> Entries);

  /// r·Lhs + (1-r)·Rhs.
  static ActionDist convex(const Rational &R, const ActionDist &Lhs,
                           const ActionDist &Rhs);

  const std::vector<std::pair<Action, Rational>> &entries() const {
    return Entries;
  }

  bool isDirac() const { return Entries.size() == 1; }
  /// Probability of dropping the packet.
  Rational dropMass() const;

  bool operator==(const ActionDist &RHS) const {
    return Entries == RHS.Entries;
  }
  bool operator!=(const ActionDist &RHS) const { return !(*this == RHS); }

  std::size_t hash() const {
    std::size_t Seed = 0x5eedu;
    for (const auto &[A, W] : Entries)
      Seed = hashCombine(hashCombine(Seed, A.hash()), W.hash());
    return Seed;
  }

private:
  std::vector<std::pair<Action, Rational>> Entries;
};

} // namespace fdd
} // namespace mcnk

#endif // MCNK_FDD_ACTION_H
