//===----------------------------------------------------------------------===//
///
/// \file
/// Explicit stochastic-matrix view of a compiled FDD — the "Convert" step
/// of the paper's Fig 5 pipeline. The state space is built by dynamic
/// domain reduction (§5.1): for every field mentioned in the diagram, the
/// values appearing in tests or modifications plus one wildcard `*`
/// representing all other values; states are the product of these
/// per-field symbolic domains. Rows are substochastic; the missing mass
/// per row is the drop probability (the ∅ column of §3).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_FDD_MATRIXCONV_H
#define MCNK_FDD_MATRIXCONV_H

#include "fdd/Fdd.h"

#include <string>
#include <vector>

namespace mcnk {
namespace fdd {

/// One symbolic packet: a value index per domain field, where index ==
/// domain size encodes the wildcard.
struct SymbolicPacket {
  std::vector<std::size_t> ValueIndex;
};

/// Sparse stochastic matrix over symbolic packets.
struct StochasticMatrix {
  /// Fields of the reduced domain, ascending.
  std::vector<FieldId> Fields;
  /// Mentioned values per field, ascending (wildcard is implicit).
  std::vector<std::vector<FieldValue>> Domain;
  /// Number of symbolic packets (product of |domain|+1).
  std::size_t NumStates = 0;
  /// Sparse entries: probability of input state Row producing Col.
  std::vector<markov::RationalTriplet> Entries;
  /// Per-row drop mass (1 - row sum).
  std::vector<Rational> DropMass;

  /// Decodes a state index into a symbolic packet.
  SymbolicPacket decode(std::size_t State) const;
  /// Renders a state like "sw=2, pt=*".
  std::string renderState(std::size_t State,
                          const FieldTable &Fields) const;
  /// The state containing the concrete packet \p P.
  std::size_t stateOf(const Packet &P) const;
};

/// Converts the diagram into its matrix form. Aborts if the symbolic
/// product exceeds \p MaxStates (a deliberately explicit cap; the paper's
/// pipeline converts per-loop-body diagrams, which stay small after
/// reduction).
StochasticMatrix toMatrix(const FddManager &Manager, FddRef Ref,
                          std::size_t MaxStates = 1u << 20);

} // namespace fdd
} // namespace mcnk

#endif // MCNK_FDD_MATRIXCONV_H
