//===----------------------------------------------------------------------===//
///
/// \file
/// Product-walk decision procedures over pairs of FDDs: refinement
/// p <= q and epsilon-equivalence for float-solved diagrams.
///
//===----------------------------------------------------------------------===//

#include "fdd/Query.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

using namespace mcnk;
using namespace mcnk::fdd;

namespace {

/// Positive path constraints accumulated during a product walk: fields
/// pinned to a concrete value by a taken true-branch.
using Pins = std::map<FieldId, FieldValue>;

/// Canonicalizes a leaf distribution relative to path constraints: writes
/// that restate a pinned value are no-ops and are removed, after which
/// actions that now coincide merge. This makes action-wise comparison
/// meaningful across structurally different diagrams.
std::map<Action, Rational> canonicalize(const ActionDist &Dist,
                                        const Pins &Pinned) {
  std::map<Action, Rational> Result;
  for (const auto &[A, W] : Dist.entries()) {
    if (A.isDrop()) {
      Result[A] += W;
      continue;
    }
    std::vector<Action::Mod> Kept;
    for (const Action::Mod &M : A.mods()) {
      auto It = Pinned.find(M.first);
      if (It != Pinned.end() && It->second == M.second)
        continue; // Restates a path constraint.
      Kept.push_back(M);
    }
    Result[Action::modify(std::move(Kept))] += W;
  }
  return Result;
}

enum class CompareMode { Equivalence, Refinement };

bool compareLeaves(const FddManager &M, FddRef A, FddRef B,
                   const Pins &Pinned, CompareMode Mode, double Eps) {
  std::map<Action, Rational> DA = canonicalize(M.leafDist(A), Pinned);
  std::map<Action, Rational> DB = canonicalize(M.leafDist(B), Pinned);
  auto MassOf = [](const std::map<Action, Rational> &D, const Action &Act) {
    auto It = D.find(Act);
    return It == D.end() ? Rational() : It->second;
  };
  if (Mode == CompareMode::Equivalence) {
    for (const auto &[Act, W] : DA)
      if (std::fabs((W - MassOf(DB, Act)).toDouble()) > Eps)
        return false;
    for (const auto &[Act, W] : DB)
      if (std::fabs((W - MassOf(DA, Act)).toDouble()) > Eps)
        return false;
    return true;
  }
  // Refinement: every non-drop action of A has no more mass than in B.
  for (const auto &[Act, W] : DA) {
    if (Act.isDrop())
      continue;
    Rational Delta = W - MassOf(DB, Act);
    if (Delta.toDouble() > Eps)
      return false;
  }
  return true;
}

bool productWalk(const FddManager &M, FddRef A, FddRef B, Pins &Pinned,
                 CompareMode Mode, double Eps) {
  if (isLeafRef(A) && isLeafRef(B))
    return compareLeaves(M, A, B, Pinned, Mode, Eps);
  auto Test =
      std::min(M.rootTest(A), M.rootTest(B), [](auto X, auto Y) {
        return X.first != Y.first ? X.first < Y.first : X.second < Y.second;
      });
  auto [F, V] = Test;

  // True branch: F is pinned to V below here.
  auto SavedPin = Pinned.find(F) != Pinned.end()
                      ? std::optional<FieldValue>(Pinned[F])
                      : std::nullopt;
  Pinned[F] = V;
  bool HiOk = productWalk(M, M.cofactorTrue(A, F, V),
                          M.cofactorTrue(B, F, V), Pinned, Mode, Eps);
  if (SavedPin)
    Pinned[F] = *SavedPin;
  else
    Pinned.erase(F);
  if (!HiOk)
    return false;

  // False branch: only negative information, which canonicalization does
  // not use.
  return productWalk(M, M.cofactorFalse(A, F, V), M.cofactorFalse(B, F, V),
                     Pinned, Mode, Eps);
}

} // namespace

bool fdd::approxEquivalent(const FddManager &Manager, FddRef A, FddRef B,
                           double Eps) {
  if (A == B)
    return true;
  Pins Pinned;
  return productWalk(Manager, A, B, Pinned, CompareMode::Equivalence, Eps);
}

bool fdd::refines(const FddManager &Manager, FddRef P, FddRef Q,
                  double Eps) {
  if (P == Q)
    return true;
  Pins Pinned;
  return productWalk(Manager, P, Q, Pinned, CompareMode::Refinement, Eps);
}
