//===----------------------------------------------------------------------===//
///
/// \file
/// AST -> FDD compilation (the native backend of §5.1). Accepts exactly
/// the guarded fragment (ast::isGuarded); the n-ary `case` construct can
/// be compiled in parallel on a persistent ThreadPool engine, one worker
/// manager per branch, with results merged through the portable format by
/// a log-depth pairwise tree reduction — the single-machine analogue of
/// the paper's map-reduce backend (§6; docs/ARCHITECTURE.md S10).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_FDD_COMPILE_H
#define MCNK_FDD_COMPILE_H

#include "ast/Node.h"
#include "ast/Slice.h"
#include "fdd/Fdd.h"

namespace mcnk {

class ThreadPool;

namespace ast {
class Context;
} // namespace ast

namespace fdd {

class CompileCache;

/// The CompileOptions.Slice payload: the rewrite arena (must own the
/// program's nodes and outlive the compile), the observation set the
/// query exposes, and an optional stats sink filled by the slice.
struct SliceHook {
  ast::Context *Ctx = nullptr;
  ast::ObservationSet Observed;
  ast::SliceStats *Stats = nullptr;
};

struct CompileOptions {
  /// Compile `case` branches on a worker pool.
  bool ParallelCase = false;
  /// Worker count when compile() has to create an engine itself (see
  /// Pool); 0 means hardware concurrency.
  unsigned Threads = 0;
  /// The parallel compile engine. Nested `case` nodes share this pool
  /// (workers help execute queued tasks inline, so nesting is safe).
  /// When null and ParallelCase is set, compile() uses the process-global
  /// pool (Threads == 0) or a pool private to that one call (Threads > 0).
  ThreadPool *Pool = nullptr;
  /// Cross-compile memoization (docs/ARCHITECTURE.md S12): when non-null,
  /// compile() consults this cache at every composite sub-program
  /// boundary (seq / union / choice / if / while / case, gated by
  /// CacheMinNodes) and stores what it compiles, so a family of programs
  /// differing in a few arms only pays for the arms that changed. The
  /// cache may be shared across managers, solver kinds, threads, and
  /// Verifier lifetimes. Caveat: a hit that covers a while loop skips the
  /// solver, so FddManager::lastLoopStats() is not refreshed by cached
  /// sub-programs.
  CompileCache *Cache = nullptr;
  /// Sub-programs smaller than this (tree-size heuristic) skip the cache:
  /// below a handful of nodes, recompiling is cheaper than a lookup plus
  /// portable-FDD import.
  std::size_t CacheMinNodes = 16;
  /// When non-null, run the verified S15 simplifier (ast/Simplify.h) over
  /// the program before compiling, building any rewritten nodes in this
  /// context (it must own the program's nodes). Happens exactly once at
  /// the top of compile() — the option is cleared before parallel-`case`
  /// workers copy the options, because ast::Context is not thread-safe —
  /// and composes with the S12 cache: the fingerprint pass runs over the
  /// already-simplified tree, so smaller programs fingerprint faster and
  /// collapse onto shared cache entries.
  ast::Context *Simplify = nullptr;
  /// Query-directed cone-of-influence slicing (ast/Slice.h; ARCHITECTURE
  /// S17). When non-null (with a non-null Ctx), the program is sliced for
  /// Observed before compilation — assignments to fields outside the
  /// query's cone of influence are removed, so the diagram never pays for
  /// fields the query cannot see. Applied exactly once at the top of
  /// compile(), like Simplify (and cleared before parallel-`case` workers
  /// copy the options, for the same thread-safety reason); it likewise
  /// composes with the S12 cache — the fingerprint pass sees the sliced
  /// tree. Unlike Simplify, the sliced diagram is only equal to the
  /// original *after projecting leaf actions onto the cone*; the answers
  /// of queries within Observed are unchanged, a contract the oracle's
  /// CheckSlice lane enforces.
  const SliceHook *Slice = nullptr;
  /// Solver-structure override for while-loop solves during this compile
  /// (docs/ARCHITECTURE.md S13). When null, the manager's own structure
  /// applies; either way, parallel-`case` worker managers inherit the
  /// effective structure, so blocked solves nest inside the parallel
  /// backend (block tasks and branch tasks share the pool; the engine's
  /// help-first waiting keeps that composition deadlock-free). The same
  /// override carries the ModularOptions knobs when the manager runs the
  /// ModularExact engine (S14), whose per-prime fan-out nests the same
  /// way.
  const markov::SolverStructure *Structure = nullptr;
};

/// Compiles a guarded ProbNetKAT program into an FDD owned by \p Manager.
///
/// \param Manager  The manager that will own (and hash-cons) every node of
///                 the result; while-loop bodies are solved with the
///                 manager's configured markov::SolverKind.
/// \param Program  A guarded-fragment program (ast::isGuarded must hold).
///                 General Star or program-level Union abort with a
///                 diagnostic rather than returning an error value.
/// \param Options  Parallel-`case` toggle, worker count, and engine.
/// \return A canonical diagram denoting \p Program's sub-stochastic
///         single-packet semantics: each leaf maps actions to exact
///         rational probabilities summing to at most 1, the deficit being
///         the probability of dropping the packet. Serial and parallel
///         compilation produce reference-equal diagrams (the merge steps
///         are arithmetic-free, so this holds in every solver mode).
FddRef compile(FddManager &Manager, const ast::Node *Program,
               const CompileOptions &Options = {});

} // namespace fdd
} // namespace mcnk

#endif // MCNK_FDD_COMPILE_H
