//===----------------------------------------------------------------------===//
///
/// \file
/// AST -> FDD compilation (the native backend of §5.1). Accepts exactly
/// the guarded fragment (ast::isGuarded); the n-ary `case` construct can
/// be compiled in parallel, one worker manager per branch, merging results
/// through the portable format — the single-machine analogue of the
/// paper's map-reduce backend (§6).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_FDD_COMPILE_H
#define MCNK_FDD_COMPILE_H

#include "ast/Node.h"
#include "fdd/Fdd.h"

namespace mcnk {
namespace fdd {

struct CompileOptions {
  /// Compile `case` branches on a worker pool.
  bool ParallelCase = false;
  /// Worker count for ParallelCase (0 = hardware concurrency).
  unsigned Threads = 0;
};

/// Compiles a guarded ProbNetKAT program into an FDD owned by \p Manager.
///
/// \param Manager  The manager that will own (and hash-cons) every node of
///                 the result; while-loop bodies are solved with the
///                 manager's configured markov::SolverKind.
/// \param Program  A guarded-fragment program (ast::isGuarded must hold).
///                 General Star or program-level Union abort with a
///                 diagnostic rather than returning an error value.
/// \param Options  Parallel-`case` toggle and worker count.
/// \return A canonical diagram denoting \p Program's sub-stochastic
///         single-packet semantics: each leaf maps actions to exact
///         rational probabilities summing to at most 1, the deficit being
///         the probability of dropping the packet.
FddRef compile(FddManager &Manager, const ast::Node *Program,
               const CompileOptions &Options = {});

} // namespace fdd
} // namespace mcnk

#endif // MCNK_FDD_COMPILE_H
