//===----------------------------------------------------------------------===//
///
/// \file
/// Action and distribution interning for FDD leaves; distribution
/// arithmetic (convex combination, composition) over exact rationals.
///
//===----------------------------------------------------------------------===//

#include "fdd/Action.h"

#include <algorithm>
#include <cassert>

using namespace mcnk;
using namespace mcnk::fdd;

Action Action::modify(std::vector<Mod> ModList) {
  std::sort(ModList.begin(), ModList.end());
  // Later entries for the same field win (matches `then` semantics when a
  // caller assembles writes left to right). After sort, equal fields are
  // adjacent; keep the last occurrence.
  std::vector<Mod> Unique;
  for (std::size_t I = 0; I < ModList.size(); ++I) {
    if (!Unique.empty() && Unique.back().first == ModList[I].first)
      Unique.back().second = ModList[I].second;
    else
      Unique.push_back(ModList[I]);
  }
  Action Result;
  Result.Mods = std::move(Unique);
  return Result;
}

std::optional<FieldValue> Action::writeTo(FieldId Field) const {
  for (const Mod &M : Mods)
    if (M.first == Field)
      return M.second;
  return std::nullopt;
}

Action Action::then(const Action &Other) const {
  if (IsDrop || Other.IsDrop)
    return drop();
  // Merge two sorted mod lists; Other's writes override ours.
  Action Result;
  Result.Mods.reserve(Mods.size() + Other.Mods.size());
  std::size_t I = 0, J = 0;
  while (I < Mods.size() || J < Other.Mods.size()) {
    if (J == Other.Mods.size() ||
        (I < Mods.size() && Mods[I].first < Other.Mods[J].first)) {
      Result.Mods.push_back(Mods[I++]);
    } else if (I == Mods.size() || Other.Mods[J].first < Mods[I].first) {
      Result.Mods.push_back(Other.Mods[J++]);
    } else {
      Result.Mods.push_back(Other.Mods[J++]); // Same field: Other wins.
      ++I;
    }
  }
  return Result;
}

Action Action::dropMod(FieldId Field) const {
  assert(!IsDrop && "dropMod on drop");
  Action Result;
  Result.Mods.reserve(Mods.size());
  for (const Mod &M : Mods)
    if (M.first != Field)
      Result.Mods.push_back(M);
  return Result;
}

Packet Action::applyTo(const Packet &P) const {
  assert(!IsDrop && "applyTo on drop");
  Packet Result = P;
  for (const Mod &M : Mods)
    Result.set(M.first, M.second);
  return Result;
}

ActionDist
ActionDist::fromEntries(std::vector<std::pair<Action, Rational>> Raw) {
  std::sort(Raw.begin(), Raw.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  ActionDist Result;
  Rational Total;
  for (auto &Entry : Raw) {
    if (Entry.second.isZero())
      continue;
    assert(!Entry.second.isNegative() && "negative probability");
    Total += Entry.second;
    if (!Result.Entries.empty() && Result.Entries.back().first == Entry.first)
      Result.Entries.back().second += Entry.second;
    else
      Result.Entries.push_back(std::move(Entry));
  }
  assert(Total.isOne() && "action distribution must sum to one");
  return Result;
}

ActionDist ActionDist::convex(const Rational &R, const ActionDist &Lhs,
                              const ActionDist &Rhs) {
  assert(R.isProbability() && "convex weight outside [0,1]");
  std::vector<std::pair<Action, Rational>> Raw;
  Raw.reserve(Lhs.Entries.size() + Rhs.Entries.size());
  Rational OneMinusR(1);
  OneMinusR -= R;
  // Scale each copied weight in place rather than materializing R * W
  // temporaries (the distribution-arithmetic hot path of choice()).
  for (const auto &[A, W] : Lhs.Entries) {
    Raw.emplace_back(A, W);
    Raw.back().second *= R;
  }
  for (const auto &[A, W] : Rhs.Entries) {
    Raw.emplace_back(A, W);
    Raw.back().second *= OneMinusR;
  }
  return fromEntries(std::move(Raw));
}

Rational ActionDist::dropMass() const {
  for (const auto &[A, W] : Entries)
    if (A.isDrop())
      return W;
  return Rational();
}
