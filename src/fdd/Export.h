//===----------------------------------------------------------------------===//
///
/// \file
/// Portable FDD representation for moving diagrams between managers. The
/// paper's parallelizing backend compiles each switch program in its own
/// process and merges the results (§6); our workers use separate
/// FddManagers (they are not thread-safe by design) and ship diagrams
/// through this format. Also handy for tests and golden files.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_FDD_EXPORT_H
#define MCNK_FDD_EXPORT_H

#include "fdd/Fdd.h"

#include <string>
#include <vector>

namespace mcnk {
namespace fdd {

/// Self-contained DAG in topological order (children precede parents).
struct PortableFdd {
  struct Node {
    bool IsLeaf = false;
    // Interior payload.
    FieldId Field = 0;
    FieldValue Value = 0;
    uint32_t Hi = 0; // Indices into Nodes.
    uint32_t Lo = 0;
    // Leaf payload.
    std::vector<std::pair<Action, Rational>> Dist;
  };
  std::vector<Node> Nodes;
  uint32_t Root = 0;
};

/// Extracts the diagram rooted at \p Ref into a portable form.
PortableFdd exportFdd(const FddManager &Manager, FddRef Ref);

/// Structural validation of a portable diagram, shared by the importers:
/// returns true when the diagram is well-formed (non-empty, root in
/// range, children strictly topological, test ordering respected, every
/// leaf a genuine distribution — no negative weights, drop-with-mods
/// actions, or sums != 1). On failure returns false and, when \p Error is
/// non-null, a diagnostic. Never aborts, in any build type.
bool validateFdd(const PortableFdd &Portable, std::string *Error = nullptr);

/// Rebuilds a portable diagram inside \p Manager (hash-consing dedups
/// against existing nodes). Validates the input in every build type —
/// an empty node list, an out-of-range root, child indices that are out
/// of range / not strictly topological, test-ordering violations, and
/// malformed leaf distributions (negative weights, sum != 1) abort with
/// a diagnostic instead of corrupting the manager.
FddRef importFdd(FddManager &Manager, const PortableFdd &Portable);

/// Non-aborting importer for *untrusted* diagrams — the on-disk cache
/// store (fdd/CacheStore.h) makes malformed bytes attacker surface, not
/// just programmer error. Validates first and only touches \p Manager on
/// success; on failure returns false with a diagnostic in \p Error (when
/// non-null) and leaves \p Out untouched.
bool tryImportFdd(FddManager &Manager, const PortableFdd &Portable,
                  FddRef &Out, std::string *Error = nullptr);

/// Renders the diagram as an indented text tree (debugging / golden
/// tests). Field names come from \p Fields.
std::string dumpFdd(const FddManager &Manager, FddRef Ref,
                    const FieldTable &Fields);

} // namespace fdd
} // namespace mcnk

#endif // MCNK_FDD_EXPORT_H
