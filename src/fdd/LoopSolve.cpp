//===----------------------------------------------------------------------===//
///
/// \file
/// Closed-form while-loop compilation (paper §4, §5.1): `while g do b` is
/// an absorbing Markov chain over *symbolic packets* — per-field mentioned
/// values plus a wildcard (*), chosen dynamically from the guard/body FDDs
/// (dynamic domain reduction). Guard-true classes are transient with
/// transitions given by the body's leaf distributions; guard-false classes
/// absorb. The absorption matrix A = (I-Q)^{-1} R (Theorem 4.7) is solved
/// with the configured engine and converted back into an FDD.
///
/// Refinement over a literal product domain: fields that are modified but
/// never tested (e.g. hop-local link-health flags resolved away by
/// sequential composition) are kept out of the transient state space and
/// reattached to exits as output decorations, which is what keeps
/// thousand-switch models tractable (see docs/ARCHITECTURE.md).
///
//===----------------------------------------------------------------------===//

#include "fdd/Fdd.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace mcnk;
using namespace mcnk::fdd;

namespace {

/// Hard cap on the symbolic product size; exceeding it indicates a model
/// whose loop state was not reduced (e.g. globally-scoped failure flags).
constexpr std::size_t MaxSymbolicStates = 4u << 20;

/// Collects tested (field -> values) and modified (field -> values) maps.
void collectTestsAndMods(const FddManager &M, FddRef Root,
                         std::map<FieldId, std::set<FieldValue>> &Tests,
                         std::map<FieldId, std::set<FieldValue>> &Mods) {
  std::set<FddRef> Visited;
  std::vector<FddRef> Stack = {Root};
  while (!Stack.empty()) {
    FddRef Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur).second)
      continue;
    if (isLeafRef(Cur)) {
      for (const auto &[A, W] : M.leafDist(Cur).entries()) {
        (void)W;
        for (const auto &[F, V] : A.mods())
          Mods[F].insert(V);
      }
      continue;
    }
    const auto &N = M.innerNode(Cur);
    Tests[N.Field].insert(N.Value);
    Stack.push_back(N.Hi);
    Stack.push_back(N.Lo);
  }
}

/// True if every non-drop action of every leaf under \p Root writes
/// \p Field. Such fields can be tracked as pure output decorations.
bool allActionsWrite(const FddManager &M, FddRef Root, FieldId Field) {
  std::set<FddRef> Visited;
  std::vector<FddRef> Stack = {Root};
  while (!Stack.empty()) {
    FddRef Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur).second)
      continue;
    if (isLeafRef(Cur)) {
      for (const auto &[A, W] : M.leafDist(Cur).entries()) {
        (void)W;
        if (!A.isDrop() && !A.writeTo(Field))
          return false;
      }
      continue;
    }
    const auto &N = M.innerNode(Cur);
    Stack.push_back(N.Hi);
    Stack.push_back(N.Lo);
  }
  return true;
}

} // namespace

FddRef FddManager::solveLoop(FddRef Guard, FddRef Body) {
  assert(isPredicateFdd(Guard) && "loop guard must be a predicate FDD");
  if (Guard == DropLeaf)
    return IdentityLeaf; // Zero iterations for every input.
  std::pair<FddRef, FddRef> Key = {Guard, Body};
  auto It = LoopCache.find(Key);
  if (It != LoopCache.end()) {
    // A cache hit must behave observably like a fresh solve: refresh the
    // diagnostics with the stats recorded when this loop was first solved
    // (previously lastLoopStats() kept describing an unrelated loop).
    LastLoop = It->second.Stats;
    return It->second.Result;
  }


  // --- Dynamic domain reduction (§5.1) ----------------------------------
  std::map<FieldId, std::set<FieldValue>> Tests, Mods;
  collectTestsAndMods(*this, Guard, Tests, Mods);
  collectTestsAndMods(*this, Body, Tests, Mods);

  // State fields: every tested field, plus modified-only fields whose exit
  // value cannot be recovered from the final action alone.
  std::vector<FieldId> StateFields;
  std::vector<FieldId> OutputOnly;
  for (const auto &[F, Values] : Tests) {
    (void)Values;
    StateFields.push_back(F);
  }
  for (const auto &[F, Values] : Mods) {
    (void)Values;
    if (Tests.count(F))
      continue;
    if (allActionsWrite(*this, Body, F))
      OutputOnly.push_back(F);
    else
      StateFields.push_back(F);
  }
  std::sort(StateFields.begin(), StateFields.end());

  // Per-field symbolic domains: mentioned values in ascending order; the
  // index one past the end encodes the wildcard '*' (any other value).
  std::vector<std::vector<FieldValue>> Domain(StateFields.size());
  std::size_t NumStates = 1;
  for (std::size_t I = 0; I < StateFields.size(); ++I) {
    std::set<FieldValue> Values;
    auto TIt = Tests.find(StateFields[I]);
    if (TIt != Tests.end())
      Values.insert(TIt->second.begin(), TIt->second.end());
    auto MIt = Mods.find(StateFields[I]);
    if (MIt != Mods.end())
      Values.insert(MIt->second.begin(), MIt->second.end());
    Domain[I].assign(Values.begin(), Values.end());
    if (NumStates > MaxSymbolicStates / (Domain[I].size() + 1))
      fatalError("while-loop symbolic state space exceeds the cap; "
                 "restructure the model (e.g. make failure flags hop-local)");
    NumStates *= Domain[I].size() + 1;
  }

  // A symbolic packet is a vector of per-field value indices (the last
  // index of each field meaning '*'); states are mixed-radix integers.
  auto ValueIndex = [&](std::size_t FieldPos, FieldValue V) -> std::size_t {
    const std::vector<FieldValue> &Vals = Domain[FieldPos];
    auto Pos = std::lower_bound(Vals.begin(), Vals.end(), V);
    assert(Pos != Vals.end() && *Pos == V && "value outside symbolic domain");
    return static_cast<std::size_t>(Pos - Vals.begin());
  };
  auto Decode = [&](std::size_t State, std::vector<std::size_t> &Sym) {
    Sym.resize(StateFields.size());
    for (std::size_t I = StateFields.size(); I-- > 0;) {
      Sym[I] = State % (Domain[I].size() + 1);
      State /= Domain[I].size() + 1;
    }
  };
  auto Encode = [&](const std::vector<std::size_t> &Sym) {
    std::size_t State = 0;
    for (std::size_t I = 0; I < StateFields.size(); ++I)
      State = State * (Domain[I].size() + 1) + Sym[I];
    return State;
  };

  // Walks an FDD with a symbolic packet. Tests compare against concrete
  // domain values; the wildcard fails every test (its value is outside the
  // mentioned set by construction).
  auto EvalSymbolic = [&](FddRef Ref,
                          const std::vector<std::size_t> &Sym) -> FddRef {
    while (!isLeafRef(Ref)) {
      const InnerNode &N = innerNode(Ref);
      auto FieldPos = std::lower_bound(StateFields.begin(), StateFields.end(),
                                       N.Field) -
                      StateFields.begin();
      assert(static_cast<std::size_t>(FieldPos) < StateFields.size() &&
             StateFields[FieldPos] == N.Field && "test on non-state field");
      std::size_t SymVal = Sym[FieldPos];
      bool Matches = SymVal < Domain[FieldPos].size() &&
                     Domain[FieldPos][SymVal] == N.Value;
      Ref = Matches ? N.Hi : N.Lo;
    }
    return Ref;
  };

  // --- Chain construction -------------------------------------------------
  // Transient states: guard-true classes. Absorbing states: guard-false
  // classes decorated with output-only field values. Drop mass is left
  // implicit (rows may be substochastic).
  std::vector<std::size_t> TransientId(NumStates, SIZE_MAX);
  std::size_t NumTransient = 0;
  std::vector<std::size_t> Sym;
  for (std::size_t S = 0; S < NumStates; ++S) {
    Decode(S, Sym);
    if (EvalSymbolic(Guard, Sym) == IdentityLeaf)
      TransientId[S] = NumTransient++;
  }

  struct AbsorbKey {
    std::size_t ExitState;
    std::vector<FieldValue> Decorations; // Aligned with OutputOnly.
    bool operator<(const AbsorbKey &R) const {
      return ExitState != R.ExitState ? ExitState < R.ExitState
                                      : Decorations < R.Decorations;
    }
  };
  std::map<AbsorbKey, std::size_t> AbsorbIds;
  std::vector<AbsorbKey> AbsorbKeys;

  markov::AbsorbingChain Chain;
  Chain.NumTransient = NumTransient;
  std::vector<std::size_t> Target;
  for (std::size_t S = 0; S < NumStates; ++S) {
    if (TransientId[S] == SIZE_MAX)
      continue;
    Decode(S, Sym);
    FddRef Leaf = EvalSymbolic(Body, Sym);
    for (const auto &[A, W] : leafDist(Leaf).entries()) {
      if (A.isDrop())
        continue; // Dropped mass never absorbs; it is implicit.
      Target = Sym;
      for (const auto &[F, V] : A.mods()) {
        auto FieldPos =
            std::lower_bound(StateFields.begin(), StateFields.end(), F) -
            StateFields.begin();
        if (static_cast<std::size_t>(FieldPos) >= StateFields.size() ||
            StateFields[FieldPos] != F)
          continue; // Output-only field; handled as decoration below.
        Target[FieldPos] = ValueIndex(FieldPos, V);
      }
      std::size_t T = Encode(Target);
      if (TransientId[T] != SIZE_MAX) {
        Chain.QEntries.push_back({TransientId[S], TransientId[T], W});
        continue;
      }
      AbsorbKey ExitKey{T, {}};
      ExitKey.Decorations.reserve(OutputOnly.size());
      for (FieldId F : OutputOnly) {
        std::optional<FieldValue> Written = A.writeTo(F);
        assert(Written && "output-only field missing from an action");
        ExitKey.Decorations.push_back(*Written);
      }
      auto [AIt, Inserted] = AbsorbIds.emplace(ExitKey, AbsorbKeys.size());
      if (Inserted)
        AbsorbKeys.push_back(ExitKey);
      Chain.REntries.push_back({TransientId[S], AIt->second, W});
    }
  }
  Chain.NumAbsorbing = AbsorbKeys.size();

  LastLoop = LoopSolveStats();
  LastLoop.NumStates = NumStates;
  LastLoop.NumTransient = NumTransient;
  LastLoop.NumAbsorbing = Chain.NumAbsorbing;
  LastLoop.NumQEntries = Chain.QEntries.size();

  // --- Solve (Theorem 4.7) -------------------------------------------------
  // The manager's solver structure selects between the monolithic system
  // and per-SCC blocked elimination (docs/ARCHITECTURE.md S13); either way
  // the per-block metrics land in lastLoopStats().
  markov::SolveMetrics Metrics;
  linalg::DenseMatrix<Rational> Absorption(NumTransient, Chain.NumAbsorbing);
  if (Solver == markov::SolverKind::Exact) {
    if (!markov::solveAbsorptionExact(Chain, Absorption, Structure, &Metrics))
      fatalError("absorbing-chain solve failed (malformed chain)");
  } else if (Solver == markov::SolverKind::ModularExact) {
    // Exact-valued like the Rational engine (mod-p solves + CRT/rational
    // reconstruction, verified, with Rational fallback) — no boundary
    // clamping applies.
    if (!markov::solveAbsorptionModular(Chain, Absorption, Structure,
                                        &Metrics))
      fatalError("absorbing-chain solve failed (malformed chain)");
  } else {
    linalg::DenseMatrix<double> Approx;
    if (!markov::solveAbsorptionDouble(Chain, Approx, Solver, Structure,
                                       &Metrics))
      fatalError("absorbing-chain solve failed (malformed chain)");
    // Clamp, snap, and renormalize the float solution before it re-enters
    // the exact world (paper §5: UMFPACK's float results are trusted but
    // must be cleaned at the boundary). The row total is accumulated in
    // exact arithmetic: summing the converted entries in double would let
    // the exact sum exceed one by an ulp and break the leaf invariant.
    for (std::size_t R = 0; R < NumTransient; ++R) {
      Rational RowTotal;
      for (std::size_t C = 0; C < Chain.NumAbsorbing; ++C) {
        double V = std::min(1.0, std::max(0.0, Approx.at(R, C)));
        if (V < 1e-12)
          V = 0.0;
        else if (V > 1.0 - 1e-12)
          V = 1.0;
        if (V != 0.0) {
          Absorption.at(R, C) = Rational::fromDouble(V);
          RowTotal += Absorption.at(R, C);
        }
      }
      if (RowTotal > Rational(1)) {
        Rational Scale = RowTotal.reciprocal();
        for (std::size_t C = 0; C < Chain.NumAbsorbing; ++C)
          if (!Absorption.at(R, C).isZero())
            Absorption.at(R, C) *= Scale;
      }
    }
  }

  LastLoop.NumSolved = Metrics.NumSolved;
  LastLoop.NumSolvedQ = Metrics.NumSolvedQ;
  LastLoop.NumBlocks = Metrics.NumBlocks;
  LastLoop.MaxBlockSize = Metrics.MaxBlockSize;
  LastLoop.EliminationOps = Metrics.EliminationOps;
  LastLoop.FillIn = Metrics.FillIn;
  LastLoop.NumPrimes = Metrics.NumPrimes;
  LastLoop.RetriedPrimes = Metrics.RetriedPrimes;
  LastLoop.ReconstructionBits = Metrics.ReconstructionBits;
  LastLoop.ModularFallbacks = Metrics.ModularFallbacks;
  LastLoop.Blocks = std::move(Metrics.Blocks);


  // --- Rebuild an FDD from the absorption matrix ---------------------------
  // Nested per-field value branching over the symbolic domain; guard-false
  // seeds exit immediately (identity), transient seeds get their solved
  // exit distribution (missing mass = drop).
  std::vector<std::size_t> Partial(StateFields.size(), 0);
  std::vector<std::size_t> ExitSym;

  auto MakeLeaf = [&](std::size_t S) -> FddRef {
    if (TransientId[S] == SIZE_MAX)
      return IdentityLeaf; // Guard already false: zero iterations.
    Decode(S, Sym);
    std::size_t Row = TransientId[S];
    std::vector<std::pair<Action, Rational>> Entries;
    Rational Total;
    for (std::size_t C = 0; C < Chain.NumAbsorbing; ++C) {
      const Rational &W = Absorption.at(Row, C);
      if (W.isZero())
        continue;
      const AbsorbKey &ExitKey = AbsorbKeys[C];
      Decode(ExitKey.ExitState, ExitSym);
      std::vector<Action::Mod> ModList;
      for (std::size_t I = 0; I < StateFields.size(); ++I) {
        if (ExitSym[I] == Sym[I])
          continue;
        assert(ExitSym[I] < Domain[I].size() &&
               "wildcard cannot appear as a changed exit value");
        ModList.emplace_back(StateFields[I], Domain[I][ExitSym[I]]);
      }
      for (std::size_t I = 0; I < OutputOnly.size(); ++I)
        ModList.emplace_back(OutputOnly[I], ExitKey.Decorations[I]);
      Entries.emplace_back(Action::modify(std::move(ModList)), W);
      Total += W;
    }
    assert(Total <= Rational(1) && "absorption mass exceeds one");
    if (!Total.isOne()) {
      // Missing mass is drop; computed in place on the accumulator.
      Rational DropMass(1);
      DropMass -= Total;
      Entries.emplace_back(Action::drop(), std::move(DropMass));
    }
    return leaf(ActionDist::fromEntries(std::move(Entries)));
  };

  // Recursive build; plain lambda recursion via explicit stack of field
  // positions is clumsy — use a Y-combinator-style helper.
  auto Build = [&](auto &&Self, std::size_t FieldPos) -> FddRef {
    if (FieldPos == StateFields.size())
      return MakeLeaf(Encode(Partial));
    // Wildcard branch first (the lo-most), then concrete values from the
    // largest down, chaining lo links in ascending test order.
    Partial[FieldPos] = Domain[FieldPos].size();
    FddRef Acc = Self(Self, FieldPos + 1);
    for (std::size_t VI = Domain[FieldPos].size(); VI-- > 0;) {
      Partial[FieldPos] = VI;
      FddRef Hi = Self(Self, FieldPos + 1);
      Acc = inner(StateFields[FieldPos], Domain[FieldPos][VI], Hi, Acc);
    }
    return Acc;
  };
  FddRef Result = Build(Build, 0);


  LoopCache.emplace(Key, LoopEntry{Result, LastLoop});
  return Result;
}
