//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk FDD store (docs/ARCHITECTURE.md S16). File layout:
///
///   Header (16 bytes):  magic "MCNKFDDS" | u32 version | u32 endian tag
///   Record:             u32 payload length | u64 FNV-1a-64(payload) | payload
///
/// Payload:  u64 hash.lo | u64 hash.hi | u8 solver | u32 root | u32 #nodes
///           then per node:
///             u8 0 (inner) | u32 field | u32 value | u32 hi | u32 lo
///             u8 1 (leaf)  | u32 #entries, each:
///                u8 0 (drop) / 1 (mods: u32 #mods, (u32 field, u32 value)*)
///                rational:  u8 sign | u32 #limbs | u64* (numerator)
///                           u32 #limbs | u64*          (denominator)
///
/// All integers little-endian, written byte by byte — the file is
/// host-independent. Decoding never trusts a count before checking it
/// against the remaining bytes, and decoded diagrams pass validateFdd
/// before anyone imports them.
///
//===----------------------------------------------------------------------===//

#include "fdd/CacheStore.h"

#include "fdd/Export.h"

#include <cstdio>
#include <cstring>

using namespace mcnk;
using namespace mcnk::fdd;

namespace {

constexpr char Magic[8] = {'M', 'C', 'N', 'K', 'F', 'D', 'D', 'S'};
constexpr uint32_t EndianTag = 0x01020304;
constexpr std::size_t HeaderBytes = 16;
constexpr std::size_t RecordPrefixBytes = 12; // u32 length + u64 checksum.
/// Sanity cap on one record's payload (64 MiB): a flipped length byte must
/// not make the loader try to slurp gigabytes before the checksum check.
constexpr uint32_t MaxPayloadBytes = 64u << 20;

uint64_t fnv1a64(const uint8_t *Data, std::size_t Size) {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (std::size_t I = 0; I < Size; ++I) {
    Hash ^= Data[I];
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

void putU8(std::vector<uint8_t> &Out, uint8_t V) { Out.push_back(V); }
void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (unsigned I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}
void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (unsigned I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putBigInt(std::vector<uint8_t> &Out, const BigInt &V) {
  putU8(Out, V.isNegative() ? 1 : 0);
  std::vector<uint64_t> Limbs = V.magnitudeLimbs64();
  putU32(Out, static_cast<uint32_t>(Limbs.size()));
  for (uint64_t L : Limbs)
    putU64(Out, L);
}

/// Bounds-checked cursor over untrusted bytes: every take* checks the
/// remaining length first and fails cleanly instead of reading past the
/// end.
struct ByteReader {
  const uint8_t *Data;
  std::size_t Size;
  std::size_t Pos = 0;
  std::string *Error;

  bool fail(const char *What) {
    if (Error)
      *Error = std::string("truncated or malformed record (") + What + ")";
    return false;
  }
  bool takeU8(uint8_t &V, const char *What) {
    if (Size - Pos < 1)
      return fail(What);
    V = Data[Pos++];
    return true;
  }
  bool takeU32(uint32_t &V, const char *What) {
    if (Size - Pos < 4)
      return fail(What);
    V = 0;
    for (unsigned I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
    Pos += 4;
    return true;
  }
  bool takeU64(uint64_t &V, const char *What) {
    if (Size - Pos < 8)
      return fail(What);
    V = 0;
    for (unsigned I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return true;
  }
  /// Validates a decoded element count against the bytes actually left:
  /// each element consumes at least \p MinBytesEach, so a count larger
  /// than remaining/MinBytesEach is lying — reject before any reserve().
  bool checkCount(uint32_t Count, std::size_t MinBytesEach,
                  const char *What) {
    if (Count > (Size - Pos) / MinBytesEach)
      return fail(What);
    return true;
  }
  bool takeBigInt(BigInt &V, const char *What) {
    uint8_t Neg = 0;
    uint32_t NumLimbs = 0;
    if (!takeU8(Neg, What))
      return false;
    if (Neg > 1)
      return fail(What);
    if (!takeU32(NumLimbs, What) || !checkCount(NumLimbs, 8, What))
      return false;
    std::vector<uint64_t> Limbs(NumLimbs);
    for (uint32_t I = 0; I < NumLimbs; ++I)
      if (!takeU64(Limbs[I], What))
        return false;
    V = BigInt::fromLimbs64(Neg == 1, Limbs);
    // "-0" has no canonical encoding; an encoder never writes it.
    if (Neg == 1 && V.isZero())
      return fail(What);
    return true;
  }
};

} // namespace

std::vector<uint8_t> fdd::encodeCacheRecord(const CacheRecord &Record) {
  std::vector<uint8_t> Out;
  putU64(Out, Record.Key.Lo);
  putU64(Out, Record.Key.Hi);
  putU8(Out, static_cast<uint8_t>(Record.Solver));
  putU32(Out, Record.Diagram.Root);
  putU32(Out, static_cast<uint32_t>(Record.Diagram.Nodes.size()));
  for (const PortableFdd::Node &Node : Record.Diagram.Nodes) {
    putU8(Out, Node.IsLeaf ? 1 : 0);
    if (!Node.IsLeaf) {
      putU32(Out, Node.Field);
      putU32(Out, Node.Value);
      putU32(Out, Node.Hi);
      putU32(Out, Node.Lo);
      continue;
    }
    putU32(Out, static_cast<uint32_t>(Node.Dist.size()));
    for (const auto &[Act, Weight] : Node.Dist) {
      if (Act.isDrop()) {
        putU8(Out, 0);
      } else {
        putU8(Out, 1);
        putU32(Out, static_cast<uint32_t>(Act.mods().size()));
        for (const auto &[F, V] : Act.mods()) {
          putU32(Out, F);
          putU32(Out, V);
        }
      }
      putBigInt(Out, Weight.numerator());
      putBigInt(Out, Weight.denominator());
    }
  }
  return Out;
}

bool fdd::decodeCacheRecord(const uint8_t *Data, std::size_t Size,
                            CacheRecord &Out, std::string *Error) {
  ByteReader R{Data, Size, 0, Error};
  uint8_t Solver = 0;
  uint32_t NumNodes = 0;
  if (!R.takeU64(Out.Key.Lo, "key") || !R.takeU64(Out.Key.Hi, "key") ||
      !R.takeU8(Solver, "solver") || !R.takeU32(Out.Diagram.Root, "root") ||
      !R.takeU32(NumNodes, "node count"))
    return false;
  if (Solver > static_cast<uint8_t>(markov::SolverKind::ModularExact))
    return R.fail("solver kind");
  Out.Solver = static_cast<markov::SolverKind>(Solver);
  // Every node costs at least the 1-byte tag.
  if (!R.checkCount(NumNodes, 1, "node count"))
    return false;
  Out.Diagram.Nodes.clear();
  Out.Diagram.Nodes.reserve(NumNodes);
  for (uint32_t I = 0; I < NumNodes; ++I) {
    PortableFdd::Node Node;
    uint8_t Tag = 0;
    if (!R.takeU8(Tag, "node tag"))
      return false;
    if (Tag > 1)
      return R.fail("node tag");
    Node.IsLeaf = Tag == 1;
    if (!Node.IsLeaf) {
      uint32_t Field = 0;
      if (!R.takeU32(Field, "inner node") ||
          !R.takeU32(Node.Value, "inner node") ||
          !R.takeU32(Node.Hi, "inner node") ||
          !R.takeU32(Node.Lo, "inner node"))
        return false;
      if (Field >= FieldTable::NotFound)
        return R.fail("field id");
      Node.Field = static_cast<FieldId>(Field);
      Out.Diagram.Nodes.push_back(std::move(Node));
      continue;
    }
    uint32_t NumEntries = 0;
    if (!R.takeU32(NumEntries, "leaf entry count") ||
        !R.checkCount(NumEntries, 1, "leaf entry count"))
      return false;
    Node.Dist.reserve(NumEntries);
    for (uint32_t E = 0; E < NumEntries; ++E) {
      uint8_t ActTag = 0;
      if (!R.takeU8(ActTag, "action tag"))
        return false;
      Action Act;
      if (ActTag == 0) {
        Act = Action::drop();
      } else if (ActTag == 1) {
        uint32_t NumMods = 0;
        if (!R.takeU32(NumMods, "mod count") ||
            !R.checkCount(NumMods, 8, "mod count"))
          return false;
        std::vector<Action::Mod> Mods;
        Mods.reserve(NumMods);
        for (uint32_t M = 0; M < NumMods; ++M) {
          uint32_t F = 0, V = 0;
          if (!R.takeU32(F, "mod") || !R.takeU32(V, "mod"))
            return false;
          if (F >= FieldTable::NotFound)
            return R.fail("field id");
          Mods.emplace_back(static_cast<FieldId>(F), V);
        }
        // Action::modify sorts and dedups, so whatever order the bytes
        // claimed, the in-memory Action is canonical.
        Act = Action::modify(std::move(Mods));
      } else {
        return R.fail("action tag");
      }
      BigInt Num, Den;
      if (!R.takeBigInt(Num, "weight numerator") ||
          !R.takeBigInt(Den, "weight denominator"))
        return false;
      if (Den.isZero() || Den.isNegative())
        return R.fail("weight denominator");
      Node.Dist.emplace_back(std::move(Act),
                             Rational(std::move(Num), std::move(Den)));
    }
    Out.Diagram.Nodes.push_back(std::move(Node));
  }
  if (R.Pos != Size)
    return R.fail("trailing bytes");
  // Structural validation — the same gate importFdd enforces, but
  // returning an error instead of aborting the process.
  std::string Why;
  if (!validateFdd(Out.Diagram, &Why)) {
    if (Error)
      *Error = "invalid diagram: " + Why;
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// CacheStore
//===----------------------------------------------------------------------===//

namespace {

struct FileCloser {
  void operator()(std::FILE *F) const {
    if (F)
      std::fclose(F);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool writeAll(std::FILE *F, const uint8_t *Data, std::size_t Size) {
  return std::fwrite(Data, 1, Size, F) == Size;
}

std::vector<uint8_t> headerBytes() {
  std::vector<uint8_t> H(Magic, Magic + sizeof(Magic));
  putU32(H, CacheStore::FormatVersion);
  putU32(H, EndianTag);
  return H;
}

void writeRecordTo(std::vector<uint8_t> &Out,
                   const std::vector<uint8_t> &Payload) {
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU64(Out, fnv1a64(Payload.data(), Payload.size()));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
}

/// Reads the whole file; false on I/O error (a missing file is reported
/// as success with Existed = false).
bool readFile(const std::string &Path, std::vector<uint8_t> &Out,
              bool &Existed) {
  FilePtr F(std::fopen(Path.c_str(), "rb"));
  if (!F) {
    Existed = false;
    Out.clear();
    return true;
  }
  Existed = true;
  Out.clear();
  uint8_t Buffer[1 << 16];
  std::size_t N = 0;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), F.get())) > 0)
    Out.insert(Out.end(), Buffer, Buffer + N);
  return std::ferror(F.get()) == 0;
}

} // namespace

std::unique_ptr<CacheStore> CacheStore::open(const std::string &Path,
                                             std::string *Error,
                                             const Options &Opts) {
  std::unique_ptr<CacheStore> Store(new CacheStore(Path, Opts));

  std::vector<uint8_t> Bytes;
  bool Existed = false;
  if (!readFile(Path, Bytes, Existed)) {
    if (Error)
      *Error = "cannot read cache store '" + Path + "'";
    return nullptr;
  }

  if (!Existed || Bytes.empty()) {
    // Fresh store: write the header now so a later concurrent reader never
    // sees a half-formed file without one.
    FilePtr F(std::fopen(Path.c_str(), "wb"));
    std::vector<uint8_t> H = headerBytes();
    if (!F || !writeAll(F.get(), H.data(), H.size()) ||
        std::fflush(F.get()) != 0) {
      if (Error)
        *Error = "cannot create cache store '" + Path + "'";
      return nullptr;
    }
    Store->Counters.FileBytes = H.size();
    return Store;
  }

  // Version gate: loudly refuse files from a different format rather than
  // misparse them. (A future version bump migrates explicitly.)
  if (Bytes.size() < HeaderBytes ||
      std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0) {
    if (Error)
      *Error = "'" + Path + "' is not a McNetKAT FDD cache store";
    return nullptr;
  }
  uint32_t Version = 0, Endian = 0;
  for (unsigned I = 0; I < 4; ++I) {
    Version |= static_cast<uint32_t>(Bytes[8 + I]) << (8 * I);
    Endian |= static_cast<uint32_t>(Bytes[12 + I]) << (8 * I);
  }
  if (Version != FormatVersion || Endian != EndianTag) {
    if (Error)
      *Error = "cache store '" + Path + "' has format version " +
               std::to_string(Version) + "; this build requires " +
               std::to_string(FormatVersion);
    return nullptr;
  }

  // Scan records. Anything that does not parse cleanly from here on is a
  // torn tail (crash mid-append) or corruption; truncate at the last good
  // record rather than trust a byte of it.
  std::size_t Pos = HeaderBytes;
  std::size_t GoodEnd = Pos;
  // Newest record per key wins; remember the slot to overwrite.
  std::unordered_map<ast::ProgramHash, std::array<int64_t, 4>,
                     ast::ProgramHashHasher>
      Slot;
  while (Pos < Bytes.size()) {
    if (Bytes.size() - Pos < RecordPrefixBytes)
      break; // Short prefix: torn tail.
    uint32_t Len = 0;
    uint64_t Sum = 0;
    for (unsigned I = 0; I < 4; ++I)
      Len |= static_cast<uint32_t>(Bytes[Pos + I]) << (8 * I);
    for (unsigned I = 0; I < 8; ++I)
      Sum |= static_cast<uint64_t>(Bytes[Pos + 4 + I]) << (8 * I);
    if (Len > MaxPayloadBytes || Bytes.size() - Pos - RecordPrefixBytes < Len)
      break; // Length overruns the file: torn tail.
    const uint8_t *Payload = Bytes.data() + Pos + RecordPrefixBytes;
    if (fnv1a64(Payload, Len) != Sum)
      break; // Bit rot or torn write: do not trust this or anything after.
    CacheRecord Record;
    if (!decodeCacheRecord(Payload, Len, Record)) {
      // Checksum matched but the content is malformed — written by a buggy
      // or hostile producer. Count it, stop trusting the rest.
      Store->Counters.CorruptRecordsDropped++;
      break;
    }
    Pos += RecordPrefixBytes + Len;
    GoodEnd = Pos;
    ++Store->TotalRecords;
    auto &Counts = Store->FileKeys[Record.Key];
    auto &Slots = Slot[Record.Key];
    std::size_t SolverIdx = static_cast<std::size_t>(Record.Solver);
    if (Counts[SolverIdx]++ == 0) {
      Slots[SolverIdx] = static_cast<int64_t>(Store->Loaded.size());
      Store->Loaded.push_back(std::move(Record));
    } else {
      Store->Loaded[static_cast<std::size_t>(Slots[SolverIdx])] =
          std::move(Record);
    }
  }

  if (GoodEnd < Bytes.size()) {
    // Torn tail: truncate in place so the next append starts from a clean
    // boundary instead of extending garbage.
    Store->Counters.TornBytesDropped = Bytes.size() - GoodEnd;
    FilePtr F(std::fopen(Path.c_str(), "wb"));
    if (!F || !writeAll(F.get(), Bytes.data(), GoodEnd) ||
        std::fflush(F.get()) != 0) {
      if (Error)
        *Error = "cannot truncate torn tail of cache store '" + Path + "'";
      return nullptr;
    }
    Store->Counters.FileBytes = GoodEnd;
  } else {
    Store->Counters.FileBytes = Bytes.size();
  }
  return Store;
}

std::size_t CacheStore::warm(CompileCache &Cache) {
  std::vector<CacheRecord> Records;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Records.swap(Loaded);
  }
  for (CacheRecord &R : Records)
    Cache.insert(R.Key, R.Solver, std::move(R.Diagram));
  return Records.size();
}

void CacheStore::discardLoaded() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Loaded.clear();
  Loaded.shrink_to_fit();
}

bool CacheStore::appendLocked(const std::vector<uint8_t> &Payload,
                              std::string *Error) {
  FilePtr F(std::fopen(Path.c_str(), "ab"));
  std::vector<uint8_t> Framed;
  Framed.reserve(RecordPrefixBytes + Payload.size());
  writeRecordTo(Framed, Payload);
  // One fwrite of the whole frame: a crash tears at most this record, and
  // the torn tail is exactly what open() truncates.
  if (!F || !writeAll(F.get(), Framed.data(), Framed.size()) ||
      std::fflush(F.get()) != 0) {
    if (Error)
      *Error = "cannot append to cache store '" + Path + "'";
    return false;
  }
  Counters.FileBytes += Framed.size();
  ++Counters.Appends;
  ++TotalRecords;
  return true;
}

bool CacheStore::append(const ast::ProgramHash &Key,
                        markov::SolverKind Solver, const PortableFdd &Diagram,
                        std::string *Error) {
  CacheRecord Record;
  Record.Key = Key;
  Record.Solver = Solver;
  Record.Diagram = Diagram;
  std::vector<uint8_t> Payload = encodeCacheRecord(Record);
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!appendLocked(Payload, Error))
    return false;
  FileKeys[Key][static_cast<std::size_t>(Solver)]++;
  return true;
}

bool CacheStore::compact(std::string *Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  // Re-read the file under the lock (no appends can interleave) and keep
  // the newest record bytes per key — no decode/re-encode round trip, the
  // checksummed payloads are copied verbatim.
  std::vector<uint8_t> Bytes;
  bool Existed = false;
  if (!readFile(Path, Bytes, Existed) || !Existed) {
    if (Error)
      *Error = "cannot read cache store '" + Path + "' for compaction";
    return false;
  }
  struct Span {
    std::size_t Offset;
    std::size_t Size;
  };
  std::unordered_map<ast::ProgramHash, std::array<int64_t, 4>,
                     ast::ProgramHashHasher>
      Newest;
  std::vector<std::pair<ast::ProgramHash, uint8_t>> Order;
  std::vector<Span> Spans;
  std::size_t Pos = HeaderBytes;
  while (Pos + RecordPrefixBytes <= Bytes.size()) {
    uint32_t Len = 0;
    for (unsigned I = 0; I < 4; ++I)
      Len |= static_cast<uint32_t>(Bytes[Pos + I]) << (8 * I);
    if (Len > MaxPayloadBytes || Bytes.size() - Pos - RecordPrefixBytes < Len)
      break;
    uint64_t Sum = 0;
    for (unsigned I = 0; I < 8; ++I)
      Sum |= static_cast<uint64_t>(Bytes[Pos + 4 + I]) << (8 * I);
    const uint8_t *Payload = Bytes.data() + Pos + RecordPrefixBytes;
    if (fnv1a64(Payload, Len) != Sum)
      break;
    CacheRecord Record;
    if (!decodeCacheRecord(Payload, Len, Record))
      break;
    auto Found = Newest.find(Record.Key);
    if (Found == Newest.end()) {
      auto &Slots = Newest[Record.Key];
      Slots.fill(-1);
      Found = Newest.find(Record.Key);
    }
    std::size_t SolverIdx = static_cast<std::size_t>(Record.Solver);
    if (Found->second[SolverIdx] < 0) {
      Found->second[SolverIdx] = static_cast<int64_t>(Spans.size());
      Order.emplace_back(Record.Key, static_cast<uint8_t>(SolverIdx));
      Spans.push_back({Pos, RecordPrefixBytes + Len});
    } else {
      Spans[static_cast<std::size_t>(Found->second[SolverIdx])] = {
          Pos, RecordPrefixBytes + Len};
    }
    Pos += RecordPrefixBytes + Len;
  }

  std::string TmpPath = Path + ".compact.tmp";
  {
    FilePtr F(std::fopen(TmpPath.c_str(), "wb"));
    std::vector<uint8_t> H = headerBytes();
    if (!F || !writeAll(F.get(), H.data(), H.size())) {
      if (Error)
        *Error = "cannot write '" + TmpPath + "'";
      return false;
    }
    for (const Span &S : Spans)
      if (!writeAll(F.get(), Bytes.data() + S.Offset, S.Size)) {
        if (Error)
          *Error = "cannot write '" + TmpPath + "'";
        std::remove(TmpPath.c_str());
        return false;
      }
    if (std::fflush(F.get()) != 0) {
      if (Error)
        *Error = "cannot flush '" + TmpPath + "'";
      std::remove(TmpPath.c_str());
      return false;
    }
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    if (Error)
      *Error = "cannot rename '" + TmpPath + "' over '" + Path + "'";
    std::remove(TmpPath.c_str());
    return false;
  }

  // Rebuild the accounting from what survived.
  FileKeys.clear();
  TotalRecords = Spans.size();
  std::size_t NewBytes = HeaderBytes;
  for (const Span &S : Spans)
    NewBytes += S.Size;
  for (const auto &[Key, SolverIdx] : Order)
    FileKeys[Key][SolverIdx] = 1;
  Counters.FileBytes = NewBytes;
  ++Counters.Compactions;
  return true;
}

bool CacheStore::maybeCompact(std::string *Error) {
  std::size_t Live = 0, Total = 0;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Total = TotalRecords;
    for (const auto &[Key, Counts] : FileKeys) {
      (void)Key;
      for (uint32_t C : Counts)
        Live += C > 0 ? 1 : 0;
    }
  }
  if (Total < Opts.CompactMinRecords || Total == 0)
    return true;
  double DeadRatio =
      static_cast<double>(Total - Live) / static_cast<double>(Total);
  if (DeadRatio <= Opts.CompactDeadRatio)
    return true;
  return compact(Error);
}

CacheStore::Stats CacheStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats S = Counters;
  std::size_t Live = 0;
  for (const auto &[Key, Counts] : FileKeys) {
    (void)Key;
    for (uint32_t C : Counts)
      Live += C > 0 ? 1 : 0;
  }
  S.LiveRecords = Live;
  S.DeadRecords = TotalRecords - Live;
  return S;
}
