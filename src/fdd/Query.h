//===----------------------------------------------------------------------===//
///
/// \file
/// Decision procedures on compiled FDDs. Because FDDs are canonical
/// (ordered, reduced, hash-consed, exact-rational leaves), program
/// equivalence is reference equality — the executable form of Corollary
/// 3.2/B.4. Refinement (p ≤ q, §2/§7) and epsilon-equivalence (for
/// float-solved diagrams) walk the product of the two diagrams.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_FDD_QUERY_H
#define MCNK_FDD_QUERY_H

#include "fdd/Fdd.h"

namespace mcnk {
namespace fdd {

/// Exact program equivalence p ≡ q for diagrams from the same manager.
inline bool equivalent(FddRef A, FddRef B) { return A == B; }

/// Structural product-walk equivalence with tolerance: every input class
/// assigns each output action a probability within \p Eps in both
/// diagrams. Use for diagrams produced by the floating-point solver.
bool approxEquivalent(const FddManager &Manager, FddRef A, FddRef B,
                      double Eps);

/// Refinement p ≤ q (the ⊑ order on programs restricted to the
/// single-packet space): for every input class and every non-drop output,
/// p's probability is at most q's (+ \p Eps). q may drop strictly less.
/// `p < q` in the paper is `refines(p, q) && !equivalent(p, q)`.
bool refines(const FddManager &Manager, FddRef P, FddRef Q,
             double Eps = 0.0);

} // namespace fdd
} // namespace mcnk

#endif // MCNK_FDD_QUERY_H
