//===----------------------------------------------------------------------===//
///
/// \file
/// Decision procedures on compiled FDDs. Because FDDs are canonical
/// (ordered, reduced, hash-consed, exact-rational leaves), program
/// equivalence is reference equality — the executable form of Corollary
/// 3.2/B.4. Refinement (p ≤ q, §2/§7) and epsilon-equivalence (for
/// float-solved diagrams) walk the product of the two diagrams.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_FDD_QUERY_H
#define MCNK_FDD_QUERY_H

#include "fdd/Fdd.h"

namespace mcnk {
namespace fdd {

/// Exact program equivalence p ≡ q for diagrams from the same manager.
/// Sound and complete only when both diagrams were built with the Exact
/// solver (canonical form + exact rationals, Corollary 3.2/B.4).
inline bool equivalent(FddRef A, FddRef B) { return A == B; }

/// Structural product-walk equivalence with tolerance.
///
/// \param Manager  The manager owning both diagrams.
/// \param A,B      Diagrams to compare; must come from \p Manager.
/// \param Eps      Absolute per-action probability tolerance.
/// \return true iff every input packet class assigns each output action a
///         probability within \p Eps in both diagrams. Use for diagrams
///         produced by a floating-point solver, where hash-consing alone
///         cannot identify semantically equal leaves.
bool approxEquivalent(const FddManager &Manager, FddRef A, FddRef B,
                      double Eps);

/// Refinement p ≤ q (the ⊑ order on programs restricted to the
/// single-packet space).
///
/// \param Manager  The manager owning both diagrams.
/// \param P,Q      Candidate refinement pair (is \p P at most \p Q?).
/// \param Eps      Slack added to \p Q's probabilities; 0 for exact
///                 diagrams.
/// \return true iff for every input class and every non-drop output
///         action, P's probability is at most Q's + \p Eps — i.e. Q
///         delivers at least as reliably on every input. Strict
///         refinement `p < q` is `refines(P, Q) && !equivalent(P, Q)`.
bool refines(const FddManager &Manager, FddRef P, FddRef Q,
             double Eps = 0.0);

} // namespace fdd
} // namespace mcnk

#endif // MCNK_FDD_QUERY_H
