//===----------------------------------------------------------------------===//
///
/// \file
/// Sign-magnitude bignum arithmetic on 32-bit limbs: schoolbook
/// multiplication and Knuth Algorithm D division.
///
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include "support/Error.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace mcnk;

BigInt::BigInt(int64_t Value) {
  Negative = Value < 0;
  // Negate via unsigned arithmetic so INT64_MIN is handled.
  uint64_t Mag =
      Negative ? ~static_cast<uint64_t>(Value) + 1 : static_cast<uint64_t>(Value);
  if (Mag != 0)
    Limbs.push_back(static_cast<Limb>(Mag & 0xffffffffULL));
  if (Mag >> 32)
    Limbs.push_back(static_cast<Limb>(Mag >> 32));
  if (Limbs.empty())
    Negative = false;
}

BigInt BigInt::fromUnsigned(uint64_t Value) {
  BigInt Result;
  if (Value != 0)
    Result.Limbs.push_back(static_cast<Limb>(Value & 0xffffffffULL));
  if (Value >> 32)
    Result.Limbs.push_back(static_cast<Limb>(Value >> 32));
  return Result;
}

void BigInt::trim() {
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
  if (Limbs.empty())
    Negative = false;
}

unsigned BigInt::bitLength() const {
  if (Limbs.empty())
    return 0;
  unsigned TopBits = 32 - __builtin_clz(Limbs.back());
  return static_cast<unsigned>(Limbs.size() - 1) * LimbBits + TopBits;
}

bool BigInt::fitsInt64() const {
  unsigned Bits = bitLength();
  if (Bits < 64)
    return true;
  // INT64_MIN has magnitude 2^63, bit length 64.
  if (Bits == 64 && Negative && Limbs[0] == 0 && Limbs[1] == 0x80000000u)
    return true;
  return false;
}

int64_t BigInt::toInt64() const {
  assert(fitsInt64() && "BigInt does not fit in int64_t");
  uint64_t Mag = 0;
  if (Limbs.size() > 0)
    Mag |= static_cast<uint64_t>(Limbs[0]);
  if (Limbs.size() > 1)
    Mag |= static_cast<uint64_t>(Limbs[1]) << 32;
  if (Negative)
    return static_cast<int64_t>(~Mag + 1);
  return static_cast<int64_t>(Mag);
}

double BigInt::toDouble() const {
  if (Limbs.empty())
    return 0.0;
  unsigned Bits = bitLength();
  double Result;
  if (Bits <= 64) {
    uint64_t Mag = static_cast<uint64_t>(Limbs[0]);
    if (Limbs.size() > 1)
      Mag |= static_cast<uint64_t>(Limbs[1]) << 32;
    Result = static_cast<double>(Mag);
  } else {
    // Take the top 64 bits and scale; enough precision for a double.
    BigInt Top = shr(Bits - 64);
    uint64_t Mag = static_cast<uint64_t>(Top.Limbs[0]);
    if (Top.Limbs.size() > 1)
      Mag |= static_cast<uint64_t>(Top.Limbs[1]) << 32;
    Result = std::ldexp(static_cast<double>(Mag),
                        static_cast<int>(Bits) - 64);
  }
  return Negative ? -Result : Result;
}

int BigInt::compareMagnitude(const std::vector<Limb> &A,
                             const std::vector<Limb> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (std::size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

std::vector<BigInt::Limb> BigInt::addMagnitude(const std::vector<Limb> &A,
                                               const std::vector<Limb> &B) {
  const std::vector<Limb> &Long = A.size() >= B.size() ? A : B;
  const std::vector<Limb> &Short = A.size() >= B.size() ? B : A;
  std::vector<Limb> Result;
  Result.reserve(Long.size() + 1);
  DoubleLimb Carry = 0;
  for (std::size_t I = 0; I < Long.size(); ++I) {
    DoubleLimb Sum = Carry + Long[I];
    if (I < Short.size())
      Sum += Short[I];
    Result.push_back(static_cast<Limb>(Sum & 0xffffffffULL));
    Carry = Sum >> 32;
  }
  if (Carry)
    Result.push_back(static_cast<Limb>(Carry));
  return Result;
}

std::vector<BigInt::Limb> BigInt::subMagnitude(const std::vector<Limb> &A,
                                               const std::vector<Limb> &B) {
  assert(compareMagnitude(A, B) >= 0 && "subMagnitude requires |A| >= |B|");
  std::vector<Limb> Result;
  Result.reserve(A.size());
  int64_t Borrow = 0;
  for (std::size_t I = 0; I < A.size(); ++I) {
    int64_t Diff = static_cast<int64_t>(A[I]) - Borrow -
                   (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
    if (Diff < 0) {
      Diff += (1LL << 32);
      Borrow = 1;
    } else {
      Borrow = 0;
    }
    Result.push_back(static_cast<Limb>(Diff));
  }
  assert(Borrow == 0 && "underflow in subMagnitude");
  while (!Result.empty() && Result.back() == 0)
    Result.pop_back();
  return Result;
}

std::vector<BigInt::Limb> BigInt::mulMagnitude(const std::vector<Limb> &A,
                                               const std::vector<Limb> &B) {
  if (A.empty() || B.empty())
    return {};
  std::vector<Limb> Result(A.size() + B.size(), 0);
  for (std::size_t I = 0; I < A.size(); ++I) {
    DoubleLimb Carry = 0;
    DoubleLimb AV = A[I];
    for (std::size_t J = 0; J < B.size(); ++J) {
      DoubleLimb Cur = Result[I + J] + AV * B[J] + Carry;
      Result[I + J] = static_cast<Limb>(Cur & 0xffffffffULL);
      Carry = Cur >> 32;
    }
    std::size_t K = I + B.size();
    while (Carry) {
      DoubleLimb Cur = Result[K] + Carry;
      Result[K] = static_cast<Limb>(Cur & 0xffffffffULL);
      Carry = Cur >> 32;
      ++K;
    }
  }
  while (!Result.empty() && Result.back() == 0)
    Result.pop_back();
  return Result;
}

void BigInt::divModMagnitude(const std::vector<Limb> &A,
                             const std::vector<Limb> &B, std::vector<Limb> &Q,
                             std::vector<Limb> &R) {
  assert(!B.empty() && "division by zero");
  Q.clear();
  R.clear();
  if (compareMagnitude(A, B) < 0) {
    R = A;
    return;
  }

  // Fast path: single-limb divisor.
  if (B.size() == 1) {
    DoubleLimb Den = B[0];
    Q.assign(A.size(), 0);
    DoubleLimb Rem = 0;
    for (std::size_t I = A.size(); I-- > 0;) {
      DoubleLimb Cur = (Rem << 32) | A[I];
      Q[I] = static_cast<Limb>(Cur / Den);
      Rem = Cur % Den;
    }
    while (!Q.empty() && Q.back() == 0)
      Q.pop_back();
    if (Rem != 0)
      R.push_back(static_cast<Limb>(Rem));
    return;
  }

  // Knuth TAOCP vol. 2, Algorithm D. Normalize so that the divisor's top
  // limb has its high bit set.
  unsigned Shift = __builtin_clz(B.back());
  std::size_t N = B.size();
  std::size_t M = A.size() - N;

  std::vector<Limb> V(N);
  for (std::size_t I = N; I-- > 0;) {
    V[I] = B[I] << Shift;
    if (Shift && I > 0)
      V[I] |= static_cast<Limb>(static_cast<DoubleLimb>(B[I - 1]) >>
                                (32 - Shift));
  }

  std::vector<Limb> U(A.size() + 1, 0);
  U[A.size()] =
      Shift ? static_cast<Limb>(static_cast<DoubleLimb>(A.back()) >>
                                (32 - Shift))
            : 0;
  for (std::size_t I = A.size(); I-- > 0;) {
    U[I] = A[I] << Shift;
    if (Shift && I > 0)
      U[I] |= static_cast<Limb>(static_cast<DoubleLimb>(A[I - 1]) >>
                                (32 - Shift));
  }

  Q.assign(M + 1, 0);
  const DoubleLimb Base = 1ULL << 32;
  for (std::size_t J = M + 1; J-- > 0;) {
    // Estimate the quotient limb from the top two limbs of the current
    // remainder prefix against the top limb of the divisor.
    DoubleLimb Top = (static_cast<DoubleLimb>(U[J + N]) << 32) | U[J + N - 1];
    DoubleLimb QHat = Top / V[N - 1];
    DoubleLimb RHat = Top % V[N - 1];
    while (QHat >= Base ||
           QHat * V[N - 2] > ((RHat << 32) | U[J + N - 2])) {
      --QHat;
      RHat += V[N - 1];
      if (RHat >= Base)
        break;
    }

    // Multiply-subtract QHat * V from U[J .. J+N].
    int64_t Borrow = 0;
    DoubleLimb Carry = 0;
    for (std::size_t I = 0; I < N; ++I) {
      DoubleLimb Prod = QHat * V[I] + Carry;
      Carry = Prod >> 32;
      int64_t Diff = static_cast<int64_t>(U[I + J]) -
                     static_cast<int64_t>(Prod & 0xffffffffULL) - Borrow;
      if (Diff < 0) {
        Diff += static_cast<int64_t>(Base);
        Borrow = 1;
      } else {
        Borrow = 0;
      }
      U[I + J] = static_cast<Limb>(Diff);
    }
    int64_t TopDiff = static_cast<int64_t>(U[J + N]) -
                      static_cast<int64_t>(Carry) - Borrow;
    if (TopDiff < 0) {
      // QHat was one too large; add the divisor back.
      TopDiff += static_cast<int64_t>(Base);
      --QHat;
      DoubleLimb AddCarry = 0;
      for (std::size_t I = 0; I < N; ++I) {
        DoubleLimb Sum =
            static_cast<DoubleLimb>(U[I + J]) + V[I] + AddCarry;
        U[I + J] = static_cast<Limb>(Sum & 0xffffffffULL);
        AddCarry = Sum >> 32;
      }
      TopDiff += static_cast<int64_t>(AddCarry);
      TopDiff &= static_cast<int64_t>(Base - 1);
    }
    U[J + N] = static_cast<Limb>(TopDiff);
    Q[J] = static_cast<Limb>(QHat);
  }

  while (!Q.empty() && Q.back() == 0)
    Q.pop_back();

  // Denormalize the remainder (low N limbs of U, shifted back).
  R.assign(N, 0);
  for (std::size_t I = 0; I < N; ++I) {
    R[I] = U[I] >> Shift;
    if (Shift && I + 1 < U.size())
      R[I] |= static_cast<Limb>(static_cast<DoubleLimb>(U[I + 1])
                                << (32 - Shift));
  }
  while (!R.empty() && R.back() == 0)
    R.pop_back();
}

BigInt BigInt::operator-() const {
  BigInt Result = *this;
  if (!Result.Limbs.empty())
    Result.Negative = !Result.Negative;
  return Result;
}

BigInt BigInt::abs() const {
  BigInt Result = *this;
  Result.Negative = false;
  return Result;
}

BigInt BigInt::operator+(const BigInt &RHS) const {
  BigInt Result;
  if (Negative == RHS.Negative) {
    Result.Limbs = addMagnitude(Limbs, RHS.Limbs);
    Result.Negative = Negative;
  } else if (compareMagnitude(Limbs, RHS.Limbs) >= 0) {
    Result.Limbs = subMagnitude(Limbs, RHS.Limbs);
    Result.Negative = Negative;
  } else {
    Result.Limbs = subMagnitude(RHS.Limbs, Limbs);
    Result.Negative = RHS.Negative;
  }
  Result.trim();
  return Result;
}

BigInt BigInt::operator-(const BigInt &RHS) const { return *this + (-RHS); }

BigInt BigInt::operator*(const BigInt &RHS) const {
  BigInt Result;
  Result.Limbs = mulMagnitude(Limbs, RHS.Limbs);
  Result.Negative = Negative != RHS.Negative;
  Result.trim();
  return Result;
}

std::pair<BigInt, BigInt> BigInt::divMod(const BigInt &Num,
                                         const BigInt &Den) {
  assert(!Den.isZero() && "BigInt division by zero");
  BigInt Q, R;
  divModMagnitude(Num.Limbs, Den.Limbs, Q.Limbs, R.Limbs);
  Q.Negative = !Q.Limbs.empty() && (Num.Negative != Den.Negative);
  R.Negative = !R.Limbs.empty() && Num.Negative;
  return {Q, R};
}

BigInt BigInt::operator/(const BigInt &RHS) const {
  return divMod(*this, RHS).first;
}

BigInt BigInt::operator%(const BigInt &RHS) const {
  return divMod(*this, RHS).second;
}

BigInt BigInt::shl(unsigned Bits) const {
  if (Limbs.empty() || Bits == 0)
    return *this;
  unsigned LimbShift = Bits / LimbBits;
  unsigned BitShift = Bits % LimbBits;
  BigInt Result;
  Result.Negative = Negative;
  Result.Limbs.assign(Limbs.size() + LimbShift + 1, 0);
  for (std::size_t I = 0; I < Limbs.size(); ++I) {
    DoubleLimb Shifted = static_cast<DoubleLimb>(Limbs[I]) << BitShift;
    Result.Limbs[I + LimbShift] |= static_cast<Limb>(Shifted & 0xffffffffULL);
    Result.Limbs[I + LimbShift + 1] |= static_cast<Limb>(Shifted >> 32);
  }
  Result.trim();
  return Result;
}

BigInt BigInt::shr(unsigned Bits) const {
  if (Limbs.empty() || Bits == 0)
    return *this;
  unsigned LimbShift = Bits / LimbBits;
  unsigned BitShift = Bits % LimbBits;
  if (LimbShift >= Limbs.size())
    return BigInt();
  BigInt Result;
  Result.Negative = Negative;
  Result.Limbs.assign(Limbs.size() - LimbShift, 0);
  for (std::size_t I = 0; I < Result.Limbs.size(); ++I) {
    DoubleLimb Cur = static_cast<DoubleLimb>(Limbs[I + LimbShift]) >> BitShift;
    if (BitShift && I + LimbShift + 1 < Limbs.size())
      Cur |= static_cast<DoubleLimb>(Limbs[I + LimbShift + 1])
             << (32 - BitShift);
    Result.Limbs[I] = static_cast<Limb>(Cur & 0xffffffffULL);
  }
  Result.trim();
  return Result;
}

BigInt BigInt::gcd(const BigInt &A, const BigInt &B) {
  BigInt X = A.abs(), Y = B.abs();
  while (!Y.isZero()) {
    BigInt R = X % Y;
    X = Y;
    Y = R;
  }
  return X;
}

BigInt BigInt::pow(const BigInt &Base, unsigned Exp) {
  BigInt Result(1), Acc = Base;
  while (Exp) {
    if (Exp & 1)
      Result *= Acc;
    Exp >>= 1;
    if (Exp)
      Acc *= Acc;
  }
  return Result;
}

int BigInt::compare(const BigInt &RHS) const {
  if (Negative != RHS.Negative)
    return Negative ? -1 : 1;
  int MagCmp = compareMagnitude(Limbs, RHS.Limbs);
  return Negative ? -MagCmp : MagCmp;
}

bool BigInt::fromString(const std::string &Text, BigInt &Out) {
  std::size_t Pos = 0;
  bool Neg = false;
  if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+')) {
    Neg = Text[Pos] == '-';
    ++Pos;
  }
  if (Pos >= Text.size())
    return false;

  BigInt Result;
  const BigInt Chunk(1000000000);
  // Consume digits in 9-digit groups: value = value * 10^k + group.
  while (Pos < Text.size()) {
    std::size_t GroupLen = std::min<std::size_t>(9, Text.size() - Pos);
    uint32_t Group = 0;
    for (std::size_t I = 0; I < GroupLen; ++I) {
      char C = Text[Pos + I];
      if (C < '0' || C > '9')
        return false;
      Group = Group * 10 + static_cast<uint32_t>(C - '0');
    }
    BigInt Scale =
        GroupLen == 9 ? Chunk : BigInt(static_cast<int64_t>(
                                    std::pow(10.0, static_cast<double>(GroupLen))));
    Result = Result * Scale + BigInt(static_cast<int64_t>(Group));
    Pos += GroupLen;
  }
  if (Neg && !Result.Limbs.empty())
    Result.Negative = true;
  Out = Result;
  return true;
}

std::string BigInt::toString() const {
  if (Limbs.empty())
    return "0";
  std::vector<Limb> Mag = Limbs;
  std::string Digits;
  // Peel 9 decimal digits at a time by dividing by 10^9.
  while (!Mag.empty()) {
    DoubleLimb Rem = 0;
    for (std::size_t I = Mag.size(); I-- > 0;) {
      DoubleLimb Cur = (Rem << 32) | Mag[I];
      Mag[I] = static_cast<Limb>(Cur / 1000000000ULL);
      Rem = Cur % 1000000000ULL;
    }
    while (!Mag.empty() && Mag.back() == 0)
      Mag.pop_back();
    for (int I = 0; I < 9; ++I) {
      Digits.push_back(static_cast<char>('0' + Rem % 10));
      Rem /= 10;
    }
  }
  while (Digits.size() > 1 && Digits.back() == '0')
    Digits.pop_back();
  if (Negative)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

std::size_t BigInt::hash() const {
  std::size_t Seed = Negative ? 0x5bd1e995u : 0x42u;
  for (Limb L : Limbs)
    Seed = hashCombine(Seed, static_cast<std::size_t>(L));
  return Seed;
}
