//===----------------------------------------------------------------------===//
///
/// \file
/// BigInt arithmetic: an inline int64 fast path (overflow detected with the
/// `__builtin_*_overflow` intrinsics, widened through __int128 on spill)
/// over sign-magnitude bignum arithmetic on 32-bit limbs — schoolbook
/// multiplication and Knuth Algorithm D division. The representation is
/// canonical: values are inline iff they fit int64_t.
///
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include "support/Error.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace mcnk;

namespace {

/// True if the signed value (Neg, Mag) is representable as int64_t.
bool magFitsInt64(bool Neg, uint64_t Mag) {
  return Mag <= static_cast<uint64_t>(INT64_MAX) ||
         (Neg && Mag == static_cast<uint64_t>(INT64_MAX) + 1);
}

int64_t magToInt64(bool Neg, uint64_t Mag) {
  return Neg ? static_cast<int64_t>(~Mag + 1) : static_cast<int64_t>(Mag);
}

void pushMagnitude(std::vector<uint32_t> &Limbs, uint64_t Mag) {
  if (Mag != 0)
    Limbs.push_back(static_cast<uint32_t>(Mag & 0xffffffffULL));
  if (Mag >> 32)
    Limbs.push_back(static_cast<uint32_t>(Mag >> 32));
}

} // namespace

BigInt BigInt::fromMagnitude(bool Neg, uint64_t Mag) {
  BigInt Result;
  if (magFitsInt64(Neg, Mag)) {
    Result.Small = magToInt64(Neg, Mag);
    return Result;
  }
  Result.SmallRep = false;
  Result.Negative = Neg;
  pushMagnitude(Result.Limbs, Mag);
  return Result;
}

BigInt BigInt::fromInt128(__int128 Value) {
  if (Value >= INT64_MIN && Value <= INT64_MAX)
    return BigInt(static_cast<int64_t>(Value));
  BigInt Result;
  Result.SmallRep = false;
  Result.Negative = Value < 0;
  unsigned __int128 Mag =
      Result.Negative ? ~static_cast<unsigned __int128>(Value) + 1
                      : static_cast<unsigned __int128>(Value);
  while (Mag) {
    Result.Limbs.push_back(static_cast<Limb>(Mag & 0xffffffffULL));
    Mag >>= 32;
  }
  return Result;
}

BigInt BigInt::fromUnsigned(uint64_t Value) {
  return fromMagnitude(false, Value);
}

const std::vector<BigInt::Limb> &
BigInt::magLimbs(std::vector<Limb> &Scratch) const {
  if (!SmallRep)
    return Limbs;
  Scratch.clear();
  pushMagnitude(Scratch, magnitudeOf(Small));
  return Scratch;
}

void BigInt::canonicalize() {
  if (SmallRep)
    return;
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
  if (Limbs.size() > 2)
    return;
  uint64_t Mag = 0;
  if (Limbs.size() > 0)
    Mag = Limbs[0];
  if (Limbs.size() > 1)
    Mag |= static_cast<uint64_t>(Limbs[1]) << 32;
  if (!magFitsInt64(Negative, Mag))
    return;
  Small = magToInt64(Negative, Mag);
  SmallRep = true;
  Negative = false;
  Limbs.clear();
}

unsigned BigInt::bitLength() const {
  if (SmallRep) {
    if (Small == 0)
      return 0;
    return 64u - static_cast<unsigned>(__builtin_clzll(magnitudeOf(Small)));
  }
  unsigned TopBits = 32 - __builtin_clz(Limbs.back());
  return static_cast<unsigned>(Limbs.size() - 1) * LimbBits + TopBits;
}

int64_t BigInt::toInt64() const {
  assert(fitsInt64() && "BigInt does not fit in int64_t");
  return Small;
}

uint64_t BigInt::modU64(uint64_t Mod) const {
  assert(Mod != 0 && "modulus must be nonzero");
  if (SmallRep)
    return magnitudeOf(Small) % Mod;
  // Horner over the limbs, most-significant first: r = (r·2^32 + limb) % Mod.
  unsigned __int128 R = 0;
  for (std::size_t I = Limbs.size(); I-- > 0;)
    R = ((R << LimbBits) | Limbs[I]) % Mod;
  return static_cast<uint64_t>(R);
}

std::vector<uint64_t> BigInt::magnitudeLimbs64() const {
  std::vector<uint64_t> Out;
  if (SmallRep) {
    if (uint64_t Mag = magnitudeOf(Small))
      Out.push_back(Mag);
    return Out;
  }
  Out.reserve((Limbs.size() + 1) / 2);
  for (std::size_t I = 0; I < Limbs.size(); I += 2) {
    uint64_t Word = Limbs[I];
    if (I + 1 < Limbs.size())
      Word |= static_cast<uint64_t>(Limbs[I + 1]) << LimbBits;
    Out.push_back(Word);
  }
  return Out;
}

BigInt BigInt::fromLimbs64(bool Negative,
                           const std::vector<uint64_t> &Limbs64) {
  BigInt Result;
  Result.SmallRep = false;
  Result.Negative = Negative;
  Result.Limbs.reserve(Limbs64.size() * 2);
  for (uint64_t Word : Limbs64) {
    Result.Limbs.push_back(static_cast<Limb>(Word));
    Result.Limbs.push_back(static_cast<Limb>(Word >> LimbBits));
  }
  Result.canonicalize();
  return Result;
}

double BigInt::toDouble() const {
  if (SmallRep)
    return static_cast<double>(Small);
  // Sum the top three limbs (>= 65 significant bits, more than a double's
  // mantissa); lower limbs contribute less than half an ulp.
  double Result = 0.0;
  std::size_t Top = Limbs.size();
  std::size_t Stop = Top >= 3 ? Top - 3 : 0;
  for (std::size_t I = Top; I-- > Stop;)
    Result += std::ldexp(static_cast<double>(Limbs[I]),
                         static_cast<int>(I) * static_cast<int>(LimbBits));
  return Negative ? -Result : Result;
}

int BigInt::compareMagnitude(const std::vector<Limb> &A,
                             const std::vector<Limb> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (std::size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

std::vector<BigInt::Limb> BigInt::addMagnitude(const std::vector<Limb> &A,
                                               const std::vector<Limb> &B) {
  const std::vector<Limb> &Long = A.size() >= B.size() ? A : B;
  const std::vector<Limb> &Short = A.size() >= B.size() ? B : A;
  std::vector<Limb> Result;
  Result.reserve(Long.size() + 1);
  DoubleLimb Carry = 0;
  for (std::size_t I = 0; I < Long.size(); ++I) {
    DoubleLimb Sum = Carry + Long[I];
    if (I < Short.size())
      Sum += Short[I];
    Result.push_back(static_cast<Limb>(Sum & 0xffffffffULL));
    Carry = Sum >> 32;
  }
  if (Carry)
    Result.push_back(static_cast<Limb>(Carry));
  return Result;
}

void BigInt::addMagnitudeInPlace(std::vector<Limb> &A,
                                 const std::vector<Limb> &B) {
  assert(&A != &B && "aliased in-place add");
  if (B.size() > A.size())
    A.resize(B.size(), 0);
  DoubleLimb Carry = 0;
  for (std::size_t I = 0; I < A.size(); ++I) {
    DoubleLimb Sum = Carry + A[I];
    if (I < B.size())
      Sum += B[I];
    else if (Carry == 0)
      return; // Past B with no carry: the remaining limbs are unchanged.
    A[I] = static_cast<Limb>(Sum & 0xffffffffULL);
    Carry = Sum >> 32;
  }
  if (Carry)
    A.push_back(static_cast<Limb>(Carry));
}

std::vector<BigInt::Limb> BigInt::subMagnitude(const std::vector<Limb> &A,
                                               const std::vector<Limb> &B) {
  assert(compareMagnitude(A, B) >= 0 && "subMagnitude requires |A| >= |B|");
  std::vector<Limb> Result;
  Result.reserve(A.size());
  int64_t Borrow = 0;
  for (std::size_t I = 0; I < A.size(); ++I) {
    int64_t Diff = static_cast<int64_t>(A[I]) - Borrow -
                   (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
    if (Diff < 0) {
      Diff += (1LL << 32);
      Borrow = 1;
    } else {
      Borrow = 0;
    }
    Result.push_back(static_cast<Limb>(Diff));
  }
  assert(Borrow == 0 && "underflow in subMagnitude");
  while (!Result.empty() && Result.back() == 0)
    Result.pop_back();
  return Result;
}

void BigInt::subMagnitudeInPlace(std::vector<Limb> &A,
                                 const std::vector<Limb> &B) {
  assert(&A != &B && "aliased in-place sub");
  assert(compareMagnitude(A, B) >= 0 && "subMagnitude requires |A| >= |B|");
  int64_t Borrow = 0;
  for (std::size_t I = 0; I < A.size(); ++I) {
    if (I >= B.size() && Borrow == 0)
      break; // Past B with no borrow: the remaining limbs are unchanged.
    int64_t Diff = static_cast<int64_t>(A[I]) - Borrow -
                   (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
    if (Diff < 0) {
      Diff += (1LL << 32);
      Borrow = 1;
    } else {
      Borrow = 0;
    }
    A[I] = static_cast<Limb>(Diff);
  }
  assert(Borrow == 0 && "underflow in subMagnitudeInPlace");
  while (!A.empty() && A.back() == 0)
    A.pop_back();
}

std::vector<BigInt::Limb> BigInt::mulMagnitude(const std::vector<Limb> &A,
                                               const std::vector<Limb> &B) {
  if (A.empty() || B.empty())
    return {};
  std::vector<Limb> Result(A.size() + B.size(), 0);
  for (std::size_t I = 0; I < A.size(); ++I) {
    DoubleLimb Carry = 0;
    DoubleLimb AV = A[I];
    for (std::size_t J = 0; J < B.size(); ++J) {
      DoubleLimb Cur = Result[I + J] + AV * B[J] + Carry;
      Result[I + J] = static_cast<Limb>(Cur & 0xffffffffULL);
      Carry = Cur >> 32;
    }
    std::size_t K = I + B.size();
    while (Carry) {
      DoubleLimb Cur = Result[K] + Carry;
      Result[K] = static_cast<Limb>(Cur & 0xffffffffULL);
      Carry = Cur >> 32;
      ++K;
    }
  }
  while (!Result.empty() && Result.back() == 0)
    Result.pop_back();
  return Result;
}

void BigInt::divModMagnitude(const std::vector<Limb> &A,
                             const std::vector<Limb> &B, std::vector<Limb> &Q,
                             std::vector<Limb> &R) {
  assert(!B.empty() && "division by zero");
  Q.clear();
  R.clear();
  if (compareMagnitude(A, B) < 0) {
    R = A;
    return;
  }

  // Fast path: single-limb divisor.
  if (B.size() == 1) {
    DoubleLimb Den = B[0];
    Q.assign(A.size(), 0);
    DoubleLimb Rem = 0;
    for (std::size_t I = A.size(); I-- > 0;) {
      DoubleLimb Cur = (Rem << 32) | A[I];
      Q[I] = static_cast<Limb>(Cur / Den);
      Rem = Cur % Den;
    }
    while (!Q.empty() && Q.back() == 0)
      Q.pop_back();
    if (Rem != 0)
      R.push_back(static_cast<Limb>(Rem));
    return;
  }

  // Knuth TAOCP vol. 2, Algorithm D. Normalize so that the divisor's top
  // limb has its high bit set.
  unsigned Shift = __builtin_clz(B.back());
  std::size_t N = B.size();
  std::size_t M = A.size() - N;

  std::vector<Limb> V(N);
  for (std::size_t I = N; I-- > 0;) {
    V[I] = B[I] << Shift;
    if (Shift && I > 0)
      V[I] |= static_cast<Limb>(static_cast<DoubleLimb>(B[I - 1]) >>
                                (32 - Shift));
  }

  std::vector<Limb> U(A.size() + 1, 0);
  U[A.size()] =
      Shift ? static_cast<Limb>(static_cast<DoubleLimb>(A.back()) >>
                                (32 - Shift))
            : 0;
  for (std::size_t I = A.size(); I-- > 0;) {
    U[I] = A[I] << Shift;
    if (Shift && I > 0)
      U[I] |= static_cast<Limb>(static_cast<DoubleLimb>(A[I - 1]) >>
                                (32 - Shift));
  }

  Q.assign(M + 1, 0);
  const DoubleLimb Base = 1ULL << 32;
  for (std::size_t J = M + 1; J-- > 0;) {
    // Estimate the quotient limb from the top two limbs of the current
    // remainder prefix against the top limb of the divisor.
    DoubleLimb Top = (static_cast<DoubleLimb>(U[J + N]) << 32) | U[J + N - 1];
    DoubleLimb QHat = Top / V[N - 1];
    DoubleLimb RHat = Top % V[N - 1];
    while (QHat >= Base ||
           QHat * V[N - 2] > ((RHat << 32) | U[J + N - 2])) {
      --QHat;
      RHat += V[N - 1];
      if (RHat >= Base)
        break;
    }

    // Multiply-subtract QHat * V from U[J .. J+N].
    int64_t Borrow = 0;
    DoubleLimb Carry = 0;
    for (std::size_t I = 0; I < N; ++I) {
      DoubleLimb Prod = QHat * V[I] + Carry;
      Carry = Prod >> 32;
      int64_t Diff = static_cast<int64_t>(U[I + J]) -
                     static_cast<int64_t>(Prod & 0xffffffffULL) - Borrow;
      if (Diff < 0) {
        Diff += static_cast<int64_t>(Base);
        Borrow = 1;
      } else {
        Borrow = 0;
      }
      U[I + J] = static_cast<Limb>(Diff);
    }
    int64_t TopDiff = static_cast<int64_t>(U[J + N]) -
                      static_cast<int64_t>(Carry) - Borrow;
    if (TopDiff < 0) {
      // QHat was one too large; add the divisor back.
      TopDiff += static_cast<int64_t>(Base);
      --QHat;
      DoubleLimb AddCarry = 0;
      for (std::size_t I = 0; I < N; ++I) {
        DoubleLimb Sum =
            static_cast<DoubleLimb>(U[I + J]) + V[I] + AddCarry;
        U[I + J] = static_cast<Limb>(Sum & 0xffffffffULL);
        AddCarry = Sum >> 32;
      }
      TopDiff += static_cast<int64_t>(AddCarry);
      TopDiff &= static_cast<int64_t>(Base - 1);
    }
    U[J + N] = static_cast<Limb>(TopDiff);
    Q[J] = static_cast<Limb>(QHat);
  }

  while (!Q.empty() && Q.back() == 0)
    Q.pop_back();

  // Denormalize the remainder (low N limbs of U, shifted back).
  R.assign(N, 0);
  for (std::size_t I = 0; I < N; ++I) {
    R[I] = U[I] >> Shift;
    if (Shift && I + 1 < U.size())
      R[I] |= static_cast<Limb>(static_cast<DoubleLimb>(U[I + 1])
                                << (32 - Shift));
  }
  while (!R.empty() && R.back() == 0)
    R.pop_back();
}

BigInt BigInt::operator-() const {
  if (SmallRep) {
    if (Small == INT64_MIN)
      return fromMagnitude(false, magnitudeOf(Small));
    return BigInt(-Small);
  }
  BigInt Result = *this;
  Result.Negative = !Result.Negative;
  Result.canonicalize(); // -(2^63) demotes to INT64_MIN.
  return Result;
}

BigInt BigInt::abs() const {
  if (SmallRep)
    return Small < 0 ? -*this : *this;
  BigInt Result = *this;
  Result.Negative = false;
  return Result; // |big| never fits int64 when the value was positive-wide.
}

void BigInt::addInPlace(const BigInt &RHS, bool NegateRHS) {
  if (SmallRep && RHS.SmallRep) {
    int64_t Result;
    bool Overflow = NegateRHS
                        ? __builtin_sub_overflow(Small, RHS.Small, &Result)
                        : __builtin_add_overflow(Small, RHS.Small, &Result);
    if (!Overflow) {
      Small = Result;
      return;
    }
    __int128 Wide = NegateRHS
                        ? static_cast<__int128>(Small) - RHS.Small
                        : static_cast<__int128>(Small) + RHS.Small;
    *this = fromInt128(Wide);
    return;
  }
  if (this == &RHS) { // Aliased big self-add; take the copying path.
    BigInt Copy = RHS;
    addInPlace(Copy, NegateRHS);
    return;
  }
  bool BNeg = NegateRHS != RHS.isNegative();
  if (!SmallRep) {
    std::vector<Limb> Scratch;
    const std::vector<Limb> &B = RHS.magLimbs(Scratch);
    if (Negative == BNeg) {
      addMagnitudeInPlace(Limbs, B); // Magnitude only grows: stays big.
      return;
    }
    if (compareMagnitude(Limbs, B) >= 0) {
      subMagnitudeInPlace(Limbs, B);
    } else {
      Limbs = subMagnitude(B, Limbs);
      Negative = BNeg;
    }
    canonicalize();
    return;
  }
  // Small += big: the result is dominated by RHS's magnitude.
  *this = addSigned(*this, RHS, NegateRHS);
}

BigInt BigInt::addSigned(const BigInt &A, const BigInt &B, bool NegateB) {
  std::vector<Limb> SA, SB;
  const std::vector<Limb> &AL = A.magLimbs(SA);
  const std::vector<Limb> &BL = B.magLimbs(SB);
  bool ANeg = A.isNegative();
  bool BNeg = NegateB != B.isNegative();
  BigInt Result;
  Result.SmallRep = false;
  if (ANeg == BNeg) {
    Result.Limbs = addMagnitude(AL, BL);
    Result.Negative = ANeg;
  } else if (compareMagnitude(AL, BL) >= 0) {
    Result.Limbs = subMagnitude(AL, BL);
    Result.Negative = ANeg;
  } else {
    Result.Limbs = subMagnitude(BL, AL);
    Result.Negative = BNeg;
  }
  Result.canonicalize();
  return Result;
}

BigInt BigInt::operator+(const BigInt &RHS) const {
  if (SmallRep && RHS.SmallRep) {
    int64_t Result;
    if (!__builtin_add_overflow(Small, RHS.Small, &Result))
      return BigInt(Result);
    return fromInt128(static_cast<__int128>(Small) + RHS.Small);
  }
  return addSigned(*this, RHS, /*NegateB=*/false);
}

BigInt BigInt::operator-(const BigInt &RHS) const {
  if (SmallRep && RHS.SmallRep) {
    int64_t Result;
    if (!__builtin_sub_overflow(Small, RHS.Small, &Result))
      return BigInt(Result);
    return fromInt128(static_cast<__int128>(Small) - RHS.Small);
  }
  return addSigned(*this, RHS, /*NegateB=*/true);
}

BigInt BigInt::operator*(const BigInt &RHS) const {
  if (SmallRep && RHS.SmallRep) {
    int64_t Result;
    if (!__builtin_mul_overflow(Small, RHS.Small, &Result))
      return BigInt(Result);
    return fromInt128(static_cast<__int128>(Small) * RHS.Small);
  }
  std::vector<Limb> SA, SB;
  const std::vector<Limb> &A = magLimbs(SA);
  const std::vector<Limb> &B = RHS.magLimbs(SB);
  BigInt Result;
  Result.SmallRep = false;
  Result.Limbs = mulMagnitude(A, B);
  Result.Negative = isNegative() != RHS.isNegative();
  Result.canonicalize(); // big * 0 or big * ∓1 can land back in int64.
  return Result;
}

BigInt &BigInt::operator*=(const BigInt &RHS) {
  if (SmallRep && RHS.SmallRep) {
    int64_t Result;
    if (!__builtin_mul_overflow(Small, RHS.Small, &Result)) {
      Small = Result;
      return *this;
    }
    return *this = fromInt128(static_cast<__int128>(Small) * RHS.Small);
  }
  // Schoolbook multiplication needs a separate output buffer.
  return *this = *this * RHS;
}

std::pair<BigInt, BigInt> BigInt::divMod(const BigInt &Num,
                                         const BigInt &Den) {
  assert(!Den.isZero() && "BigInt division by zero");
  if (Num.SmallRep && Den.SmallRep) {
    if (Num.Small == INT64_MIN && Den.Small == -1)
      return {fromMagnitude(false, magnitudeOf(INT64_MIN)), BigInt(0)};
    return {BigInt(Num.Small / Den.Small), BigInt(Num.Small % Den.Small)};
  }
  std::vector<Limb> SA, SB;
  const std::vector<Limb> &A = Num.magLimbs(SA);
  const std::vector<Limb> &B = Den.magLimbs(SB);
  BigInt Q, R;
  Q.SmallRep = false;
  R.SmallRep = false;
  divModMagnitude(A, B, Q.Limbs, R.Limbs);
  Q.Negative = !Q.Limbs.empty() && (Num.isNegative() != Den.isNegative());
  R.Negative = !R.Limbs.empty() && Num.isNegative();
  Q.canonicalize();
  R.canonicalize();
  return {std::move(Q), std::move(R)};
}

BigInt BigInt::operator/(const BigInt &RHS) const {
  return divMod(*this, RHS).first;
}

BigInt BigInt::operator%(const BigInt &RHS) const {
  return divMod(*this, RHS).second;
}

BigInt BigInt::shl(unsigned Bits) const {
  if (isZero() || Bits == 0)
    return *this;
  if (SmallRep) {
    uint64_t Mag = magnitudeOf(Small);
    unsigned Len = 64u - static_cast<unsigned>(__builtin_clzll(Mag));
    if (Len + Bits <= 63)
      return fromMagnitude(Small < 0, Mag << Bits);
  }
  std::vector<Limb> Scratch;
  const std::vector<Limb> &A = magLimbs(Scratch);
  unsigned LimbShift = Bits / LimbBits;
  unsigned BitShift = Bits % LimbBits;
  BigInt Result;
  Result.SmallRep = false;
  Result.Negative = isNegative();
  Result.Limbs.assign(A.size() + LimbShift + 1, 0);
  for (std::size_t I = 0; I < A.size(); ++I) {
    DoubleLimb Shifted = static_cast<DoubleLimb>(A[I]) << BitShift;
    Result.Limbs[I + LimbShift] |= static_cast<Limb>(Shifted & 0xffffffffULL);
    Result.Limbs[I + LimbShift + 1] |= static_cast<Limb>(Shifted >> 32);
  }
  Result.canonicalize();
  return Result;
}

BigInt BigInt::shr(unsigned Bits) const {
  if (isZero() || Bits == 0)
    return *this;
  if (SmallRep) {
    uint64_t Mag = magnitudeOf(Small);
    uint64_t Shifted = Bits >= 64 ? 0 : Mag >> Bits;
    return fromMagnitude(Small < 0 && Shifted != 0, Shifted);
  }
  unsigned LimbShift = Bits / LimbBits;
  unsigned BitShift = Bits % LimbBits;
  if (LimbShift >= Limbs.size())
    return BigInt();
  BigInt Result;
  Result.SmallRep = false;
  Result.Negative = Negative;
  Result.Limbs.assign(Limbs.size() - LimbShift, 0);
  for (std::size_t I = 0; I < Result.Limbs.size(); ++I) {
    DoubleLimb Cur = static_cast<DoubleLimb>(Limbs[I + LimbShift]) >> BitShift;
    if (BitShift && I + LimbShift + 1 < Limbs.size())
      Cur |= static_cast<DoubleLimb>(Limbs[I + LimbShift + 1])
             << (32 - BitShift);
    Result.Limbs[I] = static_cast<Limb>(Cur & 0xffffffffULL);
  }
  Result.canonicalize();
  return Result;
}

uint64_t BigInt::gcdU64(uint64_t A, uint64_t B) {
  if (A == 0)
    return B;
  if (B == 0)
    return A;
  unsigned AZeros = static_cast<unsigned>(__builtin_ctzll(A));
  unsigned BZeros = static_cast<unsigned>(__builtin_ctzll(B));
  unsigned CommonShift = AZeros < BZeros ? AZeros : BZeros;
  A >>= AZeros;
  do {
    B >>= __builtin_ctzll(B);
    if (A > B)
      std::swap(A, B);
    B -= A;
  } while (B != 0);
  return A << CommonShift;
}

BigInt BigInt::gcd(const BigInt &A, const BigInt &B) {
  BigInt X = A.abs(), Y = B.abs();
  while (!Y.isZero()) {
    if (X.SmallRep && Y.SmallRep)
      return fromMagnitude(
          false, gcdU64(magnitudeOf(X.Small), magnitudeOf(Y.Small)));
    BigInt R = X % Y;
    X = std::move(Y);
    Y = std::move(R);
  }
  return X; // Non-negative: abs seeds, and remainders keep the sign of
            // their (non-negative) dividends.
}

BigInt BigInt::pow(const BigInt &Base, unsigned Exp) {
  // Overflow guard: the result has ~bitLength(Base) * Exp bits; refuse
  // runaway requests instead of allocating until the machine falls over.
  unsigned long long ResultBits =
      static_cast<unsigned long long>(Base.bitLength()) * Exp;
  assert(ResultBits <= MaxPowBits && "BigInt::pow result exceeds MaxPowBits");
  if (ResultBits > MaxPowBits)
    fatalError("BigInt::pow: result would exceed " +
               std::to_string(MaxPowBits) + " bits");
  BigInt Result(1), Acc = Base;
  while (Exp) {
    if (Exp & 1)
      Result *= Acc;
    Exp >>= 1;
    if (Exp)
      Acc *= Acc;
  }
  return Result;
}

int BigInt::compare(const BigInt &RHS) const {
  if (SmallRep && RHS.SmallRep)
    return Small < RHS.Small ? -1 : (Small > RHS.Small ? 1 : 0);
  // Mixed representations: by canonicality the big side's magnitude is
  // outside the int64 range, so its sign decides.
  if (SmallRep)
    return RHS.Negative ? 1 : -1;
  if (RHS.SmallRep)
    return Negative ? -1 : 1;
  if (Negative != RHS.Negative)
    return Negative ? -1 : 1;
  int MagCmp = compareMagnitude(Limbs, RHS.Limbs);
  return Negative ? -MagCmp : MagCmp;
}

bool BigInt::fromString(const std::string &Text, BigInt &Out) {
  std::size_t Pos = 0;
  bool Neg = false;
  if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+')) {
    Neg = Text[Pos] == '-';
    ++Pos;
  }
  if (Pos >= Text.size())
    return false;

  // Small fast path: up to 18 digits always fit int64.
  if (Text.size() - Pos <= 18) {
    int64_t Value = 0;
    for (; Pos < Text.size(); ++Pos) {
      char C = Text[Pos];
      if (C < '0' || C > '9')
        return false;
      Value = Value * 10 + (C - '0');
    }
    Out = BigInt(Neg ? -Value : Value);
    return true;
  }

  BigInt Result;
  const BigInt Chunk(1000000000);
  // Consume digits in 9-digit groups: value = value * 10^k + group.
  while (Pos < Text.size()) {
    std::size_t GroupLen = std::min<std::size_t>(9, Text.size() - Pos);
    int64_t Group = 0, Scale = 1;
    for (std::size_t I = 0; I < GroupLen; ++I) {
      char C = Text[Pos + I];
      if (C < '0' || C > '9')
        return false;
      Group = Group * 10 + (C - '0');
      Scale *= 10;
    }
    Result *= GroupLen == 9 ? Chunk : BigInt(Scale);
    Result += BigInt(Group);
    Pos += GroupLen;
  }
  Out = Neg ? -Result : Result;
  return true;
}

std::string BigInt::toString() const {
  if (SmallRep)
    return std::to_string(Small);
  std::vector<Limb> Mag = Limbs;
  std::string Digits;
  // Peel 9 decimal digits at a time by dividing by 10^9.
  while (!Mag.empty()) {
    DoubleLimb Rem = 0;
    for (std::size_t I = Mag.size(); I-- > 0;) {
      DoubleLimb Cur = (Rem << 32) | Mag[I];
      Mag[I] = static_cast<Limb>(Cur / 1000000000ULL);
      Rem = Cur % 1000000000ULL;
    }
    while (!Mag.empty() && Mag.back() == 0)
      Mag.pop_back();
    for (int I = 0; I < 9; ++I) {
      Digits.push_back(static_cast<char>('0' + Rem % 10));
      Rem /= 10;
    }
  }
  while (Digits.size() > 1 && Digits.back() == '0')
    Digits.pop_back();
  if (Negative)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

std::size_t BigInt::hash() const {
  if (SmallRep)
    return hashCombine(static_cast<std::size_t>(0x42u),
                       static_cast<std::size_t>(static_cast<uint64_t>(Small)));
  std::size_t Seed = Negative ? 0x5bd1e995u : 0x42u;
  for (Limb L : Limbs)
    Seed = hashCombine(Seed, static_cast<std::size_t>(L));
  return Seed;
}

std::size_t BigInt::numLimbs() const {
  if (!SmallRep)
    return Limbs.size();
  uint64_t Mag = magnitudeOf(Small);
  if (Mag == 0)
    return 0;
  return Mag >> 32 ? 2 : 1;
}
