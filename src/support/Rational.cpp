//===----------------------------------------------------------------------===//
///
/// \file
/// Normalized exact rational arithmetic (gcd-reduced, sign on the
/// numerator) over BigInt.
///
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include "support/Error.h"
#include "support/Hashing.h"

#include <cassert>
#include <cmath>

using namespace mcnk;

Rational::Rational(int64_t Numerator, int64_t Denominator)
    : Num(Numerator), Den(Denominator) {
  assert(Denominator != 0 && "Rational with zero denominator");
  normalize();
}

Rational::Rational(BigInt Numerator, BigInt Denominator)
    : Num(std::move(Numerator)), Den(std::move(Denominator)) {
  assert(!Den.isZero() && "Rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (Den.isNegative()) {
    Num = -Num;
    Den = -Den;
  }
  if (Num.isZero()) {
    Den = BigInt(1);
    return;
  }
  BigInt G = BigInt::gcd(Num, Den);
  if (!G.isOne()) {
    Num = Num / G;
    Den = Den / G;
  }
}

bool Rational::isProbability() const {
  return !Num.isNegative() && Num.compare(Den) <= 0;
}

Rational Rational::operator+(const Rational &RHS) const {
  return Rational(Num * RHS.Den + RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator-(const Rational &RHS) const {
  return Rational(Num * RHS.Den - RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator*(const Rational &RHS) const {
  return Rational(Num * RHS.Num, Den * RHS.Den);
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "Rational division by zero");
  return Rational(Num * RHS.Den, Den * RHS.Num);
}

Rational Rational::operator-() const { return Rational(-Num, Den); }

Rational Rational::reciprocal() const {
  assert(!isZero() && "reciprocal of zero");
  return Rational(Den, Num);
}

int Rational::compare(const Rational &RHS) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return (Num * RHS.Den).compare(RHS.Num * Den);
}

double Rational::toDouble() const {
  if (Num.isZero())
    return 0.0;
  // Scale so the integer quotient carries ~64 significant bits, then divide
  // exactly in BigInt and undo the scaling in the exponent.
  int Scale = static_cast<int>(Den.bitLength()) + 64 -
              static_cast<int>(Num.bitLength());
  BigInt ScaledNum = Scale > 0 ? Num.shl(static_cast<unsigned>(Scale)) : Num;
  BigInt ScaledDen =
      Scale < 0 ? Den.shl(static_cast<unsigned>(-Scale)) : Den;
  BigInt Quot = ScaledNum / ScaledDen;
  return std::ldexp(Quot.toDouble(), -Scale);
}

std::string Rational::toString() const {
  if (Den.isOne())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}

bool Rational::fromString(const std::string &Text, Rational &Out) {
  std::size_t Slash = Text.find('/');
  if (Slash == std::string::npos) {
    BigInt N;
    if (!BigInt::fromString(Text, N))
      return false;
    Out = Rational(std::move(N), BigInt(1));
    return true;
  }
  BigInt N, D;
  if (!BigInt::fromString(Text.substr(0, Slash), N) ||
      !BigInt::fromString(Text.substr(Slash + 1), D) || D.isZero())
    return false;
  Out = Rational(std::move(N), std::move(D));
  return true;
}

Rational Rational::fromDouble(double Value) {
  assert(std::isfinite(Value) && "fromDouble requires a finite value");
  if (Value == 0.0)
    return Rational();
  int Exp = 0;
  double Mantissa = std::frexp(Value, &Exp); // Value = Mantissa * 2^Exp.
  // Scale the mantissa to a 53-bit integer; the result is exact.
  int64_t Scaled = static_cast<int64_t>(std::ldexp(Mantissa, 53));
  Exp -= 53;
  BigInt Num(Scaled);
  if (Exp >= 0)
    return Rational(Num.shl(static_cast<unsigned>(Exp)), BigInt(1));
  return Rational(std::move(Num), BigInt(1).shl(static_cast<unsigned>(-Exp)));
}

std::size_t Rational::hash() const {
  return hashCombine(Num.hash(), Den.hash());
}
