//===----------------------------------------------------------------------===//
///
/// \file
/// Normalized exact rational arithmetic (gcd-reduced, sign on the
/// numerator). Every operation first attempts a pure int64 fast path —
/// binary GCD normalization, cross-reduction before multiplying, overflow
/// detected with the `__builtin_*_overflow` intrinsics and __int128
/// intermediates — and falls back to BigInt limb arithmetic only when a
/// result leaves the word-sized range.
///
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include "support/Error.h"
#include "support/Hashing.h"

#include <cassert>
#include <cmath>

using namespace mcnk;

namespace {

uint64_t magnitudeOf(int64_t Value) { return BigInt::magnitudeOf(Value); }

/// Composes a sign and magnitude into int64 if representable.
bool composeInt64(bool Neg, uint64_t Mag, int64_t &Out) {
  if (Mag <= static_cast<uint64_t>(INT64_MAX)) {
    Out = Neg ? -static_cast<int64_t>(Mag) : static_cast<int64_t>(Mag);
    return true;
  }
  if (Neg && Mag == static_cast<uint64_t>(INT64_MAX) + 1) {
    Out = INT64_MIN;
    return true;
  }
  return false;
}

/// ON/OD = AN/AD ± BN/BD in pure word arithmetic (GMP-style: reduce by
/// gcd(AD, BD) before cross-multiplying, then by gcd(t, g) after). Inputs
/// must be normalized (AD, BD > 0, fractions in lowest terms); the output
/// is normalized. Returns false when any step leaves the int64 range.
bool smallAddSub(int64_t AN, int64_t AD, int64_t BN, int64_t BD, bool Negate,
                 int64_t &ON, int64_t &OD) {
  uint64_t ADu = static_cast<uint64_t>(AD), BDu = static_cast<uint64_t>(BD);
  uint64_t G = BigInt::gcdU64(ADu, BDu);
  // T = AN*(BD/G) ± BN*(AD/G); |T| < 2^127, so the sum is exact.
  __int128 T = static_cast<__int128>(AN) * static_cast<int64_t>(BDu / G);
  __int128 Cross = static_cast<__int128>(BN) * static_cast<int64_t>(ADu / G);
  T = Negate ? T - Cross : T + Cross;
  if (T == 0) {
    ON = 0;
    OD = 1;
    return true;
  }
  bool Neg = T < 0;
  unsigned __int128 MagT = Neg ? ~static_cast<unsigned __int128>(T) + 1
                               : static_cast<unsigned __int128>(T);
  // gcd(T, G) suffices to put T / (AD*(BD/G)) in lowest terms.
  uint64_t G2 =
      G == 1 ? 1 : BigInt::gcdU64(static_cast<uint64_t>(MagT % G), G);
  unsigned __int128 NumMag = MagT / G2;
  if (NumMag > static_cast<uint64_t>(INT64_MAX) + (Neg ? 1u : 0u))
    return false;
  uint64_t DenMag;
  if (__builtin_mul_overflow(ADu / G2, BDu / G, &DenMag))
    return false;
  if (DenMag > static_cast<uint64_t>(INT64_MAX))
    return false;
  OD = static_cast<int64_t>(DenMag);
  return composeInt64(Neg, static_cast<uint64_t>(NumMag), ON);
}

/// ON/OD = (AN/AD) * (BN/BD) with cross-reduction, so the product of two
/// normalized fractions is normalized without a final gcd. Returns false
/// when a product leaves the int64 range.
bool smallMul(int64_t AN, int64_t AD, int64_t BN, int64_t BD, int64_t &ON,
              int64_t &OD) {
  uint64_t G1 = BigInt::gcdU64(magnitudeOf(AN), static_cast<uint64_t>(BD));
  uint64_t G2 = BigInt::gcdU64(magnitudeOf(BN), static_cast<uint64_t>(AD));
  uint64_t NumMag, DenMag;
  if (__builtin_mul_overflow(magnitudeOf(AN) / G1, magnitudeOf(BN) / G2,
                             &NumMag))
    return false;
  if (__builtin_mul_overflow(static_cast<uint64_t>(AD) / G2,
                             static_cast<uint64_t>(BD) / G1, &DenMag))
    return false;
  if (DenMag > static_cast<uint64_t>(INT64_MAX))
    return false;
  bool Neg = (AN < 0) != (BN < 0) && NumMag != 0;
  OD = static_cast<int64_t>(DenMag);
  return composeInt64(Neg, NumMag, ON);
}

} // namespace

Rational::Rational(int64_t Numerator, int64_t Denominator)
    : Num(Numerator), Den(Denominator) {
  assert(Denominator != 0 && "Rational with zero denominator");
  normalize();
}

Rational::Rational(BigInt Numerator, BigInt Denominator)
    : Num(std::move(Numerator)), Den(std::move(Denominator)) {
  assert(!Den.isZero() && "Rational with zero denominator");
  normalize();
}

Rational Rational::fromCoprime(BigInt Numerator, BigInt Denominator) {
  assert(!Denominator.isZero() && !Denominator.isNegative() &&
         "fromCoprime requires a positive denominator");
  assert((!Numerator.isZero() || Denominator.isOne()) &&
         "canonical zero is 0/1");
  assert(BigInt::gcd(Numerator, Denominator).isOne() &&
         "fromCoprime requires a reduced fraction");
  Rational R;
  R.Num = std::move(Numerator);
  R.Den = std::move(Denominator);
  return R;
}

void Rational::normalize() {
  if (isSmallPair()) {
    int64_t N = Num.toInt64(), D = Den.toInt64();
    if (D < 0 && N != INT64_MIN && D != INT64_MIN) {
      N = -N;
      D = -D;
    }
    if (D > 0) {
      if (N == 0) {
        Num = BigInt(0);
        Den = BigInt(1);
        return;
      }
      uint64_t G = BigInt::gcdU64(magnitudeOf(N), static_cast<uint64_t>(D));
      if (G > 1) {
        N /= static_cast<int64_t>(G); // Exact: G divides both.
        D /= static_cast<int64_t>(G);
      }
      Num = BigInt(N);
      Den = BigInt(D);
      return;
    }
    // INT64_MIN corner cases fall through to the sign-safe BigInt path.
  }
  if (Den.isNegative()) {
    Num = -Num;
    Den = -Den;
  }
  if (Num.isZero()) {
    Den = BigInt(1);
    return;
  }
  BigInt G = BigInt::gcd(Num, Den);
  if (!G.isOne()) {
    Num /= G;
    Den /= G;
  }
}

bool Rational::isProbability() const {
  return !Num.isNegative() && Num.compare(Den) <= 0;
}

Rational &Rational::addSubAssign(const Rational &RHS, bool Negate) {
  if (isSmallPair() && RHS.isSmallPair()) {
    int64_t N, D;
    if (smallAddSub(Num.toInt64(), Den.toInt64(), RHS.Num.toInt64(),
                    RHS.Den.toInt64(), Negate, N, D)) {
      Num = BigInt(N);
      Den = BigInt(D);
      return *this;
    }
  }
  // BigInt path, in place: read the cross term before mutating Den so the
  // ordering is safe even when &RHS == this.
  //
  // When either operand is an integer the result is already reduced —
  // gcd(k·d ± n, d) = gcd(n, d) = 1 for canonical n/d — so the (multi-limb
  // gcd) normalization can be skipped. This is the hot case of rebuilding
  // FDD leaves from solved absorption entries, where drop mass is computed
  // as 1 minus a wide exact probability.
  bool AlreadyReduced = Den.isOne() || RHS.Den.isOne();
  BigInt Cross = RHS.Num * Den;
  Num *= RHS.Den;
  if (Negate)
    Num -= Cross;
  else
    Num += Cross;
  Den *= RHS.Den;
  if (AlreadyReduced) {
    // gcd(num, den) = 1 forces den = 1 whenever num = 0, so the result is
    // canonical as-is except for restoring the 0/1 form of zero.
    if (Num.isZero())
      Den = BigInt(1);
    return *this;
  }
  normalize();
  return *this;
}

Rational &Rational::operator*=(const Rational &RHS) {
  if (isSmallPair() && RHS.isSmallPair()) {
    int64_t N, D;
    if (smallMul(Num.toInt64(), Den.toInt64(), RHS.Num.toInt64(),
                 RHS.Den.toInt64(), N, D)) {
      Num = BigInt(N);
      Den = BigInt(D);
      return *this;
    }
  }
  Num *= RHS.Num;
  Den *= RHS.Den;
  normalize();
  return *this;
}

Rational &Rational::operator/=(const Rational &RHS) {
  assert(!RHS.isZero() && "Rational division by zero");
  if (isSmallPair() && RHS.isSmallPair()) {
    int64_t BN = RHS.Num.toInt64(), BD = RHS.Den.toInt64();
    if (BN != INT64_MIN && BN != 0) {
      // Invert RHS (still normalized; the sign moves to the numerator).
      int64_t N, D;
      if (smallMul(Num.toInt64(), Den.toInt64(), BN < 0 ? -BD : BD,
                   BN < 0 ? -BN : BN, N, D)) {
        Num = BigInt(N);
        Den = BigInt(D);
        return *this;
      }
    }
  }
  BigInt NewNum = Num * RHS.Den;
  BigInt NewDen = Den * RHS.Num;
  Num = std::move(NewNum);
  Den = std::move(NewDen);
  normalize();
  return *this;
}

Rational &Rational::mulAccumulate(const Rational &A, const Rational &B,
                                  bool Negate) {
  if (A.isSmallPair() && B.isSmallPair()) {
    int64_t PN, PD;
    if (smallMul(A.Num.toInt64(), A.Den.toInt64(), B.Num.toInt64(),
                 B.Den.toInt64(), PN, PD)) {
      if (isSmallPair()) {
        int64_t N, D;
        if (smallAddSub(Num.toInt64(), Den.toInt64(), PN, PD, Negate, N, D)) {
          Num = BigInt(N);
          Den = BigInt(D);
          return *this;
        }
      }
      Rational P;
      P.Num = BigInt(PN); // Already normalized by smallMul.
      P.Den = BigInt(PD);
      return addSubAssign(P, Negate);
    }
  }
  Rational P = A * B;
  return addSubAssign(P, Negate);
}

Rational Rational::operator-() const {
  Rational Result = *this;
  Result.Num = -Result.Num;
  return Result;
}

Rational Rational::reciprocal() const {
  assert(!isZero() && "reciprocal of zero");
  Rational Result;
  if (isNegative()) {
    Result.Num = -Den;
    Result.Den = -Num;
  } else {
    Result.Num = Den;
    Result.Den = Num;
  }
  return Result;
}

int Rational::compare(const Rational &RHS) const {
  // Denominators are positive, so cross-multiplication preserves order.
  if (isSmallPair() && RHS.isSmallPair()) {
    __int128 Lhs = static_cast<__int128>(Num.toInt64()) * RHS.Den.toInt64();
    __int128 Rhs = static_cast<__int128>(RHS.Num.toInt64()) * Den.toInt64();
    return Lhs < Rhs ? -1 : (Lhs > Rhs ? 1 : 0);
  }
  return (Num * RHS.Den).compare(RHS.Num * Den);
}

double Rational::toDouble() const {
  if (isSmallPair()) {
    int64_t N = Num.toInt64(), D = Den.toInt64();
    // Both operands exactly representable: one correctly-rounded division.
    if (N > -(1LL << 53) && N < (1LL << 53) && D < (1LL << 53))
      return static_cast<double>(N) / static_cast<double>(D);
  }
  if (Num.isZero())
    return 0.0;
  // Scale so the integer quotient carries ~64 significant bits, then divide
  // exactly in BigInt and undo the scaling in the exponent.
  int Scale = static_cast<int>(Den.bitLength()) + 64 -
              static_cast<int>(Num.bitLength());
  BigInt ScaledNum = Scale > 0 ? Num.shl(static_cast<unsigned>(Scale)) : Num;
  BigInt ScaledDen =
      Scale < 0 ? Den.shl(static_cast<unsigned>(-Scale)) : Den;
  BigInt Quot = ScaledNum / ScaledDen;
  return std::ldexp(Quot.toDouble(), -Scale);
}

std::string Rational::toString() const {
  if (Den.isOne())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}

bool Rational::fromString(const std::string &Text, Rational &Out) {
  std::size_t Slash = Text.find('/');
  if (Slash == std::string::npos) {
    BigInt N;
    if (!BigInt::fromString(Text, N))
      return false;
    Out = Rational(std::move(N), BigInt(1));
    return true;
  }
  BigInt N, D;
  if (!BigInt::fromString(Text.substr(0, Slash), N) ||
      !BigInt::fromString(Text.substr(Slash + 1), D) || D.isZero())
    return false;
  Out = Rational(std::move(N), std::move(D));
  return true;
}

Rational Rational::fromDouble(double Value) {
  assert(std::isfinite(Value) && "fromDouble requires a finite value");
  if (Value == 0.0)
    return Rational();
  int Exp = 0;
  double Mantissa = std::frexp(Value, &Exp); // Value = Mantissa * 2^Exp.
  // Scale the mantissa to a 53-bit integer; the result is exact.
  int64_t Scaled = static_cast<int64_t>(std::ldexp(Mantissa, 53));
  Exp -= 53;
  BigInt Num(Scaled);
  if (Exp >= 0)
    return Rational(Num.shl(static_cast<unsigned>(Exp)), BigInt(1));
  return Rational(std::move(Num), BigInt(1).shl(static_cast<unsigned>(-Exp)));
}

std::size_t Rational::hash() const {
  return hashCombine(Num.hash(), Den.hash());
}
