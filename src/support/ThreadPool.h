//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent worker-pool engine backing McNetKAT's parallelizing backend
/// (§6): the n-ary `case sw=i` construct compiles each switch program on a
/// separate worker and merges the resulting FDDs (map-reduce over
/// switches). One pool serves the whole pipeline: it is created once (per
/// process via global(), or per analysis::Verifier) and reused by every
/// compile instead of being torn down per `case` node.
///
/// The engine is *nestable*: a worker whose task waits — e.g. called
/// parallelFor — helps execute queued tasks inline instead of blocking, so
/// nested parallel sections scale instead of deadlocking or serializing.
/// External (non-worker) waiters simply block while the workers drain, so
/// a width-N pool never computes on more than N threads. Exceptions thrown
/// by tasks are captured and rethrown from the corresponding wait() (first
/// exception wins), never allowed to escape a worker thread and call
/// std::terminate.
///
/// A wait never returns while its target still has an unfinished task
/// other than those on the waiter's own call stack — a task may safely
/// wait on a target that (transitively) includes itself, draining the
/// rest. The scheduler does not detect mutual waits beyond that: two
/// *sibling* tasks that each wait on the same target, or a cycle across
/// different targets, deadlock rather than ever returning early (state
/// owned by a waiter must never be freed while a task still uses it).
/// The supported nesting pattern — each parallel section waits on its
/// own freshly created group, as parallelFor does — cannot form such
/// cycles.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_THREADPOOL_H
#define MCNK_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcnk {

class TaskGroup;

/// A fixed pool of worker threads executing queued tasks. Destruction
/// drains the queue: every task enqueued before the destructor runs still
/// executes (shutdown-while-busy completes rather than drops work).
class ThreadPool {
public:
  /// Spawns \p NumThreads workers (0 means hardware concurrency, min 1).
  explicit ThreadPool(unsigned NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// The process-lifetime pool (hardware concurrency), created on first
  /// use. The default engine when a caller does not supply its own.
  static ThreadPool &global();

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues a detached task. Calling this after shutdown has begun is a
  /// hard error in all build types (fatalError, not an assert).
  void enqueue(std::function<void()> Task);

  /// Blocks until every queued task (grouped or not) has finished (a
  /// worker calling this helps execute queued work inline). When called
  /// from outside the pool, rethrows the first exception captured from a
  /// *detached* task; a worker-side wait() leaves that error for the
  /// external observer. Exceptions from grouped tasks belong to their
  /// TaskGroup::wait().
  void wait();

  /// Runs Body(0..N-1) on the pool and blocks until all complete. Work is
  /// dispatched in blocked ranges (one task per chunk of indices, not one
  /// heap-allocated closure per index). Nests safely: a worker-side
  /// parallelFor helps execute pending chunks inline instead of blocking.
  /// Rethrows the first exception thrown by Body.
  void parallelFor(std::size_t N, const std::function<void(std::size_t)> &Body);

private:
  friend class TaskGroup;

  struct Entry {
    std::function<void()> Fn;
    TaskGroup *Group; // nullptr for detached tasks.
  };

  void pushTask(std::function<void()> Fn, TaskGroup *Group);
  /// Pops and runs one queued task (restricted to \p OnlyGroup when
  /// non-null). Returns false if no eligible task was queued. \p Lock must
  /// be held on entry and is held again on return.
  bool runOneTask(std::unique_lock<std::mutex> &Lock, TaskGroup *OnlyGroup);
  /// Helps until \p Group has no outstanding tasks; returns the group's
  /// first captured exception (cleared), if any.
  std::exception_ptr waitGroup(TaskGroup &Group);
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<Entry> Tasks;
  std::mutex Mutex;
  std::condition_variable TaskAvailable;
  /// Notified on every task completion (and on pushes, so helpers wake to
  /// claim nested work); wait()/waitGroup() re-check their predicates.
  std::condition_variable TaskDone;
  std::size_t Outstanding = 0; // Queued + running, across all groups.
  /// Threads currently asleep on TaskDone; pushes and completions skip
  /// the broadcast when nobody is listening.
  std::size_t SleepingWaiters = 0;
  std::exception_ptr DetachedError;
  bool ShuttingDown = false;
};

/// Tracks a batch of tasks so a caller can wait for exactly that batch.
/// When the waiter is one of the pool's workers, wait() helps execute the
/// group's queued tasks inline, which is what makes nested parallel
/// sections deadlock-free even on a 1-thread pool. The destructor waits
/// for stragglers (discarding any unconsumed error), so a group never
/// outlives tasks that reference it.
class TaskGroup {
public:
  explicit TaskGroup(ThreadPool &P) : Pool(P) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup &) = delete;
  TaskGroup &operator=(const TaskGroup &) = delete;

  /// Submits a task belonging to this group.
  void run(std::function<void()> Task);

  /// Blocks until every task run() through this group has finished (a
  /// worker calling this executes queued group tasks inline). Rethrows
  /// the first exception captured from the group's tasks.
  void wait();

private:
  friend class ThreadPool;

  ThreadPool &Pool;
  // State below is guarded by Pool.Mutex.
  std::size_t Outstanding = 0;
  std::exception_ptr FirstError;
};

} // namespace mcnk

#endif // MCNK_SUPPORT_THREADPOOL_H
