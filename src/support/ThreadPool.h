//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-size worker pool backing McNetKAT's parallelizing backend (§6): the
/// n-ary `case sw=i` construct compiles each switch program on a separate
/// worker and merges the resulting FDDs (map-reduce over switches).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_THREADPOOL_H
#define MCNK_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mcnk {

/// A fixed pool of worker threads executing queued tasks.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers (0 means hardware concurrency, min 1).
  explicit ThreadPool(unsigned NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues a task for asynchronous execution.
  void enqueue(std::function<void()> Task);

  /// Blocks until all enqueued tasks have finished.
  void wait();

  /// Runs Body(0..N-1) across the pool and blocks until all complete.
  void parallelFor(std::size_t N, const std::function<void(std::size_t)> &Body);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable TaskAvailable;
  std::condition_variable AllDone;
  std::size_t ActiveTasks = 0;
  bool ShuttingDown = false;
};

} // namespace mcnk

#endif // MCNK_SUPPORT_THREADPOOL_H
