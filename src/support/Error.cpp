//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting: print a diagnostic to stderr and abort.
///
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace mcnk;

namespace {
std::mutex ContextMutex;
std::string FatalContext;
} // namespace

void mcnk::setFatalErrorContext(const std::string &Note) {
  std::lock_guard<std::mutex> Lock(ContextMutex);
  FatalContext = Note;
}

void mcnk::fatalError(const std::string &Msg) {
  // Flush stdout first: batch runners print reproduction banners (seeds)
  // there, and abort() would otherwise discard the buffered lines.
  std::fflush(stdout);
  std::string Note;
  {
    std::lock_guard<std::mutex> Lock(ContextMutex);
    Note = FatalContext;
  }
  std::fprintf(stderr, "mcnetkat fatal error: %s\n", Msg.c_str());
  if (!Note.empty())
    std::fprintf(stderr, "mcnetkat fatal error context: %s\n", Note.c_str());
  std::abort();
}

void mcnk::unreachableInternal(const char *Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
