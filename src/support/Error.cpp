//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting: print a diagnostic to stderr and abort.
///
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace mcnk;

void mcnk::fatalError(const std::string &Msg) {
  std::fprintf(stderr, "mcnetkat fatal error: %s\n", Msg.c_str());
  std::abort();
}

void mcnk::unreachableInternal(const char *Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
