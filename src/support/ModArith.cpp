//===----------------------------------------------------------------------===//
///
/// \file
/// PrimeField (Montgomery arithmetic), the deterministic 62-bit prime
/// table, and the CRT / rational-reconstruction routines of the modular
/// exact solver. See support/ModArith.h and docs/ARCHITECTURE.md S14.
///
//===----------------------------------------------------------------------===//

#include "support/ModArith.h"

#include <cassert>
#include <cmath>
#include <mutex>
#include <vector>

namespace mcnk {

namespace {

/// a·b mod m without overflow (m < 2^64); setup-path helper — the solve
/// loops use Montgomery multiplication instead.
std::uint64_t mulModU64(std::uint64_t A, std::uint64_t B, std::uint64_t M) {
  return static_cast<std::uint64_t>(static_cast<unsigned __int128>(A) * B % M);
}

std::uint64_t powModU64(std::uint64_t Base, std::uint64_t Exp,
                        std::uint64_t M) {
  std::uint64_t Result = 1 % M;
  Base %= M;
  for (; Exp != 0; Exp >>= 1) {
    if (Exp & 1)
      Result = mulModU64(Result, Base, M);
    Base = mulModU64(Base, Base, M);
  }
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===//
// PrimeField
//===----------------------------------------------------------------------===//

PrimeField::PrimeField(std::uint64_t Prime) : P(Prime) {
  assert(Prime > 2 && (Prime & 1) != 0 && Prime < ModPrimeCeiling &&
         "PrimeField needs an odd prime below 2^62");
  // -p^{-1} mod 2^64 by Newton iteration: each step doubles the number of
  // correct low bits, and 5 steps from the odd seed p (3 correct bits)
  // cover all 64.
  std::uint64_t Inv = P;
  for (int I = 0; I < 5; ++I)
    Inv *= 2 - P * Inv;
  NegPInv = ~Inv + 1; // Inv == p^{-1} mod 2^64.
  // 2^64 mod p and 2^128 mod p via __int128 remainders (setup only).
  R1 = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(1) << 64) % P);
  R2 = mulModU64(R1, R1, P);
}

std::uint64_t PrimeField::pow(std::uint64_t A, std::uint64_t E) const {
  std::uint64_t Result = one();
  for (; E != 0; E >>= 1) {
    if (E & 1)
      Result = mul(Result, A);
    A = mul(A, A);
  }
  return Result;
}

std::uint64_t PrimeField::inv(std::uint64_t A) const {
  std::uint64_t X = decode(A);
  assert(X != 0 && "inverse of zero");
  // Extended Euclid on (p, x), tracking only the x-coefficient. All
  // Bezout coefficients stay below p < 2^62 in magnitude, so the int64
  // bookkeeping cannot overflow.
  std::uint64_t R0 = P, R1v = X;
  std::int64_t T0 = 0, T1 = 1;
  while (R1v != 0) {
    std::uint64_t Q = R0 / R1v;
    R0 -= Q * R1v;
    std::uint64_t TmpR = R0;
    R0 = R1v;
    R1v = TmpR;
    std::int64_t TmpT = T0 - static_cast<std::int64_t>(Q) * T1;
    T0 = T1;
    T1 = TmpT;
  }
  assert(R0 == 1 && "argument not invertible (modulus not prime?)");
  std::uint64_t Std =
      T0 < 0 ? static_cast<std::uint64_t>(T0 + static_cast<std::int64_t>(P))
             : static_cast<std::uint64_t>(T0);
  return encode(Std);
}

//===----------------------------------------------------------------------===//
// Deterministic prime table
//===----------------------------------------------------------------------===//

bool isPrimeU64(std::uint64_t N) {
  if (N < 2)
    return false;
  for (std::uint64_t Small : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                              19ull, 23ull, 29ull, 31ull, 37ull}) {
    if (N == Small)
      return true;
    if (N % Small == 0)
      return false;
  }
  // Miller-Rabin with the first twelve primes as bases: a proven
  // deterministic witness set for all N < 2^64 (Sorenson & Webster).
  std::uint64_t D = N - 1;
  unsigned S = 0;
  while ((D & 1) == 0) {
    D >>= 1;
    ++S;
  }
  for (std::uint64_t A : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t X = powModU64(A, D, N);
    if (X == 1 || X == N - 1)
      continue;
    bool Composite = true;
    for (unsigned I = 1; I < S; ++I) {
      X = mulModU64(X, X, N);
      if (X == N - 1) {
        Composite = false;
        break;
      }
    }
    if (Composite)
      return false;
  }
  return true;
}

std::uint64_t modPrime(std::size_t Index) {
  // Lazily extended, mutex-guarded (pool workers share the table), and
  // identical in every process: the walk below is pure arithmetic.
  static std::mutex TableMutex;
  static std::vector<std::uint64_t> Table;
  static std::uint64_t NextCandidate = ModPrimeCeiling - 1; // Odd.
  std::lock_guard<std::mutex> Lock(TableMutex);
  while (Table.size() <= Index) {
    while (!isPrimeU64(NextCandidate))
      NextCandidate -= 2;
    Table.push_back(NextCandidate);
    NextCandidate -= 2;
  }
  return Table[Index];
}

//===----------------------------------------------------------------------===//
// CRT and rational reconstruction
//===----------------------------------------------------------------------===//

bool rationalMod(const Rational &Value, const PrimeField &F,
                 std::uint64_t &Out) {
  std::uint64_t Den = Value.denominator().modU64(F.prime());
  if (Den == 0)
    return false; // Unlucky prime: p divides the denominator.
  std::uint64_t Num = Value.numerator().modU64(F.prime()); // Magnitude.
  if (Value.isNegative() && Num != 0)
    Num = F.prime() - Num;
  Out = F.decode(F.mul(F.encode(Num), F.inv(F.encode(Den))));
  return true;
}

BigInt isqrtBigInt(const BigInt &V) {
  assert(!V.isNegative() && "isqrt of a negative value");
  if (V.isZero() || V.isOne())
    return V;
  if (V.fitsInt64()) {
    // Word-sized fast path: start from the double estimate, fix up.
    std::uint64_t N = static_cast<std::uint64_t>(V.toInt64());
    std::uint64_t R =
        static_cast<std::uint64_t>(std::sqrt(static_cast<double>(N)));
    while (R > 0 && R > N / R)
      --R;
    while ((R + 1) <= N / (R + 1))
      ++R;
    return BigInt(static_cast<std::int64_t>(R));
  }
  // Newton iteration from an initial value >= sqrt(V) converges
  // monotonically downward; stop at the first non-decreasing step.
  BigInt X = BigInt(1).shl((V.bitLength() + 1) / 2);
  for (;;) {
    BigInt Y = (X + V / X).shr(1);
    if (Y >= X)
      return X;
    X = Y;
  }
}

namespace {

/// One Lehmer window (Knuth 4.5.2 Algorithm L): simulate the Euclidean
/// remainder sequence of (R0, R1) on the leading 62 bits with word-size
/// cofactors, advancing only while the classic double-quotient agreement
/// test proves the simulated quotient equals the true one. On return,
/// (R0', R1') = (A·R0 + B·R1, C·R0 + D·R1) holds for the simulated number
/// of true EGCD steps; B == 0 means no step was certain and the caller
/// must fall back to one full-precision division.
void lehmerWindow(std::uint64_t X, std::uint64_t Y, std::int64_t &A,
                  std::int64_t &B, std::int64_t &C, std::int64_t &D) {
  A = 1;
  B = 0;
  C = 0;
  D = 1;
  std::int64_t SX = static_cast<std::int64_t>(X);
  std::int64_t SY = static_cast<std::int64_t>(Y);
  for (;;) {
    // The true remainders are bracketed by (y+C, y+D); once either bound
    // hits zero the window has no more certain quotients.
    std::int64_t YC, YD, XA, XB;
    if (__builtin_add_overflow(SY, C, &YC) ||
        __builtin_add_overflow(SY, D, &YD) || YC == 0 || YD == 0 ||
        __builtin_add_overflow(SX, A, &XA) ||
        __builtin_add_overflow(SX, B, &XB))
      return;
    std::int64_t Q = XA / YC;
    if (Q != XB / YD)
      return;
    std::int64_t T, QT;
    if (__builtin_mul_overflow(Q, C, &QT) ||
        __builtin_sub_overflow(A, QT, &T))
      return;
    A = C;
    C = T;
    if (__builtin_mul_overflow(Q, D, &QT) ||
        __builtin_sub_overflow(B, QT, &T))
      return;
    B = D;
    D = T;
    if (__builtin_mul_overflow(Q, SY, &QT) ||
        __builtin_sub_overflow(SX, QT, &T))
      return;
    SX = SY;
    SY = T;
  }
}

/// The batched EGCD phases run on little-endian 64-bit limb vectors
/// rather than BigInt: every Lehmer window applies a 2x2 word matrix to
/// two multi-limb values, and doing that through BigInt temporaries costs
/// an allocation per multiply plus 32-bit schoolbook arithmetic. The
/// kernels below fuse each row into one carry-propagating pass over
/// reusable scratch buffers.
using Limbs64 = std::vector<std::uint64_t>;

unsigned limbsBitLength(const Limbs64 &V) {
  if (V.empty())
    return 0;
  return 64 * static_cast<unsigned>(V.size() - 1) +
         (64 - static_cast<unsigned>(__builtin_clzll(V.back())));
}

/// Bits [Shift, Shift+62) of \p V. Callers align Shift to the top of the
/// larger operand, so no value has bits at or above Shift+62.
std::uint64_t limbsWindow(const Limbs64 &V, unsigned Shift) {
  std::size_t I = Shift / 64;
  unsigned Off = Shift % 64;
  if (I >= V.size())
    return 0;
  std::uint64_t W = V[I] >> Off;
  if (Off != 0 && I + 1 < V.size())
    W |= V[I + 1] << (64 - Off);
  return W;
}

/// Out = A·X + B·Y (magnitudes; A, B < 2^63). One pass: the 128-bit
/// accumulator absorbs both products and the running carry.
void linAddLimbs(Limbs64 &Out, std::uint64_t A, const Limbs64 &X,
                 std::uint64_t B, const Limbs64 &Y) {
  std::size_t N = std::max(X.size(), Y.size()) + 1;
  Out.resize(N);
  unsigned __int128 Carry = 0;
  for (std::size_t I = 0; I < N; ++I) {
    unsigned __int128 T = Carry;
    if (I < X.size())
      T += static_cast<unsigned __int128>(A) * X[I];
    if (I < Y.size())
      T += static_cast<unsigned __int128>(B) * Y[I];
    Out[I] = static_cast<std::uint64_t>(T);
    Carry = T >> 64;
  }
  assert(Carry == 0 && "linAddLimbs overflowed its output limb");
  while (!Out.empty() && Out.back() == 0)
    Out.pop_back();
}

/// Out = A·X - B·Y; the caller guarantees the result is nonnegative (the
/// remainder-sequence invariant). Signed 128-bit borrow propagation.
void linSubLimbs(Limbs64 &Out, std::uint64_t A, const Limbs64 &X,
                 std::uint64_t B, const Limbs64 &Y) {
  std::size_t N = std::max(X.size(), Y.size()) + 1;
  Out.resize(N);
  __int128 Carry = 0;
  for (std::size_t I = 0; I < N; ++I) {
    __int128 T = Carry;
    if (I < X.size())
      T += static_cast<__int128>(static_cast<unsigned __int128>(A) * X[I]);
    if (I < Y.size())
      T -= static_cast<__int128>(static_cast<unsigned __int128>(B) * Y[I]);
    Out[I] = static_cast<std::uint64_t>(T);
    Carry = T >> 64; // Arithmetic shift: floor division by 2^64.
  }
  assert(Carry == 0 && "linSubLimbs produced a negative value");
  while (!Out.empty() && Out.back() == 0)
    Out.pop_back();
}

/// Out = P·U + Q·V for a window-matrix row applied to the (nonnegative)
/// remainder pair: one coefficient is >= 0 and the other <= 0, and the
/// result is a true remainder, hence nonnegative.
void applyRemainderRow(Limbs64 &Out, std::int64_t P, const Limbs64 &U,
                       std::int64_t Q, const Limbs64 &V) {
  if (P >= 0 && Q >= 0)
    linAddLimbs(Out, static_cast<std::uint64_t>(P), U,
                static_cast<std::uint64_t>(Q), V);
  else if (P >= 0)
    linSubLimbs(Out, static_cast<std::uint64_t>(P), U,
                static_cast<std::uint64_t>(-Q), V);
  else
    linSubLimbs(Out, static_cast<std::uint64_t>(Q), V,
                static_cast<std::uint64_t>(-P), U);
}

/// gcd of magnitudes with Lehmer batching — the coprimality check of
/// rational reconstruction runs on multi-limb convergents, where the
/// one-division-per-step BigInt::gcd is the bottleneck.
BigInt lehmerGcd(const BigInt &X, const BigInt &Y) {
  Limbs64 R0 = X.magnitudeLimbs64(), R1 = Y.magnitudeLimbs64();
  if (limbsBitLength(R0) < limbsBitLength(R1))
    std::swap(R0, R1);
  Limbs64 S0, S1; // Ping-pong scratch; capacity persists across windows.
  while (limbsBitLength(R1) > 62) {
    unsigned Shift = limbsBitLength(R0) - 62;
    std::int64_t A, B, C, D;
    lehmerWindow(limbsWindow(R0, Shift), limbsWindow(R1, Shift), A, B, C, D);
    if (B == 0) {
      // Window produced no certain quotient (rare: huge true quotient);
      // take one exact step instead.
      BigInt RB = BigInt::fromLimbs64(false, R0) %
                  BigInt::fromLimbs64(false, R1);
      R0 = std::move(R1);
      R1 = RB.magnitudeLimbs64();
      continue;
    }
    applyRemainderRow(S0, A, R0, B, R1);
    applyRemainderRow(S1, C, R0, D, R1);
    std::swap(R0, S0);
    std::swap(R1, S1);
  }
  // Word-size tail: the binary-GCD fast path.
  return BigInt::gcd(BigInt::fromLimbs64(false, R0),
                     BigInt::fromLimbs64(false, R1));
}

} // namespace

void crtFoldLimbs64(std::vector<std::uint64_t> &X,
                    const std::vector<std::uint64_t> &M64, std::uint64_t T) {
  if (T == 0)
    return;
  if (X.size() < M64.size() + 1)
    X.resize(M64.size() + 1, 0);
  unsigned __int128 Carry = 0;
  for (std::size_t I = 0; I < M64.size(); ++I) {
    unsigned __int128 Acc =
        Carry + X[I] + static_cast<unsigned __int128>(M64[I]) * T;
    X[I] = static_cast<std::uint64_t>(Acc);
    Carry = Acc >> 64;
  }
  for (std::size_t I = M64.size(); Carry != 0; ++I) {
    unsigned __int128 Acc = Carry + X[I];
    X[I] = static_cast<std::uint64_t>(Acc);
    Carry = Acc >> 64;
  }
  while (!X.empty() && X.back() == 0)
    X.pop_back();
}

std::uint64_t limbs64ModU64(const std::vector<std::uint64_t> &V,
                            std::uint64_t Mod) {
  assert(Mod != 0 && "modulus must be nonzero");
  unsigned __int128 R = 0;
  for (std::size_t I = V.size(); I-- > 0;)
    R = ((R << 64) | V[I]) % Mod;
  return static_cast<std::uint64_t>(R);
}

BigInt crtLift(const BigInt &X, const BigInt &M, const PrimeField &F,
               std::uint64_t Residue, std::uint64_t InvMMont) {
  // X' = X + M·t with t = (Residue - X) · M^{-1} (mod p).
  std::uint64_t XModP = F.encode(X.modU64(F.prime()));
  std::uint64_t Delta = F.sub(F.encode(Residue), XModP);
  std::uint64_t T = F.decode(F.mul(Delta, InvMMont));
  if (T == 0)
    return X;
  return X + M * BigInt::fromUnsigned(T);
}

bool rationalReconstruct(const BigInt &X, const BigInt &M,
                         const BigInt &Bound, Rational &Out) {
  assert(!M.isZero() && !X.isNegative() && X < M && "need 0 <= X < M");
  if (Bound.isZero())
    return false;
  // Wang's algorithm: run the extended Euclidean remainder sequence on
  // (M, X) tracking the X-coefficient, and stop at the first remainder
  // <= Bound. That convergent is the unique admissible N/D when one
  // exists (2·Bound^2 < M).
  //
  // Batched phase, on raw 64-bit limbs: Lehmer windows take ~40 Euclidean
  // steps per four fused multiply-accumulate passes instead of one full
  // division each. A window's cofactors are below 2^62, so one
  // application shrinks the remainder by at most ~63 bits; stopping 96
  // bits above the boundary guarantees the exact per-step tail below is
  // what crosses it, preserving "first remainder <= Bound" semantics.
  //
  // The cofactors t_k alternate in sign from t_1 on while their
  // magnitudes add, so the T pair is tracked as magnitudes plus explicit
  // signs and only linAddLimbs ever touches it.
  unsigned BoundBits = Bound.bitLength();
  Limbs64 R0L = M.magnitudeLimbs64(), R1L = X.magnitudeLimbs64();
  Limbs64 T0L, T1L{1}; // T0 = 0, T1 = +1.
  bool T0Neg = false, T1Neg = false;
  Limbs64 S0, S1, S2, S3; // Ping-pong scratch, reused across windows.
  while (limbsBitLength(R1L) > BoundBits + 96) {
    unsigned Shift = limbsBitLength(R0L) - 62;
    std::int64_t WA, WB, WC, WD;
    lehmerWindow(limbsWindow(R0L, Shift), limbsWindow(R1L, Shift), WA, WB,
                 WC, WD);
    if (WB == 0) {
      // One exact full-precision step through BigInt (rare stall).
      auto QR = BigInt::divMod(BigInt::fromLimbs64(false, R0L),
                               BigInt::fromLimbs64(false, R1L));
      R0L = std::move(R1L);
      R1L = QR.second.magnitudeLimbs64();
      BigInt T2 = BigInt::fromLimbs64(T0Neg, T0L) -
                  QR.first * BigInt::fromLimbs64(T1Neg, T1L);
      T0L = std::move(T1L);
      T0Neg = T1Neg;
      T1Neg = T2.isNegative();
      T1L = T2.magnitudeLimbs64();
      continue;
    }
    applyRemainderRow(S0, WA, R0L, WB, R1L);
    applyRemainderRow(S1, WC, R0L, WD, R1L);
    // Row (P, Q) applied to (T0, T1): sign(P·T0) == sign(Q·T1) whenever
    // both are nonzero (opposite-sign coefficients, opposite-sign
    // cofactors), so the terms accumulate additively; the result's sign
    // is the sign of either nonzero term.
    linAddLimbs(S2, BigInt::magnitudeOf(WA), T0L, BigInt::magnitudeOf(WB),
                T1L);
    linAddLimbs(S3, BigInt::magnitudeOf(WC), T0L, BigInt::magnitudeOf(WD),
                T1L);
    bool NewT0Neg = (WA != 0 && !T0L.empty()) ? ((WA < 0) != T0Neg)
                                              : ((WB < 0) != T1Neg);
    bool NewT1Neg = (WC != 0 && !T0L.empty()) ? ((WC < 0) != T0Neg)
                                              : ((WD < 0) != T1Neg);
    T0Neg = NewT0Neg;
    T1Neg = NewT1Neg;
    std::swap(R0L, S0);
    std::swap(R1L, S1);
    std::swap(T0L, S2);
    std::swap(T1L, S3);
  }
  BigInt R0 = BigInt::fromLimbs64(false, R0L);
  BigInt R1 = BigInt::fromLimbs64(false, R1L);
  BigInt T0 = BigInt::fromLimbs64(T0Neg, T0L);
  BigInt T1 = BigInt::fromLimbs64(T1Neg, T1L);
  while (R1 > Bound) {
    auto QR = BigInt::divMod(R0, R1);
    R0 = R1;
    R1 = QR.second;
    BigInt T2 = T0 - QR.first * T1;
    T0 = T1;
    T1 = T2;
  }
  // Candidate: N/D = ±R1 / |T1| with the sign of T1 folded into N.
  BigInt D = T1.abs();
  if (D.isZero() || D > Bound)
    return false;
  if (!lehmerGcd(R1, D).isOne())
    return false;
  // The gcd check just proved the pair reduced; skip Rational's
  // normalizing gcd, which would redo the same multi-limb work.
  BigInt N = T1.isNegative() ? -R1 : R1;
  Out = R1.isZero() ? Rational() : Rational::fromCoprime(N, D);
  return true;
}

} // namespace mcnk
