//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-combination utilities used by the hash-consing tables in the FDD
/// manager and by interned AST nodes.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_HASHING_H
#define MCNK_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mcnk {

/// Mixes \p Value into \p Seed (boost::hash_combine-style with a 64-bit
/// golden-ratio constant).
inline std::size_t hashCombine(std::size_t Seed, std::size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
  return Seed;
}

template <typename T>
std::size_t hashCombine(std::size_t Seed, const T &Value) {
  return hashCombine(Seed, std::hash<T>{}(Value));
}

/// Hashes the range [First, Last) into an accumulated seed.
template <typename It> std::size_t hashRange(It First, It Last) {
  std::size_t Seed = 0x42ULL;
  for (; First != Last; ++First)
    Seed = hashCombine(Seed, *First);
  return Seed;
}

} // namespace mcnk

#endif // MCNK_SUPPORT_HASHING_H
