//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-combination utilities used by the hash-consing tables in the FDD
/// manager and by interned AST nodes.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_HASHING_H
#define MCNK_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <tuple>
#include <utility>

namespace mcnk {

/// Mixes \p Value into \p Seed (boost::hash_combine-style with a 64-bit
/// golden-ratio constant).
inline std::size_t hashCombine(std::size_t Seed, std::size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
  return Seed;
}

template <typename T>
std::size_t hashCombine(std::size_t Seed, const T &Value) {
  return hashCombine(Seed, std::hash<T>{}(Value));
}

/// Hashes the range [First, Last) into an accumulated seed.
template <typename It> std::size_t hashRange(It First, It Last) {
  std::size_t Seed = 0x42ULL;
  for (; First != Last; ++First)
    Seed = hashCombine(Seed, *First);
  return Seed;
}

/// Hashes a fixed sequence of values of arbitrary types into one seed.
/// The building block for hashing small aggregates (cache keys, interned
/// node fields) without a hand-rolled functor per struct.
template <typename... Ts> std::size_t hashValues(const Ts &...Values) {
  std::size_t Seed = 0x42ULL;
  ((Seed = hashCombine(Seed, Values)), ...);
  return Seed;
}

/// Generic hasher for std::pair, usable as the Hash parameter of unordered
/// containers keyed on pairs.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B> &P) const {
    return hashValues(P.first, P.second);
  }
};

/// Generic hasher for any container with begin()/end() (e.g. a vector used
/// as an unordered_map key).
struct RangeHash {
  template <typename C> std::size_t operator()(const C &Container) const {
    return hashRange(Container.begin(), Container.end());
  }
};

/// Generic hasher for std::tuple of any arity.
struct TupleHash {
  template <typename... Ts>
  std::size_t operator()(const std::tuple<Ts...> &T) const {
    return std::apply(
        [](const Ts &...Values) { return hashValues(Values...); }, T);
  }
};

} // namespace mcnk

#endif // MCNK_SUPPORT_HASHING_H
