//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over BigInt. ProbNetKAT probabilities are rational
/// by definition (Fig 2: r in [0,1] ∩ Q); the FDD backend keeps them exact so
/// program equivalence is decided without floating-point concerns (§5).
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_RATIONAL_H
#define MCNK_SUPPORT_RATIONAL_H

#include "support/BigInt.h"

#include <cstdint>
#include <string>

namespace mcnk {

/// Normalized rational number: denominator > 0, gcd(|num|, den) == 1, and
/// zero is canonically 0/1 — so operator== compares representations.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  Rational(int64_t Value) : Num(Value), Den(1) {}
  Rational(int64_t Numerator, int64_t Denominator);
  Rational(BigInt Numerator, BigInt Denominator);

  static Rational zero() { return Rational(); }
  static Rational one() { return Rational(1); }

  /// Parses "n", "-n", or "n/d" decimal forms. Returns false on malformed
  /// input or zero denominator.
  static bool fromString(const std::string &Text, Rational &Out);

  /// Exact conversion of a finite double (every finite double is a
  /// dyadic rational). Used when floating-point loop solutions are fed
  /// back into exact FDD leaves (paper §5: UMFPACK results re-enter FDDs).
  static Rational fromDouble(double Value);

  const BigInt &numerator() const { return Num; }
  const BigInt &denominator() const { return Den; }

  bool isZero() const { return Num.isZero(); }
  bool isOne() const { return Num.isOne() && Den.isOne(); }
  bool isNegative() const { return Num.isNegative(); }

  /// True if the value lies in [0, 1] — a valid probability.
  bool isProbability() const;

  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  /// Asserts RHS != 0.
  Rational operator/(const Rational &RHS) const;
  Rational operator-() const;

  Rational &operator+=(const Rational &RHS) { return *this = *this + RHS; }
  Rational &operator-=(const Rational &RHS) { return *this = *this - RHS; }
  Rational &operator*=(const Rational &RHS) { return *this = *this * RHS; }
  Rational &operator/=(const Rational &RHS) { return *this = *this / RHS; }

  /// Asserts *this != 0.
  Rational reciprocal() const;

  int compare(const Rational &RHS) const;
  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const Rational &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const Rational &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const Rational &RHS) const { return compare(RHS) >= 0; }

  /// Best-effort double approximation (~53 bits of precision regardless of
  /// operand magnitudes).
  double toDouble() const;

  /// "n" when the denominator is 1, otherwise "n/d".
  std::string toString() const;

  std::size_t hash() const;

private:
  void normalize();

  BigInt Num;
  BigInt Den;
};

} // namespace mcnk

template <> struct std::hash<mcnk::Rational> {
  std::size_t operator()(const mcnk::Rational &Value) const {
    return Value.hash();
  }
};

#endif // MCNK_SUPPORT_RATIONAL_H
