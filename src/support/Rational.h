//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over BigInt. ProbNetKAT probabilities are rational
/// by definition (Fig 2: r in [0,1] ∩ Q); the FDD backend keeps them exact so
/// program equivalence is decided without floating-point concerns (§5).
///
/// Arithmetic runs on an int64 numerator/denominator fast path (binary GCD
/// normalization, overflow checked with the `__builtin_*_overflow`
/// intrinsics) and falls back to BigInt limb arithmetic only when a result
/// leaves the word-sized range; compound operators mutate in place. See
/// docs/ARCHITECTURE.md S9.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_RATIONAL_H
#define MCNK_SUPPORT_RATIONAL_H

#include "support/BigInt.h"

#include <cstdint>
#include <string>

namespace mcnk {

/// Normalized rational number: denominator > 0, gcd(|num|, den) == 1, and
/// zero is canonically 0/1 — so operator== compares representations.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  Rational(int64_t Value) : Num(Value), Den(1) {}
  Rational(int64_t Numerator, int64_t Denominator);
  Rational(BigInt Numerator, BigInt Denominator);

  static Rational zero() { return Rational(); }
  static Rational one() { return Rational(1); }

  /// Builds a rational from a pair that is already canonical: Denominator
  /// > 0 and gcd(|Numerator|, Denominator) == 1 (asserted in debug
  /// builds). Callers that can prove coprimality — rational reconstruction
  /// returns convergents whose gcd check already ran (support/ModArith.h)
  /// — use this to skip the normalizing gcd, which at multi-limb sizes
  /// costs as much as the computation that produced the pair.
  static Rational fromCoprime(BigInt Numerator, BigInt Denominator);

  /// Parses "n", "-n", or "n/d" decimal forms. Returns false on malformed
  /// input or zero denominator.
  static bool fromString(const std::string &Text, Rational &Out);

  /// Exact conversion of a finite double (every finite double is a
  /// dyadic rational). Used when floating-point loop solutions are fed
  /// back into exact FDD leaves (paper §5: UMFPACK results re-enter FDDs).
  static Rational fromDouble(double Value);

  const BigInt &numerator() const { return Num; }
  const BigInt &denominator() const { return Den; }

  bool isZero() const { return Num.isZero(); }
  bool isOne() const { return Num.isOne() && Den.isOne(); }
  bool isNegative() const { return Num.isNegative(); }

  /// True if the value lies in [0, 1] — a valid probability.
  bool isProbability() const;

  Rational operator+(const Rational &RHS) const {
    Rational Result = *this;
    Result += RHS;
    return Result;
  }
  Rational operator-(const Rational &RHS) const {
    Rational Result = *this;
    Result -= RHS;
    return Result;
  }
  Rational operator*(const Rational &RHS) const {
    Rational Result = *this;
    Result *= RHS;
    return Result;
  }
  /// Asserts RHS != 0.
  Rational operator/(const Rational &RHS) const {
    Rational Result = *this;
    Result /= RHS;
    return Result;
  }
  Rational operator-() const;

  /// In-place compound ops: the int64 fast path writes the result directly
  /// into this object; the BigInt path mutates Num/Den without building a
  /// temporary Rational.
  Rational &operator+=(const Rational &RHS) {
    return addSubAssign(RHS, /*Negate=*/false);
  }
  Rational &operator-=(const Rational &RHS) {
    return addSubAssign(RHS, /*Negate=*/true);
  }
  Rational &operator*=(const Rational &RHS);
  Rational &operator/=(const Rational &RHS);

  /// Fused multiply-accumulate: *this += A * B (the axpy kernel of exact
  /// Gaussian elimination and FDD weight accumulation). On the fast path
  /// the product and the accumulation both stay in int64 arithmetic.
  Rational &addMul(const Rational &A, const Rational &B) {
    return mulAccumulate(A, B, /*Negate=*/false);
  }
  /// Fused multiply-subtract: *this -= A * B.
  Rational &subMul(const Rational &A, const Rational &B) {
    return mulAccumulate(A, B, /*Negate=*/true);
  }

  /// Asserts *this != 0.
  Rational reciprocal() const;

  int compare(const Rational &RHS) const;
  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const Rational &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const Rational &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const Rational &RHS) const { return compare(RHS) >= 0; }

  /// Best-effort double approximation (~53 bits of precision regardless of
  /// operand magnitudes).
  double toDouble() const;

  /// "n" when the denominator is 1, otherwise "n/d".
  std::string toString() const;

  std::size_t hash() const;

private:
  /// True when both numerator and denominator are inline int64 values
  /// (the precondition of every fast path).
  bool isSmallPair() const { return Num.isSmallRep() && Den.isSmallRep(); }

  Rational &addSubAssign(const Rational &RHS, bool Negate);
  Rational &mulAccumulate(const Rational &A, const Rational &B, bool Negate);

  void normalize();

  BigInt Num;
  BigInt Den;
};

} // namespace mcnk

template <> struct std::hash<mcnk::Rational> {
  std::size_t operator()(const mcnk::Rational &Value) const {
    return Value.hash();
  }
};

#endif // MCNK_SUPPORT_RATIONAL_H
