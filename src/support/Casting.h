//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal LLVM-style RTTI helpers (isa<>, cast<>, dyn_cast<>) driven by a
/// static `classof` predicate on the target class. The AST node hierarchy
/// opts in by defining `static bool classof(const Node *)`.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_CASTING_H
#define MCNK_SUPPORT_CASTING_H

#include <cassert>

namespace mcnk {

/// Returns true if \p Val is an instance of type To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Downcast that returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace mcnk

#endif // MCNK_SUPPORT_CASTING_H
