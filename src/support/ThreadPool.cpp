//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent worker pool: a mutex/condvar task queue feeding N workers,
/// with task groups, inline helping for nested waits, and capture-and-
/// rethrow exception propagation. See the header for the scheduling
/// contract; docs/ARCHITECTURE.md S10 for the design rationale.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Error.h"

#include <algorithm>
#include <utility>

using namespace mcnk;

namespace {
/// The pool the current thread is a worker of (null on external threads).
/// Waiting helps execute queued tasks only on that pool's own workers;
/// external waiters block instead, so a width-N pool never computes on
/// more than N threads.
thread_local const ThreadPool *CurrentWorkerPool = nullptr;

/// The tasks currently on this thread's call stack (nested helping stacks
/// them), linked through stack frames. A waiter must exclude its own
/// in-flight tasks from the drain target — counting them would make a
/// task that waits on its pool (or on its own group) wait on itself
/// forever.
struct TaskFrame {
  const TaskGroup *Group;
  const TaskFrame *Parent;
};
thread_local const TaskFrame *TopTaskFrame = nullptr;

std::size_t framesOnStack(const TaskGroup *OnlyGroup) {
  std::size_t N = 0;
  for (const TaskFrame *F = TopTaskFrame; F; F = F->Parent)
    if (!OnlyGroup || F->Group == OnlyGroup)
      ++N;
  return N;
}
} // namespace

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  // Workers drain the queue before exiting, so tasks enqueued before this
  // point all run; enqueues from this point on are a hard error.
  TaskAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool;
  return Pool;
}

void ThreadPool::pushTask(std::function<void()> Fn, TaskGroup *Group) {
  bool NotifyWaiters;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    if (ShuttingDown)
      fatalError("ThreadPool: task enqueued after shutdown began");
    Tasks.push_back({std::move(Fn), Group});
    ++Outstanding;
    if (Group)
      ++Group->Outstanding;
    NotifyWaiters = SleepingWaiters > 0;
  }
  TaskAvailable.notify_one();
  // Helpers blocked in wait()/waitGroup() sleep on TaskDone; wake them so
  // they can claim newly queued (possibly nested) work.
  if (NotifyWaiters)
    TaskDone.notify_all();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  pushTask(std::move(Task), nullptr);
}

bool ThreadPool::runOneTask(std::unique_lock<std::mutex> &Lock,
                            TaskGroup *OnlyGroup) {
  auto It = Tasks.begin();
  if (OnlyGroup)
    while (It != Tasks.end() && It->Group != OnlyGroup)
      ++It;
  if (It == Tasks.end())
    return false;
  Entry E = std::move(*It);
  Tasks.erase(It);

  Lock.unlock();
  std::exception_ptr Err;
  TaskFrame Frame{E.Group, TopTaskFrame};
  TopTaskFrame = &Frame;
  try {
    E.Fn();
  } catch (...) {
    Err = std::current_exception();
  }
  TopTaskFrame = Frame.Parent;
  Lock.lock();

  --Outstanding;
  if (E.Group) {
    --E.Group->Outstanding;
    if (Err && !E.Group->FirstError)
      E.Group->FirstError = Err;
  } else if (Err && !DetachedError) {
    DetachedError = Err;
  }
  if (SleepingWaiters)
    TaskDone.notify_all();
  return true;
}

void ThreadPool::wait() {
  bool Help = CurrentWorkerPool == this;
  // A worker-side wait() happens *inside* a task; that task (and any it
  // is nested under) stays outstanding until we return, so drain down to
  // the caller's own stack instead of zero.
  std::size_t Self = Help ? framesOnStack(nullptr) : 0;
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    // Drain target: everything except the frames on our own call stack —
    // those are trivially blocked until we return, and excluding anything
    // else would let us return while a task that still uses caller state
    // is merely asleep. (Concurrent self-waits by *sibling* tasks on the
    // same target are therefore unsupported; see the header contract.)
    if (Outstanding <= Self)
      break;
    if (Help && runOneTask(Lock, nullptr))
      continue;
    // Everything left runs (or will run) on the workers; sleep until a
    // completion (or a nested push, if we are a helping worker) changes
    // the picture.
    ++SleepingWaiters;
    TaskDone.wait(Lock);
    --SleepingWaiters;
  }
  // A detached task's exception belongs to the pool's *external*
  // observer; a worker-side wait() inside some task must not consume it
  // (rethrowing here would let runOneTask re-capture it and misattribute
  // it to that task's group).
  std::exception_ptr Err = Help ? nullptr : std::exchange(DetachedError, nullptr);
  Lock.unlock();
  if (Err)
    std::rethrow_exception(Err);
}

std::exception_ptr ThreadPool::waitGroup(TaskGroup &Group) {
  // A worker waiting on its own pool must help: its group's queued tasks
  // may have no other thread free to run them (nested parallelism).
  // External threads just block — the N workers do the computing. As in
  // wait(), tasks of this group on the caller's own stack are excluded
  // from the drain target (a group task waiting on its own group drains
  // the rest and returns rather than deadlocking on itself).
  bool Help = CurrentWorkerPool == this;
  std::size_t Self = Help ? framesOnStack(&Group) : 0;
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    // Same drain rule as wait(): exclude only this thread's own stack
    // frames (see the comment there).
    if (Group.Outstanding <= Self)
      break;
    if (Help && runOneTask(Lock, &Group))
      continue;
    ++SleepingWaiters;
    TaskDone.wait(Lock);
    --SleepingWaiters;
  }
  return std::exchange(Group.FirstError, nullptr);
}

void ThreadPool::parallelFor(std::size_t N,
                             const std::function<void(std::size_t)> &Body) {
  if (N == 0)
    return;
  if (N == 1) { // Dispatch overhead would dominate a single iteration.
    Body(0);
    return;
  }
  // Blocked-range dispatch: a few chunks per worker balances load without
  // allocating one closure per index.
  std::size_t MaxChunks = std::max<std::size_t>(1, 4 * numThreads());
  std::size_t NumChunks = std::min(N, MaxChunks);
  std::size_t ChunkSize = (N + NumChunks - 1) / NumChunks;

  TaskGroup Group(*this);
  for (std::size_t Begin = 0; Begin < N; Begin += ChunkSize) {
    std::size_t End = std::min(N, Begin + ChunkSize);
    Group.run([&Body, Begin, End] {
      for (std::size_t I = Begin; I < End; ++I)
        Body(I);
    });
  }
  Group.wait();
}

void ThreadPool::workerLoop() {
  CurrentWorkerPool = this;
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    TaskAvailable.wait(Lock,
                       [this] { return ShuttingDown || !Tasks.empty(); });
    if (Tasks.empty())
      return; // Shutting down and drained.
    runOneTask(Lock, nullptr);
  }
}

TaskGroup::~TaskGroup() {
  // Tasks still reference this group; wait for them. An error nobody
  // consumed via wait() is dropped (we may be unwinding already).
  (void)Pool.waitGroup(*this);
}

void TaskGroup::run(std::function<void()> Task) {
  Pool.pushTask(std::move(Task), this);
}

void TaskGroup::wait() {
  if (std::exception_ptr Err = Pool.waitGroup(*this))
    std::rethrow_exception(Err);
}
