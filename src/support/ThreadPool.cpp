//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-size worker pool: a mutex/condvar task queue feeding N worker
/// threads, with wait-for-drain used by the parallel compiler.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace mcnk;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  TaskAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    assert(!ShuttingDown && "enqueue after shutdown");
    Tasks.push(std::move(Task));
  }
  TaskAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Tasks.empty() && ActiveTasks == 0; });
}

void ThreadPool::parallelFor(std::size_t N,
                             const std::function<void(std::size_t)> &Body) {
  for (std::size_t I = 0; I < N; ++I)
    enqueue([&Body, I] { Body(I); });
  wait();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      TaskAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Tasks.empty(); });
      if (Tasks.empty())
        return; // Shutting down and drained.
      Task = std::move(Tasks.front());
      Tasks.pop();
      ++ActiveTasks;
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      --ActiveTasks;
      if (Tasks.empty() && ActiveTasks == 0)
        AllDone.notify_all();
    }
  }
}
