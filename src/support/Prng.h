//===----------------------------------------------------------------------===//
///
/// \file
/// A small, portable, deterministic PRNG (splitmix64). The generator and
/// scenario subsystems need streams that are reproducible from a printed
/// seed across platforms and standard libraries; std::mt19937_64 would do,
/// but std::uniform_int_distribution is implementation-defined, so we keep
/// both the engine and the derivations here.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_PRNG_H
#define MCNK_SUPPORT_PRNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace mcnk {

/// splitmix64: tiny state, full 64-bit output, passes BigCrush; the
/// recommended seeder for larger generators and plenty on its own for
/// test-case derivation.
class Prng {
public:
  explicit Prng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). Bound must be positive. Debiased by
  /// rejection on the top of the range (the bias of plain modulo is
  /// irrelevant for tiny bounds, but rejection costs nothing).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    uint64_t Threshold = (0 - Bound) % Bound; // 2^64 mod Bound.
    for (;;) {
      uint64_t V = next();
      if (V >= Threshold)
        return V % Bound;
    }
  }

  /// Uniform value in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + below(Hi - Lo + 1);
  }

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  /// Index drawn from the (relative, not necessarily normalized) weights;
  /// zero-weight entries are never chosen. At least one weight must be
  /// positive.
  std::size_t weighted(const std::vector<unsigned> &Weights) {
    uint64_t Total = 0;
    for (unsigned W : Weights)
      Total += W;
    assert(Total > 0 && "all weights zero");
    uint64_t Roll = below(Total);
    for (std::size_t I = 0; I < Weights.size(); ++I) {
      if (Roll < Weights[I])
        return I;
      Roll -= Weights[I];
    }
    assert(false && "unreachable");
    return Weights.size() - 1;
  }

  /// A decorrelated child seed for sub-stream \p Index; lets one printed
  /// master seed drive many independent cases.
  uint64_t deriveSeed(uint64_t Index) const {
    Prng Child(State ^ (0x632be59bd9b4e019ULL * (Index + 1)));
    return Child.next();
  }

private:
  uint64_t State;
};

} // namespace mcnk

#endif // MCNK_SUPPORT_PRNG_H
