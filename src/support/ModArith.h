//===----------------------------------------------------------------------===//
///
/// \file
/// Word-size prime-field arithmetic and the rational-recovery toolkit of
/// the modular exact solver (docs/ARCHITECTURE.md S14). The hot loops of
/// SolverKind::ModularExact run over residues modulo 62-bit primes in
/// Montgomery form — one word per value, no allocation — and the exact
/// Rational answer is recovered afterwards by Chinese-remainder
/// combination across primes plus Wang-style rational reconstruction.
///
/// The prime table is deterministic and contains no runtime randomness:
/// primes are drawn in a fixed order (descending from 2^62 - 1, certified
/// by a deterministic Miller-Rabin test), so a solve that discards an
/// unlucky prime retries along a reproducible sequence and any failure
/// replays from its printed seed.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_MODARITH_H
#define MCNK_SUPPORT_MODARITH_H

#include "support/Rational.h"

#include <cstddef>
#include <cstdint>

namespace mcnk {

/// Arithmetic in GF(p) for an odd prime p < 2^62, values kept in Montgomery
/// form (x·2^64 mod p) so multiplication needs no hardware division. The
/// kernels in linalg/ModSolve.h stay in the Montgomery domain end to end;
/// encode()/decode() convert at the boundary. Construction is cheap enough
/// to build one field per (prime, solve) pair.
class PrimeField {
public:
  /// \p Prime must be an odd prime below 2^62 (the modPrime() table
  /// guarantees this; asserted in debug builds).
  explicit PrimeField(std::uint64_t Prime);

  std::uint64_t prime() const { return P; }

  /// Standard residue (any uint64, reduced mod p) -> Montgomery form.
  std::uint64_t encode(std::uint64_t X) const { return mul(X % P, R2); }
  /// Montgomery form -> standard residue in [0, p).
  std::uint64_t decode(std::uint64_t A) const { return redc(A); }

  /// Montgomery form of 0 and 1 (0 encodes to itself).
  std::uint64_t zero() const { return 0; }
  std::uint64_t one() const { return R1; }

  // Addition and subtraction are domain-agnostic (work on standard and
  // Montgomery residues alike).
  std::uint64_t add(std::uint64_t A, std::uint64_t B) const {
    std::uint64_t S = A + B; // No overflow: operands < p < 2^62.
    return S >= P ? S - P : S;
  }
  std::uint64_t sub(std::uint64_t A, std::uint64_t B) const {
    return A >= B ? A - B : A + P - B;
  }
  std::uint64_t neg(std::uint64_t A) const { return A == 0 ? 0 : P - A; }

  /// Montgomery product: mul(x·R, y·R) = x·y·R.
  std::uint64_t mul(std::uint64_t A, std::uint64_t B) const {
    return redc(static_cast<unsigned __int128>(A) * B);
  }

  /// Montgomery-domain exponentiation by a plain exponent.
  std::uint64_t pow(std::uint64_t A, std::uint64_t E) const;

  /// Montgomery-domain inverse via the extended Euclidean algorithm on the
  /// decoded residue (cheaper than the Fermat p-2 ladder; both are exact).
  /// Asserts A != 0.
  std::uint64_t inv(std::uint64_t A) const;

private:
  /// Montgomery reduction: T < p·2^64 -> T·2^{-64} mod p.
  std::uint64_t redc(unsigned __int128 T) const {
    std::uint64_t M = static_cast<std::uint64_t>(T) * NegPInv;
    std::uint64_t U = static_cast<std::uint64_t>(
        (T + static_cast<unsigned __int128>(M) * P) >> 64);
    return U >= P ? U - P : U;
  }

  std::uint64_t P;       ///< The modulus.
  std::uint64_t NegPInv; ///< -p^{-1} mod 2^64.
  std::uint64_t R1;      ///< 2^64 mod p (Montgomery form of 1).
  std::uint64_t R2;      ///< 2^128 mod p (encode multiplier).
};

/// Deterministic Miller-Rabin primality for any 64-bit integer (the fixed
/// base set {2, 3, 5, 7, ..., 37} is a proven witness set below 2^64).
/// Exposed so the property suite can certify the prime table independently.
bool isPrimeU64(std::uint64_t N);

/// The \p Index-th solver prime: the table walks odd candidates downward
/// from 2^62 - 1 and keeps the Miller-Rabin-certified ones, extending
/// lazily (thread-safe) and identically in every process — no runtime
/// randomness, so unlucky-prime retries are reproducible by construction.
std::uint64_t modPrime(std::size_t Index);

/// First candidate considered by the modPrime() walk (exclusive upper
/// bound on every table entry; keeps a + b < 2^63 overflow-free).
constexpr std::uint64_t ModPrimeCeiling = std::uint64_t(1) << 62;

/// Standard-domain residue of \p Value modulo F.prime(): num · den^{-1}.
/// Returns false — the unlucky-prime signal — when the prime divides the
/// denominator, in which case the caller discards the prime and draws the
/// next one from the table.
bool rationalMod(const Rational &Value, const PrimeField &F,
                 std::uint64_t &Out);

/// Floor of the integer square root; \p V must be non-negative.
BigInt isqrtBigInt(const BigInt &V);

/// One Chinese-remainder step: given X in [0, M) and a residue modulo the
/// fresh prime F.prime() (coprime to M), returns the unique X' in
/// [0, M·p) with X' ≡ X (mod M) and X' ≡ Residue (mod p). \p InvMMont is
/// the Montgomery-domain inverse of M mod p (hoisted by the caller — it is
/// shared across every matrix entry of a prime's fold).
BigInt crtLift(const BigInt &X, const BigInt &M, const PrimeField &F,
               std::uint64_t Residue, std::uint64_t InvMMont);

/// Allocation-free CRT fold on raw little-endian 64-bit limbs (the
/// BigInt interchange format of BigInt::magnitudeLimbs64): X += M·T in
/// one carry-propagating pass, growing X by at most one limb. The
/// per-entry accumulators of the modular solver stay in this format for
/// the whole prime loop; BigInt::fromLimbs64 converts at reconstruction
/// attempts only.
void crtFoldLimbs64(std::vector<std::uint64_t> &X,
                    const std::vector<std::uint64_t> &M64, std::uint64_t T);

/// Magnitude of a little-endian 64-bit limb vector modulo \p Mod (the
/// limb-format counterpart of BigInt::modU64).
std::uint64_t limbs64ModU64(const std::vector<std::uint64_t> &V,
                            std::uint64_t Mod);

/// Wang-style rational reconstruction: finds the unique N/D with
/// |N| <= Bound, 0 < D <= Bound, gcd(N, D) = 1 and N ≡ X·D (mod M), if it
/// exists. Pass Bound = isqrtBigInt((M - 1) / 2) for the symmetric Wang
/// bound (2·Bound² < M guarantees uniqueness). Returns false when no
/// admissible pair exists — the caller's cue to accumulate more primes.
bool rationalReconstruct(const BigInt &X, const BigInt &M,
                         const BigInt &Bound, Rational &Out);

} // namespace mcnk

#endif // MCNK_SUPPORT_MODARITH_H
