//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and the MCNK_UNREACHABLE marker. The library avoids
/// C++ exceptions (LLVM style); unrecoverable conditions abort with a
/// diagnostic, recoverable ones surface through module-specific diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_ERROR_H
#define MCNK_SUPPORT_ERROR_H

#include <string>

namespace mcnk {

/// Prints \p Msg to stderr and aborts. Use for invariant violations that are
/// bugs, not user errors. Before aborting it flushes stdout (so buffered
/// banners like a fuzzer's seed line are not lost) and prints the current
/// fatal-error context, if one is set.
[[noreturn]] void fatalError(const std::string &Msg);

/// Registers a process-wide note that fatalError appends to its
/// diagnostic — e.g. the reproducing seed of the fuzz case being run, so
/// an abort deep inside a worker thread still identifies the case.
/// Thread-safe; an empty string clears the note.
void setFatalErrorContext(const std::string &Note);

[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace mcnk

/// Marks a point in code that must never be reached.
#define MCNK_UNREACHABLE(msg)                                                  \
  ::mcnk::unreachableInternal(msg, __FILE__, __LINE__)

#endif // MCNK_SUPPORT_ERROR_H
