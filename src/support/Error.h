//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and the MCNK_UNREACHABLE marker. The library avoids
/// C++ exceptions (LLVM style); unrecoverable conditions abort with a
/// diagnostic, recoverable ones surface through module-specific diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_ERROR_H
#define MCNK_SUPPORT_ERROR_H

#include <string>

namespace mcnk {

/// Prints \p Msg to stderr and aborts. Use for invariant violations that are
/// bugs, not user errors.
[[noreturn]] void fatalError(const std::string &Msg);

[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace mcnk

/// Marks a point in code that must never be reached.
#define MCNK_UNREACHABLE(msg)                                                  \
  ::mcnk::unreachableInternal(msg, __FILE__, __LINE__)

#endif // MCNK_SUPPORT_ERROR_H
