//===----------------------------------------------------------------------===//
///
/// \file
/// Arbitrary-precision signed integers. McNetKAT's frontend and FDD backend
/// use exact rational arithmetic (paper §5); BigInt is the magnitude type
/// underlying Rational. Small values — the overwhelmingly common case for
/// probability numerators and denominators — live inline in an int64_t with
/// no heap allocation; only values outside the int64_t range spill into a
/// sign-magnitude little-endian 32-bit limb vector (schoolbook
/// multiplication, Knuth Algorithm D division). See docs/ARCHITECTURE.md S9.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_BIGINT_H
#define MCNK_SUPPORT_BIGINT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mcnk {

/// Arbitrary-precision signed integer with a small-value fast path.
///
/// Representation invariant (canonicality): a value is stored inline
/// (`SmallRep == true`, in `Small`) if and only if it fits in int64_t;
/// otherwise it is stored as sign-magnitude limbs with no trailing
/// (most-significant) zero limbs. Every value therefore has exactly one
/// representation and operator== can compare representations directly.
///
/// Arithmetic detects int64 overflow with the `__builtin_*_overflow`
/// intrinsics and falls back to the limb algorithms only then; compound
/// operators mutate in place instead of rebuilding both operands.
class BigInt {
public:
  BigInt() = default;
  BigInt(int64_t Value) : Small(Value) {}
  static BigInt fromUnsigned(uint64_t Value);

  /// Parses a decimal string with optional leading '-'. Returns false on
  /// malformed input (empty string, non-digit characters).
  static bool fromString(const std::string &Text, BigInt &Out);

  bool isZero() const { return SmallRep && Small == 0; }
  bool isNegative() const { return SmallRep ? Small < 0 : Negative; }
  bool isOne() const { return SmallRep && Small == 1; }

  /// Number of significant bits in the magnitude (0 for zero).
  unsigned bitLength() const;

  /// True if the value is representable as int64_t (equivalently: the value
  /// is held in the inline small representation).
  bool fitsInt64() const { return SmallRep; }

  /// True if the value is held inline (no heap limbs). By canonicality this
  /// is the same as fitsInt64(); exposed separately so tests can assert the
  /// representation invariant rather than the value range.
  bool isSmallRep() const { return SmallRep; }

  /// Value as int64_t; asserts fitsInt64().
  int64_t toInt64() const;

  /// Magnitude modulo a word-sized modulus (sign ignored; asserts
  /// Mod != 0). The workhorse of the modular solver's CRT fold
  /// (support/ModArith.h): one Horner pass over the limbs, no allocation.
  uint64_t modU64(uint64_t Mod) const;

  /// Magnitude as little-endian 64-bit limbs (empty for zero). The
  /// batched-EGCD kernels of rational reconstruction (support/ModArith.h)
  /// run on raw 64-bit words; these two hops convert at entry and exit.
  std::vector<uint64_t> magnitudeLimbs64() const;
  /// Rebuilds a value from 64-bit limbs (trailing zeros allowed; the
  /// result is canonicalized).
  static BigInt fromLimbs64(bool Negative,
                            const std::vector<uint64_t> &Limbs64);

  /// Best-effort conversion to double (rounds; may overflow to +/-inf).
  double toDouble() const;

  std::string toString() const;

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt &RHS) const;
  BigInt operator-(const BigInt &RHS) const;
  BigInt operator*(const BigInt &RHS) const;
  /// Quotient truncated toward zero (C++ semantics). Asserts RHS != 0.
  BigInt operator/(const BigInt &RHS) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt &RHS) const;

  /// In-place compound ops: the small path mutates the inline word; the
  /// limb path adds/subtracts magnitudes into the existing allocation
  /// whenever the result fits the sign structure (no rebuild of *this).
  BigInt &operator+=(const BigInt &RHS) {
    addInPlace(RHS, /*NegateRHS=*/false);
    return *this;
  }
  BigInt &operator-=(const BigInt &RHS) {
    addInPlace(RHS, /*NegateRHS=*/true);
    return *this;
  }
  BigInt &operator*=(const BigInt &RHS);
  BigInt &operator/=(const BigInt &RHS) { return *this = *this / RHS; }

  /// Computes quotient and remainder in one pass.
  static std::pair<BigInt, BigInt> divMod(const BigInt &Num,
                                          const BigInt &Den);

  /// Logical shifts of the magnitude (sign preserved).
  BigInt shl(unsigned Bits) const;
  BigInt shr(unsigned Bits) const;

  /// Greatest common divisor of magnitudes; gcd(0,0) == 0.
  static BigInt gcd(const BigInt &A, const BigInt &B);

  /// Binary GCD on word-sized magnitudes (public so Rational's int64 fast
  /// path can normalize without promoting to BigInt).
  static uint64_t gcdU64(uint64_t A, uint64_t B);

  /// Magnitude of an int64 as uint64, INT64_MIN-safe (shared with
  /// Rational's fast path for the same reason as gcdU64).
  static uint64_t magnitudeOf(int64_t Value) {
    return Value < 0 ? ~static_cast<uint64_t>(Value) + 1
                     : static_cast<uint64_t>(Value);
  }

  /// Integer exponentiation. Guarded against runaway growth: aborts via
  /// fatalError when the result's bit length (bitLength(Base) * Exp) would
  /// exceed MaxPowBits.
  static BigInt pow(const BigInt &Base, unsigned Exp);

  /// Hard cap on pow results (bits). ~4 Mbit ≈ 1.26M decimal digits —
  /// far beyond any probability computation, small enough to fail fast
  /// instead of consuming the machine.
  static constexpr unsigned long long MaxPowBits = 1ull << 22;

  /// Three-way comparison: negative/zero/positive as *this <=> RHS.
  int compare(const BigInt &RHS) const;

  bool operator==(const BigInt &RHS) const {
    if (SmallRep != RHS.SmallRep)
      return false; // Canonical: different representations, different values.
    if (SmallRep)
      return Small == RHS.Small;
    return Negative == RHS.Negative && Limbs == RHS.Limbs;
  }
  bool operator!=(const BigInt &RHS) const { return !(*this == RHS); }
  bool operator<(const BigInt &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const BigInt &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const BigInt &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const BigInt &RHS) const { return compare(RHS) >= 0; }

  /// Allocation-free hash (mixes the inline word directly on the small
  /// path; equal values hash equally because the representation is
  /// canonical).
  std::size_t hash() const;

  /// Number of 32-bit limbs the magnitude occupies (for pivot heuristics,
  /// tests, and capacity diagnostics). Small values report the limb count
  /// their magnitude would need (0, 1, or 2).
  std::size_t numLimbs() const;

private:
  using Limb = uint32_t;
  using DoubleLimb = uint64_t;
  static constexpr unsigned LimbBits = 32;

  /// Builds the canonical value with the given sign and magnitude.
  static BigInt fromMagnitude(bool Neg, uint64_t Mag);
  /// Builds the canonical value of a 128-bit signed integer.
  static BigInt fromInt128(__int128 Value);

  /// Returns the limb view of the magnitude: `Limbs` for big values, the
  /// filled \p Scratch for small ones.
  const std::vector<Limb> &magLimbs(std::vector<Limb> &Scratch) const;

  /// Core of += / -=.
  void addInPlace(const BigInt &RHS, bool NegateRHS);
  /// Core of the binary + / - slow path (builds a fresh result).
  static BigInt addSigned(const BigInt &A, const BigInt &B, bool NegateB);

  /// Magnitude comparison ignoring sign.
  static int compareMagnitude(const std::vector<Limb> &A,
                              const std::vector<Limb> &B);
  static std::vector<Limb> addMagnitude(const std::vector<Limb> &A,
                                        const std::vector<Limb> &B);
  /// A += B without reallocating beyond the carry limb.
  static void addMagnitudeInPlace(std::vector<Limb> &A,
                                  const std::vector<Limb> &B);
  /// Requires |A| >= |B|.
  static std::vector<Limb> subMagnitude(const std::vector<Limb> &A,
                                        const std::vector<Limb> &B);
  /// A -= B in place; requires |A| >= |B|.
  static void subMagnitudeInPlace(std::vector<Limb> &A,
                                  const std::vector<Limb> &B);
  static std::vector<Limb> mulMagnitude(const std::vector<Limb> &A,
                                        const std::vector<Limb> &B);
  /// Knuth Algorithm D on magnitudes; quotient in Q, remainder in R.
  static void divModMagnitude(const std::vector<Limb> &A,
                              const std::vector<Limb> &B, std::vector<Limb> &Q,
                              std::vector<Limb> &R);

  /// Strips trailing zero limbs and demotes to the inline representation
  /// when the value fits int64_t (restores canonicality after limb ops).
  void canonicalize();

  // Small form: SmallRep == true, value in Small (Negative/Limbs unused).
  // Big form: SmallRep == false, sign-magnitude in Negative/Limbs.
  bool SmallRep = true;
  bool Negative = false;
  int64_t Small = 0;
  std::vector<Limb> Limbs; // little-endian
};

} // namespace mcnk

template <> struct std::hash<mcnk::BigInt> {
  std::size_t operator()(const mcnk::BigInt &Value) const {
    return Value.hash();
  }
};

#endif // MCNK_SUPPORT_BIGINT_H
