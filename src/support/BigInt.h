//===----------------------------------------------------------------------===//
///
/// \file
/// Arbitrary-precision signed integers. McNetKAT's frontend and FDD backend
/// use exact rational arithmetic (paper §5); BigInt is the magnitude type
/// underlying Rational. Sign-magnitude representation with little-endian
/// 32-bit limbs; schoolbook multiplication and Knuth Algorithm D division.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_BIGINT_H
#define MCNK_SUPPORT_BIGINT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mcnk {

/// Arbitrary-precision signed integer.
///
/// Invariants: no trailing (most-significant) zero limbs; zero is the empty
/// limb vector with a non-negative sign, so every value has one canonical
/// representation and operator== can compare representations directly.
class BigInt {
public:
  BigInt() = default;
  BigInt(int64_t Value);
  static BigInt fromUnsigned(uint64_t Value);

  /// Parses a decimal string with optional leading '-'. Returns false on
  /// malformed input (empty string, non-digit characters).
  static bool fromString(const std::string &Text, BigInt &Out);

  bool isZero() const { return Limbs.empty(); }
  bool isNegative() const { return Negative; }
  bool isOne() const { return !Negative && Limbs.size() == 1 && Limbs[0] == 1; }

  /// Number of significant bits in the magnitude (0 for zero).
  unsigned bitLength() const;

  /// True if the value is representable as int64_t.
  bool fitsInt64() const;

  /// Value as int64_t; asserts fitsInt64().
  int64_t toInt64() const;

  /// Best-effort conversion to double (rounds; may overflow to +/-inf).
  double toDouble() const;

  std::string toString() const;

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt &RHS) const;
  BigInt operator-(const BigInt &RHS) const;
  BigInt operator*(const BigInt &RHS) const;
  /// Quotient truncated toward zero (C++ semantics). Asserts RHS != 0.
  BigInt operator/(const BigInt &RHS) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt &RHS) const;

  BigInt &operator+=(const BigInt &RHS) { return *this = *this + RHS; }
  BigInt &operator-=(const BigInt &RHS) { return *this = *this - RHS; }
  BigInt &operator*=(const BigInt &RHS) { return *this = *this * RHS; }
  BigInt &operator/=(const BigInt &RHS) { return *this = *this / RHS; }

  /// Computes quotient and remainder in one pass.
  static std::pair<BigInt, BigInt> divMod(const BigInt &Num,
                                          const BigInt &Den);

  /// Logical shifts of the magnitude (sign preserved).
  BigInt shl(unsigned Bits) const;
  BigInt shr(unsigned Bits) const;

  /// Greatest common divisor of magnitudes; gcd(0,0) == 0.
  static BigInt gcd(const BigInt &A, const BigInt &B);

  /// Integer exponentiation; asserts Exp fits normal use (no overflow guard).
  static BigInt pow(const BigInt &Base, unsigned Exp);

  /// Three-way comparison: negative/zero/positive as *this <=> RHS.
  int compare(const BigInt &RHS) const;

  bool operator==(const BigInt &RHS) const {
    return Negative == RHS.Negative && Limbs == RHS.Limbs;
  }
  bool operator!=(const BigInt &RHS) const { return !(*this == RHS); }
  bool operator<(const BigInt &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const BigInt &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const BigInt &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const BigInt &RHS) const { return compare(RHS) >= 0; }

  std::size_t hash() const;

  /// Number of 32-bit limbs (for tests and capacity diagnostics).
  std::size_t numLimbs() const { return Limbs.size(); }

private:
  using Limb = uint32_t;
  using DoubleLimb = uint64_t;
  static constexpr unsigned LimbBits = 32;

  /// Magnitude comparison ignoring sign.
  static int compareMagnitude(const std::vector<Limb> &A,
                              const std::vector<Limb> &B);
  static std::vector<Limb> addMagnitude(const std::vector<Limb> &A,
                                        const std::vector<Limb> &B);
  /// Requires |A| >= |B|.
  static std::vector<Limb> subMagnitude(const std::vector<Limb> &A,
                                        const std::vector<Limb> &B);
  static std::vector<Limb> mulMagnitude(const std::vector<Limb> &A,
                                        const std::vector<Limb> &B);
  /// Knuth Algorithm D on magnitudes; quotient in Q, remainder in R.
  static void divModMagnitude(const std::vector<Limb> &A,
                              const std::vector<Limb> &B, std::vector<Limb> &Q,
                              std::vector<Limb> &R);

  void trim();

  bool Negative = false;
  std::vector<Limb> Limbs; // little-endian
};

} // namespace mcnk

template <> struct std::hash<mcnk::BigInt> {
  std::size_t operator()(const mcnk::BigInt &Value) const {
    return Value.hash();
  }
};

#endif // MCNK_SUPPORT_BIGINT_H
