//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timer used by the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_SUPPORT_TIMER_H
#define MCNK_SUPPORT_TIMER_H

#include <chrono>

namespace mcnk {

/// Measures elapsed wall-clock time in seconds from construction or the last
/// reset().
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction/reset.
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace mcnk

#endif // MCNK_SUPPORT_TIMER_H
