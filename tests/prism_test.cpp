//===----------------------------------------------------------------------===//
///
/// \file
/// PRISM backend tests: translation well-formedness, prismlite parsing and
/// model checking (exact and iterative), agreement with the native FDD
/// backend on the paper's models and on randomized guarded programs, and
/// model-error diagnostics (overlapping / non-exhaustive guards).
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "prism/Checker.h"
#include "prism/Translate.h"
#include "routing/Routing.h"

#include <gtest/gtest.h>

#include <random>

using namespace mcnk;
using namespace mcnk::prism;
using ast::Context;
using ast::Node;

namespace {

/// Translates, parses, and checks delivery (Pr[F done]) for a program on
/// one input packet.
Rational prismDelivery(Context &Ctx, const Node *Program,
                       const Packet &Input, markov::SolverKind Solver,
                       CheckResult *Stats = nullptr) {
  Translation T = translate(Ctx, Program, Input);
  Model M;
  std::string Error;
  EXPECT_TRUE(parseModel(T.Source, M, Error)) << Error << "\n" << T.Source;
  GuardExpr Goal;
  EXPECT_TRUE(parseGuard(T.DoneGuard, M, Goal, Error)) << Error;
  CheckResult Result;
  EXPECT_TRUE(checkReachability(M, Goal, Solver, Result, Error)) << Error;
  if (Stats)
    *Stats = Result;
  return Result.Probability;
}

} // namespace

TEST(PrismTranslateTest, EmitsWellFormedModel) {
  Context Ctx;
  FieldId F = Ctx.field("f");
  const Node *P = Ctx.ite(Ctx.test(F, 0),
                          Ctx.choice(Rational(1, 2), Ctx.assign(F, 1),
                                     Ctx.assign(F, 2)),
                          Ctx.drop());
  Packet In(1);
  Translation T = translate(Ctx, P, In);
  EXPECT_NE(T.Source.find("dtmc"), std::string::npos);
  EXPECT_NE(T.Source.find("module net"), std::string::npos);
  EXPECT_NE(T.Source.find("pc :"), std::string::npos);
  // Basic-block collapse shrinks the automaton.
  EXPECT_LT(T.NumPcStates, T.NumPcStatesExpanded);

  Model M;
  std::string Error;
  ASSERT_TRUE(parseModel(T.Source, M, Error)) << Error << T.Source;
  EXPECT_EQ(M.VarNames.size(), 2u); // pc and f.
}

TEST(PrismTranslateTest, SimpleProgramProbabilities) {
  Context Ctx;
  FieldId F = Ctx.field("f");
  // f=0 ; (f:=1 ⊕¼ drop): delivery 1/4 from f=0, 0 from f=1.
  const Node *P = Ctx.seq(Ctx.test(F, 0),
                          Ctx.choice(Rational(1, 4), Ctx.assign(F, 1),
                                     Ctx.drop()));
  Packet In0(1);
  EXPECT_EQ(prismDelivery(Ctx, P, In0, markov::SolverKind::Exact),
            Rational(1, 4));
  Packet In1(1);
  In1.set(F, 1);
  EXPECT_EQ(prismDelivery(Ctx, P, In1, markov::SolverKind::Exact),
            Rational(0));
}

TEST(PrismTranslateTest, WhileLoopSolvedWithoutUnrolling) {
  Context Ctx;
  FieldId F = Ctx.field("f");
  // while f=0 do (f:=1 ⊕½ f:=0): the DTMC has a cycle; exact reachability
  // still gives probability 1 — no loop bound involved (unlike Bayonet).
  const Node *P = Ctx.whileLoop(
      Ctx.test(F, 0),
      Ctx.choice(Rational(1, 2), Ctx.assign(F, 1), Ctx.assign(F, 0)));
  Packet In(1);
  EXPECT_EQ(prismDelivery(Ctx, P, In, markov::SolverKind::Exact),
            Rational(1));
  // A diverging loop keeps the mass forever: delivery 0.
  const Node *D = Ctx.whileLoop(Ctx.test(F, 0), Ctx.assign(F, 0));
  EXPECT_EQ(prismDelivery(Ctx, D, In, markov::SolverKind::Exact),
            Rational(0));
}

TEST(PrismTranslateTest, TriangleMatchesNativeBackend) {
  Context Ctx;
  routing::TriangleExample Ex = routing::buildTriangleExample(Ctx);
  Packet In = Ex.ingressPacket(Ctx);
  // §2 numbers through the PRISM pipeline.
  EXPECT_EQ(prismDelivery(Ctx, Ex.NaiveF2, In, markov::SolverKind::Exact),
            Rational(4, 5));
  EXPECT_EQ(
      prismDelivery(Ctx, Ex.ResilientF2, In, markov::SolverKind::Exact),
      Rational(24, 25));
  // Iterative engine agrees to solver tolerance.
  Rational Approx =
      prismDelivery(Ctx, Ex.ResilientF2, In, markov::SolverKind::Iterative);
  EXPECT_NEAR(Approx.toDouble(), 24.0 / 25.0, 1e-9);
}

TEST(PrismTranslateTest, ChainMatchesClosedForm) {
  Context Ctx;
  topology::ChainLayout L;
  topology::makeChain(4, L);
  routing::NetworkModel M =
      routing::buildChainModel(L, Rational(1, 1000), Ctx);
  Packet In = M.ingressPacket(0, Ctx);
  Rational Expected(1);
  for (unsigned I = 0; I < 4; ++I)
    Expected *= Rational(1) - Rational(1, 2000);
  CheckResult Stats;
  EXPECT_EQ(prismDelivery(Ctx, M.Program, In, markov::SolverKind::Exact,
                          &Stats),
            Expected);
  EXPECT_GT(Stats.NumStates, 16u); // pc × sw product is explored.
}

TEST(PrismCheckerTest, ParsesHandWrittenModel) {
  // The Fig 10 "hand-written PRISM" shape: a direct DTMC over sw.
  const char *Source = R"(dtmc
module chain
  sw : [0..4] init 0;
  // 0: split, 1: upper, 2: lower, 3: join/delivered, 4: dropped
  [] sw=0 -> 1/2 : (sw'=1) + 1/2 : (sw'=2);
  [] sw=1 -> 1 : (sw'=3);
  [] sw=2 -> 999/1000 : (sw'=3) + 1/1000 : (sw'=4);
  [] sw=3 -> 1 : true;
  [] sw=4 -> 1 : true;
endmodule
)";
  Model M;
  std::string Error;
  ASSERT_TRUE(parseModel(Source, M, Error)) << Error;
  GuardExpr Goal;
  ASSERT_TRUE(parseGuard("sw=3", M, Goal, Error)) << Error;
  CheckResult Result;
  ASSERT_TRUE(checkReachability(M, Goal, markov::SolverKind::Exact, Result,
                                Error))
      << Error;
  EXPECT_EQ(Result.Probability, Rational(1999, 2000));
  EXPECT_EQ(Result.NumStates, 5u); // Goal interned but not expanded.
}

TEST(PrismCheckerTest, RejectsMalformedModels) {
  Model M;
  std::string Error;
  EXPECT_FALSE(parseModel("mdp\nmodule m endmodule", M, Error));
  EXPECT_FALSE(parseModel("dtmc\nmodule m\n  x : [0..1] init 5;\nendmodule",
                          M, Error));
  EXPECT_FALSE(parseModel(
      "dtmc\nmodule m\n  x : [0..1] init 0;\n  [] x=0 -> 1/2 : (x'=1);\n"
      "endmodule",
      M, Error)); // Probabilities do not sum to one.
  EXPECT_FALSE(parseModel(
      "dtmc\nmodule m\n  x : [0..1] init 0;\n  [] y=0 -> 1 : true;\n"
      "endmodule",
      M, Error)); // Unknown variable.
}

TEST(PrismCheckerTest, DetectsGuardErrors) {
  // Overlapping guards.
  const char *Overlap = R"(dtmc
module m
  x : [0..2] init 0;
  [] x=0 -> 1 : (x'=1);
  [] x!=1 -> 1 : (x'=2);
  [] x=1 -> 1 : true;
  [] x=2 -> 1 : true;
endmodule
)";
  Model M;
  std::string Error;
  ASSERT_TRUE(parseModel(Overlap, M, Error)) << Error;
  GuardExpr Goal;
  ASSERT_TRUE(parseGuard("x=1", M, Goal, Error));
  CheckResult Result;
  EXPECT_FALSE(
      checkReachability(M, Goal, markov::SolverKind::Exact, Result, Error));
  EXPECT_NE(Error.find("overlap"), std::string::npos);

  // Non-exhaustive guards.
  const char *Gap = R"(dtmc
module m
  x : [0..1] init 0;
  [] x=1 -> 1 : true;
endmodule
)";
  ASSERT_TRUE(parseModel(Gap, M, Error)) << Error;
  ASSERT_TRUE(parseGuard("x=1", M, Goal, Error));
  EXPECT_FALSE(
      checkReachability(M, Goal, markov::SolverKind::Exact, Result, Error));
  EXPECT_NE(Error.find("exhaustive"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Randomized agreement with the native backend
//===----------------------------------------------------------------------===//

namespace {

const Node *randomGuarded(Context &Ctx, std::mt19937_64 &Rng,
                          unsigned Depth) {
  FieldId A = Ctx.field("a"), B = Ctx.field("b");
  auto Value = [&] {
    return std::uniform_int_distribution<FieldValue>(0, 2)(Rng);
  };
  auto Field = [&] {
    return std::uniform_int_distribution<int>(0, 1)(Rng) ? A : B;
  };
  std::uniform_int_distribution<int> Pick(0, Depth == 0 ? 2 : 7);
  switch (Pick(Rng)) {
  case 0:
    return Ctx.assign(Field(), Value());
  case 1:
    return Ctx.test(Field(), Value());
  case 2:
    return Ctx.skip();
  case 3:
    return Ctx.seq(randomGuarded(Ctx, Rng, Depth - 1),
                   randomGuarded(Ctx, Rng, Depth - 1));
  case 4:
    return Ctx.choice(
        Rational(std::uniform_int_distribution<int>(0, 4)(Rng), 4),
        randomGuarded(Ctx, Rng, Depth - 1),
        randomGuarded(Ctx, Rng, Depth - 1));
  case 5:
    return Ctx.ite(Ctx.test(Field(), Value()),
                   randomGuarded(Ctx, Rng, Depth - 1),
                   randomGuarded(Ctx, Rng, Depth - 1));
  case 6:
    return Ctx.whileLoop(Ctx.test(Field(), Value()),
                         randomGuarded(Ctx, Rng, Depth - 1));
  default:
    return Ctx.drop();
  }
}

} // namespace

class PrismAgreementProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrismAgreementProperty, DeliveryMatchesNativeBackend) {
  Context Ctx;
  std::mt19937_64 Rng(GetParam());
  analysis::Verifier V;

  for (int Round = 0; Round < 15; ++Round) {
    const Node *P = randomGuarded(Ctx, Rng, 3);
    fdd::FddRef Native = V.compile(P);
    for (FieldValue VA = 0; VA <= 2; ++VA)
      for (FieldValue VB = 0; VB <= 2; ++VB) {
        Packet In(2);
        In.set(Ctx.fields().lookup("a"), VA);
        In.set(Ctx.fields().lookup("b"), VB);
        Rational NativeDelivery = V.deliveryProbability(Native, In);
        Rational PrismDelivery =
            prismDelivery(Ctx, P, In, markov::SolverKind::Exact);
        EXPECT_EQ(PrismDelivery, NativeDelivery);
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrismAgreementProperty,
                         ::testing::Values(31u, 32u, 33u, 34u));
