//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the S15 static analyzer (ast/Analyze.h) and verified
/// simplifier (ast/Simplify.h): one golden diagnostic per check in the
/// catalog (message text and rendered format pinned, including the
/// overlapping-guard shape that motivated the check), DomainAnalysis fact
/// queries, golden rewrites, and the soundness property — simplify(p)
/// compiles to the reference-identical exact FDD and is idempotent — over
/// seeded random programs (half with planted dead arms) and the whole
/// scenario registry.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "ast/Analyze.h"
#include "ast/Printer.h"
#include "ast/Simplify.h"
#include "ast/Traversal.h"
#include "gen/ProgramGen.h"
#include "gen/Scenario.h"
#include "parser/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace mcnk;
using namespace mcnk::ast;

namespace {

struct AnalyzeFixture : ::testing::Test {
  Context Ctx;

  const Node *parse(const std::string &Source) {
    parser::ParseResult Result = parser::parseProgram(Source, Ctx);
    EXPECT_TRUE(Result.ok()) << (Result.Diagnostics.empty()
                                     ? std::string("no diagnostics")
                                     : Result.Diagnostics[0].render());
    return Result.ok() ? Result.Program : Ctx.drop();
  }

  std::vector<Finding> lint(const std::string &Source) {
    return analyze(Ctx, parse(Source));
  }

  static std::size_t count(const std::vector<Finding> &Fs, CheckKind K) {
    std::size_t N = 0;
    for (const Finding &F : Fs)
      N += F.Check == K;
    return N;
  }

  static const Finding *first(const std::vector<Finding> &Fs, CheckKind K) {
    for (const Finding &F : Fs)
      if (F.Check == K)
        return &F;
    return nullptr;
  }
};

} // namespace

using AnalyzeTest = AnalyzeFixture;

//===----------------------------------------------------------------------===//
// Golden diagnostics, one per catalog entry
//===----------------------------------------------------------------------===//

TEST_F(AnalyzeTest, CheckNamesArePinned) {
  EXPECT_STREQ(checkName(CheckKind::UnreachableCaseArm),
               "unreachable-case-arm");
  EXPECT_STREQ(checkName(CheckKind::ShadowedCaseArm), "shadowed-case-arm");
  EXPECT_STREQ(checkName(CheckKind::OverlappingCaseGuards),
               "overlapping-case-guards");
  EXPECT_STREQ(checkName(CheckKind::UnreachableBranch), "unreachable-branch");
  EXPECT_STREQ(checkName(CheckKind::UnreachableLoopBody),
               "unreachable-loop-body");
  EXPECT_STREQ(checkName(CheckKind::DivergentLoop), "divergent-loop");
  EXPECT_STREQ(checkName(CheckKind::DropEquivalent), "drop-equivalent");
  EXPECT_STREQ(checkName(CheckKind::DegenerateChoice), "degenerate-choice");
  EXPECT_STREQ(checkName(CheckKind::DeadAssignment), "dead-assignment");
  EXPECT_STREQ(checkName(CheckKind::RedundantAssignment),
               "redundant-assignment");
  EXPECT_STREQ(checkName(CheckKind::DeadField), "dead-field");
  EXPECT_STREQ(checkName(CheckKind::WriteOnlyField), "write-only-field");
  EXPECT_STREQ(checkName(CheckKind::QueryIrrelevantAssignment),
               "query-irrelevant-assignment");
}

TEST_F(AnalyzeTest, OverlappingCaseGuards) {
  // The shape that motivated the check: a routing `case` whose arms test
  // different fields, so a packet with sw=1 AND pt=2 silently takes arm 1
  // under first-match semantics while the author may have meant both.
  std::vector<Finding> Fs =
      lint("case { sw=1 -> pt:=1 | pt=2 -> pt:=3 | else -> drop }");
  ASSERT_EQ(Fs.size(), 1u);
  EXPECT_EQ(Fs[0].Check, CheckKind::OverlappingCaseGuards);
  EXPECT_EQ(Fs[0].render("net.pnk"),
            "net.pnk:1:1: warning[overlapping-case-guards]: case guards of "
            "arms 1 and 2 overlap (e.g. sw=1, pt=2); only the first match "
            "fires");
}

TEST_F(AnalyzeTest, DisjointGuardsAreClean) {
  EXPECT_TRUE(
      lint("case { sw=1 -> pt:=1 | sw=2 -> pt:=3 | else -> drop }").empty());
}

TEST_F(AnalyzeTest, UnreachableCaseArm) {
  std::vector<Finding> Fs =
      lint("case { sw=1 ; !sw=1 -> pt:=1 | else -> skip }");
  const Finding *F = first(Fs, CheckKind::UnreachableCaseArm);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Message,
            "case arm 1 is unreachable: its guard can never match");
}

TEST_F(AnalyzeTest, ShadowedCaseArm) {
  std::vector<Finding> Fs =
      lint("case { sw=1 -> pt:=1 | sw=1 -> pt:=2 | else -> drop }");
  const Finding *F = first(Fs, CheckKind::ShadowedCaseArm);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Message, "case arm 2 is shadowed: earlier arms match every "
                        "packet its guard admits");
  // The duplicated guard is also an overlap — both diagnostics fire.
  EXPECT_EQ(count(Fs, CheckKind::OverlappingCaseGuards), 1u);
}

TEST_F(AnalyzeTest, ShadowedElseArm) {
  std::vector<Finding> Fs =
      lint("case { sw=1 -> pt:=1 | !sw=1 -> pt:=2 | else -> pt:=3 }");
  const Finding *F = first(Fs, CheckKind::ShadowedCaseArm);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Message, "the else arm is unreachable: earlier guards match "
                        "every packet");
}

TEST_F(AnalyzeTest, UnreachableBranch) {
  std::vector<Finding> Fs = lint("sw:=1 ; if sw=1 then pt:=1 else pt:=2");
  const Finding *F = first(Fs, CheckKind::UnreachableBranch);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Message, "the else-branch is unreachable: the condition is "
                        "statically true");
  Fs = lint("sw:=2 ; if sw=1 then pt:=1 else pt:=2");
  F = first(Fs, CheckKind::UnreachableBranch);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Message, "the then-branch is unreachable: the condition is "
                        "statically false");
}

TEST_F(AnalyzeTest, UnreachableLoopBody) {
  std::vector<Finding> Fs = lint("sw:=1 ; while sw=2 do pt:=1");
  const Finding *F = first(Fs, CheckKind::UnreachableLoopBody);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Message,
            "the loop body is unreachable: the guard is statically false");
}

TEST_F(AnalyzeTest, DivergentLoop) {
  std::vector<Finding> Fs = lint("sw:=1 ; while sw=1 do sw:=1");
  const Finding *F = first(Fs, CheckKind::DivergentLoop);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Message,
            "the loop never terminates: its guard stays true on every "
            "reachable packet (the loop is drop-equivalent)");
  // A loop some packets exit immediately is fine even when others diverge
  // under an adversarial schedule — the guard is not statically true.
  EXPECT_EQ(count(lint("while sw=1 do sw:=1"), CheckKind::DivergentLoop),
            0u);
}

TEST_F(AnalyzeTest, DropEquivalent) {
  std::vector<Finding> Fs = lint("pt:=1 ; sw=1 ; !sw=1");
  const Finding *F = first(Fs, CheckKind::DropEquivalent);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Message,
            "this subprogram is equivalent to drop: it delivers no packets");
  // Literal drop is the intended spelling — no finding.
  EXPECT_TRUE(lint("drop").empty());
}

TEST_F(AnalyzeTest, DeadAssignment) {
  std::vector<Finding> Fs = lint("pt:=9 ; pt:=2");
  const Finding *F = first(Fs, CheckKind::DeadAssignment);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Message, "assignment to 'pt' is immediately overwritten");
  EXPECT_EQ(F->Loc.Line, 1u);
  EXPECT_EQ(F->Loc.Column, 1u);
  // An intervening read keeps the first write live.
  EXPECT_EQ(count(lint("pt:=9 ; sw=1 ; pt:=2"), CheckKind::DeadAssignment),
            0u);
}

TEST_F(AnalyzeTest, RedundantAssignment) {
  std::vector<Finding> Fs = lint("sw=1 ; sw:=1");
  const Finding *F = first(Fs, CheckKind::RedundantAssignment);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Message, "assignment is redundant: 'sw' already holds 1 here");
  // Writing a different value is not redundant.
  EXPECT_EQ(count(lint("sw=1 ; sw:=2"), CheckKind::RedundantAssignment), 0u);
}

TEST_F(AnalyzeTest, FindingsAreSortedBySourcePosition) {
  std::vector<Finding> Fs = lint("sw:=1 ;\n"
                                 "(pt:=9 ; pt:=2) ;\n"
                                 "if sw=2 then pt:=3 else skip");
  ASSERT_GE(Fs.size(), 2u);
  for (std::size_t I = 1; I < Fs.size(); ++I) {
    EXPECT_TRUE(Fs[I - 1].Loc.Line < Fs[I].Loc.Line ||
                (Fs[I - 1].Loc.Line == Fs[I].Loc.Line &&
                 Fs[I - 1].Loc.Column <= Fs[I].Loc.Column));
  }
}

TEST_F(AnalyzeTest, IdenticalRenderedFindingsAreDeduplicated) {
  // Regression: `var h := n in p` desugars to h:=n ; p ; h:=0 where the
  // two synthesized assignments carry no source location of their own and
  // inherit the block's span. With a trailing write both are dead, and the
  // per-node Reported set saw two distinct pointers — so the identical
  // diagnostic line rendered twice.
  std::vector<Finding> Fs = lint("(var h := 1 in skip); h:=3");
  EXPECT_EQ(count(Fs, CheckKind::DeadAssignment), 1u);
  for (std::size_t I = 1; I < Fs.size(); ++I)
    EXPECT_NE(Fs[I - 1].render("p.pnk"), Fs[I].render("p.pnk"));
}

TEST_F(AnalyzeTest, RenderWithoutLocationOmitsTheCoordinates) {
  // Programmatically built nodes have no side-table entry.
  const Node *P = Ctx.seq(Ctx.assign(Ctx.field("sw"), 1),
                          Ctx.assign(Ctx.field("sw"), 2));
  std::vector<Finding> Fs = analyze(Ctx, P);
  const Finding *F = first(Fs, CheckKind::DeadAssignment);
  ASSERT_NE(F, nullptr);
  EXPECT_FALSE(F->Loc.valid());
  EXPECT_EQ(F->render("p.pnk"),
            "p.pnk: warning[dead-assignment]: assignment to 'sw' is "
            "immediately overwritten");
}

//===----------------------------------------------------------------------===//
// DomainAnalysis fact queries
//===----------------------------------------------------------------------===//

TEST_F(AnalyzeTest, DomainFactQueries) {
  const Node *P = parse("sw:=1 ; if sw=1 then pt:=1 else pt:=2");
  DomainAnalysis A(Ctx, P);
  const auto *Seq = cast<SeqNode>(P);
  const auto *Ite = cast<IfThenElseNode>(Seq->rhs());
  EXPECT_TRUE(A.reached(Ite));
  EXPECT_TRUE(A.branchReachable(Ite, /*Then=*/true));
  EXPECT_FALSE(A.branchReachable(Ite, /*Then=*/false));
  EXPECT_EQ(A.testTruth(cast<TestNode>(Ite->cond())),
            DomainAnalysis::Truth::True);
}

TEST_F(AnalyzeTest, LoopFacts) {
  const Node *P = parse("while sw=1 do sw:=2");
  DomainAnalysis A(Ctx, P);
  const auto *W = cast<WhileNode>(P);
  EXPECT_TRUE(A.loopEntered(W));
  EXPECT_TRUE(A.loopExits(W));

  const Node *Dead = parse("sw:=2 ; while sw=1 do sw:=2");
  DomainAnalysis B(Ctx, Dead);
  const auto *W2 = cast<WhileNode>(cast<SeqNode>(Dead)->rhs());
  EXPECT_FALSE(B.loopEntered(W2));
  EXPECT_TRUE(B.loopExits(W2));
}

TEST_F(AnalyzeTest, CaseFacts) {
  const Node *P =
      parse("case { sw=1 -> pt:=1 | !sw=1 -> pt:=2 | else -> pt:=3 }");
  DomainAnalysis A(Ctx, P);
  const auto *C = cast<CaseNode>(P);
  EXPECT_TRUE(A.armReachable(C, 0));
  EXPECT_TRUE(A.armReachable(C, 1));
  EXPECT_FALSE(A.armReachable(C, 2)); // The else arm.
  EXPECT_FALSE(A.guardTotal(C, 0));
  EXPECT_TRUE(A.guardTotal(C, 1));
}

//===----------------------------------------------------------------------===//
// Golden rewrites
//===----------------------------------------------------------------------===//

TEST_F(AnalyzeTest, SimplifyFoldsDecidedBranches) {
  const Node *S = simplify(Ctx, parse("sw:=1 ; if sw=1 then pt:=1 else pt:=2"));
  EXPECT_TRUE(structurallyEqual(S, parse("sw:=1 ; pt:=1")));
}

TEST_F(AnalyzeTest, SimplifyDropsUnenteredLoops) {
  const Node *S = simplify(Ctx, parse("sw:=1 ; while sw=2 do pt:=1"));
  EXPECT_TRUE(structurallyEqual(S, parse("sw:=1")));
}

TEST_F(AnalyzeTest, SimplifyFoldsDivergentLoopsToDrop) {
  // Every packet enters and none ever exits: the delivered mass is zero,
  // which in the sub-probability semantics is exactly drop.
  const Node *S = simplify(Ctx, parse("sw:=1 ; while sw=1 do sw:=1"));
  EXPECT_TRUE(isa<DropNode>(S));
}

TEST_F(AnalyzeTest, SimplifyPrunesCaseArms) {
  const Node *S = simplify(
      Ctx, parse("sw:=1 ; case { sw=2 -> pt:=1 | sw=1 -> pt:=2 | "
                 "else -> pt:=3 }"));
  EXPECT_TRUE(structurallyEqual(S, parse("sw:=1 ; pt:=2")));
}

TEST_F(AnalyzeTest, SimplifyRemovesDeadAndRedundantAssignments) {
  EXPECT_TRUE(structurallyEqual(simplify(Ctx, parse("pt:=9 ; pt:=2")),
                                parse("pt:=2")));
  // A re-assignment pinned by a dominating *assignment* composes to the
  // identity on the diagram and is removed (predicates in between are
  // transparent).
  EXPECT_TRUE(structurallyEqual(simplify(Ctx, parse("sw:=1 ; pt=2 ; sw:=1")),
                                parse("sw:=1 ; pt=2")));
}

TEST_F(AnalyzeTest, SimplifyKeepsTestPinnedAssignments) {
  // `sw=1 ; sw:=1` is pointwise equal to `sw=1`, but the diagrams differ:
  // the assignment's leaf records the modification {sw:=1} where the bare
  // test leaves `id`.  The verified simplifier must preserve reference
  // equality, so the rewrite is diagnostic-only (redundant-assignment
  // still warns; the tree is untouched).
  const Node *P = parse("sw=1 ; sw:=1");
  EXPECT_EQ(simplify(Ctx, P), P);
  EXPECT_EQ(count(lint("sw=1 ; sw:=1"), CheckKind::RedundantAssignment), 1u);
  // An intervening non-predicate clears the pin: the write may change sw.
  const Node *Q = parse("sw:=1 ; (sw:=2 +[1/2] skip) ; sw:=1");
  EXPECT_EQ(simplify(Ctx, Q), Q);
}

TEST_F(AnalyzeTest, SimplifyCollapsesEqualChoiceBranches) {
  // After dead-assignment elimination both branches are pt:=2, and a
  // choice between identical programs is that program.
  const Node *S = simplify(Ctx, parse("pt:=2 +[1/3] (pt:=9 ; pt:=2)"));
  EXPECT_TRUE(structurallyEqual(S, parse("pt:=2")));
}

TEST_F(AnalyzeTest, SimplifyReturnsTheOriginalPointerWhenNothingFolds) {
  const Node *P = parse("if sw=1 then pt:=1 else pt:=2");
  SimplifyStats Stats;
  EXPECT_EQ(simplify(Ctx, P, {}, &Stats), P);
  EXPECT_EQ(Stats.NodesBefore, Stats.NodesAfter);
}

TEST_F(AnalyzeTest, SimplifyReportsStats) {
  SimplifyStats Stats;
  const Node *S = simplify(Ctx, parse("pt:=9 ; pt:=2 ; sw:=1"), {}, &Stats);
  EXPECT_EQ(Stats.NodesAfter, countNodes(S));
  EXPECT_LT(Stats.NodesAfter, Stats.NodesBefore);
  EXPECT_GE(Stats.Rounds, 1u);
}

//===----------------------------------------------------------------------===//
// Scale: the explicit-stack machines must survive deep programs
//===----------------------------------------------------------------------===//

TEST(AnalyzeDeep, DeepSeqChainsAnalyzeAndSimplify) {
  Context Ctx;
  FieldId F = Ctx.field("f0");
  const Node *P = Ctx.skip();
  for (unsigned I = 0; I < 50000; ++I)
    P = Ctx.seq(P, Ctx.assign(F, I % 3));
  DomainAnalysis A(Ctx, P);
  EXPECT_FALSE(A.findings().empty()); // Dead assignments throughout.
  // Everything but the last write is dead: one assignment survives.
  const Node *S = simplify(Ctx, P);
  EXPECT_TRUE(structurallyEqual(S, Ctx.assign(F, 49999 % 3)));
}

//===----------------------------------------------------------------------===//
// Soundness property: reference-equal FDDs and idempotence
//===----------------------------------------------------------------------===//

namespace {

/// One soundness probe: simplify must preserve the exact diagram and be
/// idempotent. \p Tag labels failures with a reproduction hint.
void checkSimplifySound(Context &Ctx, const Node *Program,
                        const std::string &Tag) {
  analysis::Verifier V(markov::SolverKind::Exact);
  fdd::FddRef E = V.compile(Program);
  const Node *S = simplify(Ctx, Program);
  EXPECT_TRUE(V.compile(S) == E)
      << Tag << ": simplified program compiles to a different diagram: "
      << print(Program, Ctx.fields());
  const Node *Again = simplify(Ctx, S);
  EXPECT_TRUE(Again == S || structurallyEqual(Again, S))
      << Tag << ": simplify is not idempotent: " << print(S, Ctx.fields());
}

} // namespace

TEST(AnalyzeProperty, SimplifySoundOnRandomPrograms) {
  for (unsigned I = 0; I < 200; ++I) {
    Context Ctx;
    gen::GenOptions GO;
    GO.PlantDeadArms = (I % 2 == 1); // Half with statically-dead arms.
    const Node *P = gen::generateProgram(Ctx, 0x5EEDBA5EULL + I, GO);
    checkSimplifySound(Ctx, P, "seed " + std::to_string(I));
  }
}

TEST(AnalyzeProperty, SimplifySoundOnScenarioRegistry) {
  for (const gen::ScenarioSpec &Spec : gen::buildRegistry()) {
    Context Ctx;
    gen::Scenario S = Spec.Build(Ctx);
    checkSimplifySound(Ctx, S.Program, S.Name);
  }
}

TEST(AnalyzeProperty, PlantedDeadArmsAreDetected) {
  // The generator's planted arms must actually exercise the checks: over
  // a seed sweep, at least one shadowed/unreachable arm finding appears.
  std::size_t Found = 0;
  for (unsigned I = 0; I < 20; ++I) {
    Context Ctx;
    gen::GenOptions GO;
    GO.PlantDeadArms = true;
    GO.WeightCase = 12; // Case-heavy so most programs have an arm to kill.
    const Node *P = gen::generateProgram(Ctx, 0xDEADULL + I, GO);
    for (const Finding &F : analyze(Ctx, P))
      Found += F.Check == CheckKind::ShadowedCaseArm ||
               F.Check == CheckKind::UnreachableCaseArm;
  }
  EXPECT_GT(Found, 0u);
}
