//===----------------------------------------------------------------------===//
///
/// \file
/// FieldTable and Packet/PacketDomain tests.
///
//===----------------------------------------------------------------------===//

#include "packet/Packet.h"

#include <gtest/gtest.h>

#include <set>

using namespace mcnk;

TEST(FieldTableTest, InternIsIdempotent) {
  FieldTable Table;
  FieldId Sw = Table.intern("sw");
  FieldId Pt = Table.intern("pt");
  EXPECT_NE(Sw, Pt);
  EXPECT_EQ(Table.intern("sw"), Sw);
  EXPECT_EQ(Table.name(Sw), "sw");
  EXPECT_EQ(Table.name(Pt), "pt");
  EXPECT_EQ(Table.numFields(), 2u);
}

TEST(FieldTableTest, LookupWithoutIntern) {
  FieldTable Table;
  EXPECT_EQ(Table.lookup("missing"), FieldTable::NotFound);
  Table.intern("dst");
  EXPECT_EQ(Table.lookup("dst"), 0);
}

TEST(PacketTest, GetSetWith) {
  Packet P(3);
  EXPECT_EQ(P.get(0), 0u);
  P.set(1, 42);
  EXPECT_EQ(P.get(1), 42u);
  Packet Q = P.with(2, 7);
  EXPECT_EQ(Q.get(2), 7u);
  EXPECT_EQ(P.get(2), 0u); // Functional update does not mutate.
  EXPECT_NE(P, Q);
  EXPECT_EQ(Q, P.with(2, 7));
  EXPECT_EQ(Q.hash(), P.with(2, 7).hash());
}

TEST(PacketDomainTest, IndexBijection) {
  PacketDomain Domain({3, 2, 4});
  EXPECT_EQ(Domain.numPackets(), 24u);
  std::set<std::size_t> Seen;
  for (std::size_t I = 0; I < Domain.numPackets(); ++I) {
    Packet P = Domain.packet(I);
    EXPECT_TRUE(Domain.contains(P));
    EXPECT_EQ(Domain.index(P), I);
    Seen.insert(I);
  }
  EXPECT_EQ(Seen.size(), 24u);
}

TEST(PacketDomainTest, ContainsRejectsOutOfRange) {
  PacketDomain Domain({2, 2});
  Packet P(2);
  P.set(0, 1);
  EXPECT_TRUE(Domain.contains(P));
  P.set(0, 2);
  EXPECT_FALSE(Domain.contains(P));
  EXPECT_FALSE(Domain.contains(Packet(3)));
}
