//===----------------------------------------------------------------------===//
///
/// \file
/// Parser tests: grammar coverage, precedence, §2's running example,
/// diagnostics for malformed input, and print/parse round trips.
///
//===----------------------------------------------------------------------===//

#include "ast/Printer.h"
#include "ast/Traversal.h"
#include "parser/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace mcnk;
using namespace mcnk::ast;
using parser::ParseResult;

namespace {

struct ParserFixture : ::testing::Test {
  Context Ctx;

  const Node *parseOk(const std::string &Source) {
    ParseResult Result = parser::parseProgram(Source, Ctx);
    EXPECT_TRUE(Result.ok()) << (Result.Diagnostics.empty()
                                     ? std::string("no diagnostics")
                                     : Result.Diagnostics[0].render());
    // Keep callers null-safe even when the expectation above fails.
    return Result.ok() ? Result.Program : Ctx.drop();
  }

  std::string parseError(const std::string &Source) {
    ParseResult Result = parser::parseProgram(Source, Ctx);
    EXPECT_FALSE(Result.ok()) << "expected failure for: " << Source;
    if (Result.Diagnostics.empty())
      return "";
    return Result.Diagnostics[0].render();
  }
};

} // namespace

using ParserTest = ParserFixture;

TEST_F(ParserTest, Primitives) {
  EXPECT_TRUE(isa<DropNode>(parseOk("drop")));
  EXPECT_TRUE(isa<SkipNode>(parseOk("skip")));
  const Node *T = parseOk("sw=3");
  ASSERT_TRUE(isa<TestNode>(T));
  EXPECT_EQ(cast<TestNode>(T)->value(), 3u);
  const Node *A = parseOk("pt:=2");
  ASSERT_TRUE(isa<AssignNode>(A));
  EXPECT_EQ(cast<AssignNode>(A)->value(), 2u);
}

TEST_F(ParserTest, PrecedenceSeqOverUnion) {
  // '&' binds looser than ';': a=1;b=2 & c=3 ≡ (a=1;b=2) & (c=3).
  const Node *P = parseOk("a=1 ; b=2 & c=3");
  const auto *U = dyn_cast<UnionNode>(P);
  ASSERT_NE(U, nullptr);
  EXPECT_TRUE(isa<SeqNode>(U->lhs()));
  EXPECT_TRUE(isa<TestNode>(U->rhs()));
}

TEST_F(ParserTest, ChoiceBindsLoosest) {
  const Node *P = parseOk("pt:=1 ; pt:=2 +[1/3] pt:=3");
  const auto *C = dyn_cast<ChoiceNode>(P);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->probability(), Rational(1, 3));
  EXPECT_TRUE(isa<SeqNode>(C->lhs()));
}

TEST_F(ParserTest, ProbabilitySyntaxes) {
  const auto *Half = dyn_cast<ChoiceNode>(parseOk("pt:=1 +[0.5] pt:=2"));
  ASSERT_NE(Half, nullptr);
  EXPECT_EQ(Half->probability(), Rational(1, 2));
  const auto *Fifth = dyn_cast<ChoiceNode>(parseOk("pt:=1 +[2/10] pt:=2"));
  ASSERT_NE(Fifth, nullptr);
  EXPECT_EQ(Fifth->probability(), Rational(1, 5));
  // +[1] collapses to the left branch via the smart constructor.
  EXPECT_TRUE(isa<AssignNode>(parseOk("pt:=1 +[1] pt:=2")));
}

TEST_F(ParserTest, StarAndNegation) {
  const Node *S = parseOk("(pt:=1)*");
  EXPECT_TRUE(isa<StarNode>(S));
  const Node *N = parseOk("!(sw=1 & sw=2)");
  EXPECT_TRUE(isa<NotNode>(N));
  // Double negation normalizes away.
  EXPECT_TRUE(isa<TestNode>(parseOk("!!sw=1")));
}

TEST_F(ParserTest, IfThenElseNesting) {
  const Node *P = parseOk(
      "if sw=1 then pt:=2 else if sw=2 then pt:=2 else drop");
  const auto *Outer = dyn_cast<IfThenElseNode>(P);
  ASSERT_NE(Outer, nullptr);
  EXPECT_TRUE(isa<IfThenElseNode>(Outer->elseBranch()));
}

TEST_F(ParserTest, WhileLoop) {
  const Node *P = parseOk("while !sw=2 do (sw:=2 ; pt:=1)");
  const auto *W = dyn_cast<WhileNode>(P);
  ASSERT_NE(W, nullptr);
  EXPECT_TRUE(isa<NotNode>(W->cond()));
  EXPECT_TRUE(isa<SeqNode>(W->body()));
}

TEST_F(ParserTest, VarDesugars) {
  const Node *P = parseOk("var up2 := 1 in (up2=1 ; pt:=2)");
  // var f := n in p ≜ f := n ; p ; f := 0.
  const auto *S = dyn_cast<SeqNode>(P);
  ASSERT_NE(S, nullptr);
  const auto *Init = dyn_cast<AssignNode>(S->lhs());
  ASSERT_NE(Init, nullptr);
  EXPECT_EQ(Init->value(), 1u);
  EXPECT_EQ(Ctx.fields().name(Init->field()), "up2");
}

TEST_F(ParserTest, RunningExampleFromPaper) {
  // §2's forwarding policy p for the three-switch triangle.
  const Node *P = parseOk("if sw=1 then pt:=2 else "
                          "if sw=2 then pt:=2 else drop");
  ASSERT_TRUE(isa<IfThenElseNode>(P));
  EXPECT_TRUE(isGuarded(P));

  // The full model shape: in ; p ; while !out do (t ; p).
  const Node *M = parseOk(
      "sw=1 ; pt=1 ; "
      "(if sw=1 then pt:=2 else if sw=2 then pt:=2 else drop) ; "
      "while !(sw=2 ; pt=2) do ("
      "  (if sw=1 ; pt=2 then sw:=2 ; pt:=1 else skip) ; "
      "  (if sw=1 then pt:=2 else if sw=2 then pt:=2 else drop))");
  EXPECT_TRUE(isGuarded(M));
}

TEST_F(ParserTest, CommentsAndWhitespace) {
  const Node *P = parseOk("// leading comment\n"
                          "sw=1 ; /* inline */ pt:=2 // trailing\n");
  EXPECT_TRUE(isa<SeqNode>(P));
}

TEST_F(ParserTest, DiagnosticsCarryPositions) {
  std::string Msg = parseError("sw=1 ;\n@");
  EXPECT_NE(Msg.find("2:1"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("unexpected character"), std::string::npos) << Msg;
}

TEST_F(ParserTest, DiagnosticRenderFormatIsPinned) {
  // The `line:col: message` rendering is machine-consumed (editors, the
  // lint_smoke ctest); pin it exactly.
  ParseResult Result = parser::parseProgram("sw=1 ;\n@", Ctx);
  ASSERT_FALSE(Result.ok());
  ASSERT_FALSE(Result.Diagnostics.empty());
  EXPECT_EQ(Result.Diagnostics[0].render(),
            "2:1: expected a program, found unexpected character '@'");
  EXPECT_TRUE(Result.Diagnostics[0].Check.empty()); // Hard error, no slug.

  Result = parser::parseProgram("pt :=", Ctx);
  ASSERT_FALSE(Result.ok());
  ASSERT_FALSE(Result.Diagnostics.empty());
  EXPECT_EQ(Result.Diagnostics[0].render(),
            "1:6: expected a natural number, found end of input");
}

TEST_F(ParserTest, NodeLocationsRecordedInTheSideTable) {
  const Node *P = parseOk("sw=1 ;\n  pt:=2");
  SourceLoc Root = Ctx.loc(P);
  EXPECT_EQ(Root.Line, 1u);
  EXPECT_EQ(Root.Column, 1u);
  const auto *S = cast<SeqNode>(P);
  EXPECT_EQ(Ctx.loc(S->lhs()).Line, 1u);
  EXPECT_EQ(Ctx.loc(S->lhs()).Column, 1u);
  EXPECT_EQ(Ctx.loc(S->rhs()).Line, 2u);
  EXPECT_EQ(Ctx.loc(S->rhs()).Column, 3u);
}

TEST_F(ParserTest, SingletonsHaveNoLocation) {
  parseOk("skip ; drop");
  // drop/skip are context-wide singletons: one parse position must not
  // stick to every later occurrence.
  EXPECT_FALSE(Ctx.loc(Ctx.skip()).valid());
  EXPECT_FALSE(Ctx.loc(Ctx.drop()).valid());
}

TEST_F(ParserTest, DegenerateChoiceWarns) {
  ParseResult Result = parser::parseProgram("pt:=1 +[1] pt:=2", Ctx);
  ASSERT_TRUE(Result.ok());
  EXPECT_TRUE(isa<AssignNode>(Result.Program)); // Collapsed to the left.
  ASSERT_EQ(Result.Warnings.size(), 1u);
  EXPECT_EQ(Result.Warnings[0].Check, "degenerate-choice");
  EXPECT_EQ(Result.Warnings[0].Line, 1u);
  EXPECT_EQ(Result.Warnings[0].Column, 7u);
  EXPECT_EQ(Result.Warnings[0].Message,
            "probabilistic choice with probability 1 is degenerate: only "
            "the left branch can run");

  Result = parser::parseProgram("pt:=1 +[0] pt:=2", Ctx);
  ASSERT_TRUE(Result.ok());
  ASSERT_EQ(Result.Warnings.size(), 1u);
  EXPECT_EQ(Result.Warnings[0].Message,
            "probabilistic choice with probability 0 is degenerate: only "
            "the right branch can run");

  // A proper probability is quiet.
  Result = parser::parseProgram("pt:=1 +[1/2] pt:=2", Ctx);
  ASSERT_TRUE(Result.ok());
  EXPECT_TRUE(Result.Warnings.empty());
}

TEST_F(ParserTest, WarningsAreDroppedOnFailedParses) {
  ParseResult Result = parser::parseProgram("pt:=1 +[1] @", Ctx);
  EXPECT_FALSE(Result.ok());
  EXPECT_TRUE(Result.Warnings.empty());
}

TEST_F(ParserTest, RejectsMalformedPrograms) {
  EXPECT_NE(parseError(""), "");
  EXPECT_NE(parseError("sw="), "");
  EXPECT_NE(parseError("sw"), "");
  EXPECT_NE(parseError("pt:="), "");
  EXPECT_NE(parseError("(sw=1"), "");
  EXPECT_NE(parseError("if sw=1 then pt:=1"), ""); // Missing else.
  EXPECT_NE(parseError("while sw=1 pt:=1"), "");   // Missing do.
  EXPECT_NE(parseError("pt:=1 +[] pt:=2"), "");
  EXPECT_NE(parseError("pt:=1 +[1/0] pt:=2"), "");
  EXPECT_NE(parseError("sw=1 ; ; sw=2"), "");
}

TEST_F(ParserTest, RejectsSemanticErrors) {
  // Negation of a non-predicate.
  std::string Msg = parseError("!(pt:=1)");
  EXPECT_NE(Msg.find("predicate"), std::string::npos) << Msg;
  // Conditions must be predicates.
  Msg = parseError("if pt:=1 then skip else drop");
  EXPECT_NE(Msg.find("predicate"), std::string::npos) << Msg;
  Msg = parseError("while pt:=1 do skip");
  EXPECT_NE(Msg.find("predicate"), std::string::npos) << Msg;
  // Probability outside [0,1].
  Msg = parseError("pt:=1 +[3/2] pt:=2");
  EXPECT_NE(Msg.find("[0, 1]"), std::string::npos) << Msg;
  // Oversized field value.
  Msg = parseError("pt:=4294967296");
  EXPECT_NE(Msg.find("32 bits"), std::string::npos) << Msg;
}

TEST_F(ParserTest, PrintParseRoundTrip) {
  const char *Sources[] = {
      "drop",
      "skip",
      "sw=1",
      "pt:=2",
      "sw=1 ; pt:=2",
      "sw=1 & pt=2",
      "!sw=1",
      "pt:=1 +[1/3] pt:=2",
      "(pt:=1 +[1/2] pt:=2) +[1/3] pt:=3",
      "if sw=1 then pt:=2 else drop",
      "while !sw=2 do (pt:=1 ; sw:=2)",
      "if sw=1 then (pt:=1 +[1/2] pt:=2) else (if sw=2 then skip else drop)",
      "(sw=1 ; pt:=2)*",
  };
  for (const char *Source : Sources) {
    const Node *First = parseOk(Source);
    std::string Printed = print(First, Ctx.fields());
    const Node *Second = parseOk(Printed);
    EXPECT_TRUE(structurallyEqual(First, Second))
        << Source << " printed as " << Printed;
  }
}

//===----------------------------------------------------------------------===//
// `case` surface syntax (§6's n-ary disjoint branching)
//===----------------------------------------------------------------------===//

TEST_F(ParserTest, CaseSyntax) {
  const Node *C =
      parseOk("case { sw=1 -> pt:=1 | sw=2 -> pt:=2 ; sw:=3 | "
              "else -> drop }");
  ASSERT_TRUE(isa<CaseNode>(C));
  const auto *Case = cast<CaseNode>(C);
  ASSERT_EQ(Case->branches().size(), 2u);
  EXPECT_TRUE(isa<TestNode>(Case->branches()[0].first));
  EXPECT_TRUE(isa<AssignNode>(Case->branches()[0].second));
  EXPECT_TRUE(isa<SeqNode>(Case->branches()[1].second));
  EXPECT_TRUE(isa<DropNode>(Case->defaultBranch()));
}

TEST_F(ParserTest, CaseWithOnlyElseCollapsesToDefault) {
  // Zero branches normalize away the CaseNode entirely (caseOf contract).
  const Node *C = parseOk("case { else -> pt:=7 }");
  ASSERT_TRUE(isa<AssignNode>(C));
}

TEST_F(ParserTest, CaseGuardsMayBeCompoundPredicates) {
  const Node *C = parseOk(
      "case { sw=1 ; pt=1 -> sw:=2 | !sw=2 & pt=0 -> drop | else -> skip }");
  ASSERT_TRUE(isa<CaseNode>(C));
  EXPECT_EQ(cast<CaseNode>(C)->branches().size(), 2u);
}

TEST_F(ParserTest, CaseDiagnostics) {
  // Guards must be predicates.
  EXPECT_NE(parseError("case { pt:=1 -> drop | else -> skip }")
                .find("predicate"),
            std::string::npos);
  // The else branch is mandatory (a branch without one dead-ends at '}').
  EXPECT_NE(parseError("case { sw=1 -> drop }").find("'|'"),
            std::string::npos);
  // Unterminated case.
  parseError("case { sw=1 -> drop | else -> skip");
  // Nested case round-trips through the printer.
  const Node *Nested = parseOk(
      "case { sw=1 -> case { pt=1 -> drop | else -> skip } | "
      "else -> skip }");
  const Node *Again = parseOk(print(Nested, Ctx.fields()));
  EXPECT_TRUE(structurallyEqual(Nested, Again));
}
