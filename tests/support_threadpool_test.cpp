//===----------------------------------------------------------------------===//
///
/// \file
/// ThreadPool tests: completion, parallelFor coverage, reuse across waves,
/// and stress with many small tasks.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

using mcnk::ThreadPool;

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 100; ++I)
    Pool.enqueue([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndex) {
  ThreadPool Pool(3);
  std::vector<std::atomic<int>> Hits(257);
  Pool.parallelFor(Hits.size(),
                   [&Hits](std::size_t I) { Hits[I].fetch_add(1); });
  for (auto &Hit : Hits)
    EXPECT_EQ(Hit.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool Pool(2);
  std::atomic<long> Sum{0};
  for (int Wave = 0; Wave < 5; ++Wave) {
    Pool.parallelFor(50, [&Sum](std::size_t I) {
      Sum.fetch_add(static_cast<long>(I));
    });
  }
  EXPECT_EQ(Sum.load(), 5 * (49 * 50 / 2));
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool Pool(1);
  std::vector<int> Order;
  // With a single worker tasks run sequentially; result must be complete.
  Pool.parallelFor(20, [&Order](std::size_t I) {
    Order.push_back(static_cast<int>(I));
  });
  EXPECT_EQ(Order.size(), 20u);
  int Total = std::accumulate(Order.begin(), Order.end(), 0);
  EXPECT_EQ(Total, 190);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool Pool(2);
  Pool.wait();
  SUCCEED();
}

TEST(ThreadPoolTest, DefaultSizeIsHardwareConcurrency) {
  ThreadPool Pool;
  EXPECT_GE(Pool.numThreads(), 1u);
}
