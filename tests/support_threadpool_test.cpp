//===----------------------------------------------------------------------===//
///
/// \file
/// ThreadPool tests: completion, parallelFor coverage, reuse across waves,
/// exception capture-and-rethrow, nested parallelFor (the helping
/// scheduler), task-group isolation, shutdown-while-busy draining, and
/// stress with many small tasks.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

using mcnk::TaskGroup;
using mcnk::ThreadPool;

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 100; ++I)
    Pool.enqueue([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndex) {
  ThreadPool Pool(3);
  std::vector<std::atomic<int>> Hits(257);
  Pool.parallelFor(Hits.size(),
                   [&Hits](std::size_t I) { Hits[I].fetch_add(1); });
  for (auto &Hit : Hits)
    EXPECT_EQ(Hit.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool Pool(2);
  std::atomic<long> Sum{0};
  for (int Wave = 0; Wave < 5; ++Wave) {
    Pool.parallelFor(50, [&Sum](std::size_t I) {
      Sum.fetch_add(static_cast<long>(I));
    });
  }
  EXPECT_EQ(Sum.load(), 5 * (49 * 50 / 2));
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool Pool(1);
  std::vector<std::atomic<int>> Hits(20);
  Pool.parallelFor(Hits.size(),
                   [&Hits](std::size_t I) { Hits[I].fetch_add(1); });
  int Total = 0;
  for (auto &Hit : Hits)
    Total += Hit.load();
  EXPECT_EQ(Total, 20);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool Pool(2);
  Pool.wait();
  SUCCEED();
}

TEST(ThreadPoolTest, DefaultSizeIsHardwareConcurrency) {
  ThreadPool Pool;
  EXPECT_GE(Pool.numThreads(), 1u);
}

TEST(ThreadPoolTest, BlockedRangeHandlesLargeN) {
  // 100k indices must dispatch as a bounded number of chunk tasks, not
  // 100k closures; every index still runs exactly once.
  ThreadPool Pool(4);
  std::vector<unsigned char> Hits(100000, 0);
  Pool.parallelFor(Hits.size(), [&Hits](std::size_t I) { ++Hits[I]; });
  std::size_t Total =
      std::accumulate(Hits.begin(), Hits.end(), std::size_t(0));
  EXPECT_EQ(Total, Hits.size());
}

//===----------------------------------------------------------------------===//
// Exception capture and rethrow
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, EnqueuedExceptionRethrownFromWait) {
  ThreadPool Pool(2);
  std::atomic<int> Counter{0};
  Pool.enqueue([&Counter] { ++Counter; });
  Pool.enqueue([] { throw std::runtime_error("worker failure"); });
  Pool.enqueue([&Counter] { ++Counter; });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Counter.load(), 2);
  // The error is consumed; the pool stays usable.
  Pool.enqueue([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 3);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  ThreadPool Pool(3);
  for (int Round = 0; Round < 3; ++Round) {
    bool Caught = false;
    try {
      Pool.parallelFor(64, [](std::size_t I) {
        if (I == 17)
          throw std::out_of_range("index 17");
      });
    } catch (const std::out_of_range &E) {
      Caught = true;
      EXPECT_STREQ(E.what(), "index 17");
    }
    EXPECT_TRUE(Caught);
  }
  // Still fully functional afterwards.
  std::atomic<int> Counter{0};
  Pool.parallelFor(32, [&Counter](std::size_t) { ++Counter; });
  EXPECT_EQ(Counter.load(), 32);
}

TEST(ThreadPoolTest, TaskGroupErrorsAreIsolated) {
  ThreadPool Pool(2);
  TaskGroup Good(Pool);
  TaskGroup Bad(Pool);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 8; ++I)
    Good.run([&Counter] { ++Counter; });
  Bad.run([] { throw std::logic_error("group-local"); });
  // The failing group does not leak its error into the healthy group...
  Good.wait();
  EXPECT_EQ(Counter.load(), 8);
  // ...nor into pool-level wait; only Bad.wait() observes it.
  EXPECT_THROW(Bad.wait(), std::logic_error);
  Pool.wait();
}

TEST(ThreadPoolTest, NestedExceptionPropagatesThroughOuterBody) {
  ThreadPool Pool(2);
  bool Caught = false;
  try {
    Pool.parallelFor(4, [&Pool](std::size_t) {
      Pool.parallelFor(4, [](std::size_t J) {
        if (J == 3)
          throw std::runtime_error("inner");
      });
    });
  } catch (const std::runtime_error &) {
    Caught = true;
  }
  EXPECT_TRUE(Caught);
}

//===----------------------------------------------------------------------===//
// Nested parallelism (the helping scheduler)
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool Pool(2);
  std::atomic<int> Counter{0};
  Pool.parallelFor(8, [&](std::size_t) {
    Pool.parallelFor(8, [&Counter](std::size_t) { ++Counter; });
  });
  EXPECT_EQ(Counter.load(), 64);
}

TEST(ThreadPoolTest, DeeplyNestedOnSingleThread) {
  // With one worker, every nested wait must help inline; blocking would
  // deadlock instantly.
  ThreadPool Pool(1);
  std::atomic<int> Counter{0};
  Pool.parallelFor(3, [&](std::size_t) {
    Pool.parallelFor(3, [&](std::size_t) {
      Pool.parallelFor(3, [&Counter](std::size_t) { ++Counter; });
    });
  });
  EXPECT_EQ(Counter.load(), 27);
}

TEST(ThreadPoolTest, NestedStressManyWaves) {
  ThreadPool Pool(4);
  std::atomic<long> Sum{0};
  for (int Wave = 0; Wave < 10; ++Wave) {
    Pool.parallelFor(16, [&](std::size_t I) {
      Pool.parallelFor(32, [&Sum, I](std::size_t J) {
        Sum.fetch_add(static_cast<long>(I + J));
      });
    });
  }
  // Per wave: sum over I<16, J<32 of (I+J) = 32*120 + 16*496 = 11776.
  EXPECT_EQ(Sum.load(), 10 * 11776);
}

TEST(ThreadPoolTest, WorkerSideWaitDrainsWithoutSelfDeadlock) {
  // A task that enqueues follow-up work and calls pool-level wait() must
  // not wait on itself (it is still outstanding while it waits); it
  // drains everything *else* and returns.
  ThreadPool Pool(1);
  std::atomic<int> FollowUps{0};
  std::atomic<bool> SawDrained{false};
  Pool.enqueue([&] {
    for (int I = 0; I < 10; ++I)
      Pool.enqueue([&FollowUps] { ++FollowUps; });
    Pool.wait();
    SawDrained = FollowUps.load() == 10;
  });
  Pool.wait();
  EXPECT_EQ(FollowUps.load(), 10);
  EXPECT_TRUE(SawDrained.load());
}

TEST(ThreadPoolTest, GroupTaskWaitingOnOwnGroupDrainsOthers) {
  // A group task that waits on its own group is excluded from the drain
  // target: it drains the group's *other* tasks and returns instead of
  // deadlocking on itself.
  ThreadPool Pool(1);
  TaskGroup Group(Pool);
  std::atomic<int> Others{0};
  std::atomic<bool> Drained{false};
  Group.run([&] {
    for (int I = 0; I < 5; ++I)
      Group.run([&Others] { ++Others; });
    Group.wait();
    Drained = Others.load() == 5;
  });
  Group.wait();
  EXPECT_EQ(Others.load(), 5);
  EXPECT_TRUE(Drained.load());
}

TEST(ThreadPoolTest, NonMemberGroupWaitOutlastsParkedMemberTask) {
  // A worker-side waiter that is not itself a task of the group (the
  // usual parallelFor owner) uses the strict drain target: it must not
  // return while a member task is merely asleep in its own same-group
  // wait — the owner frees the group on return.
  ThreadPool Pool(3);
  std::atomic<bool> MemberDone{false};
  std::atomic<bool> Observed{false};
  TaskGroup Outer(Pool);
  Outer.run([&] {
    TaskGroup G(Pool);
    G.run([&] {
      G.run([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      G.wait(); // Member self-wait: drains the sibling, excludes itself.
      MemberDone = true;
    });
    G.wait(); // Non-member: strict.
    Observed = MemberDone.load();
  });
  Outer.wait();
  EXPECT_TRUE(Observed.load());
}

TEST(ThreadPoolTest, GroupWaitOutlastsTaskParkedOnAnotherGroup) {
  // A group task asleep waiting on a *different* group is still running
  // as far as its own group is concerned: the group's waiter must not
  // return (and free group state) until that task truly finishes.
  ThreadPool Pool(3);
  std::atomic<bool> InnerDone{false};
  std::atomic<bool> ObservedDone{false};
  TaskGroup Outer(Pool);
  Outer.run([&] {
    TaskGroup G(Pool);
    G.run([&] {
      TaskGroup H(Pool);
      H.run([&InnerDone] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        InnerDone = true;
      });
      // Give another worker time to claim H's task, so this task parks
      // in H.wait() instead of helping inline.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      H.wait();
    });
    G.wait();
    ObservedDone = InnerDone.load();
  });
  Outer.wait();
  EXPECT_TRUE(ObservedDone.load());
}

TEST(ThreadPoolTest, WorkerSideWaitLeavesDetachedErrorToExternalWaiter) {
  // A detached task's exception belongs to the external pool observer; a
  // grouped task that calls pool-level wait() must neither consume it
  // nor have it re-attributed to its own group.
  ThreadPool Pool(2);
  TaskGroup Group(Pool);
  Pool.enqueue([] { throw std::runtime_error("detached failure"); });
  Group.run([&] { Pool.wait(); });
  Group.wait(); // The group itself stays clean.
  EXPECT_THROW(Pool.wait(), std::runtime_error);
}

TEST(ThreadPoolTest, ExternalGroupWaitBlocksUntilWorkersDrain) {
  // A non-worker thread waiting on a group blocks while the pool's
  // workers drain it (a width-N pool computes on exactly N threads;
  // only workers help inline).
  ThreadPool Pool(1);
  TaskGroup Group(Pool);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 100; ++I)
    Group.run([&Counter] { ++Counter; });
  Group.wait();
  EXPECT_EQ(Counter.load(), 100);
}

//===----------------------------------------------------------------------===//
// Shutdown behavior
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, ShutdownWhileBusyDrainsQueue) {
  std::atomic<int> Counter{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 200; ++I)
      Pool.enqueue([&Counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++Counter;
      });
    // Destructor runs with the queue still busy; it must drain, not drop.
  }
  EXPECT_EQ(Counter.load(), 200);
}

TEST(ThreadPoolDeathTest, EnqueueAfterShutdownIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH_IF_SUPPORTED(
      {
        ThreadPool *Leaked = nullptr;
        {
          ThreadPool Pool(1);
          Leaked = &Pool;
          Pool.enqueue([&] {
            // Keep enqueueing until the destructor flips the shutdown
            // flag; the push after that aborts. No timing window — the
            // loop only ends by dying.
            for (;;) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
              Leaked->enqueue([] {});
            }
          });
          // Destructor begins shutdown while the task loops.
        }
      },
      "enqueued after shutdown");
}
