//===----------------------------------------------------------------------===//
///
/// \file
/// Verifier-facade tests: solver-mode behavior, aggregate delivery,
/// output-field distributions, and the hop-statistics arithmetic used by
/// the Fig 12 analyses.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include <gtest/gtest.h>

using namespace mcnk;
using namespace mcnk::analysis;
using ast::Context;
using ast::Node;

namespace {

struct VerifierFixture : ::testing::Test {
  Context Ctx;
  FieldId F = Ctx.field("f");
  FieldId G = Ctx.field("g");

  Packet packet(FieldValue VF, FieldValue VG) {
    Packet P(2);
    P.set(F, VF);
    P.set(G, VG);
    return P;
  }
};

} // namespace

using VerifierTest = VerifierFixture;

TEST_F(VerifierTest, DeliveryProbability) {
  Verifier V;
  // f=0 ; (g:=1 ⊕¾ drop).
  fdd::FddRef P = V.compile(Ctx.seq(
      Ctx.test(F, 0),
      Ctx.choice(Rational(3, 4), Ctx.assign(G, 1), Ctx.drop())));
  EXPECT_EQ(V.deliveryProbability(P, packet(0, 0)), Rational(3, 4));
  EXPECT_EQ(V.deliveryProbability(P, packet(1, 0)), Rational(0));
  // Average over one passing and one failing ingress.
  EXPECT_EQ(V.averageDeliveryProbability(P, {packet(0, 0), packet(1, 0)}),
            Rational(3, 8));
}

TEST_F(VerifierTest, OutputFieldDistribution) {
  Verifier V;
  fdd::FddRef P = V.compile(Ctx.choice(
      Rational(1, 2), Ctx.assign(G, 1),
      Ctx.choice(Rational(1, 2), Ctx.assign(G, 2), Ctx.drop())));
  auto Dist = V.outputFieldDistribution(P, packet(0, 0), G);
  EXPECT_EQ(Dist[1], Rational(1, 2));
  EXPECT_EQ(Dist[2], Rational(1, 4));
  EXPECT_EQ(Dist.count(0), 0u);
}

TEST_F(VerifierTest, HopStatsArithmetic) {
  Verifier V;
  // Two "ingresses": one takes 2 hops w.p. 1, the other 4 hops w.p. 1/2
  // (dropped otherwise). Encode hops directly in field G.
  fdd::FddRef P = V.compile(Ctx.ite(
      Ctx.test(F, 0), Ctx.assign(G, 2),
      Ctx.choice(Rational(1, 2), Ctx.assign(G, 4), Ctx.drop())));
  HopStats Stats = V.hopStats(P, {packet(0, 0), packet(1, 0)}, G);
  // Delivered: 1/2·1 + 1/2·1/2 = 3/4.
  EXPECT_EQ(Stats.Delivered, Rational(3, 4));
  EXPECT_EQ(Stats.Histogram[2], Rational(1, 2));
  EXPECT_EQ(Stats.Histogram[4], Rational(1, 4));
  // CDF: ≤2 -> 1/2; ≤4 -> 3/4; monotone.
  EXPECT_EQ(Stats.cumulative(2), Rational(1, 2));
  EXPECT_EQ(Stats.cumulative(4), Rational(3, 4));
  EXPECT_EQ(Stats.cumulative(3), Rational(1, 2));
  // E[hops | delivered] = (2·1/2 + 4·1/4) / (3/4) = 8/3.
  EXPECT_NEAR(Stats.expectedGivenDelivered(), 8.0 / 3.0, 1e-12);
}

TEST_F(VerifierTest, HopStatsEmptyDelivery) {
  Verifier V;
  fdd::FddRef P = V.compile(Ctx.drop());
  HopStats Stats = V.hopStats(P, {packet(0, 0)}, G);
  EXPECT_EQ(Stats.Delivered, Rational(0));
  EXPECT_EQ(Stats.expectedGivenDelivered(), 0.0);
}

TEST_F(VerifierTest, SolverModesAgreeOnEquivalence) {
  // A loopy program where the float solvers snap to exact 0/1 values.
  const Node *Loop = Ctx.whileLoop(
      Ctx.test(F, 0),
      Ctx.choice(Rational(1, 2), Ctx.assign(F, 1), Ctx.assign(F, 0)));
  const Node *Spec = Ctx.ite(Ctx.test(F, 0), Ctx.assign(F, 1), Ctx.skip());

  Verifier Exact(markov::SolverKind::Exact);
  EXPECT_TRUE(Exact.equivalent(Exact.compile(Loop), Exact.compile(Spec)));

  Verifier Direct(markov::SolverKind::Direct);
  EXPECT_TRUE(
      Direct.equivalent(Direct.compile(Loop), Direct.compile(Spec)));

  Verifier Iter(markov::SolverKind::Iterative);
  EXPECT_TRUE(Iter.equivalent(Iter.compile(Loop), Iter.compile(Spec)));
}

TEST_F(VerifierTest, StrictRefinementIsIrreflexive) {
  Verifier V;
  fdd::FddRef P = V.compile(Ctx.assign(F, 1));
  EXPECT_TRUE(V.refines(P, P));
  EXPECT_FALSE(V.strictlyRefines(P, P));
}

TEST_F(VerifierTest, ParallelCompileMatchesSerial) {
  std::vector<ast::CaseNode::Branch> Branches;
  for (FieldValue Val = 0; Val < 6; ++Val)
    Branches.push_back({Ctx.test(F, Val), Ctx.assign(G, Val + 1)});
  const Node *C = Ctx.caseOf(std::move(Branches), Ctx.drop());
  Verifier V;
  EXPECT_EQ(V.compile(C), V.compile(C, /*Parallel=*/true, /*Threads=*/3));
}
