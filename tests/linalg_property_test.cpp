//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized properties of the fill-reducing ordering layer and the
/// solver kernels it feeds (docs/ARCHITECTURE.md S13): orderings are
/// permutations with exact round-trips, sparse LU under any ordering
/// agrees with dense elimination, the shared sparse Gauss-Jordan kernel
/// agrees exactly (Rational) with dense elimination, singular blocks are
/// detected by every path, and 1x1/empty blocks are handled.
///
//===----------------------------------------------------------------------===//

#include "linalg/Ordering.h"

#include "linalg/Solve.h"
#include "linalg/SparseLU.h"
#include "markov/Absorbing.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

using namespace mcnk;
using namespace mcnk::linalg;
using markov::detail::eliminateRationalSystem;
using markov::detail::luSolveOrdered;

namespace {

/// A random directed pattern over N vertices with roughly Density
/// out-edges per vertex.
AdjacencyList randomPattern(std::mt19937_64 &Rng, std::size_t N,
                            std::size_t Density) {
  AdjacencyList Adj(N);
  std::uniform_int_distribution<std::size_t> Vertex(0, N - 1);
  for (std::size_t U = 0; U < N; ++U)
    for (std::size_t E = 0; E < Density; ++E)
      Adj[U].push_back(Vertex(Rng));
  return Adj;
}

/// A random strictly diagonally dominant sparse system A = I - Q with
/// substochastic Q, as the absorbing-chain engines produce. Returns Q
/// triplets (local indices, +q values) and a matching dense A.
struct RandomSystem {
  std::size_t N;
  std::vector<Triplet> QTriplets;
  DenseMatrix<double> DenseA;
  std::vector<std::map<std::size_t, Rational>> Rows; // I - Q, sparse exact.
  DenseMatrix<Rational> DenseAExact;
};

RandomSystem randomSystem(std::mt19937_64 &Rng, std::size_t N) {
  RandomSystem S;
  S.N = N;
  S.DenseA = DenseMatrix<double>(N, N);
  S.DenseAExact = DenseMatrix<Rational>(N, N);
  S.Rows.resize(N);
  std::uniform_int_distribution<std::size_t> Vertex(0, N - 1);
  std::uniform_int_distribution<int> Den(3, 9);
  for (std::size_t I = 0; I < N; ++I) {
    S.Rows[I][I] = Rational(1);
    S.DenseA.at(I, I) = 1.0;
    S.DenseAExact.at(I, I) = Rational(1);
    int D = Den(Rng);
    // D-1 entries of weight 1/D leave at least 1/D of the row's mass
    // draining, so I - Q stays nonsingular.
    for (int E = 0; E + 1 < D; ++E) {
      std::size_t J = Vertex(Rng);
      Rational W(1, D);
      S.QTriplets.push_back({I, J, W.toDouble()});
      S.DenseA.at(I, J) -= W.toDouble();
      S.DenseAExact.at(I, J) -= W;
      Rational &Cell = S.Rows[I][J];
      Cell -= W;
      if (Cell.isZero())
        S.Rows[I].erase(J);
    }
  }
  return S;
}

} // namespace

class OrderingProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(OrderingProperty, OrderingsArePermutationsAndRoundTrip) {
  std::mt19937_64 Rng(GetParam());
  for (int Round = 0; Round < 30; ++Round) {
    std::uniform_int_distribution<std::size_t> Size(1, 60);
    std::size_t N = Size(Rng);
    AdjacencyList Sym = symmetrizedPattern(randomPattern(Rng, N, 3));
    // Symmetrized: every edge present both ways, no self-loops.
    for (std::size_t U = 0; U < N; ++U)
      for (std::size_t V : Sym[U]) {
        EXPECT_NE(U, V);
        EXPECT_TRUE(std::binary_search(Sym[V].begin(), Sym[V].end(), U));
      }
    for (OrderingKind Kind :
         {OrderingKind::Natural, OrderingKind::ReverseCuthillMcKee,
          OrderingKind::MinimumDegree}) {
      std::vector<std::size_t> Perm = fillReducingOrdering(Kind, Sym);
      ASSERT_EQ(Perm.size(), N) << orderingName(Kind);
      EXPECT_TRUE(isPermutation(Perm)) << orderingName(Kind);
      std::vector<std::size_t> Inv = inversePermutation(Perm);
      for (std::size_t K = 0; K < N; ++K) {
        EXPECT_EQ(Inv[Perm[K]], K);
        EXPECT_EQ(Perm[Inv[K]], K);
      }
    }
  }
}

TEST_P(OrderingProperty, SparseLUWithOrderingMatchesDenseElimination) {
  std::mt19937_64 Rng(GetParam() + 1000);
  for (int Round = 0; Round < 25; ++Round) {
    std::uniform_int_distribution<std::size_t> Size(1, 50);
    RandomSystem S = randomSystem(Rng, Size(Rng));
    std::size_t NumRhs = 2;
    DenseMatrix<double> B(S.N, NumRhs);
    std::uniform_real_distribution<double> Val(0.0, 1.0);
    for (std::size_t I = 0; I < S.N; ++I)
      for (std::size_t J = 0; J < NumRhs; ++J)
        B.at(I, J) = Val(Rng);

    DenseMatrix<double> Reference = B;
    DenseMatrix<double> A = S.DenseA;
    ASSERT_TRUE(denseSolveInPlace(A, Reference));

    for (OrderingKind Kind :
         {OrderingKind::Natural, OrderingKind::ReverseCuthillMcKee,
          OrderingKind::MinimumDegree}) {
      DenseMatrix<double> X = B;
      std::size_t Ops = 0, Fill = 0;
      ASSERT_TRUE(luSolveOrdered(S.N, S.QTriplets, X, Kind, Ops, Fill))
          << orderingName(Kind);
      for (std::size_t I = 0; I < S.N; ++I)
        for (std::size_t J = 0; J < NumRhs; ++J)
          EXPECT_NEAR(X.at(I, J), Reference.at(I, J), 1e-9)
              << orderingName(Kind);
    }
  }
}

TEST_P(OrderingProperty, SparseGaussJordanMatchesDenseExactly) {
  std::mt19937_64 Rng(GetParam() + 2000);
  for (int Round = 0; Round < 20; ++Round) {
    std::uniform_int_distribution<std::size_t> Size(1, 30);
    RandomSystem S = randomSystem(Rng, Size(Rng));
    std::size_t NumRhs = 2;
    std::vector<std::vector<Rational>> Rhs(S.N,
                                           std::vector<Rational>(NumRhs));
    DenseMatrix<Rational> B(S.N, NumRhs);
    std::uniform_int_distribution<int> Num(0, 6);
    for (std::size_t I = 0; I < S.N; ++I)
      for (std::size_t J = 0; J < NumRhs; ++J) {
        Rational V(Num(Rng), 7);
        Rhs[I][J] = V;
        B.at(I, J) = V;
      }

    DenseMatrix<Rational> A = S.DenseAExact;
    ASSERT_TRUE(denseSolveInPlace(A, B));
    std::size_t Ops = 0, Fill = 0;
    ASSERT_TRUE(eliminateRationalSystem(S.Rows, Rhs, Ops, Fill));
    // Exact arithmetic: the two elimination orders produce the *same*
    // rationals, not merely close ones.
    for (std::size_t I = 0; I < S.N; ++I)
      for (std::size_t J = 0; J < NumRhs; ++J)
        EXPECT_EQ(Rhs[I][J], B.at(I, J));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingProperty,
                         ::testing::Values(71u, 72u, 73u, 74u));

TEST(OrderingTest, SingularBlockDetectedByEveryPath) {
  // A 2-cycle with probability one: I - Q = [[1,-1],[-1,1]], singular.
  std::vector<Triplet> QT = {{0, 1, 1.0}, {1, 0, 1.0}};
  DenseMatrix<double> Rhs(2, 1);
  Rhs.at(0, 0) = 1.0;
  std::size_t Ops = 0, Fill = 0;
  for (OrderingKind Kind :
       {OrderingKind::Natural, OrderingKind::ReverseCuthillMcKee,
        OrderingKind::MinimumDegree}) {
    DenseMatrix<double> B = Rhs;
    EXPECT_FALSE(luSolveOrdered(2, QT, B, Kind, Ops, Fill))
        << orderingName(Kind);
  }

  std::vector<std::map<std::size_t, Rational>> Rows(2);
  Rows[0][0] = Rational(1);
  Rows[0][1] = Rational(-1);
  Rows[1][0] = Rational(-1);
  Rows[1][1] = Rational(1);
  std::vector<std::vector<Rational>> RhsR(2, std::vector<Rational>(1));
  RhsR[0][0] = Rational(1);
  EXPECT_FALSE(eliminateRationalSystem(Rows, RhsR, Ops, Fill));

  DenseMatrix<Rational> A(2, 2), B(2, 1);
  A.at(0, 0) = Rational(1);
  A.at(0, 1) = Rational(-1);
  A.at(1, 0) = Rational(-1);
  A.at(1, 1) = Rational(1);
  B.at(0, 0) = Rational(1);
  EXPECT_FALSE(denseSolveInPlace(A, B));
}

TEST(OrderingTest, OneByOneAndEmptyBlocks) {
  // Empty block: nothing to factor, nothing to solve.
  DenseMatrix<double> Empty(0, 3);
  std::size_t Ops = 0, Fill = 0;
  EXPECT_TRUE(luSolveOrdered(0, {}, Empty, OrderingKind::ReverseCuthillMcKee,
                             Ops, Fill));
  EXPECT_EQ(Ops, 0u);
  EXPECT_EQ(Fill, 0u);
  std::vector<std::map<std::size_t, Rational>> NoRows;
  std::vector<std::vector<Rational>> NoRhs;
  EXPECT_TRUE(eliminateRationalSystem(NoRows, NoRhs, Ops, Fill));

  // 1x1 block with a self-loop: (1 - 1/2) x = 1/4 -> x = 1/2.
  std::vector<Triplet> QT = {{0, 0, 0.5}};
  DenseMatrix<double> Rhs(1, 1);
  Rhs.at(0, 0) = 0.25;
  EXPECT_TRUE(
      luSolveOrdered(1, QT, Rhs, OrderingKind::MinimumDegree, Ops, Fill));
  EXPECT_DOUBLE_EQ(Rhs.at(0, 0), 0.5);

  std::vector<std::map<std::size_t, Rational>> Rows(1);
  Rows[0][0] = Rational(1, 2);
  std::vector<std::vector<Rational>> RhsR(1, std::vector<Rational>(1));
  RhsR[0][0] = Rational(1, 4);
  EXPECT_TRUE(eliminateRationalSystem(Rows, RhsR, Ops, Fill));
  EXPECT_EQ(RhsR[0][0], Rational(1, 2));

  // Ordering a singleton / empty graph is the identity.
  EXPECT_TRUE(fillReducingOrdering(OrderingKind::ReverseCuthillMcKee, {})
                  .empty());
  EXPECT_EQ(
      fillReducingOrdering(OrderingKind::MinimumDegree, AdjacencyList(1)),
      std::vector<std::size_t>{0});
}

TEST(OrderingTest, RcmReducesBandwidthOnAShuffledPath) {
  // A path graph numbered adversarially (even vertices first) has
  // bandwidth ~N/2; RCM renumbers it back to bandwidth 1.
  constexpr std::size_t N = 40;
  std::vector<std::size_t> Shuffled;
  for (std::size_t I = 0; I < N; I += 2)
    Shuffled.push_back(I);
  for (std::size_t I = 1; I < N; I += 2)
    Shuffled.push_back(I);
  std::vector<std::size_t> PosOf(N);
  for (std::size_t K = 0; K < N; ++K)
    PosOf[Shuffled[K]] = K;
  AdjacencyList Adj(N);
  for (std::size_t I = 0; I + 1 < N; ++I) {
    Adj[PosOf[I]].push_back(PosOf[I + 1]);
    Adj[PosOf[I + 1]].push_back(PosOf[I]);
  }
  std::vector<std::size_t> Perm = reverseCuthillMcKee(Adj);
  std::vector<std::size_t> Inv = inversePermutation(Perm);
  std::size_t Bandwidth = 0;
  for (std::size_t U = 0; U < N; ++U)
    for (std::size_t V : Adj[U]) {
      std::size_t D = Inv[U] > Inv[V] ? Inv[U] - Inv[V] : Inv[V] - Inv[U];
      Bandwidth = std::max(Bandwidth, D);
    }
  EXPECT_EQ(Bandwidth, 1u);
}
