//===----------------------------------------------------------------------===//
///
/// \file
/// Reference set-semantics tests: Fig 13 primitives, §4's star
/// construction, algebraic laws of the language (KAT and probabilistic),
/// and §2's running example verified end to end through the parser.
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "parser/Parser.h"
#include "semantics/SetSemantics.h"

#include <gtest/gtest.h>

using namespace mcnk;
using namespace mcnk::ast;
using namespace mcnk::semantics;

namespace {

/// One boolean field "f": domain {f=0, f=1}; packet index == value.
struct BoolFieldFixture : ::testing::Test {
  Context Ctx;
  FieldId F = Ctx.field("f");
  SetSemantics Sem{Ctx, PacketDomain({2})};

  static constexpr PacketSet None = 0b00;
  static constexpr PacketSet P0 = 0b01;
  static constexpr PacketSet P1 = 0b10;
  static constexpr PacketSet Both = 0b11;
};

} // namespace

using SetSemanticsTest = BoolFieldFixture;

TEST_F(SetSemanticsTest, Primitives) {
  EXPECT_EQ(Sem.eval(Ctx.drop(), Both), (SetDist{{None, Rational(1)}}));
  EXPECT_EQ(Sem.eval(Ctx.skip(), P1), (SetDist{{P1, Rational(1)}}));
  EXPECT_EQ(Sem.eval(Ctx.test(F, 0), Both), (SetDist{{P0, Rational(1)}}));
  EXPECT_EQ(Sem.eval(Ctx.test(F, 1), P0), (SetDist{{None, Rational(1)}}));
  EXPECT_EQ(Sem.eval(Ctx.assign(F, 1), Both), (SetDist{{P1, Rational(1)}}));
  EXPECT_EQ(Sem.eval(Ctx.assign(F, 0), P1), (SetDist{{P0, Rational(1)}}));
}

TEST_F(SetSemanticsTest, NegationIsComplementWithinInput) {
  const Node *T = Ctx.test(F, 0);
  EXPECT_EQ(Sem.eval(Ctx.negate(T), Both), (SetDist{{P1, Rational(1)}}));
  EXPECT_EQ(Sem.eval(Ctx.negate(T), P0), (SetDist{{None, Rational(1)}}));
  EXPECT_EQ(Sem.eval(Ctx.negate(T), P1), (SetDist{{P1, Rational(1)}}));
}

TEST_F(SetSemanticsTest, ChoiceSplitsMass) {
  const Node *P = Ctx.choice(Rational(1, 3), Ctx.assign(F, 0),
                             Ctx.assign(F, 1));
  SetDist Expected{{P0, Rational(1, 3)}, {P1, Rational(2, 3)}};
  EXPECT_EQ(Sem.eval(P, P0), Expected);
  EXPECT_EQ(Sem.eval(P, Both), Expected);
}

TEST_F(SetSemanticsTest, UnionIsNotIdempotentOnRandomPrograms) {
  // p & p correlates two independent runs of p (appendix A): for
  // p = f:=0 ⊕½ f:=1 on a singleton, p&p yields {0}@¼, {0,1}@½, {1}@¼.
  const Node *P = Ctx.choice(Rational(1, 2), Ctx.assign(F, 0),
                             Ctx.assign(F, 1));
  const Node *PP = Ctx.unite(P, P);
  SetDist Expected{
      {P0, Rational(1, 4)}, {Both, Rational(1, 2)}, {P1, Rational(1, 4)}};
  EXPECT_EQ(Sem.eval(PP, P0), Expected);
  EXPECT_FALSE(Sem.equivalent(PP, P));
}

TEST_F(SetSemanticsTest, StarCoinFlipFromSection4) {
  // p* with p = (f:=0 ⊕½ f:=1): the §4 example. From {0} the accumulator
  // reaches {0,1} almost surely.
  const Node *P = Ctx.choice(Rational(1, 2), Ctx.assign(F, 0),
                             Ctx.assign(F, 1));
  const Node *Star = Ctx.star(P);
  EXPECT_EQ(Sem.eval(Star, P0), (SetDist{{Both, Rational(1)}}));
  EXPECT_EQ(Sem.eval(Star, None), (SetDist{{None, Rational(1)}}));
}

TEST_F(SetSemanticsTest, StarCharacteristicEquation) {
  // p* ≡ skip & p ; p*.
  const Node *P = Ctx.choice(Rational(1, 3), Ctx.assign(F, 0),
                             Ctx.assign(F, 1));
  const Node *Star = Ctx.star(P);
  const Node *Unrolled = Ctx.unite(Ctx.skip(), Ctx.seq(P, Star));
  EXPECT_TRUE(Sem.equivalent(Star, Unrolled));
}

TEST_F(SetSemanticsTest, PredicateBooleanAlgebra) {
  // Lemma B.2: predicates form a Boolean algebra.
  const Node *T = Ctx.test(F, 0);
  EXPECT_TRUE(Sem.equivalent(Ctx.unite(T, Ctx.negate(T)), Ctx.skip()));
  EXPECT_TRUE(Sem.equivalent(Ctx.seq(T, Ctx.negate(T)), Ctx.drop()));
  EXPECT_TRUE(Sem.equivalent(Ctx.seq(T, T), T));
  EXPECT_TRUE(Sem.equivalent(Ctx.unite(T, T), T));
  // De Morgan (on this two-element field, ¬(f=0) behaves as f=1 only when
  // restricted to the input; check the algebraic identity instead).
  const Node *U = Ctx.test(F, 1);
  EXPECT_TRUE(Sem.equivalent(Ctx.negate(Ctx.unite(T, U)),
                             Ctx.seq(Ctx.negate(T), Ctx.negate(U))));
  EXPECT_TRUE(Sem.equivalent(Ctx.negate(Ctx.seq(T, U)),
                             Ctx.unite(Ctx.negate(T), Ctx.negate(U))));
}

TEST_F(SetSemanticsTest, GuardedDesugarings) {
  // if t then p else q ≡ t;p & ¬t;q and the while unrolling law.
  const Node *T = Ctx.test(F, 0);
  const Node *P = Ctx.assign(F, 1);
  const Node *Q = Ctx.choice(Rational(1, 2), Ctx.assign(F, 0), Ctx.drop());
  const Node *Ite = Ctx.ite(T, P, Q);
  const Node *Desugared =
      Ctx.unite(Ctx.seq(T, P), Ctx.seq(Ctx.negate(T), Q));
  EXPECT_TRUE(Sem.equivalent(Ite, Desugared));

  const Node *Loop = Ctx.whileLoop(T, P);
  const Node *Unrolled = Ctx.ite(T, Ctx.seq(P, Loop), Ctx.skip());
  EXPECT_TRUE(Sem.equivalent(Loop, Unrolled));
}

TEST_F(SetSemanticsTest, WhileLoopProbabilisticExit) {
  // while f=0 do (f:=1 ⊕½ f:=0): a.s. termination with output f=1 from
  // either start.
  const Node *Loop = Ctx.whileLoop(
      Ctx.test(F, 0),
      Ctx.choice(Rational(1, 2), Ctx.assign(F, 1), Ctx.assign(F, 0)));
  EXPECT_EQ(Sem.eval(Loop, P0), (SetDist{{P1, Rational(1)}}));
  EXPECT_EQ(Sem.eval(Loop, P1), (SetDist{{P1, Rational(1)}}));
}

TEST_F(SetSemanticsTest, DivergingWhileDrops) {
  // while skip do skip never exits; all mass diverges to ∅.
  const Node *Loop = Ctx.whileLoop(Ctx.test(F, 0), Ctx.assign(F, 0));
  EXPECT_EQ(Sem.eval(Loop, P0), (SetDist{{None, Rational(1)}}));
  // From f=1 the guard fails immediately.
  EXPECT_EQ(Sem.eval(Loop, P1), (SetDist{{P1, Rational(1)}}));
}

TEST_F(SetSemanticsTest, RefinementOrder) {
  const Node *P = Ctx.choice(Rational(1, 2), Ctx.assign(F, 1), Ctx.drop());
  const Node *Q = Ctx.assign(F, 1);
  EXPECT_TRUE(Sem.refines(Ctx.drop(), P));
  EXPECT_TRUE(Sem.refines(P, Q));
  EXPECT_FALSE(Sem.refines(Q, P));
  EXPECT_TRUE(Sem.refines(Q, Q));
}

TEST_F(SetSemanticsTest, SeqAssociativityAndUnits) {
  const Node *P = Ctx.choice(Rational(1, 4), Ctx.assign(F, 0),
                             Ctx.assign(F, 1));
  const Node *Q = Ctx.test(F, 0);
  const Node *R = Ctx.assign(F, 1);
  EXPECT_TRUE(Sem.equivalent(Ctx.seq(Ctx.seq(P, Q), R),
                             Ctx.seq(P, Ctx.seq(Q, R))));
  // Choice commutes with flipped probability.
  EXPECT_TRUE(Sem.equivalent(
      Ctx.choice(Rational(1, 4), Q, R),
      Ctx.choice(Rational(3, 4), R, Q)));
}

namespace {

/// §2 running example: triangle topology, switches 1..3, ports 1..3.
/// Fields sw and pt take values in {0..3} (0 unused).
struct RunningExampleFixture : ::testing::Test {
  Context Ctx;
  SetSemantics Sem{Ctx, PacketDomain({4, 4})};

  const Node *parse(const std::string &Source) {
    auto Result = parser::parseProgram(Source, Ctx);
    EXPECT_TRUE(Result.ok()) << (Result.Diagnostics.empty()
                                     ? std::string("?")
                                     : Result.Diagnostics[0].render());
    return Result.ok() ? Result.Program : Ctx.drop();
  }

  /// Compares programs on every singleton input (the per-packet view the
  /// tool works with; see §5's single-packet restriction).
  bool equivalentOnSingletons(const Node *P, const Node *Q) {
    for (std::size_t I = 0; I < Sem.domain().numPackets(); ++I) {
      PacketSet A = 1ULL << I;
      if (Sem.eval(P, A) != Sem.eval(Q, A))
        return false;
    }
    return Sem.eval(P, 0) == Sem.eval(Q, 0);
  }
};

} // namespace

TEST_F(RunningExampleFixture, ModelEquivalentToTeleport) {
  // Field order: this fixture interns sw then pt inside the sources.
  const Node *Model = parse(
      "sw=1 ; pt=1 ; "
      "(if sw=1 then pt:=2 else if sw=2 then pt:=2 else drop) ; "
      "while !(sw=2 ; pt=2) do ("
      "  (if sw=1 ; pt=2 then sw:=2 ; pt:=1 else "
      "   if sw=2 ; pt=2 then skip else "
      "   if sw=1 ; pt=3 then sw:=3 ; pt:=1 else "
      "   if sw=3 ; pt=2 then sw:=2 ; pt:=3 else drop) ; "
      "  (if sw=1 then pt:=2 else if sw=2 then pt:=2 else drop))");
  const Node *Teleport = parse("sw=1 ; pt=1 ; sw:=2 ; pt:=2");
  EXPECT_TRUE(equivalentOnSingletons(Model, Teleport));
}

TEST_F(RunningExampleFixture, DeliveryProbabilityUnderFailures) {
  // A §2-flavored single-hop failure model: the link from switch 1 to 2
  // fails with probability 1/5; packets take it if it is up and are
  // dropped otherwise. Delivery probability must be exactly 4/5.
  const Node *Model = parse(
      "var up2 := 1 in ("
      "  sw=1 ; pt=1 ; "
      "  (up2:=1 +[4/5] up2:=0) ; "
      "  (if up2=1 then sw:=2 ; pt:=2 else drop))");
  // Output packet: sw=2, pt=2 (up2 is erased to 0 by the var scope).
  FieldId Sw = Ctx.fields().lookup("sw");
  FieldId Pt = Ctx.fields().lookup("pt");
  FieldId Up2 = Ctx.fields().lookup("up2");
  ASSERT_NE(Up2, FieldTable::NotFound);
  // Domain: sw, pt interned first by the *fixture*? They are interned by
  // parse order: var up2 first! Rebuild indices from the table.
  SetSemantics Local(Ctx, PacketDomain(std::vector<FieldValue>(
                              Ctx.fields().numFields(), 4)));
  Packet In(Ctx.fields().numFields());
  In.set(Sw, 1);
  In.set(Pt, 1);
  Packet Out(Ctx.fields().numFields());
  Out.set(Sw, 2);
  Out.set(Pt, 2);
  PacketSet A = Local.singleton(In);
  Rational Delivered =
      Local.outputProbability(Model, A, Local.singleton(Out));
  Rational Dropped = Local.outputProbability(Model, A, 0);
  EXPECT_EQ(Delivered, Rational(4, 5));
  EXPECT_EQ(Dropped, Rational(1, 5));
}
