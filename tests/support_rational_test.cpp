//===----------------------------------------------------------------------===//
///
/// \file
/// Rational unit and property tests: normalization invariants, field axioms
/// over a randomized sweep, ordering, and double conversion accuracy.
///
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include <gtest/gtest.h>

#include <random>

using mcnk::BigInt;
using mcnk::Rational;

TEST(RationalTest, NormalizationInvariants) {
  Rational A(6, 8);
  EXPECT_EQ(A.numerator(), BigInt(3));
  EXPECT_EQ(A.denominator(), BigInt(4));

  Rational B(-6, 8);
  EXPECT_EQ(B.numerator(), BigInt(-3));
  EXPECT_EQ(B.denominator(), BigInt(4));

  // Negative denominators normalize to positive.
  Rational C(6, -8);
  EXPECT_EQ(C.numerator(), BigInt(-3));
  EXPECT_EQ(C.denominator(), BigInt(4));

  Rational Zero(0, 17);
  EXPECT_TRUE(Zero.isZero());
  EXPECT_EQ(Zero.denominator(), BigInt(1));
  EXPECT_EQ(Zero, Rational());
}

TEST(RationalTest, ArithmeticBasics) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
  EXPECT_EQ(Rational(1, 3).reciprocal(), Rational(3));
}

TEST(RationalTest, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LT(Rational(-1, 2), Rational(0));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 8), Rational(6, 7));
}

TEST(RationalTest, IsProbability) {
  EXPECT_TRUE(Rational(0).isProbability());
  EXPECT_TRUE(Rational(1).isProbability());
  EXPECT_TRUE(Rational(1, 1000).isProbability());
  EXPECT_FALSE(Rational(-1, 2).isProbability());
  EXPECT_FALSE(Rational(3, 2).isProbability());
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).toDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-1, 4).toDouble(), -0.25);
  EXPECT_DOUBLE_EQ(Rational(1, 3).toDouble(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Rational(0).toDouble(), 0.0);
  // Huge numerator and denominator whose ratio is modest.
  BigInt Big = BigInt::pow(BigInt(10), 50);
  Rational Ratio(Big * BigInt(3), Big * BigInt(4));
  EXPECT_DOUBLE_EQ(Ratio.toDouble(), 0.75);
  // Tiny probability from a long failure chain: (1/1000)^10.
  Rational Tiny = Rational(1);
  for (int I = 0; I < 10; ++I)
    Tiny *= Rational(1, 1000);
  EXPECT_NEAR(Tiny.toDouble(), 1e-30, 1e-30 * 1e-12);
}

TEST(RationalTest, StringRoundTrip) {
  EXPECT_EQ(Rational(1, 2).toString(), "1/2");
  EXPECT_EQ(Rational(5).toString(), "5");
  EXPECT_EQ(Rational(-7, 3).toString(), "-7/3");

  Rational Parsed;
  ASSERT_TRUE(Rational::fromString("22/7", Parsed));
  EXPECT_EQ(Parsed, Rational(22, 7));
  ASSERT_TRUE(Rational::fromString("-5", Parsed));
  EXPECT_EQ(Parsed, Rational(-5));
  EXPECT_FALSE(Rational::fromString("1/0", Parsed));
  EXPECT_FALSE(Rational::fromString("a/b", Parsed));
  EXPECT_FALSE(Rational::fromString("", Parsed));
}

/// Field-axiom property sweep on random small rationals.
class RationalFieldProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RationalFieldProperty, Axioms) {
  std::mt19937_64 Rng(GetParam());
  std::uniform_int_distribution<int64_t> Num(-50, 50);
  std::uniform_int_distribution<int64_t> Den(1, 50);
  auto Random = [&] { return Rational(Num(Rng), Den(Rng)); };

  for (int Round = 0; Round < 50; ++Round) {
    Rational A = Random(), B = Random(), C = Random();
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ(A * B, B * A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    EXPECT_EQ((A * B) * C, A * (B * C));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ(A + Rational(), A);
    EXPECT_EQ(A * Rational::one(), A);
    EXPECT_EQ(A - A, Rational());
    if (!A.isZero()) {
      EXPECT_EQ(A * A.reciprocal(), Rational::one());
      EXPECT_EQ(B / A * A, B);
    }
    // Ordering is total and consistent with subtraction.
    EXPECT_EQ(A < B, (A - B).isNegative());
    // Hash respects equality.
    EXPECT_EQ((A + B).hash(), (B + A).hash());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalFieldProperty,
                         ::testing::Values(11u, 12u, 13u, 14u));

TEST(RationalTest, ConvexCombinationStaysProbability) {
  // p ⊕_r q with probabilities keeps mass in [0,1] — the shape of every
  // FDD leaf operation.
  Rational R(1, 3);
  Rational P(4, 5), Q(1, 8);
  Rational Mix = R * P + (Rational::one() - R) * Q;
  EXPECT_TRUE(Mix.isProbability());
  // 1/3 * 4/5 + 2/3 * 1/8 = 4/15 + 1/12 = 7/20.
  EXPECT_EQ(Mix, Rational(7, 20));
}
