//===----------------------------------------------------------------------===//
///
/// \file
/// AST tests: RTTI, predicate classification, smart-constructor
/// normalizations, derived forms (n-ary choice, var, case), traversal
/// analyses, and printing.
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/Hash.h"
#include "ast/Printer.h"
#include "ast/Traversal.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace mcnk;
using namespace mcnk::ast;

namespace {

struct AstFixture : ::testing::Test {
  Context Ctx;
  FieldId Sw = Ctx.field("sw");
  FieldId Pt = Ctx.field("pt");
};

} // namespace

using AstTest = AstFixture;

TEST_F(AstTest, KindsAndRtti) {
  const Node *T = Ctx.test(Sw, 1);
  EXPECT_TRUE(isa<TestNode>(T));
  EXPECT_FALSE(isa<AssignNode>(T));
  EXPECT_EQ(cast<TestNode>(T)->field(), Sw);
  EXPECT_EQ(cast<TestNode>(T)->value(), 1u);
  EXPECT_EQ(dyn_cast<AssignNode>(T), nullptr);
  const Node *A = Ctx.assign(Pt, 2);
  EXPECT_NE(dyn_cast<AssignNode>(A), nullptr);
}

TEST_F(AstTest, PredicateClassification) {
  const Node *T1 = Ctx.test(Sw, 1);
  const Node *T2 = Ctx.test(Pt, 2);
  EXPECT_TRUE(Ctx.drop()->isPredicate());
  EXPECT_TRUE(Ctx.skip()->isPredicate());
  EXPECT_TRUE(T1->isPredicate());
  EXPECT_TRUE(Ctx.seq(T1, T2)->isPredicate());       // Conjunction.
  EXPECT_TRUE(Ctx.unite(T1, T2)->isPredicate());     // Disjunction.
  EXPECT_TRUE(Ctx.negate(T1)->isPredicate());
  EXPECT_FALSE(Ctx.assign(Sw, 1)->isPredicate());
  EXPECT_FALSE(Ctx.seq(T1, Ctx.assign(Pt, 2))->isPredicate());
  EXPECT_FALSE(Ctx.choice(Rational(1, 2), T1, T2)->isPredicate());
}

TEST_F(AstTest, SmartConstructorNormalization) {
  const Node *P = Ctx.assign(Pt, 2);
  // skip/drop units and absorption for ';'.
  EXPECT_EQ(Ctx.seq(Ctx.skip(), P), P);
  EXPECT_EQ(Ctx.seq(P, Ctx.skip()), P);
  EXPECT_EQ(Ctx.seq(Ctx.drop(), P), Ctx.drop());
  EXPECT_EQ(Ctx.seq(P, Ctx.drop()), Ctx.drop());
  // drop is the unit of '&'.
  EXPECT_EQ(Ctx.unite(Ctx.drop(), P), P);
  EXPECT_EQ(Ctx.unite(P, Ctx.drop()), P);
  // Trivial probabilities collapse.
  const Node *Q = Ctx.assign(Pt, 3);
  EXPECT_EQ(Ctx.choice(Rational(1), P, Q), P);
  EXPECT_EQ(Ctx.choice(Rational(0), P, Q), Q);
  EXPECT_EQ(Ctx.choice(Rational(1, 2), P, P), P);
  // Double negation and constant negations.
  const Node *T = Ctx.test(Sw, 1);
  EXPECT_EQ(Ctx.negate(Ctx.negate(T)), T);
  EXPECT_EQ(Ctx.negate(Ctx.drop()), Ctx.skip());
  EXPECT_EQ(Ctx.negate(Ctx.skip()), Ctx.drop());
  // Trivial guards collapse.
  EXPECT_EQ(Ctx.ite(Ctx.skip(), P, Q), P);
  EXPECT_EQ(Ctx.ite(Ctx.drop(), P, Q), Q);
  EXPECT_EQ(Ctx.whileLoop(Ctx.drop(), P), Ctx.skip());
  // Star of constants.
  EXPECT_EQ(Ctx.star(Ctx.skip()), Ctx.skip());
  EXPECT_EQ(Ctx.star(Ctx.drop()), Ctx.skip());
}

TEST_F(AstTest, UniformChoiceProbabilities) {
  const Node *A = Ctx.assign(Pt, 1);
  const Node *B = Ctx.assign(Pt, 2);
  const Node *C = Ctx.assign(Pt, 3);
  const Node *U = Ctx.choiceUniform({A, B, C});
  // p1 ⊕_{1/3} (p2 ⊕_{1/2} p3).
  const auto *Outer = dyn_cast<ChoiceNode>(U);
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->probability(), Rational(1, 3));
  const auto *Inner = dyn_cast<ChoiceNode>(Outer->rhs());
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->probability(), Rational(1, 2));
}

TEST_F(AstTest, WeightedChoiceFromPaperSection2) {
  // f1 ≜ ⊕ { f0 @ 1/2, a @ 1/4, b @ 1/4 } — §2's failure model shape.
  const Node *F0 = Ctx.skip();
  const Node *A = Ctx.assign(Pt, 1);
  const Node *B = Ctx.assign(Pt, 2);
  const Node *W = Ctx.choiceWeighted(
      {{F0, Rational(1, 2)}, {A, Rational(1, 4)}, {B, Rational(1, 4)}});
  const auto *Outer = dyn_cast<ChoiceNode>(W);
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->probability(), Rational(1, 2));
  EXPECT_EQ(Outer->lhs(), F0);
  const auto *Inner = dyn_cast<ChoiceNode>(Outer->rhs());
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->probability(), Rational(1, 2)); // 1/4 renormalized.
}

TEST_F(AstTest, LocalDesugarsToAssignSandwich) {
  // var f := 1 in p  ≜  f := 1 ; p ; f := 0.
  const Node *Body = Ctx.test(Sw, 1);
  const Node *L = Ctx.local(Pt, 1, Body);
  const auto *S = dyn_cast<SeqNode>(L);
  ASSERT_NE(S, nullptr);
  const auto *First = dyn_cast<AssignNode>(S->lhs());
  ASSERT_NE(First, nullptr);
  EXPECT_EQ(First->value(), 1u);
  const auto *Rest = dyn_cast<SeqNode>(S->rhs());
  ASSERT_NE(Rest, nullptr);
  EXPECT_EQ(Rest->lhs(), Body);
  EXPECT_EQ(cast<AssignNode>(Rest->rhs())->value(), 0u);
}

TEST_F(AstTest, StructuralEqualityAndHash) {
  const Node *A = Ctx.seq(Ctx.test(Sw, 1), Ctx.assign(Pt, 2));
  const Node *B = Ctx.seq(Ctx.test(Sw, 1), Ctx.assign(Pt, 2));
  const Node *C = Ctx.seq(Ctx.test(Sw, 2), Ctx.assign(Pt, 2));
  EXPECT_NE(A, B); // Different allocations...
  EXPECT_TRUE(structurallyEqual(A, B));
  EXPECT_EQ(structuralHash(A), structuralHash(B));
  EXPECT_FALSE(structurallyEqual(A, C));
}

TEST_F(AstTest, GuardedFragmentCheck) {
  const Node *T = Ctx.test(Sw, 1);
  const Node *P = Ctx.assign(Pt, 2);
  EXPECT_TRUE(isGuarded(Ctx.ite(T, P, Ctx.drop())));
  EXPECT_TRUE(isGuarded(Ctx.whileLoop(Ctx.negate(T), P)));
  EXPECT_TRUE(isGuarded(Ctx.unite(T, Ctx.test(Pt, 7)))); // Predicate union.
  EXPECT_FALSE(isGuarded(Ctx.star(P)));
  EXPECT_FALSE(isGuarded(Ctx.unite(P, Ctx.assign(Pt, 3))));
  EXPECT_FALSE(isGuarded(Ctx.seq(T, Ctx.star(P))));
  // Choice is allowed in the guarded fragment.
  EXPECT_TRUE(isGuarded(Ctx.choice(Rational(1, 2), P, Ctx.drop())));
}

TEST_F(AstTest, CollectValues) {
  const Node *P = Ctx.ite(Ctx.test(Sw, 1), Ctx.assign(Pt, 2),
                          Ctx.seq(Ctx.test(Pt, 3), Ctx.assign(Sw, 4)));
  auto Values = collectValues(P);
  EXPECT_EQ(Values[Sw], (std::set<FieldValue>{1, 4}));
  EXPECT_EQ(Values[Pt], (std::set<FieldValue>{2, 3}));
}

TEST_F(AstTest, CountAndDepth) {
  const Node *T = Ctx.test(Sw, 1);
  EXPECT_EQ(countNodes(T), 1u);
  EXPECT_EQ(depth(T), 1u);
  const Node *P = Ctx.seq(T, Ctx.seq(Ctx.assign(Pt, 1), Ctx.assign(Pt, 2)));
  EXPECT_EQ(countNodes(P), 5u);
  EXPECT_EQ(depth(P), 3u);
}

TEST_F(AstTest, PrintBasics) {
  EXPECT_EQ(print(Ctx.drop(), Ctx.fields()), "drop");
  EXPECT_EQ(print(Ctx.test(Sw, 1), Ctx.fields()), "sw=1");
  EXPECT_EQ(print(Ctx.assign(Pt, 2), Ctx.fields()), "pt:=2");
  EXPECT_EQ(print(Ctx.seq(Ctx.test(Sw, 1), Ctx.assign(Pt, 2)), Ctx.fields()),
            "sw=1 ; pt:=2");
  EXPECT_EQ(print(Ctx.negate(Ctx.test(Sw, 1)), Ctx.fields()), "!sw=1");
  const Node *Choice = Ctx.choice(Rational(1, 2), Ctx.assign(Pt, 2),
                                  Ctx.assign(Pt, 3));
  EXPECT_EQ(print(Choice, Ctx.fields()), "pt:=2 +[1/2] pt:=3");
  const Node *Ite =
      Ctx.ite(Ctx.test(Sw, 1), Ctx.assign(Pt, 2), Ctx.drop());
  EXPECT_EQ(print(Ite, Ctx.fields()), "if sw=1 then pt:=2 else drop");
}

TEST_F(AstTest, PrintParenthesizesNestedIf) {
  const Node *Inner = Ctx.ite(Ctx.test(Sw, 2), Ctx.assign(Pt, 9), Ctx.drop());
  const Node *Outer = Ctx.ite(Ctx.test(Sw, 1), Ctx.assign(Pt, 2), Inner);
  EXPECT_EQ(print(Outer, Ctx.fields()),
            "if sw=1 then pt:=2 else (if sw=2 then pt:=9 else drop)");
  // A while in a sequence must parenthesize.
  const Node *W = Ctx.whileLoop(Ctx.negate(Ctx.test(Sw, 1)),
                                Ctx.assign(Sw, 1));
  const Node *S = Ctx.seq(Ctx.test(Pt, 1), W);
  EXPECT_EQ(print(S, Ctx.fields()), "pt=1 ; (while !sw=1 do sw:=1)");
}

TEST_F(AstTest, CasePrintsWithSurfaceSyntax) {
  std::vector<CaseNode::Branch> Branches = {
      {Ctx.test(Sw, 1), Ctx.assign(Pt, 1)},
      {Ctx.test(Sw, 2), Ctx.assign(Pt, 2)},
  };
  const Node *C = Ctx.caseOf(std::move(Branches), Ctx.drop());
  EXPECT_EQ(print(C, Ctx.fields()),
            "case { sw=1 -> pt:=1 | sw=2 -> pt:=2 | else -> drop }");
}

//===----------------------------------------------------------------------===//
// Structural fingerprints (ast/Hash.h) — the compile-cache keys
//===----------------------------------------------------------------------===//

TEST_F(AstTest, FingerprintIsDeterministicAndContextFree) {
  const Node *P = Ctx.seq(Ctx.test(Sw, 1), Ctx.assign(Pt, 2));
  EXPECT_EQ(programHash(P), programHash(P));
  // A structurally identical term built in a fresh context (same numeric
  // field ids) fingerprints identically: the hash sees structure, not
  // arena pointers or field names.
  Context Other;
  FieldId OSw = Other.field("switch"); // Same id, different name.
  FieldId OPt = Other.field("port");
  ASSERT_EQ(OSw, Sw);
  ASSERT_EQ(OPt, Pt);
  const Node *Q = Other.seq(Other.test(OSw, 1), Other.assign(OPt, 2));
  EXPECT_EQ(programHash(P), programHash(Q));
}

TEST_F(AstTest, FingerprintSeparatesDistinctPrograms) {
  const Node *P = Ctx.seq(Ctx.test(Sw, 1), Ctx.assign(Pt, 2));
  EXPECT_NE(programHash(P),
            programHash(Ctx.seq(Ctx.test(Sw, 2), Ctx.assign(Pt, 2))));
  EXPECT_NE(programHash(P),
            programHash(Ctx.seq(Ctx.test(Pt, 1), Ctx.assign(Pt, 2))));
  EXPECT_NE(programHash(Ctx.test(Sw, 1)),
            programHash(Ctx.assign(Sw, 1)));
  EXPECT_NE(programHash(Ctx.drop()), programHash(Ctx.skip()));
  // Program (non-predicate) sequencing is order-sensitive.
  const Node *AB = Ctx.seq(Ctx.assign(Sw, 1), Ctx.assign(Sw, 2));
  const Node *BA = Ctx.seq(Ctx.assign(Sw, 2), Ctx.assign(Sw, 1));
  EXPECT_NE(programHash(AB), programHash(BA));
}

TEST_F(AstTest, FingerprintCommutativityMatchesFddInvariance) {
  const Node *T = Ctx.test(Sw, 1);
  const Node *U = Ctx.test(Pt, 2);
  // Predicate disjunction and predicate conjunction commute.
  EXPECT_EQ(programHash(Ctx.unite(T, U)), programHash(Ctx.unite(U, T)));
  EXPECT_EQ(programHash(Ctx.seq(T, U)), programHash(Ctx.seq(U, T)));
  // But `t & u` must not collide with `t ; u`.
  EXPECT_NE(programHash(Ctx.unite(T, U)), programHash(Ctx.seq(T, U)));
  // Choice reversal: p (+)_r q == q (+)_{1-r} p ...
  const Node *P = Ctx.assign(Sw, 1);
  const Node *Q = Ctx.assign(Sw, 2);
  EXPECT_EQ(programHash(Ctx.choice(Rational(1, 3), P, Q)),
            programHash(Ctx.choice(Rational(2, 3), Q, P)));
  // ... while a plain operand swap at the same bias stays distinct.
  EXPECT_NE(programHash(Ctx.choice(Rational(1, 3), P, Q)),
            programHash(Ctx.choice(Rational(1, 3), Q, P)));
}

TEST_F(AstTest, FingerprintTreeMemoizesAndSizesSubterms) {
  const Node *Leafy = Ctx.test(Sw, 1);
  const Node *P = Ctx.ite(Leafy, Ctx.assign(Pt, 1), Ctx.assign(Pt, 2));
  FingerprintMemo Memo;
  const NodeFingerprint &Root = fingerprintTree(P, Memo);
  EXPECT_EQ(Root.Size, 4u); // ite + test + two assigns.
  ASSERT_TRUE(Memo.count(Leafy));
  EXPECT_EQ(Memo.at(Leafy).Size, 1u);
  // Incremental reuse: fingerprinting a superterm extends the same memo.
  const Node *Bigger = Ctx.seq(P, P);
  fingerprintTree(Bigger, Memo);
  EXPECT_EQ(Memo.at(Bigger).Size, 9u); // Shared subterm counted twice.
  EXPECT_EQ(programHash(Bigger), Memo.at(Bigger).Hash);
}
