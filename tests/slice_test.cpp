//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the S17 field-dependency analysis (ast/Deps.h) and
/// query-directed cone-of-influence slicing (ast/Slice.h): dependency and
/// cone facts on hand-written programs, golden diagnostics for the three
/// dependency lint checks, golden slice rewrites per observation class,
/// the Verifier::setSlice hook, and the slicing-soundness property —
/// sliced and unsliced programs answer every delivery query identically —
/// over seeded random programs, half of them with a planted write-only
/// field the slicer must shed.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "ast/Deps.h"
#include "ast/Printer.h"
#include "ast/Slice.h"
#include "ast/Traversal.h"
#include "gen/ProgramGen.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace mcnk;
using namespace mcnk::ast;

namespace {

struct SliceFixture : ::testing::Test {
  Context Ctx;

  const Node *parse(const std::string &Source) {
    parser::ParseResult Result = parser::parseProgram(Source, Ctx);
    EXPECT_TRUE(Result.ok()) << (Result.Diagnostics.empty()
                                     ? std::string("no diagnostics")
                                     : Result.Diagnostics[0].render());
    return Result.ok() ? Result.Program : Ctx.drop();
  }

  FieldId field(const std::string &Name) { return Ctx.field(Name); }
};

} // namespace

using SliceTest = SliceFixture;

//===----------------------------------------------------------------------===//
// Dependency facts
//===----------------------------------------------------------------------===//

TEST_F(SliceTest, ReadWrittenAndDropFacts) {
  const Node *P = parse("if sw=1 then pt:=2 else drop");
  FieldDeps Deps(Ctx, P);
  FieldId Sw = field("sw"), Pt = field("pt");
  EXPECT_TRUE(Deps.read(Sw));
  EXPECT_FALSE(Deps.written(Sw));
  EXPECT_TRUE(Deps.written(Pt));
  EXPECT_FALSE(Deps.read(Pt));
  // The guard chooses between delivering and dropping, so a test on sw
  // can change the delivered mass.
  EXPECT_TRUE(Deps.dropDep(Sw));
  // The assignment to pt executes under the sw guard.
  EXPECT_TRUE(Deps.edge(Sw, Pt));
  EXPECT_FALSE(Deps.edge(Pt, Sw));
}

TEST_F(SliceTest, ConeExcludesUnobservableDependencyCycle) {
  // tag and vlan feed only each other; the delivered mass depends on sw
  // alone, so the delivery cone is exactly {sw}.
  const Node *P = parse("(if tag=1 then vlan:=1 else vlan:=2);\n"
                        "(if vlan=1 then tag:=1 else tag:=2);\n"
                        "(if sw=1 then skip else drop)");
  FieldDeps Deps(Ctx, P);
  std::vector<bool> Cone = Deps.coneOfInfluence(ObservationSet::delivery());
  EXPECT_TRUE(Cone[field("sw")]);
  EXPECT_FALSE(Cone[field("tag")]);
  EXPECT_FALSE(Cone[field("vlan")]);
  // Observing vlan pulls the whole cycle in: tag guards vlan's writes and
  // vlan guards tag's.
  std::vector<bool> VlanCone =
      Deps.coneOfInfluence(ObservationSet::fields({field("vlan")}));
  EXPECT_TRUE(VlanCone[field("vlan")]);
  EXPECT_TRUE(VlanCone[field("tag")]);
  // The all-fields observation (equivalence queries) includes everything.
  std::vector<bool> All = Deps.coneOfInfluence(ObservationSet::all());
  for (std::size_t F = 0; F < Deps.numFields(); ++F)
    EXPECT_TRUE(All[F]);
}

TEST_F(SliceTest, WhileGuardFieldIsDropRelevant) {
  // A while guard can diverge (losing mass), so its field feeds delivery.
  const Node *P = parse("while pt=2 do (pt:=0 +[1/2] pt:=2)");
  FieldDeps Deps(Ctx, P);
  std::vector<bool> Cone = Deps.coneOfInfluence(ObservationSet::delivery());
  EXPECT_TRUE(Deps.dropDep(field("pt")));
  EXPECT_TRUE(Cone[field("pt")]);
}

//===----------------------------------------------------------------------===//
// Dependency lint checks (golden diagnostics)
//===----------------------------------------------------------------------===//

TEST_F(SliceTest, WriteOnlyFieldGolden) {
  std::vector<Finding> Fs =
      analyzeDeps(Ctx, parse("meter:=7; (if sw=1 then skip else drop)"));
  ASSERT_EQ(Fs.size(), 1u);
  EXPECT_EQ(Fs[0].Check, CheckKind::WriteOnlyField);
  EXPECT_EQ(Fs[0].render("net.pnk"),
            "net.pnk:1:1: warning[write-only-field]: field 'meter' is "
            "assigned but never tested; its writes cannot influence any "
            "decision or the delivered mass");
}

TEST_F(SliceTest, DeadFieldAndQueryIrrelevantGolden) {
  std::vector<Finding> Fs =
      analyzeDeps(Ctx, parse("(if tag=1 then vlan:=1 else vlan:=2);\n"
                             "(if vlan=1 then tag:=1 else tag:=2);\n"
                             "(if sw=1 then skip else drop)"));
  // tag and vlan are each read and written, but their dependency cycle
  // never reaches the delivery cone {sw}: one dead-field finding per
  // field plus one query-irrelevant finding per assignment, and no
  // write-only noise.
  ASSERT_EQ(Fs.size(), 6u);
  EXPECT_EQ(Fs[0].render("net.pnk"),
            "net.pnk:1:5: warning[dead-field]: field 'tag' is outside the "
            "delivery cone of influence; no delivery query can observe it");
  EXPECT_EQ(Fs[1].render("net.pnk"),
            "net.pnk:1:16: warning[query-irrelevant-assignment]: assignment "
            "to 'vlan' cannot be observed by any delivery query");
  unsigned DeadFields = 0, Irrelevant = 0;
  for (const Finding &F : Fs) {
    DeadFields += F.Check == CheckKind::DeadField;
    Irrelevant += F.Check == CheckKind::QueryIrrelevantAssignment;
  }
  EXPECT_EQ(DeadFields, 2u);
  EXPECT_EQ(Irrelevant, 4u);
}

TEST_F(SliceTest, CleanProgramHasNoDependencyFindings) {
  EXPECT_TRUE(
      analyzeDeps(Ctx, parse("if sw=1 then pt:=2; (if pt=2 then skip else "
                             "drop) else drop"))
          .empty());
}

//===----------------------------------------------------------------------===//
// Slice rewrites
//===----------------------------------------------------------------------===//

TEST_F(SliceTest, DeliverySliceRemovesWriteOnlyAssignment) {
  const Node *P = parse("meter:=7; (if sw=1 then skip else drop)");
  SliceResult R = slice(Ctx, P, ObservationSet::delivery());
  EXPECT_EQ(R.Stats.AssignmentsRemoved, 1u);
  EXPECT_TRUE(structurallyEqual(R.Program,
                                parse("if sw=1 then skip else drop")));
  EXPECT_LT(R.Stats.NodesAfter, R.Stats.NodesBefore);
  EXPECT_EQ(R.Stats.FieldsRelevant + 1, R.Stats.FieldsBefore);
}

TEST_F(SliceTest, SliceIsIdentityOnRelevantPrograms) {
  const Node *P = parse("if sw=1 then skip else drop");
  SliceResult R = slice(Ctx, P, ObservationSet::delivery());
  EXPECT_EQ(R.Program, P); // Unchanged programs come back by pointer.
  EXPECT_EQ(R.Stats.AssignmentsRemoved, 0u);
}

TEST_F(SliceTest, ObservationDirectsWhatSurvives) {
  // Under delivery the hop counter is invisible; under the hop-stats
  // observation its writes must survive.
  const Node *P = parse("hops:=0; (if sw=1 then hops:=1 else drop)");
  SliceResult Delivery = slice(Ctx, P, ObservationSet::delivery());
  EXPECT_EQ(Delivery.Stats.AssignmentsRemoved, 2u);
  SliceResult Hop =
      slice(Ctx, P, ObservationSet::fields({field("hops")}));
  EXPECT_EQ(Hop.Stats.AssignmentsRemoved, 0u);
  EXPECT_EQ(Hop.Program, P);
}

TEST_F(SliceTest, SliceIsIdempotent) {
  const Node *P = parse("(if tag=1 then vlan:=1 else vlan:=2);\n"
                        "(if sw=1 then skip else drop)");
  SliceResult Once = slice(Ctx, P, ObservationSet::delivery());
  EXPECT_EQ(slice(Ctx, Once.Program, ObservationSet::delivery()).Program,
            Once.Program);
}

TEST_F(SliceTest, VerifierHookReportsStatsAndPreservesDelivery) {
  const Node *P = parse("meter:=7; (if sw=1 then skip else drop)");
  analysis::Verifier Plain(markov::SolverKind::Exact);
  fdd::FddRef E = Plain.compile(P);
  analysis::Verifier Sliced(markov::SolverKind::Exact);
  Sliced.setSlice(&Ctx, ObservationSet::delivery());
  fdd::FddRef S = Sliced.compile(P);
  EXPECT_EQ(Sliced.lastSliceStats().AssignmentsRemoved, 1u);
  Packet In(Ctx.fields().numFields());
  In.set(field("sw"), 1);
  EXPECT_EQ(Sliced.deliveryProbability(S, In).toString(),
            Plain.deliveryProbability(E, In).toString());
}

//===----------------------------------------------------------------------===//
// Slicing-soundness property sweep
//===----------------------------------------------------------------------===//

// Sliced and unsliced compiles of the same random program must answer
// every delivery query with the same exact rational. Half the seeds plant
// a write-only scratch field so a removal actually happens on a healthy
// share of cases.
TEST(SliceProperty, SlicedDeliveryMatchesUnslicedOnRandomPrograms) {
  std::size_t Removed = 0;
  for (unsigned I = 0; I < 200; ++I) {
    uint64_t Seed = 0x5EEDBA5EULL + I;
    Context Ctx;
    gen::GenOptions Opts;
    Opts.PlantWriteOnlyField = (I % 2) == 1;
    Prng Rng(Seed);
    const Node *P = gen::generateProgram(Ctx, Rng, Opts);
    std::vector<Packet> Inputs = gen::enumerateInputs(Ctx, Opts, 8, Rng);

    analysis::Verifier Plain(markov::SolverKind::Exact);
    fdd::FddRef E = Plain.compile(P);
    analysis::Verifier Sliced(markov::SolverKind::Exact);
    Sliced.setSlice(&Ctx, ObservationSet::delivery());
    fdd::FddRef S = Sliced.compile(P);
    Removed += Sliced.lastSliceStats().AssignmentsRemoved;

    for (const Packet &In : Inputs)
      ASSERT_EQ(Sliced.deliveryProbability(S, In).toString(),
                Plain.deliveryProbability(E, In).toString())
          << "seed 0x" << std::hex << Seed << " program "
          << ast::print(P, Ctx.fields());
  }
  // The planted write-only fields guarantee the sweep exercised real
  // removals, not 200 identity slices.
  EXPECT_GT(Removed, 50u);
}
